#!/usr/bin/env bash
# Tier-1 verify plus sanitizer passes over the concurrent subsystems:
# ThreadSanitizer and AddressSanitizer over the parallel Monte-Carlo
# engine, the serving layer and the network front end. Run from the
# repo root:
#
#   scripts/check.sh          # full tier-1 + TSan + ASan
#   scripts/check.sh --fast   # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

SAN_TARGETS=(test_parallel_mc test_skew_kernel test_skew_block
             test_fault test_obs test_serve test_net test_dist)
SAN_REGEX='^test_(parallel_mc|skew_kernel|skew_block|fault|obs|serve|net|dist)$'

echo "== tier-1: configure, build, ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

if [[ "${1:-}" == "--fast" ]]; then
    exit 0
fi

echo "== TSan: parallel MC engine + skew kernel + fault sweeps + observability + serving + net + dist =="
cmake -B build-tsan -S . -DVSYNC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS" --target "${SAN_TARGETS[@]}"
(cd build-tsan && ctest --output-on-failure -R "$SAN_REGEX")

echo "== ASan: same targets under AddressSanitizer =="
cmake -B build-asan -S . -DVSYNC_SANITIZE=address >/dev/null
cmake --build build-asan -j"$JOBS" --target "${SAN_TARGETS[@]}"
(cd build-asan && ctest --output-on-failure -R "$SAN_REGEX")

echo "== all checks passed =="
