#!/usr/bin/env bash
# Tier-1 verify plus a ThreadSanitizer pass over the parallel
# Monte-Carlo engine. Run from the repo root:
#
#   scripts/check.sh          # full tier-1 + TSan engine tests
#   scripts/check.sh --fast   # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

echo "== tier-1: configure, build, ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

if [[ "${1:-}" == "--fast" ]]; then
    exit 0
fi

echo "== TSan: parallel Monte-Carlo engine + skew kernel + fault sweeps + observability + serving =="
cmake -B build-tsan -S . -DVSYNC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS" --target test_parallel_mc test_skew_kernel test_fault test_obs test_serve
(cd build-tsan && ctest --output-on-failure -R '^test_(parallel_mc|skew_kernel|fault|obs|serve)$')

echo "== all checks passed =="
