file(REMOVE_RECURSE
  "CMakeFiles/tree_machine.dir/tree_machine.cpp.o"
  "CMakeFiles/tree_machine.dir/tree_machine.cpp.o.d"
  "tree_machine"
  "tree_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
