# Empty compiler generated dependencies file for tree_machine.
# This may be replaced when dependencies are built.
