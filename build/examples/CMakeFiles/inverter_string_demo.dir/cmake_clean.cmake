file(REMOVE_RECURSE
  "CMakeFiles/inverter_string_demo.dir/inverter_string_demo.cpp.o"
  "CMakeFiles/inverter_string_demo.dir/inverter_string_demo.cpp.o.d"
  "inverter_string_demo"
  "inverter_string_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverter_string_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
