# Empty dependencies file for inverter_string_demo.
# This may be replaced when dependencies are built.
