# Empty dependencies file for mesh_matmul_hybrid.
# This may be replaced when dependencies are built.
