file(REMOVE_RECURSE
  "CMakeFiles/mesh_matmul_hybrid.dir/mesh_matmul_hybrid.cpp.o"
  "CMakeFiles/mesh_matmul_hybrid.dir/mesh_matmul_hybrid.cpp.o.d"
  "mesh_matmul_hybrid"
  "mesh_matmul_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_matmul_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
