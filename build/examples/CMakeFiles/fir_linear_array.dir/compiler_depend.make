# Empty compiler generated dependencies file for fir_linear_array.
# This may be replaced when dependencies are built.
