file(REMOVE_RECURSE
  "CMakeFiles/fir_linear_array.dir/fir_linear_array.cpp.o"
  "CMakeFiles/fir_linear_array.dir/fir_linear_array.cpp.o.d"
  "fir_linear_array"
  "fir_linear_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_linear_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
