file(REMOVE_RECURSE
  "CMakeFiles/clock_planner.dir/clock_planner.cpp.o"
  "CMakeFiles/clock_planner.dir/clock_planner.cpp.o.d"
  "clock_planner"
  "clock_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
