# Empty compiler generated dependencies file for clock_planner.
# This may be replaced when dependencies are built.
