file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_comb.dir/bench_fig6_comb.cc.o"
  "CMakeFiles/bench_fig6_comb.dir/bench_fig6_comb.cc.o.d"
  "bench_fig6_comb"
  "bench_fig6_comb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_comb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
