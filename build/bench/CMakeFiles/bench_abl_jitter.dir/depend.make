# Empty dependencies file for bench_abl_jitter.
# This may be replaced when dependencies are built.
