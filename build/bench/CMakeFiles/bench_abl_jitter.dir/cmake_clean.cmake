file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_jitter.dir/bench_abl_jitter.cc.o"
  "CMakeFiles/bench_abl_jitter.dir/bench_abl_jitter.cc.o.d"
  "bench_abl_jitter"
  "bench_abl_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
