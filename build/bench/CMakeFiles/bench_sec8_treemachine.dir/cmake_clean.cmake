file(REMOVE_RECURSE
  "CMakeFiles/bench_sec8_treemachine.dir/bench_sec8_treemachine.cc.o"
  "CMakeFiles/bench_sec8_treemachine.dir/bench_sec8_treemachine.cc.o.d"
  "bench_sec8_treemachine"
  "bench_sec8_treemachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec8_treemachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
