# Empty dependencies file for bench_sec8_treemachine.
# This may be replaced when dependencies are built.
