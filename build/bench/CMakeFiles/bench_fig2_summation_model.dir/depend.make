# Empty dependencies file for bench_fig2_summation_model.
# This may be replaced when dependencies are built.
