file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hybrid.dir/bench_fig8_hybrid.cc.o"
  "CMakeFiles/bench_fig8_hybrid.dir/bench_fig8_hybrid.cc.o.d"
  "bench_fig8_hybrid"
  "bench_fig8_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
