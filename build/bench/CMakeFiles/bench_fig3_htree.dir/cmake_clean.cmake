file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_htree.dir/bench_fig3_htree.cc.o"
  "CMakeFiles/bench_fig3_htree.dir/bench_fig3_htree.cc.o.d"
  "bench_fig3_htree"
  "bench_fig3_htree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_htree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
