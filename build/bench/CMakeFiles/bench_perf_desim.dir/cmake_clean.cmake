file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_desim.dir/bench_perf_desim.cc.o"
  "CMakeFiles/bench_perf_desim.dir/bench_perf_desim.cc.o.d"
  "bench_perf_desim"
  "bench_perf_desim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_desim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
