# Empty compiler generated dependencies file for bench_perf_desim.
# This may be replaced when dependencies are built.
