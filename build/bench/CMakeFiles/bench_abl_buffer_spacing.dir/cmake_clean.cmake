file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_buffer_spacing.dir/bench_abl_buffer_spacing.cc.o"
  "CMakeFiles/bench_abl_buffer_spacing.dir/bench_abl_buffer_spacing.cc.o.d"
  "bench_abl_buffer_spacing"
  "bench_abl_buffer_spacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_buffer_spacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
