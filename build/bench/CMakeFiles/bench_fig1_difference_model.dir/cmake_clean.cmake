file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_difference_model.dir/bench_fig1_difference_model.cc.o"
  "CMakeFiles/bench_fig1_difference_model.dir/bench_fig1_difference_model.cc.o.d"
  "bench_fig1_difference_model"
  "bench_fig1_difference_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_difference_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
