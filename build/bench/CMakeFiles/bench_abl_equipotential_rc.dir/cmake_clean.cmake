file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_equipotential_rc.dir/bench_abl_equipotential_rc.cc.o"
  "CMakeFiles/bench_abl_equipotential_rc.dir/bench_abl_equipotential_rc.cc.o.d"
  "bench_abl_equipotential_rc"
  "bench_abl_equipotential_rc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_equipotential_rc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
