# Empty compiler generated dependencies file for bench_abl_equipotential_rc.
# This may be replaced when dependencies are built.
