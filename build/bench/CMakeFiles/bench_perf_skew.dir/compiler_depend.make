# Empty compiler generated dependencies file for bench_perf_skew.
# This may be replaced when dependencies are built.
