file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_skew.dir/bench_perf_skew.cc.o"
  "CMakeFiles/bench_perf_skew.dir/bench_perf_skew.cc.o.d"
  "bench_perf_skew"
  "bench_perf_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
