# Empty dependencies file for bench_tab7_inverter_string.
# This may be replaced when dependencies are built.
