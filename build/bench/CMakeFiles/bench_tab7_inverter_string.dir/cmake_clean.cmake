file(REMOVE_RECURSE
  "CMakeFiles/bench_tab7_inverter_string.dir/bench_tab7_inverter_string.cc.o"
  "CMakeFiles/bench_tab7_inverter_string.dir/bench_tab7_inverter_string.cc.o.d"
  "bench_tab7_inverter_string"
  "bench_tab7_inverter_string.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab7_inverter_string.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
