# Empty dependencies file for bench_fig5_folded.
# This may be replaced when dependencies are built.
