file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_folded.dir/bench_fig5_folded.cc.o"
  "CMakeFiles/bench_fig5_folded.dir/bench_fig5_folded.cc.o.d"
  "bench_fig5_folded"
  "bench_fig5_folded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_folded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
