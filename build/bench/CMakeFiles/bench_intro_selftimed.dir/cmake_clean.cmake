file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_selftimed.dir/bench_intro_selftimed.cc.o"
  "CMakeFiles/bench_intro_selftimed.dir/bench_intro_selftimed.cc.o.d"
  "bench_intro_selftimed"
  "bench_intro_selftimed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_selftimed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
