# Empty dependencies file for bench_intro_selftimed.
# This may be replaced when dependencies are built.
