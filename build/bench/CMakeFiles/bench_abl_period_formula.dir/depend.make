# Empty dependencies file for bench_abl_period_formula.
# This may be replaced when dependencies are built.
