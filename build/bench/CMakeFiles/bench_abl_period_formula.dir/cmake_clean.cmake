file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_period_formula.dir/bench_abl_period_formula.cc.o"
  "CMakeFiles/bench_abl_period_formula.dir/bench_abl_period_formula.cc.o.d"
  "bench_abl_period_formula"
  "bench_abl_period_formula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_period_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
