file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_linear_spine.dir/bench_fig4_linear_spine.cc.o"
  "CMakeFiles/bench_fig4_linear_spine.dir/bench_fig4_linear_spine.cc.o.d"
  "bench_fig4_linear_spine"
  "bench_fig4_linear_spine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_linear_spine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
