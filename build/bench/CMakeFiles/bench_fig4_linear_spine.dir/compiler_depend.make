# Empty compiler generated dependencies file for bench_fig4_linear_spine.
# This may be replaced when dependencies are built.
