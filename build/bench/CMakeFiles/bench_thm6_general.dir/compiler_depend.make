# Empty compiler generated dependencies file for bench_thm6_general.
# This may be replaced when dependencies are built.
