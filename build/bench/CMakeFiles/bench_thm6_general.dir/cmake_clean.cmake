file(REMOVE_RECURSE
  "CMakeFiles/bench_thm6_general.dir/bench_thm6_general.cc.o"
  "CMakeFiles/bench_thm6_general.dir/bench_thm6_general.cc.o.d"
  "bench_thm6_general"
  "bench_thm6_general.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm6_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
