file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_embedding.dir/bench_thm2_embedding.cc.o"
  "CMakeFiles/bench_thm2_embedding.dir/bench_thm2_embedding.cc.o.d"
  "bench_thm2_embedding"
  "bench_thm2_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
