# Empty dependencies file for test_clock_net.
# This may be replaced when dependencies are built.
