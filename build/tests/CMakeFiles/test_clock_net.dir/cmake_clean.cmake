file(REMOVE_RECURSE
  "CMakeFiles/test_clock_net.dir/test_clock_net.cc.o"
  "CMakeFiles/test_clock_net.dir/test_clock_net.cc.o.d"
  "test_clock_net"
  "test_clock_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clock_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
