# Empty dependencies file for test_treemachine.
# This may be replaced when dependencies are built.
