file(REMOVE_RECURSE
  "CMakeFiles/test_treemachine.dir/test_treemachine.cc.o"
  "CMakeFiles/test_treemachine.dir/test_treemachine.cc.o.d"
  "test_treemachine"
  "test_treemachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_treemachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
