file(REMOVE_RECURSE
  "CMakeFiles/test_horner_jacobi.dir/test_horner_jacobi.cc.o"
  "CMakeFiles/test_horner_jacobi.dir/test_horner_jacobi.cc.o.d"
  "test_horner_jacobi"
  "test_horner_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_horner_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
