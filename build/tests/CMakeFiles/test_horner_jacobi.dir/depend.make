# Empty dependencies file for test_horner_jacobi.
# This may be replaced when dependencies are built.
