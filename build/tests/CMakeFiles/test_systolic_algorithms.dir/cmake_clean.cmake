file(REMOVE_RECURSE
  "CMakeFiles/test_systolic_algorithms.dir/test_systolic_algorithms.cc.o"
  "CMakeFiles/test_systolic_algorithms.dir/test_systolic_algorithms.cc.o.d"
  "test_systolic_algorithms"
  "test_systolic_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_systolic_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
