# Empty compiler generated dependencies file for test_systolic_algorithms.
# This may be replaced when dependencies are built.
