
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_geom.cc" "tests/CMakeFiles/test_geom.dir/test_geom.cc.o" "gcc" "tests/CMakeFiles/test_geom.dir/test_geom.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/treemachine/CMakeFiles/vs_treemachine.dir/DependInfo.cmake"
  "/root/repo/build/src/hybrid/CMakeFiles/vs_hybrid.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/vs_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/vs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/desim/CMakeFiles/vs_desim.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/vs_clocktree.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/vs_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/vs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
