# Empty dependencies file for test_ring_comb.
# This may be replaced when dependencies are built.
