file(REMOVE_RECURSE
  "CMakeFiles/test_ring_comb.dir/test_ring_comb.cc.o"
  "CMakeFiles/test_ring_comb.dir/test_ring_comb.cc.o.d"
  "test_ring_comb"
  "test_ring_comb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ring_comb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
