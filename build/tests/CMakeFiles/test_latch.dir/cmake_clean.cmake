file(REMOVE_RECURSE
  "CMakeFiles/test_latch.dir/test_latch.cc.o"
  "CMakeFiles/test_latch.dir/test_latch.cc.o.d"
  "test_latch"
  "test_latch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
