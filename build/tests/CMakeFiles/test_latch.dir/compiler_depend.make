# Empty compiler generated dependencies file for test_latch.
# This may be replaced when dependencies are built.
