file(REMOVE_RECURSE
  "CMakeFiles/test_clocked_chain.dir/test_clocked_chain.cc.o"
  "CMakeFiles/test_clocked_chain.dir/test_clocked_chain.cc.o.d"
  "test_clocked_chain"
  "test_clocked_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clocked_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
