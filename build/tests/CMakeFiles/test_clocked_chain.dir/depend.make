# Empty dependencies file for test_clocked_chain.
# This may be replaced when dependencies are built.
