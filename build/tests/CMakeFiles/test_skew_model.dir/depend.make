# Empty dependencies file for test_skew_model.
# This may be replaced when dependencies are built.
