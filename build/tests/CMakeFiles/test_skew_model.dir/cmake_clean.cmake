file(REMOVE_RECURSE
  "CMakeFiles/test_skew_model.dir/test_skew_model.cc.o"
  "CMakeFiles/test_skew_model.dir/test_skew_model.cc.o.d"
  "test_skew_model"
  "test_skew_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skew_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
