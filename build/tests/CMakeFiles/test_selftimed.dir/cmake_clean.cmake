file(REMOVE_RECURSE
  "CMakeFiles/test_selftimed.dir/test_selftimed.cc.o"
  "CMakeFiles/test_selftimed.dir/test_selftimed.cc.o.d"
  "test_selftimed"
  "test_selftimed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selftimed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
