# Empty dependencies file for test_selftimed.
# This may be replaced when dependencies are built.
