file(REMOVE_RECURSE
  "CMakeFiles/test_clocked_executor.dir/test_clocked_executor.cc.o"
  "CMakeFiles/test_clocked_executor.dir/test_clocked_executor.cc.o.d"
  "test_clocked_executor"
  "test_clocked_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clocked_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
