# Empty dependencies file for test_clock_period.
# This may be replaced when dependencies are built.
