file(REMOVE_RECURSE
  "CMakeFiles/test_clock_period.dir/test_clock_period.cc.o"
  "CMakeFiles/test_clock_period.dir/test_clock_period.cc.o.d"
  "test_clock_period"
  "test_clock_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clock_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
