file(REMOVE_RECURSE
  "CMakeFiles/test_yield.dir/test_yield.cc.o"
  "CMakeFiles/test_yield.dir/test_yield.cc.o.d"
  "test_yield"
  "test_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
