file(REMOVE_RECURSE
  "CMakeFiles/test_trisolve.dir/test_trisolve.cc.o"
  "CMakeFiles/test_trisolve.dir/test_trisolve.cc.o.d"
  "test_trisolve"
  "test_trisolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trisolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
