# Empty compiler generated dependencies file for test_skew_analysis.
# This may be replaced when dependencies are built.
