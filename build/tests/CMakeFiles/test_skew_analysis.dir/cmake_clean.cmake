file(REMOVE_RECURSE
  "CMakeFiles/test_skew_analysis.dir/test_skew_analysis.cc.o"
  "CMakeFiles/test_skew_analysis.dir/test_skew_analysis.cc.o.d"
  "test_skew_analysis"
  "test_skew_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skew_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
