# Empty dependencies file for test_clocktree.
# This may be replaced when dependencies are built.
