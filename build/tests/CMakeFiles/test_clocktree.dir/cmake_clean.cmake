file(REMOVE_RECURSE
  "CMakeFiles/test_clocktree.dir/test_clocktree.cc.o"
  "CMakeFiles/test_clocktree.dir/test_clocktree.cc.o.d"
  "test_clocktree"
  "test_clocktree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clocktree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
