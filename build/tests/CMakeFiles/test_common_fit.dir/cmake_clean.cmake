file(REMOVE_RECURSE
  "CMakeFiles/test_common_fit.dir/test_common_fit.cc.o"
  "CMakeFiles/test_common_fit.dir/test_common_fit.cc.o.d"
  "test_common_fit"
  "test_common_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
