# Empty dependencies file for test_common_fit.
# This may be replaced when dependencies are built.
