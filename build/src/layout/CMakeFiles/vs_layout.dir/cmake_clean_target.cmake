file(REMOVE_RECURSE
  "libvs_layout.a"
)
