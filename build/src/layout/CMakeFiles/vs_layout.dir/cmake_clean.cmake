file(REMOVE_RECURSE
  "CMakeFiles/vs_layout.dir/embed.cc.o"
  "CMakeFiles/vs_layout.dir/embed.cc.o.d"
  "CMakeFiles/vs_layout.dir/generators.cc.o"
  "CMakeFiles/vs_layout.dir/generators.cc.o.d"
  "CMakeFiles/vs_layout.dir/layout.cc.o"
  "CMakeFiles/vs_layout.dir/layout.cc.o.d"
  "libvs_layout.a"
  "libvs_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
