
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/embed.cc" "src/layout/CMakeFiles/vs_layout.dir/embed.cc.o" "gcc" "src/layout/CMakeFiles/vs_layout.dir/embed.cc.o.d"
  "/root/repo/src/layout/generators.cc" "src/layout/CMakeFiles/vs_layout.dir/generators.cc.o" "gcc" "src/layout/CMakeFiles/vs_layout.dir/generators.cc.o.d"
  "/root/repo/src/layout/layout.cc" "src/layout/CMakeFiles/vs_layout.dir/layout.cc.o" "gcc" "src/layout/CMakeFiles/vs_layout.dir/layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/vs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
