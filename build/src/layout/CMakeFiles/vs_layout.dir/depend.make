# Empty dependencies file for vs_layout.
# This may be replaced when dependencies are built.
