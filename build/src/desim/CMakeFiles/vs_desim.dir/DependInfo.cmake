
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/desim/clock_net.cc" "src/desim/CMakeFiles/vs_desim.dir/clock_net.cc.o" "gcc" "src/desim/CMakeFiles/vs_desim.dir/clock_net.cc.o.d"
  "/root/repo/src/desim/clock_source.cc" "src/desim/CMakeFiles/vs_desim.dir/clock_source.cc.o" "gcc" "src/desim/CMakeFiles/vs_desim.dir/clock_source.cc.o.d"
  "/root/repo/src/desim/elements.cc" "src/desim/CMakeFiles/vs_desim.dir/elements.cc.o" "gcc" "src/desim/CMakeFiles/vs_desim.dir/elements.cc.o.d"
  "/root/repo/src/desim/latch.cc" "src/desim/CMakeFiles/vs_desim.dir/latch.cc.o" "gcc" "src/desim/CMakeFiles/vs_desim.dir/latch.cc.o.d"
  "/root/repo/src/desim/register.cc" "src/desim/CMakeFiles/vs_desim.dir/register.cc.o" "gcc" "src/desim/CMakeFiles/vs_desim.dir/register.cc.o.d"
  "/root/repo/src/desim/signal.cc" "src/desim/CMakeFiles/vs_desim.dir/signal.cc.o" "gcc" "src/desim/CMakeFiles/vs_desim.dir/signal.cc.o.d"
  "/root/repo/src/desim/simulator.cc" "src/desim/CMakeFiles/vs_desim.dir/simulator.cc.o" "gcc" "src/desim/CMakeFiles/vs_desim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/vs_clocktree.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/vs_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/vs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
