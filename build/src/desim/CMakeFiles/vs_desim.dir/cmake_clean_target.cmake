file(REMOVE_RECURSE
  "libvs_desim.a"
)
