file(REMOVE_RECURSE
  "CMakeFiles/vs_desim.dir/clock_net.cc.o"
  "CMakeFiles/vs_desim.dir/clock_net.cc.o.d"
  "CMakeFiles/vs_desim.dir/clock_source.cc.o"
  "CMakeFiles/vs_desim.dir/clock_source.cc.o.d"
  "CMakeFiles/vs_desim.dir/elements.cc.o"
  "CMakeFiles/vs_desim.dir/elements.cc.o.d"
  "CMakeFiles/vs_desim.dir/latch.cc.o"
  "CMakeFiles/vs_desim.dir/latch.cc.o.d"
  "CMakeFiles/vs_desim.dir/register.cc.o"
  "CMakeFiles/vs_desim.dir/register.cc.o.d"
  "CMakeFiles/vs_desim.dir/signal.cc.o"
  "CMakeFiles/vs_desim.dir/signal.cc.o.d"
  "CMakeFiles/vs_desim.dir/simulator.cc.o"
  "CMakeFiles/vs_desim.dir/simulator.cc.o.d"
  "libvs_desim.a"
  "libvs_desim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_desim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
