# Empty compiler generated dependencies file for vs_desim.
# This may be replaced when dependencies are built.
