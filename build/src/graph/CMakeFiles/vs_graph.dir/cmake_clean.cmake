file(REMOVE_RECURSE
  "CMakeFiles/vs_graph.dir/bisection.cc.o"
  "CMakeFiles/vs_graph.dir/bisection.cc.o.d"
  "CMakeFiles/vs_graph.dir/graph.cc.o"
  "CMakeFiles/vs_graph.dir/graph.cc.o.d"
  "CMakeFiles/vs_graph.dir/topology.cc.o"
  "CMakeFiles/vs_graph.dir/topology.cc.o.d"
  "CMakeFiles/vs_graph.dir/tree.cc.o"
  "CMakeFiles/vs_graph.dir/tree.cc.o.d"
  "libvs_graph.a"
  "libvs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
