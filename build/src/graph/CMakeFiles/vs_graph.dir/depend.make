# Empty dependencies file for vs_graph.
# This may be replaced when dependencies are built.
