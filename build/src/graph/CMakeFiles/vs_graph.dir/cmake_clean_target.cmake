file(REMOVE_RECURSE
  "libvs_graph.a"
)
