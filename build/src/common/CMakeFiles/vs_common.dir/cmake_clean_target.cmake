file(REMOVE_RECURSE
  "libvs_common.a"
)
