# Empty dependencies file for vs_common.
# This may be replaced when dependencies are built.
