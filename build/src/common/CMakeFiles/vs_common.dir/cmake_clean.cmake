file(REMOVE_RECURSE
  "CMakeFiles/vs_common.dir/fit.cc.o"
  "CMakeFiles/vs_common.dir/fit.cc.o.d"
  "CMakeFiles/vs_common.dir/logging.cc.o"
  "CMakeFiles/vs_common.dir/logging.cc.o.d"
  "CMakeFiles/vs_common.dir/rng.cc.o"
  "CMakeFiles/vs_common.dir/rng.cc.o.d"
  "CMakeFiles/vs_common.dir/stats.cc.o"
  "CMakeFiles/vs_common.dir/stats.cc.o.d"
  "CMakeFiles/vs_common.dir/table.cc.o"
  "CMakeFiles/vs_common.dir/table.cc.o.d"
  "libvs_common.a"
  "libvs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
