# Empty dependencies file for vs_geom.
# This may be replaced when dependencies are built.
