file(REMOVE_RECURSE
  "libvs_geom.a"
)
