file(REMOVE_RECURSE
  "CMakeFiles/vs_geom.dir/path.cc.o"
  "CMakeFiles/vs_geom.dir/path.cc.o.d"
  "libvs_geom.a"
  "libvs_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
