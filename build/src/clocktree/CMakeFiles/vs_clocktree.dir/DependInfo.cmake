
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clocktree/buffering.cc" "src/clocktree/CMakeFiles/vs_clocktree.dir/buffering.cc.o" "gcc" "src/clocktree/CMakeFiles/vs_clocktree.dir/buffering.cc.o.d"
  "/root/repo/src/clocktree/builders.cc" "src/clocktree/CMakeFiles/vs_clocktree.dir/builders.cc.o" "gcc" "src/clocktree/CMakeFiles/vs_clocktree.dir/builders.cc.o.d"
  "/root/repo/src/clocktree/clock_tree.cc" "src/clocktree/CMakeFiles/vs_clocktree.dir/clock_tree.cc.o" "gcc" "src/clocktree/CMakeFiles/vs_clocktree.dir/clock_tree.cc.o.d"
  "/root/repo/src/clocktree/optimize.cc" "src/clocktree/CMakeFiles/vs_clocktree.dir/optimize.cc.o" "gcc" "src/clocktree/CMakeFiles/vs_clocktree.dir/optimize.cc.o.d"
  "/root/repo/src/clocktree/render.cc" "src/clocktree/CMakeFiles/vs_clocktree.dir/render.cc.o" "gcc" "src/clocktree/CMakeFiles/vs_clocktree.dir/render.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/vs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/vs_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
