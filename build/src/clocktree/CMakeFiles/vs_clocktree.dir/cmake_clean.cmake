file(REMOVE_RECURSE
  "CMakeFiles/vs_clocktree.dir/buffering.cc.o"
  "CMakeFiles/vs_clocktree.dir/buffering.cc.o.d"
  "CMakeFiles/vs_clocktree.dir/builders.cc.o"
  "CMakeFiles/vs_clocktree.dir/builders.cc.o.d"
  "CMakeFiles/vs_clocktree.dir/clock_tree.cc.o"
  "CMakeFiles/vs_clocktree.dir/clock_tree.cc.o.d"
  "CMakeFiles/vs_clocktree.dir/optimize.cc.o"
  "CMakeFiles/vs_clocktree.dir/optimize.cc.o.d"
  "CMakeFiles/vs_clocktree.dir/render.cc.o"
  "CMakeFiles/vs_clocktree.dir/render.cc.o.d"
  "libvs_clocktree.a"
  "libvs_clocktree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_clocktree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
