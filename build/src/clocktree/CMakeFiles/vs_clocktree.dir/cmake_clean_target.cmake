file(REMOVE_RECURSE
  "libvs_clocktree.a"
)
