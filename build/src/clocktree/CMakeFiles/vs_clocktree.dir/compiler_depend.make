# Empty compiler generated dependencies file for vs_clocktree.
# This may be replaced when dependencies are built.
