
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systolic/array.cc" "src/systolic/CMakeFiles/vs_systolic.dir/array.cc.o" "gcc" "src/systolic/CMakeFiles/vs_systolic.dir/array.cc.o.d"
  "/root/repo/src/systolic/clocked_executor.cc" "src/systolic/CMakeFiles/vs_systolic.dir/clocked_executor.cc.o" "gcc" "src/systolic/CMakeFiles/vs_systolic.dir/clocked_executor.cc.o.d"
  "/root/repo/src/systolic/executor.cc" "src/systolic/CMakeFiles/vs_systolic.dir/executor.cc.o" "gcc" "src/systolic/CMakeFiles/vs_systolic.dir/executor.cc.o.d"
  "/root/repo/src/systolic/fir.cc" "src/systolic/CMakeFiles/vs_systolic.dir/fir.cc.o" "gcc" "src/systolic/CMakeFiles/vs_systolic.dir/fir.cc.o.d"
  "/root/repo/src/systolic/horner.cc" "src/systolic/CMakeFiles/vs_systolic.dir/horner.cc.o" "gcc" "src/systolic/CMakeFiles/vs_systolic.dir/horner.cc.o.d"
  "/root/repo/src/systolic/jacobi.cc" "src/systolic/CMakeFiles/vs_systolic.dir/jacobi.cc.o" "gcc" "src/systolic/CMakeFiles/vs_systolic.dir/jacobi.cc.o.d"
  "/root/repo/src/systolic/matmul.cc" "src/systolic/CMakeFiles/vs_systolic.dir/matmul.cc.o" "gcc" "src/systolic/CMakeFiles/vs_systolic.dir/matmul.cc.o.d"
  "/root/repo/src/systolic/matvec.cc" "src/systolic/CMakeFiles/vs_systolic.dir/matvec.cc.o" "gcc" "src/systolic/CMakeFiles/vs_systolic.dir/matvec.cc.o.d"
  "/root/repo/src/systolic/selftimed.cc" "src/systolic/CMakeFiles/vs_systolic.dir/selftimed.cc.o" "gcc" "src/systolic/CMakeFiles/vs_systolic.dir/selftimed.cc.o.d"
  "/root/repo/src/systolic/sort.cc" "src/systolic/CMakeFiles/vs_systolic.dir/sort.cc.o" "gcc" "src/systolic/CMakeFiles/vs_systolic.dir/sort.cc.o.d"
  "/root/repo/src/systolic/trisolve.cc" "src/systolic/CMakeFiles/vs_systolic.dir/trisolve.cc.o" "gcc" "src/systolic/CMakeFiles/vs_systolic.dir/trisolve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
