# Empty dependencies file for vs_systolic.
# This may be replaced when dependencies are built.
