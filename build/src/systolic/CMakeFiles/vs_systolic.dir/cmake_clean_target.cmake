file(REMOVE_RECURSE
  "libvs_systolic.a"
)
