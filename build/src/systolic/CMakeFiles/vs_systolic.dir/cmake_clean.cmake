file(REMOVE_RECURSE
  "CMakeFiles/vs_systolic.dir/array.cc.o"
  "CMakeFiles/vs_systolic.dir/array.cc.o.d"
  "CMakeFiles/vs_systolic.dir/clocked_executor.cc.o"
  "CMakeFiles/vs_systolic.dir/clocked_executor.cc.o.d"
  "CMakeFiles/vs_systolic.dir/executor.cc.o"
  "CMakeFiles/vs_systolic.dir/executor.cc.o.d"
  "CMakeFiles/vs_systolic.dir/fir.cc.o"
  "CMakeFiles/vs_systolic.dir/fir.cc.o.d"
  "CMakeFiles/vs_systolic.dir/horner.cc.o"
  "CMakeFiles/vs_systolic.dir/horner.cc.o.d"
  "CMakeFiles/vs_systolic.dir/jacobi.cc.o"
  "CMakeFiles/vs_systolic.dir/jacobi.cc.o.d"
  "CMakeFiles/vs_systolic.dir/matmul.cc.o"
  "CMakeFiles/vs_systolic.dir/matmul.cc.o.d"
  "CMakeFiles/vs_systolic.dir/matvec.cc.o"
  "CMakeFiles/vs_systolic.dir/matvec.cc.o.d"
  "CMakeFiles/vs_systolic.dir/selftimed.cc.o"
  "CMakeFiles/vs_systolic.dir/selftimed.cc.o.d"
  "CMakeFiles/vs_systolic.dir/sort.cc.o"
  "CMakeFiles/vs_systolic.dir/sort.cc.o.d"
  "CMakeFiles/vs_systolic.dir/trisolve.cc.o"
  "CMakeFiles/vs_systolic.dir/trisolve.cc.o.d"
  "libvs_systolic.a"
  "libvs_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
