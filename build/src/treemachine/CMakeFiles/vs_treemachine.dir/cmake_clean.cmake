file(REMOVE_RECURSE
  "CMakeFiles/vs_treemachine.dir/htree_machine.cc.o"
  "CMakeFiles/vs_treemachine.dir/htree_machine.cc.o.d"
  "CMakeFiles/vs_treemachine.dir/search.cc.o"
  "CMakeFiles/vs_treemachine.dir/search.cc.o.d"
  "libvs_treemachine.a"
  "libvs_treemachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_treemachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
