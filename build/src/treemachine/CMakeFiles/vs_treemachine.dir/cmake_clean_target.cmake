file(REMOVE_RECURSE
  "libvs_treemachine.a"
)
