
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/treemachine/htree_machine.cc" "src/treemachine/CMakeFiles/vs_treemachine.dir/htree_machine.cc.o" "gcc" "src/treemachine/CMakeFiles/vs_treemachine.dir/htree_machine.cc.o.d"
  "/root/repo/src/treemachine/search.cc" "src/treemachine/CMakeFiles/vs_treemachine.dir/search.cc.o" "gcc" "src/treemachine/CMakeFiles/vs_treemachine.dir/search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/vs_clocktree.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/vs_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/vs_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/vs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
