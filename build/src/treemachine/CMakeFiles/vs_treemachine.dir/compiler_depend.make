# Empty compiler generated dependencies file for vs_treemachine.
# This may be replaced when dependencies are built.
