file(REMOVE_RECURSE
  "libvs_hybrid.a"
)
