# Empty compiler generated dependencies file for vs_hybrid.
# This may be replaced when dependencies are built.
