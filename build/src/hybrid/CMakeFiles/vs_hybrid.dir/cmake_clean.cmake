file(REMOVE_RECURSE
  "CMakeFiles/vs_hybrid.dir/executor.cc.o"
  "CMakeFiles/vs_hybrid.dir/executor.cc.o.d"
  "CMakeFiles/vs_hybrid.dir/handshake.cc.o"
  "CMakeFiles/vs_hybrid.dir/handshake.cc.o.d"
  "CMakeFiles/vs_hybrid.dir/network.cc.o"
  "CMakeFiles/vs_hybrid.dir/network.cc.o.d"
  "CMakeFiles/vs_hybrid.dir/partition.cc.o"
  "CMakeFiles/vs_hybrid.dir/partition.cc.o.d"
  "libvs_hybrid.a"
  "libvs_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
