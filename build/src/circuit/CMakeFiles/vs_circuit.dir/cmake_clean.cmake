file(REMOVE_RECURSE
  "CMakeFiles/vs_circuit.dir/clocked_chain.cc.o"
  "CMakeFiles/vs_circuit.dir/clocked_chain.cc.o.d"
  "CMakeFiles/vs_circuit.dir/elmore.cc.o"
  "CMakeFiles/vs_circuit.dir/elmore.cc.o.d"
  "CMakeFiles/vs_circuit.dir/inverter_string.cc.o"
  "CMakeFiles/vs_circuit.dir/inverter_string.cc.o.d"
  "CMakeFiles/vs_circuit.dir/process.cc.o"
  "CMakeFiles/vs_circuit.dir/process.cc.o.d"
  "CMakeFiles/vs_circuit.dir/yield.cc.o"
  "CMakeFiles/vs_circuit.dir/yield.cc.o.d"
  "libvs_circuit.a"
  "libvs_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
