
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/clocked_chain.cc" "src/circuit/CMakeFiles/vs_circuit.dir/clocked_chain.cc.o" "gcc" "src/circuit/CMakeFiles/vs_circuit.dir/clocked_chain.cc.o.d"
  "/root/repo/src/circuit/elmore.cc" "src/circuit/CMakeFiles/vs_circuit.dir/elmore.cc.o" "gcc" "src/circuit/CMakeFiles/vs_circuit.dir/elmore.cc.o.d"
  "/root/repo/src/circuit/inverter_string.cc" "src/circuit/CMakeFiles/vs_circuit.dir/inverter_string.cc.o" "gcc" "src/circuit/CMakeFiles/vs_circuit.dir/inverter_string.cc.o.d"
  "/root/repo/src/circuit/process.cc" "src/circuit/CMakeFiles/vs_circuit.dir/process.cc.o" "gcc" "src/circuit/CMakeFiles/vs_circuit.dir/process.cc.o.d"
  "/root/repo/src/circuit/yield.cc" "src/circuit/CMakeFiles/vs_circuit.dir/yield.cc.o" "gcc" "src/circuit/CMakeFiles/vs_circuit.dir/yield.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/desim/CMakeFiles/vs_desim.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/vs_clocktree.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/vs_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/vs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
