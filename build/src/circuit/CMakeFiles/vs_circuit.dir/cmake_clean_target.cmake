file(REMOVE_RECURSE
  "libvs_circuit.a"
)
