file(REMOVE_RECURSE
  "libvs_core.a"
)
