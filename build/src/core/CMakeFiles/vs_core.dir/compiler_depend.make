# Empty compiler generated dependencies file for vs_core.
# This may be replaced when dependencies are built.
