
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/vs_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/vs_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/clock_period.cc" "src/core/CMakeFiles/vs_core.dir/clock_period.cc.o" "gcc" "src/core/CMakeFiles/vs_core.dir/clock_period.cc.o.d"
  "/root/repo/src/core/lower_bound.cc" "src/core/CMakeFiles/vs_core.dir/lower_bound.cc.o" "gcc" "src/core/CMakeFiles/vs_core.dir/lower_bound.cc.o.d"
  "/root/repo/src/core/skew_analysis.cc" "src/core/CMakeFiles/vs_core.dir/skew_analysis.cc.o" "gcc" "src/core/CMakeFiles/vs_core.dir/skew_analysis.cc.o.d"
  "/root/repo/src/core/skew_model.cc" "src/core/CMakeFiles/vs_core.dir/skew_model.cc.o" "gcc" "src/core/CMakeFiles/vs_core.dir/skew_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/vs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/vs_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/vs_clocktree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
