file(REMOVE_RECURSE
  "CMakeFiles/vs_core.dir/advisor.cc.o"
  "CMakeFiles/vs_core.dir/advisor.cc.o.d"
  "CMakeFiles/vs_core.dir/clock_period.cc.o"
  "CMakeFiles/vs_core.dir/clock_period.cc.o.d"
  "CMakeFiles/vs_core.dir/lower_bound.cc.o"
  "CMakeFiles/vs_core.dir/lower_bound.cc.o.d"
  "CMakeFiles/vs_core.dir/skew_analysis.cc.o"
  "CMakeFiles/vs_core.dir/skew_analysis.cc.o.d"
  "CMakeFiles/vs_core.dir/skew_model.cc.o"
  "CMakeFiles/vs_core.dir/skew_model.cc.o.d"
  "libvs_core.a"
  "libvs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
