# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("geom")
subdirs("graph")
subdirs("layout")
subdirs("clocktree")
subdirs("core")
subdirs("desim")
subdirs("circuit")
subdirs("systolic")
subdirs("hybrid")
subdirs("treemachine")
