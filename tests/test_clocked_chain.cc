/**
 * @file
 * Tests for the register-level clocked shift chain: the circuit-level
 * counterpart of Theorem 3.
 */

#include <gtest/gtest.h>

#include "circuit/clocked_chain.hh"
#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "layout/generators.hh"

namespace
{

using namespace vsync;
using namespace vsync::circuit;

ProcessParams
chainProcess()
{
    ProcessParams p = ProcessParams::cmosGeneric();
    p.m = 0.1;
    p.eps = 0.01;
    p.setupTime = 0.2;
    p.holdTime = 0.05;
    p.clkToQ = 0.3;
    p.bufferSpacing = 8.0;
    p.stageDelay = 0.2;
    return p;
}

TEST(ClockedShiftChain, DeliversPatternAtGenerousPeriod)
{
    const ProcessParams p = chainProcess();
    const layout::Layout l = layout::linearLayout(8);
    const auto tree = clocktree::buildSpine(l);
    Rng rng(11);
    const std::vector<bool> pattern{true, false, true, true, false,
                                    true};
    const auto res =
        runClockedShiftChain(l, tree, p, pattern, 5.0, rng);
    EXPECT_EQ(res.setupViolations, 0u);
    EXPECT_EQ(res.holdViolations, 0u);
    EXPECT_EQ(res.received, res.expected);
    EXPECT_TRUE(res.correct);
    // The expected stream contains the pattern shifted by the depth.
    EXPECT_TRUE(res.expected[8 + 0]);
    EXPECT_FALSE(res.expected[8 + 1]);
}

TEST(ClockedShiftChain, FailsAtAbsurdlyShortPeriod)
{
    const ProcessParams p = chainProcess();
    const layout::Layout l = layout::linearLayout(8);
    const auto tree = clocktree::buildSpine(l);
    Rng rng(13);
    const std::vector<bool> pattern{true, false, true, false};
    const auto res =
        runClockedShiftChain(l, tree, p, pattern, 0.4, rng);
    EXPECT_FALSE(res.correct);
    EXPECT_GT(res.setupViolations, 0u);
}

TEST(ClockedShiftChain, PipelinedClockingEventsInFlight)
{
    const ProcessParams p = chainProcess();
    const layout::Layout l = layout::linearLayout(128);
    const auto tree = clocktree::buildSpine(l);
    Rng rng(17);
    const std::vector<bool> pattern{true, true, false, true};
    // Clock latency to the end ~ 128 * 0.1 = 12.8 ns >> 2 ns period:
    // the chain shifts correctly with many clock events in flight.
    const auto res =
        runClockedShiftChain(l, tree, p, pattern, 2.0, rng);
    EXPECT_TRUE(res.correct);
    EXPECT_GE(res.clockEventsInFlight, 4);
}

TEST(ClockedShiftChain, MinPeriodIndependentOfLength)
{
    const ProcessParams p = chainProcess();
    Rng rng(19);
    Time t16 = 0.0, t128 = 0.0;
    for (int n : {16, 128}) {
        const layout::Layout l = layout::linearLayout(n);
        const auto tree = clocktree::buildSpine(l);
        const Time t = minShiftChainPeriod(l, tree, p, rng, 0.05);
        (n == 16 ? t16 : t128) = t;
    }
    // Theorem 3 at the circuit level: the workable period does not
    // grow with the array (allow a small tolerance for sampling).
    EXPECT_NEAR(t128, t16, 0.25);
    // And it is in the physically sensible range.
    EXPECT_GT(t16, p.clkToQ);
    EXPECT_LT(t16, 5.0);
}

TEST(ClockedShiftChain, ExpectedStreamShape)
{
    const ProcessParams p = chainProcess();
    const layout::Layout l = layout::linearLayout(4);
    const auto tree = clocktree::buildSpine(l);
    Rng rng(23);
    const std::vector<bool> pattern{true};
    const auto res =
        runClockedShiftChain(l, tree, p, pattern, 5.0, rng);
    // A single 1 surfaces exactly once, n cycles after launch.
    int ones = 0;
    for (bool b : res.received)
        ones += b ? 1 : 0;
    EXPECT_EQ(ones, 1);
    ASSERT_GT(res.received.size(), 4u);
    EXPECT_TRUE(res.received[4]);
}

} // namespace
