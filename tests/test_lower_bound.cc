/**
 * @file
 * Tests for the Section V-B lower-bound machinery (Fig 7, Theorem 6).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "clocktree/builders.hh"
#include "common/fit.hh"
#include "common/rng.hh"
#include "core/lower_bound.hh"
#include "core/skew_analysis.hh"
#include "layout/generators.hh"

namespace
{

using namespace vsync;
using namespace vsync::core;

TEST(Theorem6Bound, FormulaComponents)
{
    // Cut case dominates when the cut width is small.
    EXPECT_NEAR(theorem6Bound(10000, 1.0, 2.0), 2.0 / (2.0 * M_PI),
                1e-12);
    // Area case dominates for huge cut widths.
    EXPECT_NEAR(theorem6Bound(100, 1e9, 1.0),
                std::sqrt(100.0 / (10.0 * M_PI)), 1e-12);
    // Scales linearly in beta.
    EXPECT_NEAR(theorem6Bound(256, 16.0, 3.0),
                3.0 * theorem6Bound(256, 16.0, 1.0), 1e-12);
}

TEST(MeshCutWidth, GrowsLinearlyInN)
{
    // 2 sqrt(7/30) n ~ 0.966 n: linear, just under the n cap.
    for (int n : {4, 16, 64, 256}) {
        EXPECT_LE(meshCutWidth(n), static_cast<double>(n));
        EXPECT_GE(meshCutWidth(n), 0.9 * n);
    }
    // Monotone in n.
    double prev = 0.0;
    for (int n : {2, 4, 8, 16, 32, 64}) {
        EXPECT_GE(meshCutWidth(n), prev);
        prev = meshCutWidth(n);
    }
}

TEST(InstanceLowerBound, MatchesBetaTimesMaxS)
{
    const double beta = 0.05;
    const layout::Layout l = layout::meshLayout(8, 8);
    const auto t = clocktree::buildHTreeGrid(l, 8, 8);
    const SkewModel model = SkewModel::summation(1.0, beta);
    const SkewReport r = analyzeSkew(l, t, model);
    EXPECT_NEAR(instanceSkewLowerBound(l, t, beta), beta * r.maxS,
                1e-9);
}

TEST(CircleArgument, TraceIsStructurallySound)
{
    const double beta = 0.05;
    const layout::Layout l = layout::meshLayout(8, 8);
    const auto t = clocktree::buildHTreeGrid(l, 8, 8);
    const auto trace = runCircleArgument(l, t, beta, 1.0);

    const std::size_t n_cells = l.size();
    // Lemma 5 separator: both sides between 1/3 and 2/3 (ceil'd).
    const int limit = static_cast<int>((2 * n_cells + 2) / 3);
    EXPECT_LE(trace.cellsInA, static_cast<std::size_t>(limit));
    EXPECT_LE(trace.cellsInB, static_cast<std::size_t>(limit));
    EXPECT_EQ(trace.cellsInA + trace.cellsInB, n_cells);
    EXPECT_NE(trace.separatorChild, invalidId);
    EXPECT_DOUBLE_EQ(trace.radius, 1.0 / beta);
}

TEST(CircleArgument, CutCaseBalanceRespectsProofBound)
{
    const double beta = 0.05;
    const layout::Layout l = layout::meshLayout(10, 10);
    const auto t = clocktree::buildHTreeGrid(l, 10, 10);
    // Use a small sigma: few cells inside the circle -> cut case.
    const auto trace = runCircleArgument(l, t, beta, 0.05);
    ASSERT_FALSE(trace.areaCase);
    // The adjusted halves stay within 23/30 of the cells.
    EXPECT_LE(trace.largerAdjustedHalf,
              static_cast<std::size_t>(
                  std::ceil(l.size() * 23.0 / 30.0)));
    // A tiny sigma cannot admit the mesh's crossing edges.
    EXPECT_GT(trace.certifiedSigma, 0.0);
}

TEST(CircleArgument, HugeSigmaTriggersAreaCase)
{
    const double beta = 0.05;
    const layout::Layout l = layout::meshLayout(8, 8);
    const auto t = clocktree::buildHTreeGrid(l, 8, 8);
    const auto trace = runCircleArgument(l, t, beta, 1e6);
    EXPECT_TRUE(trace.areaCase);
    EXPECT_NEAR(trace.certifiedSigma,
                beta * std::sqrt(64.0 / (10.0 * M_PI)), 1e-9);
}

TEST(CircleArgumentLowerBound, CertifiedBelowActual)
{
    // Soundness: the certified bound never exceeds the true maximum
    // skew lower bound beta * maxS for the same instance.
    const double beta = 0.05;
    Rng rng(5);
    for (int n : {6, 8, 12}) {
        const layout::Layout l = layout::meshLayout(n, n);
        const auto ht = clocktree::buildHTreeGrid(l, n, n);
        const auto rt = clocktree::buildRandomTree(l, rng);
        for (const auto *t : {&ht, &rt}) {
            const double certified =
                circleArgumentLowerBound(l, *t, beta);
            const double actual = instanceSkewLowerBound(l, *t, beta);
            EXPECT_LE(certified, actual + 1e-9)
                << "n=" << n << " tree=" << t->name;
            EXPECT_GT(certified, 0.0);
        }
    }
}

TEST(CircleArgumentLowerBound, GrowsLinearlyOnMeshes)
{
    // The Omega(n) shape: certified bounds over H-trees fit a linear
    // growth law as the mesh side doubles.
    const double beta = 0.05;
    std::vector<double> ns, sigmas;
    for (int n : {4, 8, 16, 32}) {
        const layout::Layout l = layout::meshLayout(n, n);
        const auto t = clocktree::buildHTreeGrid(l, n, n);
        ns.push_back(n);
        sigmas.push_back(circleArgumentLowerBound(l, t, beta, 128));
    }
    EXPECT_EQ(classifyGrowth(ns, sigmas), GrowthLaw::Linear);
}

TEST(InstanceLowerBound, SpineOnLinearArrayStaysConstant)
{
    // Contrast: under the same summation model the 1-D spine's
    // instance lower bound does not grow (Theorem 3's other half).
    const double beta = 0.05;
    std::vector<double> bounds;
    for (int n : {8, 64, 512}) {
        const layout::Layout l = layout::linearLayout(n);
        const auto t = clocktree::buildSpine(l);
        bounds.push_back(instanceSkewLowerBound(l, t, beta));
    }
    EXPECT_DOUBLE_EQ(bounds[0], bounds[1]);
    EXPECT_DOUBLE_EQ(bounds[1], bounds[2]);
}

} // namespace
