/**
 * @file
 * Tests for self-timed execution and the intro's worst-case-path
 * analysis.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "systolic/fir.hh"
#include "systolic/selftimed.hh"

namespace
{

using namespace vsync;
using namespace vsync::systolic;

TEST(WorstCasePathProbability, Formula)
{
    EXPECT_DOUBLE_EQ(worstCasePathProbability(0.9, 0), 0.0);
    EXPECT_NEAR(worstCasePathProbability(0.9, 1), 0.1, 1e-12);
    EXPECT_NEAR(worstCasePathProbability(0.9, 22), 1.0 - std::pow(0.9, 22),
                1e-12);
    // Approaches 1 for long paths.
    EXPECT_GT(worstCasePathProbability(0.99, 1000), 0.9999);
}

TEST(SelfTimed, UniformServiceBehavesLikeClock)
{
    SystolicArray a = buildFir({1.0, 1.0, 1.0, 1.0});
    const auto res = runSelfTimed(
        a, 50, [](CellId, int) { return 2.0; }, true);
    // Homogeneous cells: steady cycle equals the service time.
    EXPECT_NEAR(res.steadyCycle, 2.0, 1e-9);
    EXPECT_NEAR(res.completionTime, 50.0 * 2.0, 1e-6);
}

TEST(SelfTimed, SlowestCellDominatesThroughput)
{
    SystolicArray a = buildFir({1.0, 1.0, 1.0, 1.0, 1.0});
    const auto res = runSelfTimed(
        a, 60,
        [](CellId c, int) { return c == 2 ? 5.0 : 1.0; }, true);
    // The intro's claim 2: the path runs at the slowest member's rate.
    EXPECT_NEAR(res.steadyCycle, 5.0, 1e-9);
}

TEST(SelfTimed, UnboundedBuffersAlsoRateLimited)
{
    SystolicArray a = buildFir({1.0, 1.0, 1.0});
    const auto res = runSelfTimed(
        a, 60, [](CellId c, int) { return c == 0 ? 4.0 : 1.0; }, false);
    EXPECT_NEAR(res.steadyCycle, 4.0, 1e-9);
}

TEST(SelfTimed, DataDependentVariationAveragesAboveFast)
{
    // Per-firing random service: fast 1 with prob p, slow 4 otherwise.
    SystolicArray a = buildFir({1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
    Rng rng(71);
    auto *rng_ptr = &rng;
    const auto res = runSelfTimed(
        a, 400,
        [rng_ptr](CellId, int) {
            return rng_ptr->bernoulli(0.9) ? 1.0 : 4.0;
        },
        true);
    // Not as slow as always-worst-case, but clearly above the fast
    // rate: with 6 cells per wavefront some firing is usually slow.
    EXPECT_GT(res.steadyCycle, 1.3);
    EXPECT_LT(res.steadyCycle, 4.0);
}

TEST(SelfTimed, LongerPathsDegradeTowardWorstCase)
{
    // Fixed per-cell speeds drawn once per cell: the longer the array,
    // the likelier a worst-case member (1 - p^k), so the expected
    // steady cycle rises toward the worst-case service time.
    Rng rng(73);
    double short_cycle = 0.0, long_cycle = 0.0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
        for (int n : {3, 48}) {
            std::vector<double> speed(static_cast<std::size_t>(n));
            for (double &s : speed)
                s = rng.bernoulli(0.95) ? 1.0 : 5.0;
            SystolicArray a =
                buildFir(std::vector<Word>(
                    static_cast<std::size_t>(n), 1.0));
            const auto res = runSelfTimed(
                a, 30,
                [&speed](CellId c, int) {
                    return speed[static_cast<std::size_t>(c)];
                },
                true);
            (n == 3 ? short_cycle : long_cycle) += res.steadyCycle;
        }
    }
    short_cycle /= trials;
    long_cycle /= trials;
    EXPECT_GT(long_cycle, short_cycle + 1.0);
    // 1 - 0.95^48 ~ 0.915: most long arrays contain a slow cell.
    EXPECT_GT(long_cycle, 4.0);
}

TEST(SelfTimed, CompletionTimesMonotonePerCell)
{
    SystolicArray a = buildFir({1.0, 2.0});
    const auto res = runSelfTimed(
        a, 10, [](CellId, int) { return 1.5; }, true);
    ASSERT_EQ(res.lastFireTime.size(), 2u);
    for (Time t : res.lastFireTime)
        EXPECT_GT(t, 0.0);
    EXPECT_EQ(res.firings, 10);
}

} // namespace
