/**
 * @file
 * Tests for least-squares fitting and growth-law classification.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/fit.hh"
#include "common/rng.hh"

namespace
{

using vsync::classifyGrowth;
using vsync::fitLinear;
using vsync::fitPower;
using vsync::GrowthLaw;

TEST(FitLinear, ExactLine)
{
    const std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(3.0 * x - 2.0);
    const auto fit = fitLinear(xs, ys);
    EXPECT_NEAR(fit.slope, 3.0, 1e-12);
    EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLinear, NoisyLineHasHighR2)
{
    vsync::Rng rng(3);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        xs.push_back(i);
        ys.push_back(2.0 * i + 5.0 + rng.normal(0.0, 1.0));
    }
    const auto fit = fitLinear(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 0.05);
    EXPECT_GT(fit.r2, 0.99);
}

TEST(FitLinear, ConstantDataHasZeroSlope)
{
    const std::vector<double> xs{1, 2, 3, 4};
    const std::vector<double> ys{7, 7, 7, 7};
    const auto fit = fitLinear(xs, ys);
    EXPECT_NEAR(fit.slope, 0.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 7.0, 1e-12);
}

TEST(FitPower, ExactPowerLaw)
{
    std::vector<double> xs, ys;
    for (double x : {1.0, 2.0, 4.0, 8.0, 16.0}) {
        xs.push_back(x);
        ys.push_back(3.0 * std::pow(x, 1.5));
    }
    const auto fit = fitPower(xs, ys);
    EXPECT_NEAR(fit.exponent, 1.5, 1e-9);
    EXPECT_NEAR(fit.coefficient, 3.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(GrowthLawName, AllNamed)
{
    EXPECT_EQ(vsync::growthLawName(GrowthLaw::Constant), "O(1)");
    EXPECT_EQ(vsync::growthLawName(GrowthLaw::Logarithmic), "O(log n)");
    EXPECT_EQ(vsync::growthLawName(GrowthLaw::SquareRoot), "O(sqrt n)");
    EXPECT_EQ(vsync::growthLawName(GrowthLaw::Linear), "O(n)");
    EXPECT_EQ(vsync::growthLawName(GrowthLaw::Quadratic), "O(n^2)");
}

/** Parameterized sweep: generated series must classify correctly. */
struct GrowthCase
{
    const char *name;
    GrowthLaw expected;
    double (*fn)(double);
};

double constantFn(double) { return 5.0; }
double logFn(double n) { return 3.0 * std::log(n) + 1.0; }
double sqrtFn(double n) { return 0.5 * std::sqrt(n); }
double linearFn(double n) { return 0.25 * n + 2.0; }
double quadraticFn(double n) { return 0.01 * n * n; }

class GrowthClassification : public ::testing::TestWithParam<GrowthCase>
{
};

TEST_P(GrowthClassification, RecognisesLaw)
{
    const GrowthCase &c = GetParam();
    std::vector<double> ns, ys;
    for (double n = 8; n <= 8192; n *= 2) {
        ns.push_back(n);
        ys.push_back(c.fn(n));
    }
    EXPECT_EQ(classifyGrowth(ns, ys), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Laws, GrowthClassification,
    ::testing::Values(GrowthCase{"constant", GrowthLaw::Constant,
                                 constantFn},
                      GrowthCase{"log", GrowthLaw::Logarithmic, logFn},
                      GrowthCase{"sqrt", GrowthLaw::SquareRoot, sqrtFn},
                      GrowthCase{"linear", GrowthLaw::Linear, linearFn},
                      GrowthCase{"quadratic", GrowthLaw::Quadratic,
                                 quadraticFn}),
    [](const ::testing::TestParamInfo<GrowthCase> &info) {
        return info.param.name;
    });

TEST(ClassifyGrowth, NoisyLinearStillLinear)
{
    vsync::Rng rng(17);
    std::vector<double> ns, ys;
    for (double n = 8; n <= 4096; n *= 2) {
        ns.push_back(n);
        ys.push_back(2.0 * n * rng.uniform(0.9, 1.1));
    }
    EXPECT_EQ(classifyGrowth(ns, ys), GrowthLaw::Linear);
}

TEST(ClassifyGrowth, SlightlyWobblyFlatSeriesIsConstant)
{
    std::vector<double> ns, ys;
    for (double n = 8; n <= 4096; n *= 2) {
        ns.push_back(n);
        ys.push_back(10.0 + (static_cast<int>(n) % 3));
    }
    EXPECT_EQ(classifyGrowth(ns, ys), GrowthLaw::Constant);
}

} // namespace
