/**
 * @file
 * Tests for the topology generators.
 */

#include <gtest/gtest.h>

#include "graph/topology.hh"

namespace
{

using namespace vsync::graph;

TEST(LinearArray, StructureAndCoords)
{
    const Topology t = linearArray(5);
    EXPECT_EQ(t.graph.size(), 5u);
    EXPECT_EQ(t.graph.edgeCount(), 8u); // 4 pairs, both directions
    EXPECT_TRUE(t.graph.isConnected());
    EXPECT_EQ(t.coords[3][0], 3);
    EXPECT_EQ(t.at(2, 0), 2);
    EXPECT_EQ(t.at(9, 0), vsync::invalidId);
}

TEST(LinearArray, SingleCell)
{
    const Topology t = linearArray(1);
    EXPECT_EQ(t.graph.size(), 1u);
    EXPECT_EQ(t.graph.edgeCount(), 0u);
}

TEST(Ring, HasWraparound)
{
    const Topology t = ring(6);
    EXPECT_EQ(t.graph.edgeCount(), 12u);
    EXPECT_TRUE(t.graph.connected(5, 0));
}

TEST(Mesh, EdgeCount)
{
    const Topology t = mesh(3, 4);
    EXPECT_EQ(t.graph.size(), 12u);
    // Undirected: 3*3 horizontal + 2*4 vertical = 17; directed 34.
    EXPECT_EQ(t.graph.edgeCount(), 34u);
    EXPECT_TRUE(t.graph.isConnected());
}

TEST(Mesh, CornerAndInteriorDegrees)
{
    const Topology t = mesh(3, 3);
    EXPECT_EQ(t.graph.neighbors(0).size(), 2u);  // corner
    EXPECT_EQ(t.graph.neighbors(4).size(), 4u);  // center
    EXPECT_EQ(t.graph.neighbors(1).size(), 3u);  // edge
}

TEST(Torus, WraparoundDegrees)
{
    const Topology t = torus(4, 4);
    for (vsync::CellId v = 0; v < 16; ++v)
        EXPECT_EQ(t.graph.neighbors(v).size(), 4u);
}

TEST(Hex, InteriorHasSixNeighbors)
{
    const Topology t = hexArray(4, 4);
    // Interior cell (1,1) -> id 5: E, W, N, S, NE diag, SW diag.
    EXPECT_EQ(t.graph.neighbors(t.at(1, 1)).size(), 6u);
    EXPECT_TRUE(t.graph.isConnected());
}

TEST(Hex, DiagonalConnectivity)
{
    const Topology t = hexArray(3, 3);
    // (c, r) <-> (c+1, r-1): cell (0,1) and (1,0).
    EXPECT_TRUE(t.graph.connected(t.at(0, 1), t.at(1, 0)));
    EXPECT_FALSE(t.graph.connected(t.at(0, 0), t.at(1, 1)));
}

TEST(BinaryTree, HeapStructure)
{
    const Topology t = completeBinaryTree(4);
    EXPECT_EQ(t.graph.size(), 15u);
    EXPECT_EQ(t.graph.edgeCount(), 28u); // 14 undirected edges
    EXPECT_TRUE(t.graph.connected(0, 1));
    EXPECT_TRUE(t.graph.connected(0, 2));
    EXPECT_TRUE(t.graph.connected(6, 14));
    EXPECT_FALSE(t.graph.connected(1, 2));
}

TEST(BinaryTree, InorderColumnsAreAPermutation)
{
    const Topology t = completeBinaryTree(4);
    std::vector<bool> seen(15, false);
    for (const auto &c : t.coords) {
        ASSERT_GE(c[0], 0);
        ASSERT_LT(c[0], 15);
        EXPECT_FALSE(seen[c[0]]);
        seen[c[0]] = true;
    }
}

TEST(BinaryTree, DepthsMatchHeapLevel)
{
    const Topology t = completeBinaryTree(3);
    EXPECT_EQ(t.coords[0][1], 0);
    EXPECT_EQ(t.coords[1][1], 1);
    EXPECT_EQ(t.coords[2][1], 1);
    for (int v = 3; v < 7; ++v)
        EXPECT_EQ(t.coords[v][1], 2);
}

TEST(ShuffleExchange, DegreesAndConnectivity)
{
    const Topology t = shuffleExchange(4); // 16 nodes
    EXPECT_EQ(t.graph.size(), 16u);
    EXPECT_TRUE(t.graph.isConnected());
    // Exchange: 0 <-> 1; shuffle: 5 (0101) -> 10 (1010).
    EXPECT_TRUE(t.graph.connected(0, 1));
    EXPECT_TRUE(t.graph.connected(5, 10));
    // Fixed points 0 and 15 have no shuffle self-loop.
    for (const auto &e : t.graph.allEdges())
        EXPECT_NE(e.src, e.dst);
}

TEST(ShuffleExchange, NodeDegreeAtMostThree)
{
    const Topology t = shuffleExchange(5);
    for (vsync::CellId v = 0; v < 32; ++v)
        EXPECT_LE(t.graph.neighbors(v).size(), 3u);
}

TEST(Hypercube, StructureIsCorrect)
{
    const Topology t = hypercube(4);
    EXPECT_EQ(t.graph.size(), 16u);
    EXPECT_TRUE(t.graph.isConnected());
    // Every node has degree k.
    for (vsync::CellId v = 0; v < 16; ++v)
        EXPECT_EQ(t.graph.neighbors(v).size(), 4u);
    // 0 connects to all single-bit nodes and nothing else nearby.
    EXPECT_TRUE(t.graph.connected(0, 8));
    EXPECT_FALSE(t.graph.connected(0, 3));
    // Undirected edges: k * 2^(k-1) = 32.
    EXPECT_EQ(t.graph.undirectedEdges().size(), 32u);
}

TEST(Hypercube, GridCoordsAreDistinct)
{
    const Topology t = hypercube(5);
    for (std::size_t a = 0; a < t.coords.size(); ++a)
        for (std::size_t b = a + 1; b < t.coords.size(); ++b)
            EXPECT_FALSE(t.coords[a][0] == t.coords[b][0] &&
                         t.coords[a][1] == t.coords[b][1]);
}

/** Parameterized: every topology is connected and sized correctly. */
class TopologySizes : public ::testing::TestWithParam<int>
{
};

TEST_P(TopologySizes, AllGeneratorsConnected)
{
    const int n = GetParam();
    EXPECT_TRUE(linearArray(n * n).graph.isConnected());
    EXPECT_TRUE(mesh(n, n).graph.isConnected());
    EXPECT_TRUE(torus(n, n).graph.isConnected());
    EXPECT_TRUE(hexArray(n, n).graph.isConnected());
    EXPECT_EQ(mesh(n, n).graph.size(),
              static_cast<std::size_t>(n) * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologySizes,
                         ::testing::Values(3, 4, 5, 8, 16));

} // namespace
