/**
 * @file
 * Tests for the streaming JSON writer, focused on number formatting:
 * doubles must round-trip exactly and must be locale-independent.
 * Regression context: formatting used to go through snprintf("%.17g"),
 * which consults LC_NUMERIC and emits ',' decimal separators under
 * e.g. de_DE -- producing unparseable BENCH_*.json files on machines
 * with a non-C locale.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>

#include "common/json.hh"

namespace
{

using namespace vsync;

const double kAwkwardDoubles[] = {
    0.0,
    -0.0,
    0.1,
    -2.5,
    1.0 / 3.0,
    3.141592653589793,
    6.02214076e23,
    1e22,
    5e-324,                                  // min subnormal
    std::numeric_limits<double>::min(),      // min normal
    std::numeric_limits<double>::max(),
    -std::numeric_limits<double>::max(),
    1.7976931348623157e308,
    2.2250738585072011e-308,                 // largest subnormal-ish
};

TEST(JsonWriter, FormatDoubleRoundTripsExactly)
{
    for (const double v : kAwkwardDoubles) {
        const std::string s = JsonWriter::formatDouble(v);
        char *end = nullptr;
        const double back = std::strtod(s.c_str(), &end);
        EXPECT_EQ(end, s.c_str() + s.size()) << s;
        EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0)
            << s << " round-tripped to " << back;
    }
}

TEST(JsonWriter, FormatDoubleNeverEmitsLocaleSeparators)
{
    for (const double v : kAwkwardDoubles) {
        const std::string s = JsonWriter::formatDouble(v);
        EXPECT_EQ(s.find(','), std::string::npos) << s;
        // Valid JSON number alphabet only.
        EXPECT_EQ(s.find_first_not_of("0123456789+-.eE"),
                  std::string::npos)
            << s;
    }
}

TEST(JsonWriter, FormatDoubleIgnoresCommaDecimalLocale)
{
    // The regression only reproduces under a locale whose decimal
    // separator is ',': install one if this machine has any.
    const char *candidates[] = {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8",
                                "fr_FR", "it_IT.UTF-8", "nl_NL.UTF-8"};
    const char *installed = nullptr;
    for (const char *c : candidates) {
        if (std::setlocale(LC_NUMERIC, c)) {
            installed = c;
            break;
        }
    }
    if (!installed) {
        GTEST_SKIP() << "no comma-decimal locale installed";
    }

    // Prove the locale is live: the old snprintf path *would* emit a
    // comma here.
    char viaPrintf[64];
    std::snprintf(viaPrintf, sizeof viaPrintf, "%.17g", 0.5);
    const bool commaLocale = std::strchr(viaPrintf, ',') != nullptr;

    const std::string s = JsonWriter::formatDouble(0.1);
    const std::string pi = JsonWriter::formatDouble(3.141592653589793);
    std::setlocale(LC_NUMERIC, "C");

    if (!commaLocale) {
        GTEST_SKIP() << installed << " does not use ',' decimals";
    }
    EXPECT_EQ(s, "0.1");
    EXPECT_EQ(pi.find(','), std::string::npos) << pi;
}

TEST(JsonWriter, DocumentWithDoublesIsWellFormed)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.keyValue("tenth", 0.1);
    w.keyValue("tiny", -1e-5);
    w.keyValue("inf", std::numeric_limits<double>::infinity());
    w.keyValue("nan", std::nan(""));
    w.key("list").beginArray().value(2.5).value(1e100).endArray();
    w.endObject();
    const std::string doc = os.str();
    EXPECT_NE(doc.find("0.1"), std::string::npos);
    // Non-finite doubles become null, never "inf"/"nan" barewords.
    EXPECT_NE(doc.find("\"inf\": null"), std::string::npos);
    EXPECT_NE(doc.find("\"nan\": null"), std::string::npos);
    // Commas only separate members: one directly followed by a digit
    // would mean a number token was split by a locale separator.
    for (std::size_t i = 0; i + 1 < doc.size(); ++i)
        if (doc[i] == ',')
            EXPECT_FALSE(std::isdigit(
                static_cast<unsigned char>(doc[i + 1])))
                << "comma inside number at " << i;
}

} // namespace
