/**
 * @file
 * Tests for buffer insertion (assumption A7).
 */

#include <gtest/gtest.h>

#include "clocktree/buffering.hh"
#include "clocktree/builders.hh"
#include "layout/generators.hh"

namespace
{

using namespace vsync;
using namespace vsync::clocktree;

TEST(Buffering, SegmentsBoundedBySpacing)
{
    const layout::Layout l = layout::linearLayout(64);
    const ClockTree t = buildSpine(l);
    const auto b = BufferedClockTree::insertBuffers(t, 4.0);
    EXPECT_LE(b.maxSegmentLength(), 4.0 + 1e-12);
    EXPECT_DOUBLE_EQ(b.spacing(), 4.0);
}

TEST(Buffering, NoBuffersWhenWiresShort)
{
    const layout::Layout l = layout::linearLayout(8);
    const ClockTree t = buildSpine(l); // unit wires
    const auto b = BufferedClockTree::insertBuffers(t, 4.0);
    EXPECT_EQ(b.bufferCount(), 0u);
    EXPECT_EQ(b.sites().size(), t.size());
}

TEST(Buffering, CountMatchesWireLength)
{
    ClockTree t;
    const NodeId root = t.addRoot({0, 0});
    t.addChild(root, {10, 0});
    const auto b = BufferedClockTree::insertBuffers(t, 3.0);
    // 10 / 3 -> buffers at 3, 6, 9: three buffers, last segment 1.
    EXPECT_EQ(b.bufferCount(), 3u);
    EXPECT_NEAR(b.sites().back().wireFromParent, 1.0, 1e-12);
}

TEST(Buffering, ExactMultipleAvoidsZeroSegment)
{
    ClockTree t;
    const NodeId root = t.addRoot({0, 0});
    t.addChild(root, {8, 0});
    const auto b = BufferedClockTree::insertBuffers(t, 4.0);
    // Buffer at 4 only; the endpoint provides the second boundary.
    EXPECT_EQ(b.bufferCount(), 1u);
    EXPECT_NEAR(b.sites().back().wireFromParent, 4.0, 1e-12);
}

TEST(Buffering, SiteTreeIsConsistent)
{
    const layout::Layout l = layout::meshLayout(4, 4);
    const ClockTree t = buildHTreeGrid(l, 4, 4);
    const auto b = BufferedClockTree::insertBuffers(t, 1.0);
    const auto &sites = b.sites();
    ASSERT_FALSE(sites.empty());
    EXPECT_EQ(sites[0].parent, invalidId);
    for (std::size_t i = 1; i < sites.size(); ++i) {
        EXPECT_GE(sites[i].parent, 0);
        EXPECT_LT(sites[i].parent, static_cast<NodeId>(i));
        EXPECT_GE(sites[i].wireFromParent, 0.0);
    }
    // Every original node has a site.
    for (NodeId v = 0; static_cast<std::size_t>(v) < t.size(); ++v) {
        const NodeId site = b.siteOfNode(v);
        ASSERT_NE(site, invalidId);
        EXPECT_EQ(sites[site].treeNode, v);
    }
}

TEST(Buffering, PathLengthPreserved)
{
    const layout::Layout l = layout::linearLayout(32);
    const ClockTree t = buildSpine(l);
    const auto b = BufferedClockTree::insertBuffers(t, 2.5);
    // Sum of segment lengths along the path to the last cell equals
    // the unbuffered root path length.
    const NodeId leaf_site = b.siteOfNode(t.nodeOfCell(31));
    Length total = 0.0;
    for (NodeId s = leaf_site; s != invalidId; s = b.sites()[s].parent)
        total += b.sites()[s].wireFromParent;
    EXPECT_NEAR(total, t.rootPathLength(t.nodeOfCell(31)), 1e-9);
}

TEST(Buffering, BufferDepthScalesWithTreeDepth)
{
    const layout::Layout small = layout::linearLayout(8);
    const layout::Layout large = layout::linearLayout(64);
    const auto bs =
        BufferedClockTree::insertBuffers(buildSpine(small), 0.5);
    const auto bl =
        BufferedClockTree::insertBuffers(buildSpine(large), 0.5);
    EXPECT_GT(bl.maxBufferDepth(), bs.maxBufferDepth());
}

TEST(Buffering, PaddedWiresAreBuffered)
{
    ClockTree t;
    const NodeId root = t.addRoot({0, 0});
    const NodeId a = t.addChild(root, {1, 0});
    t.padWire(a, 9.0); // effective length 10
    const auto b = BufferedClockTree::insertBuffers(t, 2.0);
    EXPECT_EQ(b.bufferCount(), 4u); // at 2, 4, 6, 8
}

} // namespace
