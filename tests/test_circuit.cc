/**
 * @file
 * Tests for process parameters and the Section VII inverter string.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/inverter_string.hh"
#include "circuit/process.hh"
#include "common/rng.hh"

namespace
{

using namespace vsync;
using namespace vsync::circuit;

TEST(ProcessParams, SettlingTimeCombinesLinearAndQuadratic)
{
    ProcessParams p;
    p.alpha = 2.0;
    p.rcQuadratic = 0.5;
    EXPECT_DOUBLE_EQ(p.settlingTime(4.0), 8.0 + 8.0);
    EXPECT_DOUBLE_EQ(p.settlingTime(0.0), 0.0);
}

TEST(ProcessParams, UnitWireDelayWithinEps)
{
    ProcessParams p;
    p.m = 1.0;
    p.eps = 0.25;
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double d = p.sampleUnitWireDelay(rng);
        EXPECT_GE(d, 0.75);
        EXPECT_LE(d, 1.25);
    }
}

TEST(ProcessParams, StageDelaysRealiseConfiguredPairBias)
{
    ProcessParams p;
    p.stageDelay = 10.0;
    p.stageDelaySigma = 0.0;
    p.pairBias = 0.4;
    p.pairDiscrepancySigma = 0.0;
    Rng rng(9);
    const auto odd = p.sampleStageDelays(rng, true);
    const auto even = p.sampleStageDelays(rng, false);
    // Odd stage: fall slower by bias/2; even stage mirrors.
    EXPECT_NEAR(odd.fall - odd.rise, 0.2, 1e-12);
    EXPECT_NEAR(even.fall - even.rise, -0.2, 1e-12);
}

TEST(InverterString, TraversalScalesWithLength)
{
    const ProcessParams p = ProcessParams::nmos1983();
    Rng rng(1);
    const InverterString s256(256, p, rng.deriveStream(1));
    const InverterString s1024(1024, p, rng.deriveStream(2));
    EXPECT_NEAR(s1024.traversalDelayRiseIn() /
                    s256.traversalDelayRiseIn(),
                4.0, 0.1);
}

TEST(InverterString, Nmos1983ReproducesPaperNumbers)
{
    const ProcessParams p = ProcessParams::nmos1983();
    Rng rng(7);
    const InverterString chip(2048, p, rng);
    // Equipotential cycle ~34 us (paper: approximately 34 us).
    EXPECT_NEAR(chip.equipotentialCycle(), 34000.0, 1500.0);
    // Pipelined cycle ~500 ns.
    EXPECT_NEAR(chip.pipelinedCycleAnalytic(), 500.0, 30.0);
    // Speedup ~68x.
    const double speedup =
        chip.equipotentialCycle() / chip.pipelinedCycleAnalytic();
    EXPECT_NEAR(speedup, 68.0, 6.0);
}

TEST(InverterString, FiveChipsAgreeWhenBiasDominates)
{
    // The paper observed the same 68x speedup on five chips because
    // the systematic bias dominated random variation.
    const ProcessParams p = ProcessParams::nmos1983();
    Rng rng(11);
    for (int chip = 0; chip < 5; ++chip) {
        const InverterString s(2048, p,
                               rng.deriveStream(
                                   static_cast<std::uint64_t>(chip)));
        const double speedup =
            s.equipotentialCycle() / s.pipelinedCycleAnalytic();
        EXPECT_NEAR(speedup, 68.0, 6.0) << "chip " << chip;
    }
}

TEST(InverterString, PrefixDiscrepancyEndpoints)
{
    const ProcessParams p = ProcessParams::nmos1983();
    Rng rng(13);
    const InverterString s(64, p, rng);
    EXPECT_DOUBLE_EQ(s.prefixDiscrepancy(0), 0.0);
    EXPECT_NEAR(s.prefixDiscrepancy(64),
                s.traversalDelayFallIn() - s.traversalDelayRiseIn(),
                1e-9);
    EXPECT_GE(s.worstPrefixDiscrepancy(),
              std::fabs(s.prefixDiscrepancy(64)) - 1e-9);
}

TEST(InverterString, DesimPulseTrainMatchesAnalyticThreshold)
{
    // Use a short string so the desim bisection is fast.
    ProcessParams p = ProcessParams::nmos1983();
    Rng rng(17);
    const InverterString s(64, p, rng);
    const Time analytic = s.pipelinedCycleAnalytic();
    // Comfortably above the analytic minimum: must run.
    EXPECT_TRUE(s.runsAtPeriod(analytic * 1.2, 6));
    // Far below: must fail.
    EXPECT_FALSE(s.runsAtPeriod(analytic * 0.4, 6));
}

TEST(InverterString, MinPipelinedPeriodNearAnalytic)
{
    ProcessParams p = ProcessParams::nmos1983();
    Rng rng(19);
    const InverterString s(128, p, rng);
    const Time analytic = s.pipelinedCycleAnalytic();
    const Time measured = s.minPipelinedPeriod(6, 0.5);
    // The desim check inspects the string's far end; the analytic form
    // polices every prefix, so measured <= analytic (+tolerance).
    EXPECT_LE(measured, analytic + 1.0);
    EXPECT_GT(measured, 2.0 * p.minPulseWidth - 1.0);
}

TEST(InverterString, PipelinedBeatsEquipotentialOnLongStrings)
{
    const ProcessParams p = ProcessParams::nmos1983();
    Rng rng(23);
    for (int n : {256, 1024, 4096}) {
        const InverterString s(n, p, rng.deriveStream(n));
        EXPECT_GT(s.equipotentialCycle(),
                  5.0 * s.pipelinedCycleAnalytic())
            << "n=" << n;
    }
}

TEST(ProcessPresets, HaveDistinctCharacters)
{
    const auto nmos = ProcessParams::nmos1983();
    const auto cmos = ProcessParams::cmosGeneric();
    const auto gaas = ProcessParams::gaasFast();
    EXPECT_GT(nmos.stageDelay, cmos.stageDelay);
    EXPECT_GT(cmos.stageDelay, gaas.stageDelay);
    // GaAs: wire delay dominates stage delay (pipelined territory).
    EXPECT_GT(gaas.m / gaas.stageDelay, cmos.m / cmos.stageDelay);
}

} // namespace
