/**
 * @file
 * Tests for the Section VI hybrid synchronization scheme.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "desim/simulator.hh"
#include "hybrid/executor.hh"
#include "hybrid/handshake.hh"
#include "hybrid/network.hh"
#include "hybrid/partition.hh"
#include "layout/generators.hh"
#include "systolic/matmul.hh"

namespace
{

using namespace vsync;
using namespace vsync::hybrid;

TEST(Partition, GridBinningCoversAllCells)
{
    const layout::Layout l = layout::meshLayout(8, 8);
    const Partition p = partitionGrid(l, 4.0);
    EXPECT_EQ(p.elementCount, 4);
    for (int e : p.elementOf)
        EXPECT_GE(e, 0);
    std::size_t total = 0;
    for (const auto &cells : p.elementCells)
        total += cells.size();
    EXPECT_EQ(total, 64u);
}

TEST(Partition, ElementDiameterBoundedByElementSize)
{
    const layout::Layout l = layout::meshLayout(16, 16);
    const Partition p = partitionGrid(l, 4.0);
    // Manhattan diameter of a 4x4 lambda bin is at most 2 * 4.
    EXPECT_LE(p.maxElementDiameter, 8.0);
    EXPECT_EQ(p.elementCount, 16);
}

TEST(Partition, AdjacentElementsLinked)
{
    const layout::Layout l = layout::meshLayout(8, 8);
    const Partition p = partitionGrid(l, 4.0);
    // 2x2 element grid: corner elements have two neighbours.
    for (int e = 0; e < p.elementCount; ++e)
        EXPECT_EQ(p.elementGraph.neighbors(e).size(), 2u);
    EXPECT_GT(p.maxControllerDistance, 0.0);
}

TEST(Partition, SingleElementWhenSizeCoversLayout)
{
    const layout::Layout l = layout::meshLayout(4, 4);
    const Partition p = partitionGrid(l, 100.0);
    EXPECT_EQ(p.elementCount, 1);
    EXPECT_EQ(p.elementGraph.edgeCount(), 0u);
}

TEST(Handshake, FourPhaseRoundsComplete)
{
    desim::Simulator sim;
    HandshakePair hs(sim, 1.0, 0.25);
    const auto completions = hs.run(5);
    ASSERT_EQ(completions.size(), 5u);
    // First round: 4 wire legs + 3 logic reactions.
    EXPECT_NEAR(completions[0], hs.roundLatency(), 1e-9);
    // Steady rounds add one more logic delay to restart.
    for (std::size_t k = 1; k < completions.size(); ++k) {
        EXPECT_NEAR(completions[k] - completions[k - 1],
                    hs.roundLatency() + 0.25, 1e-9);
    }
}

TEST(Handshake, LatencyScalesWithDistanceNotRounds)
{
    desim::Simulator sim1, sim2;
    HandshakePair near(sim1, 0.5, 0.25);
    HandshakePair far(sim2, 5.0, 0.25);
    EXPECT_GT(far.roundLatency(), near.roundLatency());
    EXPECT_NEAR(far.roundLatency() - near.roundLatency(), 4.0 * 4.5,
                1e-9);
}

TEST(StoppableClock, PulsesNeverTruncated)
{
    desim::Simulator sim;
    desim::Signal clk("clk");
    StoppableClock sc(sim, clk, 2.0, 1.0, 0.5);
    sc.enable();
    // Disable mid-flight after a few pulses.
    sim.schedule(7.3, [&sc]() { sc.disable(); });
    sim.run();
    ASSERT_GE(sc.pulses().size(), 2u);
    for (const auto &[rise, fall] : sc.pulses())
        EXPECT_NEAR(fall - rise, 2.0, 1e-12);
    // Clock parked low after the synchronous stop.
    EXPECT_FALSE(clk.value());
}

TEST(Handshake, ZeroLogicDelayCompletesEveryRound)
{
    // Degenerate controllers that react instantly: every phase is a
    // zero-delay event at the wire-arrival time, exercising the
    // scheduleAt(now()) boundary semantics. Rounds must still
    // complete, spaced by pure wire time.
    desim::Simulator sim;
    HandshakePair hs(sim, 1.0, 0.0);
    const auto completions = hs.run(4);
    ASSERT_EQ(completions.size(), 4u);
    EXPECT_NEAR(completions[0], 4.0, 1e-12); // 4 wire legs, no logic
    for (std::size_t k = 1; k < completions.size(); ++k)
        EXPECT_NEAR(completions[k] - completions[k - 1], 4.0, 1e-12);
}

TEST(StoppableClock, StopBetweenPulsesHaltsExactlyAtTheBoundary)
{
    // Disable inside the low gap: the gate is sampled at the next
    // pulse boundary, so no further pulse starts and none is cut.
    desim::Simulator sim;
    desim::Signal clk("clk");
    StoppableClock sc(sim, clk, 1.0, 0.5, 0.25);
    sc.enable(); // pulses [0.25, 1.25], [1.75, 2.75], ...
    sim.schedule(1.5, [&sc]() { sc.disable(); });
    sim.run();
    ASSERT_EQ(sc.pulses().size(), 1u);
    EXPECT_NEAR(sc.pulses()[0].first, 0.25, 1e-12);
    EXPECT_NEAR(sc.pulses()[0].second, 1.25, 1e-12);
    EXPECT_FALSE(clk.value());
}

TEST(StoppableClock, AsyncRestartNeverTruncatesAPulse)
{
    // Stop in a gap, restart much later, stop again mid-pulse: every
    // logged pulse keeps the full width and the restart begins exactly
    // start_delay after enable().
    desim::Simulator sim;
    desim::Signal clk("clk");
    StoppableClock sc(sim, clk, 1.0, 0.5, 0.25);
    sc.enable();
    sim.schedule(1.5, [&sc]() { sc.disable(); });
    sim.schedule(5.0, [&sc]() { sc.enable(); });
    sim.schedule(6.0, [&sc]() { sc.disable(); }); // mid second pulse
    sim.run();
    ASSERT_EQ(sc.pulses().size(), 2u);
    EXPECT_NEAR(sc.pulses()[1].first, 5.25, 1e-12);
    for (const auto &[rise, fall] : sc.pulses())
        EXPECT_NEAR(fall - rise, 1.0, 1e-12);
    EXPECT_FALSE(clk.value());
}

TEST(StoppableClock, RestartsAsynchronously)
{
    desim::Simulator sim;
    desim::Signal clk("clk");
    StoppableClock sc(sim, clk, 1.0, 0.5, 0.25);
    sc.enable();
    sim.schedule(2.9, [&sc]() { sc.disable(); });
    sim.schedule(10.0, [&sc]() { sc.enable(); });
    sim.schedule(12.4, [&sc]() { sc.disable(); });
    sim.run();
    EXPECT_GE(sc.pulses().size(), 3u);
    for (const auto &[rise, fall] : sc.pulses())
        EXPECT_NEAR(fall - rise, 1.0, 1e-12);
}

HybridParams
testParams()
{
    HybridParams p;
    p.localClockPerLambda = 0.1;
    p.delta = 2.0;
    p.handshakeWirePerLambda = 0.05;
    p.handshakeLogic = 0.5;
    return p;
}

TEST(HybridNetwork, SteadyCycleWithinAnalyticBound)
{
    const layout::Layout l = layout::meshLayout(16, 16);
    HybridNetwork net(partitionGrid(l, 4.0), testParams());
    const auto res = net.simulate(40);
    EXPECT_LE(res.steadyCycle, net.analyticCycleBound() + 1e-9);
    EXPECT_GT(res.steadyCycle, 0.0);
}

TEST(HybridNetwork, CycleTimeIndependentOfArraySize)
{
    // The Fig 8 claim: growing the array does not grow the cycle.
    double cycle8 = 0.0, cycle32 = 0.0;
    for (int n : {8, 32}) {
        const layout::Layout l = layout::meshLayout(n, n);
        HybridNetwork net(partitionGrid(l, 4.0), testParams());
        const double c = net.simulate(40).steadyCycle;
        (n == 8 ? cycle8 : cycle32) = c;
    }
    EXPECT_NEAR(cycle32, cycle8, 0.3);
}

TEST(HybridNetwork, ToleratesJitterUnlikePipelinedClock)
{
    HybridParams p = testParams();
    p.jitterAmplitude = 1.0; // A8 violated
    const layout::Layout l = layout::meshLayout(12, 12);
    HybridNetwork net(partitionGrid(l, 4.0), p);
    Rng rng(91);
    const auto res = net.simulate(60, &rng);
    // Still bounded: local synchronization absorbs the jitter.
    EXPECT_LE(res.steadyCycle,
              net.analyticCycleBound() + p.jitterAmplitude + 1e-9);
}

TEST(HybridExecutor, ComputesIdealResultWithConstantCycle)
{
    const int n = 4;
    Rng rng(93);
    std::vector<std::vector<systolic::Word>> a(
        n, std::vector<systolic::Word>(n));
    std::vector<std::vector<systolic::Word>> b = a;
    for (auto *mat : {&a, &b})
        for (auto &row : *mat)
            for (auto &v : row)
                v = rng.uniform(-1.0, 1.0);

    systolic::SystolicArray arr = systolic::buildMatMul(n);
    const layout::Layout l = layout::meshLayout(n, n);
    const auto exec =
        runHybrid(arr, l, 2.0, testParams(), systolic::matMulCycles(n),
                  systolic::matMulInputs(a, b));

    const auto c = systolic::matMulReference(a, b);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            EXPECT_NEAR(exec.trace.finalStates[i * n + j][0], c[i][j],
                        1e-9);
    EXPECT_GT(exec.cycleTime, 0.0);
}

} // namespace
