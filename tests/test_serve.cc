/**
 * @file
 * Tests for the serving layer: the content-addressed ScenarioCache
 * (hit identity, LRU eviction, single-compile under concurrency) and
 * the SweepService (bit-identity with the mc:: entry points at 1/2/8
 * threads, cancellation, deadlines, partial-result flagging).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "clocktree/builders.hh"
#include "layout/generators.hh"
#include "mc/resilience.hh"
#include "mc/sweeps.hh"
#include "obs/metrics.hh"
#include "serve/scenario_cache.hh"
#include "serve/sweep_service.hh"

namespace
{

using namespace vsync;

const unsigned kThreadCounts[] = {1, 2, 8};
const core::WireDelay kDelay{0.05, 0.005};

TEST(ScenarioCache, HitReturnsTheSameKernel)
{
    serve::ScenarioCache cache;
    const layout::Layout l = layout::meshLayout(4, 4);
    const auto tree = clocktree::buildHTreeGrid(l, 4, 4);

    const auto first = cache.get(l, tree);
    const auto second = cache.get(l, tree);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_GE(cache.compileMillis(), 0.0);
}

TEST(ScenarioCache, ContentAddressingIgnoresObjectIdentity)
{
    // Two scenarios built independently but identical in content share
    // one cache entry; a different scenario does not.
    serve::ScenarioCache cache;
    const layout::Layout a = layout::meshLayout(4, 4);
    const layout::Layout b = layout::meshLayout(4, 4);
    const auto treeA = clocktree::buildHTreeGrid(a, 4, 4);
    const auto treeB = clocktree::buildHTreeGrid(b, 4, 4);
    EXPECT_EQ(cache.get(a, treeA).get(), cache.get(b, treeB).get());
    EXPECT_EQ(cache.misses(), 1u);

    const layout::Layout c = layout::meshLayout(4, 5);
    const auto treeC = clocktree::buildHTreeGrid(c, 4, 5);
    EXPECT_NE(cache.get(c, treeC).get(), cache.get(a, treeA).get());
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(ScenarioCache, PairsOnlyAndTreeKernelsAreDistinctEntries)
{
    serve::ScenarioCache cache;
    const layout::Layout l = layout::meshLayout(3, 3);
    const auto tree = clocktree::buildHTreeGrid(l, 3, 3);
    const auto pairsOnly = cache.get(l);
    const auto withTree = cache.get(l, tree);
    EXPECT_NE(pairsOnly.get(), withTree.get());
    EXPECT_FALSE(pairsOnly->hasTree());
    EXPECT_TRUE(withTree->hasTree());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ScenarioCache, LruEvictsTheLeastRecentlyUsedEntry)
{
    serve::ScenarioCache::Config cfg;
    cfg.capacity = 2;
    serve::ScenarioCache cache(cfg);
    const layout::Layout a = layout::meshLayout(2, 2);
    const layout::Layout b = layout::meshLayout(2, 3);
    const layout::Layout c = layout::meshLayout(3, 2);

    const core::SkewKernel *ka = cache.get(a).get();
    cache.get(b);
    cache.get(a);              // touch a: b is now the coldest
    cache.get(c);              // evicts b
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.size(), 2u);

    EXPECT_EQ(cache.get(a).get(), ka); // a survived (hit)
    const auto hitsBefore = cache.hits();
    cache.get(b);              // b was evicted: recompile
    EXPECT_EQ(cache.hits(), hitsBefore);
    EXPECT_EQ(cache.misses(), 4u); // a, b, c, and b again
}

TEST(ScenarioCache, ConcurrentGetCompilesExactlyOnce)
{
    serve::ScenarioCache cache;
    const layout::Layout l = layout::meshLayout(8, 8);
    const auto tree = clocktree::buildHTreeGrid(l, 8, 8);

    constexpr int threads = 8;
    std::atomic<int> ready{0};
    std::vector<std::shared_ptr<const core::SkewKernel>> got(threads);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back([&, t] {
            // Rendezvous so the gets really race.
            ready.fetch_add(1);
            while (ready.load() < threads)
                std::this_thread::yield();
            got[t] = cache.get(l, tree);
        });
    for (auto &th : pool)
        th.join();

    for (int t = 1; t < threads; ++t)
        EXPECT_EQ(got[t].get(), got[0].get());
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(threads - 1));
}

TEST(ScenarioCache, ProviderFeedsSweepsBitIdentically)
{
    // The cached provider must change nothing about the numbers, at
    // any thread count, for both sweep families.
    const layout::Layout l = layout::meshLayout(6, 6);
    const auto tree = clocktree::buildHTreeGrid(l, 6, 6);
    serve::ScenarioCache cache;
    const core::KernelProvider cached = cache.provider();

    for (const unsigned tc : kThreadCounts) {
        mc::McConfig cfg;
        cfg.seed = 0xfeed;
        cfg.trials = 48;
        cfg.threads = tc;
        cfg.grain = 4;
        const mc::McResult direct = mc::skewSweep(l, tree, kDelay, cfg);
        const mc::McResult viaCache =
            mc::skewSweep(l, tree, kDelay, cfg, cached);
        EXPECT_TRUE(viaCache.bitIdentical(direct)) << tc;

        mc::ResilienceConfig rc;
        const mc::ResiliencePoint pd = mc::resilienceAtRate(
            l, 6, 6, mc::DistributionKind::HTree, 0.02, rc, cfg);
        const mc::ResiliencePoint pc = mc::resilienceAtRate(
            l, 6, 6, mc::DistributionKind::HTree, 0.02, rc, cfg,
            cached);
        EXPECT_TRUE(
            pc.maxCommSkew.bitIdentical(pd.maxCommSkew)) << tc;
        EXPECT_TRUE(pc.clockedFraction.bitIdentical(pd.clockedFraction))
            << tc;
        EXPECT_EQ(pc.meanFaults, pd.meanFaults) << tc;
    }
    // One tree kernel for the skew sweeps, one more for the resilience
    // tree (same scenario -> shared), never recompiled across rounds.
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_GE(cache.hits(), 5u);
}

TEST(SweepService, SkewBatchMatchesMcSweepAtAllThreadCounts)
{
    const layout::Layout l = layout::meshLayout(6, 6);
    const auto tree = clocktree::buildHTreeGrid(l, 6, 6);

    mc::McConfig cfgA;
    cfgA.seed = 11;
    cfgA.trials = 64;
    cfgA.grain = 4;
    mc::McConfig cfgB;
    cfgB.seed = 22;
    cfgB.trials = 37; // deliberately not a multiple of grain
    cfgB.grain = 16;

    const mc::McResult refA = mc::skewSweep(l, tree, kDelay, cfgA);
    const mc::McResult refB = mc::skewSweep(l, tree, kDelay, cfgB);

    for (const unsigned tc : kThreadCounts) {
        serve::ServiceConfig sc;
        sc.threads = tc;
        serve::SweepService svc(sc);
        const std::vector<serve::SweepRequest> batch = {
            serve::SkewRequest{&l, &tree, kDelay, cfgA},
            serve::SkewRequest{&l, &tree, kDelay, cfgB},
        };
        const serve::BatchOutcome out = svc.run(batch);
        ASSERT_EQ(out.outcomes.size(), 2u);
        EXPECT_FALSE(out.cancelled);
        EXPECT_FALSE(out.deadlineExpired);
        for (const auto &o : out.outcomes) {
            EXPECT_EQ(o.status, serve::RequestStatus::Complete);
            EXPECT_EQ(o.trialsDone, o.trialsRequested);
            EXPECT_TRUE(o.trialDone.empty());
        }
        EXPECT_TRUE(out.outcomes[0].skew.bitIdentical(refA)) << tc;
        EXPECT_TRUE(out.outcomes[1].skew.bitIdentical(refB)) << tc;
        // Same scenario twice: one compile, one hit.
        EXPECT_EQ(svc.cache().misses(), 1u);
        EXPECT_EQ(svc.cache().hits(), 1u);
    }
}

TEST(SweepService, ResilienceBatchMatchesMcAtAllThreadCounts)
{
    const layout::Layout l = layout::meshLayout(4, 4);
    mc::McConfig cfg;
    cfg.seed = 99;
    cfg.trials = 40;
    cfg.grain = 4;
    mc::ResilienceConfig rc;

    const mc::ResiliencePoint refTree = mc::resilienceAtRate(
        l, 4, 4, mc::DistributionKind::HTree, 0.05, rc, cfg);
    const mc::ResiliencePoint refGrid = mc::resilienceAtRate(
        l, 4, 4, mc::DistributionKind::TrixGrid, 0.05, rc, cfg);

    for (const unsigned tc : kThreadCounts) {
        serve::ServiceConfig sc;
        sc.threads = tc;
        serve::SweepService svc(sc);
        serve::ResilienceRequest tree;
        tree.layout = &l;
        tree.rows = 4;
        tree.cols = 4;
        tree.kind = mc::DistributionKind::HTree;
        tree.faultRate = 0.05;
        tree.rc = rc;
        tree.cfg = cfg;
        serve::ResilienceRequest grid = tree;
        grid.kind = mc::DistributionKind::TrixGrid;

        const serve::BatchOutcome out = svc.run({tree, grid});
        ASSERT_EQ(out.outcomes.size(), 2u);
        const auto &ot = out.outcomes[0].resilience;
        const auto &og = out.outcomes[1].resilience;
        EXPECT_TRUE(ot.maxCommSkew.bitIdentical(refTree.maxCommSkew))
            << tc;
        EXPECT_TRUE(
            ot.clockedFraction.bitIdentical(refTree.clockedFraction))
            << tc;
        EXPECT_EQ(ot.meanFaults, refTree.meanFaults) << tc;
        EXPECT_EQ(ot.faultRate, 0.05);
        EXPECT_TRUE(og.maxCommSkew.bitIdentical(refGrid.maxCommSkew))
            << tc;
        EXPECT_EQ(og.meanFaults, refGrid.meanFaults) << tc;
    }
}

TEST(SweepService, PreCancelledBatchIsFlaggedPartialWithZeroTrials)
{
    const layout::Layout l = layout::meshLayout(4, 4);
    const auto tree = clocktree::buildHTreeGrid(l, 4, 4);
    mc::McConfig cfg;
    cfg.trials = 50;

    serve::SweepService svc;
    CancelToken token;
    token.cancel();
    serve::BatchOptions opts;
    opts.cancel = &token;
    const serve::BatchOutcome out =
        svc.run({serve::SkewRequest{&l, &tree, kDelay, cfg}}, opts);

    ASSERT_EQ(out.outcomes.size(), 1u);
    EXPECT_TRUE(out.cancelled);
    const auto &o = out.outcomes[0];
    EXPECT_EQ(o.status, serve::RequestStatus::Partial);
    EXPECT_EQ(o.trialsDone, 0u);
    EXPECT_EQ(o.trialsRequested, 50u);
    // Never silently truncated: the mask and samples keep full size.
    ASSERT_EQ(o.trialDone.size(), 50u);
    for (const auto d : o.trialDone)
        EXPECT_EQ(d, 0);
    EXPECT_EQ(o.skew.samples.size(), 50u);
    EXPECT_EQ(o.skew.stat.count(), 0u);
}

TEST(SweepService, ZeroDeadlineExpiresBeforeAnyTrial)
{
    const layout::Layout l = layout::meshLayout(4, 4);
    const auto tree = clocktree::buildHTreeGrid(l, 4, 4);
    mc::McConfig cfg;
    cfg.trials = 50;

    serve::SweepService svc;
    serve::BatchOptions opts;
    opts.deadlineSeconds = 0.0;
    const serve::BatchOutcome out =
        svc.run({serve::SkewRequest{&l, &tree, kDelay, cfg}}, opts);

    EXPECT_TRUE(out.deadlineExpired);
    EXPECT_FALSE(out.cancelled);
    EXPECT_EQ(out.outcomes[0].status, serve::RequestStatus::Partial);
    EXPECT_EQ(out.outcomes[0].trialsDone, 0u);
}

TEST(SweepService, DeadlinedPartialResultsMatchTheFullRunPrefix)
{
    // A batch too slow for its deadline must come back Partial with
    // every completed trial bit-identical to the full run -- partial
    // means "fewer trials", never "different trials".
    const layout::Layout l = layout::meshLayout(6, 6);
    mc::McConfig cfg;
    cfg.seed = 1234;
    cfg.trials = 1500;
    cfg.grain = 1;
    mc::ResilienceConfig rc;
    serve::ResilienceRequest rq;
    rq.layout = &l;
    rq.rows = 6;
    rq.cols = 6;
    rq.kind = mc::DistributionKind::HTree;
    rq.faultRate = 0.02;
    rq.rc = rc;
    rq.cfg = cfg;

    serve::ServiceConfig sc;
    sc.threads = 2;
    serve::SweepService svc(sc);
    serve::BatchOptions opts;
    opts.deadlineSeconds = 0.03;
    const serve::BatchOutcome out = svc.run({rq}, opts);
    const auto &o = out.outcomes[0];

    if (o.status == serve::RequestStatus::Complete) {
        // Machine fast enough to beat the deadline: nothing to check
        // beyond completeness (bit-identity is covered elsewhere).
        EXPECT_EQ(o.trialsDone, cfg.trials);
        return;
    }

    EXPECT_TRUE(out.deadlineExpired);
    EXPECT_LT(o.trialsDone, cfg.trials);
    ASSERT_EQ(o.trialDone.size(), cfg.trials);
    std::size_t done = 0;
    for (const auto d : o.trialDone)
        done += d;
    EXPECT_EQ(done, o.trialsDone);
    EXPECT_EQ(o.resilience.maxCommSkew.stat.count(), o.trialsDone);
    EXPECT_EQ(o.resilience.clockedFraction.stat.count(), o.trialsDone);

    const mc::ResiliencePoint full = mc::resilienceAtRate(
        l, 6, 6, mc::DistributionKind::HTree, 0.02, rc, cfg);
    for (std::size_t i = 0; i < cfg.trials; ++i) {
        if (!o.trialDone[i])
            continue;
        EXPECT_EQ(o.resilience.maxCommSkew.samples[i],
                  full.maxCommSkew.samples[i])
            << i;
        EXPECT_EQ(o.resilience.clockedFraction.samples[i],
                  full.clockedFraction.samples[i])
            << i;
    }
}

TEST(ScenarioCache, CapacityOneSequentialChurnEvictsInOrder)
{
    // The degenerate capacity: every distinct scenario evicts its
    // predecessor, in exactly insertion order, and the cache never
    // holds more than one entry.
    serve::ScenarioCache::Config cfg;
    cfg.capacity = 1;
    serve::ScenarioCache cache(cfg);

    const layout::Layout a = layout::meshLayout(1, 2);
    const layout::Layout b = layout::meshLayout(1, 3);

    cache.get(a);
    EXPECT_EQ(cache.evictions(), 0u);
    cache.get(b); // evicts a
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.size(), 1u);
    cache.get(b); // resident: a hit, no churn
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.evictions(), 1u);
    cache.get(a); // evicted earlier: recompile, evicts b
    EXPECT_EQ(cache.misses(), 3u);
    EXPECT_EQ(cache.evictions(), 2u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ScenarioCache, ConcurrentInsertStormAtCapacityOne)
{
    // Thrash a capacity-1 cache from many threads with distinct
    // scenarios: inserts race with evictions and with the
    // generation-tagged erase path. The cache must stay bounded, hand
    // every caller the kernel of *its* scenario, and keep its
    // counters consistent.
    serve::ScenarioCache::Config cfg;
    cfg.capacity = 1;
    serve::ScenarioCache cache(cfg);

    constexpr int threads = 8;
    constexpr int rounds = 6;
    std::vector<layout::Layout> layouts;
    for (int i = 0; i < threads; ++i)
        layouts.push_back(layout::meshLayout(1, 2 + i));

    std::atomic<int> ready{0};
    std::atomic<int> wrongKernels{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back([&, t] {
            ready.fetch_add(1);
            while (ready.load() < threads)
                std::this_thread::yield();
            for (int r = 0; r < rounds; ++r) {
                // Rotate so threads collide on each other's entries.
                const layout::Layout &l =
                    layouts[(t + r) % threads];
                const auto kernel = cache.get(l);
                if (!kernel || kernel->cellCount() != l.size() ||
                    kernel->hasTree())
                    wrongKernels.fetch_add(1);
            }
        });
    for (auto &th : pool)
        th.join();

    EXPECT_EQ(wrongKernels.load(), 0);
    EXPECT_LE(cache.size(), 1u);
    // Every get is a hit or a miss, never both, never neither.
    EXPECT_EQ(cache.hits() + cache.misses(),
              static_cast<std::uint64_t>(threads * rounds));
    // Every miss inserted one entry; all but the survivors left
    // through the LRU bound (no compile failed, so the generation
    // erase path removed nothing).
    EXPECT_EQ(cache.evictions(), cache.misses() - cache.size());
}

TEST(SweepService, ExpiredDeadlineFailsFastWithoutCompiling)
{
    // The net:: front end maps "deadline spent in the admission
    // queue" to a non-positive budget, so this path must cost
    // nothing: no compile, no first chunk, full-size all-false mask.
    const layout::Layout l = layout::meshLayout(4, 4);
    const auto tree = clocktree::buildHTreeGrid(l, 4, 4);
    mc::McConfig cfg;
    cfg.trials = 50;

    for (const double deadline : {0.0, -3.5}) {
        serve::SweepService svc;
        serve::BatchOptions opts;
        opts.deadlineSeconds = deadline;
        const serve::BatchOutcome out =
            svc.run({serve::SkewRequest{&l, &tree, kDelay, cfg}},
                    opts);

        EXPECT_TRUE(out.deadlineExpired) << deadline;
        EXPECT_FALSE(out.cancelled) << deadline;
        EXPECT_EQ(svc.cache().misses(), 0u) << deadline;
        EXPECT_EQ(svc.cache().hits(), 0u) << deadline;
        const auto &o = out.outcomes[0];
        EXPECT_EQ(o.status, serve::RequestStatus::Partial) << deadline;
        EXPECT_EQ(o.trialsDone, 0u) << deadline;
        EXPECT_EQ(o.trialsRequested, 50u) << deadline;
        ASSERT_EQ(o.trialDone.size(), 50u) << deadline;
        for (const auto d : o.trialDone)
            EXPECT_EQ(d, 0);
        EXPECT_EQ(o.skew.stat.count(), 0u) << deadline;
    }
}

TEST(SweepService, CancelWhileIdleDoesNotPoisonTheNextRun)
{
    const layout::Layout l = layout::meshLayout(3, 3);
    const auto tree = clocktree::buildHTreeGrid(l, 3, 3);
    mc::McConfig cfg;
    cfg.trials = 16;

    serve::SweepService svc;
    svc.cancel(); // no batch in flight: must not affect the next one
    const serve::BatchOutcome out =
        svc.run({serve::SkewRequest{&l, &tree, kDelay, cfg}});
    EXPECT_FALSE(out.cancelled);
    EXPECT_EQ(out.outcomes[0].status, serve::RequestStatus::Complete);
}

TEST(SweepService, ExportsCacheAndBatchMetrics)
{
    obs::MetricsRegistry reg;
    const layout::Layout l = layout::meshLayout(4, 4);
    const auto tree = clocktree::buildHTreeGrid(l, 4, 4);
    mc::McConfig cfg;
    cfg.trials = 8;

    serve::ServiceConfig sc;
    sc.metrics = &reg;
    serve::SweepService svc(sc);
    svc.run({serve::SkewRequest{&l, &tree, kDelay, cfg},
             serve::SkewRequest{&l, &tree, kDelay, cfg}});

    EXPECT_EQ(reg.counter("serve.batch.requests").value(), 2u);
    EXPECT_EQ(reg.counter("serve.batch.trials_done").value(), 16u);
    EXPECT_EQ(reg.counter("serve.cache.misses").value(), 1u);
    EXPECT_EQ(reg.counter("serve.cache.hits").value(), 1u);
    EXPECT_EQ(reg.counter("serve.batch.cancelled").value(), 0u);
}

TEST(SweepService, ExportsPoolUtilizationMetrics)
{
    // The ThreadPool's utilization flows through the PoolObserver
    // seam into "serve.pool.*": exact job/chunk counts, an active
    // count that returns to zero, and high-water marks.
    obs::MetricsRegistry reg;
    const layout::Layout l = layout::meshLayout(4, 4);
    const auto tree = clocktree::buildHTreeGrid(l, 4, 4);
    mc::McConfig cfg;
    cfg.trials = 8;
    cfg.grain = 2;

    serve::ServiceConfig sc;
    sc.threads = 2;
    sc.metrics = &reg;
    serve::SweepService svc(sc);
    svc.run({serve::SkewRequest{&l, &tree, kDelay, cfg},
             serve::SkewRequest{&l, &tree, kDelay, cfg}});

    // One parallelForRange per batch; its units are the grain-sized
    // trial slices of both requests: 2 * (8 / 2).
    EXPECT_EQ(reg.counter("serve.pool.jobs").value(), 1u);
    EXPECT_EQ(reg.counter("serve.pool.chunks").value(), 8u);
    EXPECT_EQ(reg.gauge("serve.pool.active_workers").value(), 0.0);
    EXPECT_GE(reg.gauge("serve.pool.active_workers_hwm").value(), 1.0);
    EXPECT_LE(reg.gauge("serve.pool.active_workers_hwm").value(), 2.0);
    // 8 chunks through a 2-wide pool: some chunk must have seen
    // others still waiting.
    EXPECT_GE(reg.gauge("serve.pool.queue_depth_hwm").value(), 1.0);
    EXPECT_LE(reg.gauge("serve.pool.queue_depth_hwm").value(), 7.0);
}

} // namespace
