/**
 * @file
 * Shared helpers for the test binaries.
 */

#ifndef VSYNC_TESTS_TEST_UTIL_HH
#define VSYNC_TESTS_TEST_UTIL_HH

#include <gtest/gtest.h>

namespace vsync::testutil
{

/**
 * Select the "threadsafe" death-test style, which re-executes the test
 * binary instead of forking mid-run. GTEST_FLAG_SET only exists from
 * GoogleTest 1.12 on; older releases (the toolchain ships 1.11) expose
 * the flag as a plain global.
 */
inline void
useThreadsafeDeathTests()
{
#if defined(GTEST_FLAG_SET)
    GTEST_FLAG_SET(death_test_style, "threadsafe");
#else
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
#endif
}

} // namespace vsync::testutil

#endif // VSYNC_TESTS_TEST_UTIL_HH
