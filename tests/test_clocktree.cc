/**
 * @file
 * Tests for clock trees and their builders (Figs 3 and 4).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "clocktree/builders.hh"
#include "clocktree/clock_tree.hh"
#include "common/rng.hh"
#include "layout/generators.hh"

namespace
{

using namespace vsync;
using namespace vsync::clocktree;

TEST(ClockTree, ManualConstruction)
{
    ClockTree t;
    const NodeId root = t.addRoot({0, 0});
    const NodeId a = t.addChild(root, {2, 0});
    const NodeId b = t.addChild(root, {0, 3});
    t.bindCell(a, 0);
    t.bindCell(b, 1);
    EXPECT_TRUE(t.validate(false));
    EXPECT_DOUBLE_EQ(t.rootPathLength(a), 2.0);
    EXPECT_DOUBLE_EQ(t.rootPathLength(b), 3.0);
    EXPECT_DOUBLE_EQ(t.pathDifference(a, b), 1.0);
    EXPECT_DOUBLE_EQ(t.treeDistance(a, b), 5.0);
    EXPECT_DOUBLE_EQ(t.maxRootPathLength(), 3.0);
    EXPECT_DOUBLE_EQ(t.totalWireLength(), 5.0);
    EXPECT_EQ(t.nodeOfCell(0), a);
    EXPECT_EQ(t.cellOfNode(b), 1);
    EXPECT_EQ(t.boundCellCount(), 2u);
}

TEST(ClockTree, PadWireLengthensWithoutMoving)
{
    ClockTree t;
    const NodeId root = t.addRoot({0, 0});
    const NodeId a = t.addChild(root, {1, 0});
    t.padWire(a, 2.5);
    EXPECT_DOUBLE_EQ(t.rootPathLength(a), 3.5);
    EXPECT_TRUE(t.validate(false));
}

TEST(ClockTree, TreeDistanceOfAncestorPair)
{
    ClockTree t;
    const NodeId root = t.addRoot({0, 0});
    const NodeId a = t.addChild(root, {1, 0});
    const NodeId b = t.addChild(a, {2, 0});
    // s == d when one node is the other's ancestor.
    EXPECT_DOUBLE_EQ(t.treeDistance(root, b), 2.0);
    EXPECT_DOUBLE_EQ(t.pathDifference(root, b), 2.0);
}

TEST(Spine, NeighborsConstantTreeDistance)
{
    for (int n : {4, 16, 64, 256}) {
        const layout::Layout l = layout::linearLayout(n);
        const ClockTree t = buildSpine(l);
        EXPECT_TRUE(t.validate(false));
        EXPECT_EQ(t.boundCellCount(), static_cast<std::size_t>(n));
        for (int i = 0; i + 1 < n; ++i) {
            const NodeId a = t.nodeOfCell(i);
            const NodeId b = t.nodeOfCell(i + 1);
            EXPECT_DOUBLE_EQ(t.treeDistance(a, b), 1.0);
        }
    }
}

TEST(Spine, RootPathGrowsLinearly)
{
    const layout::Layout l = layout::linearLayout(100);
    const ClockTree t = buildSpine(l);
    EXPECT_DOUBLE_EQ(t.maxRootPathLength(), 100.0);
}

TEST(Chain, FollowsGivenOrder)
{
    const layout::Layout l = layout::foldedLinearLayout(8);
    std::vector<CellId> order{0, 1, 2, 3, 4, 5, 6, 7};
    const ClockTree t = buildChain(l, order, {-1.0, 0.0});
    EXPECT_TRUE(t.validate(false));
    // Across the fold (cells 3 and 4) the chain step is one pitch.
    EXPECT_DOUBLE_EQ(
        t.treeDistance(t.nodeOfCell(3), t.nodeOfCell(4)), 1.0);
}

TEST(HTree, PowerOfTwoMeshIsExactlyEquidistant)
{
    const layout::Layout l = layout::meshLayout(8, 8);
    const ClockTree t = buildHTreeGrid(l, 8, 8, false);
    EXPECT_TRUE(t.validate(false));
    EXPECT_EQ(t.boundCellCount(), 64u);
    const Length h0 = t.rootPathLength(t.nodeOfCell(0));
    for (CellId c = 0; c < 64; ++c)
        EXPECT_NEAR(t.rootPathLength(t.nodeOfCell(c)), h0, 1e-9)
            << "cell " << c;
}

TEST(HTree, EqualizedNonPowerOfTwo)
{
    const layout::Layout l = layout::meshLayout(5, 7);
    const ClockTree t = buildHTreeGrid(l, 5, 7, true);
    const Length h0 = t.rootPathLength(t.nodeOfCell(0));
    for (CellId c = 0; c < 35; ++c)
        EXPECT_NEAR(t.rootPathLength(t.nodeOfCell(c)), h0, 1e-9);
}

TEST(HTree, LinearArrayEquidistant)
{
    const layout::Layout l = layout::linearLayout(16);
    const ClockTree t = buildHTreeLinear(l, false);
    const Length h0 = t.rootPathLength(t.nodeOfCell(0));
    for (CellId c = 0; c < 16; ++c)
        EXPECT_NEAR(t.rootPathLength(t.nodeOfCell(c)), h0, 1e-9);
}

TEST(HTree, HexArrayEqualizedEquidistant)
{
    const layout::Layout l = layout::hexLayout(4, 4);
    const ClockTree t = buildHTreeGrid(l, 4, 4, true);
    const Length h0 = t.rootPathLength(t.nodeOfCell(0));
    for (CellId c = 0; c < 16; ++c)
        EXPECT_NEAR(t.rootPathLength(t.nodeOfCell(c)), h0, 1e-9);
}

TEST(HTree, WireAreaWithinConstantFactorOfLayout)
{
    for (int n : {8, 16, 32}) {
        const layout::Layout l = layout::meshLayout(n, n);
        const ClockTree t = buildHTreeGrid(l, n, n, false);
        // Lemma 1: total clock wiring is O(layout area).
        EXPECT_LE(t.totalWireLength(), 4.0 * l.boundingBox().area())
            << n;
    }
}

TEST(RecursiveBisection, BindsAllCells)
{
    const layout::Layout l = layout::meshLayout(6, 5);
    const ClockTree t = buildRecursiveBisection(l);
    EXPECT_TRUE(t.validate(false));
    EXPECT_EQ(t.boundCellCount(), 30u);
    for (CellId c = 0; c < 30; ++c)
        EXPECT_NE(t.nodeOfCell(c), invalidId);
}

TEST(RandomTree, ValidAndComplete)
{
    Rng rng(77);
    const layout::Layout l = layout::meshLayout(4, 4);
    for (int trial = 0; trial < 5; ++trial) {
        const ClockTree t = buildRandomTree(l, rng);
        EXPECT_TRUE(t.validate(false));
        EXPECT_EQ(t.boundCellCount(), 16u);
    }
}

TEST(RandomTree, DifferentSeedsGiveDifferentShapes)
{
    Rng r1(1), r2(2);
    const layout::Layout l = layout::meshLayout(4, 4);
    const ClockTree a = buildRandomTree(l, r1);
    const ClockTree b = buildRandomTree(l, r2);
    // Total wire length almost surely differs between seeds.
    EXPECT_NE(a.totalWireLength(), b.totalWireLength());
}

TEST(Spine, ExpandabilityAppendWithoutReanalysis)
{
    // The paper's modularity claim: extend a running 1-D array by
    // appending cells to the spine; existing bindings, distances and
    // the worst communicating-pair separation are untouched.
    const layout::Layout small = layout::linearLayout(16);
    ClockTree t = buildSpine(small);
    const Length h5_before = t.rootPathLength(t.nodeOfCell(5));

    // Append 16 more cells by continuing the chain.
    NodeId tail = t.nodeOfCell(15);
    for (int i = 16; i < 32; ++i) {
        const NodeId node =
            t.addChild(tail, {static_cast<Length>(i), 0.0});
        t.bindCell(node, i);
        tail = node;
    }
    EXPECT_TRUE(t.validate(false));
    EXPECT_EQ(t.boundCellCount(), 32u);
    // Old cells unchanged.
    EXPECT_DOUBLE_EQ(t.rootPathLength(t.nodeOfCell(5)), h5_before);
    // Every neighbouring pair, old or new, still one pitch apart.
    for (int i = 0; i + 1 < 32; ++i) {
        EXPECT_DOUBLE_EQ(
            t.treeDistance(t.nodeOfCell(i), t.nodeOfCell(i + 1)), 1.0);
    }
}

TEST(ClockTree, SingleCellLayouts)
{
    const layout::Layout l = layout::linearLayout(1);
    const ClockTree spine = buildSpine(l);
    EXPECT_EQ(spine.boundCellCount(), 1u);
    const ClockTree h = buildHTreeLinear(l);
    EXPECT_EQ(h.boundCellCount(), 1u);
    const ClockTree rb = buildRecursiveBisection(l);
    EXPECT_EQ(rb.boundCellCount(), 1u);
}

} // namespace
