/**
 * @file
 * Tests for the synchronization scheme advisor.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/advisor.hh"

namespace
{

using namespace vsync;
using namespace vsync::core;
using graph::TopologyKind;

TechnologyAssumptions
summationTech()
{
    TechnologyAssumptions t;
    t.skewModel = SkewModelKind::Summation;
    t.temporalInvariance = true;
    t.smallSystem = false;
    return t;
}

TEST(Advisor, LinearArrayGetsSpine)
{
    const Advice a = adviseScheme(TopologyKind::Linear, summationTech());
    EXPECT_EQ(a.scheme, SyncScheme::PipelinedSpine);
    EXPECT_EQ(a.periodGrowth, GrowthLaw::Constant);
    EXPECT_NE(a.justification.find("Theorem 3"), std::string::npos);
}

TEST(Advisor, RingTreatedAsOneDimensional)
{
    const Advice a = adviseScheme(TopologyKind::Ring, summationTech());
    EXPECT_EQ(a.scheme, SyncScheme::PipelinedSpine);
}

TEST(Advisor, MeshNeedsHybridUnderSummation)
{
    for (TopologyKind k :
         {TopologyKind::Mesh, TopologyKind::Torus, TopologyKind::Hex}) {
        const Advice a = adviseScheme(k, summationTech());
        EXPECT_EQ(a.scheme, SyncScheme::Hybrid);
        EXPECT_EQ(a.periodGrowth, GrowthLaw::Constant);
        EXPECT_NE(a.justification.find("Theorem 6"), std::string::npos);
    }
}

TEST(Advisor, TreeClocksAlongDataPaths)
{
    const Advice a =
        adviseScheme(TopologyKind::BinaryTree, summationTech());
    EXPECT_EQ(a.scheme, SyncScheme::ClockAlongDataPaths);
    EXPECT_NE(a.justification.find("Section VIII"), std::string::npos);
}

TEST(Advisor, DifferenceModelAllowsHTreeEverywhere)
{
    TechnologyAssumptions t = summationTech();
    t.skewModel = SkewModelKind::Difference;
    for (TopologyKind k :
         {TopologyKind::Linear, TopologyKind::Mesh,
          TopologyKind::BinaryTree}) {
        const Advice a = adviseScheme(k, t);
        EXPECT_EQ(a.scheme, SyncScheme::PipelinedHTree);
        EXPECT_EQ(a.periodGrowth, GrowthLaw::Constant);
    }
}

TEST(Advisor, NoTemporalInvarianceForcesHybrid)
{
    TechnologyAssumptions t = summationTech();
    t.temporalInvariance = false;
    for (TopologyKind k : {TopologyKind::Linear, TopologyKind::Mesh}) {
        const Advice a = adviseScheme(k, t);
        EXPECT_EQ(a.scheme, SyncScheme::Hybrid);
        EXPECT_NE(a.justification.find("A8"), std::string::npos);
    }
}

TEST(Advisor, SmallSystemsKeepGlobalClock)
{
    TechnologyAssumptions t = summationTech();
    t.smallSystem = true;
    const Advice a = adviseScheme(TopologyKind::Mesh, t);
    EXPECT_EQ(a.scheme, SyncScheme::GlobalEquipotential);
    EXPECT_NE(a.justification.find("Section VII"), std::string::npos);
}

TEST(Advisor, SchemeNamesAreDistinct)
{
    std::vector<std::string> names;
    for (SyncScheme s :
         {SyncScheme::GlobalEquipotential, SyncScheme::PipelinedHTree,
          SyncScheme::PipelinedSpine, SyncScheme::ClockAlongDataPaths,
          SyncScheme::Hybrid, SyncScheme::FullySelfTimed}) {
        names.push_back(syncSchemeName(s));
    }
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

} // namespace
