/**
 * @file
 * Tests for rooted binary trees and the Lemma 5 separator.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "graph/tree.hh"

namespace
{

using vsync::invalidId;
using vsync::NodeId;
using vsync::Rng;
using vsync::graph::findSeparatorEdge;
using vsync::graph::RootedTree;

/** A complete binary tree with @p levels levels in heap order. */
RootedTree
heapTree(int levels)
{
    const int n = (1 << levels) - 1;
    RootedTree t(static_cast<std::size_t>(n));
    for (NodeId v = 1; v < n; ++v)
        t.setParent(v, (v - 1) / 2);
    return t;
}

/** A random binary tree built by attaching under random open slots. */
RootedTree
randomBinaryTree(int n, Rng &rng)
{
    RootedTree t(static_cast<std::size_t>(n));
    std::vector<NodeId> open{0};
    for (NodeId v = 1; v < n; ++v) {
        const std::size_t pick = rng.uniformInt(open.size());
        const NodeId parent = open[pick];
        t.setParent(v, parent);
        if (t.children(parent).size() == 2)
            open.erase(open.begin() + static_cast<long>(pick));
        open.push_back(v);
    }
    return t;
}

TEST(RootedTree, StructureBasics)
{
    RootedTree t(5);
    t.setParent(1, 0);
    t.setParent(2, 0);
    t.setParent(3, 1);
    t.setParent(4, 1);
    EXPECT_TRUE(t.valid());
    EXPECT_EQ(t.root(), 0);
    EXPECT_EQ(t.parent(3), 1);
    EXPECT_EQ(t.depth(0), 0);
    EXPECT_EQ(t.depth(4), 2);
    EXPECT_EQ(t.children(0).size(), 2u);
}

TEST(RootedTree, NcaExamples)
{
    const RootedTree t = heapTree(4);
    EXPECT_EQ(t.nca(7, 8), 3);
    EXPECT_EQ(t.nca(7, 4), 1);
    EXPECT_EQ(t.nca(7, 14), 0);
    EXPECT_EQ(t.nca(5, 5), 5);
    EXPECT_EQ(t.nca(3, 7), 3); // ancestor case
}

TEST(RootedTree, SubtreeMarkCounts)
{
    const RootedTree t = heapTree(3);
    std::vector<bool> marked(7, false);
    marked[3] = marked[4] = marked[2] = true;
    const auto counts = t.subtreeMarkCounts(marked);
    EXPECT_EQ(counts[0], 3);
    EXPECT_EQ(counts[1], 2);
    EXPECT_EQ(counts[2], 1);
    EXPECT_EQ(counts[3], 1);
    EXPECT_EQ(counts[5], 0);
}

TEST(RootedTree, SubtreeNodes)
{
    const RootedTree t = heapTree(3);
    auto nodes = t.subtreeNodes(1);
    std::sort(nodes.begin(), nodes.end());
    EXPECT_EQ(nodes, (std::vector<NodeId>{1, 3, 4}));
}

TEST(RootedTree, ForestIsInvalid)
{
    RootedTree t(3);
    t.setParent(1, 0);
    EXPECT_FALSE(t.valid()); // node 2 is a second root
}

TEST(Lemma5, CompleteTreeAllMarked)
{
    const RootedTree t = heapTree(5);
    std::vector<bool> marked(t.size(), true);
    const auto sep = findSeparatorEdge(t, marked);
    const int total = static_cast<int>(t.size());
    const int limit = (2 * total + 2) / 3;
    EXPECT_LE(sep.insideCount, limit);
    EXPECT_LE(sep.outsideCount, limit);
    EXPECT_EQ(sep.insideCount + sep.outsideCount, total);
}

TEST(Lemma5, TwoMarksSplit)
{
    const RootedTree t = heapTree(3);
    std::vector<bool> marked(7, false);
    marked[3] = marked[6] = true;
    const auto sep = findSeparatorEdge(t, marked);
    EXPECT_GE(sep.insideCount, 1);
    EXPECT_LE(sep.insideCount, 2);
}

TEST(Lemma5, ChainTree)
{
    // A degenerate chain (every node one child) with all nodes marked.
    const int n = 30;
    RootedTree t(n);
    for (NodeId v = 1; v < n; ++v)
        t.setParent(v, v - 1);
    std::vector<bool> marked(n, true);
    const auto sep = findSeparatorEdge(t, marked);
    const int limit = (2 * n + 2) / 3;
    EXPECT_LE(sep.insideCount, limit);
    EXPECT_LE(sep.outsideCount, limit);
}

/** Property sweep: Lemma 5 holds for random trees and random marks. */
class Lemma5Property : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Lemma5Property, SeparatorBalanced)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 20; ++trial) {
        const int n = 2 + static_cast<int>(rng.uniformInt(120));
        RootedTree t = randomBinaryTree(n, rng);
        std::vector<bool> marked(t.size(), false);
        int total = 0;
        for (std::size_t v = 0; v < t.size(); ++v) {
            if (rng.bernoulli(0.5)) {
                marked[v] = true;
                ++total;
            }
        }
        if (total < 2)
            continue;
        const auto sep = findSeparatorEdge(t, marked);
        const int limit = (2 * total + 2) / 3;
        EXPECT_LE(sep.insideCount, limit);
        EXPECT_LE(sep.outsideCount, limit);
        EXPECT_EQ(sep.insideCount + sep.outsideCount, total);
        EXPECT_NE(sep.child, invalidId);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma5Property,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

} // namespace
