/**
 * @file
 * Tests for the racetrack ring layout and the double-comb clock tree:
 * the Theorem 3 guarantee extended to rings (wrap link included).
 */

#include <gtest/gtest.h>

#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/skew_analysis.hh"
#include "core/skew_model.hh"
#include "layout/generators.hh"

namespace
{

using namespace vsync;

TEST(RacetrackRing, AllRingEdgesShort)
{
    for (int n : {4, 7, 16, 33}) {
        const layout::Layout l = layout::racetrackRingLayout(n);
        EXPECT_TRUE(l.validate(false)) << n;
        // Every edge, wrap included, within two pitches.
        EXPECT_LE(l.maxEdgeLength(), 2.0 + 1e-9) << n;
    }
}

TEST(RacetrackRing, EvenRingWrapIsOnePitch)
{
    const layout::Layout l = layout::racetrackRingLayout(10);
    EXPECT_DOUBLE_EQ(
        geom::manhattan(l.position(0), l.position(9)), 1.0);
}

TEST(DoubleComb, ValidAndBindsAllCells)
{
    for (int n : {4, 9, 32}) {
        const layout::Layout l = layout::racetrackRingLayout(n);
        const auto t = clocktree::buildDoubleComb(l);
        EXPECT_TRUE(t.validate(false)) << n;
        EXPECT_EQ(t.boundCellCount(), static_cast<std::size_t>(n));
    }
}

TEST(DoubleComb, WorksOnFoldedChainsToo)
{
    const layout::Layout l = layout::foldedLinearLayout(12);
    const auto t = clocktree::buildDoubleComb(l);
    EXPECT_TRUE(t.validate(false));
    EXPECT_EQ(t.boundCellCount(), 12u);
}

TEST(DoubleComb, AllCommPairsBoundedTreeDistance)
{
    for (int n : {6, 16, 64, 256}) {
        const layout::Layout l = layout::racetrackRingLayout(n);
        const auto t = clocktree::buildDoubleComb(l);
        const auto model = core::SkewModel::summation(0.05, 0.005);
        const auto report = core::analyzeSkew(l, t, model);
        // Same column: 1 pitch; adjacent columns: 2 pitches. The odd
        // wrap column pair can span one extra step.
        EXPECT_LE(report.maxS, 3.0 + 1e-9) << n;
    }
}

TEST(DoubleComb, RingSkewIndependentOfSize)
{
    const auto model = core::SkewModel::summation(0.05, 0.005);
    double sigma16 = 0.0, sigma256 = 0.0;
    for (int n : {16, 256}) {
        const layout::Layout l = layout::racetrackRingLayout(n);
        const auto t = clocktree::buildDoubleComb(l);
        const auto report = core::analyzeSkew(l, t, model);
        (n == 16 ? sigma16 : sigma256) = report.maxSkewUpper;
    }
    EXPECT_DOUBLE_EQ(sigma16, sigma256);
}

TEST(DoubleComb, BeatsTheSpineOnRings)
{
    // The naive spine around the ring leaves the wrap pair a tree
    // distance of ~n; the double comb keeps it constant.
    const int n = 64;
    const layout::Layout l = layout::racetrackRingLayout(n);
    const auto comb = clocktree::buildDoubleComb(l);
    const auto spine = clocktree::buildSpine(l);
    const auto model = core::SkewModel::summation(0.05, 0.005);
    const auto comb_report = core::analyzeSkew(l, comb, model);
    const auto spine_report = core::analyzeSkew(l, spine, model);
    EXPECT_GT(spine_report.maxS, 10.0 * comb_report.maxS);
}

TEST(DoubleComb, InstanceSkewsRespectBounds)
{
    Rng rng(77);
    const layout::Layout l = layout::racetrackRingLayout(32);
    const auto t = clocktree::buildDoubleComb(l);
    const double m = 0.05, eps = 0.005;
    const auto model = core::SkewModel::summation(m, eps);
    const auto report = core::analyzeSkew(l, t, model);
    for (int trial = 0; trial < 20; ++trial) {
        const auto inst = core::sampleSkewInstance(l, t, core::WireDelay{m, eps}, rng);
        for (std::size_t i = 0; i < report.edges.size(); ++i)
            EXPECT_LE(inst.edgeSkew[i], report.edges[i].upper + 1e-9);
    }
}

} // namespace
