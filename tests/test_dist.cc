/**
 * @file
 * Tests for the distributed coordinator: bit-identity with a local
 * SweepService across fleet sizes and shard-assignment permutations,
 * recovery from a worker killed mid-run, tolerance of dead endpoints,
 * graceful degradation when the whole fleet is dead, straggler
 * hedging, and exact shard-ledger accounting throughout.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "clocktree/builders.hh"
#include "dist/coordinator.hh"
#include "layout/generators.hh"
#include "net/protocol.hh"
#include "net/server.hh"
#include "obs/metrics.hh"
#include "serve/sweep_service.hh"

namespace
{

using namespace vsync;

const core::WireDelay kDelay{0.05, 0.005};

/** A fleet of real in-process ScenarioServers. */
struct Fleet
{
    std::vector<std::unique_ptr<net::ScenarioServer>> servers;
    std::vector<dist::WorkerEndpoint> endpoints;

    explicit Fleet(unsigned n, unsigned compute_threads = 2)
    {
        for (unsigned i = 0; i < n; ++i) {
            net::ServerConfig sc;
            sc.computeThreads = compute_threads;
            auto s = std::make_unique<net::ScenarioServer>(sc);
            EXPECT_TRUE(s->start());
            endpoints.push_back(
                dist::WorkerEndpoint{"127.0.0.1", s->port()});
            servers.push_back(std::move(s));
        }
    }
};

/** Bind-then-close: a loopback port with nothing listening on it. */
std::uint16_t
deadPort()
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    ::close(fd);
    return ntohs(addr.sin_port);
}

/** Fast-failing coordinator knobs for tests. */
dist::DistConfig
testConfig(std::vector<dist::WorkerEndpoint> eps)
{
    dist::DistConfig cfg;
    cfg.workers = std::move(eps);
    cfg.pool.backoff.baseSeconds = 0.01;
    cfg.pool.backoff.capSeconds = 0.05;
    cfg.pool.pingTimeoutSeconds = 5.0;
    return cfg;
}

net::WireRequest
skewRequest(int rows, int cols, std::size_t trials, std::size_t grain)
{
    net::WireRequest rq;
    rq.kind = net::QueryKind::Skew;
    rq.scheme = net::WireScheme::HTree;
    rq.rows = rows;
    rq.cols = cols;
    rq.seed = 0xfeedULL;
    rq.trials = trials;
    rq.grain = grain;
    rq.delay = kDelay;
    return rq;
}

net::WireRequest
resilienceRequest(net::WireScheme scheme, std::size_t trials,
                  std::size_t grain)
{
    net::WireRequest rq;
    rq.kind = net::QueryKind::Resilience;
    rq.scheme = scheme;
    rq.rows = 4;
    rq.cols = 4;
    rq.faultRate = 0.05;
    rq.seed = 99;
    rq.trials = trials;
    rq.grain = grain;
    rq.delay = kDelay;
    return rq;
}

/**
 * The local reference: the same batch run by an in-process
 * SweepService, scenarios built exactly as ScenarioServer builds them.
 * Owns the layouts/trees the requests borrow.
 */
struct LocalReference
{
    std::vector<std::unique_ptr<layout::Layout>> layouts;
    std::vector<std::unique_ptr<clocktree::ClockTree>> trees;
    std::vector<serve::SweepRequest> batch;
    serve::BatchOutcome out;

    explicit LocalReference(const std::vector<net::WireRequest> &wire)
    {
        for (const net::WireRequest &rq : wire) {
            auto l = std::make_unique<layout::Layout>(
                layout::meshLayout(rq.rows, rq.cols));
            mc::McConfig mcc;
            mcc.seed = rq.seed;
            mcc.trials = rq.trials;
            mcc.grain = rq.grain;
            if (rq.kind == net::QueryKind::Skew) {
                auto t = std::make_unique<clocktree::ClockTree>(
                    rq.scheme == net::WireScheme::Spine
                        ? clocktree::buildSpine(*l)
                        : clocktree::buildHTreeGrid(*l, rq.rows,
                                                    rq.cols));
                serve::SkewRequest s;
                s.layout = l.get();
                s.tree = t.get();
                s.delay = rq.delay;
                s.cfg = mcc;
                batch.emplace_back(s);
                trees.push_back(std::move(t));
            } else {
                serve::ResilienceRequest r;
                r.layout = l.get();
                r.rows = rq.rows;
                r.cols = rq.cols;
                r.kind = rq.scheme == net::WireScheme::Trix
                             ? mc::DistributionKind::TrixGrid
                             : (rq.scheme == net::WireScheme::Spine
                                    ? mc::DistributionKind::Spine
                                    : mc::DistributionKind::HTree);
                r.faultRate = rq.faultRate;
                r.rc.delay = rq.delay;
                r.cfg = mcc;
                batch.emplace_back(r);
            }
            layouts.push_back(std::move(l));
        }
        serve::SweepService svc;
        out = svc.run(batch);
    }
};

/** Bitwise equality of a distributed outcome with the local one. */
void
expectBitIdentical(const serve::RequestOutcome &got,
                   const serve::RequestOutcome &want, std::size_t r)
{
    EXPECT_EQ(static_cast<int>(got.status),
              static_cast<int>(want.status))
        << r;
    EXPECT_EQ(got.trialsDone, want.trialsDone) << r;
    EXPECT_EQ(got.trialsRequested, want.trialsRequested) << r;
    ASSERT_EQ(got.skew.samples.size(), want.skew.samples.size()) << r;
    for (std::size_t i = 0; i < want.skew.samples.size(); ++i)
        EXPECT_EQ(got.skew.samples[i], want.skew.samples[i])
            << r << " " << i;
    if (!want.skew.samples.empty()) {
        EXPECT_EQ(got.skew.stat.mean(), want.skew.stat.mean()) << r;
        EXPECT_EQ(got.skew.stat.stddev(), want.skew.stat.stddev()) << r;
        EXPECT_EQ(got.skew.stat.min(), want.skew.stat.min()) << r;
        EXPECT_EQ(got.skew.stat.max(), want.skew.stat.max()) << r;
    }
    const mc::McResult *gs[] = {&got.resilience.maxCommSkew,
                                &got.resilience.clockedFraction};
    const mc::McResult *ws[] = {&want.resilience.maxCommSkew,
                                &want.resilience.clockedFraction};
    for (int k = 0; k < 2; ++k) {
        ASSERT_EQ(gs[k]->samples.size(), ws[k]->samples.size()) << r;
        for (std::size_t i = 0; i < ws[k]->samples.size(); ++i)
            EXPECT_EQ(gs[k]->samples[i], ws[k]->samples[i])
                << r << " " << i;
        if (!ws[k]->samples.empty()) {
            EXPECT_EQ(gs[k]->stat.mean(), ws[k]->stat.mean()) << r;
            EXPECT_EQ(gs[k]->stat.stddev(), ws[k]->stat.stddev()) << r;
        }
    }
    EXPECT_EQ(got.resilience.meanFaults, want.resilience.meanFaults)
        << r;
    EXPECT_EQ(got.resilience.faultRate, want.resilience.faultRate) << r;
    ASSERT_EQ(got.faultSamples.size(), want.faultSamples.size()) << r;
    for (std::size_t i = 0; i < want.faultSamples.size(); ++i)
        EXPECT_EQ(got.faultSamples[i], want.faultSamples[i])
            << r << " " << i;
}

std::vector<net::WireRequest>
mixedBatch()
{
    return {skewRequest(6, 6, 48, 8),
            resilienceRequest(net::WireScheme::HTree, 32, 8),
            resilienceRequest(net::WireScheme::Trix, 32, 8)};
}

TEST(Dist, FleetsOf1And2And4AreBitIdenticalToLocalService)
{
    const std::vector<net::WireRequest> batch = mixedBatch();
    const LocalReference ref(batch);
    ASSERT_FALSE(ref.out.deadlineExpired);

    for (const unsigned n : {1u, 2u, 4u}) {
        Fleet fleet(n);
        dist::Coordinator coord(testConfig(fleet.endpoints));
        const dist::DistOutcome out = coord.run(batch);

        EXPECT_FALSE(out.deadlineExpired) << n;
        EXPECT_TRUE(out.ledger.balanced()) << n;
        EXPECT_EQ(out.ledger.shards, 14u) << n; // 6 + 4 + 4 units
        EXPECT_EQ(out.ledger.completed, out.ledger.shards) << n;
        EXPECT_EQ(out.ledger.lost, 0u) << n;
        ASSERT_EQ(out.outcomes.size(), batch.size()) << n;
        for (std::size_t r = 0; r < batch.size(); ++r)
            expectBitIdentical(out.outcomes[r], ref.out.outcomes[r], r);
    }
}

TEST(Dist, ConsecutiveRunsReuseTheFleetAndStayIdentical)
{
    const std::vector<net::WireRequest> batch = mixedBatch();
    Fleet fleet(2);
    dist::Coordinator coord(testConfig(fleet.endpoints));
    const dist::DistOutcome a = coord.run(batch);
    const dist::DistOutcome b = coord.run(batch);
    EXPECT_TRUE(a.ledger.balanced());
    EXPECT_TRUE(b.ledger.balanced());
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t r = 0; r < a.outcomes.size(); ++r)
        expectBitIdentical(b.outcomes[r], a.outcomes[r], r);
}

TEST(Dist, ShardAssignmentPermutationDoesNotChangeBytes)
{
    // Different pipelining depth, hedging mode and jitter seed give a
    // different shard-to-worker assignment and arrival order; the
    // folded bytes must not notice.
    const std::vector<net::WireRequest> batch = mixedBatch();
    Fleet fleet(2);

    dist::DistConfig a = testConfig(fleet.endpoints);
    a.maxInFlightPerWorker = 1;
    a.hedge = false;
    a.pool.seed = 1;
    const dist::DistOutcome outA = dist::Coordinator(a).run(batch);

    dist::DistConfig b = testConfig(fleet.endpoints);
    b.maxInFlightPerWorker = 4;
    b.hedge = true;
    b.hedgeAfterSeconds = 0.0;
    b.pool.seed = 77;
    const dist::DistOutcome outB = dist::Coordinator(b).run(batch);

    EXPECT_TRUE(outA.ledger.balanced());
    EXPECT_TRUE(outB.ledger.balanced());
    EXPECT_EQ(outA.ledger.completed, outA.ledger.shards);
    EXPECT_EQ(outB.ledger.completed, outB.ledger.shards);
    ASSERT_EQ(outA.outcomes.size(), outB.outcomes.size());
    for (std::size_t r = 0; r < outA.outcomes.size(); ++r)
        expectBitIdentical(outB.outcomes[r], outA.outcomes[r], r);
}

TEST(Dist, WorkerKilledMidRunIsReassignedAndStaysBitIdentical)
{
    // A long batch on two workers; one is stopped mid-run. Its shards
    // must be requeued onto the survivor and the final bytes must be
    // exactly what an undisturbed local run computes.
    std::vector<net::WireRequest> batch = {
        skewRequest(6, 6, 200000, 200)}; // 1000 shards, ~seconds
    const LocalReference ref(batch);

    Fleet fleet(2);
    dist::DistConfig cfg = testConfig(fleet.endpoints);
    cfg.pool.failureBudget = 2;
    dist::Coordinator coord(cfg);

    std::thread killer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        fleet.servers[1]->stop();
    });
    const dist::DistOutcome out = coord.run(batch);
    killer.join();

    EXPECT_FALSE(out.deadlineExpired);
    EXPECT_TRUE(out.ledger.balanced());
    EXPECT_EQ(out.ledger.completed, out.ledger.shards);
    EXPECT_EQ(out.ledger.lost, 0u);
    // The kill landed mid-run: some attempts died and were retried.
    EXPECT_GT(out.ledger.failed, 0u);
    EXPECT_GT(out.ledger.retried, 0u);
    EXPECT_EQ(coord.workers().state(1), dist::WorkerState::Dead);
    ASSERT_EQ(out.outcomes.size(), batch.size());
    expectBitIdentical(out.outcomes[0], ref.out.outcomes[0], 0);
}

TEST(Dist, DeadEndpointInTheFleetIsRoutedAround)
{
    const std::vector<net::WireRequest> batch = mixedBatch();
    const LocalReference ref(batch);

    Fleet fleet(1);
    std::vector<dist::WorkerEndpoint> eps = fleet.endpoints;
    eps.push_back(dist::WorkerEndpoint{"127.0.0.1", deadPort()});
    dist::DistConfig cfg = testConfig(eps);
    // One refused connect is enough: the endpoint is declared Dead
    // before the (fast) batch can finish, making the health assertion
    // below deterministic.
    cfg.pool.failureBudget = 1;
    dist::Coordinator coord(cfg);
    const dist::DistOutcome out = coord.run(batch);

    EXPECT_TRUE(out.ledger.balanced());
    EXPECT_EQ(out.ledger.completed, out.ledger.shards);
    EXPECT_EQ(coord.workers().state(1), dist::WorkerState::Dead);
    EXPECT_EQ(coord.workers().aliveCount(), 1u);
    for (std::size_t r = 0; r < batch.size(); ++r)
        expectBitIdentical(out.outcomes[r], ref.out.outcomes[r], r);
}

TEST(Dist, WholeFleetDeadYieldsPartialOutcomesNotAHang)
{
    const std::vector<net::WireRequest> batch = mixedBatch();
    std::vector<dist::WorkerEndpoint> eps = {
        dist::WorkerEndpoint{"127.0.0.1", deadPort()},
        dist::WorkerEndpoint{"127.0.0.1", deadPort()}};
    dist::Coordinator coord(testConfig(eps));
    const dist::DistOutcome out = coord.run(batch);

    EXPECT_TRUE(out.ledger.balanced());
    EXPECT_EQ(out.ledger.completed, 0u);
    EXPECT_EQ(out.ledger.lost, out.ledger.shards);
    EXPECT_EQ(out.ledger.dispatched, 0u);
    EXPECT_EQ(coord.workers().aliveCount(), 0u);
    ASSERT_EQ(out.outcomes.size(), batch.size());
    for (std::size_t r = 0; r < batch.size(); ++r) {
        const serve::RequestOutcome &o = out.outcomes[r];
        EXPECT_EQ(static_cast<int>(o.status),
                  static_cast<int>(serve::RequestStatus::Partial))
            << r;
        EXPECT_EQ(o.trialsDone, 0u) << r;
        ASSERT_EQ(o.trialDone.size(), o.trialsRequested) << r;
        for (const std::uint8_t d : o.trialDone)
            EXPECT_EQ(d, 0) << r;
    }
}

/**
 * A worker that handshakes correctly, then sits on every sweep
 * request forever -- the straggler the hedging path exists for.
 */
class StallWorker
{
  public:
    StallWorker()
    {
        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = 0;
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::bind(listenFd,
                         reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        EXPECT_EQ(::listen(listenFd, 8), 0);
        socklen_t len = sizeof(addr);
        ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len);
        boundPort = ntohs(addr.sin_port);
        acceptor = std::thread([this] { acceptLoop(); });
    }

    ~StallWorker()
    {
        stopped.store(true);
        ::shutdown(listenFd, SHUT_RDWR);
        ::close(listenFd);
        {
            std::lock_guard<std::mutex> lock(mutex);
            for (const int fd : conns)
                ::shutdown(fd, SHUT_RDWR);
        }
        acceptor.join();
        for (std::thread &t : serveThreads)
            t.join();
        for (const int fd : conns)
            ::close(fd);
    }

    std::uint16_t port() const { return boundPort; }

    /** Sweep requests received (and stalled on) so far. */
    std::uint64_t stalledRequests() const { return stalledCount.load(); }

  private:
    void
    acceptLoop()
    {
        for (;;) {
            const int c = ::accept(listenFd, nullptr, nullptr);
            if (c < 0)
                return;
            std::lock_guard<std::mutex> lock(mutex);
            conns.push_back(c);
            serveThreads.emplace_back([this, c] { serve(c); });
        }
    }

    void
    serve(int fd)
    {
        std::string buffer;
        char chunk[4096];
        while (!stopped.load()) {
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return;
            buffer.append(chunk, static_cast<std::size_t>(n));
            std::size_t nl;
            while ((nl = buffer.find('\n')) != std::string::npos) {
                const std::string line = buffer.substr(0, nl);
                buffer.erase(0, nl + 1);
                net::WireRequest rq;
                std::string error;
                if (!net::parseRequest(line, rq, error))
                    continue;
                if (rq.kind == net::QueryKind::Info) {
                    net::InfoReply info;
                    info.threads = 1;
                    info.queueCapacity = 1;
                    std::string reply = net::encodeInfo(rq.id, info);
                    reply.push_back('\n');
                    (void)!::send(fd, reply.data(), reply.size(),
                                  MSG_NOSIGNAL);
                } else {
                    stalledCount.fetch_add(1);
                    // ... and never answer: the stall.
                }
            }
        }
    }

    int listenFd = -1;
    std::uint16_t boundPort = 0;
    std::thread acceptor;
    std::vector<std::thread> serveThreads;
    std::vector<int> conns;
    std::mutex mutex;
    std::atomic<bool> stopped{false};
    std::atomic<std::uint64_t> stalledCount{0};
};

TEST(Dist, StragglersAreHedgedOntoIdleWorkersFirstResponseWins)
{
    // One real worker, one black hole that accepts shards and never
    // answers. With hedging on, the idle real worker duplicates the
    // stalled shards and the batch completes bit-identically; without
    // the hedge it would sit out the full shard deadline.
    const std::vector<net::WireRequest> batch = {
        skewRequest(6, 6, 512, 32)}; // 16 shards
    const LocalReference ref(batch);

    StallWorker staller;
    Fleet fleet(1);
    std::vector<dist::WorkerEndpoint> eps = {
        dist::WorkerEndpoint{"127.0.0.1", staller.port()},
        fleet.endpoints[0]};
    dist::DistConfig cfg = testConfig(eps);
    cfg.hedge = true;
    cfg.hedgeAfterSeconds = 0.02;
    cfg.shardDeadlineSeconds = 30.0; // hedging, not timeout, must win
    dist::Coordinator coord(cfg);

    const auto t0 = std::chrono::steady_clock::now();
    const dist::DistOutcome out = coord.run(batch);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    EXPECT_TRUE(out.ledger.balanced());
    EXPECT_EQ(out.ledger.completed, out.ledger.shards);
    EXPECT_EQ(out.ledger.lost, 0u);
    if (staller.stalledRequests() > 0) {
        EXPECT_GT(out.ledger.hedged, 0u);
    }
    EXPECT_LT(seconds, 20.0); // far below the shard deadline
    expectBitIdentical(out.outcomes[0], ref.out.outcomes[0], 0);
}

TEST(Dist, BatchDeadlineYieldsPartialWithExactMask)
{
    // A batch that cannot finish in time must come back Partial with
    // a truthful per-trial mask and a balanced ledger -- and whatever
    // trials did finish must carry the local run's exact bytes.
    const std::vector<net::WireRequest> batch = {
        skewRequest(6, 6, 200000, 100)}; // 2000 shards, ~seconds
    const LocalReference ref(batch);

    Fleet fleet(1);
    dist::DistConfig cfg = testConfig(fleet.endpoints);
    cfg.hedge = false;
    dist::Coordinator coord(cfg);
    dist::DistOptions opts;
    opts.deadlineSeconds = 0.15;
    const dist::DistOutcome out = coord.run(batch, opts);

    EXPECT_TRUE(out.deadlineExpired);
    EXPECT_TRUE(out.ledger.balanced());
    EXPECT_GT(out.ledger.lost, 0u);
    const serve::RequestOutcome &o = out.outcomes[0];
    ASSERT_EQ(static_cast<int>(o.status),
              static_cast<int>(serve::RequestStatus::Partial));
    ASSERT_EQ(o.trialDone.size(), o.trialsRequested);
    std::size_t done = 0;
    for (std::size_t i = 0; i < o.trialDone.size(); ++i) {
        if (!o.trialDone[i])
            continue;
        ++done;
        ASSERT_EQ(o.skew.samples[i],
                  ref.out.outcomes[0].skew.samples[i])
            << i;
    }
    EXPECT_EQ(done, o.trialsDone);
}

} // namespace
