/**
 * @file
 * Tests for the Section III skew models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/skew_model.hh"
#include "test_util.hh"

namespace
{

using namespace vsync;
using namespace vsync::core;

TEST(SkewModel, DifferenceIgnoresPathSum)
{
    const SkewModel m = SkewModel::difference(0.5);
    EXPECT_DOUBLE_EQ(m.upperBound(4.0, 100.0), 2.0);
    EXPECT_DOUBLE_EQ(m.upperBound(0.0, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(m.lowerBound(100.0), 0.0);
    EXPECT_EQ(m.kind(), SkewModelKind::Difference);
    EXPECT_DOUBLE_EQ(m.beta(), 0.0);
}

TEST(SkewModel, SummationSandwich)
{
    const SkewModel m = SkewModel::summation(0.5, 0.05);
    // Upper: (m + eps) * s; lower: eps * s.
    EXPECT_DOUBLE_EQ(m.upperBound(2.0, 10.0), 5.5);
    EXPECT_DOUBLE_EQ(m.lowerBound(10.0), 0.5);
    EXPECT_DOUBLE_EQ(m.beta(), 0.05);
    EXPECT_EQ(m.kind(), SkewModelKind::Summation);
}

TEST(SkewModel, SectionThreeDerivation)
{
    // sigma = m d + eps s must sit inside [eps s, (m + eps) s]
    // for every valid geometry (s >= d >= 0).
    const double m = 0.7, eps = 0.1;
    const SkewModel model = SkewModel::summation(m, eps);
    for (double s : {1.0, 5.0, 20.0}) {
        for (double frac : {0.0, 0.3, 1.0}) {
            const double d = s * frac;
            const double sigma = m * d + eps * s;
            EXPECT_LE(model.lowerBound(s), sigma + 1e-12);
            EXPECT_GE(model.upperBound(d, s), sigma - 1e-12);
        }
    }
}

TEST(SkewModel, CustomBoundFunctions)
{
    // A nonlinear monotone f, e.g. sub-linear skew accumulation.
    const SkewModel m =
        SkewModel::difference([](Length d) { return std::sqrt(d); });
    EXPECT_DOUBLE_EQ(m.upperBound(9.0, 100.0), 3.0);

    const SkewModel s = SkewModel::summation(
        [](Length x) { return 2.0 * x + 1.0; }, 0.25);
    EXPECT_DOUBLE_EQ(s.upperBound(0.0, 4.0), 9.0);
    EXPECT_DOUBLE_EQ(s.lowerBound(4.0), 1.0);
}

TEST(SkewModel, ZeroEpsSummationDegeneratesToNoLowerBound)
{
    const SkewModel m = SkewModel::summation(1.0, 0.0);
    EXPECT_DOUBLE_EQ(m.lowerBound(50.0), 0.0);
    EXPECT_DOUBLE_EQ(m.upperBound(0.0, 50.0), 50.0);
}

TEST(SkewModel, KindNames)
{
    EXPECT_EQ(skewModelKindName(SkewModelKind::Difference), "difference");
    EXPECT_EQ(skewModelKindName(SkewModelKind::Summation), "summation");
}

TEST(SkewModelDeath, RejectsBadParameters)
{
    testutil::useThreadsafeDeathTests();
    EXPECT_DEATH(SkewModel::difference(-1.0), "positive");
    EXPECT_DEATH(SkewModel::summation(1.0, 2.0), "eps");
    EXPECT_DEATH(SkewModel::summation(0.0, 0.0), "positive");
}

} // namespace
