/**
 * @file
 * Tests for the network front end: the wire protocol (round trips,
 * rejection of malformed requests), the loopback server (bit-identity
 * with direct SweepService runs at several pool widths, admission
 * control under burst, deadline propagation, graceful shutdown) and
 * the open-loop load generator's request accounting.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "clocktree/builders.hh"
#include "layout/generators.hh"
#include "mc/resilience.hh"
#include "mc/sweeps.hh"
#include "net/loadgen.hh"
#include "net/protocol.hh"
#include "net/server.hh"
#include "obs/metrics.hh"
#include "serve/sweep_service.hh"

namespace
{

using namespace vsync;

const core::WireDelay kDelay{0.05, 0.005};

/** A tiny blocking line-oriented client for driving the server. */
class TestClient
{
  public:
    explicit TestClient(std::uint16_t port)
    {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            fd = -1;
        }
    }

    ~TestClient()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool connected() const { return fd >= 0; }

    bool
    sendLine(std::string line)
    {
        line.push_back('\n');
        const char *data = line.data();
        std::size_t len = line.size();
        while (len > 0) {
            const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
            if (n < 0)
                return false;
            data += n;
            len -= static_cast<std::size_t>(n);
        }
        return true;
    }

    /** One line, or empty string on timeout/EOF. */
    std::string
    recvLine(int timeout_ms = 30000)
    {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(timeout_ms);
        for (;;) {
            const std::size_t nl = buffer.find('\n');
            if (nl != std::string::npos) {
                std::string line = buffer.substr(0, nl);
                buffer.erase(0, nl + 1);
                return line;
            }
            const auto remaining =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (remaining <= 0)
                return "";
            pollfd pfd{fd, POLLIN, 0};
            if (::poll(&pfd, 1, static_cast<int>(remaining)) <= 0)
                return "";
            char chunk[4096];
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return "";
            buffer.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd = -1;
    std::string buffer;
};

net::WireResponse
parsedOk(const std::string &line)
{
    net::WireResponse rsp;
    std::string error;
    EXPECT_TRUE(net::parseResponse(line, rsp, error))
        << error << " in: " << line;
    return rsp;
}

TEST(Protocol, RequestRoundTripsIncluding64BitSeeds)
{
    net::WireRequest rq;
    rq.id = 7;
    rq.kind = net::QueryKind::Resilience;
    rq.scheme = net::WireScheme::Trix;
    rq.rows = 5;
    rq.cols = 9;
    rq.faultRate = 0.125;
    // A seed above 2^53: a double-typed JSON parser would corrupt it.
    rq.seed = 0xdeadbeefcafef00dULL;
    rq.trials = 321;
    rq.grain = 7;
    rq.delay = core::WireDelay{0.07, 0.003};
    rq.deadlineMs = 250.5;

    net::WireRequest back;
    std::string error;
    ASSERT_TRUE(net::parseRequest(net::encodeRequest(rq), back, error))
        << error;
    EXPECT_EQ(back.id, 7u);
    EXPECT_EQ(back.kind, net::QueryKind::Resilience);
    EXPECT_EQ(back.scheme, net::WireScheme::Trix);
    EXPECT_EQ(back.rows, 5);
    EXPECT_EQ(back.cols, 9);
    EXPECT_EQ(back.faultRate, 0.125);
    EXPECT_EQ(back.seed, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(back.trials, 321u);
    EXPECT_EQ(back.grain, 7u);
    EXPECT_EQ(back.delay.m, 0.07);
    EXPECT_EQ(back.delay.eps, 0.003);
    EXPECT_EQ(back.deadlineMs, 250.5);
}

TEST(Protocol, DefaultsApplyForOmittedKeys)
{
    net::WireRequest rq;
    std::string error;
    ASSERT_TRUE(net::parseRequest(R"({"kind":"skew"})", rq, error))
        << error;
    EXPECT_EQ(rq.kind, net::QueryKind::Skew);
    EXPECT_EQ(rq.scheme, net::WireScheme::HTree);
    EXPECT_EQ(rq.rows, 4);
    EXPECT_EQ(rq.cols, 4);
    EXPECT_EQ(rq.trials, 256u);
    EXPECT_EQ(rq.deadlineMs, infinity);
    // "dist" is accepted as a synonym for "scheme".
    ASSERT_TRUE(net::parseRequest(R"({"dist":"spine"})", rq, error));
    EXPECT_EQ(rq.scheme, net::WireScheme::Spine);
}

TEST(Protocol, RejectsMalformedAndInvalidRequests)
{
    net::WireRequest rq;
    std::string error;
    const char *bad[] = {
        "",                                    // no object
        "{",                                   // truncated
        R"({"kind":"skew"} trailing)",         // garbage after object
        R"({"turbo":true})",                   // unknown key
        R"({"kind":"warp"})",                  // unknown kind
        R"({"scheme":"mesh"})",                // unknown scheme
        R"({"rows":0})",                       // below range
        R"({"rows":513})",                     // above range
        R"({"rows":300,"cols":300})",          // too many cells
        R"({"trials":0})",                     // zero trials
        R"({"grain":0})",                      // zero grain
        R"({"fault_rate":1.5})",               // rate out of range
        R"({"m":0})",                          // degenerate delay
        R"({"eps":-0.1})",                     // negative spread
        R"({"kind":"skew","scheme":"trix"})",  // trix has no tree
        R"({"kind":"skew","fault_rate":0.1})", // wrong family
        "{\"kind\":\"sk\\u0065w\"}",           // escapes rejected
        R"({"seed":-1})",                      // negative uint
    };
    for (const char *line : bad) {
        EXPECT_FALSE(net::parseRequest(line, rq, error)) << line;
        EXPECT_FALSE(error.empty()) << line;
    }
}

TEST(Protocol, BadRequestRepliesKeepTheParsedId)
{
    // An id parsed before the error survives, so the client can
    // correlate the bad_request reply.
    net::WireRequest rq;
    std::string error;
    EXPECT_FALSE(
        net::parseRequest(R"({"id":42,"kind":"warp"})", rq, error));
    EXPECT_EQ(rq.id, 42u);
}

TEST(Protocol, OutcomeRoundTripsBitExactly)
{
    serve::RequestOutcome o;
    o.status = serve::RequestStatus::Partial;
    o.trialsRequested = 4;
    o.trialsDone = 3;
    o.trialDone = {1, 0, 1, 1};
    o.skew.samples = {0.1, 0.0, 1.0 / 3.0, 2.0e-17};
    for (std::size_t i = 0; i < 4; ++i)
        if (o.trialDone[i])
            o.skew.stat.add(o.skew.samples[i]);

    net::WireRequest rq;
    rq.id = 12;
    const net::WireResponse rsp =
        parsedOk(net::encodeOutcome(rq, o, 1.25));
    EXPECT_EQ(rsp.id, 12u);
    EXPECT_TRUE(rsp.ok);
    EXPECT_FALSE(rsp.complete);
    EXPECT_EQ(rsp.trialsDone, 3u);
    EXPECT_EQ(rsp.trialsRequested, 4u);
    EXPECT_EQ(rsp.mean, o.skew.stat.mean());
    EXPECT_EQ(rsp.stddev, o.skew.stat.stddev());
    ASSERT_EQ(rsp.samples.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(rsp.samples[i], o.skew.samples[i]) << i;
    EXPECT_EQ(rsp.trialDone, o.trialDone);
    EXPECT_EQ(rsp.serverMs, 1.25);

    const net::WireResponse err = parsedOk(
        net::encodeError(9, net::errOverloaded, "queue full"));
    EXPECT_FALSE(err.ok);
    EXPECT_EQ(err.id, 9u);
    EXPECT_EQ(err.error, net::errOverloaded);
    EXPECT_EQ(err.detail, "queue full");
}

/** The canonical request most server tests use. */
net::WireRequest
skewRequest(std::uint64_t id)
{
    net::WireRequest rq;
    rq.id = id;
    rq.kind = net::QueryKind::Skew;
    rq.scheme = net::WireScheme::HTree;
    rq.rows = 6;
    rq.cols = 6;
    rq.seed = 0xfeedULL;
    rq.trials = 48;
    rq.grain = 4;
    rq.delay = kDelay;
    return rq;
}

TEST(Server, ServedSkewIsBitIdenticalToDirectServiceAtAllWidths)
{
    // The server's reply must carry exactly the numbers a direct
    // in-process sweep computes -- same samples, bit for bit, through
    // the wire encoding -- whatever the compute pool width.
    const layout::Layout l = layout::meshLayout(6, 6);
    const auto tree = clocktree::buildHTreeGrid(l, 6, 6);
    mc::McConfig cfg;
    cfg.seed = 0xfeedULL;
    cfg.trials = 48;
    cfg.grain = 4;
    const mc::McResult ref = mc::skewSweep(l, tree, kDelay, cfg);

    for (const unsigned tc : {1u, 2u, 8u}) {
        net::ServerConfig sc;
        sc.computeThreads = tc;
        net::ScenarioServer server(sc);
        ASSERT_TRUE(server.start());

        TestClient client(server.port());
        ASSERT_TRUE(client.connected());
        ASSERT_TRUE(client.sendLine(net::encodeRequest(skewRequest(1))));
        const net::WireResponse rsp = parsedOk(client.recvLine());

        EXPECT_TRUE(rsp.ok) << tc;
        EXPECT_TRUE(rsp.complete) << tc;
        EXPECT_EQ(rsp.trialsDone, 48u) << tc;
        ASSERT_EQ(rsp.samples.size(), ref.samples.size()) << tc;
        for (std::size_t i = 0; i < ref.samples.size(); ++i)
            EXPECT_EQ(rsp.samples[i], ref.samples[i]) << tc << " " << i;
        EXPECT_EQ(rsp.mean, ref.stat.mean()) << tc;
        EXPECT_EQ(rsp.stddev, ref.stat.stddev()) << tc;
        EXPECT_EQ(rsp.minValue, ref.stat.min()) << tc;
        EXPECT_EQ(rsp.maxValue, ref.stat.max()) << tc;
        server.stop();
    }
}

TEST(Server, ServedResilienceMatchesDirectRunForTreeAndTrix)
{
    const layout::Layout l = layout::meshLayout(4, 4);
    mc::McConfig cfg;
    cfg.seed = 99;
    cfg.trials = 32;
    cfg.grain = 4;
    mc::ResilienceConfig rc; // defaults match the wire defaults

    net::ScenarioServer server;
    ASSERT_TRUE(server.start());
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());

    const std::pair<net::WireScheme, mc::DistributionKind> kinds[] = {
        {net::WireScheme::HTree, mc::DistributionKind::HTree},
        {net::WireScheme::Trix, mc::DistributionKind::TrixGrid},
    };
    for (const auto &[scheme, kind] : kinds) {
        const mc::ResiliencePoint ref =
            mc::resilienceAtRate(l, 4, 4, kind, 0.05, rc, cfg);

        net::WireRequest rq;
        rq.id = 3;
        rq.kind = net::QueryKind::Resilience;
        rq.scheme = scheme;
        rq.rows = 4;
        rq.cols = 4;
        rq.faultRate = 0.05;
        rq.seed = 99;
        rq.trials = 32;
        rq.grain = 4;
        ASSERT_TRUE(client.sendLine(net::encodeRequest(rq)));
        const net::WireResponse rsp = parsedOk(client.recvLine());

        EXPECT_TRUE(rsp.ok);
        EXPECT_TRUE(rsp.complete);
        ASSERT_EQ(rsp.samples.size(), ref.maxCommSkew.samples.size());
        for (std::size_t i = 0; i < rsp.samples.size(); ++i)
            EXPECT_EQ(rsp.samples[i], ref.maxCommSkew.samples[i]) << i;
        ASSERT_EQ(rsp.clockedSamples.size(),
                  ref.clockedFraction.samples.size());
        for (std::size_t i = 0; i < rsp.clockedSamples.size(); ++i)
            EXPECT_EQ(rsp.clockedSamples[i],
                      ref.clockedFraction.samples[i])
                << i;
        EXPECT_EQ(rsp.meanFaults, ref.meanFaults);
    }
    server.stop();
}

TEST(Server, OverCapacityBurstIsShedLoudlyNeverSilently)
{
    // With a 1-deep admission queue and the dispatcher pinned by a
    // slow request, a burst must get immediate "overloaded" replies --
    // every line answered, nothing hangs, nothing vanishes.
    obs::MetricsRegistry reg;
    net::ServerConfig sc;
    sc.computeThreads = 1;
    sc.admissionCapacity = 1;
    sc.metrics = &reg;
    net::ScenarioServer server(sc);
    ASSERT_TRUE(server.start());

    TestClient slow(server.port());
    ASSERT_TRUE(slow.connected());
    net::WireRequest pin = skewRequest(100);
    pin.trials = 4000;
    pin.grain = 1;
    ASSERT_TRUE(slow.sendLine(net::encodeRequest(pin)));
    // Let the pin request reach the dispatcher before bursting.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    constexpr std::size_t burst = 16;
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    for (std::size_t i = 0; i < burst; ++i) {
        net::WireRequest rq = skewRequest(i);
        rq.trials = 1;
        ASSERT_TRUE(client.sendLine(net::encodeRequest(rq)));
    }

    std::size_t completed = 0;
    std::size_t shed = 0;
    std::vector<std::uint8_t> answered(burst, 0);
    for (std::size_t i = 0; i < burst; ++i) {
        const std::string line = client.recvLine();
        ASSERT_FALSE(line.empty()) << "burst reply " << i << " missing";
        const net::WireResponse rsp = parsedOk(line);
        ASSERT_LT(rsp.id, burst);
        EXPECT_FALSE(answered[rsp.id]) << rsp.id;
        answered[rsp.id] = 1;
        if (rsp.ok) {
            ++completed;
        } else {
            EXPECT_EQ(rsp.error, net::errOverloaded) << rsp.id;
            ++shed;
        }
    }
    EXPECT_EQ(completed + shed, burst);
    EXPECT_GE(shed, 1u);

    EXPECT_TRUE(parsedOk(slow.recvLine()).ok);
    server.stop();

    // The ledger balances: every parsed line was admitted or shed.
    EXPECT_EQ(reg.counter("net.requests.accepted").value() +
                  reg.counter("net.requests.shed").value(),
              burst + 1);
    EXPECT_EQ(reg.counter("net.requests.shed").value(),
              static_cast<std::uint64_t>(shed));
    EXPECT_EQ(reg.counter("net.requests.completed").value(),
              completed + 1);
}

TEST(Server, WireDeadlineZeroFailsFastAsEmptyPartial)
{
    net::ScenarioServer server;
    ASSERT_TRUE(server.start());
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());

    net::WireRequest rq = skewRequest(5);
    rq.deadlineMs = 0.0;
    ASSERT_TRUE(client.sendLine(net::encodeRequest(rq)));
    const net::WireResponse rsp = parsedOk(client.recvLine());

    EXPECT_TRUE(rsp.ok);
    EXPECT_FALSE(rsp.complete);
    EXPECT_EQ(rsp.trialsDone, 0u);
    EXPECT_EQ(rsp.trialsRequested, 48u);
    ASSERT_EQ(rsp.trialDone.size(), 48u);
    for (const auto d : rsp.trialDone)
        EXPECT_EQ(d, 0);
    // No trial ran, so no statistics were emitted.
    EXPECT_EQ(rsp.mean, 0.0);
    server.stop();
}

TEST(Server, BadLinesGetErrorsAndTheConnectionSurvives)
{
    net::ScenarioServer server;
    ASSERT_TRUE(server.start());
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());

    ASSERT_TRUE(client.sendLine("this is not json"));
    const net::WireResponse bad = parsedOk(client.recvLine());
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.error, net::errBadRequest);

    net::WireRequest rq = skewRequest(8);
    rq.trials = 2;
    ASSERT_TRUE(client.sendLine(net::encodeRequest(rq)));
    EXPECT_TRUE(parsedOk(client.recvLine()).ok);
    server.stop();
}

TEST(Server, OversizedLinesAreRefusedLoudlyAndTheConnectionSurvives)
{
    net::ServerConfig sc;
    sc.maxLineBytes = 256; // small cap so the test stays cheap
    net::ScenarioServer server(sc);
    ASSERT_TRUE(server.start());
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());

    // A line longer than the cap must get a too_large error, not an
    // unbounded buffer or a silent hangup.
    ASSERT_TRUE(client.sendLine(std::string(1024, 'x')));
    const net::WireResponse big = parsedOk(client.recvLine());
    EXPECT_FALSE(big.ok);
    EXPECT_EQ(big.error, net::errTooLarge);

    // The reader resynchronises on the next newline: a well-formed
    // request on the same connection still succeeds.
    net::WireRequest rq = skewRequest(21);
    rq.trials = 2;
    ASSERT_TRUE(client.sendLine(net::encodeRequest(rq)));
    const net::WireResponse rsp = parsedOk(client.recvLine());
    EXPECT_TRUE(rsp.ok);
    EXPECT_EQ(rsp.id, 21u);
    server.stop();
}

TEST(Server, InfoPingReportsProtocolAndPoolShape)
{
    net::ServerConfig sc;
    sc.computeThreads = 3;
    net::ScenarioServer server(sc);
    ASSERT_TRUE(server.start());
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());

    ASSERT_TRUE(client.sendLine("{\"id\":7,\"kind\":\"info\"}"));
    const net::WireResponse rsp = parsedOk(client.recvLine());
    EXPECT_TRUE(rsp.ok);
    EXPECT_EQ(rsp.id, 7u);
    EXPECT_EQ(rsp.proto, net::protocolVersion);
    EXPECT_EQ(rsp.threads, 3u);
    EXPECT_GT(rsp.queueCapacity, 0u);
    EXPECT_FALSE(rsp.draining);
    server.stop();
}

TEST(Server, GracefulStopDrainsInFlightThenRefusesConnections)
{
    net::ServerConfig sc;
    sc.computeThreads = 1;
    net::ScenarioServer server(sc);
    ASSERT_TRUE(server.start());
    const std::uint16_t port = server.port();

    TestClient client(port);
    ASSERT_TRUE(client.connected());
    net::WireRequest rq = skewRequest(77);
    rq.trials = 2000;
    rq.grain = 1;
    ASSERT_TRUE(client.sendLine(net::encodeRequest(rq)));
    // Give the request time to be admitted (possibly mid-compute).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    server.stop(); // must drain: the reply is written before sockets close

    const std::string line = client.recvLine(5000);
    ASSERT_FALSE(line.empty()) << "in-flight request lost by stop()";
    const net::WireResponse rsp = parsedOk(line);
    EXPECT_TRUE(rsp.ok);
    EXPECT_EQ(rsp.id, 77u);
    // Complete on a fast machine; Partial if the drain expired it --
    // either way the request was answered, never dropped.

    TestClient late(port);
    std::string probe;
    if (late.connected()) {
        // A TCP connect may still succeed spuriously right after
        // close on some kernels; a request must get nothing back.
        late.sendLine(net::encodeRequest(skewRequest(1)));
        probe = late.recvLine(200);
    }
    EXPECT_TRUE(probe.empty());
}

TEST(Server, ExportsNetMetrics)
{
    obs::MetricsRegistry reg;
    net::ServerConfig sc;
    sc.metrics = &reg;
    net::ScenarioServer server(sc);
    ASSERT_TRUE(server.start());
    {
        TestClient client(server.port());
        ASSERT_TRUE(client.connected());
        net::WireRequest rq = skewRequest(1);
        rq.trials = 2;
        ASSERT_TRUE(client.sendLine(net::encodeRequest(rq)));
        EXPECT_TRUE(parsedOk(client.recvLine()).ok);
    }
    server.stop();

    EXPECT_EQ(reg.counter("net.connections.accepted").value(), 1u);
    EXPECT_EQ(reg.counter("net.requests.accepted").value(), 1u);
    EXPECT_EQ(reg.counter("net.requests.completed").value(), 1u);
    EXPECT_EQ(reg.counter("net.requests.shed").value(), 0u);
    EXPECT_GT(reg.counter("net.bytes.in").value(), 0u);
    EXPECT_GT(reg.counter("net.bytes.out").value(), 0u);
    EXPECT_EQ(reg.histogram("net.request.latency_ms", {}).totalCount(),
              1u);
    EXPECT_EQ(reg.gauge("net.connections.active").value(), 0.0);
    // The embedded service's pool gauges ride along.
    EXPECT_GE(reg.counter("serve.pool.jobs").value(), 1u);
}

TEST(LoadGen, EveryOfferedRequestIsAccountedForExactlyOnce)
{
    net::ServerConfig sc;
    sc.computeThreads = 2;
    net::ScenarioServer server(sc);
    ASSERT_TRUE(server.start());

    net::LoadGenConfig lg;
    lg.port = server.port();
    lg.connections = 2;
    lg.offeredRps = 400.0;
    lg.requests = 40;
    net::WireRequest tmpl = skewRequest(0);
    tmpl.trials = 4;
    tmpl.grain = 2;
    lg.mix = {tmpl};

    const net::LoadGenResult res = net::runLoadGen(lg);
    server.stop();

    EXPECT_TRUE(res.transportOk);
    EXPECT_EQ(res.offered, 40u);
    EXPECT_EQ(res.completed + res.shed + res.errors + res.lost, 40u);
    EXPECT_EQ(res.lost, 0u);
    EXPECT_EQ(res.errors, 0u);
    EXPECT_GE(res.completed, 1u);
    for (std::size_t i = 0; i < res.responses.size(); ++i) {
        ASSERT_TRUE(res.gotReply[i]) << i;
        if (res.responses[i].ok) {
            EXPECT_EQ(res.responses[i].trialsDone, 4u) << i;
        }
    }
    if (res.completed > 0) {
        EXPECT_GT(res.p50Ms, 0.0);
        EXPECT_GE(res.p99Ms, res.p50Ms);
    }
}

} // namespace
