/**
 * @file
 * Tests for the ASCII layout/clock renderer.
 */

#include <gtest/gtest.h>

#include "clocktree/builders.hh"
#include "layout/generators.hh"
#include "clocktree/render.hh"

namespace
{

using namespace vsync;
using namespace vsync::layout;
using namespace vsync::clocktree;

/** Count occurrences of @p ch. */
int
count(const std::string &s, char ch)
{
    int n = 0;
    for (char c : s)
        n += c == ch ? 1 : 0;
    return n;
}

TEST(Render, LinearLayoutShowsEveryCell)
{
    const Layout l = linearLayout(8);
    const std::string art = renderLayout(l);
    EXPECT_EQ(count(art, 'o'), 8);
    // One row of cells; the half-cell bounding margin adds a line.
    EXPECT_EQ(count(art, '\n'), 2);
}

TEST(Render, MeshIsRectangular)
{
    const Layout l = meshLayout(3, 5);
    const std::string art = renderLayout(l);
    EXPECT_EQ(count(art, 'o'), 15);
    EXPECT_EQ(count(art, '\n'), 4);
}

TEST(Render, ScaleCompressesTheGrid)
{
    const Layout l = meshLayout(8, 8);
    const std::string coarse = renderLayout(l, {2.0, true, 160});
    // At scale 2 several cells share a character: fewer 'o' glyphs
    // than cells but still a 5-line picture (8 lambda / 2 + 1).
    EXPECT_EQ(count(coarse, '\n'), 5);
    EXPECT_LE(count(coarse, 'o'), 64);
    EXPECT_GT(count(coarse, 'o'), 0);
}

TEST(Render, ClockOverlayMarksRootAndTaps)
{
    const Layout l = linearLayout(8);
    const auto tree = clocktree::buildSpine(l);
    const std::string art = renderWithClock(l, tree);
    EXPECT_EQ(count(art, 'R'), 1);
    // Spine taps coincide with cells: rendered as '*'.
    EXPECT_EQ(count(art, '*'), 8);
    EXPECT_EQ(count(art, 'o'), 0);
}

TEST(Render, HTreeWiresAreDrawn)
{
    const Layout l = meshLayout(4, 4);
    const auto tree = clocktree::buildHTreeGrid(l, 4, 4);
    const std::string art = renderWithClock(l, tree, {0.5, true, 160});
    EXPECT_GT(count(art, '-') + count(art, '|') + count(art, '+'), 3);
    EXPECT_EQ(count(art, 'R'), 1);
    // All 16 cells visible as taps or cells.
    EXPECT_EQ(count(art, '*') + count(art, 'o'), 16);
}

TEST(Render, MaxCharsCapsOutputSize)
{
    const Layout l = linearLayout(4096);
    const std::string art = renderLayout(l, {1.0, true, 40});
    // Grid clamped to 40 columns.
    std::size_t first_line = art.find('\n');
    EXPECT_LE(first_line, 40u);
}

TEST(Render, CellsWinOverWires)
{
    const Layout l = linearLayout(3);
    const auto tree = clocktree::buildSpine(l);
    const std::string art =
        renderWithClock(l, tree, {1.0, true, 160});
    // Along the spine every cell position must show a tap, never a
    // bare wire character swallowing it.
    EXPECT_EQ(count(art, '*'), 3);
}

} // namespace
