/**
 * @file
 * Cross-module property tests: randomized invariants that must hold
 * for every layout x clock-tree builder combination, and lock-step
 * equivalence of the clocked executor across every algorithm in the
 * library.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "clocktree/buffering.hh"
#include "clocktree/builders.hh"
#include "clocktree/optimize.hh"
#include "common/rng.hh"
#include "core/clock_period.hh"
#include "core/skew_analysis.hh"
#include "core/skew_model.hh"
#include "layout/generators.hh"
#include "systolic/clocked_executor.hh"
#include "systolic/fir.hh"
#include "systolic/horner.hh"
#include "systolic/jacobi.hh"
#include "systolic/matmul.hh"
#include "systolic/matvec.hh"
#include "systolic/sort.hh"
#include "systolic/trisolve.hh"
#include "treemachine/search.hh"

namespace
{

using namespace vsync;

/** A random layout from the library's generator zoo. */
layout::Layout
randomLayout(Rng &rng)
{
    switch (rng.uniformInt(5)) {
      case 0:
        return layout::linearLayout(
            2 + static_cast<int>(rng.uniformInt(30)));
      case 1: {
          const int n = 2 + static_cast<int>(rng.uniformInt(6));
          return layout::meshLayout(n, n);
      }
      case 2: {
          const int n = 2 + static_cast<int>(rng.uniformInt(5));
          return layout::hexLayout(n, n);
      }
      case 3:
        return layout::racetrackRingLayout(
            3 + static_cast<int>(rng.uniformInt(20)));
      default:
        return layout::serpentineLayout(
            4 + static_cast<int>(rng.uniformInt(30)),
            1 + static_cast<int>(rng.uniformInt(6)));
    }
}

/** A random clock tree over the layout. */
clocktree::ClockTree
randomTree(const layout::Layout &l, Rng &rng)
{
    switch (rng.uniformInt(4)) {
      case 0:
        return clocktree::buildSpine(l);
      case 1:
        return clocktree::buildRecursiveBisection(l);
      case 2:
        return clocktree::buildGreedyMatching(l);
      default:
        return clocktree::buildRandomTree(l, rng);
    }
}

class GeometricInvariants
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GeometricInvariants, HoldForRandomLayoutTreePairs)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 12; ++trial) {
        const layout::Layout l = randomLayout(rng);
        const clocktree::ClockTree t = randomTree(l, rng);
        ASSERT_TRUE(t.validate(false)) << t.name;
        ASSERT_EQ(t.boundCellCount(), l.size()) << t.name;

        const double m = rng.uniform(0.1, 1.0);
        const double eps = rng.uniform(0.0, m);
        const auto model = core::SkewModel::summation(m, eps);
        const auto report = core::analyzeSkew(l, t, model);

        const Length depth = t.maxRootPathLength();
        for (const core::EdgeSkew &e : report.edges) {
            // Geometry: 0 <= d <= s <= 2 * max root path.
            EXPECT_GE(e.d, -1e-9);
            EXPECT_LE(e.d, e.s + 1e-9);
            EXPECT_LE(e.s, 2.0 * depth + 1e-9);
            // Model: lower <= upper.
            EXPECT_LE(e.lower, e.upper + 1e-9);
        }

        // Sampled chips respect the per-pair upper bounds.
        const auto inst = core::sampleSkewInstance(l, t, core::WireDelay{m, eps}, rng);
        for (std::size_t i = 0; i < report.edges.size(); ++i)
            EXPECT_LE(inst.edgeSkew[i], report.edges[i].upper + 1e-9)
                << t.name;

        // The adversarial chip realises at least the A11 bound on its
        // critical pair (max over pairs of eps * s).
        const auto adv = core::adversarialSkewInstance(l, t, core::WireDelay{m, eps});
        EXPECT_GE(adv.maxCommSkew, report.maxSkewLower - 1e-9)
            << t.name;
        EXPECT_LE(adv.maxCommSkew, report.maxSkewUpper + 1e-9)
            << t.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometricInvariants,
                         ::testing::Values(101u, 102u, 103u, 104u,
                                           105u, 106u));

class BufferingInvariants
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BufferingInvariants, PreservePathLengthAndBoundSegments)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 8; ++trial) {
        const layout::Layout l = randomLayout(rng);
        const clocktree::ClockTree t = randomTree(l, rng);
        const Length spacing = rng.uniform(0.5, 8.0);
        const auto b =
            clocktree::BufferedClockTree::insertBuffers(t, spacing);

        EXPECT_LE(b.maxSegmentLength(), spacing + 1e-9);
        EXPECT_EQ(b.sites().size(), t.size() + b.bufferCount());

        // Root-to-node distance preserved for every bound cell.
        for (CellId c = 0;
             static_cast<std::size_t>(c) < l.size(); ++c) {
            const NodeId v = t.nodeOfCell(c);
            Length total = 0.0;
            for (NodeId s = b.siteOfNode(v); s != invalidId;
                 s = b.sites()[s].parent) {
                total += b.sites()[s].wireFromParent;
            }
            EXPECT_NEAR(total, t.rootPathLength(v), 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferingInvariants,
                         ::testing::Values(111u, 112u, 113u, 114u));

TEST(PeriodMonotonicity, PeriodGrowsWithSkewAndDepth)
{
    core::ClockParams cp;
    const layout::Layout small = layout::linearLayout(8);
    const layout::Layout large = layout::linearLayout(64);
    const auto ts = clocktree::buildSpine(small);
    const auto tl = clocktree::buildSpine(large);

    for (double eps : {0.001, 0.01, 0.02}) {
        const auto model = core::SkewModel::summation(0.05, eps);
        cp.m = 0.05;
        cp.eps = eps;
        const auto p_small = core::clockPeriod(
            core::analyzeSkew(small, ts, model), ts, cp,
            core::ClockingMode::Equipotential);
        const auto p_large = core::clockPeriod(
            core::analyzeSkew(large, tl, model), tl, cp,
            core::ClockingMode::Equipotential);
        EXPECT_GT(p_large.period, p_small.period);
    }

    // Period monotone in eps at fixed structure.
    double prev = 0.0;
    for (double eps : {0.001, 0.01, 0.02, 0.04}) {
        const auto model = core::SkewModel::summation(0.05, eps);
        const auto p = core::clockPeriod(
            core::analyzeSkew(large, tl, model), tl, cp,
            core::ClockingMode::Pipelined);
        EXPECT_GT(p.period, prev);
        prev = p.period;
    }
}

/** Every algorithm in the library, run clocked with zero skew, equals
 *  its ideal lock-step execution. */
struct AlgoCase
{
    const char *name;
    systolic::SystolicArray (*build)();
    systolic::ExternalInputFn (*inputs)();
    int cycles;
};

systolic::SystolicArray
buildFirCase()
{
    return systolic::buildFir({1.0, -0.5, 2.0, 0.25});
}
systolic::ExternalInputFn
firIn()
{
    return systolic::firInputs({1, 2, 3, 4, 5});
}

systolic::SystolicArray
buildMatVecCase()
{
    return systolic::buildMatVec({1.0, 2.0, 3.0});
}
systolic::ExternalInputFn
matVecIn()
{
    return systolic::matVecInputs({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
}

systolic::SystolicArray
buildMatMulCase()
{
    return systolic::buildMatMul(3);
}
systolic::ExternalInputFn
matMulIn()
{
    return systolic::matMulInputs({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}},
                                  {{9, 8, 7}, {6, 5, 4}, {3, 2, 1}});
}

systolic::SystolicArray
buildSortCase()
{
    return systolic::buildOESort({5, 2, 8, 1, 9, 3});
}
systolic::ExternalInputFn
sortIn()
{
    return nullptr;
}

systolic::SystolicArray
buildHornerCase()
{
    return systolic::buildHorner({1.0, -2.0, 0.5});
}
systolic::ExternalInputFn
hornerIn()
{
    return systolic::hornerInputs({0.5, 1.5, -0.5});
}

systolic::SystolicArray
buildJacobiCase()
{
    return systolic::buildJacobi(3, 4, 0.5);
}
systolic::ExternalInputFn
jacobiIn()
{
    return systolic::jacobiInputs(1.0);
}

systolic::SystolicArray
buildSearchCase()
{
    return treemachine::buildSearchMachine(3, {10, 20, 30, 40});
}
systolic::ExternalInputFn
searchIn()
{
    return treemachine::searchInputs({25, 12, 38});
}

systolic::SystolicArray
buildTriSolveCase()
{
    return systolic::buildTriSolve(3);
}
systolic::ExternalInputFn
triSolveIn()
{
    return systolic::triSolveInputs({{2, 0, 0}, {1, 1, 0}, {3, 2, 4}},
                                    {4, 3, 25});
}

class ClockedEqualsIdeal : public ::testing::TestWithParam<AlgoCase>
{
};

TEST_P(ClockedEqualsIdeal, ZeroSkewLockStep)
{
    const AlgoCase &c = GetParam();
    systolic::SystolicArray a = c.build();
    const auto ext = c.inputs();
    const auto ideal = systolic::runIdeal(a, c.cycles, ext);

    systolic::LinkTiming timing;
    const std::vector<Time> offsets(a.size(), 0.0);
    const auto clocked = systolic::runClocked(
        a, c.cycles, ext, offsets, 10.0, timing);
    EXPECT_TRUE(clocked.correct) << c.name;
    EXPECT_TRUE(clocked.trace.matches(ideal)) << c.name;

    // And with a uniform clock shift (common-mode skew is harmless).
    const std::vector<Time> shifted(a.size(), 3.7);
    const auto shifted_run = systolic::runClocked(
        a, c.cycles, ext, shifted, 10.0, timing);
    EXPECT_TRUE(shifted_run.trace.matches(ideal)) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, ClockedEqualsIdeal,
    ::testing::Values(
        AlgoCase{"fir", buildFirCase, firIn, 14},
        AlgoCase{"matvec", buildMatVecCase, matVecIn, 9},
        AlgoCase{"matmul", buildMatMulCase, matMulIn, 7},
        AlgoCase{"sort", buildSortCase, sortIn, 7},
        AlgoCase{"horner", buildHornerCase, hornerIn, 8},
        AlgoCase{"jacobi", buildJacobiCase, jacobiIn, 10},
        AlgoCase{"search", buildSearchCase, searchIn, 9},
        AlgoCase{"trisolve", buildTriSolveCase, triSolveIn, 5}),
    [](const ::testing::TestParamInfo<AlgoCase> &info) {
        return info.param.name;
    });

} // namespace
