/**
 * @file
 * Tests for the Elmore delay analysis of unbuffered clock trees.
 */

#include <gtest/gtest.h>

#include "circuit/elmore.hh"
#include "clocktree/builders.hh"
#include "common/fit.hh"
#include "core/clock_period.hh"
#include "layout/generators.hh"

namespace
{

using namespace vsync;
using namespace vsync::circuit;

WireRC
unitRc()
{
    WireRC rc;
    rc.rPerLambda = 1.0;
    rc.cPerLambda = 1.0;
    rc.cLeaf = 0.0;
    rc.rDriver = 0.0;
    rc.nsPerOhmFarad = 1.0; // work in raw RC units
    return rc;
}

TEST(Elmore, SingleWireMatchesClosedForm)
{
    clocktree::ClockTree t;
    const NodeId root = t.addRoot({0, 0});
    const NodeId leaf = t.addChild(root, {10, 0});
    t.bindCell(leaf, 0);
    const auto rep = elmoreAnalysis(t, unitRc());
    // R = 10, downstream C = half of own wire = 5: delay = 50.
    EXPECT_DOUBLE_EQ(rep.arrival[leaf], 50.0);
    EXPECT_DOUBLE_EQ(rep.totalCapacitance, 10.0);
}

TEST(Elmore, LeafLoadAddsDelay)
{
    WireRC rc = unitRc();
    rc.cLeaf = 4.0;
    clocktree::ClockTree t;
    const NodeId root = t.addRoot({0, 0});
    const NodeId leaf = t.addChild(root, {10, 0});
    t.bindCell(leaf, 0);
    const auto rep = elmoreAnalysis(t, rc);
    // R = 10, C = 5 (half wire) + 4 (tap): delay = 90.
    EXPECT_DOUBLE_EQ(rep.arrival[leaf], 90.0);
}

TEST(Elmore, DriverResistanceChargesEverything)
{
    WireRC rc = unitRc();
    rc.rDriver = 2.0;
    clocktree::ClockTree t;
    const NodeId root = t.addRoot({0, 0});
    const NodeId leaf = t.addChild(root, {10, 0});
    t.bindCell(leaf, 0);
    const auto rep = elmoreAnalysis(t, rc);
    EXPECT_DOUBLE_EQ(rep.arrival[root], 20.0); // 2 * 10 fF total
    EXPECT_DOUBLE_EQ(rep.arrival[leaf], 70.0);
}

TEST(Elmore, SymmetricHTreeHasNoLeafSkew)
{
    const int n = 8;
    const layout::Layout l = layout::meshLayout(n, n);
    const auto tree = clocktree::buildHTreeGrid(l, n, n, false);
    WireRC rc = unitRc();
    rc.cLeaf = 3.0;
    const auto rep = elmoreAnalysis(tree, rc);
    EXPECT_NEAR(rep.maxLeafArrival, rep.minLeafArrival,
                1e-9 * rep.maxLeafArrival + 1e-12);
}

TEST(Elmore, SpineDrivenFromOneEndIsSkewed)
{
    const layout::Layout l = layout::linearLayout(32);
    const auto tree = clocktree::buildSpine(l);
    const graph::Graph comm = l.comm();
    const auto rep = elmoreAnalysis(tree, unitRc(), &comm);
    // The far end settles much later than the near end...
    EXPECT_GT(rep.maxLeafArrival, 10.0 * rep.minLeafArrival);
    // ...and even neighbours differ (the unbuffered spine is a bad
    // equipotential tree, which is why it gets buffered + pipelined).
    EXPECT_GT(rep.maxCommSkew, 0.0);
}

TEST(Elmore, SettleGrowsQuadraticallyWithHTreeSide)
{
    std::vector<double> ns, settles;
    for (int n : {4, 8, 16, 32}) {
        const layout::Layout l = layout::meshLayout(n, n);
        const auto tree = clocktree::buildHTreeGrid(l, n, n, false);
        const auto rep = elmoreAnalysis(tree, unitRc());
        ns.push_back(n);
        settles.push_back(rep.maxLeafArrival);
    }
    EXPECT_EQ(classifyGrowth(ns, settles), GrowthLaw::Quadratic);
}

TEST(TwoPhase, PeriodAbsorbsSkewTwice)
{
    // Defined here to keep the two-phase check near its ablation use.
    core::SkewReport report;
    report.maxSkewUpper = 1.5;
    core::TwoPhaseParams tp;
    tp.phi1Min = 2.0;
    tp.phi2Min = 1.0;
    tp.nonoverlapMin = 0.25;
    EXPECT_DOUBLE_EQ(core::twoPhasePeriod(report, tp),
                     2.0 + 1.0 + 2.0 * (0.25 + 1.5));
}

} // namespace
