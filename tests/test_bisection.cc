/**
 * @file
 * Tests for minimum bisection computation (the Lemma 4 substrate).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "graph/bisection.hh"
#include "graph/topology.hh"

namespace
{

using namespace vsync::graph;
using vsync::Rng;

TEST(CutSize, CountsCrossingUndirectedEdges)
{
    const Topology t = linearArray(4);
    // Partition {0,1} vs {2,3}: one undirected edge crosses.
    EXPECT_EQ(cutSize(t.graph, {0, 0, 1, 1}), 1u);
    // Alternating partition: all three undirected edges cross.
    EXPECT_EQ(cutSize(t.graph, {0, 1, 0, 1}), 3u);
}

TEST(ExactBisection, PathGraphHasWidthOne)
{
    const Topology t = linearArray(8);
    const Bisection b = exactBisection(t.graph);
    EXPECT_TRUE(b.exact);
    EXPECT_EQ(b.cutWidth, 1u);
}

TEST(ExactBisection, CycleHasWidthTwo)
{
    const Topology t = ring(8);
    EXPECT_EQ(exactBisection(t.graph).cutWidth, 2u);
}

TEST(ExactBisection, CompleteGraphK6)
{
    Graph g(6);
    for (vsync::CellId a = 0; a < 6; ++a)
        for (vsync::CellId b = a + 1; b < 6; ++b)
            g.addEdge(a, b);
    // Balanced 3|3 split of K6 cuts 3*3 = 9 edges.
    EXPECT_EQ(exactBisection(g).cutWidth, 9u);
}

TEST(ExactBisection, Mesh4x4HasWidthFour)
{
    const Topology t = mesh(4, 4);
    EXPECT_EQ(exactBisection(t.graph).cutWidth, 4u);
}

TEST(ExactBisection, PartitionIsBalanced)
{
    const Topology t = mesh(4, 4);
    const Bisection b = exactBisection(t.graph);
    int side1 = 0;
    for (int s : b.side)
        side1 += s;
    EXPECT_EQ(side1, 8);
}

TEST(KLBisection, MatchesExactOnSmallGraphs)
{
    Rng rng(42);
    for (int n : {6, 8, 10}) {
        const Topology t = mesh(2, n / 2);
        const auto exact = exactBisection(t.graph);
        const auto kl = klBisection(t.graph, rng, 8);
        EXPECT_EQ(kl.cutWidth, exact.cutWidth) << "n=" << n;
    }
}

TEST(KLBisection, MeshWidthNearN)
{
    Rng rng(7);
    const int n = 8;
    const Topology t = mesh(n, n);
    const auto b = klBisection(t.graph, rng, 8);
    // The true width is n; the heuristic is an upper bound and should
    // land close.
    EXPECT_GE(b.cutWidth, static_cast<std::size_t>(n));
    EXPECT_LE(b.cutWidth, static_cast<std::size_t>(2 * n));
}

TEST(KLBisection, BalancedOutput)
{
    Rng rng(3);
    const Topology t = mesh(5, 5);
    const auto b = klBisection(t.graph, rng, 4);
    int side1 = 0;
    for (int s : b.side)
        side1 += s;
    EXPECT_EQ(side1, 12); // floor(25 / 2)
}

TEST(MinimumBisection, DispatchesOnSize)
{
    Rng rng(1);
    EXPECT_TRUE(minimumBisection(linearArray(10).graph, rng).exact);
    EXPECT_FALSE(minimumBisection(linearArray(30).graph, rng).exact);
}

/** Property: the linear array's bisection width is 1 at every size. */
class LinearBisection : public ::testing::TestWithParam<int>
{
};

TEST_P(LinearBisection, WidthOne)
{
    Rng rng(11);
    const Topology t = linearArray(GetParam());
    const auto b = minimumBisection(t.graph, rng);
    EXPECT_EQ(b.cutWidth, 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinearBisection,
                         ::testing::Values(4, 8, 12, 16, 20));

} // namespace
