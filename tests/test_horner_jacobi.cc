/**
 * @file
 * Tests for the Horner evaluator and the Jacobi relaxation mesh.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "systolic/executor.hh"
#include "systolic/horner.hh"
#include "systolic/jacobi.hh"

namespace
{

using namespace vsync;
using namespace vsync::systolic;

TEST(Horner, ConstantPolynomial)
{
    SystolicArray a = buildHorner({7.0});
    const Trace tr = runIdeal(a, 4, hornerInputs({1.0, 2.0, 3.0}));
    const auto &r = tr.of(0, 1);
    for (int t = 0; t < 4; ++t)
        EXPECT_DOUBLE_EQ(r[t], 7.0);
}

TEST(Horner, QuadraticKnownValues)
{
    // p(x) = 2x^2 + 3x + 4 -> coefficients {2, 3, 4}.
    SystolicArray a = buildHorner({2.0, 3.0, 4.0});
    const std::vector<Word> xs{0.0, 1.0, 2.0, -1.0};
    const int cycles = 8;
    const Trace tr = runIdeal(a, cycles, hornerInputs(xs));
    const auto &r = tr.of(2, 1);
    // Latency k-1 = 2: p(0)=4 at t=2, p(1)=9, p(2)=18, p(-1)=3.
    EXPECT_DOUBLE_EQ(r[2], 4.0);
    EXPECT_DOUBLE_EQ(r[3], 9.0);
    EXPECT_DOUBLE_EQ(r[4], 18.0);
    EXPECT_DOUBLE_EQ(r[5], 3.0);
}

/** Property: random polynomials and inputs match the reference. */
class HornerProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HornerProperty, MatchesReference)
{
    Rng rng(GetParam());
    const int k = 1 + static_cast<int>(rng.uniformInt(6));
    const int len = 3 + static_cast<int>(rng.uniformInt(10));
    std::vector<Word> coeffs, xs;
    for (int i = 0; i < k; ++i)
        coeffs.push_back(rng.uniform(-2.0, 2.0));
    for (int i = 0; i < len; ++i)
        xs.push_back(rng.uniform(-1.5, 1.5));

    SystolicArray a = buildHorner(coeffs);
    const int cycles = len + k + 2;
    const Trace tr = runIdeal(a, cycles, hornerInputs(xs));
    const auto expected = hornerExpectedOutput(coeffs, xs, cycles);
    const auto &r = tr.of(static_cast<CellId>(k - 1), 1);
    for (int t = 0; t < cycles; ++t)
        EXPECT_NEAR(r[t], expected[t], 1e-9) << "t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HornerProperty,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u,
                                           36u));

TEST(Jacobi, SingleCellConvergesToBoundary)
{
    SystolicArray a = buildJacobi(1, 1, 0.0);
    const Trace tr = runIdeal(a, 3, jacobiInputs(8.0));
    // All four ports read the boundary: value jumps to 8 and stays.
    EXPECT_DOUBLE_EQ(tr.finalStates[0][0], 8.0);
}

TEST(Jacobi, MatchesReferenceRecurrenceExactly)
{
    const int rows = 4, cols = 5, cycles = 9;
    SystolicArray a = buildJacobi(rows, cols, 1.0);
    const Trace tr = runIdeal(a, cycles, jacobiInputs(2.0));
    const auto ref = jacobiReference(rows, cols, 1.0, 2.0, cycles);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            EXPECT_NEAR(tr.finalStates[r * cols + c][0], ref[r][c],
                        1e-12)
                << r << "," << c;
}

TEST(Jacobi, ConvergesToHarmonicSolution)
{
    // Constant boundary: the harmonic solution is that constant.
    const int n = 6, cycles = 400;
    SystolicArray a = buildJacobi(n, n, 0.0);
    const Trace tr = runIdeal(a, cycles, jacobiInputs(1.0));
    for (int i = 0; i < n * n; ++i)
        EXPECT_NEAR(tr.finalStates[i][0], 1.0, 1e-3) << i;
}

/** Property: executor equals the mirrored reference for random
 *  shapes/parameters. */
class JacobiProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(JacobiProperty, ExecutorMirrorsReference)
{
    Rng rng(GetParam());
    const int rows = 1 + static_cast<int>(rng.uniformInt(5));
    const int cols = 1 + static_cast<int>(rng.uniformInt(5));
    const Word init = rng.uniform(-2.0, 2.0);
    const Word boundary = rng.uniform(-2.0, 2.0);
    const int cycles = 1 + static_cast<int>(rng.uniformInt(20));

    SystolicArray a = buildJacobi(rows, cols, init);
    const Trace tr = runIdeal(a, cycles, jacobiInputs(boundary));
    const auto ref =
        jacobiReference(rows, cols, init, boundary, cycles);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            EXPECT_NEAR(tr.finalStates[r * cols + c][0], ref[r][c],
                        1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JacobiProperty,
                         ::testing::Values(41u, 42u, 43u, 44u, 45u,
                                           46u, 47u, 48u));

} // namespace
