/**
 * @file
 * Tests for level-sensitive latches, two-phase clock generation, and
 * the phase-overlap (skew race) detector.
 */

#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "desim/elements.hh"
#include "desim/latch.hh"
#include "desim/signal.hh"
#include "desim/simulator.hh"

namespace
{

using namespace vsync;
using namespace vsync::desim;

TEST(Latch, TransparentWhileOpen)
{
    Simulator sim;
    Signal d("d"), en("en", true), q("q");
    Latch latch(sim, d, en, q, 0.1, 0.2);
    sim.schedule(1.0, [&d, &sim]() { d.set(sim.now(), true); });
    sim.schedule(2.0, [&d, &sim]() { d.set(sim.now(), false); });
    sim.run();
    EXPECT_FALSE(q.value());
    EXPECT_EQ(q.transitions(), 2u);
}

TEST(Latch, HoldsWhileClosed)
{
    Simulator sim;
    Signal d("d"), en("en", true), q("q");
    Latch latch(sim, d, en, q, 0.1, 0.2);
    sim.schedule(1.0, [&d, &sim]() { d.set(sim.now(), true); });
    sim.schedule(2.0, [&en, &sim]() { en.set(sim.now(), false); });
    sim.schedule(3.0, [&d, &sim]() { d.set(sim.now(), false); });
    sim.run();
    EXPECT_TRUE(q.value()); // change at t=3 was not passed
    EXPECT_EQ(latch.closures(), 1u);
    EXPECT_TRUE(latch.setupViolations().empty());
}

TEST(Latch, OpeningPassesCurrentData)
{
    Simulator sim;
    Signal d("d"), en("en", false), q("q");
    Latch latch(sim, d, en, q, 0.1, 0.2);
    sim.schedule(1.0, [&d, &sim]() { d.set(sim.now(), true); });
    sim.schedule(2.0, [&en, &sim]() { en.set(sim.now(), true); });
    sim.run();
    EXPECT_TRUE(q.value());
    EXPECT_DOUBLE_EQ(q.lastChange(), 2.1);
}

TEST(Latch, FlagsLateDataAtClosure)
{
    Simulator sim;
    Signal d("d"), en("en", true), q("q");
    Latch latch(sim, d, en, q, 0.1, 0.5);
    sim.schedule(1.8, [&d, &sim]() { d.set(sim.now(), true); });
    sim.schedule(2.0, [&en, &sim]() { en.set(sim.now(), false); });
    sim.run();
    ASSERT_EQ(latch.setupViolations().size(), 1u);
    EXPECT_DOUBLE_EQ(latch.setupViolations()[0], 2.0);
}

TEST(TwoPhaseClock, PhasesNeverOverlapNominally)
{
    Simulator sim;
    Signal phi1("phi1"), phi2("phi2");
    PhaseOverlapDetector det(phi1, phi2);
    TwoPhaseClock clock(sim, phi1, phi2, 10.0, 3.0, 1.0, 5);
    sim.run();
    EXPECT_EQ(det.overlaps(), 0u);
    EXPECT_EQ(phi1.transitions(), 10u);
    EXPECT_EQ(phi2.transitions(), 10u);
}

TEST(TwoPhaseClock, MasterSlavePairActsAsRegister)
{
    // phi1 latch feeding a phi2 latch: one word per cycle, no race.
    Simulator sim;
    Signal d("d"), mid("mid"), q("q");
    Signal phi1("phi1"), phi2("phi2");
    Latch master(sim, d, phi1, mid, 0.05, 0.1);
    Latch slave(sim, mid, phi2, q, 0.05, 0.1);
    TwoPhaseClock clock(sim, phi1, phi2, 10.0, 3.0, 1.0, 4);

    // Data changes during phi2 (master closed); appears at q one
    // phi2 window later.
    std::vector<std::pair<Time, bool>> q_events;
    q.onChange([&q_events](Time t, bool v) {
        q_events.emplace_back(t, v);
    });
    sim.schedule(5.0, [&d, &sim]() { d.set(sim.now(), true); });
    sim.run();
    // Master opens at t=10, mid rises ~10.05; slave opens at t=14:
    // q rises ~14.05.
    ASSERT_EQ(q_events.size(), 1u);
    EXPECT_NEAR(q_events[0].first, 14.1, 0.2);
    EXPECT_TRUE(q_events[0].second);
}

TEST(PhaseOverlap, SkewedPhaseWireCausesOverlap)
{
    // Delay phi1 by more than the gap on its way to a distant cell:
    // at that cell the delivered phases overlap -- the two-phase race
    // the skew budget must prevent (core::twoPhasePeriod's 2*sigma
    // term).
    Simulator sim;
    Signal phi1_src("phi1@gen"), phi2_src("phi2@gen");
    Signal phi1_cell("phi1@cell");
    DelayElement phi1_wire(sim, phi1_src, phi1_cell,
                           EdgeDelays::same(1.5)); // gap is 1.0
    PhaseOverlapDetector at_cell(phi1_cell, phi2_src);
    PhaseOverlapDetector at_gen(phi1_src, phi2_src);
    TwoPhaseClock clock(sim, phi1_src, phi2_src, 10.0, 3.0, 1.0, 5);
    sim.run();
    EXPECT_EQ(at_gen.overlaps(), 0u);
    EXPECT_EQ(at_cell.overlaps(), 5u);
    EXPECT_NEAR(at_cell.overlapTime(), 5 * 0.5, 1e-9);
}

TEST(PhaseOverlap, SkewWithinGapIsSafe)
{
    Simulator sim;
    Signal phi1_src("phi1@gen"), phi2_src("phi2@gen");
    Signal phi1_cell("phi1@cell");
    DelayElement phi1_wire(sim, phi1_src, phi1_cell,
                           EdgeDelays::same(0.8)); // below the 1.0 gap
    PhaseOverlapDetector at_cell(phi1_cell, phi2_src);
    TwoPhaseClock clock(sim, phi1_src, phi2_src, 10.0, 3.0, 1.0, 5);
    sim.run();
    EXPECT_EQ(at_cell.overlaps(), 0u);
}

} // namespace
