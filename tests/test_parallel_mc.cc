/**
 * @file
 * Tests for the deterministic parallel Monte-Carlo engine: the thread
 * pool, counter-based RNG substreams, and the guarantee that every
 * sweep is bit-identical at 1, 2 and 8 threads for a fixed seed.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "circuit/process.hh"
#include "circuit/yield.hh"
#include "clocktree/builders.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/skew_analysis.hh"
#include "hybrid/network.hh"
#include "hybrid/partition.hh"
#include "layout/generators.hh"
#include "mc/sweeps.hh"
#include "systolic/fir.hh"

namespace
{

using namespace vsync;

const unsigned kThreadCounts[] = {1, 2, 8};

TEST(ThreadPool, DefaultThreadCountIsPositive)
{
    EXPECT_GE(defaultThreadCount(), 1u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce)
{
    for (const unsigned tc : kThreadCounts) {
        ThreadPool pool(tc);
        EXPECT_EQ(pool.threadCount(), tc);
        std::vector<std::atomic<int>> visits(1000);
        pool.parallelFor(visits.size(), [&](std::size_t i) {
            visits[i].fetch_add(1);
        });
        for (const auto &v : visits)
            EXPECT_EQ(v.load(), 1);
    }
}

TEST(ThreadPool, ParallelForRangeCoversExactly)
{
    ThreadPool pool(8);
    std::vector<int> out(237, 0);
    pool.parallelForRange(out.size(), 10,
                          [&](std::size_t b, std::size_t e) {
                              for (std::size_t i = b; i < e; ++i)
                                  out[i] = static_cast<int>(i);
                          });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ThreadPool, ReusableAcrossJobsAndEmptyJobs)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
    long long sum = 0;
    std::mutex m;
    for (int round = 0; round < 3; ++round) {
        pool.parallelForRange(100, 7,
                              [&](std::size_t b, std::size_t e) {
                                  long long local = 0;
                                  for (std::size_t i = b; i < e; ++i)
                                      local += static_cast<long long>(i);
                                  std::lock_guard<std::mutex> lock(m);
                                  sum += local;
                              });
    }
    EXPECT_EQ(sum, 3 * (99 * 100 / 2));
}

TEST(ThreadPool, PropagatesTaskExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(64,
                                  [](std::size_t i) {
                                      if (i == 33)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool survives a failed job.
    std::atomic<int> n{0};
    pool.parallelFor(10, [&](std::size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 10);
}

/** Counts begin/end callbacks; safe to share across pool threads. */
class CountingObserver : public PoolObserver
{
  public:
    void
    onChunkBegin(unsigned, std::size_t, std::size_t) override
    {
        begins.fetch_add(1, std::memory_order_relaxed);
    }
    void
    onChunkEnd(unsigned, std::size_t, std::size_t) override
    {
        ends.fetch_add(1, std::memory_order_relaxed);
    }
    std::atomic<int> begins{0};
    std::atomic<int> ends{0};
};

TEST(ThreadPool, SerialPathObserverHandoffIsRaceFree)
{
    // Regression (TSan): the serial fast path of parallelForRange read
    // `observer` without the mutex. setObserver is documented as "call
    // while no job is active", but that contract alone provides no
    // happens-before when the setter is a *different* thread -- the
    // turn-taking below uses relaxed atomics precisely so the pool's
    // own mutex is the only synchronisation available.
    CountingObserver obs;
    ThreadPool pool(1); // count == 1: every job takes the serial path
    std::atomic<int> turn{0};
    std::thread setter([&] {
        for (int i = 0; i < 100; ++i) {
            while (turn.load(std::memory_order_relaxed) != 0)
                std::this_thread::yield();
            pool.setObserver(i % 2 ? nullptr : &obs);
            turn.store(1, std::memory_order_relaxed);
        }
    });
    for (int i = 0; i < 100; ++i) {
        while (turn.load(std::memory_order_relaxed) != 1)
            std::this_thread::yield();
        pool.parallelForRange(4, 8,
                              [](std::size_t, std::size_t) {});
        turn.store(0, std::memory_order_relaxed);
    }
    setter.join();
    pool.setObserver(nullptr);
    EXPECT_EQ(obs.begins.load(), obs.ends.load());
    EXPECT_GT(obs.begins.load(), 0);
}

TEST(ThreadPool, ObserverEndPairedWhenChunkThrows)
{
    // Regression: the serial fast path skipped onChunkEnd when fn
    // threw, leaving trace tracks with an open span. Both paths must
    // pair every begin with an end even on the exceptional exit.
    for (const unsigned tc : {1u, 4u}) {
        CountingObserver obs;
        ThreadPool pool(tc);
        pool.setObserver(&obs);
        EXPECT_THROW(
            pool.parallelForRange(10, 16,
                                  [](std::size_t, std::size_t) {
                                      throw std::runtime_error("boom");
                                  }),
            std::runtime_error);
        pool.setObserver(nullptr);
        EXPECT_EQ(obs.begins.load(), obs.ends.load()) << tc;
        EXPECT_GT(obs.begins.load(), 0) << tc;
    }
}

TEST(ThreadPool, FirstExceptionAbandonsRemainingChunks)
{
    // Regression: a throwing chunk used to leave all remaining chunks
    // running to completion before the rethrow. The first chunk here
    // throws immediately, so only chunks already in flight at that
    // moment may still run -- nowhere near the full index space.
    ThreadPool pool(2);
    std::atomic<std::size_t> executed{0};
    const std::size_t n = 200000;
    EXPECT_THROW(
        pool.parallelForRange(n, 1,
                              [&](std::size_t b, std::size_t) {
                                  if (b == 0)
                                      throw std::runtime_error("boom");
                                  executed.fetch_add(
                                      1, std::memory_order_relaxed);
                              }),
        std::runtime_error);
    EXPECT_LT(executed.load(), n / 2);
}

TEST(ThreadPool, PreCancelledJobRunsNothing)
{
    for (const unsigned tc : kThreadCounts) {
        ThreadPool pool(tc);
        CancelToken token;
        token.cancel();
        std::atomic<std::size_t> executed{0};
        pool.parallelForRange(
            1000, 4,
            [&](std::size_t, std::size_t) {
                executed.fetch_add(1, std::memory_order_relaxed);
            },
            &token);
        EXPECT_EQ(executed.load(), 0u) << tc;
    }
}

TEST(ThreadPool, CancellationStopsHandingOutChunks)
{
    for (const unsigned tc : kThreadCounts) {
        ThreadPool pool(tc);
        CancelToken token;
        std::atomic<std::size_t> executed{0};
        const std::size_t n = 100000;
        // Cancelling from inside a chunk returns normally with the
        // index space only partially covered.
        pool.parallelForRange(
            n, 1,
            [&](std::size_t, std::size_t) {
                if (executed.fetch_add(1, std::memory_order_relaxed) >=
                    8)
                    token.cancel();
            },
            &token);
        EXPECT_GE(executed.load(), 1u) << tc;
        EXPECT_LT(executed.load(), n) << tc;

        // The pool survives a cancelled job and the token re-arms.
        token.reset();
        std::atomic<std::size_t> again{0};
        pool.parallelForRange(
            100, 4,
            [&](std::size_t b, std::size_t e) {
                again.fetch_add(e - b, std::memory_order_relaxed);
            },
            &token);
        EXPECT_EQ(again.load(), 100u) << tc;
    }
}

/** RAII: capture warn() lines, restore env + sink on destruction. */
class EnvThreadsFixture
{
  public:
    EnvThreadsFixture()
    {
        const char *prev = std::getenv("VSYNC_THREADS");
        if (prev)
            saved = prev;
        hadPrev = prev != nullptr;
        setLogSink([this](LogLevel level, const std::string &line) {
            if (level == LogLevel::Warn)
                warnings.push_back(line);
        });
    }

    ~EnvThreadsFixture()
    {
        if (hadPrev)
            setenv("VSYNC_THREADS", saved.c_str(), 1);
        else
            unsetenv("VSYNC_THREADS");
        setLogSink(nullptr);
    }

    unsigned
    withEnv(const char *value)
    {
        setenv("VSYNC_THREADS", value, 1);
        return defaultThreadCount();
    }

    std::vector<std::string> warnings;

  private:
    std::string saved;
    bool hadPrev = false;
};

TEST(ThreadPool, EnvThreadCountAcceptsExactIntegers)
{
    EnvThreadsFixture env;
    EXPECT_EQ(env.withEnv("3"), 3u);
    EXPECT_EQ(env.withEnv("1"), 1u);
    EXPECT_EQ(env.withEnv("1024"), 1024u); // the clamp itself is legal
    EXPECT_TRUE(env.warnings.empty());
}

TEST(ThreadPool, EnvThreadCountRejectsGarbageAndWrapAround)
{
    EnvThreadsFixture env;
    unsetenv("VSYNC_THREADS");
    const unsigned fallback = defaultThreadCount();

    // Regression: "4294967297" is 2^32 + 1 -- a blind cast to unsigned
    // wraps it to 1 and silently serialises the run. Likewise trailing
    // garbage used to be accepted by atoi-style parsing.
    const char *bad[] = {"4294967297", "8x",   "x8", "",
                         "0",          "-3",   "1025",
                         "999999999999999999999999"};
    for (const char *v : bad) {
        const std::size_t before = env.warnings.size();
        EXPECT_EQ(env.withEnv(v), fallback) << v;
        EXPECT_EQ(env.warnings.size(), before + 1)
            << "no warning for " << v;
    }
}

TEST(RngSubstreams, ForTrialIsPureAndDistinct)
{
    Rng a = Rng::forTrial(123, 7);
    Rng b = Rng::forTrial(123, 7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());

    // Neighbouring trials and different seeds give unrelated streams.
    Rng c = Rng::forTrial(123, 8);
    Rng d = Rng::forTrial(124, 7);
    Rng e = Rng::forTrial(123, 7);
    int same_c = 0, same_d = 0;
    for (int i = 0; i < 16; ++i) {
        const std::uint64_t ref = e.next();
        same_c += c.next() == ref;
        same_d += d.next() == ref;
    }
    EXPECT_EQ(same_c, 0);
    EXPECT_EQ(same_d, 0);
}

TEST(McEngine, RunTrialsBitIdenticalAcrossThreadCounts)
{
    std::vector<mc::McResult> results;
    for (const unsigned tc : kThreadCounts) {
        mc::McConfig cfg;
        cfg.seed = 99;
        cfg.trials = 333;
        cfg.threads = tc;
        cfg.grain = 5;
        results.push_back(mc::runTrials(
            cfg, [](std::uint64_t, Rng &rng) { return rng.normal(); }));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_TRUE(results[i].bitIdentical(results[0]));
        EXPECT_EQ(results[i].mean(), results[0].mean());
        EXPECT_EQ(results[i].stddev(), results[0].stddev());
    }
    // And the reduction saw every trial.
    EXPECT_EQ(results[0].stat.count(), 333u);
}

TEST(McEngine, TrialValueIndependentOfGrain)
{
    mc::McConfig cfg;
    cfg.seed = 7;
    cfg.trials = 100;
    cfg.threads = 8;
    const auto fn = [](std::uint64_t, Rng &rng) {
        return rng.uniform();
    };
    cfg.grain = 1;
    const auto fine = mc::runTrials(cfg, fn);
    cfg.grain = 64;
    const auto coarse = mc::runTrials(cfg, fn);
    EXPECT_TRUE(fine.bitIdentical(coarse));
}

TEST(McSweeps, SkewSweepBitIdenticalAcrossThreadCounts)
{
    const layout::Layout l = layout::meshLayout(8, 8);
    const auto tree = clocktree::buildHTreeGrid(l, 8, 8);
    std::vector<mc::McResult> results;
    for (const unsigned tc : kThreadCounts) {
        mc::McConfig cfg;
        cfg.seed = 0xabcd;
        cfg.trials = 64;
        cfg.threads = tc;
        cfg.grain = 4;
        results.push_back(mc::skewSweep(l, tree, core::WireDelay{0.05, 0.005}, cfg));
    }
    for (std::size_t i = 1; i < results.size(); ++i)
        EXPECT_TRUE(results[i].bitIdentical(results[0]));
    EXPECT_GT(results[0].mean(), 0.0);
}

TEST(McSweeps, SkewSweepMatchesSerialSampler)
{
    // Trial i of the sweep must equal sampleSkewInstance driven by the
    // same substream: the fast path changes bookkeeping, not draws.
    const layout::Layout l = layout::meshLayout(6, 6);
    const auto tree = clocktree::buildHTreeGrid(l, 6, 6);
    mc::McConfig cfg;
    cfg.seed = 31337;
    cfg.trials = 16;
    cfg.threads = 2;
    const auto sweep = mc::skewSweep(l, tree, core::WireDelay{0.05, 0.005}, cfg);
    for (std::size_t i = 0; i < cfg.trials; ++i) {
        Rng rng = Rng::forTrial(cfg.seed, i);
        const auto inst =
            core::sampleSkewInstance(l, tree, core::WireDelay{0.05, 0.005},
                                     rng);
        EXPECT_EQ(sweep.samples[i], inst.maxCommSkew) << "trial " << i;
    }
}

TEST(McSweeps, ChipCycleSweepBitIdenticalAndMatchesYieldHelper)
{
    auto p = circuit::ProcessParams::nmos1983();
    std::vector<mc::McResult> results;
    for (const unsigned tc : kThreadCounts) {
        mc::McConfig cfg;
        cfg.seed = 555;
        cfg.trials = 48;
        cfg.threads = tc;
        cfg.grain = 8;
        results.push_back(mc::chipCycleSweep(p, 256, cfg));
    }
    for (std::size_t i = 1; i < results.size(); ++i)
        EXPECT_TRUE(results[i].bitIdentical(results[0]));

    // The parallel circuit-level helper fabricates chips from the same
    // substreams, so the two APIs agree exactly.
    ThreadPool pool(8);
    const SampleSet viaCircuit =
        circuit::sampleChipCycleTimes(p, 256, 48, 555, pool);
    ASSERT_EQ(viaCircuit.count(), results[0].samples.size());
    for (std::size_t i = 0; i < viaCircuit.count(); ++i)
        EXPECT_EQ(viaCircuit.values()[i], results[0].samples[i]);
}

TEST(McSweeps, YieldMcIsAFractionAndMonotoneInPeriod)
{
    auto p = circuit::ProcessParams::nmos1983();
    mc::McConfig cfg;
    cfg.seed = 777;
    cfg.trials = 64;
    cfg.threads = 8;
    const Time t_med =
        circuit::cycleTimeAtYield(p, 256, 0.5);
    const double y_lo = mc::yieldAtCycleTimeMc(p, 256, t_med * 0.8, cfg);
    const double y_mid = mc::yieldAtCycleTimeMc(p, 256, t_med, cfg);
    const double y_hi = mc::yieldAtCycleTimeMc(p, 256, t_med * 1.5, cfg);
    EXPECT_GE(y_lo, 0.0);
    EXPECT_LE(y_hi, 1.0);
    EXPECT_LE(y_lo, y_mid);
    EXPECT_LE(y_mid, y_hi);
}

TEST(McSweeps, SelfTimedSweepBitIdenticalAcrossThreadCounts)
{
    const auto arr = systolic::buildFir({1.0, 2.0, 3.0, 4.0});
    std::vector<mc::McResult> results;
    for (const unsigned tc : kThreadCounts) {
        mc::McConfig cfg;
        cfg.seed = 2026;
        cfg.trials = 32;
        cfg.threads = tc;
        cfg.grain = 4;
        results.push_back(
            mc::selfTimedCycleSweep(arr, 16, 0.9, 1.0, 4.0, cfg));
    }
    for (std::size_t i = 1; i < results.size(); ++i)
        EXPECT_TRUE(results[i].bitIdentical(results[0]));
    EXPECT_GT(results[0].min(), 0.0);
    // Steady cycle is bracketed by the fast and slow service times.
    EXPECT_GE(results[0].min(), 1.0 - 1e-9);
    EXPECT_LE(results[0].max(), 4.0 + 1e-9);
}

TEST(McSweeps, HybridJitterSweepBitIdenticalAcrossThreadCounts)
{
    const layout::Layout l = layout::meshLayout(6, 6);
    hybrid::HybridParams params;
    params.jitterAmplitude = 0.5;
    const hybrid::HybridNetwork net(hybrid::partitionGrid(l, 3.0),
                                    params);
    std::vector<mc::McResult> results;
    for (const unsigned tc : kThreadCounts) {
        mc::McConfig cfg;
        cfg.seed = 4444;
        cfg.trials = 24;
        cfg.threads = tc;
        cfg.grain = 3;
        results.push_back(mc::hybridCycleSweep(net, 32, cfg));
    }
    for (std::size_t i = 1; i < results.size(); ++i)
        EXPECT_TRUE(results[i].bitIdentical(results[0]));
    // Jitter only adds cost: every sampled cycle sits at or above the
    // jitter-free steady cycle.
    const hybrid::HybridNetwork calm(hybrid::partitionGrid(l, 3.0),
                                     hybrid::HybridParams{});
    const Time base = calm.simulate(32).steadyCycle;
    EXPECT_GE(results[0].min(), base - 1e-9);
}

} // namespace
