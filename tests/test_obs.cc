/**
 * @file
 * Tests for the observability subsystem: metrics registry determinism,
 * sinks and log routing, Chrome-trace output, VCD waveform export and
 * the engine probes.
 */

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "clocktree/builders.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "desim/clock_net.hh"
#include "fault/injector.hh"
#include "fault/trix_grid.hh"
#include "hybrid/network.hh"
#include "layout/generators.hh"
#include "mc/montecarlo.hh"
#include "mc/resilience.hh"
#include "obs/metrics.hh"
#include "obs/probes.hh"
#include "obs/sink.hh"
#include "obs/trace.hh"
#include "obs/vcd.hh"

namespace
{

using namespace vsync;

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeBasics)
{
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.counter("c");
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);

    obs::Gauge &g = reg.gauge("g");
    g.set(2.5);
    g.add(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
    g.recordMax(3.0); // below current value: no effect
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
    g.recordMax(7.0);
    EXPECT_DOUBLE_EQ(g.value(), 7.0);

    // Lookup returns the same metric.
    reg.counter("c").inc();
    EXPECT_EQ(c.value(), 6u);
    EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, HistogramBucketing)
{
    obs::MetricsRegistry reg;
    obs::Histogram &h = reg.histogram("h", {1.0, 2.0, 4.0});
    h.observe(0.5);  // <= 1.0
    h.observe(1.0);  // <= 1.0 (inclusive upper bound)
    h.observe(1.5);  // <= 2.0
    h.observe(4.0);  // <= 4.0
    h.observe(99.0); // overflow
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.totalCount(), 5u);
}

TEST(Metrics, JsonListsMetricsSortedByName)
{
    obs::MetricsRegistry reg;
    reg.counter("z.last").inc();
    reg.gauge("a.first").set(1.0);
    reg.histogram("m.middle", {1.0}).observe(0.5);
    const std::string json = reg.toJsonString();
    const std::size_t a = json.find("a.first");
    const std::size_t m = json.find("m.middle");
    const std::size_t z = json.find("z.last");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(m, std::string::npos);
    ASSERT_NE(z, std::string::npos);
    EXPECT_LT(a, m);
    EXPECT_LT(m, z);
    EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"type\": \"gauge\""), std::string::npos);
    EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
}

/** The same concurrent update workload against a fresh registry. */
std::string
updateRegistryWith(unsigned threads)
{
    obs::MetricsRegistry reg;
    obs::Counter &events = reg.counter("events");
    obs::Gauge &hwm = reg.gauge("hwm");
    obs::Histogram &lat = reg.histogram("latency", {10.0, 100.0, 1000.0});
    ThreadPool pool(threads);
    pool.parallelForRange(10000, 64,
                          [&](std::size_t begin, std::size_t end) {
                              for (std::size_t i = begin; i < end; ++i) {
                                  events.inc(i % 3 + 1);
                                  hwm.recordMax(
                                      static_cast<double>(i % 977));
                                  lat.observe(
                                      static_cast<double>(i % 1500));
                              }
                          });
    return reg.toJsonString();
}

TEST(Metrics, JsonBitIdenticalAcrossThreadCounts)
{
    const std::string one = updateRegistryWith(1);
    EXPECT_EQ(one, updateRegistryWith(2));
    EXPECT_EQ(one, updateRegistryWith(8));
}

TEST(Metrics, FlushRendersToSink)
{
    obs::MetricsRegistry reg;
    reg.counter("n").inc(3);
    obs::CaptureSink sink;
    reg.flush(sink);
    ASSERT_EQ(sink.metricsSnapshots().size(), 1u);
    EXPECT_EQ(sink.metricsSnapshots().front(), reg.toJsonString());
}

// ------------------------------------------------------- logging + sinks

/** Restores the global logging configuration on scope exit. */
struct LogStateGuard
{
    LogLevel level = logLevel();
    ~LogStateGuard()
    {
        setLogLevel(level);
        setLogSink({});
    }
};

TEST(Logging, ParseLogLevel)
{
    EXPECT_EQ(parseLogLevel("debug", LogLevel::Info), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("INFO", LogLevel::Error), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("Warn", LogLevel::Info), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("warning", LogLevel::Info), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("error", LogLevel::Info), LogLevel::Error);
    EXPECT_EQ(parseLogLevel("2", LogLevel::Info), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel(nullptr, LogLevel::Warn), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("nonsense", LogLevel::Error),
              LogLevel::Error);
}

TEST(Logging, LevelFilterDropsBelowThreshold)
{
    LogStateGuard guard;
    obs::CaptureSink sink;
    obs::attachLogSink(&sink);

    setLogLevel(LogLevel::Warn);
    inform("not emitted");
    debugLog("not emitted");
    warn("emitted %d", 1);
    ASSERT_EQ(sink.logLines().size(), 1u);
    EXPECT_EQ(sink.logLines().front().second, "warn: emitted 1");
    EXPECT_EQ(sink.countAtLevel(LogLevel::Info), 0u);
    EXPECT_EQ(sink.countAtLevel(LogLevel::Warn), 1u);

    sink.clear();
    setLogLevel(LogLevel::Debug);
    debugLog("now visible");
    inform("also visible");
    EXPECT_EQ(sink.countAtLevel(LogLevel::Debug), 1u);
    EXPECT_EQ(sink.countAtLevel(LogLevel::Info), 1u);
}

TEST(Logging, EnvVariableSetsLevel)
{
    LogStateGuard guard;
    ::setenv("VSYNC_LOG_LEVEL", "error", 1);
    initLogLevelFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Error);

    obs::CaptureSink sink;
    obs::attachLogSink(&sink);
    warn("dropped at error level");
    EXPECT_TRUE(sink.logLines().empty());

    ::unsetenv("VSYNC_LOG_LEVEL");
    initLogLevelFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Info);
}

TEST(Logging, DetachedSinkRestoresStderrPath)
{
    LogStateGuard guard;
    obs::CaptureSink sink;
    obs::attachLogSink(&sink);
    obs::attachLogSink(nullptr);
    setLogLevel(LogLevel::Error); // silence the line below
    warn("goes nowhere");
    EXPECT_TRUE(sink.logLines().empty());
}

// ---------------------------------------------------------------- tracing

/** All "ts" values of a rendered Chrome trace, in document order. */
std::vector<std::uint64_t>
timestampsOf(const std::string &json)
{
    std::vector<std::uint64_t> ts;
    std::size_t pos = 0;
    const std::string key = "\"ts\": ";
    while ((pos = json.find(key, pos)) != std::string::npos) {
        pos += key.size();
        ts.push_back(std::strtoull(json.c_str() + pos, nullptr, 10));
    }
    return ts;
}

TEST(Trace, ChromeJsonIsBalancedAndMonotonic)
{
    obs::Tracer tracer;
    tracer.nameCurrentThread("main");
    {
        VSYNC_TRACE_SPAN(&tracer, "outer");
        { VSYNC_TRACE_SPAN(&tracer, "inner"); }
        tracer.recordInstant("marker");
    }
    EXPECT_EQ(tracer.eventCount(), 3u);
    EXPECT_EQ(tracer.threadCount(), 1u);

    std::ostringstream os;
    tracer.writeChromeJson(os);
    const std::string json = os.str();

    // Structural validity: balanced braces/brackets (no strings in the
    // document contain them) and the required top-level keys.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"main\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);

    // Events must be sorted by start timestamp.
    const auto ts = timestampsOf(json);
    ASSERT_EQ(ts.size(), 3u);
    for (std::size_t i = 1; i < ts.size(); ++i)
        EXPECT_GE(ts[i], ts[i - 1]);
}

TEST(Trace, NullTracerSpansAreNoops)
{
    VSYNC_TRACE_SPAN(nullptr, "disabled");
    obs::Span manual(nullptr, "also disabled");
    SUCCEED();
}

TEST(Trace, PoolObserverPutsWorkersOnOwnTracks)
{
    obs::Tracer tracer;
    obs::TracePoolObserver observer(tracer, "trial");
    ThreadPool pool(4);
    pool.setObserver(&observer);
    std::atomic<std::size_t> done{0};
    std::atomic<int> threadsSeen{0};
    // Hold every chunk until a second thread has claimed one, so the
    // caller cannot race through all chunks before a worker wakes.
    // Deadlock-free: workers are notified before the caller starts and
    // there are more chunks (16) than the caller can hold (1).
    pool.parallelForRange(64, 4,
                          [&](std::size_t begin, std::size_t end) {
                              static thread_local bool counted = false;
                              if (!counted) {
                                  counted = true;
                                  threadsSeen.fetch_add(1);
                              }
                              while (threadsSeen.load() < 2)
                                  std::this_thread::yield();
                              done.fetch_add(end - begin);
                          });
    pool.setObserver(nullptr);
    EXPECT_EQ(done.load(), 64u);
    EXPECT_GE(tracer.eventCount(), 64u / 4u); // one span per chunk
    EXPECT_GE(tracer.threadCount(), 2u);      // >= 2 distinct tracks

    std::ostringstream os;
    tracer.writeChromeJson(os);
    const std::string json = os.str();
    // Two distinct threads ran chunks and at most one of them is the
    // caller, so at least one named worker track must appear. (The
    // caller itself can lose every chunk to the workers, so its track
    // is not guaranteed.)
    EXPECT_NE(json.find("\"worker-"), std::string::npos);
    EXPECT_NE(json.find("trial[0,4)"), std::string::npos);
}

TEST(Trace, SerialFastPathStillObserved)
{
    obs::Tracer tracer;
    obs::TracePoolObserver observer(tracer, "serial");
    ThreadPool pool(1);
    pool.setObserver(&observer);
    pool.parallelForRange(8, 16, [](std::size_t, std::size_t) {});
    pool.setObserver(nullptr);
    EXPECT_EQ(tracer.eventCount(), 1u); // one chunk covering [0,8)
    std::ostringstream os;
    tracer.writeChromeJson(os);
    EXPECT_NE(os.str().find("serial[0,8)"), std::string::npos);
}

// -------------------------------------------------------------------- VCD

/** Drive a 2-level (4x4) H-tree clock net into a VCD document. */
std::string
htreeVcd()
{
    const layout::Layout l = layout::meshLayout(4, 4);
    const clocktree::ClockTree tree = clocktree::buildHTreeGrid(l, 4, 4);
    const auto btree =
        clocktree::BufferedClockTree::insertBuffers(tree, 2.0);

    desim::Simulator sim;
    desim::ClockNet net(
        sim, btree, [](const clocktree::BufferedSite &site, std::size_t) {
            return desim::EdgeDelays::same(
                0.5 * site.wireFromParent + (site.isBuffer ? 0.2 : 0.0));
        });

    std::ostringstream os;
    obs::VcdWriter vcd(os);
    obs::attachClockNet(vcd, net);
    vcd.beginDump();
    net.drive(4.0, 2);
    EXPECT_GT(vcd.changeCount(), 0u);
    EXPECT_EQ(vcd.wireCount(), net.siteCount());
    return os.str();
}

TEST(Vcd, GoldenHtree)
{
    const std::string got = htreeVcd();
    const std::string path =
        std::string(VSYNC_GOLDEN_DIR) + "/htree_2level.vcd";

    if (std::getenv("VSYNC_REGEN_GOLDEN")) {
        std::ofstream out(path);
        out << got;
        ASSERT_TRUE(out.good()) << "failed to write " << path;
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (regenerate with VSYNC_REGEN_GOLDEN=1 ./test_obs)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << "VCD output diverged from the golden file; if intentional, "
           "regenerate with VSYNC_REGEN_GOLDEN=1 ./test_obs";
}

TEST(Vcd, DeterministicAcrossRuns)
{
    EXPECT_EQ(htreeVcd(), htreeVcd());
}

TEST(Vcd, IdCodesAreCompactAndUnique)
{
    EXPECT_EQ(obs::VcdWriter::idCode(0), "!");
    EXPECT_EQ(obs::VcdWriter::idCode(93), "~");
    EXPECT_EQ(obs::VcdWriter::idCode(94), "!\"");
    EXPECT_NE(obs::VcdWriter::idCode(1), obs::VcdWriter::idCode(95));
}

/** Every line of the value-change section after the header. */
std::vector<std::string>
linesOf(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

TEST(Vcd, FaultedTrixGridDumpIsValidAndMasked)
{
    const int n = 8;
    desim::Simulator sim;
    fault::TrixGrid grid(sim, n, n, [](int, int, int) { return 1.0; });

    // Kill one mid-array link; the median vote must mask it.
    fault::FaultInjector injector(
        sim, fault::FaultPlan::singleDeadBuffer(grid.linkIndex(3, 3, 1)));
    injector.armTrixGrid(grid);
    EXPECT_EQ(injector.armed(), 1u);

    std::ostringstream os;
    obs::VcdWriter vcd(os);
    obs::attachTrixGrid(vcd, grid);
    vcd.beginDump();
    grid.pulse();

    // Masking despite the dead link: every node fires at the nominal
    // arrival for its layer.
    for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
            EXPECT_DOUBLE_EQ(grid.arrival(r, c),
                             fault::TrixGrid::nominalArrival(r, 1.0))
                << "node (" << r << "," << c << ")";

    // Structural VCD validity: header order, timescale, declarations
    // matching the wire count, monotonic #ticks, transitions recorded.
    const std::string text = os.str();
    const auto lines = linesOf(text);
    ASSERT_GT(lines.size(), 5u);
    EXPECT_EQ(lines[0], "$comment vlsisync waveform dump $end");
    EXPECT_EQ(lines[1], "$timescale 1ps $end");
    EXPECT_EQ(lines[2], "$scope module vlsisync $end");
    EXPECT_NE(text.find("$var wire 1 ! root $end"), std::string::npos);
    EXPECT_NE(text.find(" n3_3 $end"), std::string::npos);
    EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(text.find("$dumpvars"), std::string::npos);

    std::size_t vars = 0;
    long long lastTick = -1;
    bool sawTransition = false;
    for (const std::string &line : lines) {
        if (line.rfind("$var wire 1 ", 0) == 0)
            ++vars;
        if (!line.empty() && line[0] == '#') {
            const long long tick = std::strtoll(line.c_str() + 1,
                                                nullptr, 10);
            EXPECT_GT(tick, lastTick);
            lastTick = tick;
            sawTransition = true;
        }
    }
    EXPECT_EQ(vars, vcd.wireCount());
    EXPECT_EQ(vcd.wireCount(),
              static_cast<std::size_t>(n * n + 1)); // nodes + root
    EXPECT_TRUE(sawTransition);
    EXPECT_GT(vcd.changeCount(), 0u);
    // Last layer fires at nominalArrival(7) = 8 ns = tick 8000.
    EXPECT_EQ(lastTick, 8000);
}

// ------------------------------------------------------------ sim probes

TEST(Probes, SimProbeCountsEventsAndFires)
{
    const layout::Layout l = layout::meshLayout(4, 4);
    const clocktree::ClockTree tree = clocktree::buildHTreeGrid(l, 4, 4);
    const auto btree =
        clocktree::BufferedClockTree::insertBuffers(tree, 2.0);

    obs::MetricsRegistry reg;
    obs::MetricsSimProbe probe(reg);

    desim::Simulator sim;
    sim.setProbe(&probe);
    EXPECT_EQ(sim.probe(), &probe);
    desim::ClockNet net(
        sim, btree, [](const clocktree::BufferedSite &, std::size_t) {
            return desim::EdgeDelays::same(0.1);
        });
    net.drive(2.0, 4);
    sim.setProbe(nullptr);

    EXPECT_EQ(reg.counter("desim.events").value(),
              sim.eventsProcessed());
    EXPECT_GT(reg.counter("desim.element_fires").value(), 0u);
    EXPECT_GE(reg.counter("desim.runs").value(), 1u);
    EXPECT_GE(reg.gauge("desim.queue_depth_hwm").value(), 1.0);
    EXPECT_EQ(reg.gauge("desim.elements_seen").value(),
              static_cast<double>(net.elementCount()));
    // 4 cycles = 8 edges through every element.
    EXPECT_DOUBLE_EQ(reg.gauge("desim.max_fires_per_element").value(),
                     8.0);
    EXPECT_DOUBLE_EQ(reg.gauge("desim.sim_time_ns").value(), sim.now());
}

TEST(Probes, DetachedProbeChangesNothing)
{
    desim::Simulator plain, probed;
    obs::NullSimProbe null_probe;
    probed.setProbe(&null_probe);
    for (desim::Simulator *sim : {&plain, &probed}) {
        sim->schedule(1.0, [sim]() { sim->schedule(1.0, []() {}); });
        sim->run();
    }
    EXPECT_EQ(plain.eventsProcessed(), probed.eventsProcessed());
    EXPECT_EQ(plain.now(), probed.now());
}

TEST(Probes, ExecProbeRecordsWaitsAndRounds)
{
    const layout::Layout l = layout::meshLayout(8, 8);
    const hybrid::HybridNetwork net(hybrid::partitionGrid(l, 4.0),
                                    hybrid::HybridParams{});
    obs::MetricsRegistry reg;
    obs::MetricsExecProbe probe(reg);

    const int rounds = 8;
    const hybrid::HybridRunResult res =
        net.simulate(rounds, nullptr, nullptr, &probe);

    EXPECT_EQ(reg.counter("hybrid.rounds").value(),
              static_cast<std::uint64_t>(rounds));
    // Multi-element arrays always stall on neighbours after round 0.
    EXPECT_GT(reg.counter("hybrid.handshake_waits").value(), 0u);
    EXPECT_GT(reg.gauge("hybrid.stall_ns").value(), 0.0);
    EXPECT_GE(reg.gauge("hybrid.stall_ns").value(),
              reg.gauge("hybrid.max_stall_ns").value());
    EXPECT_DOUBLE_EQ(reg.gauge("hybrid.last_completion_ns").value(),
                     res.completionTime);
}

TEST(Probes, ExecProbeDoesNotPerturbSimulation)
{
    const layout::Layout l = layout::meshLayout(8, 8);
    const hybrid::HybridNetwork net(hybrid::partitionGrid(l, 4.0),
                                    hybrid::HybridParams{});
    obs::MetricsRegistry reg;
    obs::MetricsExecProbe probe(reg);
    const auto bare = net.simulate(16);
    const auto observed = net.simulate(16, nullptr, nullptr, &probe);
    EXPECT_EQ(bare.completionTime, observed.completionTime);
    EXPECT_EQ(bare.steadyCycle, observed.steadyCycle);
    EXPECT_EQ(bare.lastCompletion, observed.lastCompletion);
}

// ------------------------------------------------------------- mc metrics

TEST(McMetrics, RunTrialsRecordsSweepMetrics)
{
    obs::MetricsRegistry reg;
    mc::McConfig cfg;
    cfg.trials = 100;
    cfg.threads = 2;
    cfg.metrics = &reg;
    cfg.metricsName = "unit";
    const mc::McResult r = mc::runTrials(
        cfg, [](std::uint64_t, Rng &rng) { return rng.uniform(); });
    EXPECT_EQ(r.samples.size(), 100u);
    EXPECT_EQ(reg.counter("mc.unit.trials").value(), 100u);
    // Each trial draws exactly once from its substream.
    EXPECT_EQ(reg.counter("mc.unit.rng_draws").value(), 100u);
    EXPECT_GT(reg.gauge("mc.unit.wall_ms").value(), 0.0);
    EXPECT_GT(reg.gauge("mc.unit.trials_per_s").value(), 0.0);
}

TEST(McMetrics, MetricsDoNotPerturbSamples)
{
    obs::MetricsRegistry reg;
    mc::McConfig bare;
    bare.trials = 64;
    mc::McConfig observed = bare;
    observed.metrics = &reg;
    const mc::TrialFn fn = [](std::uint64_t, Rng &rng) {
        return rng.normal();
    };
    EXPECT_TRUE(mc::runTrials(bare, fn)
                    .bitIdentical(mc::runTrials(observed, fn)));
}

TEST(McMetrics, RngDrawCounter)
{
    Rng rng(42);
    EXPECT_EQ(rng.draws(), 0u);
    rng.next();
    EXPECT_EQ(rng.draws(), 1u);
    rng.uniform();
    EXPECT_EQ(rng.draws(), 2u);
    rng.normal(); // Box-Muller: at least two draws
    EXPECT_GE(rng.draws(), 4u);
}

TEST(McMetrics, ResilienceSweepCountsFaultsByKind)
{
    const layout::Layout l = layout::meshLayout(4, 4);
    obs::MetricsRegistry reg;
    mc::McConfig cfg;
    cfg.trials = 16;
    cfg.threads = 2;
    cfg.metrics = &reg;
    const mc::ResiliencePoint point = mc::resilienceAtRate(
        l, 4, 4, mc::DistributionKind::TrixGrid, 0.2,
        mc::ResilienceConfig{}, cfg);

    std::uint64_t by_kind = 0;
    for (int k = 0; k < fault::faultKindCount; ++k)
        by_kind += reg.counter("mc.resilience.faults." +
                               fault::faultKindName(
                                   static_cast<fault::FaultKind>(k)))
                       .value();
    // The counters must agree with the per-trial fault totals.
    EXPECT_DOUBLE_EQ(static_cast<double>(by_kind),
                     point.meanFaults * static_cast<double>(cfg.trials));
    EXPECT_GT(by_kind, 0u);
}

TEST(McMetrics, InjectorCountsArmedFaultsByKind)
{
    obs::MetricsRegistry reg;
    desim::Simulator sim;
    fault::TrixGrid grid(sim, 4, 4, [](int, int, int) { return 1.0; });

    fault::FaultPlan plan = fault::FaultPlan::singleDeadBuffer(0);
    plan.add({fault::FaultKind::DelayDrift, 1, 0.0, 2.0, false});
    fault::FaultInjector injector(sim, plan);
    injector.setMetrics(&reg);
    injector.armTrixGrid(grid);

    EXPECT_EQ(injector.armed(), 2u);
    EXPECT_EQ(reg.counter("fault.armed.dead-buffer").value(), 1u);
    EXPECT_EQ(reg.counter("fault.armed.delay-drift").value(), 1u);
}

} // namespace
