/**
 * @file
 * Tests for the Section VII yield analysis: the sqrt(n) fixed-yield law
 * for unbiased strings and the bias-dominated linear law.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/yield.hh"
#include "common/fit.hh"
#include "common/rng.hh"

namespace
{

using namespace vsync;
using namespace vsync::circuit;

ProcessParams
unbiasedProcess()
{
    ProcessParams p = ProcessParams::nmos1983();
    p.pairBias = 0.0;               // balanced odd/even impedances
    p.pairDiscrepancySigma = 0.5;   // randomness only
    return p;
}

TEST(Yield, CycleTimeMonotoneInYield)
{
    const ProcessParams p = unbiasedProcess();
    double prev = 0.0;
    for (double y : {0.5, 0.9, 0.99, 0.999}) {
        const double t = cycleTimeAtYield(p, 2048, y);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(Yield, FixedYieldCycleGrowsAsSqrtN)
{
    const ProcessParams p = unbiasedProcess();
    std::vector<double> ns, cycles;
    for (int n : {256, 1024, 4096, 16384, 65536}) {
        ns.push_back(n);
        // Subtract the constant pulse-width floor to expose the
        // discrepancy term's growth.
        cycles.push_back(cycleTimeAtYield(p, n, 0.9) -
                         2.0 * p.minPulseWidth);
    }
    EXPECT_EQ(classifyGrowth(ns, cycles), GrowthLaw::SquareRoot);
}

TEST(Yield, BiasDominatedCycleGrowsLinearly)
{
    const ProcessParams p = ProcessParams::nmos1983(); // biased
    std::vector<double> ns, cycles;
    for (int n : {256, 1024, 4096, 16384}) {
        ns.push_back(n);
        cycles.push_back(cycleTimeAtYield(p, n, 0.9) -
                         2.0 * p.minPulseWidth);
    }
    EXPECT_EQ(classifyGrowth(ns, cycles), GrowthLaw::Linear);
}

TEST(Yield, YieldAtCycleTimeInverts)
{
    const ProcessParams p = unbiasedProcess();
    for (double y : {0.6, 0.9, 0.99}) {
        const double t = cycleTimeAtYield(p, 1024, y);
        EXPECT_NEAR(yieldAtCycleTime(p, 1024, t), y, 0.01) << y;
    }
}

TEST(Yield, ZeroBudgetMeansZeroYield)
{
    const ProcessParams p = unbiasedProcess();
    EXPECT_DOUBLE_EQ(yieldAtCycleTime(p, 1024, p.minPulseWidth), 0.0);
}

TEST(Yield, DeterministicProcessIsAllOrNothing)
{
    ProcessParams p = ProcessParams::nmos1983();
    p.pairDiscrepancySigma = 0.0;
    const double need = 2.0 * (p.minPulseWidth +
                               1024.0 / 2.0 * p.pairBias);
    EXPECT_DOUBLE_EQ(yieldAtCycleTime(p, 1024, need * 1.01), 1.0);
    EXPECT_DOUBLE_EQ(yieldAtCycleTime(p, 1024, need * 0.9), 0.0);
}

TEST(Yield, MonteCarloMatchesAnalyticQuantiles)
{
    const ProcessParams p = unbiasedProcess();
    Rng rng(31);
    const int n = 512;
    const SampleSet cycles = sampleChipCycleTimes(p, n, 600, rng);
    // The analytic 90%-yield cycle should cover ~90% of sampled chips.
    const double t90 = cycleTimeAtYield(p, n, 0.9);
    std::size_t ok = 0;
    for (double c : cycles.values())
        ok += c <= t90 ? 1 : 0;
    const double frac = static_cast<double>(ok) /
                        static_cast<double>(cycles.count());
    // The analytic model uses the end-to-end discrepancy while chips
    // are gated by the worst prefix, so the analytic yield is an
    // optimistic bound; allow a tolerant band around 0.9.
    EXPECT_GT(frac, 0.7);
    EXPECT_LE(frac, 0.95);
}

TEST(Yield, MonteCarloCyclesScaleWithSqrtN)
{
    const ProcessParams p = unbiasedProcess();
    Rng rng(37);
    const SampleSet small = sampleChipCycleTimes(p, 256, 300, rng);
    const SampleSet large = sampleChipCycleTimes(p, 4096, 300, rng);
    const double g_small = small.stat().mean() - 2.0 * p.minPulseWidth;
    const double g_large = large.stat().mean() - 2.0 * p.minPulseWidth;
    // 16x the stages -> ~4x the discrepancy term.
    EXPECT_NEAR(g_large / g_small, 4.0, 1.0);
}

} // namespace
