/**
 * @file
 * Tests for the clock-tree optimizer: greedy matching and the regraft
 * local search, including the key negative result that optimisation
 * cannot defeat the Theorem 6 lower bound on meshes.
 */

#include <gtest/gtest.h>

#include "clocktree/builders.hh"
#include "clocktree/optimize.hh"
#include "common/rng.hh"
#include "core/lower_bound.hh"
#include "layout/generators.hh"

namespace
{

using namespace vsync;
using namespace vsync::clocktree;

TEST(GreedyMatching, ValidAndComplete)
{
    for (int n : {1, 2, 5, 16}) {
        const layout::Layout l = layout::linearLayout(n);
        const ClockTree t = buildGreedyMatching(l);
        EXPECT_TRUE(t.validate(false)) << n;
        EXPECT_EQ(t.boundCellCount(), static_cast<std::size_t>(n));
    }
}

TEST(GreedyMatching, MergesNearestFirstOnALine)
{
    // Cells at 0, 1, 10: the 0-1 pair must share a deeper ancestor
    // than either does with the far cell.
    graph::Graph g(3);
    g.addBidirectional(0, 1);
    g.addBidirectional(1, 2);
    layout::Layout l("spread", g);
    l.place(0, {0.0, 0.0});
    l.place(1, {1.0, 0.0});
    l.place(2, {10.0, 0.0});
    l.routeRemaining();

    const ClockTree t = buildGreedyMatching(l);
    const NodeId a = t.nodeOfCell(0), b = t.nodeOfCell(1),
                 c = t.nodeOfCell(2);
    EXPECT_LT(t.treeDistance(a, b), t.treeDistance(a, c));
    EXPECT_LT(t.treeDistance(a, b), t.treeDistance(b, c));
}

TEST(GreedyMatching, MeshObjectiveComparableToHTree)
{
    const int n = 8;
    const layout::Layout l = layout::meshLayout(n, n);
    const ClockTree greedy = buildGreedyMatching(l);
    const ClockTree htree = buildHTreeGrid(l, n, n);
    const double og = maxCommTreeDistance(l, greedy);
    const double oh = maxCommTreeDistance(l, htree);
    // Greedy clustering lands in the same ballpark as the H-tree.
    EXPECT_LT(og, 3.0 * oh);
}

TEST(MaxCommTreeDistance, MatchesSkewAnalysisMaxS)
{
    const layout::Layout l = layout::meshLayout(5, 5);
    const ClockTree t = buildRecursiveBisection(l);
    double expected = 0.0;
    for (const graph::Edge &e : l.comm().undirectedEdges()) {
        expected = std::max(
            expected, t.treeDistance(t.nodeOfCell(e.src),
                                     t.nodeOfCell(e.dst)));
    }
    EXPECT_DOUBLE_EQ(maxCommTreeDistance(l, t), expected);
}

TEST(OptimizeTree, NeverWorseThanStart)
{
    Rng rng(61);
    const layout::Layout l = layout::meshLayout(6, 6);
    const auto result = optimizeTree(l, rng, 150);
    EXPECT_LE(result.finalObjective, result.initialObjective);
    EXPECT_TRUE(result.tree.validate(false));
    EXPECT_EQ(result.tree.boundCellCount(), 36u);
    EXPECT_DOUBLE_EQ(maxCommTreeDistance(l, result.tree),
                     result.finalObjective);
}

TEST(OptimizeTree, ImprovesBadStartsOnLinearArrays)
{
    // On a line the spine is optimal (max s = 1); the optimizer should
    // at least approach it from the greedy start.
    Rng rng(67);
    const layout::Layout l = layout::linearLayout(16);
    const auto result = optimizeTree(l, rng, 300);
    EXPECT_LE(result.finalObjective, result.initialObjective);
    EXPECT_LE(result.finalObjective, 16.0);
}

/** The headline negative result: no amount of optimisation beats the
 *  Theorem 6 bound on meshes. */
class OptimizerVsLowerBound : public ::testing::TestWithParam<int>
{
};

TEST_P(OptimizerVsLowerBound, CannotBeatTheorem6)
{
    const int n = GetParam();
    const double beta = 0.05;
    Rng rng(71);
    const layout::Layout l = layout::meshLayout(n, n);
    const auto result = optimizeTree(l, rng, 200);
    const double achieved = beta * result.finalObjective;
    const double bound =
        core::theorem6Bound(l.size(), core::meshCutWidth(n), beta);
    EXPECT_GE(achieved, bound) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, OptimizerVsLowerBound,
                         ::testing::Values(4, 6, 8, 10));

} // namespace
