/**
 * @file
 * Death tests covering the library's precondition checks: the
 * "impossible" states panic()/assert rather than silently corrupting
 * an analysis.
 */

#include <gtest/gtest.h>

#include "clocktree/buffering.hh"
#include "clocktree/builders.hh"
#include "clocktree/clock_tree.hh"
#include "common/rng.hh"
#include "core/skew_analysis.hh"
#include "core/skew_model.hh"
#include "graph/graph.hh"
#include "graph/topology.hh"
#include "layout/generators.hh"
#include "systolic/fir.hh"
#include "systolic/trisolve.hh"
#include "systolic/executor.hh"
#include "test_util.hh"

namespace
{

using namespace vsync;

class ErrorPaths : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        testutil::useThreadsafeDeathTests();
    }
};

TEST_F(ErrorPaths, GraphRejectsSelfLoopsAndBadIds)
{
    graph::Graph g(3);
    EXPECT_DEATH(g.addEdge(1, 1), "self loop");
    EXPECT_DEATH(g.addEdge(0, 7), "bad edge target");
    EXPECT_DEATH(g.addEdge(-1, 0), "bad edge source");
}

TEST_F(ErrorPaths, TopologyGeneratorsRejectBadSizes)
{
    EXPECT_DEATH(graph::linearArray(0), "n >= 1");
    EXPECT_DEATH(graph::ring(2), "n >= 3");
    EXPECT_DEATH(graph::hypercube(0), "order");
}

TEST_F(ErrorPaths, ClockTreeEnforcesConstructionInvariants)
{
    clocktree::ClockTree t;
    EXPECT_DEATH(t.root(), "empty");
    const NodeId root = t.addRoot({0, 0});
    EXPECT_DEATH(t.addRoot({1, 1}), "already has a root");
    const NodeId a = t.addChild(root, {1, 0});
    t.bindCell(a, 0);
    EXPECT_DEATH(t.bindCell(a, 1), "already clocks");
    const NodeId b = t.addChild(root, {2, 0});
    EXPECT_DEATH(t.bindCell(b, 0), "already clocked by");
    EXPECT_DEATH(t.padWire(root, 1.0), "cannot pad");
    EXPECT_DEATH(t.padWire(a, -2.0), "negative padding");
}

TEST_F(ErrorPaths, BinaryTreeRefusesThirdChild)
{
    clocktree::ClockTree t;
    const NodeId root = t.addRoot({0, 0});
    t.addChild(root, {1, 0});
    t.addChild(root, {0, 1});
    EXPECT_DEATH(t.addChild(root, {-1, 0}), "two children");
}

TEST_F(ErrorPaths, SkewAnalysisRequiresCompleteBinding)
{
    const layout::Layout l = layout::linearLayout(3);
    clocktree::ClockTree t;
    const NodeId root = t.addRoot({-1, 0});
    t.bindCell(t.addChild(root, {0, 0}), 0);
    t.bindCell(t.addChild(root, {1, 0}), 1);
    // Cell 2 never bound (A4 violated).
    const auto model = core::SkewModel::summation(0.1, 0.01);
    EXPECT_DEATH(core::analyzeSkew(l, t, model), "not clocked");
}

TEST_F(ErrorPaths, BufferingRejectsNonPositiveSpacing)
{
    const layout::Layout l = layout::linearLayout(4);
    const auto t = clocktree::buildSpine(l);
    EXPECT_DEATH(
        clocktree::BufferedClockTree::insertBuffers(t, 0.0),
        "positive");
}

TEST_F(ErrorPaths, ArrayPortWiringValidated)
{
    systolic::SystolicArray a = systolic::buildFir({1.0, 2.0});
    EXPECT_DEATH(a.connect(0, 5, 1, 0), "no output port");
    EXPECT_DEATH(a.connect(0, 0, 1, 9), "no input port");
    // Port 0 of cell 0 already drives cell 1.
    EXPECT_DEATH(a.connect(0, 0, 1, 0), "already connected");
}

TEST_F(ErrorPaths, TriSolveRejectsZeroDiagonal)
{
    systolic::SystolicArray a = systolic::buildTriSolve(2);
    const auto ext =
        systolic::triSolveInputs({{0.0, 0.0}, {1.0, 1.0}}, {1.0, 1.0});
    EXPECT_DEATH(systolic::runIdeal(a, 3, ext), "zero diagonal");
    EXPECT_DEATH(
        systolic::triSolveReference({{0.0, 0.0}, {1.0, 1.0}},
                                    {1.0, 1.0}),
        "zero diagonal");
}

TEST_F(ErrorPaths, RngRejectsDegenerateParameters)
{
    Rng rng(1);
    EXPECT_DEATH(rng.uniformInt(0), "n > 0");
    EXPECT_DEATH(rng.exponential(-1.0), "mean > 0");
    EXPECT_DEATH(rng.uniform(2.0, 1.0), "bad uniform range");
}

} // namespace
