/**
 * @file
 * The lane-blocked skew-sampling path.
 *
 * The blocked entry points' whole contract is "scalar results, fewer
 * passes": at every width the lanes must replay the scalar draw
 * sequence draw-for-draw (same Rng::draws() accounting) and produce
 * bitwise-identical results. These tests pin that contract across
 * widths {1, 2, 3, 4, 7, 8, 16} -- odd, even, power-of-two (the
 * stride-padding case) and wider than the autotune range -- on the
 * htree, spine and TRIX-grid scenarios, through remainder blocks
 * (trials % W != 0) and through the blocked SweepService at 1/2/8
 * threads.
 */

#include <vector>

#include <gtest/gtest.h>

#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/skew_kernel.hh"
#include "layout/generators.hh"
#include "mc/resilience.hh"
#include "mc/sweeps.hh"
#include "serve/sweep_service.hh"

namespace
{

using namespace vsync;
using core::SkewKernel;
using core::WireDelay;

constexpr WireDelay kDelay{0.05, 0.005};
constexpr std::size_t kWidths[] = {1, 2, 3, 4, 7, 8, 16};
constexpr unsigned kThreadCounts[] = {1, 2, 8};

TEST(LaneStride, PadsEvenWidthsToOdd)
{
    EXPECT_EQ(SkewKernel::laneStride(1), 1u);
    EXPECT_EQ(SkewKernel::laneStride(2), 3u);
    EXPECT_EQ(SkewKernel::laneStride(3), 3u);
    EXPECT_EQ(SkewKernel::laneStride(4), 5u);
    EXPECT_EQ(SkewKernel::laneStride(7), 7u);
    EXPECT_EQ(SkewKernel::laneStride(8), 9u);
    EXPECT_EQ(SkewKernel::laneStride(16), 17u);
}

/** Tree scenarios the blocked propagation must replay exactly. */
std::vector<std::pair<layout::Layout, clocktree::ClockTree>>
treeScenarios()
{
    std::vector<std::pair<layout::Layout, clocktree::ClockTree>> out;
    layout::Layout mesh = layout::meshLayout(8, 8);
    clocktree::ClockTree htree = clocktree::buildHTreeGrid(mesh, 8, 8);
    out.emplace_back(std::move(mesh), std::move(htree));
    layout::Layout line = layout::meshLayout(6, 6);
    clocktree::ClockTree spine = clocktree::buildSpine(line);
    out.emplace_back(std::move(line), std::move(spine));
    return out;
}

TEST(SkewBlock, ArrivalsBitIdenticalToScalarAtEveryWidth)
{
    for (const auto &[l, tree] : treeScenarios()) {
        const SkewKernel kernel(l, tree);
        const std::size_t n = kernel.nodeCount();
        for (const std::size_t w : kWidths) {
            const std::size_t stride = SkewKernel::laneStride(w);
            std::vector<Rng> lanes;
            for (std::size_t j = 0; j < w; ++j)
                lanes.push_back(Rng::forTrial(0xb10c, j));
            std::vector<Time> block(n * stride, -1.0);
            kernel.arrivalsBlock(kDelay, {lanes.data(), w},
                                 std::span<Time>(block));

            for (std::size_t j = 0; j < w; ++j) {
                Rng scalar_rng = Rng::forTrial(0xb10c, j);
                std::vector<Time> scalar(n);
                kernel.arrivals(kDelay, scalar_rng,
                                std::span<Time>(scalar));
                for (std::size_t v = 0; v < n; ++v)
                    ASSERT_EQ(block[v * stride + j], scalar[v])
                        << "width " << w << " lane " << j << " node "
                        << v;
                // Exact draw accounting: lane j consumed precisely the
                // scalar sequence, no more, no fewer.
                EXPECT_EQ(lanes[j].draws(), scalar_rng.draws())
                    << "width " << w << " lane " << j;
            }
        }
    }
}

TEST(SkewBlock, SampleMaxCommSkewBlockMatchesScalarAtEveryWidth)
{
    for (const auto &[l, tree] : treeScenarios()) {
        const SkewKernel kernel(l, tree);
        std::vector<Time> scratch, scalar_scratch;
        for (const std::size_t w : kWidths) {
            std::vector<Rng> lanes;
            for (std::size_t j = 0; j < w; ++j)
                lanes.push_back(Rng::forTrial(0x5eed, 100 + j));
            std::vector<Time> skew(w, -1.0);
            kernel.sampleMaxCommSkewBlock(kDelay, {lanes.data(), w},
                                          std::span<Time>(skew),
                                          scratch);
            for (std::size_t j = 0; j < w; ++j) {
                Rng scalar_rng = Rng::forTrial(0x5eed, 100 + j);
                const Time ref = kernel.sampleMaxCommSkew(
                    kDelay, scalar_rng, scalar_scratch);
                EXPECT_EQ(skew[j], ref)
                    << "width " << w << " lane " << j;
                EXPECT_EQ(lanes[j].draws(), scalar_rng.draws())
                    << "width " << w << " lane " << j;
            }
        }
    }
}

TEST(SkewBlock, ArrivalSkewBlockMatchesScalarOnTrixSurfaces)
{
    // Pairs-only kernel, as the TRIX-grid drivers compile it; random
    // surfaces with unclocked (infinite) cells exercise the pair
    // exclusion and clocked-fraction counting per lane.
    const layout::Layout l = layout::meshLayout(7, 7);
    const SkewKernel kernel(l);
    const std::size_t cells = kernel.cellCount();
    for (const std::size_t w : kWidths) {
        const std::size_t stride = SkewKernel::laneStride(w);
        std::vector<std::vector<Time>> scalar(w,
                                              std::vector<Time>(cells));
        std::vector<Time> block(cells * stride, 0.0);
        Rng rng(0xfab + w);
        for (std::size_t j = 0; j < w; ++j) {
            for (std::size_t c = 0; c < cells; ++c) {
                const Time t = rng.bernoulli(0.2)
                                   ? infinity
                                   : rng.uniform(0.0, 5.0);
                scalar[j][c] = t;
                block[c * stride + j] = t;
            }
        }
        std::vector<core::ArrivalSkew> got(w);
        kernel.arrivalSkewBlock(std::span<const Time>(block),
                                std::span<core::ArrivalSkew>(got));
        for (std::size_t j = 0; j < w; ++j) {
            const core::ArrivalSkew ref =
                kernel.arrivalSkew(scalar[j]);
            EXPECT_EQ(got[j].maxCommSkew, ref.maxCommSkew) << j;
            EXPECT_EQ(got[j].clockedFraction, ref.clockedFraction) << j;
            EXPECT_EQ(got[j].clockedPairs, ref.clockedPairs) << j;
            EXPECT_EQ(got[j].pairCount, ref.pairCount) << j;
        }
    }
}

TEST(SkewBlock, BlockWidthIsStableAndInAutotuneRange)
{
    const layout::Layout l = layout::meshLayout(8, 8);
    const auto tree = clocktree::buildHTreeGrid(l, 8, 8);
    const SkewKernel kernel(l, tree);
    const std::size_t w = kernel.blockWidth();
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, 8u);
    // One-shot: later calls reuse the cached choice.
    EXPECT_EQ(kernel.blockWidth(), w);

    const SkewKernel pairsOnly(l);
    const std::size_t wp = pairsOnly.blockWidth();
    EXPECT_GE(wp, 1u);
    EXPECT_LE(wp, 8u);
}

TEST(SkewBlock, SkewSweepHandlesRemainderTrials)
{
    // trials not divisible by any candidate width, and a grain that
    // splits chunks mid-block: every chunk end runs a narrower
    // remainder block, which must not change a single bit vs the
    // scalar per-trial sampler.
    const layout::Layout l = layout::meshLayout(6, 6);
    const auto tree = clocktree::buildHTreeGrid(l, 6, 6);
    const SkewKernel kernel(l, tree);

    mc::McConfig cfg;
    cfg.seed = 0xabcd;
    cfg.trials = 29;
    cfg.grain = 5;
    const mc::McResult sweep = mc::skewSweep(l, tree, kDelay, cfg);

    std::vector<Time> scratch;
    for (std::size_t i = 0; i < cfg.trials; ++i) {
        Rng rng = Rng::forTrial(cfg.seed, i);
        EXPECT_EQ(sweep.samples[i],
                  kernel.sampleMaxCommSkew(kDelay, rng, scratch))
            << "trial " << i;
    }
}

TEST(SkewBlock, ResilienceRunTrialBlockMatchesRunTrial)
{
    const layout::Layout l = layout::meshLayout(5, 5);
    const mc::ResilienceConfig rc;
    for (const auto kind : {mc::DistributionKind::HTree,
                            mc::DistributionKind::TrixGrid}) {
        const mc::ResilienceScenario scenario =
            mc::compileResilienceScenario(l, 5, 5, kind, 0.05, rc,
                                          core::directCompile());
        std::vector<Time> laneScratch;
        for (const std::size_t w : {std::size_t{1}, std::size_t{3},
                                    std::size_t{4}, std::size_t{8}}) {
            std::vector<double> skew(w), clocked(w), faults(w);
            scenario.runTrialBlock(0x77, 10, w,
                                   std::span<double>(skew),
                                   std::span<double>(clocked),
                                   std::span<double>(faults), nullptr,
                                   laneScratch);
            for (std::size_t j = 0; j < w; ++j) {
                const fault::DistributionOutcome ref =
                    scenario.runTrial(0x77, 10 + j);
                EXPECT_EQ(skew[j], ref.maxCommSkew)
                    << mc::distributionKindName(kind) << " lane " << j;
                EXPECT_EQ(clocked[j], ref.clockedFraction)
                    << mc::distributionKindName(kind) << " lane " << j;
                EXPECT_EQ(faults[j],
                          static_cast<double>(ref.faultCount))
                    << mc::distributionKindName(kind) << " lane " << j;
            }
        }
    }
}

TEST(SkewBlock, SweepServiceBitIdenticalAcrossThreadCounts)
{
    // The blocked work-unit loops must preserve the service's
    // determinism contract: outcomes equal the mc:: references at
    // 1/2/8 threads, including remainder blocks at unit boundaries.
    const layout::Layout l = layout::meshLayout(6, 6);
    const auto tree = clocktree::buildHTreeGrid(l, 6, 6);

    mc::McConfig cfg;
    cfg.seed = 0x5107;
    cfg.trials = 37; // prime: remainder blocks at every grain
    cfg.grain = 5;
    const mc::ResilienceConfig rc;
    const mc::McResult refSkew = mc::skewSweep(l, tree, kDelay, cfg);
    const mc::ResiliencePoint refRes = mc::resilienceAtRate(
        l, 6, 6, mc::DistributionKind::HTree, 0.05, rc, cfg);

    for (const unsigned tc : kThreadCounts) {
        serve::ServiceConfig sc;
        sc.threads = tc;
        serve::SweepService svc(sc);
        serve::ResilienceRequest rq;
        rq.layout = &l;
        rq.rows = 6;
        rq.cols = 6;
        rq.kind = mc::DistributionKind::HTree;
        rq.faultRate = 0.05;
        rq.rc = rc;
        rq.cfg = cfg;
        const std::vector<serve::SweepRequest> batch = {
            serve::SkewRequest{&l, &tree, kDelay, cfg},
            rq,
        };
        const serve::BatchOutcome out = svc.run(batch);
        ASSERT_EQ(out.outcomes.size(), 2u);
        EXPECT_TRUE(out.outcomes[0].skew.bitIdentical(refSkew)) << tc;
        EXPECT_TRUE(out.outcomes[1].resilience.maxCommSkew.bitIdentical(
            refRes.maxCommSkew))
            << tc;
        EXPECT_TRUE(
            out.outcomes[1].resilience.clockedFraction.bitIdentical(
                refRes.clockedFraction))
            << tc;
    }
}

} // namespace
