/**
 * @file
 * Tests for skew analysis over (layout, clock tree) pairs, including
 * the Theorem 2 and Theorem 3 shapes and the Monte-Carlo sandwich.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/skew_analysis.hh"
#include "layout/generators.hh"

namespace
{

using namespace vsync;
using namespace vsync::core;
using clocktree::buildHTreeGrid;
using clocktree::buildSpine;
using clocktree::ClockTree;

TEST(AnalyzeSkew, SpineNeighborsConstant)
{
    const SkewModel model = SkewModel::summation(0.5, 0.05);
    for (int n : {4, 32, 256}) {
        const layout::Layout l = layout::linearLayout(n);
        const ClockTree t = buildSpine(l);
        const SkewReport r = analyzeSkew(l, t, model);
        EXPECT_EQ(r.edges.size(), static_cast<std::size_t>(n - 1));
        // Theorem 3: every communicating pair one pitch apart on CLK.
        EXPECT_DOUBLE_EQ(r.maxS, 1.0);
        EXPECT_DOUBLE_EQ(r.maxSkewUpper, 0.55);
        EXPECT_DOUBLE_EQ(r.maxSkewLower, 0.05);
    }
}

TEST(AnalyzeSkew, HTreeUnderDifferenceModelIsZero)
{
    const SkewModel model = SkewModel::difference(0.5);
    for (int n : {4, 8, 16}) {
        const layout::Layout l = layout::meshLayout(n, n);
        const ClockTree t = buildHTreeGrid(l, n, n);
        const SkewReport r = analyzeSkew(l, t, model);
        // Theorem 2 / Lemma 1: equidistant taps, d = 0 everywhere.
        EXPECT_NEAR(r.maxD, 0.0, 1e-9);
        EXPECT_NEAR(r.maxSkewUpper, 0.0, 1e-9);
    }
}

TEST(AnalyzeSkew, HTreeUnderSummationModelGrows)
{
    const SkewModel model = SkewModel::summation(0.5, 0.05);
    double prev = 0.0;
    for (int n : {4, 8, 16, 32}) {
        const layout::Layout l = layout::meshLayout(n, n);
        const ClockTree t = buildHTreeGrid(l, n, n);
        const SkewReport r = analyzeSkew(l, t, model);
        // Neighbouring cells in different H-tree halves are far apart
        // on CLK, and that distance grows with n.
        EXPECT_GT(r.maxSkewUpper, prev);
        prev = r.maxSkewUpper;
    }
}

TEST(AnalyzeSkew, WorstPairIsReported)
{
    const SkewModel model = SkewModel::summation(0.5, 0.05);
    const layout::Layout l = layout::meshLayout(4, 4);
    const ClockTree t = buildHTreeGrid(l, 4, 4);
    const SkewReport r = analyzeSkew(l, t, model);
    ASSERT_LT(r.worstIndex, r.edges.size());
    EXPECT_DOUBLE_EQ(r.edges[r.worstIndex].upper, r.maxSkewUpper);
    // d never exceeds s for any pair.
    for (const EdgeSkew &e : r.edges)
        EXPECT_LE(e.d, e.s + 1e-9);
}

TEST(SampleSkewInstance, ArrivalsAccumulateDownTheTree)
{
    Rng rng(4);
    const layout::Layout l = layout::linearLayout(10);
    const ClockTree t = buildSpine(l);
    const SkewInstance inst = sampleSkewInstance(l, t, WireDelay{1.0, 0.0}, rng);
    // With eps = 0 arrival equals the root path length exactly.
    for (CellId c = 0; c < 10; ++c) {
        const NodeId v = t.nodeOfCell(c);
        EXPECT_NEAR(inst.arrival[v], t.rootPathLength(v), 1e-9);
    }
    EXPECT_NEAR(inst.maxCommSkew, 1.0, 1e-9);
}

/** Property sweep: realised skews never exceed the model's upper
 *  bound, for many seeds and both builders. */
class SkewSandwich : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SkewSandwich, InstanceWithinBounds)
{
    const double m = 0.5, eps = 0.1;
    const SkewModel model = SkewModel::summation(m, eps);
    Rng rng(GetParam());

    const layout::Layout mesh = layout::meshLayout(6, 6);
    const layout::Layout line = layout::linearLayout(24);
    struct Case
    {
        const layout::Layout *l;
        ClockTree t;
    };
    std::vector<Case> cases;
    cases.push_back({&mesh, buildHTreeGrid(mesh, 6, 6)});
    cases.push_back({&line, buildSpine(line)});

    for (const Case &c : cases) {
        const SkewReport report = analyzeSkew(*c.l, c.t, model);
        for (int trial = 0; trial < 10; ++trial) {
            const SkewInstance inst =
                sampleSkewInstance(*c.l, c.t, WireDelay{m, eps}, rng);
            ASSERT_EQ(inst.edgeSkew.size(), report.edges.size());
            for (std::size_t i = 0; i < report.edges.size(); ++i) {
                EXPECT_LE(inst.edgeSkew[i],
                          report.edges[i].upper + 1e-9);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkewSandwich,
                         ::testing::Values(10u, 20u, 30u, 40u, 50u));

TEST(SampleSkewInstance, WorstCaseApproachesLowerBoundOnChains)
{
    // For a chain, neighbour skew is w * pitch with w in [m-eps, m+eps];
    // over many draws the max approaches (m+eps) and the min (m-eps),
    // bracketing the A10/A11 sandwich empirically.
    const double m = 1.0, eps = 0.25;
    Rng rng(99);
    const layout::Layout l = layout::linearLayout(2);
    const clocktree::ClockTree t = buildSpine(l);
    double lo = vsync::infinity, hi = 0.0;
    for (int trial = 0; trial < 2000; ++trial) {
        const SkewInstance inst = sampleSkewInstance(l, t, WireDelay{m, eps}, rng);
        lo = std::min(lo, inst.maxCommSkew);
        hi = std::max(hi, inst.maxCommSkew);
    }
    EXPECT_NEAR(hi, m + eps, 0.01);
    EXPECT_NEAR(lo, m - eps, 0.01);
}

} // namespace
