/**
 * @file
 * Tests for the discrete-event kernel, signals, delay elements,
 * registers and the periodic clock source.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "desim/clock_source.hh"
#include "desim/elements.hh"
#include "desim/register.hh"
#include "desim/signal.hh"
#include "desim/simulator.hh"

namespace
{

using namespace vsync;
using namespace vsync::desim;

TEST(Simulator, ProcessesInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(3.0, [&order]() { order.push_back(3); });
    sim.schedule(1.0, [&order]() { order.push_back(1); });
    sim.schedule(2.0, [&order]() { order.push_back(2); });
    EXPECT_EQ(sim.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SimultaneousEventsKeepInsertionOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.schedule(1.0, [&order, i]() { order.push_back(i); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleMoreEvents)
{
    Simulator sim;
    int count = 0;
    std::function<void()> tick = [&]() {
        if (++count < 10)
            sim.schedule(1.0, tick);
    };
    sim.schedule(0.0, tick);
    sim.run();
    EXPECT_EQ(count, 10);
    EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Simulator, RunUntilLeavesFutureEvents)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1.0, [&fired]() { ++fired; });
    sim.schedule(5.0, [&fired]() { ++fired; });
    sim.run(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(sim.idle());
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Signal, NotifiesOnChangeOnly)
{
    Signal s("s");
    int changes = 0;
    s.onChange([&changes](Time, bool) { ++changes; });
    s.set(1.0, true);
    s.set(2.0, true); // no change
    s.set(3.0, false);
    EXPECT_EQ(changes, 2);
    EXPECT_EQ(s.transitions(), 2u);
    EXPECT_DOUBLE_EQ(s.lastChange(), 3.0);
}

TEST(DelayElement, BufferPropagatesWithEdgeDelays)
{
    Simulator sim;
    Signal in("in"), out("out");
    DelayElement buf(sim, in, out, {2.0, 5.0}, false);
    std::vector<std::pair<Time, bool>> events;
    out.onChange([&events](Time t, bool v) { events.emplace_back(t, v); });

    sim.schedule(0.0, [&in, &sim]() { in.set(sim.now(), true); });
    sim.schedule(10.0, [&in, &sim]() { in.set(sim.now(), false); });
    sim.run();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_DOUBLE_EQ(events[0].first, 2.0);  // rise after 2
    EXPECT_TRUE(events[0].second);
    EXPECT_DOUBLE_EQ(events[1].first, 15.0); // fall after 5
    EXPECT_FALSE(events[1].second);
}

TEST(DelayElement, InverterFlipsPolarity)
{
    Simulator sim;
    Signal in("in"), out("out");
    DelayElement inv(sim, in, out, {1.0, 1.0}, true);
    sim.schedule(0.0, [&in, &sim]() { in.set(sim.now(), true); });
    sim.run();
    EXPECT_FALSE(out.value()); // input rose -> output falls (from 0, no
                               // transition recorded but stays low)
    EXPECT_EQ(out.transitions(), 0u);

    // Drive input low: output should rise.
    sim.schedule(0.0, [&in, &sim]() { in.set(sim.now(), false); });
    sim.run();
    EXPECT_TRUE(out.value());
}

TEST(DelayElement, MultipleEventsInFlight)
{
    // Transport delay: edges queued faster than the delay all arrive.
    Simulator sim;
    Signal in("in"), out("out");
    DelayElement buf(sim, in, out, {10.0, 10.0}, false);
    int transitions = 0;
    out.onChange([&transitions](Time, bool) { ++transitions; });
    for (int k = 0; k < 6; ++k) {
        sim.schedule(k * 1.0, [&in, &sim, k]() {
            in.set(sim.now(), k % 2 == 0);
        });
    }
    sim.run();
    EXPECT_EQ(transitions, 6);
}

TEST(DelayElement, JitterBreaksInvariance)
{
    Simulator sim;
    Signal in("in"), out("out");
    DelayElement buf(sim, in, out, {1.0, 1.0}, false);
    double next_jitter = 0.0;
    buf.setJitter([&next_jitter]() { return next_jitter; });
    std::vector<Time> arrivals;
    out.onChange([&arrivals](Time t, bool) { arrivals.push_back(t); });

    next_jitter = 0.5;
    sim.schedule(0.0, [&in, &sim]() { in.set(sim.now(), true); });
    sim.run();
    next_jitter = 0.0;
    sim.schedule(0.0, [&in, &sim]() { in.set(sim.now(), false); });
    sim.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_DOUBLE_EQ(arrivals[0], 1.5);
}

TEST(DelayElement, InertialModeSwallowsNarrowPulses)
{
    Simulator sim;
    Signal in("in"), out("out");
    DelayElement buf(sim, in, out, {1.0, 1.0}, false);
    buf.setMinPulse(2.0);
    int transitions = 0;
    out.onChange([&transitions](Time, bool) { ++transitions; });

    // A 0.5-wide pulse: narrower than the 2.0 inertia -> swallowed.
    sim.schedule(0.0, [&in, &sim]() { in.set(sim.now(), true); });
    sim.schedule(0.5, [&in, &sim]() { in.set(sim.now(), false); });
    sim.run();
    EXPECT_EQ(transitions, 0);
    EXPECT_EQ(buf.swallowedPulses(), 1u);

    // A 5-wide pulse passes intact.
    sim.schedule(0.0, [&in, &sim]() { in.set(sim.now(), true); });
    sim.schedule(5.0, [&in, &sim]() { in.set(sim.now(), false); });
    sim.run();
    EXPECT_EQ(transitions, 2);
}

TEST(DelayElement, InertialModeKeepsWidePulseTrains)
{
    Simulator sim;
    Signal in("in"), out("out");
    DelayElement buf(sim, in, out, {1.0, 1.0}, false);
    buf.setMinPulse(0.5);
    int transitions = 0;
    out.onChange([&transitions](Time, bool) { ++transitions; });
    for (int k = 0; k < 8; ++k) {
        sim.schedule(k * 2.0, [&in, &sim, k]() {
            in.set(sim.now(), k % 2 == 0);
        });
    }
    sim.run();
    EXPECT_EQ(transitions, 8);
    EXPECT_EQ(buf.swallowedPulses(), 0u);
}

TEST(Register, CapturesOnRisingEdge)
{
    Simulator sim;
    Signal d("d"), clk("clk"), q("q");
    Register reg(sim, d, clk, q, 1.0, 0.5, 0.25);

    sim.schedule(0.0, [&d, &sim]() { d.set(sim.now(), true); });
    sim.schedule(5.0, [&clk, &sim]() { clk.set(sim.now(), true); });
    sim.schedule(7.0, [&clk, &sim]() { clk.set(sim.now(), false); });
    sim.run();
    EXPECT_TRUE(q.value());
    EXPECT_EQ(reg.edgesSeen(), 1u);
    EXPECT_TRUE(reg.violations().empty());
}

TEST(Register, DetectsSetupViolation)
{
    Simulator sim;
    Signal d("d"), clk("clk"), q("q");
    Register reg(sim, d, clk, q, 1.0, 0.5, 0.25);

    sim.schedule(4.5, [&d, &sim]() { d.set(sim.now(), true); });
    sim.schedule(5.0, [&clk, &sim]() { clk.set(sim.now(), true); });
    sim.run();
    ASSERT_EQ(reg.violations().size(), 1u);
    EXPECT_TRUE(reg.violations()[0].setup);
    EXPECT_DOUBLE_EQ(reg.violations()[0].separation, 0.5);
}

TEST(Register, DetectsHoldViolation)
{
    Simulator sim;
    Signal d("d"), clk("clk"), q("q");
    Register reg(sim, d, clk, q, 1.0, 0.5, 0.25);

    sim.schedule(1.0, [&d, &sim]() { d.set(sim.now(), true); });
    sim.schedule(5.0, [&clk, &sim]() { clk.set(sim.now(), true); });
    sim.schedule(5.3, [&d, &sim]() { d.set(sim.now(), false); });
    sim.run();
    ASSERT_EQ(reg.violations().size(), 1u);
    EXPECT_FALSE(reg.violations()[0].setup);
    EXPECT_NEAR(reg.violations()[0].separation, 0.3, 1e-12);
}

TEST(Register, CleanTimingHasNoViolations)
{
    Simulator sim;
    Signal d("d"), clk("clk"), q("q");
    Register reg(sim, d, clk, q, 1.0, 0.5, 0.25);
    // Data changes well before each edge and stays stable after.
    for (int k = 0; k < 4; ++k) {
        const Time base = k * 10.0;
        sim.schedule(base + 2.0, [&d, &sim, k]() {
            d.set(sim.now(), k % 2 == 0);
        });
        sim.schedule(base + 6.0,
                     [&clk, &sim]() { clk.set(sim.now(), true); });
        sim.schedule(base + 8.0,
                     [&clk, &sim]() { clk.set(sim.now(), false); });
    }
    sim.run();
    EXPECT_EQ(reg.edgesSeen(), 4u);
    EXPECT_TRUE(reg.violations().empty());
}

TEST(Simulator, RunUntilIsInclusiveOfTheStopTime)
{
    // Boundary semantics pinned by simulator.hh: events exactly at the
    // stop time are processed; strictly later ones stay queued.
    Simulator sim;
    std::vector<int> ran;
    sim.schedule(1.0, [&ran]() { ran.push_back(1); });
    sim.schedule(2.0, [&ran]() { ran.push_back(2); });
    sim.schedule(3.0, [&ran]() { ran.push_back(3); });
    EXPECT_EQ(sim.run(2.0), 2u);
    EXPECT_EQ(ran, (std::vector<int>{1, 2}));
    EXPECT_FALSE(sim.idle());
    EXPECT_EQ(sim.run(), 1u);
    EXPECT_EQ(ran, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, DrainingBeforeAFiniteUntilAdvancesNowToUntil)
{
    Simulator sim;
    sim.schedule(1.0, []() {});
    EXPECT_EQ(sim.run(5.0), 1u);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0); // horizon fully consumed
    // With the default infinite horizon now() rests at the last event.
    Simulator sim2;
    sim2.schedule(1.0, []() {});
    sim2.run();
    EXPECT_DOUBLE_EQ(sim2.now(), 1.0);
}

TEST(Simulator, ScheduleAtNowRunsInTheSameRunAfterQueuedPeers)
{
    // A zero-delay event queues behind already-queued events at the
    // same time (insertion order) and still runs within this run().
    Simulator sim;
    std::vector<int> order;
    sim.schedule(1.0, [&sim, &order]() {
        order.push_back(1);
        sim.scheduleAt(sim.now(), [&order]() { order.push_back(3); });
    });
    sim.schedule(1.0, [&order]() { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(PeriodicClock, EmitsRequestedEdges)
{
    Simulator sim;
    Signal clk("clk");
    std::vector<std::pair<Time, bool>> events;
    clk.onChange([&events](Time t, bool v) { events.emplace_back(t, v); });
    PeriodicClock src(sim, clk, 10.0, 3, 4.0, 100.0);
    sim.run();
    ASSERT_EQ(events.size(), 6u);
    EXPECT_DOUBLE_EQ(events[0].first, 100.0);
    EXPECT_DOUBLE_EQ(events[1].first, 104.0);
    EXPECT_DOUBLE_EQ(events[2].first, 110.0);
    EXPECT_EQ(src.risingEdgeTimes().size(), 3u);
}

} // namespace
