/**
 * @file
 * Tests for the systolic array substrate and the four algorithms,
 * verified against direct reference computations under the ideal
 * lock-step executor.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hh"
#include "systolic/executor.hh"
#include "systolic/fir.hh"
#include "systolic/matmul.hh"
#include "systolic/matvec.hh"
#include "systolic/sort.hh"

namespace
{

using namespace vsync;
using namespace vsync::systolic;

TEST(Array, StructureQueries)
{
    SystolicArray a = buildFir({1.0, 2.0, 3.0});
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.connections().size(), 4u);
    EXPECT_TRUE(a.inputConnected(1, 0));
    EXPECT_FALSE(a.inputConnected(0, 0));
    EXPECT_TRUE(a.outputConnected(0, 0));
    EXPECT_FALSE(a.outputConnected(2, 1));
    const auto ext = a.externalOutputs();
    ASSERT_EQ(ext.size(), 2u);
    EXPECT_EQ(ext[1], (std::pair<CellId, int>{2, 1}));
    EXPECT_TRUE(a.validate(false));
}

TEST(Array, CommGraphMirrorsConnections)
{
    SystolicArray a = buildFir({1.0, 2.0, 3.0});
    const auto g = a.commGraph();
    EXPECT_EQ(g.size(), 3u);
    EXPECT_EQ(g.edgeCount(), 4u);
    EXPECT_TRUE(g.connected(0, 1));
    EXPECT_FALSE(g.connected(0, 2));
}

TEST(Fir, ImpulseResponseIsTheTaps)
{
    const std::vector<Word> w{3.0, -1.0, 2.0};
    SystolicArray a = buildFir(w);
    std::vector<Word> xs{1.0}; // unit impulse
    const int cycles = 10;
    const Trace tr = runIdeal(a, cycles, firInputs(xs));
    const auto &y = tr.of(2, 1);
    const auto expected = firExpectedOutput(w, xs, cycles);
    for (int t = 0; t < cycles; ++t)
        EXPECT_NEAR(y[t], expected[t], 1e-12) << "t=" << t;
    // Spot-check: taps appear starting at cycle k-1 = 2.
    EXPECT_DOUBLE_EQ(y[2], 3.0);
    EXPECT_DOUBLE_EQ(y[3], -1.0);
    EXPECT_DOUBLE_EQ(y[4], 2.0);
}

/** Property: FIR matches direct convolution for random instances. */
class FirProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FirProperty, MatchesConvolution)
{
    Rng rng(GetParam());
    const int taps = 1 + static_cast<int>(rng.uniformInt(8));
    const int len = 4 + static_cast<int>(rng.uniformInt(20));
    std::vector<Word> w, xs;
    for (int i = 0; i < taps; ++i)
        w.push_back(rng.uniform(-2.0, 2.0));
    for (int i = 0; i < len; ++i)
        xs.push_back(rng.uniform(-5.0, 5.0));

    SystolicArray a = buildFir(w);
    const int cycles = len + taps + 4;
    const Trace tr = runIdeal(a, cycles, firInputs(xs));
    const auto &y = tr.of(static_cast<CellId>(taps - 1), 1);
    const auto expected = firExpectedOutput(w, xs, cycles);
    for (int t = 0; t < cycles; ++t)
        EXPECT_NEAR(y[t], expected[t], 1e-9) << "t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FirProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u, 9u, 10u));

TEST(MatVec, SmallKnownSystem)
{
    const std::vector<std::vector<Word>> a{{1, 2}, {3, 4}};
    const std::vector<Word> x{10, 100};
    SystolicArray arr = buildMatVec(x);
    const int cycles = 8;
    const Trace tr = runIdeal(arr, cycles, matVecInputs(a));
    const auto expected = matVecExpectedOutput(a, x, cycles);
    const auto &s = tr.of(1, 0);
    // y_0 = 210 at cycle 1; y_1 = 430 at cycle 2.
    EXPECT_DOUBLE_EQ(s[1], 210.0);
    EXPECT_DOUBLE_EQ(s[2], 430.0);
    for (int t = 0; t < cycles; ++t)
        EXPECT_NEAR(s[t], expected[t], 1e-12);
}

/** Property: matvec matches the reference for random sizes. */
class MatVecProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MatVecProperty, MatchesReference)
{
    Rng rng(GetParam());
    const int n = 2 + static_cast<int>(rng.uniformInt(6));
    const int m = 2 + static_cast<int>(rng.uniformInt(6));
    std::vector<std::vector<Word>> a(m, std::vector<Word>(n));
    std::vector<Word> x(n);
    for (auto &row : a)
        for (Word &v : row)
            v = rng.uniform(-3.0, 3.0);
    for (Word &v : x)
        v = rng.uniform(-3.0, 3.0);

    SystolicArray arr = buildMatVec(x);
    const int cycles = m + n + 2;
    const Trace tr = runIdeal(arr, cycles, matVecInputs(a));
    const auto expected = matVecExpectedOutput(a, x, cycles);
    const auto &s = tr.of(static_cast<CellId>(n - 1), 0);
    for (int t = 0; t < cycles; ++t)
        EXPECT_NEAR(s[t], expected[t], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatVecProperty,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u,
                                           16u));

TEST(MatMul, IdentityTimesMatrix)
{
    const int n = 3;
    std::vector<std::vector<Word>> eye(n, std::vector<Word>(n, 0.0));
    for (int i = 0; i < n; ++i)
        eye[i][i] = 1.0;
    std::vector<std::vector<Word>> b{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};

    SystolicArray arr = buildMatMul(n);
    const Trace tr =
        runIdeal(arr, matMulCycles(n), matMulInputs(eye, b));
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            EXPECT_NEAR(tr.finalStates[i * n + j][0], b[i][j], 1e-12);
}

/** Property: mesh matmul matches the reference product. */
class MatMulProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(MatMulProperty, MatchesReference)
{
    const int n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) * 101);
    std::vector<std::vector<Word>> a(n, std::vector<Word>(n));
    std::vector<std::vector<Word>> b(n, std::vector<Word>(n));
    for (auto *mat : {&a, &b})
        for (auto &row : *mat)
            for (Word &v : row)
                v = rng.uniform(-2.0, 2.0);

    SystolicArray arr = buildMatMul(n);
    const Trace tr = runIdeal(arr, matMulCycles(n), matMulInputs(a, b));
    const auto c = matMulReference(a, b);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            EXPECT_NEAR(tr.finalStates[i * n + j][0], c[i][j], 1e-9)
                << i << "," << j;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatMulProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(Sort, SortsAKnownSequence)
{
    const std::vector<Word> keys{5, 1, 4, 2, 8, 0, 3, 7};
    SystolicArray arr = buildOESort(keys);
    const Trace tr = runIdeal(arr, oeSortCycles(8), nullptr);
    for (int i = 0; i + 1 < 8; ++i)
        EXPECT_LE(tr.finalStates[i][0], tr.finalStates[i + 1][0]);
}

/** Property: sorting random sequences of random lengths. */
class SortProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SortProperty, SortsRandomKeys)
{
    Rng rng(GetParam());
    const int n = 2 + static_cast<int>(rng.uniformInt(30));
    std::vector<Word> keys(static_cast<std::size_t>(n));
    for (Word &k : keys)
        k = std::floor(rng.uniform(-50.0, 50.0));

    SystolicArray arr = buildOESort(keys);
    const Trace tr = runIdeal(arr, oeSortCycles(n), nullptr);

    std::vector<Word> expected = keys;
    std::sort(expected.begin(), expected.end());
    for (int i = 0; i < n; ++i)
        EXPECT_DOUBLE_EQ(tr.finalStates[i][0], expected[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortProperty,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u,
                                           27u, 28u));

TEST(Trace, MatchesDetectsDifferences)
{
    SystolicArray a = buildFir({1.0});
    const Trace t1 = runIdeal(a, 4, firInputs({1, 2, 3}));
    const Trace t2 = runIdeal(a, 4, firInputs({1, 2, 3}));
    const Trace t3 = runIdeal(a, 4, firInputs({1, 2, 4}));
    EXPECT_TRUE(t1.matches(t2));
    EXPECT_FALSE(t1.matches(t3));
}

} // namespace
