/**
 * @file
 * Tests for the table writer and bench option parser.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace
{

using vsync::BenchOptions;
using vsync::Table;

TEST(Table, AlignsColumns)
{
    Table t("demo", {"n", "value"});
    t.addRow({"1", "10"});
    t.addRow({"1024", "3.25"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("| n    | value |"), std::string::npos);
    EXPECT_NE(out.find("| 1024 | 3.25  |"), std::string::npos);
}

TEST(Table, PadsMissingCellsAndDropsExtras)
{
    Table t("x", {"a", "b"});
    t.addRow({"only"});
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nonly,\n1,2\n");
}

TEST(Table, CsvQuotesSpecialCells)
{
    Table t("q", {"a", "b"});
    t.addRow({"x,y", "he said \"hi\""});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(Table, NumericFormatters)
{
    EXPECT_EQ(Table::num(3.14159), "3.142");
    EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
    EXPECT_EQ(Table::integer(1234567), "1234567");
}

TEST(BenchOptions, DefaultsAreEmpty)
{
    char prog[] = "bench";
    char *argv[] = {prog};
    const auto opts = BenchOptions::parse(1, argv);
    EXPECT_FALSE(opts.csv);
    EXPECT_FALSE(opts.seedSet);
}

TEST(BenchOptions, ParsesCsvAndSeed)
{
    char prog[] = "bench";
    char csv[] = "--csv";
    char seed[] = "--seed=0xdead";
    char *argv[] = {prog, csv, seed};
    const auto opts = BenchOptions::parse(3, argv);
    EXPECT_TRUE(opts.csv);
    EXPECT_TRUE(opts.seedSet);
    EXPECT_EQ(opts.seed, 0xdeadu);
}

} // namespace
