/**
 * @file
 * Tests for the systolic triangular solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "systolic/executor.hh"
#include "systolic/trisolve.hh"

namespace
{

using namespace vsync;
using namespace vsync::systolic;

TEST(TriSolve, IdentityReturnsRhs)
{
    const int n = 4;
    std::vector<std::vector<Word>> l(n, std::vector<Word>(n, 0.0));
    for (int i = 0; i < n; ++i)
        l[i][i] = 1.0;
    const std::vector<Word> b{3, -1, 4, 2};

    SystolicArray a = buildTriSolve(n);
    const Trace tr =
        runIdeal(a, triSolveCycles(n), triSolveInputs(l, b));
    for (int j = 0; j < n; ++j)
        EXPECT_NEAR(tr.finalStates[j][0], b[j], 1e-12);
}

TEST(TriSolve, KnownSystem)
{
    // [2 0 0; 1 1 0; 3 2 4] y = [4; 3; 25] -> y = [2; 1; 4.25].
    const std::vector<std::vector<Word>> l{
        {2, 0, 0}, {1, 1, 0}, {3, 2, 4}};
    const std::vector<Word> b{4, 3, 25};
    SystolicArray a = buildTriSolve(3);
    const Trace tr =
        runIdeal(a, triSolveCycles(3), triSolveInputs(l, b));
    EXPECT_NEAR(tr.finalStates[0][0], 2.0, 1e-12);
    EXPECT_NEAR(tr.finalStates[1][0], 1.0, 1e-12);
    EXPECT_NEAR(tr.finalStates[2][0], 4.25, 1e-12);
}

TEST(TriSolve, SingleCell)
{
    SystolicArray a = buildTriSolve(1);
    const Trace tr = runIdeal(a, triSolveCycles(1),
                              triSolveInputs({{5.0}}, {10.0}));
    EXPECT_NEAR(tr.finalStates[0][0], 2.0, 1e-12);
}

TEST(TriSolve, ReferenceMatchesHandComputation)
{
    const std::vector<std::vector<Word>> l{{4, 0}, {2, 5}};
    const auto y = triSolveReference(l, {8, 14});
    EXPECT_DOUBLE_EQ(y[0], 2.0);
    EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(TriSolve, UpperTriangleEntriesAreIgnored)
{
    // Garbage above the diagonal must not affect the result.
    std::vector<std::vector<Word>> l{{2, 99, -7}, {1, 1, 42}, {3, 2, 4}};
    const std::vector<Word> b{4, 3, 25};
    SystolicArray a = buildTriSolve(3);
    const Trace tr =
        runIdeal(a, triSolveCycles(3), triSolveInputs(l, b));
    EXPECT_NEAR(tr.finalStates[0][0], 2.0, 1e-12);
    EXPECT_NEAR(tr.finalStates[1][0], 1.0, 1e-12);
    EXPECT_NEAR(tr.finalStates[2][0], 4.25, 1e-12);
}

/** Property: random well-conditioned systems match the reference. */
class TriSolveProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TriSolveProperty, MatchesReference)
{
    Rng rng(GetParam());
    const int n = 1 + static_cast<int>(rng.uniformInt(12));
    std::vector<std::vector<Word>> l(n, std::vector<Word>(n, 0.0));
    std::vector<Word> b(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < i; ++j)
            l[i][j] = rng.uniform(-1.0, 1.0);
        // Diagonally dominant for numerical sanity.
        l[i][i] = rng.uniform(1.0, 3.0) *
                  (rng.bernoulli(0.5) ? 1.0 : -1.0);
        b[static_cast<std::size_t>(i)] = rng.uniform(-5.0, 5.0);
    }

    SystolicArray a = buildTriSolve(n);
    const Trace tr =
        runIdeal(a, triSolveCycles(n), triSolveInputs(l, b));
    const auto y = triSolveReference(l, b);
    for (int j = 0; j < n; ++j)
        EXPECT_NEAR(tr.finalStates[j][0], y[j], 1e-9) << "j=" << j;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriSolveProperty,
                         ::testing::Values(51u, 52u, 53u, 54u, 55u,
                                           56u, 57u, 58u));

} // namespace
