/**
 * @file
 * Tests for streaming statistics, quantiles, histograms and the normal
 * quantile function.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "common/stats.hh"

namespace
{

using vsync::Histogram;
using vsync::RunningStat;
using vsync::SampleSet;

TEST(RunningStat, EmptyIsZero)
{
    RunningStat st;
    EXPECT_EQ(st.count(), 0u);
    EXPECT_DOUBLE_EQ(st.mean(), 0.0);
    EXPECT_DOUBLE_EQ(st.variance(), 0.0);
}

TEST(RunningStat, SimpleMoments)
{
    RunningStat st;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        st.add(x);
    EXPECT_DOUBLE_EQ(st.mean(), 5.0);
    EXPECT_DOUBLE_EQ(st.variance(), 4.0);
    EXPECT_DOUBLE_EQ(st.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(st.min(), 2.0);
    EXPECT_DOUBLE_EQ(st.max(), 9.0);
    EXPECT_DOUBLE_EQ(st.sum(), 40.0);
}

TEST(RunningStat, SampleVarianceUsesNMinusOne)
{
    RunningStat st;
    st.add(1.0);
    st.add(3.0);
    EXPECT_DOUBLE_EQ(st.variance(), 1.0);
    EXPECT_DOUBLE_EQ(st.sampleVariance(), 2.0);
}

TEST(RunningStat, MergeMatchesConcatenation)
{
    vsync::Rng rng(5);
    RunningStat all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 7.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-7);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(SampleSet, QuantilesOfKnownData)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
    EXPECT_NEAR(s.median(), 50.5, 1e-12);
    EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-12);
}

TEST(SampleSet, QuantileAfterMoreSamples)
{
    SampleSet s;
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.median(), 10.0);
    s.add(20.0);
    EXPECT_DOUBLE_EQ(s.median(), 15.0);
    s.add(0.0);
    EXPECT_DOUBLE_EQ(s.median(), 10.0);
}

TEST(Histogram, BinningAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    for (double x : {-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0})
        h.add(x);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 7u);
    EXPECT_EQ(h.binCount(std::size_t{0}), 2u);
    EXPECT_EQ(h.binCount(std::size_t{5}), 1u);
    EXPECT_EQ(h.binCount(std::size_t{9}), 1u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
}

TEST(NormalCdf, KnownValues)
{
    EXPECT_NEAR(vsync::normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(vsync::normalCdf(1.959963985), 0.975, 1e-6);
    EXPECT_NEAR(vsync::normalCdf(-1.0), 0.15865525, 1e-6);
}

TEST(InverseNormalCdf, RoundTripsThroughCdf)
{
    for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99,
                     0.999}) {
        const double x = vsync::inverseNormalCdf(p);
        EXPECT_NEAR(vsync::normalCdf(x), p, 1e-8) << "p=" << p;
    }
}

TEST(InverseNormalCdf, KnownQuantiles)
{
    EXPECT_NEAR(vsync::inverseNormalCdf(0.5), 0.0, 1e-9);
    EXPECT_NEAR(vsync::inverseNormalCdf(0.975), 1.959964, 1e-5);
    EXPECT_NEAR(vsync::inverseNormalCdf(0.841344746), 1.0, 1e-6);
}

} // namespace
