/**
 * @file
 * Tests for layouts and their generators (Figs 4-6 shapes).
 */

#include <gtest/gtest.h>

#include "layout/generators.hh"
#include "layout/layout.hh"

namespace
{

using namespace vsync;
using namespace vsync::layout;

TEST(LinearLayout, PlacementAndRoutes)
{
    const Layout l = linearLayout(5);
    EXPECT_TRUE(l.validate(false));
    EXPECT_EQ(l.size(), 5u);
    EXPECT_DOUBLE_EQ(l.position(3).x, 3.0);
    EXPECT_DOUBLE_EQ(l.maxEdgeLength(), 1.0);
}

TEST(LinearLayout, PitchScalesDistances)
{
    const Layout l = linearLayout(4, 2.5);
    EXPECT_DOUBLE_EQ(l.maxEdgeLength(), 2.5);
    EXPECT_DOUBLE_EQ(l.boundingBox().width(), 3 * 2.5 + 1.0);
}

TEST(FoldedLayout, EndsMeetAtTheLeft)
{
    const Layout l = foldedLinearLayout(10);
    EXPECT_TRUE(l.validate(false));
    // Cell 0 and cell 9 both sit at x = 0 (adjacent rows).
    EXPECT_DOUBLE_EQ(l.position(0).x, 0.0);
    EXPECT_DOUBLE_EQ(l.position(9).x, 0.0);
    EXPECT_DOUBLE_EQ(geom::manhattan(l.position(0), l.position(9)), 1.0);
    // Neighbours remain at unit distance, including across the fold.
    EXPECT_DOUBLE_EQ(l.maxEdgeLength(), 1.0);
}

TEST(FoldedLayout, OddLength)
{
    const Layout l = foldedLinearLayout(7);
    EXPECT_TRUE(l.validate(false));
    EXPECT_DOUBLE_EQ(l.maxEdgeLength(), 1.0);
}

TEST(SerpentineLayout, AspectRatioFollowsColumnHeight)
{
    const Layout tall = serpentineLayout(64, 32);
    const Layout flat = serpentineLayout(64, 4);
    EXPECT_TRUE(tall.validate(false));
    EXPECT_TRUE(flat.validate(false));
    EXPECT_GT(tall.boundingBox().height(),
              flat.boundingBox().height());
    EXPECT_LT(tall.boundingBox().width(), flat.boundingBox().width());
    // The array remains a unit-step chain in both.
    EXPECT_DOUBLE_EQ(tall.maxEdgeLength(), 1.0);
    EXPECT_DOUBLE_EQ(flat.maxEdgeLength(), 1.0);
}

TEST(SerpentineLayout, CoversAllCellsOnce)
{
    const Layout l = serpentineLayout(30, 7);
    EXPECT_TRUE(l.validate(false)); // includes overlap check
}

TEST(MeshLayout, GridPositions)
{
    const Layout l = meshLayout(3, 4);
    EXPECT_TRUE(l.validate(false));
    EXPECT_DOUBLE_EQ(l.position(0).x, 0.0);
    EXPECT_DOUBLE_EQ(l.position(11).x, 3.0);
    EXPECT_DOUBLE_EQ(l.position(11).y, 2.0);
    EXPECT_DOUBLE_EQ(l.maxEdgeLength(), 1.0);
}

TEST(HexLayout, NeighborsWithinBoundedDistance)
{
    const Layout l = hexLayout(4, 4);
    EXPECT_TRUE(l.validate(false));
    // All six neighbour kinds at Manhattan distance <= 1.5.
    EXPECT_LE(l.maxEdgeLength(), 1.5);
}

TEST(LayeredTreeLayout, RootEdgesAreLong)
{
    const Layout l = layeredTreeLayout(5);
    EXPECT_TRUE(l.validate(false));
    // The naive layered drawing has Theta(N) top-level edges --
    // the problem Section VIII's H-tree solves.
    EXPECT_GT(l.maxEdgeLength(), 4.0);
}

TEST(FromTopology, RingKeepsWrapEdge)
{
    const graph::Topology t = graph::ring(8);
    const Layout l = fromTopology(t);
    EXPECT_TRUE(l.validate(false));
    EXPECT_EQ(l.comm().edgeCount(), t.graph.edgeCount());
    // The wrap link is physically long in the straight-line placement.
    EXPECT_DOUBLE_EQ(l.maxEdgeLength(), 7.0);
}

TEST(Layout, TotalWireLengthCountsPairsOnce)
{
    const Layout l = linearLayout(5);
    // 4 unit links (each bidirectional pair counted once).
    EXPECT_DOUBLE_EQ(l.totalWireLength(), 4.0);
}

TEST(Layout, ValidateCatchesOverlaps)
{
    graph::Graph g(2);
    g.addEdge(0, 1);
    Layout l("bad", g);
    l.place(0, {0.0, 0.0});
    l.place(1, {0.25, 0.0}); // violates unit-area spacing
    l.routeRemaining();
    EXPECT_FALSE(l.validate(false));
}

TEST(Layout, ValidateCatchesMissingRoute)
{
    graph::Graph g(2);
    g.addEdge(0, 1);
    Layout l("unrouted", g);
    l.place(0, {0.0, 0.0});
    l.place(1, {1.0, 0.0});
    EXPECT_FALSE(l.validate(false));
}

TEST(Layout, BoundingBoxIncludesCellExtent)
{
    const Layout l = linearLayout(3);
    const geom::Rect bb = l.boundingBox();
    EXPECT_DOUBLE_EQ(bb.width(), 3.0);  // 2 pitches + 2 half-cells
    EXPECT_DOUBLE_EQ(bb.height(), 1.0);
    EXPECT_DOUBLE_EQ(bb.area(), 3.0);
}

} // namespace
