/**
 * @file
 * Tests for the Section VIII tree machine: H-tree layout accounting,
 * clock-along-data-paths skew, pipeline register insertion and the
 * search workload.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/fit.hh"
#include "common/rng.hh"
#include "core/skew_analysis.hh"
#include "systolic/executor.hh"
#include "treemachine/htree_machine.hh"
#include "treemachine/search.hh"

namespace
{

using namespace vsync;
using namespace vsync::treemachine;

TEST(HTreeMachine, LayoutIsValidAndCompact)
{
    const TreeMachineLayout tm = buildHTreeMachine(6);
    EXPECT_TRUE(tm.layout.validate(false));
    EXPECT_EQ(tm.layout.size(), 63u);
}

TEST(HTreeMachine, AreaLinearInN)
{
    std::vector<double> ns, areas;
    for (int levels : {4, 6, 8, 10, 12}) {
        const TreeMachineLayout tm = buildHTreeMachine(levels);
        const double n = static_cast<double>(tm.layout.size());
        ns.push_back(n);
        areas.push_back(tm.layout.boundingBox().area());
    }
    // O(N) area: area/N stays bounded as N grows 256x.
    EXPECT_EQ(classifyGrowth(ns, areas), GrowthLaw::Linear);
}

TEST(HTreeMachine, RootToLeafLengthIsSqrtN)
{
    std::vector<double> ns, lens;
    for (int levels : {4, 6, 8, 10, 12, 14}) {
        const TreeMachineLayout tm = buildHTreeMachine(levels);
        Length total = 0.0;
        for (int l = 1; l < levels; ++l)
            total += tm.edgeLengthAtLevel[static_cast<std::size_t>(l)];
        ns.push_back(static_cast<double>(tm.layout.size()));
        lens.push_back(total);
    }
    EXPECT_EQ(classifyGrowth(ns, lens), GrowthLaw::SquareRoot);
}

TEST(HTreeMachine, EdgeLengthsHalveEveryTwoLevels)
{
    const TreeMachineLayout tm = buildHTreeMachine(8);
    for (int l = 1; l + 2 < 8; ++l) {
        EXPECT_NEAR(tm.edgeLengthAtLevel[static_cast<std::size_t>(l)],
                    2.0 * tm.edgeLengthAtLevel[
                        static_cast<std::size_t>(l + 2)],
                    1e-12);
    }
    // Deepest edges have unit length.
    EXPECT_DOUBLE_EQ(tm.edgeLengthAtLevel[7], 1.0);
}

TEST(ClockAlongDataPaths, SkewTracksEdgeLengthNotN)
{
    // Under the summation model the parent-child skew equals
    // g(edge length); the max over edges is set by the root edges,
    // whose length is O(sqrt N) -- but crucially each cell only ever
    // synchronises with its tree neighbours, and deeper (shorter)
    // edges have proportionally less skew.
    const core::SkewModel model = core::SkewModel::summation(0.5, 0.05);
    for (int levels : {4, 6, 8}) {
        const TreeMachineLayout tm = buildHTreeMachine(levels);
        const auto clk = buildClockAlongDataPaths(tm);
        EXPECT_TRUE(clk.validate(false));
        const auto report = analyzeSkew(tm.layout, clk, model);
        // s for a comm edge equals that edge's physical length.
        EXPECT_NEAR(report.maxS, tm.edgeLengthAtLevel[1], 1e-9);
        // Deep neighbours: minimal skew regardless of N.
        double min_s = vsync::infinity;
        for (const auto &e : report.edges)
            min_s = std::min(min_s, e.s);
        EXPECT_DOUBLE_EQ(min_s, 1.0);
    }
}

TEST(PipelineRegisters, BoundedSegmentsAndConstantInterval)
{
    std::vector<double> ns, intervals;
    for (int levels : {4, 6, 8, 10, 12}) {
        const TreeMachineLayout tm = buildHTreeMachine(levels);
        const auto stats =
            insertPipelineRegisters(tm, 2.0, 0.5, 0.1);
        EXPECT_LE(stats.maxSegment, 2.0 + 1e-12);
        ns.push_back(static_cast<double>(tm.layout.size()));
        intervals.push_back(stats.pipelineInterval);
    }
    // The Section VIII claim: constant pipeline interval.
    EXPECT_EQ(classifyGrowth(ns, intervals), GrowthLaw::Constant);
}

TEST(PipelineRegisters, LatencyIsSqrtNAndAreaConstantFactor)
{
    std::vector<double> ns, lats;
    for (int levels : {6, 8, 10, 12}) {
        const TreeMachineLayout tm = buildHTreeMachine(levels);
        const auto stats = insertPipelineRegisters(tm, 2.0, 0.5, 0.1);
        ns.push_back(static_cast<double>(tm.layout.size()));
        lats.push_back(stats.rootToLeafLatency);
        // Registers only thicken wires: constant-factor area.
        EXPECT_LE(stats.areaWithRegisters, 3.0 * stats.area);
    }
    EXPECT_EQ(classifyGrowth(ns, lats), GrowthLaw::SquareRoot);
}

TEST(PipelineRegisters, SameCountPerLevel)
{
    const TreeMachineLayout tm = buildHTreeMachine(10);
    const auto stats = insertPipelineRegisters(tm, 1.5, 0.5, 0.1);
    // Register counts are per-level by construction; they must be
    // non-increasing with depth (edges shrink).
    for (int l = 1; l + 1 < 10; ++l) {
        EXPECT_GE(stats.registersPerLevel[static_cast<std::size_t>(l)],
                  stats.registersPerLevel[
                      static_cast<std::size_t>(l + 1)]);
    }
    EXPECT_GT(stats.totalRegisters, 0);
}

TEST(SearchMachine, FindsNearestKey)
{
    const int levels = 4; // 8 leaves
    const std::vector<systolic::Word> keys{2, 11, 23, 31, 47, 59, 61,
                                           73};
    auto arr = buildSearchMachine(levels, keys);
    const std::vector<systolic::Word> qs{25.0, 60.0, 2.0};
    const int cycles = 2 * (levels - 1) + 4;
    const auto tr =
        systolic::runIdeal(arr, cycles, searchInputs(qs));
    const auto expected = searchExpectedOutput(levels, keys, qs, cycles);
    const auto &out = tr.of(0, 2);
    for (int t = 0; t < cycles; ++t)
        EXPECT_NEAR(out[t], expected[t], 1e-12) << "t=" << t;
    // Query 25 -> nearest key 23 (distance 2).
    EXPECT_DOUBLE_EQ(out[2 * (levels - 1)], 2.0);
}

/** Property: the pipelined tree machine answers one query per cycle. */
class SearchProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(SearchProperty, OneResultPerCycleAtAnySize)
{
    const int levels = GetParam();
    const int leaves = 1 << (levels - 1);
    Rng rng(static_cast<std::uint64_t>(levels));
    std::vector<systolic::Word> keys(static_cast<std::size_t>(leaves));
    for (auto &k : keys)
        k = std::floor(rng.uniform(0.0, 100.0));
    std::vector<systolic::Word> qs;
    for (int i = 0; i < 12; ++i)
        qs.push_back(std::floor(rng.uniform(0.0, 100.0)));

    auto arr = buildSearchMachine(levels, keys);
    const int cycles = 2 * (levels - 1) + 12;
    const auto tr = systolic::runIdeal(arr, cycles, searchInputs(qs));
    const auto expected =
        searchExpectedOutput(levels, keys, qs, cycles);
    const auto &out = tr.of(0, 2);
    for (int t = 0; t < cycles; ++t)
        EXPECT_NEAR(out[t], expected[t], 1e-9) << "t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Levels, SearchProperty,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

} // namespace
