/**
 * @file
 * core::SkewKernel: the flattened batch skew-query kernel.
 *
 * The kernel's contract is "same answers, flat state": every query
 * must agree bitwise with the pointer-chasing surface it replaced.
 * The NCA property test drives randomized tree shapes (seeded via
 * Rng::forTrial, so failures reproduce by trial index) against the
 * naive parent-climb; the sweep tests pin the Monte-Carlo bit-identity
 * guarantee at 1/2/8 threads. The lane-blocked entry points have their
 * own suite in test_skew_block.cc.
 */

#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/skew_analysis.hh"
#include "core/skew_kernel.hh"
#include "layout/generators.hh"
#include "mc/sweeps.hh"
#include "obs/metrics.hh"

namespace
{

using namespace vsync;
using core::SkewKernel;
using core::WireDelay;

/** A random binary tree: node v's parent is drawn uniformly from the
 *  nodes that still have a free child slot, so shapes range from paths
 *  to balanced trees. Cells 0 and 1 are bound to the root and the last
 *  node to satisfy A4. */
clocktree::ClockTree
randomTree(std::size_t n, Rng &rng)
{
    clocktree::ClockTree t;
    t.addRoot({0.0, 0.0});
    std::vector<NodeId> open{0}; // nodes with < 2 children
    std::vector<int> kids(n, 0);
    for (std::size_t v = 1; v < n; ++v) {
        const std::size_t pick = rng.uniformInt(open.size());
        const NodeId p = open[pick];
        t.addChild(p, {rng.uniform(-10.0, 10.0),
                       rng.uniform(-10.0, 10.0)});
        if (++kids[p] == 2) {
            open[pick] = open.back();
            open.pop_back();
        }
        open.push_back(static_cast<NodeId>(v));
    }
    t.bindCell(0, 0);
    t.bindCell(static_cast<NodeId>(n - 1), 1);
    return t;
}

TEST(SkewKernelNca, MatchesNaiveParentClimbOnRandomizedTrees)
{
    const layout::Layout l = layout::linearLayout(2);
    for (std::uint64_t trial = 0; trial < 25; ++trial) {
        Rng rng = Rng::forTrial(0x9ca5eed, trial);
        const std::size_t n = 2 + rng.uniformInt(60);
        const clocktree::ClockTree t = randomTree(n, rng);
        const SkewKernel kernel(l, t);

        ASSERT_EQ(kernel.nodeCount(), n) << "trial " << trial;
        for (NodeId a = 0; static_cast<std::size_t>(a) < n; ++a) {
            for (NodeId b = a; static_cast<std::size_t>(b) < n; ++b) {
                EXPECT_EQ(kernel.nca(a, b), t.structure().nca(a, b))
                    << "trial " << trial << " pair " << a << "," << b;
                // Same arithmetic, so bitwise equality is required.
                EXPECT_EQ(kernel.treeDistance(a, b),
                          t.treeDistance(a, b))
                    << "trial " << trial;
                EXPECT_EQ(kernel.pathDifference(a, b),
                          t.pathDifference(a, b))
                    << "trial " << trial;
            }
        }
    }
}

TEST(SkewKernel, CompilesHTreeScenarioFaithfully)
{
    const layout::Layout l = layout::meshLayout(8, 8);
    const auto tree = clocktree::buildHTreeGrid(l, 8, 8);
    const SkewKernel kernel(l, tree);

    EXPECT_TRUE(kernel.hasTree());
    EXPECT_EQ(kernel.nodeCount(), tree.size());
    EXPECT_EQ(kernel.cellCount(), l.size());
    EXPECT_EQ(kernel.pairCount(), l.comm().undirectedEdges().size());

    // Flat arrays mirror the tree: parent, wire length, prefix h.
    for (NodeId v = 1; static_cast<std::size_t>(v) < tree.size(); ++v) {
        EXPECT_EQ(kernel.parent(v), tree.structure().parent(v));
        EXPECT_EQ(kernel.wireLength(v), tree.wireLength(v));
        EXPECT_EQ(kernel.rootPathLength(v), tree.rootPathLength(v));
    }
    for (CellId c = 0; static_cast<CellId>(l.size()) > c; ++c)
        EXPECT_EQ(kernel.nodeOfCell(c), tree.nodeOfCell(c));

    // Pair endpoints preserve undirectedEdges order.
    const auto edges = l.comm().undirectedEdges();
    for (std::size_t i = 0; i < edges.size(); ++i) {
        EXPECT_EQ(kernel.pairCellsA()[i], edges[i].src);
        EXPECT_EQ(kernel.pairCellsB()[i], edges[i].dst);
        EXPECT_EQ(kernel.pairNodesA()[i],
                  tree.nodeOfCell(edges[i].src));
        EXPECT_EQ(kernel.pairNodesB()[i],
                  tree.nodeOfCell(edges[i].dst));
    }
}

TEST(SkewKernel, ArrivalsReproduceNaiveSamplerBitwise)
{
    const layout::Layout l = layout::meshLayout(6, 6);
    const auto tree = clocktree::buildHTreeGrid(l, 6, 6);
    const SkewKernel kernel(l, tree);
    const WireDelay delay{0.05, 0.005};

    std::vector<Time> arrival(kernel.nodeCount());
    for (std::uint64_t trial = 0; trial < 8; ++trial) {
        Rng naive_rng = Rng::forTrial(777, trial);
        const core::SkewInstance inst =
            core::sampleSkewInstance(l, tree, delay, naive_rng);

        Rng kernel_rng = Rng::forTrial(777, trial);
        kernel.arrivals(delay, kernel_rng, arrival);

        // Identical draw sequence -> identical arrivals, bit for bit.
        ASSERT_EQ(arrival.size(), inst.arrival.size());
        for (std::size_t v = 0; v < arrival.size(); ++v)
            EXPECT_EQ(arrival[v], inst.arrival[v]) << "trial " << trial;
        EXPECT_EQ(kernel.maxCommSkew(arrival), inst.maxCommSkew);
        EXPECT_EQ(naive_rng.draws(), kernel_rng.draws());
    }
}

TEST(SkewKernel, SkewSweepBitIdenticalToNaiveSamplerAtAnyThreadCount)
{
    // The acceptance gate of the kernel rewire: mc::skewSweep results
    // are unchanged by the kernel for the same seed, at every thread
    // count.
    const layout::Layout l = layout::meshLayout(6, 6);
    const auto tree = clocktree::buildHTreeGrid(l, 6, 6);
    const WireDelay delay{0.05, 0.005};

    mc::McConfig cfg;
    cfg.seed = 0xfeedface;
    cfg.trials = 24;
    cfg.grain = 4;

    std::vector<double> reference(cfg.trials, 0.0);
    for (std::size_t i = 0; i < cfg.trials; ++i) {
        Rng rng = Rng::forTrial(cfg.seed, i);
        reference[i] =
            core::sampleSkewInstance(l, tree, delay, rng).maxCommSkew;
    }

    for (const unsigned threads : {1u, 2u, 8u}) {
        cfg.threads = threads;
        const mc::McResult sweep = mc::skewSweep(l, tree, delay, cfg);
        ASSERT_EQ(sweep.samples.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i)
            EXPECT_EQ(sweep.samples[i], reference[i])
                << "threads " << threads << " trial " << i;
    }
}

TEST(SkewKernel, PairsOnlyKernelEvaluatesArrivalSurfaces)
{
    // linearLayout(3): pairs (0,1) and (1,2); cell 2 never clocked.
    const layout::Layout l = layout::linearLayout(3);
    const SkewKernel kernel(l);
    EXPECT_FALSE(kernel.hasTree());
    EXPECT_EQ(kernel.nodeCount(), 0u);

    const std::vector<Time> arrival{0.0, 0.5, infinity};
    const core::ArrivalSkew skew = kernel.arrivalSkew(arrival);
    EXPECT_DOUBLE_EQ(skew.clockedFraction, 2.0 / 3.0);
    EXPECT_EQ(skew.pairCount, 2u);
    EXPECT_EQ(skew.clockedPairs, 1u);
    EXPECT_DOUBLE_EQ(skew.maxCommSkew, 0.5);

    // skewFromArrivals is now a thin wrapper over the same kernel.
    const core::ArrivalSkew wrapped = core::skewFromArrivals(l, arrival);
    EXPECT_EQ(wrapped.clockedFraction, skew.clockedFraction);
    EXPECT_EQ(wrapped.maxCommSkew, skew.maxCommSkew);
    EXPECT_EQ(wrapped.clockedPairs, skew.clockedPairs);
    EXPECT_EQ(wrapped.pairCount, skew.pairCount);
}

TEST(SkewKernel, AnalyzeSkewKernelOverloadMatchesScenarioOverload)
{
    const layout::Layout l = layout::meshLayout(5, 5);
    const auto tree = clocktree::buildHTreeGrid(l, 5, 5);
    const auto model = core::SkewModel::summation(0.05, 0.005);

    const core::SkewReport a = core::analyzeSkew(l, tree, model);
    const SkewKernel kernel(l, tree);
    const core::SkewReport b = core::analyzeSkew(kernel, model);

    ASSERT_EQ(a.edges.size(), b.edges.size());
    EXPECT_EQ(a.maxSkewUpper, b.maxSkewUpper);
    EXPECT_EQ(a.maxSkewLower, b.maxSkewLower);
    EXPECT_EQ(a.maxD, b.maxD);
    EXPECT_EQ(a.maxS, b.maxS);
    EXPECT_EQ(a.worstIndex, b.worstIndex);
    for (std::size_t i = 0; i < a.edges.size(); ++i) {
        EXPECT_EQ(a.edges[i].d, b.edges[i].d);
        EXPECT_EQ(a.edges[i].s, b.edges[i].s);
        EXPECT_EQ(a.edges[i].upper, b.edges[i].upper);
        EXPECT_EQ(a.edges[i].lower, b.edges[i].lower);
    }
}

TEST(SkewKernel, ExportsStatsThroughMetricsRegistry)
{
    const layout::Layout l = layout::meshLayout(4, 4);
    const auto tree = clocktree::buildHTreeGrid(l, 4, 4);
    const SkewKernel kernel(l, tree);

    Rng rng(1);
    std::vector<Time> scratch;
    (void)kernel.sampleMaxCommSkew(WireDelay{0.05, 0.005}, rng, scratch);

    obs::MetricsRegistry reg;
    kernel.exportMetrics(reg);
    EXPECT_EQ(reg.gauge("core.skew_kernel.nodes").value(),
              static_cast<double>(kernel.nodeCount()));
    EXPECT_EQ(reg.gauge("core.skew_kernel.pairs").value(),
              static_cast<double>(kernel.pairCount()));
    EXPECT_GE(reg.gauge("core.skew_kernel.build_ms").value(), 0.0);
    EXPECT_EQ(reg.gauge("core.skew_kernel.queries_served").value(),
              static_cast<double>(kernel.pairCount()));
    EXPECT_EQ(reg.gauge("core.skew_kernel.arrival_batches").value(),
              1.0);
}

TEST(SkewKernelDeath, GuardsDegenerateInputs)
{
    const layout::Layout l = layout::linearLayout(3);
    const SkewKernel pairs_only(l);
    EXPECT_DEATH((void)pairs_only.nca(0, 0), "tree");

    const auto tree = clocktree::buildSpine(l);
    const SkewKernel kernel(l, tree);
    Rng rng(2);
    std::vector<Time> arrival(kernel.nodeCount());
    EXPECT_DEATH(
        kernel.arrivals(WireDelay{0.05, 0.5}, rng,
                        std::span<Time>(arrival)),
        "bad delay");

    mc::McConfig zero_trials;
    zero_trials.trials = 0;
    EXPECT_DEATH((void)mc::runTrials(zero_trials,
                                     [](std::uint64_t, Rng &) {
                                         return 0.0;
                                     }),
                 "trials must be positive");
    mc::McConfig zero_grain;
    zero_grain.grain = 0;
    EXPECT_DEATH((void)mc::runTrials(zero_grain,
                                     [](std::uint64_t, Rng &) {
                                         return 0.0;
                                     }),
                 "grain must be positive");
}

} // namespace
