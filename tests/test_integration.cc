/**
 * @file
 * End-to-end integration tests: the paper's central claims exercised
 * through the whole stack (layout -> clock tree -> skew -> execution).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "clocktree/builders.hh"
#include "common/fit.hh"
#include "common/rng.hh"
#include "core/advisor.hh"
#include "core/clock_period.hh"
#include "core/lower_bound.hh"
#include "core/skew_analysis.hh"
#include "hybrid/executor.hh"
#include "layout/generators.hh"
#include "systolic/clocked_executor.hh"
#include "systolic/fir.hh"
#include "systolic/matmul.hh"

namespace
{

using namespace vsync;

/**
 * Theorem 3 end to end: a 1-D FIR array, spine-clocked under the
 * summation model with sampled wire delays, runs correctly at a period
 * that does not depend on the array length.
 */
TEST(Integration, Theorem3FirRunsAtSizeIndependentPeriod)
{
    const double m = 0.05, eps = 0.005;
    systolic::LinkTiming timing;
    timing.setup = 0.2;
    timing.hold = 0.1;
    timing.clkToQ = 0.2;
    timing.deltaMin = 0.3;
    timing.deltaMax = 1.0;

    // Fixed budget chosen once: intrinsic delay + one-pitch worst skew.
    const Time period = timing.clkToQ + timing.deltaMax + timing.setup +
                        (m + eps) * 1.0;

    Rng rng(1001);
    for (int n : {4, 16, 64, 256}) {
        std::vector<systolic::Word> taps(static_cast<std::size_t>(n),
                                         1.0);
        systolic::SystolicArray arr = systolic::buildFir(taps);
        const layout::Layout l = layout::linearLayout(n);
        const auto tree = clocktree::buildSpine(l);
        const auto inst = core::sampleSkewInstance(l, tree, core::WireDelay{m, eps}, rng);

        std::vector<Time> offsets;
        for (CellId c = 0; c < n; ++c)
            offsets.push_back(inst.arrival[tree.nodeOfCell(c)]);

        ASSERT_TRUE(systolic::holdSafe(arr, offsets, timing)) << n;
        EXPECT_LE(systolic::minSafePeriod(arr, offsets, timing),
                  period + 1e-9)
            << n;

        const std::vector<systolic::Word> xs{1, -1, 2};
        const int cycles = n + 6;
        const auto ideal =
            systolic::runIdeal(arr, cycles, systolic::firInputs(xs));
        const auto clocked = systolic::runClocked(
            arr, cycles, systolic::firInputs(xs), offsets, period,
            timing);
        EXPECT_TRUE(clocked.correct) << n;
        EXPECT_TRUE(clocked.trace.matches(ideal)) << n;
    }
}

/**
 * The Section V-B contrast: the same fixed period that works for every
 * 1-D array fails on large meshes clocked by any of our builders under
 * the summation model, because some communicating pair is far apart on
 * every tree.
 */
TEST(Integration, MeshSkewDefeatsFixedPeriodGlobalClocking)
{
    const double m = 0.05, eps = 0.005;
    systolic::LinkTiming timing;
    timing.setup = 0.2;
    timing.hold = 0.1;
    timing.clkToQ = 0.2;
    timing.deltaMin = 0.3;
    timing.deltaMax = 1.0;
    const Time period = timing.clkToQ + timing.deltaMax + timing.setup +
                        (m + eps) * 2.0;

    bool small_ok = false, large_failed = false;
    for (int n : {4, 24}) {
        systolic::SystolicArray arr = systolic::buildMatMul(n);
        const layout::Layout l = layout::meshLayout(n, n);
        const auto tree = clocktree::buildHTreeGrid(l, n, n);
        // The worst-case chip A11 asserts to exist: adversarial wire
        // delays maximising the skew of the critical pair.
        const auto inst = core::adversarialSkewInstance(l, tree, core::WireDelay{m, eps});
        std::vector<Time> offsets;
        for (CellId c = 0; static_cast<std::size_t>(c) < l.size(); ++c)
            offsets.push_back(inst.arrival[tree.nodeOfCell(c)]);
        const Time needed =
            systolic::minSafePeriod(arr, offsets, timing);
        if (n == 4 && needed <= period)
            small_ok = true;
        if (n == 24 && needed > period)
            large_failed = true;
    }
    EXPECT_TRUE(small_ok);
    EXPECT_TRUE(large_failed);
}

/** Fig 8 end to end: hybrid synchronization restores a constant cycle
 *  on meshes and still computes the right product. */
TEST(Integration, HybridRescuesLargeMeshes)
{
    hybrid::HybridParams params;
    params.localClockPerLambda = 0.1;
    params.delta = 2.0;
    params.handshakeWirePerLambda = 0.05;
    params.handshakeLogic = 0.5;

    Rng rng(1003);
    std::vector<double> ns, cycles;
    for (int n : {4, 8, 16}) {
        std::vector<std::vector<systolic::Word>> a(
            n, std::vector<systolic::Word>(n));
        auto b = a;
        for (auto *mat : {&a, &b})
            for (auto &row : *mat)
                for (auto &v : row)
                    v = rng.uniform(-1.0, 1.0);
        systolic::SystolicArray arr = systolic::buildMatMul(n);
        const layout::Layout l = layout::meshLayout(n, n);
        const auto exec = hybrid::runHybrid(
            arr, l, 4.0, params, systolic::matMulCycles(n),
            systolic::matMulInputs(a, b));
        const auto c = systolic::matMulReference(a, b);
        for (int i = 0; i < n; ++i)
            for (int j = 0; j < n; ++j)
                EXPECT_NEAR(exec.trace.finalStates[i * n + j][0],
                            c[i][j], 1e-9);
        ns.push_back(n * n);
        cycles.push_back(exec.cycleTime);
    }
    EXPECT_EQ(classifyGrowth(ns, cycles), GrowthLaw::Constant);
}

/** The advisor's verdicts agree with measured growth classes. */
TEST(Integration, AdvisorConsistentWithMeasurements)
{
    const core::SkewModel model = core::SkewModel::summation(0.05, 0.005);
    core::ClockParams cp;
    cp.m = 0.05;
    cp.eps = 0.005;
    cp.bufferDelay = 0.2;
    cp.bufferSpacing = 4.0;
    cp.delta = 2.0;

    // Linear arrays, spine clock, pipelined: measured O(1) period.
    std::vector<double> ns, periods;
    for (int n : {8, 32, 128, 512}) {
        const layout::Layout l = layout::linearLayout(n);
        const auto t = clocktree::buildSpine(l);
        const auto p =
            core::clockPeriod(core::analyzeSkew(l, t, model), t, cp,
                              core::ClockingMode::Pipelined);
        ns.push_back(n);
        periods.push_back(p.period);
    }
    EXPECT_EQ(classifyGrowth(ns, periods), GrowthLaw::Constant);
    const auto advice = core::adviseScheme(
        graph::TopologyKind::Linear, core::TechnologyAssumptions{});
    EXPECT_EQ(advice.periodGrowth, GrowthLaw::Constant);
    EXPECT_EQ(advice.scheme, core::SyncScheme::PipelinedSpine);

    // Meshes, best-effort global clock: measured growth with n matches
    // the Theorem 6 prediction that no bounded-skew tree exists.
    std::vector<double> mesh_ns, sigmas;
    for (int n : {4, 8, 16, 32}) {
        const layout::Layout l = layout::meshLayout(n, n);
        const auto t = clocktree::buildHTreeGrid(l, n, n);
        const auto r = core::analyzeSkew(l, t, model);
        mesh_ns.push_back(n);
        sigmas.push_back(r.maxSkewLower);
    }
    EXPECT_EQ(classifyGrowth(mesh_ns, sigmas), GrowthLaw::Linear);
    const auto mesh_advice = core::adviseScheme(
        graph::TopologyKind::Mesh, core::TechnologyAssumptions{});
    EXPECT_EQ(mesh_advice.scheme, core::SyncScheme::Hybrid);
}

/** Theorem 6 instance check: the certified circle-argument bound is
 *  respected by every tree builder we have. */
TEST(Integration, CertifiedLowerBoundHoldsForAllBuilders)
{
    const double beta = 0.005;
    Rng rng(1004);
    const int n = 12;
    const layout::Layout l = layout::meshLayout(n, n);
    std::vector<clocktree::ClockTree> trees;
    trees.push_back(clocktree::buildHTreeGrid(l, n, n));
    trees.push_back(clocktree::buildRecursiveBisection(l));
    trees.push_back(clocktree::buildRandomTree(l, rng));
    const double theorem =
        core::theorem6Bound(l.size(), core::meshCutWidth(n), beta);
    for (const auto &t : trees) {
        const double actual = core::instanceSkewLowerBound(l, t, beta);
        EXPECT_GE(actual, theorem * 0.9) << t.name;
    }
}

} // namespace
