/**
 * @file
 * Tests for the deterministic exponential backoff: bit-for-bit
 * reproducibility of jittered schedules, envelope growth and bounds,
 * substream decorrelation, reset semantics and config validation.
 */

#include <gtest/gtest.h>

#include "common/backoff.hh"
#include "common/rng.hh"

namespace
{

using namespace vsync;

TEST(Backoff, SameConfigAndSeedReplaysTheExactSchedule)
{
    const BackoffConfig cfg;
    Backoff a(cfg, Rng::forTrial(42, 0));
    Backoff b(cfg, Rng::forTrial(42, 0));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.nextSeconds(), b.nextSeconds()) << i;
}

TEST(Backoff, SiblingSubstreamsAreDecorrelated)
{
    // The WorkerPool idiom: worker k jitters on Rng::forTrial(seed, k).
    // Two workers must not sleep identically, or a fleet retries a
    // dead peer in lock step.
    const BackoffConfig cfg;
    Backoff a(cfg, Rng::forTrial(42, 0));
    Backoff b(cfg, Rng::forTrial(42, 1));
    int differing = 0;
    for (int i = 0; i < 16; ++i)
        differing += a.nextSeconds() != b.nextSeconds() ? 1 : 0;
    EXPECT_GT(differing, 12);
}

TEST(Backoff, EnvelopeGrowsGeometricallyThenClampsAtCap)
{
    BackoffConfig cfg;
    cfg.baseSeconds = 0.1;
    cfg.multiplier = 2.0;
    cfg.capSeconds = 1.0;
    const Backoff b(cfg, Rng::forTrial(1, 0));
    EXPECT_DOUBLE_EQ(b.envelopeSeconds(0), 0.1);
    EXPECT_DOUBLE_EQ(b.envelopeSeconds(1), 0.2);
    EXPECT_DOUBLE_EQ(b.envelopeSeconds(2), 0.4);
    EXPECT_DOUBLE_EQ(b.envelopeSeconds(3), 0.8);
    EXPECT_DOUBLE_EQ(b.envelopeSeconds(4), 1.0); // 1.6 clamped
    EXPECT_DOUBLE_EQ(b.envelopeSeconds(100), 1.0);
    // A huge attempt index must not overflow to inf.
    EXPECT_DOUBLE_EQ(b.envelopeSeconds(4'000'000'000u), 1.0);
}

TEST(Backoff, JitterOnlyShortensTheDelay)
{
    BackoffConfig cfg;
    cfg.baseSeconds = 0.05;
    cfg.multiplier = 3.0;
    cfg.capSeconds = 2.0;
    cfg.jitterFraction = 0.5;
    Backoff b(cfg, Rng::forTrial(7, 3));
    for (unsigned k = 0; k < 20; ++k) {
        const double env = b.envelopeSeconds(k);
        const double d = b.nextSeconds();
        EXPECT_LE(d, env) << k;
        EXPECT_GT(d, env * (1.0 - cfg.jitterFraction)) << k;
    }
}

TEST(Backoff, ZeroJitterIsFullyPeriodicAndStreamPositionIndependent)
{
    BackoffConfig periodic;
    periodic.jitterFraction = 0.0;
    Backoff b(periodic, Rng::forTrial(9, 0));
    EXPECT_DOUBLE_EQ(b.nextSeconds(), periodic.baseSeconds);
    EXPECT_DOUBLE_EQ(b.nextSeconds(),
                     periodic.baseSeconds * periodic.multiplier);

    // The stream advances once per call regardless of jitterFraction,
    // so switching jitter on later in an experiment cannot shift which
    // u_k a given attempt draws.
    BackoffConfig jittered = periodic;
    jittered.jitterFraction = 0.5;
    Backoff j1(jittered, Rng::forTrial(9, 0));
    Backoff j2(jittered, Rng::forTrial(9, 0));
    (void)j1.nextSeconds();
    (void)j2.nextSeconds();
    EXPECT_EQ(j1.nextSeconds(), j2.nextSeconds());
}

TEST(Backoff, ResetRestartsTheEnvelopeButNotTheJitterStream)
{
    BackoffConfig cfg;
    cfg.jitterFraction = 0.0; // make delays predictable
    Backoff b(cfg, Rng::forTrial(3, 0));
    (void)b.nextSeconds();
    (void)b.nextSeconds();
    EXPECT_EQ(b.attempts(), 2u);
    b.reset();
    EXPECT_EQ(b.attempts(), 0u);
    EXPECT_DOUBLE_EQ(b.nextSeconds(), cfg.baseSeconds);
}

TEST(Backoff, NonsensicalConfigsAreFatal)
{
    BackoffConfig negative;
    negative.baseSeconds = -1.0;
    EXPECT_DEATH(negative.validate(), "baseSeconds");

    BackoffConfig capBelowBase;
    capBelowBase.baseSeconds = 2.0;
    capBelowBase.capSeconds = 1.0;
    EXPECT_DEATH(capBelowBase.validate(), "capSeconds");

    BackoffConfig shrinking;
    shrinking.multiplier = 0.5;
    EXPECT_DEATH(shrinking.validate(), "multiplier");

    BackoffConfig wildJitter;
    wildJitter.jitterFraction = 1.5;
    EXPECT_DEATH(wildJitter.validate(), "jitterFraction");
}

} // namespace
