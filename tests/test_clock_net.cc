/**
 * @file
 * Tests for the simulated buffered clock tree: arrival times, pipelined
 * events in flight (A7), and jitter breaking event spacing (A8).
 */

#include <gtest/gtest.h>

#include "clocktree/buffering.hh"
#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "desim/clock_net.hh"
#include "layout/generators.hh"

namespace
{

using namespace vsync;
using namespace vsync::desim;
using clocktree::BufferedClockTree;
using clocktree::ClockTree;

/** Fixed stage delay: wire delay m per lambda + buffer delay. */
ClockNet::DelayFn
fixedDelays(double m, Time buffer_delay)
{
    return [m, buffer_delay](const clocktree::BufferedSite &site,
                             std::size_t) {
        Time d = m * site.wireFromParent;
        if (site.isBuffer)
            d += buffer_delay;
        return EdgeDelays::same(d);
    };
}

TEST(ClockNet, ArrivalEqualsPathDelay)
{
    Simulator sim;
    ClockTree t;
    const NodeId root = t.addRoot({0, 0});
    const NodeId leaf = t.addChild(root, {10, 0});
    t.bindCell(leaf, 0);
    const auto buffered = BufferedClockTree::insertBuffers(t, 4.0);
    ASSERT_EQ(buffered.bufferCount(), 2u); // at 4 and 8 lambda
    ClockNet net(sim, buffered, fixedDelays(0.5, 0.1));

    net.drive(1000.0, 1); // one slow edge
    const auto &arr = net.risingArrivals(leaf);
    ASSERT_EQ(arr.size(), 1u);
    // 10 lambda of wire at 0.5 ns/lambda plus two 0.1 ns buffers.
    EXPECT_NEAR(arr[0], 5.0 + 0.2, 1e-9);
}

TEST(ClockNet, AllCellsReceiveEveryEdge)
{
    Simulator sim;
    const layout::Layout l = layout::meshLayout(4, 4);
    const ClockTree t = clocktree::buildHTreeGrid(l, 4, 4);
    const auto buffered = BufferedClockTree::insertBuffers(t, 2.0);
    ClockNet net(sim, buffered, fixedDelays(0.5, 0.1));
    net.drive(5.0, 10);
    for (CellId c = 0; c < 16; ++c)
        EXPECT_EQ(net.risingArrivals(t.nodeOfCell(c)).size(), 10u);
}

TEST(ClockNet, PipelinedModeHasManyEventsInFlight)
{
    Simulator sim;
    const layout::Layout l = layout::linearLayout(64);
    const ClockTree t = clocktree::buildSpine(l);
    const auto buffered = BufferedClockTree::insertBuffers(t, 2.0);
    ClockNet net(sim, buffered, fixedDelays(0.5, 0.1));

    // Root-to-end latency is 64 * 0.5 = 32 ns; driving at a 2 ns
    // period must put many events in flight at once.
    net.drive(2.0, 40);
    const NodeId last = t.nodeOfCell(63);
    EXPECT_GE(net.maxEventsInFlight(last), 10);
    // And every edge still arrives, correctly spaced (A8 holds).
    const auto &arr = net.risingArrivals(last);
    ASSERT_EQ(arr.size(), 40u);
    for (std::size_t k = 1; k < arr.size(); ++k)
        EXPECT_NEAR(arr[k] - arr[k - 1], 2.0, 1e-9);
}

TEST(ClockNet, EquipotentialModeHasOneEventInFlight)
{
    Simulator sim;
    const layout::Layout l = layout::linearLayout(64);
    const ClockTree t = clocktree::buildSpine(l);
    const auto buffered = BufferedClockTree::insertBuffers(t, 2.0);
    ClockNet net(sim, buffered, fixedDelays(0.5, 0.1));

    // Period far above the settle time: classic equipotential pacing.
    net.drive(100.0, 10);
    EXPECT_LE(net.maxEventsInFlight(t.nodeOfCell(63)), 1);
}

TEST(ClockNet, JitterDesynchronisesEdgeSpacing)
{
    Simulator sim;
    const layout::Layout l = layout::linearLayout(32);
    const ClockTree t = clocktree::buildSpine(l);
    const auto buffered = BufferedClockTree::insertBuffers(t, 2.0);
    ClockNet net(sim, buffered, fixedDelays(0.5, 0.1));

    // Break A8: every stage adds a random extra delay per transition.
    Rng rng(321);
    auto *rng_ptr = &rng;
    net.setJitter([rng_ptr]() { return rng_ptr->uniform(0.0, 1.5); });
    net.drive(2.0, 20);

    const auto &arr = net.risingArrivals(t.nodeOfCell(31));
    ASSERT_GE(arr.size(), 2u);
    double worst_spacing_error = 0.0;
    for (std::size_t k = 1; k < arr.size(); ++k) {
        worst_spacing_error = std::max(
            worst_spacing_error, std::fabs((arr[k] - arr[k - 1]) - 2.0));
    }
    // Successive events are no longer correctly spaced (Section VI's
    // premise for abandoning pipelined clocking without A8).
    EXPECT_GT(worst_spacing_error, 0.5);
}

TEST(ClockNet, SiteCountMatchesBufferedTree)
{
    Simulator sim;
    const layout::Layout l = layout::linearLayout(8);
    const ClockTree t = clocktree::buildSpine(l);
    const auto buffered = BufferedClockTree::insertBuffers(t, 0.5);
    ClockNet net(sim, buffered, fixedDelays(1.0, 0.0));
    EXPECT_EQ(net.siteCount(), buffered.sites().size());
}

} // namespace
