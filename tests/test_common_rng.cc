/**
 * @file
 * Tests for the deterministic random number generator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"

namespace
{

using vsync::Rng;
using vsync::RunningStat;

TEST(SplitMix64, KnownSequenceIsDeterministic)
{
    vsync::SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.5, 2.25);
        EXPECT_GE(u, -3.5);
        EXPECT_LT(u, 2.25);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(11);
    RunningStat st;
    for (int i = 0; i < 100000; ++i)
        st.add(rng.uniform());
    EXPECT_NEAR(st.mean(), 0.5, 0.01);
    EXPECT_NEAR(st.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllResidues)
{
    Rng rng(17);
    std::vector<int> seen(10, 0);
    for (int i = 0; i < 10000; ++i)
        ++seen[rng.uniformInt(10)];
    for (int count : seen)
        EXPECT_GT(count, 700);
}

TEST(Rng, NormalMoments)
{
    Rng rng(19);
    RunningStat st;
    for (int i = 0; i < 200000; ++i)
        st.add(rng.normal());
    EXPECT_NEAR(st.mean(), 0.0, 0.01);
    EXPECT_NEAR(st.stddev(), 1.0, 0.01);
}

TEST(Rng, NormalScaled)
{
    Rng rng(23);
    RunningStat st;
    for (int i = 0; i < 100000; ++i)
        st.add(rng.normal(5.0, 2.0));
    EXPECT_NEAR(st.mean(), 5.0, 0.05);
    EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(29);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(31);
    RunningStat st;
    for (int i = 0; i < 100000; ++i)
        st.add(rng.exponential(4.0));
    EXPECT_NEAR(st.mean(), 4.0, 0.1);
    EXPECT_GE(st.min(), 0.0);
}

TEST(Rng, DerivedStreamsAreIndependentOfDrawCount)
{
    Rng a(99), b(99);
    // Consume from a before deriving; derived streams must match.
    for (int i = 0; i < 57; ++i)
        a.next();
    Rng da = a.deriveStream(5);
    Rng db = b.deriveStream(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(da.next(), db.next());
}

TEST(Rng, DerivedStreamsWithDifferentSaltsDiffer)
{
    Rng a(99);
    Rng s1 = a.deriveStream(1);
    Rng s2 = a.deriveStream(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += s1.next() == s2.next() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(RngFill, FillUniformReplaysScalarSequence)
{
    Rng bulk(4242), scalar(4242);
    std::vector<double> got(257); // odd, not a power of two
    bulk.fillUniform(-2.5, 7.75, std::span<double>(got));
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], scalar.uniform(-2.5, 7.75)) << "draw " << i;
    EXPECT_EQ(bulk.draws(), scalar.draws());
    // The streams stay in lockstep after the fill.
    EXPECT_EQ(bulk.next(), scalar.next());
}

TEST(RngFill, StridedFillMatchesContiguousFill)
{
    Rng a(77), b(77);
    constexpr std::size_t count = 64, stride = 5;
    std::vector<double> flat(count);
    std::vector<double> mat(count * stride, -1.0);
    a.fillUniform(0.0, 1.0, std::span<double>(flat));
    b.fillUniform(0.0, 1.0, mat.data(), count, stride);
    for (std::size_t i = 0; i < count; ++i)
        ASSERT_EQ(mat[i * stride], flat[i]) << i;
    // Slots between the strided writes are untouched.
    for (std::size_t i = 0; i < mat.size(); ++i) {
        if (i % stride != 0) {
            ASSERT_EQ(mat[i], -1.0) << i;
        }
    }
    EXPECT_EQ(a.draws(), b.draws());
}

TEST(RngFill, FillNormalReplaysScalarSequence)
{
    for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                                std::size_t{7}, std::size_t{64}}) {
        Rng bulk(909), scalar(909);
        std::vector<double> got(n);
        bulk.fillNormal(std::span<double>(got));
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(got[i], scalar.normal()) << "n " << n << " i " << i;
        EXPECT_EQ(bulk.draws(), scalar.draws()) << n;
    }
}

TEST(RngFill, FillNormalConsumesAndLeavesBoxMullerCache)
{
    // A scalar normal() caches the unpaired sin; the bulk fill must
    // consume that cache first. An odd-length fill then leaves its own
    // trailing sin cached for the next scalar call.
    Rng bulk(31337), scalar(31337);
    ASSERT_EQ(bulk.normal(), scalar.normal()); // both now hold a cache
    std::vector<double> got(5);                // odd: ends mid-pair
    bulk.fillNormal(std::span<double>(got));
    for (double g : got)
        ASSERT_EQ(g, scalar.normal());
    // Crossing back to scalar: the bulk fill's cached sin comes out.
    EXPECT_EQ(bulk.normal(), scalar.normal());
    EXPECT_EQ(bulk.draws(), scalar.draws());
}

TEST(RngFill, FillNormalScaledMatchesScalar)
{
    Rng bulk(555), scalar(555);
    std::vector<double> got(9);
    bulk.fillNormal(3.0, 0.25, std::span<double>(got));
    for (double g : got)
        ASSERT_EQ(g, scalar.normal(3.0, 0.25));
}

TEST(RngFill, BulkFillPreservesDeriveStream)
{
    // deriveStream is a pure function of the seed and salt, so a
    // stream derived after a bulk fill equals one derived after the
    // equivalent scalar draws (and one derived with no draws at all).
    Rng bulk(99), scalar(99), fresh(99);
    std::vector<double> sink(33);
    bulk.fillUniform(0.0, 1.0, std::span<double>(sink));
    for (int i = 0; i < 33; ++i)
        scalar.uniform();
    Rng da = bulk.deriveStream(5);
    Rng db = scalar.deriveStream(5);
    Rng dc = fresh.deriveStream(5);
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t v = da.next();
        ASSERT_EQ(v, db.next());
        ASSERT_EQ(v, dc.next());
    }
}

/** Property sweep: uniform(lo, hi) stays in range for many ranges. */
class UniformRangeTest
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(UniformRangeTest, StaysInRange)
{
    const auto [lo, hi] = GetParam();
    Rng rng(1234);
    for (int i = 0; i < 2000; ++i) {
        const double u = rng.uniform(lo, hi);
        EXPECT_GE(u, lo);
        EXPECT_LE(u, hi);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, UniformRangeTest,
    ::testing::Values(std::pair{0.0, 1.0}, std::pair{-1.0, 1.0},
                      std::pair{1e-9, 2e-9}, std::pair{-1e6, 1e6},
                      std::pair{5.0, 5.0}));

} // namespace
