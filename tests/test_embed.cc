/**
 * @file
 * Tests for the rectangular-grid near-square embedding (Theorem 2's
 * substrate; see DESIGN.md for the documented substitution).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "layout/embed.hh"

namespace
{

using vsync::layout::EmbedStats;
using vsync::layout::embedMeshNearSquare;
using vsync::layout::Layout;

TEST(Embed, SquareInputIsUntouched)
{
    EmbedStats stats;
    const Layout l = embedMeshNearSquare(8, 8, 2.0, &stats);
    EXPECT_EQ(stats.folds, 0);
    EXPECT_DOUBLE_EQ(stats.dilation, 1.0);
    EXPECT_TRUE(l.validate(false));
}

TEST(Embed, StronglyRectangularBecomesNearSquare)
{
    EmbedStats stats;
    const Layout l = embedMeshNearSquare(4, 64, 2.0, &stats);
    EXPECT_TRUE(l.validate(false));
    EXPECT_LE(stats.aspectRatio, 2.5);
    EXPECT_GT(stats.folds, 0);
}

TEST(Embed, AreaFactorBounded)
{
    for (int cols : {16, 32, 64, 128}) {
        EmbedStats stats;
        embedMeshNearSquare(4, cols, 2.0, &stats);
        // The interleaved fold preserves cell count; the bounding box
        // stays within a small constant of the cell area.
        EXPECT_LE(stats.areaFactor, 4.0) << "cols=" << cols;
    }
}

TEST(Embed, CellsStayDistinct)
{
    const Layout l = embedMeshNearSquare(2, 32, 2.0, nullptr);
    EXPECT_TRUE(l.validate(false)); // includes pairwise spacing check
}

TEST(Embed, GraphIsPreserved)
{
    EmbedStats stats;
    const Layout l = embedMeshNearSquare(3, 24, 2.0, &stats);
    // 3x24 mesh: undirected edges = 3*23 + 2*24 = 117, directed 234.
    EXPECT_EQ(l.comm().edgeCount(), 234u);
    EXPECT_TRUE(l.comm().isConnected());
}

TEST(Embed, DilationGrowsSlowlyWithAspect)
{
    // The documented substitution: dilation O(sqrt(aspect)), not O(1).
    EmbedStats s16, s64;
    embedMeshNearSquare(4, 4 * 16, 2.0, &s16);
    embedMeshNearSquare(4, 4 * 64, 2.0, &s64);
    EXPECT_GE(s64.dilation, s16.dilation);
    // sqrt(aspect) law: quadrupling the aspect ratio should no more
    // than roughly double the dilation (allow slack for rounding).
    EXPECT_LE(s64.dilation, 3.0 * s16.dilation);
}

} // namespace
