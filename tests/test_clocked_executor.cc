/**
 * @file
 * Tests for clocked execution under skew: correct simulation when
 * constraints hold (Theorems 2/3) and detected corruption when they
 * break.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/skew_analysis.hh"
#include "layout/generators.hh"
#include "systolic/clocked_executor.hh"
#include "systolic/fir.hh"
#include "systolic/sort.hh"

namespace
{

using namespace vsync;
using namespace vsync::systolic;

LinkTiming
testTiming()
{
    LinkTiming t;
    t.setup = 0.5;
    t.hold = 0.25;
    t.clkToQ = 0.5;
    t.deltaMin = 0.5;
    t.deltaMax = 2.0;
    return t;
}

TEST(ClockedExecutor, ZeroSkewMatchesIdeal)
{
    SystolicArray a = buildFir({1.0, -2.0, 0.5});
    const std::vector<Word> xs{1, 2, 3, 4, 5};
    const int cycles = 12;
    const Trace ideal = runIdeal(a, cycles, firInputs(xs));

    const std::vector<Time> offsets(a.size(), 0.0);
    const auto report = runClocked(a, cycles, firInputs(xs), offsets,
                                   10.0, testTiming());
    EXPECT_TRUE(report.correct);
    EXPECT_EQ(report.setupViolations, 0u);
    EXPECT_EQ(report.holdViolations, 0u);
    EXPECT_TRUE(report.trace.matches(ideal));
}

TEST(ClockedExecutor, BoundedSkewStillCorrectAtSafePeriod)
{
    SystolicArray a = buildFir({2.0, 1.0});
    const std::vector<Word> xs{3, 1, 4};
    // Skews within one pitch of a spine-clocked array.
    const std::vector<Time> offsets{0.0, 0.6};
    const LinkTiming timing = testTiming();
    const Time safe = minSafePeriod(a, offsets, timing);
    EXPECT_TRUE(holdSafe(a, offsets, timing));

    const int cycles = 8;
    const Trace ideal = runIdeal(a, cycles, firInputs(xs));
    const auto report =
        runClocked(a, cycles, firInputs(xs), offsets, safe, timing);
    EXPECT_TRUE(report.correct);
    EXPECT_TRUE(report.trace.matches(ideal));
}

TEST(ClockedExecutor, JustBelowSafePeriodViolatesSetup)
{
    SystolicArray a = buildFir({2.0, 1.0});
    // Source clock later than destination: skew eats into setup.
    const std::vector<Time> offsets{0.6, 0.0};
    const LinkTiming timing = testTiming();
    const Time safe = minSafePeriod(a, offsets, timing);
    EXPECT_DOUBLE_EQ(safe, 3.6);
    const auto report = runClocked(a, 8, firInputs({1.0}), offsets,
                                   safe - 0.01, timing);
    EXPECT_FALSE(report.correct);
    EXPECT_GT(report.setupViolations, 0u);
}

TEST(ClockedExecutor, ViolationsCorruptDownstreamData)
{
    SystolicArray a = buildFir({1.0, 1.0, 1.0});
    // Make the middle link hopeless: cell 1's clock is far later than
    // cell 2's, so transfers 1 -> 2 miss setup at this period.
    const std::vector<Time> offsets{0.0, 5.0, 0.0};
    const auto report = runClocked(a, 10, firInputs({1, 2, 3}), offsets,
                                   6.0, testTiming());
    EXPECT_FALSE(report.correct);
    // The corrupted link injects NaN which reaches the y output.
    const auto &y = report.trace.of(2, 1);
    bool saw_nan = false;
    for (Word v : y)
        saw_nan = saw_nan || std::isnan(v);
    EXPECT_TRUE(saw_nan);
}

TEST(ClockedExecutor, HoldViolationDetectedWhenDestinationLate)
{
    SystolicArray a = buildFir({1.0, 1.0});
    // Destination clock much later than source: race-through danger.
    const std::vector<Time> offsets{0.0, 2.0};
    const LinkTiming timing = testTiming();
    // clkToQ + deltaMin - hold = 0.75 < 2.0 -> hold violation on 0->1.
    EXPECT_FALSE(holdSafe(a, offsets, timing));
    const auto report = runClocked(a, 6, firInputs({1.0}), offsets,
                                   100.0, timing);
    EXPECT_GT(report.holdViolations, 0u);
    EXPECT_FALSE(report.correct);
}

TEST(ClockedExecutor, MinSafePeriodFloorsAtIntrinsicDelay)
{
    SystolicArray a = buildFir({1.0, 1.0});
    const std::vector<Time> zero(a.size(), 0.0);
    const LinkTiming timing = testTiming();
    // No skew: period = clkToQ + deltaMax + setup.
    EXPECT_DOUBLE_EQ(minSafePeriod(a, zero, timing), 3.0);
}

TEST(ClockedExecutor, SpineSkewOffsetsRunBidirectionalTraffic)
{
    // Odd-even sort uses edges in both directions, so the spine's
    // monotone clock offsets stress setup one way and hold the other.
    const std::vector<Word> keys{9, 2, 7, 1, 8, 3};
    SystolicArray arr = buildOESort(keys);
    const layout::Layout l = layout::linearLayout(6);
    const auto tree = clocktree::buildSpine(l);

    Rng rng(55);
    const auto inst =
        core::sampleSkewInstance(l, tree, core::WireDelay{0.05, 0.005},
                                 rng);
    std::vector<Time> offsets;
    for (CellId c = 0; c < 6; ++c)
        offsets.push_back(inst.arrival[tree.nodeOfCell(c)]);

    const LinkTiming timing = testTiming();
    ASSERT_TRUE(holdSafe(arr, offsets, timing));
    const Time safe = minSafePeriod(arr, offsets, timing);
    const auto report =
        runClocked(arr, oeSortCycles(6), nullptr, offsets, safe, timing);
    EXPECT_TRUE(report.correct);
    for (int i = 0; i + 1 < 6; ++i)
        EXPECT_LE(report.trace.finalStates[i][0],
                  report.trace.finalStates[i + 1][0]);
}

/** Property: at the analytic safe period the run always matches the
 *  ideal; one tick below it never does (for positive skews). */
class SafePeriodBoundary : public ::testing::TestWithParam<double>
{
};

TEST_P(SafePeriodBoundary, TightBoundary)
{
    const double skew = GetParam();
    SystolicArray a = buildFir({1.0, 2.0});
    const std::vector<Time> offsets{skew, 0.0}; // src later than dst
    const LinkTiming timing = testTiming();
    ASSERT_TRUE(holdSafe(a, offsets, timing));
    const Time safe = minSafePeriod(a, offsets, timing);
    EXPECT_DOUBLE_EQ(safe, 3.0 + skew);

    const auto good = runClocked(a, 6, firInputs({1.0}), offsets, safe,
                                 timing);
    EXPECT_TRUE(good.correct);
    const auto bad = runClocked(a, 6, firInputs({1.0}), offsets,
                                safe - 1e-6, timing);
    EXPECT_FALSE(bad.correct);
}

INSTANTIATE_TEST_SUITE_P(Skews, SafePeriodBoundary,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0, 3.0));

} // namespace
