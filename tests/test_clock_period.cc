/**
 * @file
 * Tests for clock period accounting (A5-A7).
 */

#include <gtest/gtest.h>

#include "clocktree/builders.hh"
#include "clocktree/buffering.hh"
#include "core/clock_period.hh"
#include "layout/generators.hh"

namespace
{

using namespace vsync;
using namespace vsync::core;

ClockParams
testParams()
{
    ClockParams p;
    p.alpha = 0.1;
    p.m = 0.05;
    p.eps = 0.005;
    p.bufferDelay = 0.2;
    p.bufferSpacing = 4.0;
    p.delta = 2.0;
    return p;
}

TEST(ClockPeriod, EquipotentialTauTracksTreeDepth)
{
    const ClockParams params = testParams();
    const SkewModel model = SkewModel::summation(params.m, params.eps);

    const layout::Layout small = layout::linearLayout(16);
    const layout::Layout large = layout::linearLayout(256);
    const auto ts = clocktree::buildSpine(small);
    const auto tl = clocktree::buildSpine(large);

    const auto ps = clockPeriod(analyzeSkew(small, ts, model), ts,
                                params, ClockingMode::Equipotential);
    const auto pl = clockPeriod(analyzeSkew(large, tl, model), tl,
                                params, ClockingMode::Equipotential);
    // A6: tau = alpha * P grows with the array.
    EXPECT_DOUBLE_EQ(ps.tau, 0.1 * 16.0);
    EXPECT_DOUBLE_EQ(pl.tau, 0.1 * 256.0);
    EXPECT_GT(pl.period, ps.period);
}

TEST(ClockPeriod, PipelinedTauIndependentOfSize)
{
    const ClockParams params = testParams();
    const SkewModel model = SkewModel::summation(params.m, params.eps);

    Time tau16 = 0.0, tau1024 = 0.0;
    for (int n : {16, 1024}) {
        const layout::Layout l = layout::linearLayout(n);
        const auto t = clocktree::buildSpine(l);
        const auto p = clockPeriod(analyzeSkew(l, t, model), t, params,
                                   ClockingMode::Pipelined);
        (n == 16 ? tau16 : tau1024) = p.tau;
    }
    EXPECT_DOUBLE_EQ(tau16, tau1024);
    // tau = bufferDelay + (m + eps) * spacing.
    EXPECT_NEAR(tau16, 0.2 + 0.055 * 4.0, 1e-12);
}

TEST(ClockPeriod, PeriodIsSumOfComponents)
{
    const ClockParams params = testParams();
    const SkewModel model = SkewModel::summation(params.m, params.eps);
    const layout::Layout l = layout::linearLayout(64);
    const auto t = clocktree::buildSpine(l);
    const auto p = clockPeriod(analyzeSkew(l, t, model), t, params,
                               ClockingMode::Pipelined);
    EXPECT_DOUBLE_EQ(p.period, p.sigma + p.delta + p.tau);
    EXPECT_DOUBLE_EQ(p.delta, params.delta);
    EXPECT_DOUBLE_EQ(p.sigma, 0.055); // (m+eps) * 1 pitch
}

TEST(ClockPeriod, AltFormulaSameGrowthClass)
{
    const ClockParams params = testParams();
    const SkewModel model = SkewModel::summation(params.m, params.eps);
    const layout::Layout l = layout::linearLayout(64);
    const auto t = clocktree::buildSpine(l);
    const auto p = clockPeriod(analyzeSkew(l, t, model), t, params,
                               ClockingMode::Pipelined);
    EXPECT_DOUBLE_EQ(p.altPeriod,
                     std::max(p.tau, 2.0 * p.sigma + p.delta));
    // Both formulas bounded by constants for a spine-clocked 1-D array.
    EXPECT_LT(p.altPeriod, 10.0);
}

TEST(PipelinedTau, UsesActualSegmentLengths)
{
    const ClockParams params = testParams();
    clocktree::ClockTree t;
    const NodeId root = t.addRoot({0, 0});
    t.addChild(root, {10, 0});
    const auto buffered =
        clocktree::BufferedClockTree::insertBuffers(t, 4.0);
    // Longest segment is 4.0 -> tau = 0.2 + 0.055 * 4.
    EXPECT_NEAR(pipelinedTau(buffered, params), 0.42, 1e-12);
}

TEST(ClockPeriod, ModeNames)
{
    EXPECT_EQ(clockingModeName(ClockingMode::Equipotential),
              "equipotential");
    EXPECT_EQ(clockingModeName(ClockingMode::Pipelined), "pipelined");
}

} // namespace
