/**
 * @file
 * Tests for points, paths and rectangles.
 */

#include <gtest/gtest.h>

#include "geom/path.hh"
#include "geom/point.hh"
#include "geom/rect.hh"

namespace
{

using vsync::geom::lRoute;
using vsync::geom::Path;
using vsync::geom::Point;
using vsync::geom::Rect;
using vsync::geom::zRoute;

TEST(Point, Distances)
{
    const Point a{0, 0}, b{3, 4};
    EXPECT_DOUBLE_EQ(manhattan(a, b), 7.0);
    EXPECT_DOUBLE_EQ(euclidean(a, b), 5.0);
}

TEST(Point, Arithmetic)
{
    const Point a{1, 2}, b{3, -1};
    EXPECT_EQ(a + b, Point(4, 1));
    EXPECT_EQ(b - a, Point(2, -3));
    EXPECT_EQ(a * 2.0, Point(2, 4));
}

TEST(Path, LengthOfPolyline)
{
    Path p({{0, 0}, {2, 0}, {2, 3}});
    EXPECT_DOUBLE_EQ(p.length(), 5.0);
    EXPECT_FALSE(p.empty());
    EXPECT_EQ(p.front(), Point(0, 0));
    EXPECT_EQ(p.back(), Point(2, 3));
}

TEST(Path, EmptyAndSinglePoint)
{
    Path p;
    EXPECT_TRUE(p.empty());
    p.append({1, 1});
    EXPECT_TRUE(p.empty()); // one point = no segments
    EXPECT_DOUBLE_EQ(p.length(), 0.0);
}

TEST(Path, PointAtInterpolates)
{
    Path p({{0, 0}, {2, 0}, {2, 3}});
    EXPECT_EQ(p.pointAt(0.0), Point(0, 0));
    EXPECT_EQ(p.pointAt(1.0), Point(1, 0));
    EXPECT_EQ(p.pointAt(2.0), Point(2, 0));
    EXPECT_EQ(p.pointAt(3.5), Point(2, 1.5));
    EXPECT_EQ(p.pointAt(99.0), Point(2, 3)); // clamped
    EXPECT_EQ(p.pointAt(-1.0), Point(0, 0)); // clamped
}

TEST(Path, ExtendMergesSharedJoint)
{
    Path a({{0, 0}, {1, 0}});
    Path b({{1, 0}, {1, 2}});
    a.extend(b);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_DOUBLE_EQ(a.length(), 3.0);
}

TEST(Routes, LRouteShape)
{
    const Path p = lRoute({0, 0}, {3, 4});
    EXPECT_EQ(p.size(), 3u);
    EXPECT_EQ(p[1], Point(3, 0));
    EXPECT_DOUBLE_EQ(p.length(), 7.0);
}

TEST(Routes, LRouteDegeneratesWhenAligned)
{
    const Path p = lRoute({0, 0}, {0, 5});
    EXPECT_EQ(p.size(), 2u);
    EXPECT_DOUBLE_EQ(p.length(), 5.0);
}

TEST(Routes, ZRouteLengthEqualsManhattan)
{
    const Path p = zRoute({0, 0}, {4, 2});
    EXPECT_DOUBLE_EQ(p.length(), 6.0);
    EXPECT_EQ(p.size(), 4u);
}

TEST(Rect, AreaAspectContains)
{
    Rect r{0, 0, 4, 2};
    EXPECT_DOUBLE_EQ(r.area(), 8.0);
    EXPECT_DOUBLE_EQ(r.aspectRatio(), 2.0);
    EXPECT_TRUE(r.contains({2, 1}));
    EXPECT_FALSE(r.contains({5, 1}));
}

TEST(Rect, BoundingBoxOfPoints)
{
    const std::vector<Point> pts{{1, 5}, {-2, 0}, {3, 3}};
    const Rect r = Rect::boundingBox(pts.begin(), pts.end());
    EXPECT_DOUBLE_EQ(r.x0, -2.0);
    EXPECT_DOUBLE_EQ(r.y0, 0.0);
    EXPECT_DOUBLE_EQ(r.x1, 3.0);
    EXPECT_DOUBLE_EQ(r.y1, 5.0);
}

TEST(Rect, DegenerateAspectIsInfinite)
{
    Rect r{0, 0, 0, 4};
    EXPECT_EQ(r.aspectRatio(), vsync::infinity);
}

} // namespace
