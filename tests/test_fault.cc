/**
 * @file
 * Tests for the fault-injection subsystem: deterministic fault plans,
 * the injector seams on desim/clocktree/hybrid targets, the TRIX
 * redundant grid's median voting, and the resilience sweeps'
 * bit-identical-across-threads guarantee.
 */

#include <gtest/gtest.h>

#include <vector>

#include "clocktree/buffering.hh"
#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/advisor.hh"
#include "core/skew_analysis.hh"
#include "desim/clock_net.hh"
#include "desim/simulator.hh"
#include "fault/fault_plan.hh"
#include "fault/injector.hh"
#include "fault/trix_grid.hh"
#include "hybrid/handshake.hh"
#include "hybrid/partition.hh"
#include "layout/generators.hh"
#include "mc/resilience.hh"

namespace
{

using namespace vsync;
using namespace vsync::fault;

const unsigned kThreadCounts[] = {1, 2, 8};

FaultUniverse
testUniverse()
{
    FaultUniverse u;
    u.bufferSites = 200;
    u.clockNets = 100;
    u.handshakeWires = 60;
    return u;
}

// --- Fault plans. ---------------------------------------------------

TEST(FaultPlan, ForTrialIsAPureFunctionOfSeedAndTrial)
{
    const FaultUniverse u = testUniverse();
    const FaultRates rates = FaultRates::mixed(0.05);
    const FaultPlan a = FaultPlan::forTrial(u, rates, 42, 7);
    const FaultPlan b = FaultPlan::forTrial(u, rates, 42, 7);
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a.empty());
    // Different trials and different seeds give different plans.
    EXPECT_FALSE(a == FaultPlan::forTrial(u, rates, 42, 8));
    EXPECT_FALSE(a == FaultPlan::forTrial(u, rates, 43, 7));
}

TEST(FaultPlan, KindsDrawFromIndependentSubstreams)
{
    // Zeroing one kind's rate must not move another kind's faults.
    const FaultUniverse u = testUniverse();
    FaultRates all = FaultRates::uniform(0.1);
    FaultRates noDrift = all;
    noDrift.delayDrift = 0.0;
    const FaultPlan withDrift = FaultPlan::forTrial(u, all, 1, 0);
    const FaultPlan withoutDrift = FaultPlan::forTrial(u, noDrift, 1, 0);

    std::vector<Fault> dead1, dead2;
    for (const Fault &f : withDrift.faults())
        if (f.kind == FaultKind::DeadBuffer)
            dead1.push_back(f);
    for (const Fault &f : withoutDrift.faults())
        if (f.kind == FaultKind::DeadBuffer)
            dead2.push_back(f);
    ASSERT_EQ(dead1.size(), dead2.size());
    for (std::size_t i = 0; i < dead1.size(); ++i)
        EXPECT_EQ(dead1[i].site, dead2[i].site);
    EXPECT_GT(withDrift.count(FaultKind::DelayDrift), 0u);
    EXPECT_EQ(withoutDrift.count(FaultKind::DelayDrift), 0u);
}

TEST(FaultPlan, RatesScaleTheFaultCount)
{
    const FaultUniverse u = testUniverse();
    std::size_t sparse = 0, heavy = 0;
    for (std::uint64_t t = 0; t < 32; ++t) {
        sparse +=
            FaultPlan::forTrial(u, FaultRates::uniform(0.01), 5, t).size();
        heavy +=
            FaultPlan::forTrial(u, FaultRates::uniform(0.2), 5, t).size();
    }
    EXPECT_LT(sparse, heavy);
    EXPECT_TRUE(
        FaultPlan::forTrial(u, FaultRates::uniform(0.0), 5, 0).empty());
}

// --- Injector seams on a simulated clock tree. ----------------------

/** A buffered 8x8 H-tree driven with nominal delays under @p plan. */
DistributionOutcome
treeOutcome(const FaultPlan &plan)
{
    const layout::Layout l = layout::meshLayout(8, 8);
    const auto tree = clocktree::buildHTreeGrid(l, 8, 8);
    const auto btree =
        clocktree::BufferedClockTree::insertBuffers(tree, 4.0);
    const desim::ClockNet::DelayFn delay_of =
        [](const clocktree::BufferedSite &site, std::size_t) {
            return desim::EdgeDelays::same(
                site.wireFromParent * 0.05 + (site.isBuffer ? 0.2 : 0.0));
        };
    return simulateTreeUnderFaults(l, tree, btree, delay_of, plan);
}

TEST(FaultInjector, HealthyTreeClocksEveryCell)
{
    const DistributionOutcome out = treeOutcome(FaultPlan());
    EXPECT_DOUBLE_EQ(out.clockedFraction, 1.0);
    EXPECT_EQ(out.clockedPairs, out.pairCount);
    EXPECT_EQ(out.faultCount, 0u);
}

TEST(FaultInjector, DeadBufferSilencesTheSubtreeBelow)
{
    // Killing the stage feeding site 1 (a child of the root) must
    // leave part of the array unclocked -- and only part.
    const DistributionOutcome out =
        treeOutcome(FaultPlan::singleDeadBuffer(0));
    EXPECT_LT(out.clockedFraction, 1.0);
    EXPECT_GT(out.clockedFraction, 0.0);
    EXPECT_LT(out.clockedPairs, out.pairCount);
}

TEST(FaultInjector, DelayDriftSkewsButDoesNotSilence)
{
    FaultPlan plan;
    plan.add({FaultKind::DelayDrift, 0, 0.0, 3.0, false});
    const DistributionOutcome healthy = treeOutcome(FaultPlan());
    const DistributionOutcome out = treeOutcome(plan);
    EXPECT_DOUBLE_EQ(out.clockedFraction, 1.0);
    EXPECT_GT(out.maxCommSkew, healthy.maxCommSkew);
}

TEST(FaultInjector, StuckLowNetSilencesItsSubtree)
{
    // Site 1 stuck at low: everything below it never sees an edge.
    FaultPlan plan;
    plan.add({FaultKind::StuckAtNet, 1, 0.0, 1.0, false});
    const DistributionOutcome out = treeOutcome(plan);
    EXPECT_LT(out.clockedFraction, 1.0);
}

TEST(FaultInjector, StuckHighNetDeliversOnePrematureEdge)
{
    // Site 1 stuck at high from t = 0: its subtree sees a t = 0 rising
    // edge (so every cell is "clocked") but with the full root-to-site
    // latency as skew against the healthy half.
    FaultPlan plan;
    plan.add({FaultKind::StuckAtNet, 1, 0.0, 1.0, true});
    const DistributionOutcome healthy = treeOutcome(FaultPlan());
    const DistributionOutcome out = treeOutcome(plan);
    EXPECT_DOUBLE_EQ(out.clockedFraction, 1.0);
    EXPECT_GT(out.maxCommSkew, healthy.maxCommSkew);
}

TEST(FaultInjector, TransientGlitchInjectsASpuriousPulse)
{
    // A glitch on an otherwise idle root driver: the spurious pulse
    // propagates through the grid like a real clock edge.
    desim::Simulator sim;
    TrixGrid grid(sim, 1, 1, [](int, int, int) { return 0.1; });
    FaultPlan plan;
    plan.add({FaultKind::TransientGlitch, grid.nodeCount() /* root */,
              2.0, 0.5, false});
    FaultInjector injector(sim, plan);
    injector.armTrixGrid(grid);
    sim.run();
    EXPECT_NEAR(grid.arrival(0, 0), 2.1, 1e-12);
}

TEST(FaultInjector, OnsetDelaysTheFault)
{
    // A buffer dying *after* the pulse passed changes nothing.
    FaultPlan late;
    late.add({FaultKind::DeadBuffer, 0, 1e6, 1.0, false});
    const DistributionOutcome healthy = treeOutcome(FaultPlan());
    const DistributionOutcome out = treeOutcome(late);
    EXPECT_DOUBLE_EQ(out.clockedFraction, healthy.clockedFraction);
    EXPECT_DOUBLE_EQ(out.maxCommSkew, healthy.maxCommSkew);
}

// --- TRIX grid. -----------------------------------------------------

TEST(TrixGrid, NominalArrivalsAreUniformPerLayer)
{
    desim::Simulator sim;
    TrixGrid grid(sim, 4, 4, [](int, int, int) { return 0.25; });
    grid.pulse();
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            EXPECT_DOUBLE_EQ(grid.arrival(r, c),
                             TrixGrid::nominalArrival(r, 0.25));
}

TEST(TrixGrid, MedianVotingMasksAnySingleDeadLink)
{
    // Every link of a 4x4 grid, including the interior node links the
    // issue names, killed one at a time: arrivals must be unchanged.
    const layout::Layout l = layout::meshLayout(4, 4);
    const auto delay_of = [](int, int, int) { return 0.25; };
    const DistributionOutcome healthy =
        simulateGridUnderFaults(l, 4, 4, delay_of, FaultPlan());
    ASSERT_DOUBLE_EQ(healthy.clockedFraction, 1.0);

    const std::size_t links = TrixGrid::universe(4, 4).bufferSites;
    for (std::size_t link = 0; link < links; ++link) {
        const DistributionOutcome out = simulateGridUnderFaults(
            l, 4, 4, delay_of, FaultPlan::singleDeadBuffer(link));
        EXPECT_DOUBLE_EQ(out.clockedFraction, 1.0) << "link " << link;
        for (std::size_t c = 0; c < out.cellArrival.size(); ++c)
            EXPECT_DOUBLE_EQ(out.cellArrival[c], healthy.cellArrival[c])
                << "link " << link << " cell " << c;
    }
}

TEST(TrixGrid, TwoDeadLinksIntoOneNodeDoSilenceIt)
{
    // The single-fault guarantee is tight: two dead links into the
    // same node starve its median vote and the loss propagates.
    const layout::Layout l = layout::meshLayout(4, 4);
    const auto delay_of = [](int, int, int) { return 0.25; };
    FaultPlan plan;
    desim::Simulator sim;
    TrixGrid probe(sim, 4, 4, delay_of);
    plan.add({FaultKind::DeadBuffer, probe.linkIndex(1, 1, 0), 0.0, 1.0,
              false});
    plan.add({FaultKind::DeadBuffer, probe.linkIndex(1, 1, 1), 0.0, 1.0,
              false});
    const DistributionOutcome out =
        simulateGridUnderFaults(l, 4, 4, delay_of, plan);
    EXPECT_LT(out.clockedFraction, 1.0);
    EXPECT_EQ(out.cellArrival[1 * 4 + 1], infinity);
}

TEST(TrixGrid, SharesTheSkewQuerySurfaceWithTrees)
{
    // Both distributions reduce to core::skewFromArrivals on the same
    // layout, so their outcomes are directly comparable.
    const layout::Layout l = layout::meshLayout(4, 4);
    const DistributionOutcome grid = simulateGridUnderFaults(
        l, 4, 4, [](int, int, int) { return 0.25; }, FaultPlan());
    const core::ArrivalSkew direct =
        core::skewFromArrivals(l, grid.cellArrival);
    EXPECT_DOUBLE_EQ(direct.maxCommSkew, grid.maxCommSkew);
    EXPECT_DOUBLE_EQ(direct.clockedFraction, grid.clockedFraction);
    EXPECT_EQ(direct.pairCount, grid.pairCount);
}

// --- Severed handshake wires. ---------------------------------------

TEST(FaultInjector, SeveredWireStallsExactlyTheAffectedPair)
{
    desim::Simulator sim;
    hybrid::HandshakePair severedPair(sim, 1.0, 0.5);
    hybrid::HandshakePair healthyPair(sim, 1.0, 0.5);

    FaultInjector injector(sim, FaultPlan::singleSeveredWire(0));
    injector.armHandshakes({&severedPair, &healthyPair});
    EXPECT_EQ(injector.armed(), 1u);

    // The severed pair never completes a round; the healthy pair on
    // the same simulator is untouched and completes all of its own.
    EXPECT_TRUE(severedPair.runBounded(3, 1000.0).empty());
    const auto done = healthyPair.run(3);
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(severedPair.roundsCompleted(), 0u);
}

TEST(FaultInjector, SeveredAckWireAlsoStalls)
{
    desim::Simulator sim;
    hybrid::HandshakePair pair(sim, 1.0, 0.5);
    FaultInjector injector(sim, FaultPlan::singleSeveredWire(1));
    injector.armHandshakes({&pair});
    EXPECT_TRUE(pair.runBounded(2, 1000.0).empty());
}

TEST(HybridNetwork, SeveredWireStallsOnlyElementsWaitingOnIt)
{
    // Network-level counterpart: severing one element-pair link makes
    // its endpoints (and transitively, their waiters) stall, while a
    // single round leaves distant elements finished.
    const layout::Layout l = layout::meshLayout(16, 16);
    const hybrid::Partition part = hybrid::partitionGrid(l, 4.0);
    const hybrid::HybridNetwork net(part, hybrid::HybridParams{});
    const auto res = net.simulate(
        1, nullptr, [](int a, int b) { return a == 0 || b == 0; });
    std::size_t alive = 0;
    for (const Time t : res.lastCompletion)
        alive += t < infinity;
    EXPECT_LT(alive, res.lastCompletion.size());
    EXPECT_GT(alive, 0u);
}

// --- Resilience sweeps. ---------------------------------------------

TEST(Resilience, SweepIsBitIdenticalAcrossThreadCounts)
{
    const layout::Layout l = layout::meshLayout(8, 8);
    const mc::ResilienceConfig rc;
    mc::McConfig cfg;
    cfg.trials = 24;
    cfg.seed = 99;

    std::vector<mc::ResiliencePoint> runs;
    for (const unsigned tc : kThreadCounts) {
        cfg.threads = tc;
        runs.push_back(mc::resilienceAtRate(
            l, 8, 8, mc::DistributionKind::TrixGrid, 0.03, rc, cfg));
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
        EXPECT_TRUE(
            runs[i].maxCommSkew.bitIdentical(runs[0].maxCommSkew));
        EXPECT_TRUE(runs[i].clockedFraction.bitIdentical(
            runs[0].clockedFraction));
        EXPECT_DOUBLE_EQ(runs[i].meanFaults, runs[0].meanFaults);
    }
    EXPECT_GT(runs[0].meanFaults, 0.0);
}

TEST(Resilience, HealthyBaselineClocksEverything)
{
    const layout::Layout l = layout::meshLayout(8, 8);
    const mc::ResilienceConfig rc;
    mc::McConfig cfg;
    cfg.trials = 8;
    for (const mc::DistributionKind kind :
         {mc::DistributionKind::HTree, mc::DistributionKind::Spine,
          mc::DistributionKind::TrixGrid}) {
        const mc::ResiliencePoint p =
            mc::resilienceAtRate(l, 8, 8, kind, 0.0, rc, cfg);
        EXPECT_DOUBLE_EQ(p.clockedFraction.mean(), 1.0)
            << mc::distributionKindName(kind);
        EXPECT_DOUBLE_EQ(p.meanFaults, 0.0);
    }
}

TEST(Resilience, GridDegradesMoreGracefullyThanTree)
{
    const layout::Layout l = layout::meshLayout(8, 8);
    const mc::ResilienceConfig rc;
    mc::McConfig cfg;
    cfg.trials = 32;
    const mc::ResiliencePoint tree = mc::resilienceAtRate(
        l, 8, 8, mc::DistributionKind::HTree, 0.02, rc, cfg);
    const mc::ResiliencePoint grid = mc::resilienceAtRate(
        l, 8, 8, mc::DistributionKind::TrixGrid, 0.02, rc, cfg);
    EXPECT_GT(grid.clockedFraction.mean(),
              tree.clockedFraction.mean());
}

TEST(Resilience, HybridSurvivalFallsWithFaultRate)
{
    const layout::Layout l = layout::meshLayout(16, 16);
    const hybrid::HybridNetwork net(hybrid::partitionGrid(l, 4.0),
                                    hybrid::HybridParams{});
    mc::McConfig cfg;
    cfg.trials = 24;
    const mc::McResult none = mc::hybridSurvivalSweep(net, 0.0, 8, cfg);
    const mc::McResult some = mc::hybridSurvivalSweep(net, 0.05, 8, cfg);
    EXPECT_DOUBLE_EQ(none.mean(), 1.0);
    EXPECT_LT(some.mean(), 1.0);

    // Bit-identical across thread counts, like every sweep.
    for (const unsigned tc : kThreadCounts) {
        mc::McConfig alt = cfg;
        alt.threads = tc;
        EXPECT_TRUE(mc::hybridSurvivalSweep(net, 0.05, 8, alt)
                        .bitIdentical(some));
    }
}

// --- Advisor integration. -------------------------------------------

TEST(Advisor, FaultRateMovesTreeSchemesToTheRedundantGrid)
{
    core::TechnologyAssumptions tech;
    tech.skewModel = core::SkewModelKind::Difference;
    const auto healthy =
        core::adviseScheme(graph::TopologyKind::Mesh, tech);
    EXPECT_EQ(healthy.scheme, core::SyncScheme::PipelinedHTree);

    tech.faultRate = 0.01;
    const auto faulty =
        core::adviseScheme(graph::TopologyKind::Mesh, tech);
    EXPECT_EQ(faulty.scheme, core::SyncScheme::RedundantGridTrix);
    EXPECT_NE(faulty.justification.find("median"), std::string::npos);

    // Handshake-based picks already degrade gracefully and stand.
    tech.skewModel = core::SkewModelKind::Summation;
    const auto hybridPick =
        core::adviseScheme(graph::TopologyKind::Mesh, tech);
    EXPECT_EQ(hybridPick.scheme, core::SyncScheme::Hybrid);
}

} // namespace
