/**
 * @file
 * Tests for the directed communication graph.
 */

#include <gtest/gtest.h>

#include "graph/graph.hh"

namespace
{

using vsync::graph::Graph;

TEST(Graph, AddNodesAndEdges)
{
    Graph g(3);
    EXPECT_EQ(g.size(), 3u);
    const auto e0 = g.addEdge(0, 1);
    const auto e1 = g.addEdge(1, 2);
    EXPECT_EQ(g.edgeCount(), 2u);
    EXPECT_EQ(g.edge(e0).src, 0);
    EXPECT_EQ(g.edge(e1).dst, 2);
    EXPECT_EQ(g.addNode(), 3);
    EXPECT_EQ(g.size(), 4u);
    EXPECT_EQ(g.addNodes(2), 4);
    EXPECT_EQ(g.size(), 6u);
}

TEST(Graph, AdjacencyLists)
{
    Graph g(3);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(2, 0);
    EXPECT_EQ(g.outEdges(0).size(), 2u);
    EXPECT_EQ(g.inEdges(0).size(), 1u);
    EXPECT_EQ(g.outEdges(1).size(), 0u);
    EXPECT_EQ(g.inEdges(1).size(), 1u);
}

TEST(Graph, NeighborsDeduplicates)
{
    Graph g(3);
    g.addBidirectional(0, 1);
    g.addEdge(0, 2);
    const auto n = g.neighbors(0);
    EXPECT_EQ(n, (std::vector<vsync::CellId>{1, 2}));
}

TEST(Graph, ConnectedChecksBothDirections)
{
    Graph g(3);
    g.addEdge(0, 1);
    EXPECT_TRUE(g.connected(0, 1));
    EXPECT_TRUE(g.connected(1, 0));
    EXPECT_FALSE(g.connected(0, 2));
}

TEST(Graph, UndirectedEdgesCollapsePairs)
{
    Graph g(3);
    g.addBidirectional(0, 1);
    g.addEdge(1, 2);
    const auto ue = g.undirectedEdges();
    ASSERT_EQ(ue.size(), 2u);
    EXPECT_EQ(ue[0].src, 0);
    EXPECT_EQ(ue[0].dst, 1);
    EXPECT_EQ(ue[1].src, 1);
    EXPECT_EQ(ue[1].dst, 2);
}

TEST(Graph, ComponentsAndConnectivity)
{
    Graph g(5);
    g.addBidirectional(0, 1);
    g.addBidirectional(2, 3);
    EXPECT_EQ(g.componentCount(), 3u);
    EXPECT_FALSE(g.isConnected());
    g.addEdge(1, 2);
    g.addEdge(3, 4);
    EXPECT_TRUE(g.isConnected());
}

TEST(Graph, BfsDistances)
{
    Graph g(5);
    g.addBidirectional(0, 1);
    g.addBidirectional(1, 2);
    g.addBidirectional(2, 3);
    const auto d = g.bfsDistances(0);
    EXPECT_EQ(d[0], 0);
    EXPECT_EQ(d[1], 1);
    EXPECT_EQ(d[3], 3);
    EXPECT_EQ(d[4], -1); // unreachable
}

TEST(Graph, EmptyGraphIsNotConnected)
{
    Graph g;
    EXPECT_FALSE(g.isConnected());
}

} // namespace
