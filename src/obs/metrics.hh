/**
 * @file
 * A thread-safe, allocation-light metrics registry.
 *
 * Three metric kinds, all updatable concurrently without locks:
 *
 *  - Counter:   monotone uint64, relaxed atomic adds;
 *  - Gauge:     a double with set / add / recordMax (CAS loops);
 *  - Histogram: fixed bucket bounds chosen at registration, atomic
 *               per-bucket counts.
 *
 * Registration (name -> metric) takes a mutex; hot paths are expected
 * to resolve a metric once and hold the reference (references stay
 * valid for the registry's lifetime -- metrics live in deques).
 *
 * Export is deterministic: writeJson emits metrics sorted by name, so
 * two registries fed the same update multiset render byte-identical
 * JSON regardless of thread count or schedule. (Counter adds and
 * integer-valued histogram/gauge updates are order-independent;
 * floating-point gauge *sums* of non-representable values are the one
 * way to lose that property -- see Gauge::add.)
 */

#ifndef VSYNC_OBS_METRICS_HH
#define VSYNC_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vsync
{
class JsonWriter;
} // namespace vsync

namespace vsync::obs
{

class Sink;

/** A monotonically increasing event count. */
class Counter
{
  public:
    /** Add @p n (relaxed; sums are order-independent). */
    void
    inc(std::uint64_t n = 1)
    {
        count.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return count.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> count{0};
};

/** A point-in-time double value. */
class Gauge
{
  public:
    /** Overwrite the value (last writer wins). */
    void
    set(double x)
    {
        val.store(x, std::memory_order_relaxed);
    }

    /**
     * Add @p x (CAS loop). Exact -- and therefore order-independent --
     * only when the running sum stays exactly representable (integers
     * below 2^53, sums of equal powers of two); otherwise the final
     * bits may depend on update order.
     */
    void add(double x);

    /** Raise the value to @p x if larger (a high-water mark). */
    void recordMax(double x);

    double
    value() const
    {
        return val.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> val{0.0};
};

/** Fixed-bucket histogram: bounds chosen once, counts updated atomically. */
class Histogram
{
  public:
    /**
     * @param upper_bounds strictly increasing bucket upper bounds; a
     *        final +infinity bucket is implicit. Value v lands in the
     *        first bucket with v <= bound.
     */
    explicit Histogram(std::vector<double> upper_bounds);

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Record one observation. */
    void observe(double v);

    /** Bucket count (index bounds().size() is the overflow bucket). */
    std::uint64_t bucketCount(std::size_t i) const;

    /** Total observations. */
    std::uint64_t totalCount() const;

    const std::vector<double> &bounds() const { return upperBounds; }

  private:
    std::vector<double> upperBounds;
    /** bounds().size() + 1 buckets; deque-of-atomics is not movable,
     *  so the registry stores histograms behind stable addresses. */
    std::deque<std::atomic<std::uint64_t>> buckets;
};

/**
 * Named metrics, created on first use and exported as JSON.
 *
 * Thread safety: metric lookup/creation is serialized; updates through
 * the returned references are lock-free. Looking a name up twice
 * returns the same metric; looking it up as a different kind fatal()s.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The counter named @p name (created on first use). */
    Counter &counter(const std::string &name);

    /** The gauge named @p name (created on first use). */
    Gauge &gauge(const std::string &name);

    /**
     * The histogram named @p name. @p upper_bounds is used on first
     * creation; later lookups must pass identical bounds (or empty to
     * mean "existing").
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> upper_bounds);

    /** Number of registered metrics. */
    std::size_t size() const;

    /**
     * Write every metric, sorted by name, as one JSON object:
     * { "name": {"type": "counter", "value": n}, ... }.
     */
    void writeJson(JsonWriter &w) const;

    /** writeJson rendered to a string (golden tests, sinks). */
    std::string toJsonString() const;

    /** Render toJsonString() and hand it to @p sink. */
    void flush(Sink &sink) const;

  private:
    enum class Kind { Counter, Gauge, Histogram };
    struct Entry
    {
        Kind kind;
        Counter *counter = nullptr;
        Gauge *gauge = nullptr;
        Histogram *histogram = nullptr;
    };

    Entry &lookup(const std::string &name, Kind kind,
                  std::vector<double> bounds);

    mutable std::mutex mutex;
    std::map<std::string, Entry> entries; // sorted => deterministic JSON
    std::deque<Counter> counters;         // stable addresses
    std::deque<Gauge> gauges;
    std::deque<Histogram> histograms;
};

} // namespace vsync::obs

#endif // VSYNC_OBS_METRICS_HH
