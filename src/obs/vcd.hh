/**
 * @file
 * VCD (Value Change Dump, IEEE 1364) waveform export.
 *
 * The writer streams a standard four-part VCD document -- header,
 * variable declarations, initial $dumpvars block, timestamped value
 * changes -- viewable in GTKWave and any other VCD tool. Wires are
 * registered first (addWire), then beginDump() emits the header, then
 * change() appends transitions in non-decreasing time order, which a
 * discrete-event simulation produces naturally.
 *
 * The attach* helpers subscribe live simulation objects so every
 * transition lands in the dump automatically. They are duck-typed
 * templates (anything with value()/onChange(), or the ClockNet/
 * TrixGrid site accessors), so this header depends on nothing but the
 * writer itself and vs_obs stays below the engine libraries in the
 * link order. The writer must outlive the simulation it records.
 *
 * desim times are nanoseconds (common/types.hh); the writer's
 * timescale is 1 ps, so ticks are llround(t * 1000) and sub-ps timing
 * structure survives rounding only down to a picosecond -- ample for
 * the delay scales the paper uses.
 */

#ifndef VSYNC_OBS_VCD_HH
#define VSYNC_OBS_VCD_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vsync::obs
{

/** Streams one VCD document. */
class VcdWriter
{
  public:
    using Id = std::uint32_t;

    /** @param os destination; must outlive the writer's use. */
    explicit VcdWriter(std::ostream &os);

    VcdWriter(const VcdWriter &) = delete;
    VcdWriter &operator=(const VcdWriter &) = delete;

    /**
     * Declare a 1-bit wire. Only legal before beginDump(). Characters
     * VCD identifiers cannot hold are replaced with '_'.
     */
    Id addWire(const std::string &name, bool initial = false);

    /** Emit the header + $dumpvars initial values; call exactly once. */
    void beginDump();

    /**
     * Record wire @p id changing to @p v at time @p t (ns). Times must
     * be non-decreasing (simulation order). Only legal after
     * beginDump().
     */
    void change(Time t, Id id, bool v);

    /** Value changes recorded so far (excluding the $dumpvars block). */
    std::uint64_t changeCount() const { return changes; }

    /** Wires declared. */
    std::size_t wireCount() const { return names.size(); }

    /** The printable short identifier code VCD uses for wire @p id. */
    static std::string idCode(Id id);

  private:
    std::ostream &os;
    std::vector<std::string> names;
    std::vector<bool> initials;
    bool dumping = false;
    std::int64_t lastTick = -1;
    std::uint64_t changes = 0;
};

/**
 * Subscribe one live signal: declares a wire at the signal's current
 * value and forwards every onChange to the writer. Works for any type
 * with bool value() and onChange(fn(Time, bool)) -- desim::Signal in
 * practice.
 */
template <typename SignalT>
VcdWriter::Id
attachSignal(VcdWriter &w, SignalT &sig, const std::string &name)
{
    const VcdWriter::Id id = w.addWire(name, sig.value());
    sig.onChange([&w, id](Time t, bool v) { w.change(t, id, v); });
    return id;
}

/**
 * Subscribe every site signal of a desim::ClockNet (site 0, the root,
 * first), named <prefix><site-index>.
 */
template <typename NetT>
void
attachClockNet(VcdWriter &w, NetT &net, const std::string &prefix = "site")
{
    for (std::size_t i = 0; i < net.siteCount(); ++i)
        attachSignal(w, net.siteSignal(i), prefix + std::to_string(i));
}

/**
 * Subscribe a fault::TrixGrid: the root driver as "root" and every
 * node's median-voted output as n<row>_<col>.
 */
template <typename GridT>
void
attachTrixGrid(VcdWriter &w, GridT &grid)
{
    attachSignal(w, grid.rootSignal(), "root");
    for (int r = 0; r < grid.rows(); ++r)
        for (int c = 0; c < grid.cols(); ++c) {
            std::string name = "n";
            name += std::to_string(r);
            name += '_';
            name += std::to_string(c);
            attachSignal(w, grid.nodeSignal(r, c), name);
        }
}

} // namespace vsync::obs

#endif // VSYNC_OBS_VCD_HH
