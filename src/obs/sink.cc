#include "obs/sink.hh"

#include <ostream>

namespace vsync::obs
{

NullSink &
nullSink()
{
    static NullSink sink;
    return sink;
}

void
CaptureSink::onMetricsJson(const std::string &json)
{
    std::lock_guard<std::mutex> lock(mutex);
    metrics.push_back(json);
}

void
CaptureSink::onLogLine(LogLevel level, const std::string &line)
{
    std::lock_guard<std::mutex> lock(mutex);
    logs.emplace_back(level, line);
}

std::vector<std::string>
CaptureSink::metricsSnapshots() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return metrics;
}

std::vector<std::pair<LogLevel, std::string>>
CaptureSink::logLines() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return logs;
}

std::size_t
CaptureSink::countAtLevel(LogLevel level) const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::size_t n = 0;
    for (const auto &[lv, line] : logs)
        n += lv == level;
    return n;
}

void
CaptureSink::clear()
{
    std::lock_guard<std::mutex> lock(mutex);
    metrics.clear();
    logs.clear();
}

void
StreamSink::onMetricsJson(const std::string &json)
{
    std::lock_guard<std::mutex> lock(mutex);
    os << json << '\n';
}

void
StreamSink::onLogLine(LogLevel level, const std::string &line)
{
    std::lock_guard<std::mutex> lock(mutex);
    os << logLevelName(level) << " | " << line << '\n';
}

void
attachLogSink(Sink *sink)
{
    if (!sink) {
        setLogSink({});
        return;
    }
    setLogSink([sink](LogLevel level, const std::string &line) {
        sink->onLogLine(level, line);
    });
}

} // namespace vsync::obs
