/**
 * @file
 * Probe interfaces: the one seam instrumented engines know about.
 *
 * A probe is a passive observer an engine notifies from its hot path.
 * Engines (desim::Simulator, hybrid::HybridNetwork) hold a raw probe
 * pointer that defaults to nullptr, so the disabled cost is exactly one
 * predictable branch per notification site -- no allocation, no
 * virtual call, no lock. Enabling observability means attaching an
 * implementation (obs::MetricsSimProbe, obs::MetricsExecProbe, or the
 * do-nothing Null* probes used to measure the enabled-but-idle
 * overhead).
 *
 * This header is dependency-free on purpose: engine libraries include
 * it without linking vs_obs, which keeps the layering acyclic
 * (vs_obs -> vs_common only; engines -> this header only).
 */

#ifndef VSYNC_OBS_PROBE_HH
#define VSYNC_OBS_PROBE_HH

#include <cstddef>
#include <cstdint>

#include "common/types.hh"

namespace vsync::obs
{

/** Observer of a discrete-event simulator's dispatch loop. */
class SimProbe
{
  public:
    virtual ~SimProbe() = default;

    /**
     * An event is about to execute at sim time @p t; @p queue_depth
     * counts the pending events including this one (its maximum over a
     * run is the queue's high-water mark).
     */
    virtual void onEventDispatched(Time t, std::size_t queue_depth) = 0;

    /**
     * A delay element propagated an input transition at time @p t.
     * @p element identifies the element (opaque; stable for its
     * lifetime), so per-element fire counts can be kept.
     */
    virtual void onElementFired(const void *element, Time t) = 0;

    /**
     * A Simulator::run call returned having processed @p events events,
     * ending at sim time @p sim_time after @p wall_seconds of host
     * time (the sim-time-per-wall-second ratio is the kernel's speed).
     */
    virtual void onRunEnd(Time sim_time, double wall_seconds,
                          std::uint64_t events) = 0;
};

/** A SimProbe that does nothing: measures enabled-but-idle overhead. */
class NullSimProbe : public SimProbe
{
  public:
    void onEventDispatched(Time, std::size_t) override {}
    void onElementFired(const void *, Time) override {}
    void onRunEnd(Time, double, std::uint64_t) override {}
};

/**
 * One round of the hybrid max-plus recurrence, aggregated at the
 * source. The executor's inner loop is a handful of max/add ops per
 * element, so per-element virtual notifications would dominate it;
 * instead the executor accumulates these plain-arithmetic stats and
 * makes a single virtual call per round.
 */
struct ExecRoundStats
{
    int round = 0;           //!< round index, 0-based
    Time completion = 0.0;   //!< array-wide completion time of the round
    std::uint64_t waits = 0; //!< elements stalled on a neighbour
    Time totalWait = 0.0;    //!< summed stall time across elements
    Time maxWait = 0.0;      //!< worst single-element stall
};

/** Observer of the hybrid executor's max-plus recurrence. */
class ExecProbe
{
  public:
    virtual ~ExecProbe() = default;

    /** Round @p stats.round completed; see ExecRoundStats. */
    virtual void onRound(const ExecRoundStats &stats) = 0;
};

/** An ExecProbe that does nothing. */
class NullExecProbe : public ExecProbe
{
  public:
    void onRound(const ExecRoundStats &) override {}
};

} // namespace vsync::obs

#endif // VSYNC_OBS_PROBE_HH
