/**
 * @file
 * Registry-backed probe implementations.
 *
 * MetricsSimProbe and MetricsExecProbe translate the raw probe
 * callbacks (obs/probe.hh) into named metrics in a MetricsRegistry:
 *
 *   desim.events             counter  events dispatched
 *   desim.queue_depth_hwm    gauge    event-queue high-water mark
 *   desim.element_fires      counter  delay-element propagations
 *   desim.elements_seen      gauge    distinct elements that fired
 *   desim.max_fires_per_element gauge  hottest element's fire count
 *   desim.runs               counter  Simulator::run calls
 *   desim.sim_time_ns        gauge    sim time at last run end
 *   desim.wall_ms            gauge    accumulated host time in run()
 *   desim.events_per_wall_s  gauge    kernel speed over the last run
 *
 *   hybrid.handshake_waits   counter  element-cycles that stalled
 *   hybrid.stall_ns          gauge    accumulated stall time
 *   hybrid.max_stall_ns      gauge    worst single stall
 *   hybrid.rounds            counter  rounds simulated
 *
 * PoolMetricsObserver does the same for the ThreadPool's PoolObserver
 * seam (common/parallel.hh), making pool saturation visible next to
 * request latency when a SweepService runs behind the net:: front end:
 *
 *   pool.jobs                counter  parallelForRange jobs submitted
 *   pool.chunks              counter  chunks executed
 *   pool.active_workers      gauge    workers inside a chunk right now
 *   pool.active_workers_hwm  gauge    most workers ever concurrent
 *   pool.queue_depth_hwm     gauge    most chunks ever waiting to start
 *
 * The prefixes are configurable so several instrumented engines can
 * share one registry without colliding.
 */

#ifndef VSYNC_OBS_PROBES_HH
#define VSYNC_OBS_PROBES_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/parallel.hh"
#include "obs/metrics.hh"
#include "obs/probe.hh"

namespace vsync::obs
{

/** SimProbe recording into a MetricsRegistry. */
class MetricsSimProbe : public SimProbe
{
  public:
    explicit MetricsSimProbe(MetricsRegistry &registry,
                             const std::string &prefix = "desim");

    void onEventDispatched(Time t, std::size_t queue_depth) override;
    void onElementFired(const void *element, Time t) override;
    void onRunEnd(Time sim_time, double wall_seconds,
                  std::uint64_t events) override;

    /** Distinct elements that fired at least once. */
    std::size_t elementsSeen() const { return perElement.size(); }

    /** Fire count of the hottest element. */
    std::uint64_t maxFiresPerElement() const;

  private:
    Counter &events;
    Counter &fires;
    Counter &runs;
    Gauge &queueHwm;
    Gauge &elementsSeenGauge;
    Gauge &maxFiresGauge;
    Gauge &simTime;
    Gauge &wallMs;
    Gauge &eventsPerWallS;
    /** Per-element fire counts. The simulator dispatches on one
     *  thread, so this map needs no lock. */
    std::unordered_map<const void *, std::uint64_t> perElement;
};

/** ExecProbe recording into a MetricsRegistry. */
class MetricsExecProbe : public ExecProbe
{
  public:
    explicit MetricsExecProbe(MetricsRegistry &registry,
                              const std::string &prefix = "hybrid");

    void onRound(const ExecRoundStats &stats) override;

  private:
    Counter &waits;
    Counter &rounds;
    Gauge &stallTotal;
    Gauge &stallMax;
    Gauge &lastCompletion;
};

/**
 * PoolObserver exporting ThreadPool utilization gauges. Install on
 * exactly one pool (per-job chunk accounting is a single slot); the
 * hooks cost a few relaxed atomic updates per chunk.
 *
 * "Queue depth" is the number of grain-sized chunks of the current
 * job not yet handed to a worker, sampled as each chunk starts; its
 * high-water mark across jobs shows how far submitted work ran ahead
 * of the pool -- the compute-side counterpart of the net:: admission
 * queue.
 */
class PoolMetricsObserver : public PoolObserver
{
  public:
    explicit PoolMetricsObserver(MetricsRegistry &registry,
                                 const std::string &prefix = "pool.");

    void onJobBegin(std::size_t n, std::size_t grain) override;
    void onJobEnd() override;
    void onChunkBegin(unsigned worker, std::size_t begin,
                      std::size_t end) override;
    void onChunkEnd(unsigned worker, std::size_t begin,
                    std::size_t end) override;

  private:
    Counter &jobs;
    Counter &chunks;
    Gauge &active;
    Gauge &activeHwm;
    Gauge &queueHwm;
    /** Chunks of the current job not yet started. Only one job is in
     *  flight per pool, so a single slot suffices. */
    std::atomic<std::int64_t> chunksPending{0};
    std::atomic<std::int64_t> activeNow{0};
};

} // namespace vsync::obs

#endif // VSYNC_OBS_PROBES_HH
