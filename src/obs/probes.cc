#include "obs/probes.hh"

#include <algorithm>

namespace vsync::obs
{

MetricsSimProbe::MetricsSimProbe(MetricsRegistry &registry,
                                 const std::string &prefix)
    : events(registry.counter(prefix + ".events")),
      fires(registry.counter(prefix + ".element_fires")),
      runs(registry.counter(prefix + ".runs")),
      queueHwm(registry.gauge(prefix + ".queue_depth_hwm")),
      elementsSeenGauge(registry.gauge(prefix + ".elements_seen")),
      maxFiresGauge(registry.gauge(prefix + ".max_fires_per_element")),
      simTime(registry.gauge(prefix + ".sim_time_ns")),
      wallMs(registry.gauge(prefix + ".wall_ms")),
      eventsPerWallS(registry.gauge(prefix + ".events_per_wall_s"))
{
}

void
MetricsSimProbe::onEventDispatched(Time, std::size_t queue_depth)
{
    events.inc();
    queueHwm.recordMax(static_cast<double>(queue_depth));
}

void
MetricsSimProbe::onElementFired(const void *element, Time)
{
    fires.inc();
    ++perElement[element];
}

std::uint64_t
MetricsSimProbe::maxFiresPerElement() const
{
    std::uint64_t peak = 0;
    for (const auto &[el, n] : perElement)
        peak = std::max(peak, n);
    return peak;
}

void
MetricsSimProbe::onRunEnd(Time sim_time, double wall_seconds,
                          std::uint64_t run_events)
{
    runs.inc();
    simTime.set(sim_time);
    wallMs.add(wall_seconds * 1e3);
    if (wall_seconds > 0.0)
        eventsPerWallS.set(static_cast<double>(run_events) /
                           wall_seconds);
    elementsSeenGauge.set(static_cast<double>(perElement.size()));
    maxFiresGauge.set(static_cast<double>(maxFiresPerElement()));
}

MetricsExecProbe::MetricsExecProbe(MetricsRegistry &registry,
                                   const std::string &prefix)
    : waits(registry.counter(prefix + ".handshake_waits")),
      rounds(registry.counter(prefix + ".rounds")),
      stallTotal(registry.gauge(prefix + ".stall_ns")),
      stallMax(registry.gauge(prefix + ".max_stall_ns")),
      lastCompletion(registry.gauge(prefix + ".last_completion_ns"))
{
}

void
MetricsExecProbe::onRound(const ExecRoundStats &stats)
{
    waits.inc(stats.waits);
    rounds.inc();
    stallTotal.add(stats.totalWait);
    stallMax.recordMax(stats.maxWait);
    lastCompletion.set(stats.completion);
}

PoolMetricsObserver::PoolMetricsObserver(MetricsRegistry &registry,
                                         const std::string &prefix)
    : jobs(registry.counter(prefix + "jobs")),
      chunks(registry.counter(prefix + "chunks")),
      active(registry.gauge(prefix + "active_workers")),
      activeHwm(registry.gauge(prefix + "active_workers_hwm")),
      queueHwm(registry.gauge(prefix + "queue_depth_hwm"))
{
}

void
PoolMetricsObserver::onJobBegin(std::size_t n, std::size_t grain)
{
    jobs.inc();
    chunksPending.store(
        static_cast<std::int64_t>((n + grain - 1) / grain),
        std::memory_order_relaxed);
}

void
PoolMetricsObserver::onJobEnd()
{
    // A cancelled or aborted job leaves chunks unstarted; clear them
    // so the next job's depth accounting starts from zero.
    chunksPending.store(0, std::memory_order_relaxed);
}

void
PoolMetricsObserver::onChunkBegin(unsigned, std::size_t, std::size_t)
{
    // Gauge::add of +-1 is exact, so concurrent workers cannot smear
    // the active count the way racing set() calls would.
    const std::int64_t now =
        activeNow.fetch_add(1, std::memory_order_relaxed) + 1;
    active.add(1.0);
    activeHwm.recordMax(static_cast<double>(now));
    const std::int64_t waiting =
        chunksPending.fetch_sub(1, std::memory_order_relaxed) - 1;
    if (waiting > 0)
        queueHwm.recordMax(static_cast<double>(waiting));
}

void
PoolMetricsObserver::onChunkEnd(unsigned, std::size_t, std::size_t)
{
    chunks.inc();
    activeNow.fetch_sub(1, std::memory_order_relaxed);
    active.add(-1.0);
}

} // namespace vsync::obs
