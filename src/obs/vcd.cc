#include "obs/vcd.hh"

#include <cmath>
#include <ostream>

#include "common/logging.hh"

namespace vsync::obs
{

namespace
{

/** VCD identifier alphabet: the printable ASCII range '!'..'~'. */
constexpr int idBase = 94;
constexpr char idFirst = '!';

/** ns -> ps tick. */
std::int64_t
tickOf(Time t)
{
    return std::llround(t * 1000.0);
}

/** Replace characters VCD identifiers cannot hold. */
std::string
sanitize(const std::string &name)
{
    std::string s = name;
    for (char &c : s)
        if (c <= ' ' || c > '~')
            c = '_';
    return s.empty() ? std::string("unnamed") : s;
}

} // namespace

VcdWriter::VcdWriter(std::ostream &os) : os(os) {}

std::string
VcdWriter::idCode(Id id)
{
    std::string code;
    do {
        code.push_back(static_cast<char>(idFirst + id % idBase));
        id /= idBase;
    } while (id > 0);
    return code;
}

VcdWriter::Id
VcdWriter::addWire(const std::string &name, bool initial)
{
    VSYNC_ASSERT(!dumping, "addWire after beginDump (wire '%s')",
                 name.c_str());
    names.push_back(sanitize(name));
    initials.push_back(initial);
    return static_cast<Id>(names.size() - 1);
}

void
VcdWriter::beginDump()
{
    VSYNC_ASSERT(!dumping, "beginDump called twice");
    VSYNC_ASSERT(!names.empty(), "no wires declared before beginDump");
    dumping = true;

    os << "$comment vlsisync waveform dump $end\n"
       << "$timescale 1ps $end\n"
       << "$scope module vlsisync $end\n";
    for (std::size_t i = 0; i < names.size(); ++i)
        os << "$var wire 1 " << idCode(static_cast<Id>(i)) << ' '
           << names[i] << " $end\n";
    os << "$upscope $end\n"
       << "$enddefinitions $end\n"
       << "$dumpvars\n";
    for (std::size_t i = 0; i < names.size(); ++i)
        os << (initials[i] ? '1' : '0') << idCode(static_cast<Id>(i))
           << '\n';
    os << "$end\n";
}

void
VcdWriter::change(Time t, Id id, bool v)
{
    VSYNC_ASSERT(dumping, "change before beginDump");
    VSYNC_ASSERT(id < names.size(), "unknown wire id %u", id);
    const std::int64_t tick = tickOf(t);
    VSYNC_ASSERT(tick >= lastTick && tick >= 0,
                 "VCD time going backwards (%g ns after tick %lld)", t,
                 static_cast<long long>(lastTick));
    if (tick != lastTick) {
        os << '#' << tick << '\n';
        lastTick = tick;
    }
    os << (v ? '1' : '0') << idCode(id) << '\n';
    ++changes;
}

} // namespace vsync::obs
