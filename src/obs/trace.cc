#include "obs/trace.hh"

#include <algorithm>
#include <ostream>

#include "common/json.hh"
#include "common/logging.hh"

namespace vsync::obs
{

Tracer::Tracer() : epoch(std::chrono::steady_clock::now()) {}

std::uint64_t
Tracer::nowMicros() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

int
Tracer::currentTid()
{
    // Caller holds the mutex.
    const auto id = std::this_thread::get_id();
    const auto it = tids.find(id);
    if (it != tids.end())
        return it->second;
    const int tid = static_cast<int>(tids.size());
    tids.emplace(id, tid);
    return tid;
}

void
Tracer::nameCurrentThread(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    threadNames[currentTid()] = name;
}

void
Tracer::recordSpan(const std::string &name, std::uint64_t start_us,
                   std::uint64_t end_us)
{
    std::lock_guard<std::mutex> lock(mutex);
    events.push_back({name, start_us,
                      end_us > start_us ? end_us - start_us : 0,
                      currentTid()});
}

void
Tracer::recordInstant(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    events.push_back({name, nowMicros(), 0, currentTid()});
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return events.size();
}

std::size_t
Tracer::threadCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return tids.size();
}

void
Tracer::writeChromeJson(std::ostream &os) const
{
    std::vector<Event> sorted;
    std::map<int, std::string> names;
    {
        std::lock_guard<std::mutex> lock(mutex);
        sorted = events;
        names = threadNames;
    }
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Event &a, const Event &b) {
                         return a.ts < b.ts;
                     });

    JsonWriter w(os);
    w.beginObject();
    w.key("traceEvents").beginArray();
    // Metadata first: one thread_name record per named track.
    for (const auto &[tid, name] : names) {
        w.beginObject()
            .keyValue("name", "thread_name")
            .keyValue("ph", "M")
            .keyValue("pid", 1)
            .keyValue("tid", tid);
        w.key("args").beginObject().keyValue("name", name).endObject();
        w.endObject();
    }
    for (const Event &e : sorted) {
        w.beginObject()
            .keyValue("name", e.name)
            .keyValue("ph", e.dur > 0 ? "X" : "i")
            .keyValue("ts", e.ts)
            .keyValue("pid", 1)
            .keyValue("tid", e.tid);
        if (e.dur > 0)
            w.keyValue("dur", e.dur);
        else
            w.keyValue("s", "t"); // instant scope: thread
        w.endObject();
    }
    w.endArray();
    w.keyValue("displayTimeUnit", "ms");
    w.endObject();
}

namespace
{

/** Per-thread chunk state for TracePoolObserver (chunks never nest). */
struct ChunkState
{
    const void *observer = nullptr;
    bool named = false;
    std::uint64_t startMicros = 0;
};

thread_local ChunkState chunkState;

} // namespace

TracePoolObserver::TracePoolObserver(Tracer &tracer, std::string label)
    : tracer(tracer), label(std::move(label))
{
}

void
TracePoolObserver::onChunkBegin(unsigned worker, std::size_t, std::size_t)
{
    if (chunkState.observer != this) {
        chunkState.observer = this;
        chunkState.named = false;
    }
    if (!chunkState.named) {
        tracer.nameCurrentThread(
            worker == 0 ? "caller" : "worker-" + std::to_string(worker));
        chunkState.named = true;
    }
    chunkState.startMicros = tracer.nowMicros();
}

void
TracePoolObserver::onChunkEnd(unsigned worker, std::size_t begin,
                              std::size_t end)
{
    (void)worker;
    tracer.recordSpan(label + "[" + std::to_string(begin) + "," +
                          std::to_string(end) + ")",
                      chunkState.startMicros, tracer.nowMicros());
}

} // namespace vsync::obs
