/**
 * @file
 * Trace spans with Chrome trace-event JSON output.
 *
 * A Tracer collects named spans -- intervals of host time on a
 * particular thread -- and renders them as the Chrome trace-event
 * format (complete "X" events plus thread_name metadata), loadable in
 * chrome://tracing and Perfetto. Threads become separate tracks
 * automatically; TracePoolObserver plugs into common/parallel's
 * ThreadPool hook so every worker's chunks appear on its own track.
 *
 * Usage:
 *
 *   obs::Tracer tracer;
 *   { VSYNC_TRACE_SPAN(&tracer, "build_tree"); buildTree(); }
 *   std::ofstream os("trace.json");
 *   tracer.writeChromeJson(os);
 *
 * A null Tracer pointer disables tracing: Span's constructor is one
 * branch and the macro can stay in place unconditionally. Timestamps
 * are steady-clock microseconds since Tracer construction, so they are
 * monotonic within a trace file.
 */

#ifndef VSYNC_OBS_TRACE_HH
#define VSYNC_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hh"

namespace vsync::obs
{

/** Collects spans and renders Chrome trace-event JSON. */
class Tracer
{
  public:
    Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Microseconds of steady clock since construction. */
    std::uint64_t nowMicros() const;

    /**
     * Name the calling thread's track (shown by the trace viewer).
     * The first thread to record anything is "main" unless named.
     */
    void nameCurrentThread(const std::string &name);

    /**
     * Record a completed span on the calling thread. Normally called
     * by ~Span, not directly.
     */
    void recordSpan(const std::string &name, std::uint64_t start_us,
                    std::uint64_t end_us);

    /** Record an instantaneous event on the calling thread. */
    void recordInstant(const std::string &name);

    /** Spans + instants recorded so far. */
    std::size_t eventCount() const;

    /** Distinct threads that recorded events or were named. */
    std::size_t threadCount() const;

    /**
     * Render the whole trace as one JSON document. Events are sorted
     * by start timestamp, so "ts" is monotonically non-decreasing over
     * the traceEvents array.
     */
    void writeChromeJson(std::ostream &os) const;

  private:
    struct Event
    {
        std::string name;
        std::uint64_t ts = 0;  // microseconds
        std::uint64_t dur = 0; // 0 => instant event
        int tid = 0;
    };

    int currentTid();

    std::chrono::steady_clock::time_point epoch;
    mutable std::mutex mutex;
    std::map<std::thread::id, int> tids;
    std::map<int, std::string> threadNames;
    std::vector<Event> events;
};

/** RAII span: construction starts the interval, destruction records it. */
class Span
{
  public:
    /** @param tracer may be null (span disabled, near-zero cost). */
    Span(Tracer *tracer, const char *name)
        : tracer(tracer), name(name),
          start(tracer ? tracer->nowMicros() : 0)
    {
    }

    ~Span()
    {
        if (tracer)
            tracer->recordSpan(name, start, tracer->nowMicros());
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    Tracer *tracer;
    const char *name;
    std::uint64_t start;
};

#define VSYNC_TRACE_CAT2(a, b) a##b
#define VSYNC_TRACE_CAT(a, b) VSYNC_TRACE_CAT2(a, b)

/** Span over the rest of the enclosing scope; @p tracer may be null. */
#define VSYNC_TRACE_SPAN(tracer, name)                                    \
    ::vsync::obs::Span VSYNC_TRACE_CAT(vsyncTraceSpan, __LINE__)(         \
        (tracer), (name))

/**
 * ThreadPool instrumentation: names each worker's track and records one
 * span per executed chunk, so parallel sweeps show their schedule as
 * per-thread timelines. Install with pool.setObserver(&observer) while
 * the pool is idle.
 */
class TracePoolObserver : public PoolObserver
{
  public:
    /** @param label span/track name prefix (e.g. the sweep name). */
    explicit TracePoolObserver(Tracer &tracer,
                               std::string label = "chunk");

    void onChunkBegin(unsigned worker, std::size_t begin,
                      std::size_t end) override;
    void onChunkEnd(unsigned worker, std::size_t begin,
                    std::size_t end) override;

  private:
    Tracer &tracer;
    std::string label;
};

} // namespace vsync::obs

#endif // VSYNC_OBS_TRACE_HH
