#include "obs/metrics.hh"

#include <algorithm>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/sink.hh"

namespace vsync::obs
{

void
Gauge::add(double x)
{
    double cur = val.load(std::memory_order_relaxed);
    while (!val.compare_exchange_weak(cur, cur + x,
                                      std::memory_order_relaxed))
        ;
}

void
Gauge::recordMax(double x)
{
    double cur = val.load(std::memory_order_relaxed);
    while (cur < x &&
           !val.compare_exchange_weak(cur, x, std::memory_order_relaxed))
        ;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upperBounds(std::move(upper_bounds)),
      buckets(upperBounds.size() + 1)
{
    VSYNC_ASSERT(std::is_sorted(upperBounds.begin(), upperBounds.end()),
                 "histogram bounds must be sorted (%zu bounds)",
                 upperBounds.size());
    for (std::size_t i = 1; i < upperBounds.size(); ++i)
        VSYNC_ASSERT(upperBounds[i - 1] < upperBounds[i],
                     "duplicate histogram bound %g", upperBounds[i]);
}

void
Histogram::observe(double v)
{
    const auto it =
        std::lower_bound(upperBounds.begin(), upperBounds.end(), v);
    const auto idx =
        static_cast<std::size_t>(it - upperBounds.begin());
    buckets[idx].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    return buckets.at(i).load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::totalCount() const
{
    std::uint64_t total = 0;
    for (const auto &b : buckets)
        total += b.load(std::memory_order_relaxed);
    return total;
}

MetricsRegistry::Entry &
MetricsRegistry::lookup(const std::string &name, Kind kind,
                        std::vector<double> bounds)
{
    VSYNC_ASSERT(!name.empty(), "metric names must be non-empty");
    std::lock_guard<std::mutex> lock(mutex);
    auto it = entries.find(name);
    if (it != entries.end()) {
        if (it->second.kind != kind)
            fatal("metric '%s' already registered as a different kind",
                  name.c_str());
        return it->second;
    }
    Entry e;
    e.kind = kind;
    switch (kind) {
      case Kind::Counter:
        counters.emplace_back();
        e.counter = &counters.back();
        break;
      case Kind::Gauge:
        gauges.emplace_back();
        e.gauge = &gauges.back();
        break;
      case Kind::Histogram:
        histograms.emplace_back(std::move(bounds));
        e.histogram = &histograms.back();
        break;
    }
    return entries.emplace(name, e).first->second;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return *lookup(name, Kind::Counter, {}).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return *lookup(name, Kind::Gauge, {}).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> upper_bounds)
{
    Entry &e = lookup(name, Kind::Histogram, std::move(upper_bounds));
    return *e.histogram;
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.size();
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(mutex);
    w.beginObject();
    for (const auto &[name, e] : entries) { // std::map: sorted by name
        w.key(name).beginObject();
        switch (e.kind) {
          case Kind::Counter:
            w.keyValue("type", "counter")
                .keyValue("value", e.counter->value());
            break;
          case Kind::Gauge:
            w.keyValue("type", "gauge")
                .keyValue("value", e.gauge->value());
            break;
          case Kind::Histogram: {
            const Histogram &h = *e.histogram;
            w.keyValue("type", "histogram")
                .keyValue("count", h.totalCount());
            w.key("bounds").beginArray();
            for (const double b : h.bounds())
                w.value(b);
            w.endArray();
            w.key("buckets").beginArray();
            for (std::size_t i = 0; i <= h.bounds().size(); ++i)
                w.value(h.bucketCount(i));
            w.endArray();
            break;
          }
        }
        w.endObject();
    }
    w.endObject();
}

std::string
MetricsRegistry::toJsonString() const
{
    std::ostringstream os;
    JsonWriter w(os);
    writeJson(w);
    return os.str();
}

void
MetricsRegistry::flush(Sink &sink) const
{
    sink.onMetricsJson(toJsonString());
}

} // namespace vsync::obs
