/**
 * @file
 * Sinks: where observability output goes.
 *
 * A Sink is the pluggable back end for rendered observability records
 * -- metrics snapshots (MetricsRegistry::flush) and log lines
 * (common/logging routes through a sink when one is installed, see
 * attachLogSink). The default everywhere is the NullSink, which
 * discards everything, so building with observability compiled in
 * costs nothing until a real sink is attached:
 *
 *  - NullSink:    discards (the disabled configuration);
 *  - CaptureSink: buffers in memory (tests assert on what was emitted);
 *  - StreamSink:  writes to a std::ostream (files, stderr).
 */

#ifndef VSYNC_OBS_SINK_HH
#define VSYNC_OBS_SINK_HH

#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace vsync::obs
{

/** Consumer of rendered observability records. */
class Sink
{
  public:
    virtual ~Sink() = default;

    /** A complete metrics snapshot, rendered as a JSON document. */
    virtual void onMetricsJson(const std::string &json) = 0;

    /** One log line that passed the level filter. */
    virtual void onLogLine(LogLevel level, const std::string &line) = 0;
};

/** Discards everything: the disabled configuration. */
class NullSink : public Sink
{
  public:
    void onMetricsJson(const std::string &) override {}
    void onLogLine(LogLevel, const std::string &) override {}
};

/** The shared process-wide NullSink instance. */
NullSink &nullSink();

/** Buffers everything in memory; tests assert on the buffers. */
class CaptureSink : public Sink
{
  public:
    void onMetricsJson(const std::string &json) override;
    void onLogLine(LogLevel level, const std::string &line) override;

    /** Metrics snapshots received, in order. */
    std::vector<std::string> metricsSnapshots() const;

    /** Log lines received, in order. */
    std::vector<std::pair<LogLevel, std::string>> logLines() const;

    /** Number of log lines at exactly @p level. */
    std::size_t countAtLevel(LogLevel level) const;

    /** Drop everything buffered so far. */
    void clear();

  private:
    mutable std::mutex mutex;
    std::vector<std::string> metrics;
    std::vector<std::pair<LogLevel, std::string>> logs;
};

/** Writes records to a stream (metrics as JSON, logs as lines). */
class StreamSink : public Sink
{
  public:
    explicit StreamSink(std::ostream &os) : os(os) {}

    void onMetricsJson(const std::string &json) override;
    void onLogLine(LogLevel level, const std::string &line) override;

  private:
    std::mutex mutex;
    std::ostream &os;
};

/**
 * Route common/logging's filtered lines into @p sink (in place of
 * stderr; see setLogSink). Pass nullptr to restore plain stderr.
 * @p sink must outlive the routing.
 */
void attachLogSink(Sink *sink);

} // namespace vsync::obs

#endif // VSYNC_OBS_SINK_HH
