/**
 * @file
 * The paper's two clock-skew models (Section III).
 *
 * Both models bound the skew between two nodes of CLK in terms of the
 * geometry of the tree paths connecting them to their nearest common
 * ancestor, with per-unit-length wire delay m +/- eps:
 *
 *   sigma = h1 (m + eps) - h2 (m - eps) = m d + eps s,
 *   where d = h1 - h2 and s = h1 + h2,
 *
 * so eps s <= sigma <= (m + eps) s.
 *
 * - Difference model (A9): variations eps are negligible (tunable
 *   discrete wiring); skew <= f(d), f monotone increasing. Linear form:
 *   f(d) = m d.
 * - Summation model (A10/A11): variations accumulate along the whole
 *   connecting path; beta s <= skew <= g(s). Linear forms: g(s) =
 *   (m + eps) s and beta = eps.
 */

#ifndef VSYNC_CORE_SKEW_MODEL_HH
#define VSYNC_CORE_SKEW_MODEL_HH

#include <functional>
#include <string>

#include "common/types.hh"

namespace vsync::core
{

/** Which of the paper's two skew models applies. */
enum class SkewModelKind
{
    Difference, ///< A9: skew bounded by f(d).
    Summation,  ///< A10/A11: beta*s <= skew <= g(s).
};

/** Name of a skew model kind ("difference" / "summation"). */
std::string skewModelKindName(SkewModelKind kind);

/**
 * A clock skew model: an upper bound on skew as a function of the tree
 * geometry, and (for the summation model) a matching lower bound.
 */
class SkewModel
{
  public:
    /** Monotone bound function of a path length. */
    using BoundFn = std::function<double(Length)>;

    /**
     * Linear difference model with per-unit delay @p m: skew <= m * d.
     */
    static SkewModel difference(double m);

    /** Difference model with a custom monotone f. */
    static SkewModel difference(BoundFn f);

    /**
     * Linear summation model from per-unit delay m +/- eps:
     * eps * s <= skew <= (m + eps) * s.
     */
    static SkewModel summation(double m, double eps);

    /** Summation model with custom g and beta. */
    static SkewModel summation(BoundFn g, double beta);

    /** Model kind. */
    SkewModelKind kind() const { return modelKind; }

    /**
     * Upper bound on the skew between two nodes with path difference
     * @p d and path sum @p s.
     */
    double upperBound(Length d, Length s) const;

    /**
     * Lower bound on the worst-case skew between two nodes with path
     * sum @p s (0 under the difference model, beta * s under the
     * summation model, A11).
     */
    double lowerBound(Length s) const;

    /** The summation model's beta (0 for the difference model). */
    double beta() const { return betaValue; }

    /** Mean per-unit wire delay m used by the linear factories. */
    double meanUnitDelay() const { return mValue; }

    /** Variation amplitude eps used by the linear factories. */
    double unitDelayVariation() const { return epsValue; }

  private:
    SkewModel() = default;

    SkewModelKind modelKind = SkewModelKind::Difference;
    BoundFn bound;
    double betaValue = 0.0;
    double mValue = 0.0;
    double epsValue = 0.0;
};

} // namespace vsync::core

#endif // VSYNC_CORE_SKEW_MODEL_HH
