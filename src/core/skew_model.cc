#include "core/skew_model.hh"

#include "common/logging.hh"

namespace vsync::core
{

std::string
skewModelKindName(SkewModelKind kind)
{
    return kind == SkewModelKind::Difference ? "difference" : "summation";
}

SkewModel
SkewModel::difference(double m)
{
    VSYNC_ASSERT(m > 0.0, "unit delay must be positive, got %g", m);
    SkewModel sm;
    sm.modelKind = SkewModelKind::Difference;
    sm.bound = [m](Length d) { return m * d; };
    sm.mValue = m;
    return sm;
}

SkewModel
SkewModel::difference(BoundFn f)
{
    VSYNC_ASSERT(static_cast<bool>(f), "null bound function");
    SkewModel sm;
    sm.modelKind = SkewModelKind::Difference;
    sm.bound = std::move(f);
    return sm;
}

SkewModel
SkewModel::summation(double m, double eps)
{
    VSYNC_ASSERT(m > 0.0, "unit delay must be positive, got %g", m);
    VSYNC_ASSERT(eps >= 0.0 && eps <= m,
                 "variation eps must lie in [0, m], got %g (m = %g)",
                 eps, m);
    SkewModel sm;
    sm.modelKind = SkewModelKind::Summation;
    sm.bound = [m, eps](Length s) { return (m + eps) * s; };
    sm.betaValue = eps;
    sm.mValue = m;
    sm.epsValue = eps;
    return sm;
}

SkewModel
SkewModel::summation(BoundFn g, double beta)
{
    VSYNC_ASSERT(static_cast<bool>(g), "null bound function");
    VSYNC_ASSERT(beta >= 0.0, "beta must be non-negative, got %g", beta);
    SkewModel sm;
    sm.modelKind = SkewModelKind::Summation;
    sm.bound = std::move(g);
    sm.betaValue = beta;
    return sm;
}

double
SkewModel::upperBound(Length d, Length s) const
{
    VSYNC_ASSERT(d >= -1e-12 && s >= -1e-12 && d <= s + 1e-9,
                 "invalid path geometry d=%g s=%g", d, s);
    return modelKind == SkewModelKind::Difference ? bound(d) : bound(s);
}

double
SkewModel::lowerBound(Length s) const
{
    return modelKind == SkewModelKind::Difference ? 0.0 : betaValue * s;
}

} // namespace vsync::core
