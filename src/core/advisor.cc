#include "core/advisor.hh"

namespace vsync::core
{

std::string
syncSchemeName(SyncScheme scheme)
{
    switch (scheme) {
      case SyncScheme::GlobalEquipotential:
        return "global-equipotential";
      case SyncScheme::PipelinedHTree:
        return "pipelined-htree";
      case SyncScheme::PipelinedSpine:
        return "pipelined-spine";
      case SyncScheme::ClockAlongDataPaths:
        return "clock-along-data-paths";
      case SyncScheme::Hybrid:
        return "hybrid";
      case SyncScheme::FullySelfTimed:
        return "fully-self-timed";
      case SyncScheme::RedundantGridTrix:
        return "redundant-grid-trix";
    }
    return "?";
}

namespace
{

/**
 * Swap a tree-based recommendation for the redundant grid when the
 * technology expects clock-distribution faults: a single dead buffer
 * silences a whole subtree of any tree scheme, while the grid's median
 * voting masks it entirely. Handshake-based and equipotential picks
 * are left alone.
 */
Advice
applyFaultRate(Advice advice, const TechnologyAssumptions &tech)
{
    if (tech.faultRate <= 0.0)
        return advice;
    switch (advice.scheme) {
      case SyncScheme::PipelinedHTree:
      case SyncScheme::PipelinedSpine:
      case SyncScheme::ClockAlongDataPaths:
        advice.scheme = SyncScheme::RedundantGridTrix;
        advice.periodGrowth = GrowthLaw::Constant;
        advice.justification +=
            " With a nonzero clock-buffer fault rate a single dead "
            "buffer silences the whole subtree below it, so the "
            "redundant median-voting grid replaces the tree: every "
            "node fires on the median of three independent links and "
            "any single buffer fault is outvoted with zero skew "
            "degradation.";
        break;
      default:
        break;
    }
    return advice;
}

} // namespace

Advice
adviseScheme(graph::TopologyKind kind, const TechnologyAssumptions &tech)
{
    Advice advice;

    if (tech.smallSystem) {
        advice.scheme = SyncScheme::GlobalEquipotential;
        advice.periodGrowth = GrowthLaw::Linear;
        advice.justification =
            "Section VII: on a small system a well-designed equipotential "
            "clock already meets the cycle target; its period grows with "
            "the layout diameter but the constant dominates at this size.";
        return applyFaultRate(advice, tech);
    }

    if (!tech.temporalInvariance) {
        advice.scheme = SyncScheme::Hybrid;
        advice.periodGrowth = GrowthLaw::Constant;
        advice.justification =
            "Section VI: without A8 (time-invariant clock paths) "
            "successive pipelined clock events cannot stay correctly "
            "spaced, so local clocks synchronized by a self-timed "
            "handshake network are required.";
        return applyFaultRate(advice, tech);
    }

    if (tech.skewModel == SkewModelKind::Difference) {
        advice.scheme = SyncScheme::PipelinedHTree;
        advice.periodGrowth = GrowthLaw::Constant;
        advice.justification =
            "Theorem 2: under the difference model an equidistant "
            "(H-tree) distribution keeps skew bounded for any array of "
            "bounded aspect ratio, so the pipelined period is "
            "independent of size.";
        return applyFaultRate(advice, tech);
    }

    switch (kind) {
      case graph::TopologyKind::Linear:
      case graph::TopologyKind::Ring:
        advice.scheme = SyncScheme::PipelinedSpine;
        advice.periodGrowth = GrowthLaw::Constant;
        advice.justification =
            "Theorem 3: running the clock along a one-dimensional array "
            "keeps communicating cells a constant tree distance apart, "
            "so the summation-model skew and hence the period are "
            "independent of size.";
        break;
      case graph::TopologyKind::BinaryTree:
        advice.scheme = SyncScheme::ClockAlongDataPaths;
        advice.periodGrowth = GrowthLaw::Constant;
        advice.justification =
            "Section VIII: when COMM is a tree, distributing clock "
            "events along the data paths makes clock skew track "
            "communication delay, giving a constant pipeline interval "
            "after registering long edges.";
        break;
      case graph::TopologyKind::Mesh:
      case graph::TopologyKind::Torus:
      case graph::TopologyKind::Hex:
      case graph::TopologyKind::ShuffleExchange:
      case graph::TopologyKind::Hypercube:
        advice.scheme = SyncScheme::Hybrid;
        advice.periodGrowth = GrowthLaw::Constant;
        advice.justification =
            "Theorem 6: bisection width growing with N forces skew "
            "growing with N under the summation model for every clock "
            "tree, so global clocking degrades; the Section VI hybrid "
            "scheme keeps all synchronization local instead.";
        break;
    }
    return applyFaultRate(advice, tech);
}

} // namespace vsync::core
