/**
 * @file
 * The Section III wire-delay model's parameter pair.
 *
 * Every stochastic skew experiment draws per-wire unit delays uniformly
 * from [m - eps, m + eps] (ns per lambda). The pair used to travel the
 * call graph as two loose doubles, which made it easy to swap the
 * arguments silently; WireDelay names them once and is threaded through
 * sampleSkewInstance, adversarialSkewInstance, the SkewKernel batch
 * entry points, mc::skewSweep and the fault drivers.
 */

#ifndef VSYNC_CORE_WIRE_DELAY_HH
#define VSYNC_CORE_WIRE_DELAY_HH

namespace vsync::core
{

/** Per-unit wire-delay spread: unit delays lie in [m - eps, m + eps]. */
struct WireDelay
{
    /** Mean delay per lambda (ns). */
    double m = 0.05;
    /** Half-width of the uniform spread per lambda (ns). */
    double eps = 0.005;

    /** Slowest-case bound m + eps. */
    double hi() const { return m + eps; }
    /** Fastest-case bound m - eps. */
    double lo() const { return m - eps; }

    /** The Section III derivation needs 0 <= eps <= m and m > 0. */
    bool valid() const { return m > 0.0 && eps >= 0.0 && eps <= m; }
};

} // namespace vsync::core

#endif // VSYNC_CORE_WIRE_DELAY_HH
