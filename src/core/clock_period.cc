#include "core/clock_period.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsync::core
{

std::string
clockingModeName(ClockingMode mode)
{
    return mode == ClockingMode::Equipotential ? "equipotential"
                                               : "pipelined";
}

PeriodBreakdown
clockPeriod(const SkewReport &skew, const clocktree::ClockTree &tree,
            const ClockParams &params, ClockingMode mode)
{
    VSYNC_ASSERT(params.alpha > 0.0 && params.m > 0.0,
                 "bad clock parameters alpha=%g m=%g",
                 params.alpha, params.m);
    PeriodBreakdown pb;
    pb.mode = mode;
    pb.sigma = skew.maxSkewUpper;
    pb.delta = params.delta;
    if (mode == ClockingMode::Equipotential) {
        // A6: the tree is brought to an equipotential state per event.
        pb.tau = params.alpha * tree.maxRootPathLength();
    } else {
        // A7: one buffer plus one bounded segment per event.
        pb.tau = params.bufferDelay +
                 (params.m + params.eps) * params.bufferSpacing;
    }
    pb.period = pb.sigma + pb.delta + pb.tau;
    pb.altPeriod = std::max(pb.tau, 2.0 * pb.sigma + pb.delta);
    return pb;
}

Time
pipelinedTau(const clocktree::BufferedClockTree &buffered,
             const ClockParams &params)
{
    return params.bufferDelay +
           (params.m + params.eps) * buffered.maxSegmentLength();
}

Time
twoPhasePeriod(const SkewReport &skew, const TwoPhaseParams &params)
{
    VSYNC_ASSERT(params.phi1Min > 0.0 && params.phi2Min > 0.0 &&
                 params.nonoverlapMin >= 0.0,
                 "bad two-phase parameters");
    return params.phi1Min + params.phi2Min +
           2.0 * (params.nonoverlapMin + skew.maxSkewUpper);
}

} // namespace vsync::core
