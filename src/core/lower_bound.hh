/**
 * @file
 * The Section V-B / Theorem 6 lower-bound machinery.
 *
 * Under the summation model (A11: skew >= beta * s), the paper shows
 * that no clock tree can keep the max communicating-cell skew of an
 * n x n array bounded: sigma = Omega(n). The proof combines
 *
 *  - Lemma 5: a binary-tree edge separator splitting the cells 1/3-2/3,
 *  - the area argument: >= N/10 cells inside a circle of radius
 *    sigma/beta implies pi (sigma/beta)^2 >= N/10 (unit-area cells, A2),
 *  - the cut argument: otherwise the circle boundary, length
 *    2 pi sigma / beta, is crossed by every edge between the adjusted
 *    partition halves, and a balanced partition of a mesh needs
 *    Omega(n) edges (Lemma 4); unit-width wires (A3) bound the number
 *    of edges through the boundary by its length.
 *
 * Theorem 6 generalises to any COMM with minimum bisection width W(N) =
 * O(sqrt N): sigma = Omega(W(N)).
 */

#ifndef VSYNC_CORE_LOWER_BOUND_HH
#define VSYNC_CORE_LOWER_BOUND_HH

#include <cstddef>

#include "clocktree/clock_tree.hh"
#include "layout/layout.hh"

namespace vsync::core
{

/**
 * Theorem 6 numeric bound: any clock tree over an N-cell layout whose
 * COMM graph needs at least @p cut_width edge cuts for every partition
 * with both sides <= 23/30 N has
 *
 *   sigma >= beta * min( sqrt(N / (10 pi)), cut_width / (2 pi) ).
 *
 * @param n_cells   N.
 * @param cut_width lower bound on the edges cut by any 23/30-balanced
 *                  partition (c*n for an n x n mesh).
 * @param beta      the summation model's A11 constant.
 */
double theorem6Bound(std::size_t n_cells, double cut_width, double beta);

/**
 * Lemma 4 style cut bound for an n x n mesh: any partition with both
 * sides at most 23/30 N (so the small side has at least 7/30 N cells)
 * cuts at least min(2 sqrt(k), n) edges where k = ceil(7 N / 30)
 * (grid isoperimetry).
 */
double meshCutWidth(int n);

/**
 * Exact per-instance lower bound on the worst-case skew of a concrete
 * (layout, tree) pair under A11: beta * max over communicating pairs of
 * s(a, b). Any realisable chip obeying A11 has max skew at least this.
 */
double instanceSkewLowerBound(const layout::Layout &l,
                              const clocktree::ClockTree &t, double beta);

/** A machine-checkable trace of the Fig 7 circle argument. */
struct CircleArgumentTrace
{
    /** Child endpoint of the Lemma 5 separator edge on CLK. */
    NodeId separatorChild = invalidId;
    /** Cells inside the separated subtree (the set A). */
    std::size_t cellsInA = 0;
    /** Cells outside (the set B). */
    std::size_t cellsInB = 0;
    /** Centre of the circle: position of the subtree root u. */
    geom::Point center;
    /** Radius sigma / beta. */
    double radius = 0.0;
    /** Cells strictly inside the circle. */
    std::size_t cellsInCircle = 0;
    /** True when the area case (>= N/10 cells inside) fired. */
    bool areaCase = false;
    /** Communication edges between the adjusted halves (cut case). */
    std::size_t crossingEdges = 0;
    /** Size of the larger adjusted half (must be <= 23/30 N). */
    std::size_t largerAdjustedHalf = 0;
    /**
     * Cut case: the lower bound on the true skew implied by a
     * contradiction (0 when the candidate sigma is consistent).
     * Area case: the bound the proof's case 1 concludes when the
     * candidate is the true max skew (not a contradiction).
     */
    double certifiedSigma = 0.0;
};

/**
 * Run the circle argument for a hypothetical max skew @p sigma on a
 * concrete instance, returning the measured quantities at each proof
 * step. Tests replay the proof with this: for sigma below the
 * theorem6Bound the argument derives a contradiction (i.e. certifies
 * sigma cannot be the true max skew).
 *
 * @param beta the summation model's A11 constant.
 */
CircleArgumentTrace runCircleArgument(const layout::Layout &l,
                                      const clocktree::ClockTree &t,
                                      double beta, double sigma);

/**
 * The largest sigma the circle argument rules out for this concrete
 * instance: a certified lower bound on the worst-case skew of (l, t)
 * under A11, found by scanning candidate sigmas on a geometric grid.
 *
 * @param grid_steps number of candidate sigmas tried.
 */
double circleArgumentLowerBound(const layout::Layout &l,
                                const clocktree::ClockTree &t, double beta,
                                int grid_steps = 64);

} // namespace vsync::core

#endif // VSYNC_CORE_LOWER_BOUND_HH
