/**
 * @file
 * The flattened batch skew-query kernel.
 *
 * Every headline result of the paper reduces to evaluating
 * d = |h(a) - h(b)| and s = h(a) + h(b) - 2 h(nca(a, b)) over all
 * communicating pairs (A9-A11, Theorem 6), and the Monte-Carlo and
 * fault sweeps re-run that query space millions of times per bench.
 * A SkewKernel "compiles" one scenario -- a (Layout, ClockTree) pair,
 * or a bare Layout for arrival-surface-only queries -- into flat
 * structure-of-arrays form once, so every subsequent query is a scan
 * over contiguous memory:
 *
 *  - per-node parent index and wire length, in topological id order
 *    (ClockTree creates nodes parent-before-child; the build verifies
 *    parent(v) < v so a forward pass IS a topological traversal),
 *  - per-node root-path length h as a prefix array,
 *  - an Euler tour + sparse table answering nca() in O(1) per pair
 *    (the naive RootedTree::nca climbs parents, O(depth) per pair),
 *  - the communicating pairs as four flat endpoint arrays (tree-node
 *    ids and cell ids), in layout::Layout::comm() undirectedEdges()
 *    order -- the order every pre-kernel surface used, so results are
 *    bit-identical to the pointer-chasing paths they replace -- plus
 *    endpoint-sorted copies used only by the pair folds: the fold is a
 *    max of |differences| (exact under any order), so sorting for
 *    gather locality cannot change a single bit.
 *
 * The batch entry points are allocation-free: arrivals() propagates a
 * sampled per-wire delay realisation down the tree into a caller-owned
 * span, maxCommSkew() folds a node-arrival surface over the pairs, and
 * arrivalSkew() evaluates a per-cell arrival surface (the fault
 * subsystem's shared reduction). Each has a lane-blocked sibling
 * (arrivalsBlock / maxCommSkewBlock / sampleMaxCommSkewBlock /
 * arrivalSkewBlock) that carries W independent Monte-Carlo trial lanes
 * through one pass over the flat arrays -- node-outer, lane-inner over
 * a lane-major scratch whose row stride laneStride(W) is padded to an
 * odd count so power-of-two widths cannot alias cache sets. Each lane
 * advances its own Rng in lockstep and replays the scalar draw
 * sequence exactly, so blocked results are BIT-IDENTICAL to the scalar
 * path at every width; blockWidth() picks W by a one-shot autotune.
 * A kernel is immutable after construction and safe to share read-only
 * across threads; the query counters are relaxed atomics.
 */

#ifndef VSYNC_CORE_SKEW_KERNEL_HH
#define VSYNC_CORE_SKEW_KERNEL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "clocktree/clock_tree.hh"
#include "core/wire_delay.hh"
#include "layout/layout.hh"

namespace vsync
{
class Rng;
} // namespace vsync

namespace vsync::obs
{
class MetricsRegistry;
} // namespace vsync::obs

namespace vsync::core
{

/**
 * Realised skew metrics of one concrete per-cell arrival vector, as
 * produced by a faulty clock-distribution run (fault::TrixGrid::
 * cellArrivals or the fault::simulateTreeUnderFaults driver). An
 * infinite arrival means the cell was never clocked; pairs with an
 * unclocked endpoint are excluded from the skew maximum and counted
 * out of clockedPairs instead.
 */
struct ArrivalSkew
{
    /** Fraction of cells with a finite arrival. */
    double clockedFraction = 0.0;
    /** Max |arrival(a) - arrival(b)| over fully clocked comm pairs. */
    Time maxCommSkew = 0.0;
    /** Communicating pairs with both endpoints clocked. */
    std::size_t clockedPairs = 0;
    /** All communicating pairs of the layout. */
    std::size_t pairCount = 0;
};

/** One compiled scenario: flat skew-query state for (layout[, tree]). */
class SkewKernel
{
  public:
    /**
     * Pairs-only compile: flatten @p l's communicating pairs for
     * arrivalSkew() queries. Tree queries (nca, arrivals, ...) are
     * unavailable; this is the form the TRIX-grid fault driver uses,
     * where cells are clocked by a redundant grid rather than a tree.
     */
    explicit SkewKernel(const layout::Layout &l);

    /**
     * Full compile of a (layout, clock tree) scenario.
     *
     * @pre every cell of the layout is bound to a node of the tree
     *      (A4); checked once here so the per-trial hot paths never
     *      re-assert it.
     */
    SkewKernel(const layout::Layout &l, const clocktree::ClockTree &t);

    /** True when compiled with a tree (tree queries available). */
    bool hasTree() const { return !parentOf.empty(); }

    /** Tree nodes (0 for a pairs-only kernel). */
    std::size_t nodeCount() const { return parentOf.size(); }

    /** Cells of the compiled layout. */
    std::size_t cellCount() const { return cells; }

    /** Communicating pairs. */
    std::size_t pairCount() const { return pairCellA.size(); }

    /** Parent of tree node @p v (invalidId for the root). */
    NodeId parent(NodeId v) const { return parentOf[v]; }

    /** Tree node clocking cell @p c. */
    NodeId nodeOfCell(CellId c) const { return nodeOf[c]; }

    /** Wire length feeding node @p v (0 for the root). */
    Length wireLength(NodeId v) const { return wireLen[v]; }

    /** Root-path length h(v) (prefix array, filled at build). */
    Length rootPathLength(NodeId v) const { return h[v]; }

    /**
     * Nearest common ancestor in O(1) via the Euler-tour sparse table.
     * Agrees with the naive parent-climb graph::RootedTree::nca on
     * every pair (property-tested on randomized trees).
     */
    NodeId nca(NodeId a, NodeId b) const;

    /** d(a, b) = |h(a) - h(b)| (difference model, A9). */
    Length pathDifference(NodeId a, NodeId b) const;

    /** s(a, b) = h(a) + h(b) - 2 h(nca) (summation model, A10/A11). */
    Length treeDistance(NodeId a, NodeId b) const;

    /** Tree-node endpoints of pair i: (pairNodesA()[i], pairNodesB()[i]),
     *  in layout comm() undirectedEdges() order. */
    const std::vector<NodeId> &pairNodesA() const { return pairNodeA; }
    const std::vector<NodeId> &pairNodesB() const { return pairNodeB; }

    /** Cell endpoints of pair i, same order. */
    const std::vector<CellId> &pairCellsA() const { return pairCellA; }
    const std::vector<CellId> &pairCellsB() const { return pairCellB; }

    /**
     * Propagate one sampled chip down the tree: node @p v's arrival is
     * arrival(parent) + u_v * wireLength(v) with u_v drawn uniformly
     * from [delay.lo(), delay.hi()], one draw per non-root node in id
     * order -- the exact draw sequence of the pre-kernel
     * sampleSkewInstance, so substream-driven results are bit-identical.
     *
     * @param out caller-owned span of nodeCount() entries; every entry
     *            is written (no allocation, vectorizable inner loop).
     */
    void arrivals(const WireDelay &delay, Rng &rng,
                  std::span<Time> out) const;

    /** Max |arrival(a) - arrival(b)| over the comm pairs of a node
     *  arrival surface (as filled by arrivals()). */
    Time maxCommSkew(std::span<const Time> node_arrival) const;

    /**
     * arrivals() + maxCommSkew() in one call: the Monte-Carlo
     * per-trial hot path. @p scratch is resized to nodeCount() once
     * and reusable across calls on the same thread.
     */
    Time sampleMaxCommSkew(const WireDelay &delay, Rng &rng,
                           std::vector<Time> &scratch) const;

    /**
     * Evaluate a per-cell arrival surface (infinity = never clocked)
     * over the comm pairs: the reduction shared by the faulty-tree and
     * TRIX-grid drivers. Works on pairs-only kernels.
     */
    ArrivalSkew arrivalSkew(std::span<const Time> cell_arrival) const;

    /** Hard cap on trial lanes per blocked call. */
    static constexpr std::size_t maxLanes = 32;

    /**
     * Row stride (in Time slots) of a lane-major matrix carrying
     * @p width lanes: width padded up to the next odd count when even.
     * Power-of-two widths make every lane's column stride a multiple
     * of the cache-set period, so all W working columns fight over the
     * same L1 sets -- the conflict-miss regression that sank the first
     * blocking attempt at width 8. An odd stride walks the columns
     * across all sets. laneStride(1) == 1, so a plain contiguous
     * surface IS a valid width-1 lane-major matrix.
     */
    static constexpr std::size_t
    laneStride(std::size_t width)
    {
        return (width % 2 == 0 && width > 0) ? width + 1 : width;
    }

    /**
     * Blocked arrivals(): propagate lanes.size() independent trials in
     * one node-outer, lane-inner pass. Lane j advances lanes[j] through
     * the exact scalar draw sequence (bulk strided Rng::fillUniform per
     * node chunk), so row v of @p out holds, for every lane j,
     * bitwise the value arrivals() would produce for that lane's Rng.
     *
     * @param out lane-major, nodeCount() * laneStride(lanes.size())
     *            slots; node v's lane-j arrival is
     *            out[v * laneStride(W) + j]. Padding slots are never
     *            read back.
     */
    void arrivalsBlock(const WireDelay &delay, std::span<Rng> lanes,
                       std::span<Time> out) const;

    /** Blocked maxCommSkew(): fold a lane-major node-arrival matrix
     *  (as filled by arrivalsBlock()) into out[j] = lane j's max comm
     *  skew; out.size() selects the width. Bitwise equal to scalar
     *  maxCommSkew() per lane. */
    void maxCommSkewBlock(std::span<const Time> lane_arrival,
                          std::span<Time> out) const;

    /**
     * arrivalsBlock() + maxCommSkewBlock(): the blocked Monte-Carlo
     * per-trial hot path, evaluating lanes.size() trials per pass.
     * @p scratch is resized to the lane-major matrix size once and
     * reusable across calls on the same thread.
     */
    void sampleMaxCommSkewBlock(const WireDelay &delay,
                                std::span<Rng> lanes,
                                std::span<Time> out_skew,
                                std::vector<Time> &scratch) const;

    /** Blocked arrivalSkew(): evaluate a lane-major per-cell arrival
     *  matrix (cellCount() * laneStride(out.size()) slots, infinity =
     *  never clocked) into out[j] = lane j's ArrivalSkew. Works on
     *  pairs-only kernels. */
    void arrivalSkewBlock(std::span<const Time> lane_cell_arrival,
                          std::span<ArrivalSkew> out) const;

    /**
     * The lane width the blocked entry points should be driven at on
     * this host, in [1, 8]. The first call measures widths 1..8 once
     * on this kernel's own arrays (a few dozen blocked trials) and
     * caches the winner for the kernel's lifetime -- a ScenarioCache
     * hit therefore reuses the tuned width along with the compiled
     * arrays. Thread safe; every width is bit-identical, so the choice
     * affects speed only, never results.
     */
    std::size_t blockWidth() const;

    /** Wall-clock milliseconds the compile took. */
    double buildMillis() const { return buildMs; }

    /** Pair-level queries served so far (batch calls count every pair
     *  they fold; per-pair calls count one each). Relaxed counter --
     *  exact under any thread schedule. */
    std::uint64_t queriesServed() const
    {
        return served.load(std::memory_order_relaxed);
    }

    /** arrivals() propagations served so far. */
    std::uint64_t arrivalBatches() const
    {
        return batches.load(std::memory_order_relaxed);
    }

    /**
     * Export kernel stats as gauges under @p prefix: nodes, pairs,
     * build_ms, queries_served, arrival_batches. build_ms is wall
     * clock and therefore not bit-stable across runs; tests asserting
     * registry bit-identity should compare the other gauges.
     */
    void exportMetrics(obs::MetricsRegistry &reg,
                       const std::string &prefix = "core.skew_kernel.")
        const;

  private:
    void compilePairs(const layout::Layout &l,
                      const clocktree::ClockTree *t);
    void compileTree(const clocktree::ClockTree &t);
    std::size_t autotuneWidth() const;

    std::size_t cells = 0;

    // Tree part (empty for pairs-only kernels), indexed by NodeId.
    std::vector<NodeId> parentOf;
    std::vector<Length> wireLen;
    std::vector<Length> h;       // root-path length prefix array
    std::vector<NodeId> nodeOf;  // indexed by CellId

    // Euler-tour sparse-table NCA.
    std::vector<std::int32_t> eulerNode;  // node at tour position
    std::vector<std::int32_t> eulerDepth; // its depth
    std::vector<std::int32_t> firstSeen;  // node -> first tour position
    std::vector<std::int32_t> logTable;   // floor(log2(len))
    std::vector<std::vector<std::int32_t>> sparse; // min-depth positions

    // Comm-pair endpoints, undirectedEdges() order -- the public,
    // order-contracted view (SkewReport edges, SkewInstance::edgeSkew).
    std::vector<NodeId> pairNodeA, pairNodeB;
    std::vector<CellId> pairCellA, pairCellB;

    // Endpoint-sorted copies (canonical a <= b, sorted by (a, b)) used
    // only by the max/count folds, where order cannot change a bit but
    // sorted gathers walk the arrival surface near-monotonically.
    std::vector<NodeId> foldNodeA, foldNodeB;
    std::vector<CellId> foldCellA, foldCellB;

    double buildMs = 0.0;
    mutable std::atomic<std::uint64_t> served{0};
    mutable std::atomic<std::uint64_t> batches{0};
    mutable std::once_flag tuneOnce;
    mutable std::size_t tunedWidth = 1;
};

/**
 * Source of compiled kernels for a scenario: tree == nullptr asks for
 * the pairs-only compile of the layout. The Monte-Carlo and fault
 * sweeps fetch their kernels through a provider so callers can swap
 * the direct compile for serve::ScenarioCache::provider() -- repeated
 * sweeps over the same scenario then pay the compile once.
 */
using KernelProvider = std::function<std::shared_ptr<const SkewKernel>(
    const layout::Layout &, const clocktree::ClockTree *)>;

/** The uncached provider: one fresh compile per call. */
KernelProvider directCompile();

} // namespace vsync::core

#endif // VSYNC_CORE_SKEW_KERNEL_HH
