/**
 * @file
 * Skew analysis of a (layout, clock tree) pair under a skew model.
 *
 * For every pair of communicating cells the analysis computes the
 * geometric quantities d and s on CLK and evaluates the model's bounds;
 * the maximum upper bound over all pairs is the sigma that enters the
 * clock period (A5). A Monte-Carlo companion draws concrete per-wire
 * delays in [m - eps, m + eps] and measures realised skews, which tests
 * use to confirm the model's sandwich eps*s <= sigma <= (m+eps)*s.
 *
 * All pair evaluation is backed by core::SkewKernel (one flat compile
 * of the scenario, O(1) NCA per pair); the raw-pair surface that
 * predated the kernel (commNodePairs / free sampleMaxCommSkew) shipped
 * as deprecated shims for one release and is now gone.
 * sampleSkewInstance is retained as the naive per-chip reference path:
 * it re-resolves the scenario on every call, which is exactly what the
 * kernel amortises, and bench_perf_skew measures the two against each
 * other in-run.
 */

#ifndef VSYNC_CORE_SKEW_ANALYSIS_HH
#define VSYNC_CORE_SKEW_ANALYSIS_HH

#include <utility>
#include <vector>

#include "clocktree/clock_tree.hh"
#include "core/skew_kernel.hh"
#include "core/skew_model.hh"
#include "layout/layout.hh"

namespace vsync
{
class Rng;
} // namespace vsync

namespace vsync::core
{

/** Skew bounds for one communicating cell pair. */
struct EdgeSkew
{
    CellId a = invalidId;
    CellId b = invalidId;
    /** |h(a) - h(b)| on CLK. */
    Length d = 0.0;
    /** Tree path length between a and b on CLK. */
    Length s = 0.0;
    /** Model upper bound on skew for this pair. */
    double upper = 0.0;
    /** Model lower bound on worst-case skew for this pair. */
    double lower = 0.0;
};

/** Result of analysing all communicating pairs. */
struct SkewReport
{
    std::vector<EdgeSkew> edges;
    /** sigma: max upper bound over communicating pairs (enters A5). */
    double maxSkewUpper = 0.0;
    /** Max lower bound over pairs (certifies Omega growth). */
    double maxSkewLower = 0.0;
    /** Largest d over pairs. */
    Length maxD = 0.0;
    /** Largest s over pairs. */
    Length maxS = 0.0;
    /** Index into edges of the pair attaining maxSkewUpper. */
    std::size_t worstIndex = 0;
};

/**
 * Evaluate @p model over every communicating pair of a compiled
 * scenario @p kernel (which must be tree-compiled). Reuse the kernel
 * across calls to amortise the geometry compile.
 */
[[nodiscard]] SkewReport analyzeSkew(const SkewKernel &kernel,
                                     const SkewModel &model);

/**
 * Evaluate @p model over every communicating pair of @p l under clock
 * tree @p t. Compiles a SkewKernel for the call; callers evaluating
 * several models over one scenario should compile once and use the
 * kernel overload.
 *
 * @pre every cell of the layout is bound to a node of the tree (A4).
 */
[[nodiscard]] SkewReport analyzeSkew(const layout::Layout &l,
                                     const clocktree::ClockTree &t,
                                     const SkewModel &model);

/** A sampled concrete realisation of per-wire delays. */
struct SkewInstance
{
    /** Clock arrival time per tree node. */
    std::vector<Time> arrival;
    /** Realised |arrival(a) - arrival(b)| per communicating pair,
     *  in the same order as SkewReport::edges. */
    std::vector<Time> edgeSkew;
    /** Maximum realised skew between communicating cells. */
    Time maxCommSkew = 0.0;
};

/**
 * Draw one concrete chip: each tree wire gets a per-unit delay sampled
 * uniformly from [delay.lo(), delay.hi()] (the Section III
 * derivation), and arrival times accumulate down the tree.
 *
 * This is the retained naive path: every call re-resolves the comm
 * pairs and allocates its result. Sweeps should compile a SkewKernel
 * once and call SkewKernel::sampleMaxCommSkew per trial, which draws
 * the same delays in the same order (bit-identical results given the
 * same rng state).
 */
SkewInstance sampleSkewInstance(const layout::Layout &l,
                                const clocktree::ClockTree &t,
                                const WireDelay &delay, Rng &rng);

/**
 * Evaluate the realised skew of @p cell_arrival (indexed by cell id,
 * infinity = never clocked) over @p l's communicating pairs. This is
 * the skew-query surface the fault subsystem shares between trees and
 * TRIX grids: both reduce to a per-cell arrival vector first, so they
 * compare under identical fault plans. Compiles a pairs-only
 * SkewKernel per call; repeated evaluation (the resilience sweeps)
 * should compile once and call SkewKernel::arrivalSkew.
 */
[[nodiscard]] ArrivalSkew
skewFromArrivals(const layout::Layout &l,
                 const std::vector<Time> &cell_arrival);

/**
 * The worst-case chip permitted by the Section III wire-delay model:
 * per-wire unit delays are chosen adversarially (m + eps on one side
 * of the critical pair's tree path, m - eps on the other, m elsewhere)
 * so the communicating pair with the largest tree distance realises
 * its full skew m*d + eps*s. This is the instance whose existence
 * A11's lower bound asserts.
 */
SkewInstance adversarialSkewInstance(const layout::Layout &l,
                                     const clocktree::ClockTree &t,
                                     const WireDelay &delay);

} // namespace vsync::core

#endif // VSYNC_CORE_SKEW_ANALYSIS_HH
