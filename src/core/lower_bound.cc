#include "core/lower_bound.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "core/skew_analysis.hh"
#include "graph/tree.hh"

namespace vsync::core
{

double
theorem6Bound(std::size_t n_cells, double cut_width, double beta)
{
    VSYNC_ASSERT(beta >= 0.0, "beta must be non-negative");
    const double n = static_cast<double>(n_cells);
    const double area_case = std::sqrt(n / (10.0 * M_PI));
    const double cut_case = cut_width / (2.0 * M_PI);
    return beta * std::min(area_case, cut_case);
}

double
meshCutWidth(int n)
{
    VSYNC_ASSERT(n >= 1, "bad mesh side %d", n);
    // Grid isoperimetry: separating k <= N/2 cells from an n x n grid
    // cuts at least min(2 sqrt(k), n) edges. The circle argument leaves
    // the small side with at least 7/30 of the cells.
    const double cells = static_cast<double>(n) * n;
    const double k = std::ceil(cells * 7.0 / 30.0);
    return std::min(2.0 * std::sqrt(k), static_cast<double>(n));
}

double
instanceSkewLowerBound(const layout::Layout &l,
                       const clocktree::ClockTree &t, double beta)
{
    const SkewModel model = SkewModel::summation(
        [](Length) { return infinity; }, beta);
    const SkewReport report = analyzeSkew(SkewKernel(l, t), model);
    return beta * report.maxS;
}

CircleArgumentTrace
runCircleArgument(const layout::Layout &l, const clocktree::ClockTree &t,
                  double beta, double sigma)
{
    VSYNC_ASSERT(beta > 0.0, "circle argument needs beta > 0");
    VSYNC_ASSERT(sigma > 0.0, "circle argument needs sigma > 0");

    CircleArgumentTrace trace;
    const std::size_t n_cells = l.size();

    // Step 1 (Lemma 5): separate the cells 1/3-2/3 by one tree edge.
    std::vector<bool> marked(t.size(), false);
    for (CellId c = 0; static_cast<std::size_t>(c) < n_cells; ++c) {
        const NodeId node = t.nodeOfCell(c);
        VSYNC_ASSERT(node != invalidId, "cell %d not clocked (A4)", c);
        marked[node] = true;
    }
    const graph::SeparatorEdge sep =
        graph::findSeparatorEdge(t.structure(), marked);
    trace.separatorChild = sep.child;
    trace.cellsInA = static_cast<std::size_t>(sep.insideCount);
    trace.cellsInB = static_cast<std::size_t>(sep.outsideCount);

    // Which cells lie in the separated subtree (set A)?
    std::vector<bool> in_a(n_cells, false);
    for (NodeId v : t.structure().subtreeNodes(sep.child)) {
        const CellId c = t.cellOfNode(v);
        if (c != invalidId)
            in_a[c] = true;
    }

    // Step 2: the circle of radius sigma/beta centred at the subtree
    // root u. Any cell of A physically outside this circle is further
    // than sigma/beta from u along CLK (wire length >= displacement),
    // so under A11 it cannot communicate with any cell of B if the max
    // skew is really <= sigma.
    trace.center = t.position(sep.child);
    trace.radius = sigma / beta;
    std::vector<bool> in_circle(n_cells, false);
    for (CellId c = 0; static_cast<std::size_t>(c) < n_cells; ++c) {
        if (geom::euclidean(l.position(c), trace.center) < trace.radius) {
            in_circle[c] = true;
            ++trace.cellsInCircle;
        }
    }

    // Step 3a (area case): many cells inside the circle force the
    // circle -- hence sigma -- to be large, since cells occupy unit
    // area (A2).
    if (10 * trace.cellsInCircle >= n_cells) {
        trace.areaCase = true;
        trace.certifiedSigma =
            beta * std::sqrt(static_cast<double>(n_cells) / (10.0 * M_PI));
        return trace;
    }

    // Step 3b (cut case): adjust the partition (A-bar = A + circle
    // cells, B-bar = B - circle cells) and count communication edges
    // between the halves. Each must cross the circle boundary, whose
    // length 2 pi sigma / beta bounds their number via unit wire width
    // (A3). More crossings than the boundary admits contradict the
    // assumed sigma.
    std::size_t a_bar = 0;
    for (CellId c = 0; static_cast<std::size_t>(c) < n_cells; ++c)
        if (in_a[c] || in_circle[c])
            ++a_bar;
    const std::size_t b_bar = n_cells - a_bar;
    trace.largerAdjustedHalf = std::max(a_bar, b_bar);

    const SkewKernel kernel(l);
    for (std::size_t i = 0; i < kernel.pairCount(); ++i) {
        const CellId ca = kernel.pairCellsA()[i];
        const CellId cb = kernel.pairCellsB()[i];
        const bool sa = in_a[ca] || in_circle[ca];
        const bool sb = in_a[cb] || in_circle[cb];
        if (sa != sb)
            ++trace.crossingEdges;
    }

    const double boundary_capacity = 2.0 * M_PI * sigma / beta;
    if (static_cast<double>(trace.crossingEdges) > boundary_capacity) {
        trace.certifiedSigma =
            beta * static_cast<double>(trace.crossingEdges) /
            (2.0 * M_PI);
    } else {
        trace.certifiedSigma = 0.0; // no contradiction at this sigma
    }
    return trace;
}

double
circleArgumentLowerBound(const layout::Layout &l,
                         const clocktree::ClockTree &t, double beta,
                         int grid_steps)
{
    VSYNC_ASSERT(grid_steps >= 2, "need at least two grid steps");
    // Candidate sigmas span from one cell pitch of skew up to the
    // trivial maximum beta * (diameter of the tree).
    const double lo = beta * 0.5;
    const double hi = beta * (2.0 * t.maxRootPathLength() + 1.0);
    double best = 0.0;
    for (int i = 0; i < grid_steps; ++i) {
        const double frac =
            static_cast<double>(i) / static_cast<double>(grid_steps - 1);
        const double sigma = lo * std::pow(hi / lo, frac);
        const CircleArgumentTrace trace =
            runCircleArgument(l, t, beta, sigma);
        if (trace.areaCase) {
            // The area case never contradicts a candidate (unit cells
            // can always pack into a circle that big); larger sigmas
            // keep the area case firing, so stop scanning.
            break;
        }
        if (trace.certifiedSigma > 0.0) {
            // Contradiction: the true skew exceeds this candidate.
            best = std::max(best, sigma);
        }
    }
    return best;
}

} // namespace vsync::core
