/**
 * @file
 * The "spectrum of synchronization models": given what is known about
 * the technology (which skew model applies, whether clock transmission
 * is time-invariant, system size) and the communication topology, pick
 * the synchronization scheme the paper recommends and predict how the
 * clock period scales.
 */

#ifndef VSYNC_CORE_ADVISOR_HH
#define VSYNC_CORE_ADVISOR_HH

#include <string>

#include "common/fit.hh"
#include "core/skew_model.hh"
#include "graph/topology.hh"

namespace vsync::core
{

/** The synchronization schemes the paper proposes or analyses. */
enum class SyncScheme
{
    /** One global clock, whole tree settles per event (A6). */
    GlobalEquipotential,
    /** Pipelined clock on an equidistant H-tree (Section IV). */
    PipelinedHTree,
    /** Pipelined clock along the array (Section V-A, Fig 4-6). */
    PipelinedSpine,
    /** Clock distributed along the data paths of a tree (Section VIII). */
    ClockAlongDataPaths,
    /** Local clocks + self-timed handshake network (Section VI). */
    Hybrid,
    /** Fully self-timed cells (Seitz-style; the paper's costly last
     *  resort). */
    FullySelfTimed,
    /** Redundant median-voting clock grid (TRIX-style) -- tolerates
     *  single buffer faults with zero skew degradation. */
    RedundantGridTrix,
};

/** Human-readable scheme name. */
std::string syncSchemeName(SyncScheme scheme);

/** What the advisor knows about the implementation technology. */
struct TechnologyAssumptions
{
    /** Which skew model the clock distribution obeys (Section III). */
    SkewModelKind skewModel = SkewModelKind::Summation;

    /**
     * A8: signal travel time along a fixed path is invariant over
     * time. Pipelined clocking is impossible without it (Section VI).
     */
    bool temporalInvariance = true;

    /**
     * True when the system is small enough that a well-designed
     * equipotential clock meets the target period anyway (the Section
     * VII caveat: the 2048-inverter chip could be clocked at 50 ns
     * equipotentially with low-resistance distribution).
     */
    bool smallSystem = false;

    /**
     * Expected per-site fault probability over the system's lifetime
     * (dead/derated clock buffers). The paper assumes fault-free
     * distribution; at wafer scale that fails, and any nonzero rate
     * moves tree-based picks to the redundant TRIX grid, whose median
     * voting masks single buffer faults with zero skew degradation
     * (see mc/resilience and BENCH_fault_tolerance). Handshake-based
     * picks (Hybrid, FullySelfTimed) already degrade gracefully --
     * a severed wire stalls only the affected pair -- and stand.
     */
    double faultRate = 0.0;
};

/** The advisor's verdict. */
struct Advice
{
    SyncScheme scheme = SyncScheme::Hybrid;
    /** Predicted clock-period growth with cell count under the pick. */
    GrowthLaw periodGrowth = GrowthLaw::Constant;
    /** Which theorem or section justifies the pick. */
    std::string justification;
};

/**
 * Recommend a synchronization scheme for a topology under the given
 * technology assumptions, following the paper's results:
 *
 * - no A8: pipelined clocking fails -> Hybrid (Section VI);
 * - small system: global equipotential clocking is simplest and fine;
 * - difference model: H-tree, period O(1) for any array (Theorem 2);
 * - summation model: spine for 1-D arrays, period O(1) (Theorem 3);
 *   clock-along-data-paths for trees (Section VIII); Hybrid for meshes
 *   and other graphs with bisection width growing with N (Theorem 6
 *   rules out bounded-skew global clocking).
 */
[[nodiscard]] Advice adviseScheme(graph::TopologyKind kind,
                                  const TechnologyAssumptions &tech);

} // namespace vsync::core

#endif // VSYNC_CORE_ADVISOR_HH
