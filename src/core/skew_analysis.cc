#include "core/skew_analysis.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace vsync::core
{

SkewReport
analyzeSkew(const SkewKernel &kernel, const SkewModel &model)
{
    VSYNC_ASSERT(kernel.hasTree(),
                 "analyzeSkew needs a tree-compiled kernel");
    SkewReport report;
    const std::size_t pairs = kernel.pairCount();
    report.edges.reserve(pairs);

    for (std::size_t i = 0; i < pairs; ++i) {
        const NodeId na = kernel.pairNodesA()[i];
        const NodeId nb = kernel.pairNodesB()[i];
        EdgeSkew es;
        es.a = kernel.pairCellsA()[i];
        es.b = kernel.pairCellsB()[i];
        es.d = kernel.pathDifference(na, nb);
        es.s = kernel.treeDistance(na, nb);
        es.upper = model.upperBound(es.d, es.s);
        es.lower = model.lowerBound(es.s);
        report.edges.push_back(es);

        if (es.upper > report.maxSkewUpper) {
            report.maxSkewUpper = es.upper;
            report.worstIndex = report.edges.size() - 1;
        }
        report.maxSkewLower = std::max(report.maxSkewLower, es.lower);
        report.maxD = std::max(report.maxD, es.d);
        report.maxS = std::max(report.maxS, es.s);
    }
    return report;
}

SkewReport
analyzeSkew(const layout::Layout &l, const clocktree::ClockTree &t,
            const SkewModel &model)
{
    return analyzeSkew(SkewKernel(l, t), model);
}

namespace
{

/** Tree-node endpoints of every comm pair (pre-kernel helper, kept
 *  for the retained naive paths). */
std::vector<std::pair<NodeId, NodeId>>
resolveCommNodePairs(const layout::Layout &l,
                     const clocktree::ClockTree &t)
{
    std::vector<std::pair<NodeId, NodeId>> pairs;
    const auto edges = l.comm().undirectedEdges();
    pairs.reserve(edges.size());
    for (const graph::Edge &pair : edges) {
        const NodeId na = t.nodeOfCell(pair.src);
        const NodeId nb = t.nodeOfCell(pair.dst);
        VSYNC_ASSERT(na != invalidId && nb != invalidId,
                     "cells %d/%d not clocked by the tree (A4)",
                     pair.src, pair.dst);
        pairs.emplace_back(na, nb);
    }
    return pairs;
}

/** Accumulate sampled arrival times down the tree into @p arrival. */
void
sampleArrivals(const clocktree::ClockTree &t, const WireDelay &delay,
               Rng &rng, std::vector<Time> &arrival)
{
    const double lo = delay.m - delay.eps;
    const double hi = delay.m + delay.eps;
    arrival.assign(t.size(), 0.0);
    // Wires were created parent-before-child; accumulate forward.
    for (NodeId v = 1; static_cast<std::size_t>(v) < t.size(); ++v) {
        const NodeId p = t.structure().parent(v);
        const double unit_delay = rng.uniform(lo, hi);
        arrival[v] = arrival[p] + unit_delay * t.wireLength(v);
    }
}

} // namespace

SkewInstance
sampleSkewInstance(const layout::Layout &l, const clocktree::ClockTree &t,
                   const WireDelay &delay, Rng &rng)
{
    VSYNC_ASSERT(delay.valid(), "bad delay parameters m=%g eps=%g",
                 delay.m, delay.eps);
    SkewInstance inst;
    sampleArrivals(t, delay, rng, inst.arrival);

    const auto pairs = resolveCommNodePairs(l, t);
    inst.edgeSkew.reserve(pairs.size());
    for (const auto &[na, nb] : pairs) {
        const Time skew = std::fabs(inst.arrival[na] - inst.arrival[nb]);
        inst.edgeSkew.push_back(skew);
        inst.maxCommSkew = std::max(inst.maxCommSkew, skew);
    }
    return inst;
}

SkewInstance
adversarialSkewInstance(const layout::Layout &l,
                        const clocktree::ClockTree &t,
                        const WireDelay &delay)
{
    VSYNC_ASSERT(delay.valid(), "bad delay parameters m=%g eps=%g",
                 delay.m, delay.eps);
    const double m = delay.m;
    const double eps = delay.eps;
    const SkewKernel kernel(l, t);

    // Find the communicating pair with the largest tree distance.
    NodeId worst_a = invalidId, worst_b = invalidId;
    Length worst_s = -1.0;
    for (std::size_t i = 0; i < kernel.pairCount(); ++i) {
        const NodeId na = kernel.pairNodesA()[i];
        const NodeId nb = kernel.pairNodesB()[i];
        const Length s = kernel.treeDistance(na, nb);
        if (s > worst_s) {
            worst_s = s;
            worst_a = na;
            worst_b = nb;
        }
    }
    VSYNC_ASSERT(worst_a != invalidId, "no communicating pairs");

    // Mark the slow side (m + eps) and the fast side (m - eps). The
    // skew of the pair is (m+eps) h_slow - (m-eps) h_fast =
    // m (h_slow - h_fast) + eps s, maximised by slowing the *longer*
    // branch.
    const NodeId anc = kernel.nca(worst_a, worst_b);
    const Length h_a =
        kernel.rootPathLength(worst_a) - kernel.rootPathLength(anc);
    const Length h_b =
        kernel.rootPathLength(worst_b) - kernel.rootPathLength(anc);
    if (h_b > h_a)
        std::swap(worst_a, worst_b); // worst_a is the longer branch
    std::vector<int> side(kernel.nodeCount(), 0); // +1 slow, -1 fast
    for (NodeId v = worst_a; v != anc; v = kernel.parent(v))
        side[v] = 1;
    for (NodeId v = worst_b; v != anc; v = kernel.parent(v))
        side[v] = -1;

    SkewInstance inst;
    inst.arrival.assign(kernel.nodeCount(), 0.0);
    for (NodeId v = 1;
         static_cast<std::size_t>(v) < kernel.nodeCount(); ++v) {
        const NodeId p = kernel.parent(v);
        const double unit =
            side[v] > 0 ? m + eps : (side[v] < 0 ? m - eps : m);
        inst.arrival[v] = inst.arrival[p] + unit * kernel.wireLength(v);
    }

    inst.edgeSkew.reserve(kernel.pairCount());
    for (std::size_t i = 0; i < kernel.pairCount(); ++i) {
        const NodeId na = kernel.pairNodesA()[i];
        const NodeId nb = kernel.pairNodesB()[i];
        const Time skew = std::fabs(inst.arrival[na] - inst.arrival[nb]);
        inst.edgeSkew.push_back(skew);
        inst.maxCommSkew = std::max(inst.maxCommSkew, skew);
    }
    return inst;
}

ArrivalSkew
skewFromArrivals(const layout::Layout &l,
                 const std::vector<Time> &cell_arrival)
{
    return SkewKernel(l).arrivalSkew(cell_arrival);
}

} // namespace vsync::core
