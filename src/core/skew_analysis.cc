#include "core/skew_analysis.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace vsync::core
{

SkewReport
analyzeSkew(const layout::Layout &l, const clocktree::ClockTree &t,
            const SkewModel &model)
{
    SkewReport report;
    const auto pairs = l.comm().undirectedEdges();
    report.edges.reserve(pairs.size());

    for (const graph::Edge &pair : pairs) {
        const NodeId na = t.nodeOfCell(pair.src);
        const NodeId nb = t.nodeOfCell(pair.dst);
        VSYNC_ASSERT(na != invalidId && nb != invalidId,
                     "cells %d/%d not clocked by the tree (A4)",
                     pair.src, pair.dst);
        EdgeSkew es;
        es.a = pair.src;
        es.b = pair.dst;
        es.d = t.pathDifference(na, nb);
        es.s = t.treeDistance(na, nb);
        es.upper = model.upperBound(es.d, es.s);
        es.lower = model.lowerBound(es.s);
        report.edges.push_back(es);

        if (es.upper > report.maxSkewUpper) {
            report.maxSkewUpper = es.upper;
            report.worstIndex = report.edges.size() - 1;
        }
        report.maxSkewLower = std::max(report.maxSkewLower, es.lower);
        report.maxD = std::max(report.maxD, es.d);
        report.maxS = std::max(report.maxS, es.s);
    }
    return report;
}

std::vector<std::pair<NodeId, NodeId>>
commNodePairs(const layout::Layout &l, const clocktree::ClockTree &t)
{
    std::vector<std::pair<NodeId, NodeId>> pairs;
    const auto edges = l.comm().undirectedEdges();
    pairs.reserve(edges.size());
    for (const graph::Edge &pair : edges) {
        const NodeId na = t.nodeOfCell(pair.src);
        const NodeId nb = t.nodeOfCell(pair.dst);
        VSYNC_ASSERT(na != invalidId && nb != invalidId,
                     "cells %d/%d not clocked by the tree (A4)",
                     pair.src, pair.dst);
        pairs.emplace_back(na, nb);
    }
    return pairs;
}

namespace
{

/** Accumulate sampled arrival times down the tree into @p arrival. */
void
sampleArrivals(const clocktree::ClockTree &t, double m, double eps,
               Rng &rng, std::vector<Time> &arrival)
{
    arrival.assign(t.size(), 0.0);
    // Wires were created parent-before-child; accumulate forward.
    for (NodeId v = 1; static_cast<std::size_t>(v) < t.size(); ++v) {
        const NodeId p = t.structure().parent(v);
        const double unit_delay = rng.uniform(m - eps, m + eps);
        arrival[v] = arrival[p] + unit_delay * t.wireLength(v);
    }
}

} // namespace

SkewInstance
sampleSkewInstance(const layout::Layout &l, const clocktree::ClockTree &t,
                   double m, double eps, Rng &rng)
{
    VSYNC_ASSERT(m > 0.0 && eps >= 0.0 && eps <= m,
                 "bad delay parameters m=%g eps=%g", m, eps);
    SkewInstance inst;
    sampleArrivals(t, m, eps, rng, inst.arrival);

    const auto pairs = commNodePairs(l, t);
    inst.edgeSkew.reserve(pairs.size());
    for (const auto &[na, nb] : pairs) {
        const Time skew = std::fabs(inst.arrival[na] - inst.arrival[nb]);
        inst.edgeSkew.push_back(skew);
        inst.maxCommSkew = std::max(inst.maxCommSkew, skew);
    }
    return inst;
}

Time
sampleMaxCommSkew(const clocktree::ClockTree &t,
                  const std::vector<std::pair<NodeId, NodeId>> &pairs,
                  double m, double eps, Rng &rng,
                  std::vector<Time> &arrival)
{
    VSYNC_ASSERT(m > 0.0 && eps >= 0.0 && eps <= m,
                 "bad delay parameters m=%g eps=%g", m, eps);
    sampleArrivals(t, m, eps, rng, arrival);
    Time worst = 0.0;
    for (const auto &[na, nb] : pairs)
        worst = std::max(worst, std::fabs(arrival[na] - arrival[nb]));
    return worst;
}

SkewInstance
adversarialSkewInstance(const layout::Layout &l,
                        const clocktree::ClockTree &t, double m,
                        double eps)
{
    VSYNC_ASSERT(m > 0.0 && eps >= 0.0 && eps <= m,
                 "bad delay parameters m=%g eps=%g", m, eps);

    // Find the communicating pair with the largest tree distance.
    NodeId worst_a = invalidId, worst_b = invalidId;
    Length worst_s = -1.0;
    for (const graph::Edge &pair : l.comm().undirectedEdges()) {
        const NodeId na = t.nodeOfCell(pair.src);
        const NodeId nb = t.nodeOfCell(pair.dst);
        VSYNC_ASSERT(na != invalidId && nb != invalidId,
                     "cells %d/%d not clocked by the tree (A4)",
                     pair.src, pair.dst);
        const Length s = t.treeDistance(na, nb);
        if (s > worst_s) {
            worst_s = s;
            worst_a = na;
            worst_b = nb;
        }
    }
    VSYNC_ASSERT(worst_a != invalidId, "no communicating pairs");

    // Mark the slow side (m + eps) and the fast side (m - eps). The
    // skew of the pair is (m+eps) h_slow - (m-eps) h_fast =
    // m (h_slow - h_fast) + eps s, maximised by slowing the *longer*
    // branch.
    const NodeId anc = t.structure().nca(worst_a, worst_b);
    const Length h_a =
        t.rootPathLength(worst_a) - t.rootPathLength(anc);
    const Length h_b =
        t.rootPathLength(worst_b) - t.rootPathLength(anc);
    if (h_b > h_a)
        std::swap(worst_a, worst_b); // worst_a is the longer branch
    std::vector<int> side(t.size(), 0); // +1 slow, -1 fast
    for (NodeId v = worst_a; v != anc; v = t.structure().parent(v))
        side[v] = 1;
    for (NodeId v = worst_b; v != anc; v = t.structure().parent(v))
        side[v] = -1;

    SkewInstance inst;
    inst.arrival.assign(t.size(), 0.0);
    for (NodeId v = 1; static_cast<std::size_t>(v) < t.size(); ++v) {
        const NodeId p = t.structure().parent(v);
        const double unit =
            side[v] > 0 ? m + eps : (side[v] < 0 ? m - eps : m);
        inst.arrival[v] = inst.arrival[p] + unit * t.wireLength(v);
    }

    for (const graph::Edge &pair : l.comm().undirectedEdges()) {
        const NodeId na = t.nodeOfCell(pair.src);
        const NodeId nb = t.nodeOfCell(pair.dst);
        const Time skew = std::fabs(inst.arrival[na] - inst.arrival[nb]);
        inst.edgeSkew.push_back(skew);
        inst.maxCommSkew = std::max(inst.maxCommSkew, skew);
    }
    return inst;
}

ArrivalSkew
skewFromArrivals(const layout::Layout &l,
                 const std::vector<Time> &cell_arrival)
{
    VSYNC_ASSERT(cell_arrival.size() == l.size(),
                 "%zu arrivals for %zu cells", cell_arrival.size(),
                 l.size());
    ArrivalSkew out;
    if (!l.size())
        return out;

    std::size_t clocked = 0;
    for (const Time t : cell_arrival)
        clocked += t < infinity;
    out.clockedFraction =
        static_cast<double>(clocked) / static_cast<double>(l.size());

    for (const graph::Edge &pair : l.comm().undirectedEdges()) {
        ++out.pairCount;
        const Time ta = cell_arrival.at(pair.src);
        const Time tb = cell_arrival.at(pair.dst);
        if (ta >= infinity || tb >= infinity)
            continue;
        ++out.clockedPairs;
        out.maxCommSkew = std::max(out.maxCommSkew, std::fabs(ta - tb));
    }
    return out;
}

} // namespace vsync::core
