/**
 * @file
 * Clock period accounting (assumptions A5-A7).
 *
 * A clocked system runs with period sigma + delta + tau (A5):
 *   sigma - max skew between communicating cells (from SkewAnalysis),
 *   delta - max cell compute + output propagation time,
 *   tau   - time to distribute one clocking event on CLK:
 *           equipotential (A6): tau = alpha * P, P = longest root-leaf
 *           path, because the whole tree must settle per event;
 *           pipelined (A7):     tau = max delay through one buffer and
 *           its output segment -- constant in array size.
 *
 * The paper notes the exact formula depends on the clocking discipline
 * (e.g. max(tau, 2 sigma + delta)) but shares its growth; we expose both.
 */

#ifndef VSYNC_CORE_CLOCK_PERIOD_HH
#define VSYNC_CORE_CLOCK_PERIOD_HH

#include <string>

#include "clocktree/buffering.hh"
#include "clocktree/clock_tree.hh"
#include "core/skew_analysis.hh"

namespace vsync::core
{

/** How clock events travel down CLK. */
enum class ClockingMode
{
    Equipotential, ///< whole tree settles per event (A6)
    Pipelined,     ///< several events in flight, buffered tree (A7)
};

/** Name of a clocking mode. */
std::string clockingModeName(ClockingMode mode);

/** Timing parameters of the clocking technology. */
struct ClockParams
{
    /**
     * Equipotential settling cost per unit of longest root-leaf path
     * (A6's alpha, ns per lambda). Physically this reflects the RC per
     * unit length of an undriven distribution wire.
     */
    double alpha = 0.1;

    /** Mean signal propagation delay per unit wire length (ns/lambda). */
    double m = 0.05;

    /** Per-unit delay variation amplitude (the models' eps, ns/lambda). */
    double eps = 0.005;

    /** Propagation delay through one clock buffer (ns). */
    Time bufferDelay = 0.2;

    /** Buffer spacing used for pipelined distribution (lambda). */
    Length bufferSpacing = 4.0;

    /** Max cell compute + output propagation time delta (ns, A5). */
    Time delta = 2.0;
};

/** The components of an achievable clock period. */
struct PeriodBreakdown
{
    Time sigma = 0.0;
    Time delta = 0.0;
    Time tau = 0.0;
    /** sigma + delta + tau (A5's simple sum). */
    Time period = 0.0;
    /** max(tau, 2 sigma + delta): the alternative exact form. */
    Time altPeriod = 0.0;
    ClockingMode mode = ClockingMode::Equipotential;
};

/**
 * Compute the period for clocking @p tree under @p params.
 *
 * @param skew  result of analyzeSkew for the same tree.
 * @param tree  the (unbuffered) clock tree; supplies P for A6.
 * @param params technology timing.
 * @param mode  equipotential or pipelined distribution.
 */
PeriodBreakdown clockPeriod(const SkewReport &skew,
                            const clocktree::ClockTree &tree,
                            const ClockParams &params, ClockingMode mode);

/**
 * Pipelined tau for an explicitly buffered tree: buffer delay plus the
 * longest buffer-free segment's wire delay (A7).
 */
Time pipelinedTau(const clocktree::BufferedClockTree &buffered,
                  const ClockParams &params);

/**
 * Parameters of a two-phase non-overlapping clock (the standard nMOS
 * discipline of the paper's era; see Mead & Conway [7] ch. 7).
 */
struct TwoPhaseParams
{
    /** Minimum phi-1 high time: evaluation through the logic (ns). */
    Time phi1Min = 2.0;
    /** Minimum phi-2 high time: transfer/precharge (ns). */
    Time phi2Min = 1.0;
    /** Nominal dead time between phases at the generator (ns). */
    Time nonoverlapMin = 0.25;
};

/**
 * Achievable two-phase period under skew sigma: the phases must stay
 * non-overlapping at *every* cell, so each of the two gaps must absorb
 * the worst-case skew between communicating cells:
 *
 *   period = phi1 + phi2 + 2 * (nonoverlap + sigma).
 *
 * Another exact formula with the same A5 growth (sigma enters
 * linearly); used by the period-formula ablation.
 */
Time twoPhasePeriod(const SkewReport &skew, const TwoPhaseParams &params);

} // namespace vsync::core

#endif // VSYNC_CORE_CLOCK_PERIOD_HH
