#include "core/skew_kernel.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"

namespace vsync::core
{

SkewKernel::SkewKernel(const layout::Layout &l)
{
    const auto t0 = std::chrono::steady_clock::now();
    compilePairs(l, nullptr);
    buildMs = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
}

SkewKernel::SkewKernel(const layout::Layout &l,
                       const clocktree::ClockTree &t)
{
    const auto t0 = std::chrono::steady_clock::now();
    compileTree(t);
    compilePairs(l, &t);
    buildMs = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
}

void
SkewKernel::compilePairs(const layout::Layout &l,
                         const clocktree::ClockTree *t)
{
    cells = l.size();
    const auto edges = l.comm().undirectedEdges();
    pairCellA.reserve(edges.size());
    pairCellB.reserve(edges.size());
    if (t) {
        nodeOf.assign(cells, invalidId);
        for (CellId c = 0; static_cast<std::size_t>(c) < cells; ++c)
            nodeOf[c] = t->nodeOfCell(c);
        pairNodeA.reserve(edges.size());
        pairNodeB.reserve(edges.size());
    }
    for (const graph::Edge &pair : edges) {
        pairCellA.push_back(pair.src);
        pairCellB.push_back(pair.dst);
        if (t) {
            const NodeId na = nodeOf[pair.src];
            const NodeId nb = nodeOf[pair.dst];
            VSYNC_ASSERT(na != invalidId && nb != invalidId,
                         "cells %d/%d not clocked by the tree (A4)",
                         pair.src, pair.dst);
            pairNodeA.push_back(na);
            pairNodeB.push_back(nb);
        }
    }

    // Fold-only sorted copies. The public arrays above keep
    // undirectedEdges() order (SkewReport/SkewInstance depend on it);
    // the folds are max/count reductions, exact under any order, so
    // they get endpoint-sorted copies whose gathers walk the arrival
    // surface near-monotonically instead of in layout order.
    const std::size_t npairs = pairCellA.size();
    std::vector<std::pair<CellId, CellId>> cellPairs(npairs);
    for (std::size_t i = 0; i < npairs; ++i) {
        cellPairs[i] = {std::min(pairCellA[i], pairCellB[i]),
                        std::max(pairCellA[i], pairCellB[i])};
    }
    std::sort(cellPairs.begin(), cellPairs.end());
    foldCellA.resize(npairs);
    foldCellB.resize(npairs);
    for (std::size_t i = 0; i < npairs; ++i) {
        foldCellA[i] = cellPairs[i].first;
        foldCellB[i] = cellPairs[i].second;
    }
    if (t) {
        std::vector<std::pair<NodeId, NodeId>> nodePairs(npairs);
        for (std::size_t i = 0; i < npairs; ++i) {
            nodePairs[i] = {std::min(pairNodeA[i], pairNodeB[i]),
                            std::max(pairNodeA[i], pairNodeB[i])};
        }
        std::sort(nodePairs.begin(), nodePairs.end());
        foldNodeA.resize(npairs);
        foldNodeB.resize(npairs);
        for (std::size_t i = 0; i < npairs; ++i) {
            foldNodeA[i] = nodePairs[i].first;
            foldNodeB[i] = nodePairs[i].second;
        }
    }
}

void
SkewKernel::compileTree(const clocktree::ClockTree &t)
{
    const std::size_t n = t.size();
    VSYNC_ASSERT(n > 0, "cannot compile an empty clock tree");
    const graph::RootedTree &structure = t.structure();

    // Flatten parent/wire-length and verify the id order is
    // topological (ClockTree::addChild guarantees parent-before-child,
    // so ids double as the propagation order).
    parentOf.resize(n);
    wireLen.resize(n);
    h.resize(n);
    parentOf[0] = invalidId;
    wireLen[0] = 0.0;
    h[0] = 0.0;
    for (NodeId v = 1; static_cast<std::size_t>(v) < n; ++v) {
        const NodeId p = structure.parent(v);
        VSYNC_ASSERT(p != invalidId && p < v,
                     "node %d's parent %d breaks topological id order",
                     v, p);
        parentOf[v] = p;
        wireLen[v] = t.wireLength(v);
        h[v] = h[p] + wireLen[v];
    }

    // Euler tour: every node is recorded on entry and again after each
    // child subtree returns, giving 2n - 1 tour positions; nca(a, b) is
    // the minimum-depth position between the first occurrences of a
    // and b.
    std::vector<std::int32_t> depth(n, 0);
    for (NodeId v = 1; static_cast<std::size_t>(v) < n; ++v)
        depth[v] = depth[parentOf[v]] + 1;

    eulerNode.reserve(2 * n - 1);
    eulerDepth.reserve(2 * n - 1);
    firstSeen.assign(n, -1);
    struct Frame
    {
        NodeId node;
        std::size_t nextChild;
    };
    std::vector<Frame> stack;
    stack.push_back({0, 0});
    while (!stack.empty()) {
        Frame &f = stack.back();
        const auto &kids = structure.children(f.node);
        // Each frame visit records once: on entry, then once more
        // after every child subtree returns -- 2n - 1 records total.
        eulerNode.push_back(f.node);
        eulerDepth.push_back(depth[f.node]);
        if (firstSeen[f.node] < 0) {
            firstSeen[f.node] =
                static_cast<std::int32_t>(eulerNode.size() - 1);
        }
        if (f.nextChild < kids.size()) {
            const NodeId child = kids[f.nextChild];
            ++f.nextChild;
            stack.push_back({child, 0});
        } else {
            stack.pop_back();
        }
    }

    // Sparse table over tour depths: sparse[k][i] is the tour position
    // of the minimum depth in [i, i + 2^k).
    const std::size_t m = eulerNode.size();
    logTable.assign(m + 1, 0);
    for (std::size_t i = 2; i <= m; ++i)
        logTable[i] = logTable[i / 2] + 1;
    const int levels = logTable[m] + 1;
    sparse.assign(levels, {});
    sparse[0].resize(m);
    for (std::size_t i = 0; i < m; ++i)
        sparse[0][i] = static_cast<std::int32_t>(i);
    for (int k = 1; k < levels; ++k) {
        const std::size_t half = std::size_t{1} << (k - 1);
        const std::size_t len = std::size_t{1} << k;
        sparse[k].resize(m + 1 - len);
        for (std::size_t i = 0; i + len <= m; ++i) {
            const std::int32_t left = sparse[k - 1][i];
            const std::int32_t right = sparse[k - 1][i + half];
            sparse[k][i] =
                eulerDepth[left] <= eulerDepth[right] ? left : right;
        }
    }
}

NodeId
SkewKernel::nca(NodeId a, NodeId b) const
{
    VSYNC_ASSERT(hasTree(), "nca() needs a tree-compiled kernel");
    VSYNC_ASSERT(a >= 0 && static_cast<std::size_t>(a) < nodeCount() &&
                     b >= 0 &&
                     static_cast<std::size_t>(b) < nodeCount(),
                 "nca of invalid nodes %d/%d", a, b);
    served.fetch_add(1, std::memory_order_relaxed);
    std::int32_t lo = firstSeen[a];
    std::int32_t hi = firstSeen[b];
    if (lo > hi)
        std::swap(lo, hi);
    const std::int32_t len = hi - lo + 1;
    const int k = logTable[len];
    const std::int32_t left = sparse[k][lo];
    const std::int32_t right = sparse[k][hi - (1 << k) + 1];
    return eulerNode[eulerDepth[left] <= eulerDepth[right] ? left
                                                           : right];
}

Length
SkewKernel::pathDifference(NodeId a, NodeId b) const
{
    VSYNC_ASSERT(hasTree(), "pathDifference() needs a tree kernel");
    served.fetch_add(1, std::memory_order_relaxed);
    return std::fabs(h[a] - h[b]);
}

Length
SkewKernel::treeDistance(NodeId a, NodeId b) const
{
    return h[a] + h[b] - 2.0 * h[nca(a, b)];
}

void
SkewKernel::arrivals(const WireDelay &delay, Rng &rng,
                     std::span<Time> out) const
{
    VSYNC_ASSERT(hasTree(), "arrivals() needs a tree-compiled kernel");
    VSYNC_ASSERT(delay.valid(), "bad delay parameters m=%g eps=%g",
                 delay.m, delay.eps);
    VSYNC_ASSERT(out.size() == nodeCount(),
                 "%zu arrival slots for %zu nodes", out.size(),
                 nodeCount());
    const double lo = delay.m - delay.eps;
    const double hi = delay.m + delay.eps;
    out[0] = 0.0;
    // One uniform draw per non-root node in id order: the exact draw
    // sequence of the pre-kernel sampleSkewInstance, preserving
    // bit-identity of substream-driven sweeps.
    const std::size_t n = nodeCount();
    for (std::size_t v = 1; v < n; ++v)
        out[v] = out[parentOf[v]] + rng.uniform(lo, hi) * wireLen[v];
    batches.fetch_add(1, std::memory_order_relaxed);
}

Time
SkewKernel::maxCommSkew(std::span<const Time> node_arrival) const
{
    // laneStride(1) == 1, so a contiguous arrival surface IS a
    // width-1 lane-major matrix: the scalar fold is the blocked fold.
    Time worst = 0.0;
    maxCommSkewBlock(node_arrival, std::span<Time>(&worst, 1));
    return worst;
}

void
SkewKernel::maxCommSkewBlock(std::span<const Time> lane_arrival,
                             std::span<Time> out) const
{
    VSYNC_ASSERT(hasTree(), "maxCommSkew() needs a tree kernel");
    const std::size_t width = out.size();
    VSYNC_ASSERT(width >= 1 && width <= maxLanes,
                 "%zu lanes (1..%zu supported)", width, maxLanes);
    const std::size_t stride = laneStride(width);
    VSYNC_ASSERT(lane_arrival.size() == nodeCount() * stride,
                 "%zu arrival slots for %zu nodes x stride %zu",
                 lane_arrival.size(), nodeCount(), stride);
    Time worst[maxLanes] = {};
    const std::size_t pairs = pairCount();
    const Time *arr = lane_arrival.data();
    for (std::size_t i = 0; i < pairs; ++i) {
        const Time *ra =
            arr + static_cast<std::size_t>(foldNodeA[i]) * stride;
        const Time *rb =
            arr + static_cast<std::size_t>(foldNodeB[i]) * stride;
        for (std::size_t j = 0; j < width; ++j)
            worst[j] = std::max(worst[j], std::fabs(ra[j] - rb[j]));
    }
    for (std::size_t j = 0; j < width; ++j)
        out[j] = worst[j];
    served.fetch_add(pairs * width, std::memory_order_relaxed);
}

Time
SkewKernel::sampleMaxCommSkew(const WireDelay &delay, Rng &rng,
                              std::vector<Time> &scratch) const
{
    scratch.resize(nodeCount());
    arrivals(delay, rng, scratch);
    return maxCommSkew(scratch);
}

void
SkewKernel::arrivalsBlock(const WireDelay &delay, std::span<Rng> lanes,
                          std::span<Time> out) const
{
    VSYNC_ASSERT(hasTree(), "arrivals() needs a tree-compiled kernel");
    VSYNC_ASSERT(delay.valid(), "bad delay parameters m=%g eps=%g",
                 delay.m, delay.eps);
    const std::size_t width = lanes.size();
    VSYNC_ASSERT(width >= 1 && width <= maxLanes,
                 "%zu lanes (1..%zu supported)", width, maxLanes);
    const std::size_t stride = laneStride(width);
    VSYNC_ASSERT(out.size() == nodeCount() * stride,
                 "%zu arrival slots for %zu nodes x stride %zu",
                 out.size(), nodeCount(), stride);
    const double lo = delay.m - delay.eps;
    const double hi = delay.m + delay.eps;
    Time *arr = out.data();
    for (std::size_t j = 0; j < width; ++j)
        arr[j] = 0.0;
    // Node chunks keep the draw matrix L1-resident: each lane
    // bulk-fills its strided column (one fillUniform call per lane per
    // chunk, in node id order, so lane j consumes the exact scalar
    // draw sequence of arrivals()), then the node-outer, lane-inner
    // propagation reads the rows back. The arithmetic per lane is the
    // identical expression shape as the scalar path, so every slot is
    // bitwise what arrivals() would have produced for that lane's Rng.
    constexpr std::size_t chunkNodes = 64;
    alignas(64) double draw[chunkNodes * (maxLanes + 1)];
    const std::size_t n = nodeCount();
    for (std::size_t v0 = 1; v0 < n; v0 += chunkNodes) {
        const std::size_t cnt = std::min(chunkNodes, n - v0);
        for (std::size_t j = 0; j < width; ++j)
            lanes[j].fillUniform(lo, hi, draw + j, cnt, stride);
        for (std::size_t k = 0; k < cnt; ++k) {
            const std::size_t v = v0 + k;
            const Time *parentRow =
                arr + static_cast<std::size_t>(parentOf[v]) * stride;
            Time *row = arr + v * stride;
            const double *drow = draw + k * stride;
            const Length wl = wireLen[v];
            for (std::size_t j = 0; j < width; ++j)
                row[j] = parentRow[j] + drow[j] * wl;
        }
    }
    batches.fetch_add(width, std::memory_order_relaxed);
}

void
SkewKernel::sampleMaxCommSkewBlock(const WireDelay &delay,
                                   std::span<Rng> lanes,
                                   std::span<Time> out_skew,
                                   std::vector<Time> &scratch) const
{
    VSYNC_ASSERT(out_skew.size() == lanes.size(),
                 "%zu skew slots for %zu lanes", out_skew.size(),
                 lanes.size());
    scratch.resize(nodeCount() * laneStride(lanes.size()));
    arrivalsBlock(delay, lanes, scratch);
    maxCommSkewBlock(scratch, out_skew);
}

ArrivalSkew
SkewKernel::arrivalSkew(std::span<const Time> cell_arrival) const
{
    // Width-1 blocked evaluation (laneStride(1) == 1; see
    // maxCommSkew).
    ArrivalSkew out;
    arrivalSkewBlock(cell_arrival, std::span<ArrivalSkew>(&out, 1));
    return out;
}

void
SkewKernel::arrivalSkewBlock(std::span<const Time> lane_cell_arrival,
                             std::span<ArrivalSkew> out) const
{
    const std::size_t width = out.size();
    VSYNC_ASSERT(width >= 1 && width <= maxLanes,
                 "%zu lanes (1..%zu supported)", width, maxLanes);
    const std::size_t stride = laneStride(width);
    VSYNC_ASSERT(lane_cell_arrival.size() == cellCount() * stride,
                 "%zu arrival slots for %zu cells x stride %zu",
                 lane_cell_arrival.size(), cellCount(), stride);
    for (ArrivalSkew &o : out)
        o = ArrivalSkew{};
    if (!cellCount())
        return;

    const Time *arr = lane_cell_arrival.data();
    std::size_t clocked[maxLanes] = {};
    const std::size_t ncells = cellCount();
    for (std::size_t c = 0; c < ncells; ++c) {
        const Time *row = arr + c * stride;
        for (std::size_t j = 0; j < width; ++j)
            clocked[j] += row[j] < infinity;
    }

    const std::size_t pairs = pairCount();
    for (std::size_t i = 0; i < pairs; ++i) {
        const Time *ra =
            arr + static_cast<std::size_t>(foldCellA[i]) * stride;
        const Time *rb =
            arr + static_cast<std::size_t>(foldCellB[i]) * stride;
        for (std::size_t j = 0; j < width; ++j) {
            const Time ta = ra[j];
            const Time tb = rb[j];
            if (ta >= infinity || tb >= infinity)
                continue;
            ++out[j].clockedPairs;
            out[j].maxCommSkew =
                std::max(out[j].maxCommSkew, std::fabs(ta - tb));
        }
    }
    for (std::size_t j = 0; j < width; ++j) {
        out[j].clockedFraction = static_cast<double>(clocked[j]) /
                                 static_cast<double>(ncells);
        out[j].pairCount = pairs;
    }
    served.fetch_add(pairs * width, std::memory_order_relaxed);
}

std::size_t
SkewKernel::blockWidth() const
{
    std::call_once(tuneOnce, [this] { tunedWidth = autotuneWidth(); });
    return tunedWidth;
}

std::size_t
SkewKernel::autotuneWidth() const
{
    // A tiny best-of-reps sweep over widths 1..8 on this kernel's own
    // arrays. The probe trial count per call equals the width, so the
    // per-trial cost is bestMs / w; every width is bit-identical, so a
    // noisy pick costs speed, never correctness. The counter traffic
    // (batches/served) is a fixed function of the kernel shape --
    // independent of the measured timings -- keeping metric exports
    // deterministic across hosts and runs.
    constexpr std::size_t probeMax = 8;
    constexpr int reps = 3;
    constexpr std::uint64_t probeSeed = 0x7a9eb10cULL;
    if (!hasTree() && !cellCount())
        return 1;
    using ProbeClock = std::chrono::steady_clock;
    const WireDelay probeDelay; // defaults are valid()
    std::vector<Time> scratch;
    std::array<Time, probeMax> skews;
    std::array<ArrivalSkew, probeMax> surfaces;
    std::vector<Rng> lanes;
    lanes.reserve(probeMax);
    double bestPerTrial = infinity;
    std::size_t best = 1;
    for (std::size_t w = 1; w <= probeMax; ++w) {
        double bestMs = infinity;
        for (int rep = 0; rep < reps; ++rep) {
            const auto t0 = ProbeClock::now();
            if (hasTree()) {
                lanes.clear();
                for (std::size_t j = 0; j < w; ++j)
                    lanes.push_back(
                        Rng::forTrial(probeSeed, w * probeMax + j));
                sampleMaxCommSkewBlock(probeDelay, {lanes.data(), w},
                                       {skews.data(), w}, scratch);
            } else {
                scratch.assign(cellCount() * laneStride(w), 0.0);
                arrivalSkewBlock(scratch, {surfaces.data(), w});
            }
            const double ms =
                std::chrono::duration<double, std::milli>(
                    ProbeClock::now() - t0)
                    .count();
            bestMs = std::min(bestMs, ms);
        }
        const double perTrial = bestMs / static_cast<double>(w);
        if (perTrial < bestPerTrial) {
            bestPerTrial = perTrial;
            best = w;
        }
    }
    return best;
}

KernelProvider
directCompile()
{
    return [](const layout::Layout &l, const clocktree::ClockTree *t) {
        return t ? std::make_shared<const SkewKernel>(l, *t)
                 : std::make_shared<const SkewKernel>(l);
    };
}

void
SkewKernel::exportMetrics(obs::MetricsRegistry &reg,
                          const std::string &prefix) const
{
    reg.gauge(prefix + "nodes")
        .set(static_cast<double>(nodeCount()));
    reg.gauge(prefix + "pairs")
        .set(static_cast<double>(pairCount()));
    reg.gauge(prefix + "build_ms").set(buildMs);
    reg.gauge(prefix + "queries_served")
        .set(static_cast<double>(queriesServed()));
    reg.gauge(prefix + "arrival_batches")
        .set(static_cast<double>(arrivalBatches()));
}

} // namespace vsync::core
