#include "core/skew_kernel.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"

namespace vsync::core
{

SkewKernel::SkewKernel(const layout::Layout &l)
{
    const auto t0 = std::chrono::steady_clock::now();
    compilePairs(l, nullptr);
    buildMs = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
}

SkewKernel::SkewKernel(const layout::Layout &l,
                       const clocktree::ClockTree &t)
{
    const auto t0 = std::chrono::steady_clock::now();
    compileTree(t);
    compilePairs(l, &t);
    buildMs = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
}

void
SkewKernel::compilePairs(const layout::Layout &l,
                         const clocktree::ClockTree *t)
{
    cells = l.size();
    const auto edges = l.comm().undirectedEdges();
    pairCellA.reserve(edges.size());
    pairCellB.reserve(edges.size());
    if (t) {
        nodeOf.assign(cells, invalidId);
        for (CellId c = 0; static_cast<std::size_t>(c) < cells; ++c)
            nodeOf[c] = t->nodeOfCell(c);
        pairNodeA.reserve(edges.size());
        pairNodeB.reserve(edges.size());
    }
    for (const graph::Edge &pair : edges) {
        pairCellA.push_back(pair.src);
        pairCellB.push_back(pair.dst);
        if (t) {
            const NodeId na = nodeOf[pair.src];
            const NodeId nb = nodeOf[pair.dst];
            VSYNC_ASSERT(na != invalidId && nb != invalidId,
                         "cells %d/%d not clocked by the tree (A4)",
                         pair.src, pair.dst);
            pairNodeA.push_back(na);
            pairNodeB.push_back(nb);
        }
    }
}

void
SkewKernel::compileTree(const clocktree::ClockTree &t)
{
    const std::size_t n = t.size();
    VSYNC_ASSERT(n > 0, "cannot compile an empty clock tree");
    const graph::RootedTree &structure = t.structure();

    // Flatten parent/wire-length and verify the id order is
    // topological (ClockTree::addChild guarantees parent-before-child,
    // so ids double as the propagation order).
    parentOf.resize(n);
    wireLen.resize(n);
    h.resize(n);
    parentOf[0] = invalidId;
    wireLen[0] = 0.0;
    h[0] = 0.0;
    for (NodeId v = 1; static_cast<std::size_t>(v) < n; ++v) {
        const NodeId p = structure.parent(v);
        VSYNC_ASSERT(p != invalidId && p < v,
                     "node %d's parent %d breaks topological id order",
                     v, p);
        parentOf[v] = p;
        wireLen[v] = t.wireLength(v);
        h[v] = h[p] + wireLen[v];
    }

    // Euler tour: every node is recorded on entry and again after each
    // child subtree returns, giving 2n - 1 tour positions; nca(a, b) is
    // the minimum-depth position between the first occurrences of a
    // and b.
    std::vector<std::int32_t> depth(n, 0);
    for (NodeId v = 1; static_cast<std::size_t>(v) < n; ++v)
        depth[v] = depth[parentOf[v]] + 1;

    eulerNode.reserve(2 * n - 1);
    eulerDepth.reserve(2 * n - 1);
    firstSeen.assign(n, -1);
    struct Frame
    {
        NodeId node;
        std::size_t nextChild;
    };
    std::vector<Frame> stack;
    stack.push_back({0, 0});
    while (!stack.empty()) {
        Frame &f = stack.back();
        const auto &kids = structure.children(f.node);
        // Each frame visit records once: on entry, then once more
        // after every child subtree returns -- 2n - 1 records total.
        eulerNode.push_back(f.node);
        eulerDepth.push_back(depth[f.node]);
        if (firstSeen[f.node] < 0) {
            firstSeen[f.node] =
                static_cast<std::int32_t>(eulerNode.size() - 1);
        }
        if (f.nextChild < kids.size()) {
            const NodeId child = kids[f.nextChild];
            ++f.nextChild;
            stack.push_back({child, 0});
        } else {
            stack.pop_back();
        }
    }

    // Sparse table over tour depths: sparse[k][i] is the tour position
    // of the minimum depth in [i, i + 2^k).
    const std::size_t m = eulerNode.size();
    logTable.assign(m + 1, 0);
    for (std::size_t i = 2; i <= m; ++i)
        logTable[i] = logTable[i / 2] + 1;
    const int levels = logTable[m] + 1;
    sparse.assign(levels, {});
    sparse[0].resize(m);
    for (std::size_t i = 0; i < m; ++i)
        sparse[0][i] = static_cast<std::int32_t>(i);
    for (int k = 1; k < levels; ++k) {
        const std::size_t half = std::size_t{1} << (k - 1);
        const std::size_t len = std::size_t{1} << k;
        sparse[k].resize(m + 1 - len);
        for (std::size_t i = 0; i + len <= m; ++i) {
            const std::int32_t left = sparse[k - 1][i];
            const std::int32_t right = sparse[k - 1][i + half];
            sparse[k][i] =
                eulerDepth[left] <= eulerDepth[right] ? left : right;
        }
    }
}

NodeId
SkewKernel::nca(NodeId a, NodeId b) const
{
    VSYNC_ASSERT(hasTree(), "nca() needs a tree-compiled kernel");
    VSYNC_ASSERT(a >= 0 && static_cast<std::size_t>(a) < nodeCount() &&
                     b >= 0 &&
                     static_cast<std::size_t>(b) < nodeCount(),
                 "nca of invalid nodes %d/%d", a, b);
    served.fetch_add(1, std::memory_order_relaxed);
    std::int32_t lo = firstSeen[a];
    std::int32_t hi = firstSeen[b];
    if (lo > hi)
        std::swap(lo, hi);
    const std::int32_t len = hi - lo + 1;
    const int k = logTable[len];
    const std::int32_t left = sparse[k][lo];
    const std::int32_t right = sparse[k][hi - (1 << k) + 1];
    return eulerNode[eulerDepth[left] <= eulerDepth[right] ? left
                                                           : right];
}

Length
SkewKernel::pathDifference(NodeId a, NodeId b) const
{
    VSYNC_ASSERT(hasTree(), "pathDifference() needs a tree kernel");
    served.fetch_add(1, std::memory_order_relaxed);
    return std::fabs(h[a] - h[b]);
}

Length
SkewKernel::treeDistance(NodeId a, NodeId b) const
{
    return h[a] + h[b] - 2.0 * h[nca(a, b)];
}

void
SkewKernel::arrivals(const WireDelay &delay, Rng &rng,
                     std::span<Time> out) const
{
    VSYNC_ASSERT(hasTree(), "arrivals() needs a tree-compiled kernel");
    VSYNC_ASSERT(delay.valid(), "bad delay parameters m=%g eps=%g",
                 delay.m, delay.eps);
    VSYNC_ASSERT(out.size() == nodeCount(),
                 "%zu arrival slots for %zu nodes", out.size(),
                 nodeCount());
    const double lo = delay.m - delay.eps;
    const double hi = delay.m + delay.eps;
    out[0] = 0.0;
    // One uniform draw per non-root node in id order: the exact draw
    // sequence of the pre-kernel sampleSkewInstance, preserving
    // bit-identity of substream-driven sweeps.
    const std::size_t n = nodeCount();
    for (std::size_t v = 1; v < n; ++v)
        out[v] = out[parentOf[v]] + rng.uniform(lo, hi) * wireLen[v];
    batches.fetch_add(1, std::memory_order_relaxed);
}

Time
SkewKernel::maxCommSkew(std::span<const Time> node_arrival) const
{
    VSYNC_ASSERT(hasTree(), "maxCommSkew() needs a tree kernel");
    VSYNC_ASSERT(node_arrival.size() == nodeCount(),
                 "%zu arrivals for %zu nodes", node_arrival.size(),
                 nodeCount());
    Time worst = 0.0;
    const std::size_t pairs = pairCount();
    for (std::size_t i = 0; i < pairs; ++i) {
        worst = std::max(worst,
                         std::fabs(node_arrival[pairNodeA[i]] -
                                   node_arrival[pairNodeB[i]]));
    }
    served.fetch_add(pairs, std::memory_order_relaxed);
    return worst;
}

Time
SkewKernel::sampleMaxCommSkew(const WireDelay &delay, Rng &rng,
                              std::vector<Time> &scratch) const
{
    scratch.resize(nodeCount());
    arrivals(delay, rng, scratch);
    return maxCommSkew(scratch);
}

ArrivalSkew
SkewKernel::arrivalSkew(std::span<const Time> cell_arrival) const
{
    VSYNC_ASSERT(cell_arrival.size() == cellCount(),
                 "%zu arrivals for %zu cells", cell_arrival.size(),
                 cellCount());
    ArrivalSkew out;
    if (!cellCount())
        return out;

    std::size_t clocked = 0;
    for (const Time t : cell_arrival)
        clocked += t < infinity;
    out.clockedFraction = static_cast<double>(clocked) /
                          static_cast<double>(cellCount());

    const std::size_t pairs = pairCount();
    out.pairCount = pairs;
    for (std::size_t i = 0; i < pairs; ++i) {
        const Time ta = cell_arrival[pairCellA[i]];
        const Time tb = cell_arrival[pairCellB[i]];
        if (ta >= infinity || tb >= infinity)
            continue;
        ++out.clockedPairs;
        out.maxCommSkew = std::max(out.maxCommSkew, std::fabs(ta - tb));
    }
    served.fetch_add(pairs, std::memory_order_relaxed);
    return out;
}

KernelProvider
directCompile()
{
    return [](const layout::Layout &l, const clocktree::ClockTree *t) {
        return t ? std::make_shared<const SkewKernel>(l, *t)
                 : std::make_shared<const SkewKernel>(l);
    };
}

void
SkewKernel::exportMetrics(obs::MetricsRegistry &reg,
                          const std::string &prefix) const
{
    reg.gauge(prefix + "nodes")
        .set(static_cast<double>(nodeCount()));
    reg.gauge(prefix + "pairs")
        .set(static_cast<double>(pairCount()));
    reg.gauge(prefix + "build_ms").set(buildMs);
    reg.gauge(prefix + "queries_served")
        .set(static_cast<double>(queriesServed()));
    reg.gauge(prefix + "arrival_batches")
        .set(static_cast<double>(arrivalBatches()));
}

} // namespace vsync::core
