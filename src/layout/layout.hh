/**
 * @file
 * Planar layouts of communication graphs (assumptions A1-A3).
 *
 * A Layout binds a COMM graph to physical cell placements and routed
 * communication wires. Cells occupy unit area (A2) on a lambda grid and
 * wires are rectilinear paths of unit width (A3). The clock-tree builders
 * and skew analysis consume Layouts.
 */

#ifndef VSYNC_LAYOUT_LAYOUT_HH
#define VSYNC_LAYOUT_LAYOUT_HH

#include <string>
#include <vector>

#include "geom/path.hh"
#include "geom/point.hh"
#include "geom/rect.hh"
#include "graph/graph.hh"

namespace vsync::layout
{

/** A placed and routed communication graph. */
class Layout
{
  public:
    Layout() = default;

    /**
     * @param name human-readable layout name.
     * @param comm the communication graph (copied).
     */
    Layout(std::string name, graph::Graph comm);

    /** Place cell @p cell at @p center. */
    void place(CellId cell, const geom::Point &center);

    /** Route the directed edge @p e along @p path. */
    void route(graph::EdgeId e, geom::Path path);

    /**
     * Route every still-unrouted edge with an L-shaped path between its
     * endpoint placements.
     */
    void routeRemaining();

    /** The communication graph. */
    const graph::Graph &comm() const { return graph; }

    /** Number of cells. */
    std::size_t size() const { return graph.size(); }

    /** Placement of cell @p cell. */
    const geom::Point &position(CellId cell) const
    {
        return placements.at(cell);
    }

    /** All placements, indexed by cell id. */
    const std::vector<geom::Point> &positions() const { return placements; }

    /** Route of directed edge @p e. */
    const geom::Path &edgeRoute(graph::EdgeId e) const
    {
        return routes.at(e);
    }

    /** Physical (Manhattan) length of directed edge @p e's route. */
    Length edgeLength(graph::EdgeId e) const;

    /** Longest routed communication edge. */
    Length maxEdgeLength() const;

    /** Sum of all route lengths (each undirected pair counted once). */
    Length totalWireLength() const;

    /** Bounding box over cell placements (half-cell margin added). */
    geom::Rect boundingBox() const;

    /** Layout name. */
    const std::string &layoutName() const { return name; }

    /**
     * Check structural sanity: every cell placed, every edge routed with
     * endpoints at the cells' placements, and no two cells closer than
     * one cell pitch (unit area, A2). Calls fatal() on violation when
     * @p die, otherwise returns false.
     */
    bool validate(bool die = true) const;

  private:
    std::string name;
    graph::Graph graph;
    std::vector<geom::Point> placements;
    std::vector<bool> placed;
    std::vector<geom::Path> routes;
};

} // namespace vsync::layout

#endif // VSYNC_LAYOUT_LAYOUT_HH
