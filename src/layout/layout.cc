#include "layout/layout.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsync::layout
{

Layout::Layout(std::string name, graph::Graph comm)
    : name(std::move(name)), graph(std::move(comm)),
      placements(graph.size()), placed(graph.size(), false),
      routes(graph.edgeCount())
{
}

void
Layout::place(CellId cell, const geom::Point &center)
{
    VSYNC_ASSERT(cell >= 0 &&
                 static_cast<std::size_t>(cell) < placements.size(),
                 "placing unknown cell %d", cell);
    placements[cell] = center;
    placed[cell] = true;
}

void
Layout::route(graph::EdgeId e, geom::Path path)
{
    VSYNC_ASSERT(e >= 0 && static_cast<std::size_t>(e) < routes.size(),
                 "routing unknown edge %d", e);
    routes[e] = std::move(path);
}

void
Layout::routeRemaining()
{
    for (std::size_t e = 0; e < routes.size(); ++e) {
        if (!routes[e].empty())
            continue;
        const graph::Edge &edge = graph.edge(static_cast<graph::EdgeId>(e));
        routes[e] = geom::lRoute(placements[edge.src],
                                 placements[edge.dst]);
    }
}

Length
Layout::edgeLength(graph::EdgeId e) const
{
    return routes.at(e).length();
}

Length
Layout::maxEdgeLength() const
{
    Length longest = 0.0;
    for (const auto &r : routes)
        longest = std::max(longest, r.length());
    return longest;
}

Length
Layout::totalWireLength() const
{
    // Count each undirected connection once: keep the smaller edge id of
    // each (src, dst)/(dst, src) pair.
    Length total = 0.0;
    for (std::size_t e = 0; e < routes.size(); ++e) {
        const graph::Edge &edge = graph.edge(static_cast<graph::EdgeId>(e));
        bool counted_reverse = false;
        for (const graph::Adj &a : graph.outEdges(edge.dst)) {
            if (a.node == edge.src &&
                static_cast<std::size_t>(a.edge) < e) {
                counted_reverse = true;
                break;
            }
        }
        if (!counted_reverse)
            total += routes[e].length();
    }
    return total;
}

geom::Rect
Layout::boundingBox() const
{
    geom::Rect r = geom::Rect::boundingBox(placements.begin(),
                                           placements.end());
    // Cells occupy unit area centred on their placement (A2).
    r.x0 -= 0.5;
    r.y0 -= 0.5;
    r.x1 += 0.5;
    r.y1 += 0.5;
    return r;
}

bool
Layout::validate(bool die) const
{
    auto fail = [&](const std::string &msg) {
        if (die)
            fatal("layout '%s' invalid: %s", name.c_str(), msg.c_str());
        return false;
    };

    for (std::size_t c = 0; c < placements.size(); ++c)
        if (!placed[c])
            return fail(csprintf("cell %zu not placed", c));

    for (std::size_t e = 0; e < routes.size(); ++e) {
        const graph::Edge &edge = graph.edge(static_cast<graph::EdgeId>(e));
        const geom::Path &path = routes[e];
        if (path.empty())
            return fail(csprintf("edge %zu not routed", e));
        if (!(path.front() == placements[edge.src]) ||
            !(path.back() == placements[edge.dst])) {
            return fail(csprintf("edge %zu route endpoints mismatch", e));
        }
    }

    // Unit-area cells: centres at least one pitch apart. O(n^2) check is
    // acceptable for the array sizes validated in tests.
    if (placements.size() <= 4096) {
        for (std::size_t a = 0; a < placements.size(); ++a) {
            for (std::size_t b = a + 1; b < placements.size(); ++b) {
                if (geom::manhattan(placements[a], placements[b]) <
                    1.0 - 1e-9) {
                    return fail(csprintf(
                        "cells %zu and %zu overlap (A2 violated)", a, b));
                }
            }
        }
    }
    return true;
}

} // namespace vsync::layout
