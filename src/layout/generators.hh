/**
 * @file
 * Layout generators for the structures the paper draws.
 *
 * - linear arrays (Fig 4a)
 * - folded linear arrays (Fig 5: both ends near the host)
 * - comb / serpentine linear arrays (Fig 6: any aspect ratio)
 * - square meshes and hexagonal arrays (Fig 3b/3c)
 * - layered binary trees (Section VIII substrate)
 */

#ifndef VSYNC_LAYOUT_GENERATORS_HH
#define VSYNC_LAYOUT_GENERATORS_HH

#include "graph/topology.hh"
#include "layout/layout.hh"

namespace vsync::layout
{

/** A straight 1-D array: cell i at (i * pitch, 0). */
Layout linearLayout(int n, Length pitch = 1.0);

/**
 * A 1-D array folded at its middle (Fig 5): cells 0..n/2-1 run left to
 * right on the bottom row, cells n/2..n-1 run right to left on the top
 * row, so cell 0 and cell n-1 both sit at the left edge next to the
 * host.
 */
Layout foldedLinearLayout(int n, Length pitch = 1.0);

/**
 * A comb/serpentine 1-D array (Fig 6): the array snakes down and up
 * columns of @p columnHeight cells, giving a layout of any desired
 * aspect ratio while keeping neighbouring cells at unit distance.
 */
Layout serpentineLayout(int n, int columnHeight, Length pitch = 1.0);

/**
 * A ring laid out as a racetrack (the folded shape of Fig 5 with the
 * wrap link closed): cells 0..ceil(n/2)-1 run left to right on the
 * bottom row, the rest return right to left on the top row, so every
 * ring edge -- including the wrap between cell n-1 and cell 0 -- is at
 * most one pitch long.
 */
Layout racetrackRingLayout(int n, Length pitch = 1.0);

/** A rows x cols mesh at the given pitch. */
Layout meshLayout(int rows, int cols, Length pitch = 1.0);

/**
 * A rhombic hexagonal array: axial cell (c, r) is placed at
 * (c + r/2, r) * pitch, so all six neighbour kinds are at bounded
 * distance.
 */
Layout hexLayout(int rows, int cols, Length pitch = 1.0);

/**
 * A complete binary tree drawn in layers: row = depth, column = in-order
 * index. Top edges are long (Theta(N) at the root) -- this is the naive
 * layout Section VIII improves on with the H-tree.
 */
Layout layeredTreeLayout(int levels, Length pitch = 1.0);

/** Build the natural layout for any generated Topology. */
Layout fromTopology(const graph::Topology &t, Length pitch = 1.0);

} // namespace vsync::layout

#endif // VSYNC_LAYOUT_GENERATORS_HH
