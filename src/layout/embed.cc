#include "layout/embed.hh"

#include <algorithm>

#include "common/logging.hh"
#include "graph/topology.hh"

namespace vsync::layout
{

namespace
{

/** Integer coordinate used during folding. */
struct Coord
{
    long x;
    long y;
};

/**
 * Fold a coordinate set in half along x with row interleaving:
 * (x, y) with x < w stays at (x, 2y); (x, y) with x >= w maps to
 * (2w - 1 - x, 2y + 1). Width halves, height doubles, cells remain on
 * distinct integer coordinates.
 */
void
foldX(std::vector<Coord> &coords, long width)
{
    const long w = (width + 1) / 2;
    for (Coord &c : coords) {
        if (c.x < w) {
            c.y = 2 * c.y;
        } else {
            c.x = 2 * w - 1 - c.x;
            c.y = 2 * c.y + 1;
        }
    }
}

/** Transpose the coordinate set (swap x and y). */
void
transpose(std::vector<Coord> &coords)
{
    for (Coord &c : coords)
        std::swap(c.x, c.y);
}

} // namespace

Layout
embedMeshNearSquare(int rows, int cols, double targetAspect,
                    EmbedStats *stats)
{
    VSYNC_ASSERT(rows >= 1 && cols >= 1, "bad mesh dims %dx%d",
                 rows, cols);
    VSYNC_ASSERT(targetAspect >= 1.0, "target aspect must be >= 1");

    const graph::Topology t = graph::mesh(rows, cols);
    std::vector<Coord> coords(t.coords.size());
    for (std::size_t i = 0; i < t.coords.size(); ++i)
        coords[i] = {t.coords[i][0], t.coords[i][1]};

    long width = cols, height = rows;
    int folds = 0;
    // Fold the longer dimension until the aspect ratio target is met.
    // Each fold halves one dimension and doubles the other, so the
    // iteration terminates once the two are within a factor of 2 of the
    // target (or dimensions become too small to fold).
    while (folds < 40) {
        const double aspect =
            static_cast<double>(std::max(width, height)) /
            static_cast<double>(std::max(1L, std::min(width, height)));
        if (aspect <= targetAspect)
            break;
        if (width < height)
            transpose(coords), std::swap(width, height);
        if (width < 2)
            break;
        foldX(coords, width);
        width = (width + 1) / 2;
        height *= 2;
        ++folds;
    }

    Layout l(csprintf("embedded-mesh-%dx%d", rows, cols), t.graph);
    for (std::size_t i = 0; i < coords.size(); ++i) {
        l.place(static_cast<CellId>(i),
                {static_cast<Length>(coords[i].x),
                 static_cast<Length>(coords[i].y)});
    }
    l.routeRemaining();

    if (stats) {
        const geom::Rect bb = l.boundingBox();
        stats->area = bb.area();
        stats->originalArea =
            static_cast<double>(rows) * static_cast<double>(cols);
        stats->areaFactor = stats->area / stats->originalArea;
        stats->dilation = l.maxEdgeLength();
        stats->aspectRatio = bb.aspectRatio();
        stats->folds = folds;
    }
    return l;
}

} // namespace vsync::layout
