/**
 * @file
 * Rectangular-grid folding: the embedding substrate behind Theorem 2.
 *
 * Theorem 2 cites Aleliunas & Rosenberg [1]: any rectangular grid embeds
 * in a square grid with constant area and edge-stretch factors. The full
 * AR construction (folding with compression) is out of scope for this
 * reproduction; we substitute the classic *interleaved fold*, which
 * preserves area within a constant factor and stretches vertical edges
 * by 2 per fold (so dilation O(sqrt(aspect-ratio)) overall). The
 * Theorem 2 bench therefore demonstrates the theorem's claim directly on
 * bounded-aspect-ratio layouts (where Lemma 1 applies as stated) and
 * reports the measured stretch of this simpler embedding for strongly
 * rectangular inputs. See DESIGN.md, Section 2.
 */

#ifndef VSYNC_LAYOUT_EMBED_HH
#define VSYNC_LAYOUT_EMBED_HH

#include "layout/layout.hh"

namespace vsync::layout
{

/** Metrics describing the quality of a grid embedding. */
struct EmbedStats
{
    /** Area of the embedded layout's bounding box. */
    double area = 0.0;
    /** Area of the natural (unfolded) layout. */
    double originalArea = 0.0;
    /** area / originalArea. */
    double areaFactor = 0.0;
    /** Longest routed communication edge after embedding. */
    Length dilation = 0.0;
    /** Aspect ratio (>= 1) of the embedded bounding box. */
    double aspectRatio = 0.0;
    /** Number of folds applied. */
    int folds = 0;
};

/**
 * Embed a rows x cols mesh into a near-square region by repeatedly
 * folding the longer dimension in half with row interleaving.
 *
 * Folds stop when the bounding box aspect ratio drops at or below
 * @p targetAspect.
 *
 * @param[out] stats embedding quality metrics (optional).
 */
Layout embedMeshNearSquare(int rows, int cols, double targetAspect = 2.0,
                           EmbedStats *stats = nullptr);

} // namespace vsync::layout

#endif // VSYNC_LAYOUT_EMBED_HH
