#include "layout/generators.hh"

#include "common/logging.hh"

namespace vsync::layout
{

Layout
linearLayout(int n, Length pitch)
{
    const graph::Topology t = graph::linearArray(n);
    Layout l(csprintf("linear-%d", n), t.graph);
    for (int i = 0; i < n; ++i)
        l.place(i, {i * pitch, 0.0});
    l.routeRemaining();
    return l;
}

Layout
foldedLinearLayout(int n, Length pitch)
{
    VSYNC_ASSERT(n >= 2, "folded layout needs n >= 2, got %d", n);
    const graph::Topology t = graph::linearArray(n);
    Layout l(csprintf("folded-%d", n), t.graph);
    const int half = (n + 1) / 2;
    for (int i = 0; i < n; ++i) {
        if (i < half) {
            l.place(i, {i * pitch, 0.0});
        } else {
            // Top row runs right-to-left, starting directly above the
            // fold cell so the fold edge stays one pitch long.
            l.place(i, {(2 * half - 1 - i) * pitch, pitch});
        }
    }
    l.routeRemaining();
    return l;
}

Layout
serpentineLayout(int n, int columnHeight, Length pitch)
{
    VSYNC_ASSERT(n >= 1, "serpentine layout needs n >= 1");
    VSYNC_ASSERT(columnHeight >= 1, "column height must be >= 1, got %d",
                 columnHeight);
    const graph::Topology t = graph::linearArray(n);
    Layout l(csprintf("comb-%d-h%d", n, columnHeight), t.graph);
    for (int i = 0; i < n; ++i) {
        const int col = i / columnHeight;
        const int within = i % columnHeight;
        // Odd columns run upward so consecutive cells stay adjacent.
        const int row =
            (col % 2 == 0) ? within : columnHeight - 1 - within;
        l.place(i, {col * pitch, row * pitch});
    }
    l.routeRemaining();
    return l;
}

Layout
racetrackRingLayout(int n, Length pitch)
{
    VSYNC_ASSERT(n >= 3, "racetrack ring needs n >= 3, got %d", n);
    const graph::Topology t = graph::ring(n);
    Layout l(csprintf("racetrack-%d", n), t.graph);
    const int half = (n + 1) / 2;
    for (int i = 0; i < n; ++i) {
        if (i < half)
            l.place(i, {i * pitch, 0.0});
        else
            l.place(i, {(2 * half - 1 - i) * pitch, pitch});
    }
    l.routeRemaining();
    return l;
}

Layout
meshLayout(int rows, int cols, Length pitch)
{
    const graph::Topology t = graph::mesh(rows, cols);
    Layout l(t.name, t.graph);
    for (std::size_t i = 0; i < t.coords.size(); ++i) {
        l.place(static_cast<CellId>(i),
                {t.coords[i][0] * pitch, t.coords[i][1] * pitch});
    }
    l.routeRemaining();
    return l;
}

Layout
hexLayout(int rows, int cols, Length pitch)
{
    const graph::Topology t = graph::hexArray(rows, cols);
    Layout l(t.name, t.graph);
    for (std::size_t i = 0; i < t.coords.size(); ++i) {
        const double c = t.coords[i][0];
        const double r = t.coords[i][1];
        l.place(static_cast<CellId>(i),
                {(c + 0.5 * r) * pitch, r * pitch});
    }
    l.routeRemaining();
    return l;
}

Layout
layeredTreeLayout(int levels, Length pitch)
{
    const graph::Topology t = graph::completeBinaryTree(levels);
    Layout l(t.name, t.graph);
    for (std::size_t i = 0; i < t.coords.size(); ++i) {
        l.place(static_cast<CellId>(i),
                {t.coords[i][0] * pitch, t.coords[i][1] * pitch});
    }
    l.routeRemaining();
    return l;
}

Layout
fromTopology(const graph::Topology &t, Length pitch)
{
    // Place every topology by its logical coordinates so the layout's
    // graph is exactly t.graph (including ring/torus wrap links, whose
    // routes then reflect their true physical length).
    Layout l(t.name, t.graph);
    const bool hex = t.kind == graph::TopologyKind::Hex;
    for (std::size_t i = 0; i < t.coords.size(); ++i) {
        const double c = t.coords[i][0];
        const double r = t.coords[i][1];
        const double x = hex ? (c + 0.5 * r) : c;
        l.place(static_cast<CellId>(i), {x * pitch, r * pitch});
    }
    l.routeRemaining();
    return l;
}

} // namespace vsync::layout
