/**
 * @file
 * Section VIII: tree machines under the summation model.
 *
 * When COMM is a complete binary tree laid out as an H-tree, edge
 * lengths shrink geometrically with depth: the layout uses O(N) area
 * and a root-to-leaf path has length O(sqrt N). Distributing clock
 * events along the data paths makes clock skew track communication
 * delay, and inserting the same number of pipeline registers on every
 * edge of a level (enough to bound each segment) yields a constant
 * pipeline interval with O(sqrt N) through-tree latency and only a
 * constant-factor area increase (registers just thicken wires).
 */

#ifndef VSYNC_TREEMACHINE_HTREE_MACHINE_HH
#define VSYNC_TREEMACHINE_HTREE_MACHINE_HH

#include <vector>

#include "clocktree/clock_tree.hh"
#include "layout/layout.hh"

namespace vsync::treemachine
{

/** An H-tree-placed complete binary tree machine. */
struct TreeMachineLayout
{
    /** The placed and routed binary tree (cell 0 = root, heap order). */
    layout::Layout layout;
    /** Tree levels (nodes = 2^levels - 1). */
    int levels = 0;
    /**
     * Physical length of the parent-child edges entering each level
     * (index 1..levels-1; index 0 unused).
     */
    std::vector<Length> edgeLengthAtLevel;
};

/** Build the H-tree layout of a @p levels-level binary tree machine. */
TreeMachineLayout buildHTreeMachine(int levels);

/**
 * A clock tree that follows the data paths: the clock enters at the
 * root cell and propagates down the same H-tree edges the data uses.
 * Under the summation model the skew between a parent and child is
 * then bounded by g(edge length) -- it scales with the communication
 * delay, never with N (the Section VIII observation).
 */
clocktree::ClockTree buildClockAlongDataPaths(const TreeMachineLayout &tm);

/** Accounting of pipeline-register insertion on the tree's edges. */
struct PipelinedTreeStats
{
    /** Registers inserted per edge entering each level (same count for
     *  every edge of a level, preserving synchrony). */
    std::vector<int> registersPerLevel;
    /** Total registers inserted. */
    long totalRegisters = 0;
    /** Longest wire segment after insertion (bounded by maxWire). */
    Length maxSegment = 0.0;
    /** Layout area (bounding box). */
    double area = 0.0;
    /** Area including register overhead (unit area per register). */
    double areaWithRegisters = 0.0;
    /** Physical root-to-leaf path length. */
    Length rootToLeafLength = 0.0;
    /** Pipeline interval: time per stage (segment + register). */
    Time pipelineInterval = 0.0;
    /** Latency from root to leaf through all stages. */
    Time rootToLeafLatency = 0.0;
};

/**
 * Insert pipeline registers so no wire segment exceeds @p max_wire.
 *
 * @param m        signal delay per lambda (ns).
 * @param reg_delay register traversal delay (ns).
 */
PipelinedTreeStats insertPipelineRegisters(const TreeMachineLayout &tm,
                                           Length max_wire, double m,
                                           Time reg_delay);

} // namespace vsync::treemachine

#endif // VSYNC_TREEMACHINE_HTREE_MACHINE_HH
