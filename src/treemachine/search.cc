#include "treemachine/search.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vsync::treemachine
{

systolic::SystolicArray
buildSearchMachine(int levels, const std::vector<systolic::Word> &keys)
{
    VSYNC_ASSERT(levels >= 2, "search machine needs >= 2 levels");
    const int leaves = 1 << (levels - 1);
    VSYNC_ASSERT(static_cast<int>(keys.size()) == leaves,
                 "expected %d keys, got %zu", leaves, keys.size());

    systolic::SystolicArray arr(csprintf("search-machine-%d", levels));
    const int internal = (1 << (levels - 1)) - 1;
    const int n = (1 << levels) - 1;
    for (int v = 0; v < n; ++v) {
        if (v < internal) {
            arr.addCell(std::make_unique<CombineCell>());
        } else {
            arr.addCell(std::make_unique<LeafCell>(
                keys[static_cast<std::size_t>(v - internal)]));
        }
    }
    for (int v = 0; v < internal; ++v) {
        const int left = 2 * v + 1;
        const int right = 2 * v + 2;
        const bool left_leaf = left >= internal;
        const bool right_leaf = right >= internal;
        // Query down: out 0 -> left's query port, out 1 -> right's.
        arr.connect(v, 0, left, 0);
        arr.connect(v, 1, right, 0);
        // Results up: child's result port -> our in 1 / in 2.
        arr.connect(left, left_leaf ? 0 : 2, v, 1);
        arr.connect(right, right_leaf ? 0 : 2, v, 2);
    }
    return arr;
}

systolic::ExternalInputFn
searchInputs(std::vector<systolic::Word> qs)
{
    return [qs = std::move(qs)](CellId cell, int port,
                                int cycle) -> systolic::Word {
        if (cell == 0 && port == 0 && cycle >= 0 &&
            static_cast<std::size_t>(cycle) < qs.size())
            return qs[static_cast<std::size_t>(cycle)];
        return 0.0;
    };
}

std::vector<systolic::Word>
searchExpectedOutput(int levels, const std::vector<systolic::Word> &keys,
                     const std::vector<systolic::Word> &qs, int cycles)
{
    const int lat = 2 * (levels - 1);
    std::vector<systolic::Word> expected(
        static_cast<std::size_t>(cycles), 0.0);
    const int down = levels - 1; // root-to-leaf query latency
    for (int t = 0; t < cycles; ++t) {
        if (t < down) {
            // Upward registers still hold their initial zeros, and
            // scores are non-negative, so the root's min emits 0.
            expected[static_cast<std::size_t>(t)] = 0.0;
            continue;
        }
        // The leaves scored the query injected at cycle t - lat; for
        // t - lat < 0 they scored the zero-filled query registers.
        const int qi = t - lat;
        const systolic::Word q =
            (qi >= 0 && static_cast<std::size_t>(qi) < qs.size())
                ? qs[static_cast<std::size_t>(qi)]
                : 0.0;
        systolic::Word best = infinity;
        for (systolic::Word k : keys)
            best = std::min(best, std::fabs(k - q));
        expected[static_cast<std::size_t>(t)] = best;
    }
    return expected;
}

} // namespace vsync::treemachine
