#include "treemachine/htree_machine.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "graph/topology.hh"

namespace vsync::treemachine
{

namespace
{

/**
 * Offset magnitude of the edges entering level l of an L-level H-tree:
 * deepest edges have length 1 and lengths double every two levels
 * upward.
 */
Length
levelOffset(int levels, int l)
{
    return std::pow(2.0, (levels - 1 - l) / 2);
}

/** Edges entering odd levels run horizontally, even levels vertically. */
bool
horizontalLevel(int l)
{
    return (l % 2) == 1;
}

} // namespace

TreeMachineLayout
buildHTreeMachine(int levels)
{
    VSYNC_ASSERT(levels >= 1 && levels <= 24, "bad tree levels %d",
                 levels);
    const graph::Topology topo = graph::completeBinaryTree(levels);
    TreeMachineLayout tm;
    tm.levels = levels;
    tm.layout = layout::Layout(csprintf("htree-machine-%d", levels),
                               topo.graph);
    tm.edgeLengthAtLevel.assign(static_cast<std::size_t>(levels), 0.0);
    for (int l = 1; l < levels; ++l)
        tm.edgeLengthAtLevel[static_cast<std::size_t>(l)] =
            levelOffset(levels, l);

    const int n = (1 << levels) - 1;
    std::vector<geom::Point> pos(static_cast<std::size_t>(n));
    pos[0] = {0.0, 0.0};
    for (int v = 1; v < n; ++v) {
        int depth = 0;
        for (int u = v; u > 0; u = (u - 1) / 2)
            ++depth;
        const int parent = (v - 1) / 2;
        const Length off = levelOffset(levels, depth);
        const double sign = (v % 2 == 1) ? -1.0 : 1.0; // left child -
        geom::Point p = pos[static_cast<std::size_t>(parent)];
        if (horizontalLevel(depth))
            p.x += sign * off;
        else
            p.y += sign * off;
        pos[static_cast<std::size_t>(v)] = p;
    }
    for (int v = 0; v < n; ++v)
        tm.layout.place(v, pos[static_cast<std::size_t>(v)]);
    tm.layout.routeRemaining();
    return tm;
}

clocktree::ClockTree
buildClockAlongDataPaths(const TreeMachineLayout &tm)
{
    clocktree::ClockTree t;
    t.name = "clock-along-data/" + tm.layout.layoutName();
    const int n = static_cast<int>(tm.layout.size());
    // Tree node ids mirror cell ids (heap order): parents come first,
    // satisfying ClockTree's parent-before-child construction order.
    const NodeId root = t.addRoot(tm.layout.position(0));
    t.bindCell(root, 0);
    for (int v = 1; v < n; ++v) {
        const int parent = (v - 1) / 2;
        const NodeId node =
            t.addChild(static_cast<NodeId>(parent),
                       tm.layout.position(static_cast<CellId>(v)));
        t.bindCell(node, static_cast<CellId>(v));
    }
    return t;
}

PipelinedTreeStats
insertPipelineRegisters(const TreeMachineLayout &tm, Length max_wire,
                        double m, Time reg_delay)
{
    VSYNC_ASSERT(max_wire > 0.0, "max wire must be positive");
    VSYNC_ASSERT(m > 0.0 && reg_delay >= 0.0, "bad timing parameters");

    PipelinedTreeStats stats;
    stats.registersPerLevel.assign(
        static_cast<std::size_t>(tm.levels), 0);

    Length root_len = 0.0;
    Time latency = 0.0;
    long regs_on_path = 0;
    for (int l = 1; l < tm.levels; ++l) {
        const Length len =
            tm.edgeLengthAtLevel[static_cast<std::size_t>(l)];
        const int regs = std::max(
            0, static_cast<int>(std::ceil(len / max_wire)) - 1);
        stats.registersPerLevel[static_cast<std::size_t>(l)] = regs;
        // Edges entering level l: 2^l of them.
        stats.totalRegisters += static_cast<long>(regs) * (1L << l);
        const Length segment = len / (regs + 1);
        stats.maxSegment = std::max(stats.maxSegment, segment);
        root_len += len;
        latency += m * len + static_cast<Time>(regs) * reg_delay;
        regs_on_path += regs;
    }
    stats.rootToLeafLength = root_len;
    stats.rootToLeafLatency = latency;
    stats.pipelineInterval = m * stats.maxSegment + reg_delay;
    stats.area = tm.layout.boundingBox().area();
    stats.areaWithRegisters =
        stats.area + static_cast<double>(stats.totalRegisters);
    return stats;
}

} // namespace vsync::treemachine
