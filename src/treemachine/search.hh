/**
 * @file
 * A Bentley-Kung style tree search machine [2] running on the systolic
 * substrate: queries broadcast down the tree, per-leaf scores combine
 * (min) on the way up. One query enters and one result leaves per
 * cycle; the root-to-root latency is 2 (levels - 1) cycles. This is
 * the Section VIII workload: COMM is a binary tree and the machine
 * stays fully pipelined after register insertion.
 */

#ifndef VSYNC_TREEMACHINE_SEARCH_HH
#define VSYNC_TREEMACHINE_SEARCH_HH

#include <algorithm>
#include <cmath>
#include <vector>

#include "systolic/array.hh"

namespace vsync::treemachine
{

/** Internal tree node: broadcast down, min-combine up. */
class CombineCell : public systolic::Cell
{
  public:
    int inPorts() const override { return 3; }  // 0 query, 1 L, 2 R
    int outPorts() const override { return 3; } // 0 L, 1 R, 2 result

    std::vector<systolic::Word>
    step(const std::vector<systolic::Word> &in) override
    {
        const systolic::Word up = std::min(in[1], in[2]);
        return {in[0], in[0], up};
    }

    std::unique_ptr<Cell>
    clone() const override
    {
        return std::make_unique<CombineCell>(*this);
    }
};

/** Leaf holding a key; scores queries by absolute distance. */
class LeafCell : public systolic::Cell
{
  public:
    explicit LeafCell(systolic::Word key) : key(key) {}

    int inPorts() const override { return 1; }  // 0 query
    int outPorts() const override { return 1; } // 0 score

    std::vector<systolic::Word>
    step(const std::vector<systolic::Word> &in) override
    {
        return {std::fabs(key - in[0])};
    }

    std::vector<systolic::Word> peek() const override { return {key}; }

    std::unique_ptr<Cell>
    clone() const override
    {
        return std::make_unique<LeafCell>(*this);
    }

  private:
    systolic::Word key;
};

/**
 * Build a @p levels-level nearest-key search machine over @p keys
 * (@p keys.size() == 2^(levels-1); cell ids in heap order).
 */
systolic::SystolicArray buildSearchMachine(
    int levels, const std::vector<systolic::Word> &keys);

/** Query stream feeding the root's query port. */
systolic::ExternalInputFn searchInputs(std::vector<systolic::Word> qs);

/**
 * Expected root result series: out(t) = min_i |key_i - q(t - 2(L-1))|
 * where q(t) reads zero outside the stream.
 */
std::vector<systolic::Word> searchExpectedOutput(
    int levels, const std::vector<systolic::Word> &keys,
    const std::vector<systolic::Word> &qs, int cycles);

} // namespace vsync::treemachine

#endif // VSYNC_TREEMACHINE_SEARCH_HH
