/**
 * @file
 * Clock tree construction schemes from the paper.
 *
 * - buildSpine / buildChain: the Section V-A scheme (Fig 4b, Fig 5,
 *   Fig 6): the clock wire runs along the 1-D array, so communicating
 *   neighbours are a constant tree distance apart (summation model).
 * - buildHTree*: the Section IV scheme (Fig 3): all cells equidistant
 *   from the root (difference model, Lemma 1). Non-power-of-two grids
 *   are equalised by padding leaf wires.
 * - buildRecursiveBisection: a generic top-down geometric tree for
 *   arbitrary layouts.
 * - buildRandomTree: random top-down partitions; used to search the
 *   space of trees in the lower-bound experiments.
 */

#ifndef VSYNC_CLOCKTREE_BUILDERS_HH
#define VSYNC_CLOCKTREE_BUILDERS_HH

#include <functional>
#include <vector>

#include "clocktree/clock_tree.hh"
#include "layout/layout.hh"

namespace vsync
{
class Rng;
} // namespace vsync

namespace vsync::clocktree
{

/**
 * A degenerate binary tree (a chain) visiting cells in @p order,
 * rooted at @p root_pos. Every chain wire is routed L-shaped between
 * consecutive cell positions.
 */
ClockTree buildChain(const layout::Layout &l,
                     const std::vector<CellId> &order,
                     const geom::Point &root_pos);

/**
 * The Fig 4b spine: a chain in cell-id order rooted one pitch to the
 * left of cell 0. Suits linear, folded and serpentine layouts whose
 * cell ids follow the array order.
 */
ClockTree buildSpine(const layout::Layout &l);

/**
 * An H-tree over a grid-indexed layout (Fig 3).
 *
 * @param l        the layout supplying cell positions.
 * @param rows     grid rows.
 * @param cols     grid columns.
 * @param cell_at  maps (row, col) to the cell id.
 * @param equalize pad leaf wires so every cell is exactly equidistant
 *                 from the root (Lemma 1); exact H-trees on power-of-two
 *                 grids need no padding.
 */
ClockTree buildHTree(const layout::Layout &l, int rows, int cols,
                     const std::function<CellId(int, int)> &cell_at,
                     bool equalize = true);

/** H-tree for a row-major rows x cols mesh or hex layout. */
ClockTree buildHTreeGrid(const layout::Layout &l, int rows, int cols,
                         bool equalize = true);

/** H-tree for a linear array (Fig 3a): rows = 1. */
ClockTree buildHTreeLinear(const layout::Layout &l, bool equalize = true);

/**
 * Top-down recursive geometric bisection: split the cell set at the
 * median of its wider axis, place each internal node at its subset's
 * centroid.
 */
ClockTree buildRecursiveBisection(const layout::Layout &l);

/**
 * Random top-down binary partitions of the cell set; internal nodes at
 * subset centroids. Used to sample the tree space when searching for
 * low-skew trees empirically.
 */
ClockTree buildRandomTree(const layout::Layout &l, Rng &rng);

/**
 * A double comb for two-row racetrack layouts (rings, folded arrays):
 * a spine runs between the rows, dropping a short rung to each cell
 * above and below it. Every pair of cells in the same column is two
 * rungs apart on CLK and horizontally adjacent cells are one spine
 * step plus two rungs apart -- so *all* ring edges, including the
 * wrap, have O(1) tree distance under the summation model; the
 * Theorem 3 guarantee extends to rings.
 *
 * @pre the layout has exactly two distinct y rows.
 */
ClockTree buildDoubleComb(const layout::Layout &l);

} // namespace vsync::clocktree

#endif // VSYNC_CLOCKTREE_BUILDERS_HH
