/**
 * @file
 * Skew-driven clock tree search.
 *
 * The Section V-B theorem says *no* clock tree achieves bounded
 * communicating-cell skew on a mesh under the summation model. The
 * builders in builders.hh are fixed constructions; this optimizer
 * actively searches the tree space for the given objective (max s over
 * communicating pairs), so the lower-bound experiments can show that
 * even an adversarially good tree cannot beat Omega(n):
 *
 *  - buildGreedyMatching: agglomerative bottom-up clustering (the
 *    classic clock-tree-synthesis shape): repeatedly pair the two
 *    nearest clusters. Because ClockTree construction is top-down, the
 *    merge tree is recorded first and then emitted root-first.
 *  - optimizeTree: stochastic local search: repeatedly picks a random
 *    topology perturbation (re-rooting a subtree under a different
 *    parent arm) and keeps it when the objective improves.
 */

#ifndef VSYNC_CLOCKTREE_OPTIMIZE_HH
#define VSYNC_CLOCKTREE_OPTIMIZE_HH

#include "clocktree/clock_tree.hh"
#include "layout/layout.hh"

namespace vsync
{
class Rng;
} // namespace vsync

namespace vsync::clocktree
{

/**
 * Bottom-up greedy matching tree: merge the two clusters whose
 * centroids are nearest until one remains; internal nodes sit at the
 * merged subtree's centroid.
 */
ClockTree buildGreedyMatching(const layout::Layout &l);

/** Objective value: max tree distance s over communicating pairs. */
double maxCommTreeDistance(const layout::Layout &l, const ClockTree &t);

/** Result of the stochastic search. */
struct OptimizeResult
{
    ClockTree tree;
    /** Objective of the initial tree. */
    double initialObjective = 0.0;
    /** Objective after optimisation. */
    double finalObjective = 0.0;
    /** Accepted moves. */
    int improvements = 0;
};

/**
 * Local search over binary tree topologies minimising
 * maxCommTreeDistance. Starts from the greedy matching tree and
 * applies @p iterations random subtree-regraft moves, keeping
 * improvements.
 */
OptimizeResult optimizeTree(const layout::Layout &l, Rng &rng,
                            int iterations = 400);

} // namespace vsync::clocktree

#endif // VSYNC_CLOCKTREE_OPTIMIZE_HH
