/**
 * @file
 * ASCII rendering of layouts and clock trees.
 *
 * Renders cells, communication wiring and (optionally) a clock tree
 * onto a character grid -- the quickest way to eyeball a layout or a
 * builder's output, and what the examples print when asked to show
 * their arrays. One character cell covers `scale` lambda.
 *
 * Legend: 'o' cell, '#' clock tree node, 'R' clock root, '*' cell and
 * clock tap coincide, '-', '|' clock tree wiring, '.' empty.
 */

#ifndef VSYNC_CLOCKTREE_RENDER_HH
#define VSYNC_CLOCKTREE_RENDER_HH

#include <string>

#include "clocktree/clock_tree.hh"
#include "layout/layout.hh"

namespace vsync::clocktree
{

/** Rendering options. */
struct RenderOptions
{
    /** Lambda per character cell. */
    double scale = 1.0;
    /** Draw the clock tree's wires. */
    bool drawClockWires = true;
    /** Cap on the rendered grid's width/height in characters. */
    int maxChars = 160;
};

/** Render just the cells of @p l. */
std::string renderLayout(const layout::Layout &l,
                         const RenderOptions &opts = {});

/** Render cells plus the clock tree @p t overlaid. */
std::string renderWithClock(const layout::Layout &l,
                            const ClockTree &t,
                            const RenderOptions &opts = {});

} // namespace vsync::clocktree

#endif // VSYNC_CLOCKTREE_RENDER_HH
