#include "clocktree/buffering.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsync::clocktree
{

std::size_t
BufferedClockTree::bufferCount() const
{
    std::size_t n = 0;
    for (const BufferedSite &s : siteList)
        if (s.isBuffer)
            ++n;
    return n;
}

Length
BufferedClockTree::maxSegmentLength() const
{
    Length longest = 0.0;
    for (const BufferedSite &s : siteList)
        longest = std::max(longest, s.wireFromParent);
    return longest;
}

int
BufferedClockTree::maxBufferDepth() const
{
    std::vector<int> depth(siteList.size(), 0);
    int deepest = 0;
    for (std::size_t i = 1; i < siteList.size(); ++i) {
        const BufferedSite &s = siteList[i];
        depth[i] = depth[s.parent] + (s.isBuffer ? 1 : 0);
        deepest = std::max(deepest, depth[i]);
    }
    return deepest;
}

BufferedClockTree
BufferedClockTree::insertBuffers(const ClockTree &tree, Length spacing)
{
    VSYNC_ASSERT(spacing > 0.0, "buffer spacing must be positive, got %g",
                 spacing);
    BufferedClockTree b;
    b.spacingUsed = spacing;
    b.nodeSite.assign(tree.size(), invalidId);

    // Root site.
    b.siteList.push_back({invalidId, 0.0, tree.position(tree.root()),
                          false, tree.root()});
    b.nodeSite[tree.root()] = 0;

    // Original nodes were created parent-before-child, so a forward walk
    // always finds the parent's site already materialised.
    for (NodeId v = 1; static_cast<std::size_t>(v) < tree.size(); ++v) {
        const NodeId parent = tree.structure().parent(v);
        NodeId site = b.nodeSite[parent];
        VSYNC_ASSERT(site != invalidId, "parent site missing for %d", v);

        const Length total = tree.wireLength(v);
        const geom::Path &route = tree.wire(v);
        Length placed = 0.0;
        // Buffers at spacing, 2*spacing, ... strictly inside the wire.
        while (total - placed > spacing) {
            placed += spacing;
            BufferedSite buf;
            buf.parent = site;
            buf.wireFromParent = spacing;
            // Padded wires are longer than their drawn route; clamp the
            // drawn position to the route end.
            buf.pos = route.pointAt(std::min(placed, route.length()));
            buf.isBuffer = true;
            b.siteList.push_back(buf);
            site = static_cast<NodeId>(b.siteList.size() - 1);
        }
        BufferedSite end;
        end.parent = site;
        end.wireFromParent = total - placed;
        end.pos = tree.position(v);
        end.isBuffer = false;
        end.treeNode = v;
        b.siteList.push_back(end);
        b.nodeSite[v] = static_cast<NodeId>(b.siteList.size() - 1);
    }
    return b;
}

} // namespace vsync::clocktree
