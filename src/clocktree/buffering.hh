/**
 * @file
 * Buffer insertion for pipelined clock distribution (assumption A7).
 *
 * Long clock wires cannot carry several clock events at once as plain
 * metal (damping, reflections); the paper's remedy is to break them into
 * bounded-length segments separated by signal-restoring buffers. With
 * buffers every constant distance, the time to move a clock event across
 * one segment -- and hence the sustainable clock period -- is a constant
 * independent of array size.
 */

#ifndef VSYNC_CLOCKTREE_BUFFERING_HH
#define VSYNC_CLOCKTREE_BUFFERING_HH

#include <vector>

#include "clocktree/clock_tree.hh"

namespace vsync::clocktree
{

/** One site (root, buffer, or original tree node) of a buffered tree. */
struct BufferedSite
{
    /** Parent site (invalidId for the root site). */
    NodeId parent = invalidId;
    /** Wire length from the parent site to this site. */
    Length wireFromParent = 0.0;
    /** Position in the plane. */
    geom::Point pos;
    /** True when this site is an inserted buffer. */
    bool isBuffer = false;
    /** Original ClockTree node ending here, or invalidId for buffers. */
    NodeId treeNode = invalidId;
};

/**
 * A clock tree with buffers inserted every @c spacing along its wires.
 * Site 0 is the root (which also carries the root clock driver).
 */
class BufferedClockTree
{
  public:
    /** All sites in parent-before-child order. */
    const std::vector<BufferedSite> &sites() const { return siteList; }

    /** Site corresponding to original tree node @p v. */
    NodeId siteOfNode(NodeId v) const { return nodeSite.at(v); }

    /** Number of inserted buffers. */
    std::size_t bufferCount() const;

    /** Longest buffer-free wire segment (bounds per-segment delay). */
    Length maxSegmentLength() const;

    /** Largest number of buffers on any root-to-site path. */
    int maxBufferDepth() const;

    /** Buffer spacing used at construction. */
    Length spacing() const { return spacingUsed; }

    /**
     * Insert buffers every @p spacing along each wire of @p tree.
     * Padding added by ClockTree::padWire is treated as wire length and
     * buffered accordingly (positions of those buffers sit at the wire's
     * drawn end).
     */
    static BufferedClockTree insertBuffers(const ClockTree &tree,
                                           Length spacing);

  private:
    std::vector<BufferedSite> siteList;
    std::vector<NodeId> nodeSite;
    Length spacingUsed = 0.0;
};

} // namespace vsync::clocktree

#endif // VSYNC_CLOCKTREE_BUFFERING_HH
