#include "clocktree/clock_tree.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsync::clocktree
{

NodeId
ClockTree::addRoot(const geom::Point &pos)
{
    VSYNC_ASSERT(positions.empty(), "clock tree already has a root");
    tree.addNode();
    positions.push_back(pos);
    wires.emplace_back();
    wireLengths.push_back(0.0);
    cellOf.push_back(invalidId);
    invalidateCache();
    return 0;
}

NodeId
ClockTree::addChild(NodeId parent, const geom::Point &pos)
{
    return addChild(parent, pos, geom::lRoute(positions.at(parent), pos));
}

NodeId
ClockTree::addChild(NodeId parent, const geom::Point &pos, geom::Path route)
{
    VSYNC_ASSERT(!positions.empty(), "add the root first");
    VSYNC_ASSERT(!route.empty(), "child route must have a segment");
    VSYNC_ASSERT(route.front() == positions.at(parent),
                 "route must start at the parent position");
    VSYNC_ASSERT(route.back() == pos, "route must end at the child");
    const NodeId id = tree.addNode();
    tree.setParent(id, parent);
    positions.push_back(pos);
    wireLengths.push_back(route.length());
    wires.push_back(std::move(route));
    cellOf.push_back(invalidId);
    invalidateCache();
    return id;
}

void
ClockTree::padWire(NodeId node, Length extra)
{
    VSYNC_ASSERT(node > 0 && static_cast<std::size_t>(node) < size(),
                 "cannot pad node %d", node);
    VSYNC_ASSERT(extra >= 0.0, "negative padding %g", extra);
    // The detour is accounted in the length only; the drawn route is
    // unchanged (a serpentine of the same endpoints).
    wireLengths[node] += extra;
    invalidateCache();
}

void
ClockTree::bindCell(NodeId node, CellId cell)
{
    VSYNC_ASSERT(node >= 0 && static_cast<std::size_t>(node) < size(),
                 "binding unknown tree node %d", node);
    VSYNC_ASSERT(cell >= 0, "binding invalid cell %d", cell);
    VSYNC_ASSERT(cellOf[node] == invalidId,
                 "tree node %d already clocks cell %d", node, cellOf[node]);
    if (static_cast<std::size_t>(cell) >= nodeOf.size())
        nodeOf.resize(cell + 1, invalidId);
    VSYNC_ASSERT(nodeOf[cell] == invalidId,
                 "cell %d already clocked by node %d", cell, nodeOf[cell]);
    cellOf[node] = cell;
    nodeOf[cell] = node;
}

NodeId
ClockTree::root() const
{
    VSYNC_ASSERT(!positions.empty(), "empty clock tree has no root");
    return 0;
}

void
ClockTree::fillCache() const
{
    if (cacheValid)
        return;
    rootLenCache.assign(size(), 0.0);
    // Nodes are created parent-before-child, so a forward pass works.
    for (std::size_t v = 1; v < size(); ++v) {
        const NodeId p = tree.parent(static_cast<NodeId>(v));
        rootLenCache[v] = rootLenCache[p] + wireLengths[v];
    }
    cacheValid = true;
}

Length
ClockTree::rootPathLength(NodeId v) const
{
    fillCache();
    return rootLenCache.at(v);
}

NodeId
ClockTree::nodeOfCell(CellId cell) const
{
    if (cell < 0 || static_cast<std::size_t>(cell) >= nodeOf.size())
        return invalidId;
    return nodeOf[cell];
}

CellId
ClockTree::cellOfNode(NodeId v) const
{
    return cellOf.at(v);
}

std::size_t
ClockTree::boundCellCount() const
{
    std::size_t n = 0;
    for (CellId c : cellOf)
        if (c != invalidId)
            ++n;
    return n;
}

Length
ClockTree::pathDifference(NodeId a, NodeId b) const
{
    return std::fabs(rootPathLength(a) - rootPathLength(b));
}

Length
ClockTree::treeDistance(NodeId a, NodeId b) const
{
    const NodeId anc = tree.nca(a, b);
    return rootPathLength(a) + rootPathLength(b) -
           2.0 * rootPathLength(anc);
}

Length
ClockTree::maxRootPathLength() const
{
    fillCache();
    Length longest = 0.0;
    for (Length len : rootLenCache)
        longest = std::max(longest, len);
    return longest;
}

Length
ClockTree::totalWireLength() const
{
    Length total = 0.0;
    for (Length len : wireLengths)
        total += len;
    return total;
}

bool
ClockTree::validate(bool die) const
{
    auto fail = [&](const std::string &msg) {
        if (die)
            fatal("clock tree '%s' invalid: %s", name.c_str(), msg.c_str());
        return false;
    };
    if (positions.empty())
        return fail("empty tree");
    if (!tree.valid())
        return fail("broken tree structure");
    for (std::size_t v = 1; v < size(); ++v) {
        const NodeId p = tree.parent(static_cast<NodeId>(v));
        if (p == invalidId)
            return fail(csprintf("node %zu detached", v));
        if (!(wires[v].front() == positions[p]) ||
            !(wires[v].back() == positions[v])) {
            return fail(csprintf("wire %zu endpoints mismatch", v));
        }
        if (wireLengths[v] + 1e-12 < wires[v].length())
            return fail(csprintf("wire %zu shorter than its route", v));
    }
    return true;
}

} // namespace vsync::clocktree
