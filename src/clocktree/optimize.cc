#include "clocktree/optimize.hh"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace vsync::clocktree
{

namespace
{

/**
 * A mutable strictly-binary merge tree over the layout's cells: every
 * internal node has exactly two children; leaves carry cell ids.
 */
struct MergeTree
{
    struct Node
    {
        int parent = -1;
        int left = -1;
        int right = -1;
        CellId cell = invalidId; // leaves only
    };

    std::vector<Node> nodes;
    int root = -1;

    bool isLeaf(int v) const { return nodes[v].left < 0; }

    /** Collect all node indices in the subtree of @p v. */
    void
    collect(int v, std::vector<int> &out) const
    {
        out.push_back(v);
        if (!isLeaf(v)) {
            collect(nodes[v].left, out);
            collect(nodes[v].right, out);
        }
    }

    /** Replace child @p old_child of @p parent with @p new_child. */
    void
    replaceChild(int parent, int old_child, int new_child)
    {
        if (nodes[parent].left == old_child)
            nodes[parent].left = new_child;
        else if (nodes[parent].right == old_child)
            nodes[parent].right = new_child;
        else
            panic("replaceChild: %d is not a child of %d", old_child,
                  parent);
        nodes[new_child].parent = parent;
    }
};

/** Centroid of the cells under each node (bottom-up DFS). */
void
centroids(const MergeTree &mt, const layout::Layout &l, int v,
          std::vector<geom::Point> &pos, std::vector<int> &count)
{
    if (mt.isLeaf(v)) {
        pos[v] = l.position(mt.nodes[v].cell);
        count[v] = 1;
        return;
    }
    centroids(mt, l, mt.nodes[v].left, pos, count);
    centroids(mt, l, mt.nodes[v].right, pos, count);
    const int a = mt.nodes[v].left, b = mt.nodes[v].right;
    count[v] = count[a] + count[b];
    pos[v] = {(pos[a].x * count[a] + pos[b].x * count[b]) / count[v],
              (pos[a].y * count[a] + pos[b].y * count[b]) / count[v]};
}

/** Emit a ClockTree from the merge tree (top-down, centroid nodes). */
ClockTree
emit(const MergeTree &mt, const layout::Layout &l)
{
    std::vector<geom::Point> pos(mt.nodes.size());
    std::vector<int> count(mt.nodes.size(), 0);
    centroids(mt, l, mt.root, pos, count);

    ClockTree t;
    t.name = "optimized/" + l.layoutName();
    struct Item
    {
        int mnode;
        NodeId parent;
    };
    std::vector<Item> stack;
    const NodeId root = t.addRoot(pos[mt.root]);
    if (mt.isLeaf(mt.root)) {
        t.bindCell(root, mt.nodes[mt.root].cell);
        return t;
    }
    stack.push_back({mt.nodes[mt.root].left, root});
    stack.push_back({mt.nodes[mt.root].right, root});
    while (!stack.empty()) {
        const Item item = stack.back();
        stack.pop_back();
        const NodeId node = t.addChild(item.parent, pos[item.mnode]);
        if (mt.isLeaf(item.mnode)) {
            t.bindCell(node, mt.nodes[item.mnode].cell);
        } else {
            stack.push_back({mt.nodes[item.mnode].left, node});
            stack.push_back({mt.nodes[item.mnode].right, node});
        }
    }
    return t;
}

/** Greedy nearest-pair agglomeration into a MergeTree. */
MergeTree
greedyMerge(const layout::Layout &l)
{
    MergeTree mt;
    struct Cluster
    {
        int node;
        geom::Point centroid;
        int size;
    };
    std::vector<Cluster> active;
    for (CellId c = 0; static_cast<std::size_t>(c) < l.size(); ++c) {
        MergeTree::Node leaf;
        leaf.cell = c;
        mt.nodes.push_back(leaf);
        active.push_back({static_cast<int>(c), l.position(c), 1});
    }
    while (active.size() > 1) {
        std::size_t best_i = 0, best_j = 1;
        Length best_d = std::numeric_limits<Length>::infinity();
        for (std::size_t i = 0; i < active.size(); ++i) {
            for (std::size_t j = i + 1; j < active.size(); ++j) {
                const Length d = geom::manhattan(active[i].centroid,
                                                 active[j].centroid);
                if (d < best_d) {
                    best_d = d;
                    best_i = i;
                    best_j = j;
                }
            }
        }
        MergeTree::Node parent;
        parent.left = active[best_i].node;
        parent.right = active[best_j].node;
        const int pid = static_cast<int>(mt.nodes.size());
        mt.nodes.push_back(parent);
        mt.nodes[parent.left].parent = pid;
        mt.nodes[parent.right].parent = pid;

        const auto &a = active[best_i];
        const auto &b = active[best_j];
        Cluster merged{
            pid,
            {(a.centroid.x * a.size + b.centroid.x * b.size) /
                 (a.size + b.size),
             (a.centroid.y * a.size + b.centroid.y * b.size) /
                 (a.size + b.size)},
            a.size + b.size};
        // Erase j first (larger index), then i.
        active.erase(active.begin() + static_cast<long>(best_j));
        active.erase(active.begin() + static_cast<long>(best_i));
        active.push_back(merged);
    }
    mt.root = active.front().node;
    return mt;
}

/**
 * Random regraft: detach a non-root subtree S, splice its parent out,
 * then re-insert S beside a random surviving node. Returns false when
 * no legal move exists (fewer than two leaves).
 */
bool
regraft(MergeTree &mt, Rng &rng)
{
    const int n = static_cast<int>(mt.nodes.size());
    if (n < 4)
        return false;

    // Pick S: any node that is not the root and whose parent is not
    // needed... any non-root node works.
    int s;
    do {
        s = static_cast<int>(rng.uniformInt(n));
    } while (s == mt.root);
    const int p = mt.nodes[s].parent;
    const int sibling =
        mt.nodes[p].left == s ? mt.nodes[p].right : mt.nodes[p].left;

    // Splice p out.
    const int gp = mt.nodes[p].parent;
    if (gp < 0) {
        // p was the root: the sibling becomes the root.
        mt.root = sibling;
        mt.nodes[sibling].parent = -1;
    } else {
        mt.replaceChild(gp, p, sibling);
    }

    // Choose the attach point x outside S (and distinct from p).
    std::vector<int> in_s;
    mt.collect(s, in_s);
    std::vector<bool> banned(mt.nodes.size(), false);
    for (int v : in_s)
        banned[v] = true;
    banned[p] = true;
    std::vector<int> candidates;
    for (int v = 0; v < n; ++v)
        if (!banned[v])
            candidates.push_back(v);
    if (candidates.empty()) {
        // Undo is complicated; with n >= 4 there is always a candidate
        // (the sibling at minimum), so this cannot happen.
        panic("regraft: no attach candidates");
    }
    const int x = candidates[rng.uniformInt(candidates.size())];

    // Reuse p as the new internal node joining x and S.
    const int xp = mt.nodes[x].parent;
    mt.nodes[p].left = x;
    mt.nodes[p].right = s;
    mt.nodes[x].parent = p;
    mt.nodes[s].parent = p;
    if (xp < 0) {
        mt.root = p;
        mt.nodes[p].parent = -1;
    } else {
        mt.replaceChild(xp, x, p);
    }
    return true;
}

} // namespace

ClockTree
buildGreedyMatching(const layout::Layout &l)
{
    VSYNC_ASSERT(l.size() >= 1, "empty layout");
    if (l.size() == 1) {
        ClockTree t;
        t.name = "greedy/" + l.layoutName();
        const NodeId root = t.addRoot(l.position(0));
        t.bindCell(t.addChild(root, l.position(0)), 0);
        return t;
    }
    MergeTree mt = greedyMerge(l);
    ClockTree t = emit(mt, l);
    t.name = "greedy/" + l.layoutName();
    return t;
}

double
maxCommTreeDistance(const layout::Layout &l, const ClockTree &t)
{
    double worst = 0.0;
    for (const graph::Edge &e : l.comm().undirectedEdges()) {
        const NodeId a = t.nodeOfCell(e.src);
        const NodeId b = t.nodeOfCell(e.dst);
        VSYNC_ASSERT(a != invalidId && b != invalidId,
                     "cells %d/%d unclocked", e.src, e.dst);
        worst = std::max(worst, t.treeDistance(a, b));
    }
    return worst;
}

OptimizeResult
optimizeTree(const layout::Layout &l, Rng &rng, int iterations)
{
    VSYNC_ASSERT(l.size() >= 2, "optimizer needs at least two cells");
    MergeTree current = greedyMerge(l);

    OptimizeResult result;
    result.tree = emit(current, l);
    result.initialObjective = maxCommTreeDistance(l, result.tree);
    double best = result.initialObjective;

    for (int it = 0; it < iterations; ++it) {
        MergeTree trial = current;
        if (!regraft(trial, rng))
            break;
        const ClockTree t = emit(trial, l);
        const double objective = maxCommTreeDistance(l, t);
        if (objective < best) {
            best = objective;
            current = std::move(trial);
            result.tree = t;
            ++result.improvements;
        }
    }
    result.finalObjective = best;
    result.tree.name = "optimized/" + l.layoutName();
    return result;
}

} // namespace vsync::clocktree
