/**
 * @file
 * The clock distribution tree CLK (assumption A4).
 *
 * A ClockTree is a rooted binary tree laid out in the plane. Every node
 * has a position; every non-root node has a routed wire from its parent.
 * Some nodes coincide with cells of a communication graph ("a cell can
 * be clocked if it is also a node of CLK"). The quantities the skew
 * models consume are purely geometric:
 *
 *  - h(v)    = physical length of the root-to-v path on CLK,
 *  - d(a, b) = |h(a) - h(b)|          (difference model, A9),
 *  - s(a, b) = h(a) + h(b) - 2 h(nca) (summation model, A10/A11),
 *  - P       = max over leaves of h   (equipotential period, A6).
 */

#ifndef VSYNC_CLOCKTREE_CLOCK_TREE_HH
#define VSYNC_CLOCKTREE_CLOCK_TREE_HH

#include <string>
#include <vector>

#include "geom/path.hh"
#include "geom/point.hh"
#include "graph/tree.hh"

namespace vsync::clocktree
{

/** A planar rooted binary clock tree. */
class ClockTree
{
  public:
    ClockTree() = default;

    /** Create the root at @p pos; must be the first node created. */
    NodeId addRoot(const geom::Point &pos);

    /**
     * Add a node under @p parent connected by a straight L-route.
     *
     * @return the new node's id.
     */
    NodeId addChild(NodeId parent, const geom::Point &pos);

    /** Add a node under @p parent along an explicit route. */
    NodeId addChild(NodeId parent, const geom::Point &pos,
                    geom::Path route);

    /**
     * Lengthen the wire feeding @p node by @p extra without moving it
     * (a serpentine detour). Used to equalise root-to-leaf lengths
     * (Lemma 1).
     */
    void padWire(NodeId node, Length extra);

    /** Declare that tree node @p node clocks cell @p cell. */
    void bindCell(NodeId node, CellId cell);

    /** Number of tree nodes. */
    std::size_t size() const { return positions.size(); }

    /** The root node id. @pre addRoot was called. */
    NodeId root() const;

    /** Tree structure (parents/children/nca). */
    const graph::RootedTree &structure() const { return tree; }

    /** Position of node @p v. */
    const geom::Point &position(NodeId v) const
    {
        return positions.at(v);
    }

    /** Route of the wire from parent(v) to v. @pre v is not the root. */
    const geom::Path &wire(NodeId v) const { return wires.at(v); }

    /** Physical length of the wire from parent(v) to v (0 for root). */
    Length wireLength(NodeId v) const { return wireLengths.at(v); }

    /** Physical length h(v) of the root-to-v path. */
    Length rootPathLength(NodeId v) const;

    /** Tree node clocking cell @p cell (invalidId when unbound). */
    NodeId nodeOfCell(CellId cell) const;

    /** Cell clocked by node @p v (invalidId for internal nodes). */
    CellId cellOfNode(NodeId v) const;

    /** Number of cells bound to tree nodes. */
    std::size_t boundCellCount() const;

    /** d(a, b): |h(a) - h(b)| (the difference model's argument). */
    Length pathDifference(NodeId a, NodeId b) const;

    /** s(a, b): length of the tree path a..b (the summation model's
     *  argument). */
    Length treeDistance(NodeId a, NodeId b) const;

    /** Longest root-to-node physical path P (A6's clock-tree depth). */
    Length maxRootPathLength() const;

    /** Total wire length of the tree. */
    Length totalWireLength() const;

    /**
     * Structural checks: single root, wires' endpoints match node
     * positions, every bound cell bound exactly once. fatal()s when
     * @p die, else returns false on violation.
     */
    bool validate(bool die = true) const;

    /**
     * Fill the lazy root-path-length cache now. The geometric queries
     * (rootPathLength, pathDifference, treeDistance, maxRootPathLength)
     * populate it on first use through a mutable member, which races if
     * the first callers are concurrent; warm it from one thread before
     * sharing a tree read-only across Monte-Carlo workers.
     */
    void warmCaches() const { fillCache(); }

    /** Optional builder-assigned name. */
    std::string name;

  private:
    graph::RootedTree tree;
    std::vector<geom::Point> positions;
    std::vector<geom::Path> wires;
    std::vector<Length> wireLengths;
    std::vector<CellId> cellOf;
    std::vector<NodeId> nodeOf; // indexed by cell id (grown on demand)
    mutable std::vector<Length> rootLenCache;
    mutable bool cacheValid = false;

    void invalidateCache() { cacheValid = false; }
    void fillCache() const;
};

} // namespace vsync::clocktree

#endif // VSYNC_CLOCKTREE_CLOCK_TREE_HH
