#include "clocktree/builders.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"

namespace vsync::clocktree
{

ClockTree
buildChain(const layout::Layout &l, const std::vector<CellId> &order,
           const geom::Point &root_pos)
{
    VSYNC_ASSERT(!order.empty(), "chain over empty cell order");
    ClockTree t;
    t.name = "chain/" + l.layoutName();
    NodeId prev = t.addRoot(root_pos);
    for (CellId cell : order) {
        const NodeId node = t.addChild(prev, l.position(cell));
        t.bindCell(node, cell);
        prev = node;
    }
    return t;
}

ClockTree
buildSpine(const layout::Layout &l)
{
    std::vector<CellId> order(l.size());
    std::iota(order.begin(), order.end(), 0);
    const geom::Point start = l.position(0);
    ClockTree t = buildChain(l, order, {start.x - 1.0, start.y});
    t.name = "spine/" + l.layoutName();
    return t;
}

namespace
{

/** Index rectangle [r0, r1) x [c0, c1) over a logical grid. */
struct Region
{
    int r0, r1, c0, c1;

    int rows() const { return r1 - r0; }
    int cols() const { return c1 - c0; }
    int count() const { return rows() * cols(); }
};

/** Recursive H-tree construction state. */
struct HBuild
{
    const layout::Layout &l;
    const std::function<CellId(int, int)> &cellAt;
    ClockTree &t;

    /** Centroid of a region's cell positions. */
    geom::Point
    center(const Region &reg) const
    {
        double sx = 0.0, sy = 0.0;
        int n = 0;
        for (int r = reg.r0; r < reg.r1; ++r) {
            for (int c = reg.c0; c < reg.c1; ++c) {
                const CellId cell = cellAt(r, c);
                VSYNC_ASSERT(cell != invalidId,
                             "H-tree grid hole at (%d, %d)", r, c);
                const geom::Point p = l.position(cell);
                sx += p.x;
                sy += p.y;
                ++n;
            }
        }
        return {sx / n, sy / n};
    }

    /** Build the subtree for @p reg under @p parent. */
    void
    build(NodeId parent, const Region &reg)
    {
        if (reg.count() == 1) {
            const CellId cell = cellAt(reg.r0, reg.c0);
            // The parent may already sit exactly on the cell; add the
            // leaf node regardless so each cell has a dedicated tap.
            const NodeId leaf = t.addChild(parent, l.position(cell));
            t.bindCell(leaf, cell);
            return;
        }
        Region a = reg, b = reg;
        if (reg.cols() >= reg.rows()) {
            const int mid = reg.c0 + reg.cols() / 2;
            a.c1 = mid;
            b.c0 = mid;
        } else {
            const int mid = reg.r0 + reg.rows() / 2;
            a.r1 = mid;
            b.r0 = mid;
        }
        for (const Region &sub : {a, b}) {
            const NodeId child = t.addChild(parent, center(sub));
            build(child, sub);
        }
    }
};

/** Pad leaf wires so all bound cells are equidistant from the root. */
void
equalizeBoundDepths(ClockTree &t)
{
    Length max_h = 0.0;
    for (NodeId v = 0; static_cast<std::size_t>(v) < t.size(); ++v)
        if (t.cellOfNode(v) != invalidId)
            max_h = std::max(max_h, t.rootPathLength(v));
    for (NodeId v = 0; static_cast<std::size_t>(v) < t.size(); ++v) {
        if (t.cellOfNode(v) == invalidId)
            continue;
        const Length deficit = max_h - t.rootPathLength(v);
        if (deficit > 1e-12)
            t.padWire(v, deficit);
    }
}

} // namespace

ClockTree
buildHTree(const layout::Layout &l, int rows, int cols,
           const std::function<CellId(int, int)> &cell_at, bool equalize)
{
    VSYNC_ASSERT(rows >= 1 && cols >= 1, "bad H-tree grid %dx%d",
                 rows, cols);
    ClockTree t;
    t.name = "htree/" + l.layoutName();
    HBuild hb{l, cell_at, t};
    const Region all{0, rows, 0, cols};
    const NodeId root = t.addRoot(hb.center(all));
    if (all.count() == 1) {
        const CellId cell = cell_at(0, 0);
        const NodeId leaf = t.addChild(root, l.position(cell));
        t.bindCell(leaf, cell);
    } else {
        hb.build(root, all);
    }
    if (equalize)
        equalizeBoundDepths(t);
    return t;
}

ClockTree
buildHTreeGrid(const layout::Layout &l, int rows, int cols, bool equalize)
{
    return buildHTree(
        l, rows, cols,
        [cols](int r, int c) {
            return static_cast<CellId>(r * cols + c);
        },
        equalize);
}

ClockTree
buildHTreeLinear(const layout::Layout &l, bool equalize)
{
    return buildHTree(
        l, 1, static_cast<int>(l.size()),
        [](int, int c) { return static_cast<CellId>(c); }, equalize);
}

namespace
{

/** Centroid of an explicit cell subset. */
geom::Point
subsetCentroid(const layout::Layout &l, const std::vector<CellId> &cells)
{
    double sx = 0.0, sy = 0.0;
    for (CellId c : cells) {
        sx += l.position(c).x;
        sy += l.position(c).y;
    }
    const double n = static_cast<double>(cells.size());
    return {sx / n, sy / n};
}

/** Recursive median split used by buildRecursiveBisection. */
void
bisect(const layout::Layout &l, ClockTree &t, NodeId parent,
       std::vector<CellId> cells)
{
    if (cells.size() == 1) {
        const NodeId leaf = t.addChild(parent, l.position(cells[0]));
        t.bindCell(leaf, cells[0]);
        return;
    }
    // Split at the median of the wider axis.
    geom::Rect bb{infinity, infinity, -infinity, -infinity};
    for (CellId c : cells)
        bb.include(l.position(c));
    const bool by_x = bb.width() >= bb.height();
    std::sort(cells.begin(), cells.end(), [&](CellId a, CellId b) {
        const geom::Point &pa = l.position(a);
        const geom::Point &pb = l.position(b);
        return by_x ? (pa.x != pb.x ? pa.x < pb.x : pa.y < pb.y)
                    : (pa.y != pb.y ? pa.y < pb.y : pa.x < pb.x);
    });
    const std::size_t mid = cells.size() / 2;
    std::vector<CellId> left(cells.begin(), cells.begin() + mid);
    std::vector<CellId> right(cells.begin() + mid, cells.end());
    for (auto &half : {left, right}) {
        const NodeId child = t.addChild(parent, subsetCentroid(l, half));
        bisect(l, t, child, half);
    }
}

/** Recursive random split used by buildRandomTree. */
void
randomSplit(const layout::Layout &l, ClockTree &t, NodeId parent,
            std::vector<CellId> cells, Rng &rng)
{
    if (cells.size() == 1) {
        const NodeId leaf = t.addChild(parent, l.position(cells[0]));
        t.bindCell(leaf, cells[0]);
        return;
    }
    // Shuffle, then cut at a random interior point.
    for (std::size_t i = cells.size(); i > 1; --i)
        std::swap(cells[i - 1], cells[rng.uniformInt(i)]);
    const std::size_t cut =
        1 + static_cast<std::size_t>(rng.uniformInt(cells.size() - 1));
    std::vector<CellId> left(cells.begin(), cells.begin() + cut);
    std::vector<CellId> right(cells.begin() + cut, cells.end());
    for (auto &half : {left, right}) {
        const NodeId child = t.addChild(parent, subsetCentroid(l, half));
        randomSplit(l, t, child, half, rng);
    }
}

} // namespace

ClockTree
buildRecursiveBisection(const layout::Layout &l)
{
    VSYNC_ASSERT(l.size() >= 1, "empty layout");
    std::vector<CellId> cells(l.size());
    std::iota(cells.begin(), cells.end(), 0);
    ClockTree t;
    t.name = "rbisect/" + l.layoutName();
    const NodeId root = t.addRoot(subsetCentroid(l, cells));
    if (cells.size() == 1) {
        const NodeId leaf = t.addChild(root, l.position(cells[0]));
        t.bindCell(leaf, cells[0]);
    } else {
        bisect(l, t, root, std::move(cells));
    }
    return t;
}

ClockTree
buildDoubleComb(const layout::Layout &l)
{
    VSYNC_ASSERT(l.size() >= 2, "double comb needs >= 2 cells");
    // Identify the two rows and bucket cells by x coordinate.
    Length y_lo = infinity, y_hi = -infinity;
    for (CellId c = 0; static_cast<std::size_t>(c) < l.size(); ++c) {
        y_lo = std::min(y_lo, l.position(c).y);
        y_hi = std::max(y_hi, l.position(c).y);
    }
    const Length y_mid = (y_lo + y_hi) / 2.0;

    struct Column
    {
        Length x;
        std::vector<CellId> cells; // 1 or 2
    };
    std::vector<Column> columns;
    for (CellId c = 0; static_cast<std::size_t>(c) < l.size(); ++c) {
        const Length x = l.position(c).x;
        auto it = std::find_if(columns.begin(), columns.end(),
                               [x](const Column &col) {
                                   return std::fabs(col.x - x) < 1e-9;
                               });
        if (it == columns.end()) {
            columns.push_back({x, {c}});
        } else {
            VSYNC_ASSERT(it->cells.size() < 2,
                         "more than two cells share column x=%g", x);
            it->cells.push_back(c);
        }
    }
    std::sort(columns.begin(), columns.end(),
              [](const Column &a, const Column &b) { return a.x < b.x; });

    ClockTree t;
    t.name = "double-comb/" + l.layoutName();
    // Spine enters one pitch left of the first column, between rows.
    NodeId spine = t.addRoot({columns.front().x - 1.0, y_mid});
    for (const Column &col : columns) {
        // Spine node A at this column, then a helper B at the same
        // point so each tree node keeps at most two children.
        const NodeId a = t.addChild(spine, {col.x, y_mid});
        const NodeId b = t.addChild(a, {col.x, y_mid});
        // Rung(s) to the cells of this column.
        const NodeId rung0 = t.addChild(a, l.position(col.cells[0]));
        t.bindCell(rung0, col.cells[0]);
        if (col.cells.size() == 2) {
            const NodeId rung1 =
                t.addChild(b, l.position(col.cells[1]));
            t.bindCell(rung1, col.cells[1]);
        }
        spine = b;
    }
    return t;
}

ClockTree
buildRandomTree(const layout::Layout &l, Rng &rng)
{
    VSYNC_ASSERT(l.size() >= 1, "empty layout");
    std::vector<CellId> cells(l.size());
    std::iota(cells.begin(), cells.end(), 0);
    ClockTree t;
    t.name = "random/" + l.layoutName();
    const NodeId root = t.addRoot(subsetCentroid(l, cells));
    if (cells.size() == 1) {
        const NodeId leaf = t.addChild(root, l.position(cells[0]));
        t.bindCell(leaf, cells[0]);
    } else {
        randomSplit(l, t, root, std::move(cells), rng);
    }
    return t;
}

} // namespace vsync::clocktree
