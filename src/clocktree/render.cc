#include "clocktree/render.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "clocktree/clock_tree.hh"
#include "common/logging.hh"
#include "geom/rect.hh"

namespace vsync::clocktree
{

namespace
{

/** A character canvas addressed in layout coordinates. */
class Canvas
{
  public:
    Canvas(const geom::Rect &bb, double scale, int max_chars)
        : x0(bb.x0), y0(bb.y0), scale(scale)
    {
        cols = static_cast<int>(std::floor(bb.width() / scale)) + 1;
        rows = static_cast<int>(std::floor(bb.height() / scale)) + 1;
        cols = std::clamp(cols, 1, max_chars);
        rows = std::clamp(rows, 1, max_chars);
        grid.assign(static_cast<std::size_t>(rows),
                    std::string(static_cast<std::size_t>(cols), '.'));
    }

    /**
     * Put @p ch at point @p p. Layering: '.' is always overwritten;
     * wires never overwrite nodes/cells; 'o' + '#' merge into '*'.
     */
    void
    put(const geom::Point &p, char ch)
    {
        const int c = std::clamp(
            static_cast<int>(std::lround((p.x - x0) / scale)), 0,
            cols - 1);
        const int r = std::clamp(
            static_cast<int>(std::lround((p.y - y0) / scale)), 0,
            rows - 1);
        char &cur = grid[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(c)];
        auto rank = [](char k) {
            switch (k) {
              case '.':
                return 0;
              case '-':
              case '|':
              case '+':
                return 1;
              case 'o':
              case '#':
                return 2;
              case '*':
                return 3;
              default: // 'R'
                return 4;
            }
        };
        if ((cur == 'o' && ch == '#') || (cur == '#' && ch == 'o')) {
            cur = '*';
        } else if (rank(ch) > rank(cur)) {
            cur = ch;
        } else if (rank(ch) == 1 && rank(cur) == 1 && cur != ch) {
            cur = '+';
        }
    }

    /** Draw a polyline with wire characters. */
    void
    wire(const geom::Path &path)
    {
        for (std::size_t i = 1; i < path.size(); ++i) {
            const geom::Point &a = path[i - 1];
            const geom::Point &b = path[i];
            const Length len = geom::manhattan(a, b);
            const int steps =
                std::max(1, static_cast<int>(len / scale * 2.0));
            const bool horizontal =
                std::fabs(b.x - a.x) >= std::fabs(b.y - a.y);
            for (int s = 0; s <= steps; ++s) {
                const double t =
                    static_cast<double>(s) / static_cast<double>(steps);
                put({a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t},
                    horizontal ? '-' : '|');
            }
        }
    }

    std::string
    str() const
    {
        std::string out;
        // Render top row last so +y points up on screen.
        for (int r = rows - 1; r >= 0; --r) {
            out += grid[static_cast<std::size_t>(r)];
            out += '\n';
        }
        return out;
    }

  private:
    double x0, y0, scale;
    int cols = 0, rows = 0;
    std::vector<std::string> grid;
};

geom::Rect
combinedBox(const layout::Layout &l, const ClockTree *t)
{
    geom::Rect bb = l.boundingBox();
    if (t) {
        for (NodeId v = 0; static_cast<std::size_t>(v) < t->size(); ++v)
            bb.include(t->position(v));
    }
    return bb;
}

} // namespace

std::string
renderLayout(const layout::Layout &l, const RenderOptions &opts)
{
    VSYNC_ASSERT(opts.scale > 0.0, "bad render scale %g", opts.scale);
    Canvas canvas(combinedBox(l, nullptr), opts.scale, opts.maxChars);
    for (CellId c = 0; static_cast<std::size_t>(c) < l.size(); ++c)
        canvas.put(l.position(c), 'o');
    return canvas.str();
}

std::string
renderWithClock(const layout::Layout &l, const ClockTree &t,
                const RenderOptions &opts)
{
    VSYNC_ASSERT(opts.scale > 0.0, "bad render scale %g", opts.scale);
    Canvas canvas(combinedBox(l, &t), opts.scale, opts.maxChars);
    if (opts.drawClockWires) {
        for (NodeId v = 1; static_cast<std::size_t>(v) < t.size(); ++v)
            canvas.wire(t.wire(v));
    }
    for (NodeId v = 0; static_cast<std::size_t>(v) < t.size(); ++v)
        canvas.put(t.position(v), '#');
    for (CellId c = 0; static_cast<std::size_t>(c) < l.size(); ++c)
        canvas.put(l.position(c), 'o');
    canvas.put(t.position(t.root()), 'R');
    return canvas.str();
}

} // namespace vsync::clocktree
