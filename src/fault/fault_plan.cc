#include "fault/fault_plan.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace vsync::fault
{

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DeadBuffer:
        return "dead-buffer";
      case FaultKind::DelayDrift:
        return "delay-drift";
      case FaultKind::StuckAtNet:
        return "stuck-at-net";
      case FaultKind::TransientGlitch:
        return "transient-glitch";
      case FaultKind::SeveredHandshakeWire:
        return "severed-handshake-wire";
    }
    return "?";
}

FaultRates
FaultRates::uniform(double rate)
{
    VSYNC_ASSERT(rate >= 0.0 && rate <= 1.0, "bad fault rate %g", rate);
    FaultRates r;
    r.deadBuffer = rate;
    r.delayDrift = rate;
    r.stuckAtNet = rate;
    r.transientGlitch = rate;
    r.severedHandshakeWire = rate;
    return r;
}

FaultRates
FaultRates::mixed(double rate)
{
    VSYNC_ASSERT(rate >= 0.0 && rate <= 1.0, "bad fault rate %g", rate);
    FaultRates r;
    r.deadBuffer = rate;
    r.delayDrift = rate / 2.0;
    r.stuckAtNet = rate / 4.0;
    r.transientGlitch = rate / 4.0;
    r.severedHandshakeWire = rate;
    return r;
}

namespace
{

/** Sites a kind's Bernoulli pass ranges over. */
std::size_t
sitesOf(FaultKind kind, const FaultUniverse &u)
{
    switch (kind) {
      case FaultKind::DeadBuffer:
      case FaultKind::DelayDrift:
        return u.bufferSites;
      case FaultKind::StuckAtNet:
      case FaultKind::TransientGlitch:
        return u.clockNets;
      case FaultKind::SeveredHandshakeWire:
        return u.handshakeWires;
    }
    return 0;
}

double
rateOf(FaultKind kind, const FaultRates &r)
{
    switch (kind) {
      case FaultKind::DeadBuffer:
        return r.deadBuffer;
      case FaultKind::DelayDrift:
        return r.delayDrift;
      case FaultKind::StuckAtNet:
        return r.stuckAtNet;
      case FaultKind::TransientGlitch:
        return r.transientGlitch;
      case FaultKind::SeveredHandshakeWire:
        return r.severedHandshakeWire;
    }
    return 0.0;
}

} // namespace

FaultPlan
FaultPlan::generate(const FaultUniverse &universe, const FaultRates &rates,
                    Rng &rng)
{
    FaultPlan plan;
    for (int k = 0; k < faultKindCount; ++k) {
        const FaultKind kind = static_cast<FaultKind>(k);
        const double rate = rateOf(kind, rates);
        const std::size_t sites = sitesOf(kind, universe);
        // Every kind consumes its own substream so one kind's rate
        // never perturbs another kind's draws.
        Rng stream = rng.deriveStream(static_cast<std::uint64_t>(k));
        if (rate <= 0.0 || sites == 0)
            continue;
        for (std::size_t s = 0; s < sites; ++s) {
            if (!stream.bernoulli(rate))
                continue;
            Fault f;
            f.kind = kind;
            f.site = s;
            f.onset = rates.onsetWindow > 0.0
                          ? stream.uniform(0.0, rates.onsetWindow)
                          : 0.0;
            switch (kind) {
              case FaultKind::DelayDrift:
                f.magnitude = stream.uniform(rates.driftFactorLo,
                                             rates.driftFactorHi);
                break;
              case FaultKind::TransientGlitch:
                f.magnitude = rates.glitchWidth;
                break;
              case FaultKind::StuckAtNet:
                f.stuckHigh = stream.bernoulli(0.5);
                break;
              default:
                break;
            }
            plan.list.push_back(f);
        }
    }
    return plan;
}

FaultPlan
FaultPlan::forTrial(const FaultUniverse &universe, const FaultRates &rates,
                    std::uint64_t seed, std::uint64_t trial)
{
    Rng rng = Rng::forTrial(seed, trial);
    return generate(universe, rates, rng);
}

FaultPlan
FaultPlan::singleDeadBuffer(std::size_t site, Time onset)
{
    FaultPlan plan;
    plan.list.push_back({FaultKind::DeadBuffer, site, onset, 1.0, false});
    return plan;
}

FaultPlan
FaultPlan::singleSeveredWire(std::size_t wire, Time onset)
{
    FaultPlan plan;
    plan.list.push_back(
        {FaultKind::SeveredHandshakeWire, wire, onset, 1.0, false});
    return plan;
}

std::size_t
FaultPlan::count(FaultKind kind) const
{
    return static_cast<std::size_t>(std::count_if(
        list.begin(), list.end(),
        [kind](const Fault &f) { return f.kind == kind; }));
}

bool
FaultPlan::operator==(const FaultPlan &other) const
{
    if (list.size() != other.list.size())
        return false;
    for (std::size_t i = 0; i < list.size(); ++i) {
        const Fault &a = list[i];
        const Fault &b = other.list[i];
        if (a.kind != b.kind || a.site != b.site || a.onset != b.onset ||
            a.magnitude != b.magnitude || a.stuckHigh != b.stuckHigh)
            return false;
    }
    return true;
}

} // namespace vsync::fault
