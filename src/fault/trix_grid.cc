#include "fault/trix_grid.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsync::fault
{

TrixGrid::TrixGrid(desim::Simulator &sim, int rows, int cols,
                   const LinkDelayFn &delay_of)
    : sim(sim), gridRows(rows), gridCols(cols)
{
    VSYNC_ASSERT(rows >= 1 && cols >= 1, "bad grid %dx%d", rows, cols);
    root = std::make_unique<desim::Signal>("trix_root");
    // Construct every node up front; listeners capture Node pointers,
    // so the vector must never reallocate after this resize.
    nodes.resize(static_cast<std::size_t>(rows) *
                 static_cast<std::size_t>(cols));

    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            Node &node = nodes[static_cast<std::size_t>(r) * cols + c];
            node.out = std::make_unique<desim::Signal>(
                csprintf("trix%d_%d", r, c));
            // Record the node's real firing times off the signal, not
            // the voter, so a stuck-at-low output reports "never
            // clocked" and a stuck-at-high fault reports its premature
            // arrival.
            std::vector<Time> *firings = &node.firings;
            node.out->onChange([firings](Time t, bool v) {
                if (v)
                    firings->push_back(t);
            });
            for (int k = 0; k < 3; ++k) {
                // Predecessor column c-1+k, clamped at the edges (edge
                // nodes carry a doubled link from the clamped
                // neighbour -- still a physically distinct buffer, so
                // a single dead link never silences the node).
                const int pc = std::clamp(c - 1 + k, 0, cols - 1);
                desim::Signal &src =
                    r == 0
                        ? *root
                        : *nodes[static_cast<std::size_t>(r - 1) * cols +
                                 pc].out;
                node.linkOut[k] = std::make_unique<desim::Signal>(
                    csprintf("trix%d_%d.l%d", r, c, k));
                node.links[k] = std::make_unique<desim::DelayElement>(
                    sim, src, *node.linkOut[k],
                    desim::EdgeDelays::same(delay_of(r, c, k)));
                Node *np = &node;
                TrixGrid *self = this;
                node.linkOut[k]->onChange(
                    [self, np, k](Time t, bool v) {
                        if (v)
                            self->onLinkRise(*np, k, t);
                    });
            }
        }
    }
}

void
TrixGrid::onLinkRise(Node &node, int k, Time t)
{
    ++node.seen[k];
    // Median vote: the node's next pulse fires the moment a second
    // link has delivered a not-yet-consumed rising edge.
    int ready = 0;
    for (int j = 0; j < 3; ++j)
        ready += node.seen[j] > node.fired;
    if (ready >= 2) {
        ++node.fired;
        node.out->set(t, true);
    }
}

std::size_t
TrixGrid::linkIndex(int row, int col, int k) const
{
    VSYNC_ASSERT(row >= 0 && row < gridRows && col >= 0 &&
                     col < gridCols && k >= 0 && k < 3,
                 "bad link (%d,%d,%d)", row, col, k);
    return (static_cast<std::size_t>(row) * gridCols + col) * 3 +
           static_cast<std::size_t>(k);
}

FaultUniverse
TrixGrid::universe(int rows, int cols)
{
    FaultUniverse u;
    const std::size_t n =
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
    u.bufferSites = 3 * n;
    u.clockNets = n + 1; // node outputs plus the root driver
    u.handshakeWires = 0;
    return u;
}

desim::DelayElement &
TrixGrid::link(std::size_t index)
{
    Node &node = nodes.at(index / 3);
    return *node.links[index % 3];
}

desim::Signal &
TrixGrid::nodeSignal(int row, int col)
{
    return *nodes.at(static_cast<std::size_t>(row) * gridCols + col).out;
}

desim::Signal &
TrixGrid::netSignal(std::size_t index)
{
    if (index == nodes.size())
        return *root;
    return *nodes.at(index).out;
}

void
TrixGrid::pulse(Time start)
{
    desim::Signal *r = root.get();
    sim.scheduleAt(start, [r, start]() { r->set(start, true); });
    sim.run();
}

Time
TrixGrid::arrival(int row, int col) const
{
    const Node &node =
        nodes.at(static_cast<std::size_t>(row) * gridCols + col);
    return node.firings.empty() ? infinity : node.firings.front();
}

std::vector<Time>
TrixGrid::cellArrivals() const
{
    std::vector<Time> arr;
    arr.reserve(nodes.size());
    for (const Node &node : nodes)
        arr.push_back(node.firings.empty() ? infinity
                                           : node.firings.front());
    return arr;
}

} // namespace vsync::fault
