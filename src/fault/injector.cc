#include "fault/injector.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace vsync::fault
{

FaultInjector::FaultInjector(desim::Simulator &sim, FaultPlan plan)
    : sim(sim), plan(std::move(plan))
{
}

void
FaultInjector::noteArmed(FaultKind kind)
{
    if (metrics)
        metrics->counter("fault.armed." + faultKindName(kind)).inc();
}

void
FaultInjector::killElement(desim::DelayElement &el, Time onset)
{
    // Capture the target, never the injector: scheduled faults must
    // outlive this object.
    desim::DelayElement *target = &el;
    if (onset <= sim.now())
        target->setDead(true);
    else
        sim.scheduleAt(onset, [target]() { target->setDead(true); });
    ++armedCount;
}

void
FaultInjector::driftElement(desim::DelayElement &el, Time onset,
                            double factor)
{
    desim::DelayElement *target = &el;
    if (onset <= sim.now())
        target->setDelayScale(factor);
    else
        sim.scheduleAt(onset,
                       [target, factor]() { target->setDelayScale(factor); });
    ++armedCount;
}

void
FaultInjector::stickSignal(desim::Signal &sig, Time onset, bool high)
{
    desim::Signal *target = &sig;
    if (onset <= sim.now())
        target->forceStuck(sim.now(), high);
    else
        sim.scheduleAt(onset,
                       [target, onset, high]() {
                           target->forceStuck(onset, high);
                       });
    ++armedCount;
}

void
FaultInjector::glitchSignal(desim::Signal &sig, Time onset, Time width)
{
    VSYNC_ASSERT(width > 0.0, "glitch width %g must be positive", width);
    desim::Signal *target = &sig;
    desim::Simulator *s = &sim;
    const Time start = std::max(onset, sim.now());
    // The spurious pulse inverts whatever level the net holds at onset
    // and restores it width later.
    sim.scheduleAt(start, [target, s, start, width]() {
        const bool orig = target->value();
        target->set(start, !orig);
        s->scheduleAt(start + width, [target, start, width, orig]() {
            target->set(start + width, orig);
        });
    });
    ++armedCount;
}

void
FaultInjector::armClockNet(desim::ClockNet &net)
{
    for (const Fault &f : plan.faults()) {
        switch (f.kind) {
          case FaultKind::DeadBuffer:
            killElement(net.element(f.site), f.onset);
            break;
          case FaultKind::DelayDrift:
            driftElement(net.element(f.site), f.onset, f.magnitude);
            break;
          case FaultKind::StuckAtNet:
            stickSignal(net.siteSignal(f.site), f.onset, f.stuckHigh);
            break;
          case FaultKind::TransientGlitch:
            glitchSignal(net.siteSignal(f.site), f.onset, f.magnitude);
            break;
          case FaultKind::SeveredHandshakeWire:
            continue; // no handshake wires on a clock net
        }
        noteArmed(f.kind);
    }
}

void
FaultInjector::armTrixGrid(TrixGrid &grid)
{
    for (const Fault &f : plan.faults()) {
        switch (f.kind) {
          case FaultKind::DeadBuffer:
            killElement(grid.link(f.site), f.onset);
            break;
          case FaultKind::DelayDrift:
            driftElement(grid.link(f.site), f.onset, f.magnitude);
            break;
          case FaultKind::StuckAtNet:
            stickSignal(grid.netSignal(f.site), f.onset, f.stuckHigh);
            break;
          case FaultKind::TransientGlitch:
            glitchSignal(grid.netSignal(f.site), f.onset, f.magnitude);
            break;
          case FaultKind::SeveredHandshakeWire:
            continue; // no handshake wires on a clock grid
        }
        noteArmed(f.kind);
    }
}

void
FaultInjector::armHandshakes(const std::vector<hybrid::HandshakePair *> &pairs)
{
    for (const Fault &f : plan.faults()) {
        if (f.kind != FaultKind::SeveredHandshakeWire)
            continue;
        const std::size_t pair = f.site / 2;
        VSYNC_ASSERT(pair < pairs.size(), "wire %zu beyond %zu pairs",
                     f.site, pairs.size());
        hybrid::HandshakePair &hp = *pairs[pair];
        killElement(f.site % 2 == 0 ? hp.requestWire()
                                    : hp.acknowledgeWire(),
                    f.onset);
        noteArmed(f.kind);
    }
}

FaultUniverse
universeOf(const clocktree::BufferedClockTree &tree)
{
    FaultUniverse u;
    u.bufferSites = tree.sites().size() - 1; // one element per non-root site
    u.clockNets = tree.sites().size();
    u.handshakeWires = 0;
    return u;
}

namespace
{

/** Fill the derived metrics of an outcome from its arrival vector. */
void
finishOutcome(const core::SkewKernel &kernel, const FaultPlan &plan,
              DistributionOutcome &out)
{
    const core::ArrivalSkew skew = kernel.arrivalSkew(out.cellArrival);
    out.clockedFraction = skew.clockedFraction;
    out.maxCommSkew = skew.maxCommSkew;
    out.clockedPairs = skew.clockedPairs;
    out.pairCount = skew.pairCount;
    out.faultCount = plan.size();
}

} // namespace

void
simulateTreeArrivalsUnderFaults(const core::SkewKernel &kernel,
                                const clocktree::BufferedClockTree &btree,
                                const desim::ClockNet::DelayFn &delay_of,
                                const FaultPlan &plan,
                                std::vector<Time> &cell_arrival)
{
    VSYNC_ASSERT(kernel.hasTree(),
                 "tree fault driver needs a tree-compiled kernel");
    desim::Simulator sim;
    desim::ClockNet net(sim, btree, delay_of);
    FaultInjector injector(sim, plan);
    injector.armClockNet(net);
    net.drive(1.0, 1);

    const std::size_t cells = kernel.cellCount();
    cell_arrival.assign(cells, infinity);
    for (CellId c = 0; c < static_cast<CellId>(cells); ++c) {
        const std::vector<Time> &arr =
            net.risingArrivals(kernel.nodeOfCell(c));
        if (!arr.empty())
            cell_arrival[c] = arr.front();
    }
}

DistributionOutcome
simulateTreeUnderFaults(const core::SkewKernel &kernel,
                        const clocktree::BufferedClockTree &btree,
                        const desim::ClockNet::DelayFn &delay_of,
                        const FaultPlan &plan)
{
    DistributionOutcome out;
    simulateTreeArrivalsUnderFaults(kernel, btree, delay_of, plan,
                                    out.cellArrival);
    finishOutcome(kernel, plan, out);
    return out;
}

DistributionOutcome
simulateTreeUnderFaults(const layout::Layout &l,
                        const clocktree::ClockTree &tree,
                        const clocktree::BufferedClockTree &btree,
                        const desim::ClockNet::DelayFn &delay_of,
                        const FaultPlan &plan)
{
    return simulateTreeUnderFaults(core::SkewKernel(l, tree), btree,
                                   delay_of, plan);
}

DistributionOutcome
simulateTreeUnderFaults(const layout::Layout &l,
                        const clocktree::ClockTree &tree,
                        const clocktree::BufferedClockTree &btree,
                        const desim::ClockNet::DelayFn &delay_of,
                        const FaultPlan &plan,
                        const core::KernelProvider &kernels)
{
    return simulateTreeUnderFaults(*kernels(l, &tree), btree, delay_of,
                                   plan);
}

void
simulateGridArrivalsUnderFaults(const core::SkewKernel &kernel, int rows,
                                int cols,
                                const TrixGrid::LinkDelayFn &delay_of,
                                const FaultPlan &plan,
                                std::vector<Time> &cell_arrival)
{
    VSYNC_ASSERT(static_cast<std::size_t>(rows) *
                         static_cast<std::size_t>(cols) ==
                     kernel.cellCount(),
                 "grid %dx%d does not cover %zu cells", rows, cols,
                 kernel.cellCount());
    desim::Simulator sim;
    TrixGrid grid(sim, rows, cols, delay_of);
    FaultInjector injector(sim, plan);
    injector.armTrixGrid(grid);
    grid.pulse();
    cell_arrival = grid.cellArrivals();
}

DistributionOutcome
simulateGridUnderFaults(const core::SkewKernel &kernel, int rows,
                        int cols, const TrixGrid::LinkDelayFn &delay_of,
                        const FaultPlan &plan)
{
    DistributionOutcome out;
    simulateGridArrivalsUnderFaults(kernel, rows, cols, delay_of, plan,
                                    out.cellArrival);
    finishOutcome(kernel, plan, out);
    return out;
}

DistributionOutcome
simulateGridUnderFaults(const layout::Layout &l, int rows, int cols,
                        const TrixGrid::LinkDelayFn &delay_of,
                        const FaultPlan &plan)
{
    return simulateGridUnderFaults(core::SkewKernel(l), rows, cols,
                                   delay_of, plan);
}

DistributionOutcome
simulateGridUnderFaults(const layout::Layout &l, int rows, int cols,
                        const TrixGrid::LinkDelayFn &delay_of,
                        const FaultPlan &plan,
                        const core::KernelProvider &kernels)
{
    return simulateGridUnderFaults(*kernels(l, nullptr), rows, cols,
                                   delay_of, plan);
}

} // namespace vsync::fault
