/**
 * @file
 * Deterministic fault plans: what breaks, where, and when.
 *
 * A FaultPlan is the complete description of the physical faults one
 * simulated chip suffers -- dead buffers, delay drift, stuck-at clock
 * nets, transient glitches, severed handshake wires. Plans are drawn
 * from counter-based RNG substreams (Rng::forTrial / deriveStream), so
 * the plan for trial i of a resilience sweep is a pure function of
 * (seed, trial, universe, rates): bit-identical at any thread count,
 * the same contract the Monte-Carlo engine guarantees for its samples
 * (DESIGN.md 4.1). Each fault kind draws from its own derived
 * substream, so raising one kind's rate never moves another kind's
 * sites or onsets.
 */

#ifndef VSYNC_FAULT_FAULT_PLAN_HH
#define VSYNC_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vsync
{
class Rng;
} // namespace vsync

namespace vsync::fault
{

/** The physical failure modes the subsystem can inject. */
enum class FaultKind
{
    /** A buffer/wire stage stops propagating transitions entirely. */
    DeadBuffer,
    /** A stage's delays are multiplied by a factor > 1 (aging/drift). */
    DelayDrift,
    /** A clock net freezes at a fixed logic level. */
    StuckAtNet,
    /** A clock net emits one spurious pulse. */
    TransientGlitch,
    /** A handshake req or ack wire is cut (the pair stalls). */
    SeveredHandshakeWire,
};

/** Number of FaultKind values (substream salts range over this). */
inline constexpr int faultKindCount = 5;

/** Human-readable fault-kind name. */
std::string faultKindName(FaultKind kind);

/** One concrete fault: a kind bound to a site and an onset time. */
struct Fault
{
    FaultKind kind = FaultKind::DeadBuffer;
    /** Site index; the domain depends on the kind (buffer/link index
     *  for DeadBuffer/DelayDrift, net index for StuckAtNet/
     *  TransientGlitch, wire index for SeveredHandshakeWire). */
    std::size_t site = 0;
    /** Simulation time at which the fault manifests (ns). */
    Time onset = 0.0;
    /** Kind-specific magnitude: delay-drift factor (> 1 slower) or
     *  transient-glitch pulse width (ns); 1 otherwise. */
    double magnitude = 1.0;
    /** Level a StuckAtNet fault freezes the net at. */
    bool stuckHigh = false;
};

/**
 * How many sites of each kind a target system exposes. Obtained from
 * the target (fault::universeOf, TrixGrid::universe) so plans can be
 * generated before any simulator exists.
 */
struct FaultUniverse
{
    /** Delay stages (tree elements or grid links). */
    std::size_t bufferSites = 0;
    /** Clock nets (signals stuck-at / glitch faults can hit). */
    std::size_t clockNets = 0;
    /** Handshake wires (2 per HandshakePair: req then ack). */
    std::size_t handshakeWires = 0;
};

/** Per-site fault probabilities and magnitude parameters. */
struct FaultRates
{
    /** P(dead) per buffer site. */
    double deadBuffer = 0.0;
    /** P(drift) per buffer site. */
    double delayDrift = 0.0;
    /** P(stuck-at) per clock net. */
    double stuckAtNet = 0.0;
    /** P(glitch) per clock net. */
    double transientGlitch = 0.0;
    /** P(severed) per handshake wire. */
    double severedHandshakeWire = 0.0;

    /** Delay-drift factor range (uniform draw, both > 1). */
    double driftFactorLo = 1.5;
    double driftFactorHi = 3.0;
    /** Transient-glitch pulse width (ns). */
    Time glitchWidth = 0.05;
    /** Onsets drawn uniformly from [0, onsetWindow]; 0 = at t = 0. */
    Time onsetWindow = 0.0;

    /** Every kind at probability @p rate (magnitudes at defaults). */
    static FaultRates uniform(double rate);

    /**
     * The resilience-sweep profile: dead buffers at @p rate, delay
     * drift at rate/2, stuck-at and glitches at rate/4 each, severed
     * wires at @p rate. Buffer faults dominate, matching the failure
     * statistics the TRIX comparison targets.
     */
    static FaultRates mixed(double rate);
};

/** A deterministic, reproducible list of faults for one trial. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Draw a plan for @p universe under @p rates from @p rng. Each
     * fault kind consumes its own rng.deriveStream(kind) substream.
     */
    static FaultPlan generate(const FaultUniverse &universe,
                              const FaultRates &rates, Rng &rng);

    /**
     * Convenience: the plan for trial @p trial of the experiment
     * seeded with @p seed, via the Rng::forTrial substream contract --
     * identical at any thread count.
     */
    static FaultPlan forTrial(const FaultUniverse &universe,
                              const FaultRates &rates,
                              std::uint64_t seed, std::uint64_t trial);

    /** A plan holding exactly one dead buffer at @p site. */
    static FaultPlan singleDeadBuffer(std::size_t site, Time onset = 0.0);

    /** A plan holding exactly one severed handshake wire @p wire. */
    static FaultPlan singleSeveredWire(std::size_t wire, Time onset = 0.0);

    /** All faults, in generation order. */
    const std::vector<Fault> &faults() const { return list; }

    /** Number of faults of @p kind in the plan. */
    std::size_t count(FaultKind kind) const;

    /** Total number of faults. */
    std::size_t size() const { return list.size(); }

    /** True when nothing breaks. */
    bool empty() const { return list.empty(); }

    /** Append one fault (for hand-built plans in tests/benches). */
    void add(const Fault &f) { list.push_back(f); }

    /** True when both plans list identical faults in the same order. */
    bool operator==(const FaultPlan &other) const;

  private:
    std::vector<Fault> list;
};

} // namespace vsync::fault

#endif // VSYNC_FAULT_FAULT_PLAN_HH
