/**
 * @file
 * TRIX-style redundant clock distribution grid with median voting
 * (after Wiederhake & Lenzen's TRIX and Lenzen & Srinivas' Gradient
 * TRIX).
 *
 * Clock pulses propagate layer by layer through a rows x cols grid of
 * nodes. Every node receives the pulse over three physically distinct
 * links from the previous layer (columns c-1, c, c+1, clamped at the
 * grid edge, so edge nodes carry a doubled link from the clamped
 * neighbour; layer 0 takes all three links from the root driver) and
 * fires on the MEDIAN of its three arrivals -- the second link pulse
 * to arrive. A single dead or slow link is therefore outvoted: the
 * median of {a, b, dead} is max(a, b) and with nominal delays equals
 * the nominal arrival exactly, so any single buffer fault causes zero
 * skew degradation. A binary clock tree, by contrast, loses the whole
 * subtree below a dead buffer.
 *
 * The grid is simulated on desim with the same DelayElement/Signal
 * primitives as ClockNet, so fault::FaultInjector's seams (setDead,
 * setDelayScale, forceStuck, glitches) apply to tree and grid alike,
 * and core::skewFromArrivals consumes both through the identical
 * per-cell arrival-time surface.
 */

#ifndef VSYNC_FAULT_TRIX_GRID_HH
#define VSYNC_FAULT_TRIX_GRID_HH

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "desim/elements.hh"
#include "desim/signal.hh"
#include "desim/simulator.hh"
#include "fault/fault_plan.hh"

namespace vsync::fault
{

/** A simulated redundant median-voting clock grid. */
class TrixGrid
{
  public:
    /**
     * Per-link delay assignment: maps (row, col, k) -- link k in
     * {0, 1, 2} feeding node (row, col) -- to that link's delay.
     * Callers sample process variation here, like ClockNet::DelayFn.
     */
    using LinkDelayFn = std::function<Time(int row, int col, int k)>;

    /**
     * Build the grid circuit on @p sim.
     *
     * @param delay_of per-link stage delay (called once per link in
     *                 row-major (row, col, k) order -- a deterministic
     *                 order callers may draw variation in).
     */
    TrixGrid(desim::Simulator &sim, int rows, int cols,
             const LinkDelayFn &delay_of);

    TrixGrid(const TrixGrid &) = delete;
    TrixGrid &operator=(const TrixGrid &) = delete;

    int rows() const { return gridRows; }
    int cols() const { return gridCols; }

    /** Grid nodes (= cells clocked, row-major). */
    std::size_t nodeCount() const { return nodes.size(); }

    /** Redundant links (3 per node). */
    std::size_t linkCount() const { return 3 * nodes.size(); }

    /** Flat index of link @p k feeding node (row, col). */
    std::size_t linkIndex(int row, int col, int k) const;

    /** The fault universe of a rows x cols grid (net index nodeCount()
     *  is the root driver). */
    static FaultUniverse universe(int rows, int cols);

    /** Same universe for this instance. */
    FaultUniverse universe() const
    {
        return universe(gridRows, gridCols);
    }

    /** Link delay element @p index (fault-injection seam). */
    desim::DelayElement &link(std::size_t index);

    /** Output signal of node (row, col) (fault-injection seam). */
    desim::Signal &nodeSignal(int row, int col);

    /** Net signal by flat index; index nodeCount() is the root. */
    desim::Signal &netSignal(std::size_t index);

    /** The root clock driver signal. */
    desim::Signal &rootSignal() { return *root; }

    /**
     * Emit one rising edge into the root at @p start and run the
     * simulation to completion.
     */
    void pulse(Time start = 0.0);

    /** First firing time of node (row, col); infinity if it never
     *  fired. */
    Time arrival(int row, int col) const;

    /**
     * Per-cell first arrival times for a row-major rows x cols layout
     * (cell r * cols + c is clocked by node (r, c)) -- the surface
     * core::skewFromArrivals consumes, shared with the faulty-tree
     * driver so tree and grid compare under identical fault plans.
     */
    std::vector<Time> cellArrivals() const;

    /** Nominal root-to-layer-@p row delay when every link has delay
     *  @p link_delay (layer r is r + 1 links deep). */
    static Time nominalArrival(int row, Time link_delay)
    {
        return static_cast<Time>(row + 1) * link_delay;
    }

  private:
    /** One grid node: 3 incoming links and a median-voted output. */
    struct Node
    {
        std::array<std::unique_ptr<desim::Signal>, 3> linkOut;
        std::array<std::unique_ptr<desim::DelayElement>, 3> links;
        std::unique_ptr<desim::Signal> out;
        /** Rising edges seen per link. */
        std::array<int, 3> seen{{0, 0, 0}};
        /** Pulses fired so far. */
        int fired = 0;
        /** Firing times. */
        std::vector<Time> firings;
    };

    desim::Simulator &sim;
    int gridRows;
    int gridCols;
    std::unique_ptr<desim::Signal> root;
    std::vector<Node> nodes; // row-major; stable after construction

    void onLinkRise(Node &node, int k, Time t);
};

} // namespace vsync::fault

#endif // VSYNC_FAULT_TRIX_GRID_HH
