/**
 * @file
 * Applying fault plans to simulated clock distributions.
 *
 * A FaultInjector arms the faults of a FaultPlan onto concrete desim
 * targets through the narrow seams those classes expose
 * (DelayElement::setDead / setDelayScale, Signal::forceStuck,
 * scheduled glitch pulses, HandshakePair wire access) -- no target
 * class is forked or subclassed. Faults with onset <= now() apply
 * immediately; later onsets are scheduled on the simulator, so a chip
 * can start healthy and degrade mid-run.
 *
 * The file also hosts the comparison drivers: one faulty
 * clock-distribution run over a buffered tree (ClockNet) or a TRIX
 * grid, both reduced to the same per-cell arrival surface
 * (core::skewFromArrivals), which is what lets resilience sweeps put
 * tree and grid under identical fault plans.
 */

#ifndef VSYNC_FAULT_INJECTOR_HH
#define VSYNC_FAULT_INJECTOR_HH

#include <vector>

#include "clocktree/buffering.hh"
#include "core/skew_kernel.hh"
#include "desim/clock_net.hh"
#include "desim/simulator.hh"
#include "fault/fault_plan.hh"
#include "fault/trix_grid.hh"
#include "hybrid/handshake.hh"
#include "layout/layout.hh"

namespace vsync::obs
{
class MetricsRegistry;
} // namespace vsync::obs

namespace vsync::fault
{

/** Arms a FaultPlan's faults onto simulated targets. */
class FaultInjector
{
  public:
    /**
     * @param sim  the simulator the targets live on (used to schedule
     *             onsets and glitch pulses).
     * @param plan the plan to inject (copied; temporaries are fine).
     */
    FaultInjector(desim::Simulator &sim, FaultPlan plan);

    /**
     * Hook buffer and net faults into @p net: DeadBuffer/DelayDrift by
     * element index, StuckAtNet/TransientGlitch by site index. Call
     * before driving the net.
     */
    void armClockNet(desim::ClockNet &net);

    /**
     * Hook buffer and net faults into @p grid: DeadBuffer/DelayDrift
     * by link index, StuckAtNet/TransientGlitch by net index (index
     * nodeCount() is the root driver).
     */
    void armTrixGrid(TrixGrid &grid);

    /**
     * Hook SeveredHandshakeWire faults into @p pairs: wire 2p is pair
     * p's request wire, wire 2p+1 its acknowledge wire.
     */
    void armHandshakes(const std::vector<hybrid::HandshakePair *> &pairs);

    /** Faults armed onto targets so far. */
    std::size_t armed() const { return armedCount; }

    /**
     * Count every subsequently armed fault into @p reg as a
     * "fault.armed.<kind>" counter (nullptr disables). Counters are
     * thread-safe, so concurrent trials may share one registry.
     */
    void setMetrics(obs::MetricsRegistry *reg) { metrics = reg; }

  private:
    desim::Simulator &sim;
    FaultPlan plan;
    std::size_t armedCount = 0;
    obs::MetricsRegistry *metrics = nullptr;

    void noteArmed(FaultKind kind);

    void killElement(desim::DelayElement &el, Time onset);
    void driftElement(desim::DelayElement &el, Time onset, double factor);
    void stickSignal(desim::Signal &sig, Time onset, bool high);
    void glitchSignal(desim::Signal &sig, Time onset, Time width);
};

/** The fault universe of a buffered clock tree driven as a ClockNet. */
FaultUniverse universeOf(const clocktree::BufferedClockTree &tree);

/** Per-cell outcome of one faulty clock-distribution run. */
struct DistributionOutcome
{
    /** First clock arrival per cell; infinity = never clocked. */
    std::vector<Time> cellArrival;
    /** Fraction of cells with a finite arrival. */
    double clockedFraction = 0.0;
    /** Max realised skew over comm pairs with both ends clocked. */
    Time maxCommSkew = 0.0;
    /** Comm pairs with both endpoints clocked. */
    std::size_t clockedPairs = 0;
    /** All comm pairs of the layout. */
    std::size_t pairCount = 0;
    /** Faults the plan injected. */
    std::size_t faultCount = 0;
};

/**
 * Drive one clock pulse through @p btree with @p plan armed and
 * measure what arrives. @p kernel must be the tree-compiled
 * core::SkewKernel of the scenario @p btree buffers; it supplies the
 * cell-to-node binding and the comm-pair reduction, so sweeps compile
 * it once and share it read-only across trials.
 *
 * @param delay_of per-site stage delays, as ClockNet's constructor
 *                 takes them (called in deterministic site order).
 */
DistributionOutcome
simulateTreeUnderFaults(const core::SkewKernel &kernel,
                        const clocktree::BufferedClockTree &btree,
                        const desim::ClockNet::DelayFn &delay_of,
                        const FaultPlan &plan);

/**
 * The arrivals-only half of simulateTreeUnderFaults: run the faulty
 * pulse and fill @p cell_arrival (resized to kernel.cellCount();
 * infinity = never clocked) without the pair-fold reduction. Blocked
 * resilience trials batch several of these surfaces lane-major and
 * reduce them in one core::SkewKernel::arrivalSkewBlock pass.
 */
void
simulateTreeArrivalsUnderFaults(const core::SkewKernel &kernel,
                                const clocktree::BufferedClockTree &btree,
                                const desim::ClockNet::DelayFn &delay_of,
                                const FaultPlan &plan,
                                std::vector<Time> &cell_arrival);

/**
 * Convenience overload compiling the kernel per call. Sweeps should
 * compile once and use the kernel overload.
 */
DistributionOutcome
simulateTreeUnderFaults(const layout::Layout &l,
                        const clocktree::ClockTree &tree,
                        const clocktree::BufferedClockTree &btree,
                        const desim::ClockNet::DelayFn &delay_of,
                        const FaultPlan &plan);

/**
 * As the convenience overload, but the kernel is fetched from
 * @p kernels (pass serve::ScenarioCache::provider() so repeated
 * single-shot drivers over the same scenario reuse one compile).
 */
DistributionOutcome
simulateTreeUnderFaults(const layout::Layout &l,
                        const clocktree::ClockTree &tree,
                        const clocktree::BufferedClockTree &btree,
                        const desim::ClockNet::DelayFn &delay_of,
                        const FaultPlan &plan,
                        const core::KernelProvider &kernels);

/**
 * Drive one clock pulse through a rows x cols TRIX grid clocking the
 * kernel's cells row-major (cell r * cols + c under node (r, c)) with
 * @p plan armed and measure what arrives. @p kernel may be pairs-only
 * (the grid replaces the tree, so no tree compile exists).
 *
 * @param delay_of per-link delays (TrixGrid::LinkDelayFn).
 */
DistributionOutcome
simulateGridUnderFaults(const core::SkewKernel &kernel, int rows,
                        int cols, const TrixGrid::LinkDelayFn &delay_of,
                        const FaultPlan &plan);

/** The arrivals-only half of simulateGridUnderFaults (see
 *  simulateTreeArrivalsUnderFaults). */
void
simulateGridArrivalsUnderFaults(const core::SkewKernel &kernel, int rows,
                                int cols,
                                const TrixGrid::LinkDelayFn &delay_of,
                                const FaultPlan &plan,
                                std::vector<Time> &cell_arrival);

/** Convenience overload compiling a pairs-only kernel per call. */
DistributionOutcome
simulateGridUnderFaults(const layout::Layout &l, int rows, int cols,
                        const TrixGrid::LinkDelayFn &delay_of,
                        const FaultPlan &plan);

/** As above with the pairs-only kernel fetched from @p kernels. */
DistributionOutcome
simulateGridUnderFaults(const layout::Layout &l, int rows, int cols,
                        const TrixGrid::LinkDelayFn &delay_of,
                        const FaultPlan &plan,
                        const core::KernelProvider &kernels);

} // namespace vsync::fault

#endif // VSYNC_FAULT_INJECTOR_HH
