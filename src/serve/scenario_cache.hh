/**
 * @file
 * Content-addressed cache of compiled skew kernels.
 *
 * PR 4's core::SkewKernel made scenario compilation a one-time cost
 * per sweep, but every caller still compiled its own kernel per call:
 * the dominant serving pattern -- many batches of queries against the
 * same handful of (Layout, ClockTree) scenarios -- paid the compile
 * again and again. The ScenarioCache closes that gap: scenarios are
 * keyed by a content hash of their topology and geometry (not by
 * object identity, so two independently built but identical scenarios
 * share one kernel), kernels are handed out as shared_ptr<const> and
 * therefore safe to use read-only from any number of threads, and a
 * bounded LRU keeps the working set in check.
 *
 * Concurrency contract: get() is thread-safe. When several threads ask
 * for the same not-yet-cached scenario at once, exactly one compiles;
 * the others block on a shared_future and receive the same kernel
 * object. Eviction of an entry that is still being waited on is safe:
 * waiters hold the future's shared state, the cache merely forgets it.
 */

#ifndef VSYNC_SERVE_SCENARIO_CACHE_HH
#define VSYNC_SERVE_SCENARIO_CACHE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/skew_kernel.hh"

namespace vsync::obs
{
class MetricsRegistry;
} // namespace vsync::obs

namespace vsync::serve
{

/** 128-bit content hash identifying one compiled scenario. */
struct ScenarioKey
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool
    operator==(const ScenarioKey &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
};

/**
 * The content hash a cache entry is addressed by: layout cell count,
 * communication edges (in id order), cell placements, and -- when a
 * tree is given -- the tree's parent structure, wire lengths, node
 * positions and cell bindings. Pairs-only keys (tree == nullptr) never
 * collide with tree keys for the same layout.
 */
ScenarioKey scenarioKeyOf(const layout::Layout &l,
                          const clocktree::ClockTree *t);

/** A bounded, thread-safe, LRU kernel cache. */
class ScenarioCache
{
  public:
    struct Config
    {
        /** Max resident kernels; at least 1. */
        std::size_t capacity = 32;
        /**
         * Optional registry receiving "<prefix>hits" / "misses" /
         * "evictions" counters and a cumulative "<prefix>compile_ms"
         * gauge (wall clock, so not bit-stable across runs).
         */
        obs::MetricsRegistry *metrics = nullptr;
        std::string metricsPrefix = "serve.cache.";
    };

    ScenarioCache();
    explicit ScenarioCache(Config cfg);

    ScenarioCache(const ScenarioCache &) = delete;
    ScenarioCache &operator=(const ScenarioCache &) = delete;

    /**
     * The compiled kernel of scenario (l, t); compiles on first use.
     * The returned kernel is immutable and remains valid after
     * eviction for as long as the caller holds the pointer.
     */
    std::shared_ptr<const core::SkewKernel>
    get(const layout::Layout &l, const clocktree::ClockTree &t);

    /** Pairs-only form (TRIX-style scenarios with no clock tree). */
    std::shared_ptr<const core::SkewKernel> get(const layout::Layout &l);

    /**
     * This cache as a core::KernelProvider, pluggable into the
     * provider overloads of mc::skewSweep, mc::resilienceAtRate and
     * the fault drivers. The provider borrows the cache; keep the
     * cache alive while the provider is in use.
     */
    core::KernelProvider provider();

    /** Resident kernels (compiles in flight count). */
    std::size_t size() const;

    /** Lookups that found a resident or in-flight kernel. */
    std::uint64_t hits() const
    {
        return hitCount.load(std::memory_order_relaxed);
    }

    /** Lookups that had to compile. */
    std::uint64_t misses() const
    {
        return missCount.load(std::memory_order_relaxed);
    }

    /** Kernels evicted by the LRU bound. */
    std::uint64_t evictions() const
    {
        return evictionCount.load(std::memory_order_relaxed);
    }

    /** Wall-clock milliseconds spent compiling, cumulative. */
    double compileMillis() const;

  private:
    using KernelPtr = std::shared_ptr<const core::SkewKernel>;

    struct KeyHash
    {
        std::size_t
        operator()(const ScenarioKey &k) const
        {
            return static_cast<std::size_t>(k.lo ^ (k.hi >> 1));
        }
    };

    struct Entry
    {
        std::shared_future<KernelPtr> kernel;
        std::list<ScenarioKey>::iterator lruPos;
        /** Distinguishes re-inserted entries from the one a failed
         *  compile must remove. */
        std::uint64_t generation = 0;
    };

    KernelPtr getOrCompile(const ScenarioKey &key,
                           const layout::Layout &l,
                           const clocktree::ClockTree *t);
    void noteCompiled(double ms);

    Config cfg;
    mutable std::mutex mutex;
    std::unordered_map<ScenarioKey, Entry, KeyHash> entries;
    std::list<ScenarioKey> lru; // front = most recently used

    std::uint64_t nextGeneration = 0; // guarded by mutex
    std::atomic<std::uint64_t> hitCount{0};
    std::atomic<std::uint64_t> missCount{0};
    std::atomic<std::uint64_t> evictionCount{0};
    std::atomic<double> compileMs{0.0};
};

} // namespace vsync::serve

#endif // VSYNC_SERVE_SCENARIO_CACHE_HH
