#include "serve/sweep_service.hh"

#include <atomic>
#include <chrono>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/probes.hh"
#include "serve/work_unit.hh"

namespace vsync::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

/** A request's precompiled shared state. */
struct Compiled
{
    bool isSkew = false;
    /** False when cancellation pre-empted the compile. */
    bool ready = false;
    /** Skew requests: the cached kernel. */
    std::shared_ptr<const core::SkewKernel> kernel;
    /** Resilience requests: the full scenario. */
    mc::ResilienceScenario scenario;
    /** The kernel's autotuned lane width, resolved at compile time so
     *  the (one-shot) tune never runs inside a timed work unit. A
     *  cache hit reuses the width tuned at first compile. */
    std::size_t width = 1;
};

const mc::McConfig &
configOf(const SweepRequest &rq)
{
    if (const SkewRequest *s = std::get_if<SkewRequest>(&rq))
        return s->cfg;
    return std::get<ResilienceRequest>(rq).cfg;
}

bool
isSkewRequest(const SweepRequest &rq)
{
    return std::holds_alternative<SkewRequest>(rq);
}

} // namespace

SweepService::SweepService(ServiceConfig config)
    : cfg(config),
      kernels(ScenarioCache::Config{config.cacheCapacity, config.metrics,
                                    "serve.cache."}),
      pool(config.threads)
{
    if (cfg.metrics) {
        poolMetrics = std::make_unique<obs::PoolMetricsObserver>(
            *cfg.metrics, "serve.pool.");
        pool.setObserver(poolMetrics.get());
    }
}

SweepService::~SweepService() = default;

void
SweepService::cancel()
{
    userCancel.cancel();
}

BatchOutcome
SweepService::run(const std::vector<SweepRequest> &batch,
                  const BatchOptions &opts)
{
    std::lock_guard<std::mutex> runLock(runMutex);
    userCancel.reset();
    stopToken.reset();
    const Clock::time_point t0 = Clock::now();
    const bool hasDeadline = opts.deadlineSeconds < infinity;
    // A zero/negative budget is expired on arrival: fail fast. The
    // explicit flag (rather than trusting Clock::now() > t0 on the
    // first phase-1 check) guarantees no compile and no first chunk.
    const bool expiredOnArrival =
        hasDeadline && opts.deadlineSeconds <= 0.0;
    const Clock::time_point deadline =
        hasDeadline ? t0 + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   opts.deadlineSeconds))
                    : Clock::time_point::max();

    const auto externallyCancelled = [&]() {
        return userCancel.cancelled() ||
               (opts.cancel && opts.cancel->cancelled());
    };

    BatchOutcome out;
    out.outcomes.resize(batch.size());
    std::atomic<bool> deadlineHit{false};

    // Phase 1 -- compile. Kernels come through the cache, so repeated
    // scenarios within the batch (and across batches) compile once.
    // Cancellation and the deadline are honoured between compiles; a
    // request whose compile was skipped contributes no work units.
    std::vector<Compiled> compiled(batch.size());
    for (std::size_t r = 0; r < batch.size(); ++r) {
        configOf(batch[r]).validate();
        out.outcomes[r].trialsRequested = configOf(batch[r]).trials;
        if (externallyCancelled())
            continue;
        if (expiredOnArrival ||
            (hasDeadline && Clock::now() >= deadline)) {
            deadlineHit.store(true, std::memory_order_relaxed);
            continue;
        }
        if (const SkewRequest *s = std::get_if<SkewRequest>(&batch[r])) {
            VSYNC_ASSERT(s->layout && s->tree,
                         "skew request %zu lacks layout or tree", r);
            compiled[r].isSkew = true;
            compiled[r].kernel = kernels.get(*s->layout, *s->tree);
            compiled[r].width = compiled[r].kernel->blockWidth();
            compiled[r].ready = true;
        } else {
            const ResilienceRequest &q =
                std::get<ResilienceRequest>(batch[r]);
            VSYNC_ASSERT(q.layout,
                         "resilience request %zu lacks a layout", r);
            compiled[r].scenario = mc::compileResilienceScenario(
                *q.layout, q.rows, q.cols, q.kind, q.faultRate, q.rc,
                kernels.provider());
            compiled[r].width =
                compiled[r].scenario.kernel->blockWidth();
            compiled[r].ready = true;
        }
    }

    // Phase 2 -- shard every request's trials into grain-sized units
    // (the public appendWorkUnits seam, so the distributed coordinator
    // shards identically) and preallocate the per-trial slots they
    // write.
    std::vector<WorkUnit> units;
    for (std::size_t r = 0; r < batch.size(); ++r) {
        const mc::McConfig &mcc = configOf(batch[r]);
        RequestOutcome &o = out.outcomes[r];
        if (isSkewRequest(batch[r])) {
            o.skew.samples.assign(mcc.trials, 0.0);
        } else {
            const ResilienceRequest &q =
                std::get<ResilienceRequest>(batch[r]);
            o.resilience.faultRate = q.faultRate;
            o.resilience.maxCommSkew.samples.assign(mcc.trials, 0.0);
            o.resilience.clockedFraction.samples.assign(mcc.trials, 0.0);
            o.faultSamples.assign(mcc.trials, 0.0);
        }
        if (!compiled[r].ready)
            continue;
        appendWorkUnits(r, mcc.trials, mcc.grain, units);
    }

    // Phase 3 -- run the units of all requests interleaved on the one
    // pool. Each unit is written by exactly one worker and the done
    // flags are read only after the pool joins, so plain bytes suffice.
    std::vector<std::uint8_t> unitDone(units.size(), 0);
    pool.parallelForRange(
        units.size(), 1,
        [&](std::size_t ub, std::size_t ue) {
            std::vector<Time> arrival; // lane scratch, reused per unit
            std::vector<Rng> lanes;
            for (std::size_t u = ub; u < ue; ++u) {
                if (externallyCancelled())
                    stopToken.cancel();
                else if (hasDeadline && Clock::now() >= deadline) {
                    deadlineHit.store(true, std::memory_order_relaxed);
                    stopToken.cancel();
                }
                if (stopToken.cancelled())
                    return;
                const WorkUnit &w = units[u];
                const mc::McConfig &mcc = configOf(batch[w.request]);
                RequestOutcome &o = out.outcomes[w.request];
                // Lane-blocked trial loops: blocks restart at every
                // unit boundary, so shard/grain choices cannot change
                // a bit of the output (each lane replays its global
                // substream regardless of neighbours).
                const std::size_t blockW = compiled[w.request].width;
                if (compiled[w.request].isSkew) {
                    const SkewRequest &s =
                        std::get<SkewRequest>(batch[w.request]);
                    const core::SkewKernel &kernel =
                        *compiled[w.request].kernel;
                    for (std::size_t i = w.begin; i < w.end;
                         i += blockW) {
                        const std::size_t bw =
                            std::min(blockW, w.end - i);
                        // The substream index is global: a shard of a
                        // sharded parent request (trialOffset != 0)
                        // draws the same streams the parent would.
                        lanes.clear();
                        for (std::size_t j = 0; j < bw; ++j)
                            lanes.push_back(Rng::forTrial(
                                mcc.seed, s.trialOffset + i + j));
                        kernel.sampleMaxCommSkewBlock(
                            s.delay, {lanes.data(), bw},
                            {o.skew.samples.data() + i, bw}, arrival);
                    }
                } else {
                    const ResilienceRequest &q =
                        std::get<ResilienceRequest>(batch[w.request]);
                    const mc::ResilienceScenario &sc =
                        compiled[w.request].scenario;
                    for (std::size_t i = w.begin; i < w.end;
                         i += blockW) {
                        const std::size_t bw =
                            std::min(blockW, w.end - i);
                        sc.runTrialBlock(
                            mcc.seed, q.trialOffset + i, bw,
                            {o.resilience.maxCommSkew.samples.data() +
                                 i,
                             bw},
                            {o.resilience.clockedFraction.samples
                                     .data() +
                                 i,
                             bw},
                            {o.faultSamples.data() + i, bw}, nullptr,
                            arrival);
                    }
                }
                unitDone[u] = 1;
            }
        },
        &stopToken);

    // Phase 4 -- reduce through the public fold seam: Complete
    // requests reduce exactly as the mc:: sweeps do (trial order over
    // all samples: bit-identical), Partial requests fold only the
    // trials that ran, still in trial order, and report which ones
    // those were. The distributed coordinator calls the same
    // foldOutcomeInTrialOrder on remotely computed samples.
    std::vector<std::uint8_t> trialDone;
    std::size_t totalDone = 0;
    for (std::size_t r = 0; r < batch.size(); ++r) {
        const mc::McConfig &mcc = configOf(batch[r]);
        RequestOutcome &o = out.outcomes[r];
        trialDone.assign(mcc.trials, 0);
        for (std::size_t u = 0; u < units.size(); ++u) {
            if (!unitDone[u] || units[u].request != r)
                continue;
            for (std::size_t i = units[u].begin; i < units[u].end; ++i)
                trialDone[i] = 1;
        }
        foldOutcomeInTrialOrder(isSkewRequest(batch[r]), trialDone, o);
        totalDone += o.trialsDone;
    }

    out.deadlineExpired = deadlineHit.load(std::memory_order_relaxed);
    out.cancelled = externallyCancelled();
    out.wallMs = std::chrono::duration<double, std::milli>(Clock::now() -
                                                           t0)
                     .count();

    if (cfg.metrics) {
        cfg.metrics->counter("serve.batch.requests").inc(batch.size());
        cfg.metrics->counter("serve.batch.trials_done").inc(totalDone);
        if (out.cancelled)
            cfg.metrics->counter("serve.batch.cancelled").inc();
        if (out.deadlineExpired)
            cfg.metrics->counter("serve.batch.deadline_expired").inc();
        cfg.metrics->gauge("serve.batch.wall_ms").add(out.wallMs);
    }
    return out;
}

} // namespace vsync::serve
