#include "serve/scenario_cache.hh"

#include <bit>
#include <chrono>

#include "clocktree/clock_tree.hh"
#include "common/logging.hh"
#include "layout/layout.hh"
#include "obs/metrics.hh"

namespace vsync::serve
{

namespace
{

/**
 * Two independent FNV-1a streams over the same word sequence. A single
 * 64-bit hash keyed over thousands of doubles would make silent
 * cross-scenario collisions merely unlikely; two streams with distinct
 * offsets/primes make them negligible for any realistic cache lifetime.
 */
struct Hash128
{
    std::uint64_t lo = 0xcbf29ce484222325ull;
    std::uint64_t hi = 0x9e3779b97f4a7c15ull;

    void
    word(std::uint64_t w)
    {
        lo = (lo ^ w) * 0x100000001b3ull;
        hi = (hi ^ w) * 0xff51afd7ed558ccdull;
        hi ^= hi >> 29;
    }

    void
    real(double v)
    {
        // Bit pattern, not value: -0.0 and 0.0 hash apart, which is
        // fine -- equality of content implies equality of bits here
        // because keys come from deterministic builders.
        word(std::bit_cast<std::uint64_t>(v));
    }
};

} // namespace

ScenarioKey
scenarioKeyOf(const layout::Layout &l, const clocktree::ClockTree *t)
{
    Hash128 h;
    // Domain tag first: pairs-only and tree-compiled kernels answer
    // different queries, so they must never share a key.
    h.word(t ? 0x7265656bull : 0x72696170ull);

    h.word(l.size());
    h.word(l.comm().edgeCount());
    for (const graph::Edge &e : l.comm().allEdges()) {
        h.word(static_cast<std::uint64_t>(e.src));
        h.word(static_cast<std::uint64_t>(e.dst));
    }
    for (const geom::Point &p : l.positions()) {
        h.real(p.x);
        h.real(p.y);
    }

    if (t) {
        h.word(t->size());
        for (NodeId v = 0; v < static_cast<NodeId>(t->size()); ++v) {
            h.word(static_cast<std::uint64_t>(
                t->structure().parent(v)));
            h.real(t->wireLength(v));
            h.real(t->position(v).x);
            h.real(t->position(v).y);
        }
        for (CellId c = 0; c < static_cast<CellId>(l.size()); ++c)
            h.word(static_cast<std::uint64_t>(t->nodeOfCell(c)));
    }

    return ScenarioKey{h.lo, h.hi};
}

ScenarioCache::ScenarioCache() : ScenarioCache(Config{}) {}

ScenarioCache::ScenarioCache(Config config) : cfg(std::move(config))
{
    VSYNC_ASSERT(cfg.capacity >= 1, "cache capacity must be >= 1");
}

std::shared_ptr<const core::SkewKernel>
ScenarioCache::get(const layout::Layout &l, const clocktree::ClockTree &t)
{
    return getOrCompile(scenarioKeyOf(l, &t), l, &t);
}

std::shared_ptr<const core::SkewKernel>
ScenarioCache::get(const layout::Layout &l)
{
    return getOrCompile(scenarioKeyOf(l, nullptr), l, nullptr);
}

core::KernelProvider
ScenarioCache::provider()
{
    return [this](const layout::Layout &l, const clocktree::ClockTree *t) {
        return t ? get(l, *t) : get(l);
    };
}

std::size_t
ScenarioCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.size();
}

double
ScenarioCache::compileMillis() const
{
    return compileMs.load(std::memory_order_relaxed);
}

ScenarioCache::KernelPtr
ScenarioCache::getOrCompile(const ScenarioKey &key,
                            const layout::Layout &l,
                            const clocktree::ClockTree *t)
{
    std::shared_future<KernelPtr> future;
    std::promise<KernelPtr> promise;
    bool compiler = false;
    std::uint64_t myGeneration = 0;

    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = entries.find(key);
        if (it != entries.end()) {
            // Hit (possibly on a compile still in flight -- we then
            // block on the future below, outside the lock).
            lru.splice(lru.begin(), lru, it->second.lruPos);
            future = it->second.kernel;
            hitCount.fetch_add(1, std::memory_order_relaxed);
            if (cfg.metrics)
                cfg.metrics->counter(cfg.metricsPrefix + "hits").inc();
        } else {
            // Miss: insert the future as a placeholder before
            // compiling, so concurrent callers of the same scenario
            // wait instead of compiling again.
            future = promise.get_future().share();
            myGeneration = ++nextGeneration;
            lru.push_front(key);
            entries.emplace(key, Entry{future, lru.begin(), myGeneration});
            compiler = true;
            missCount.fetch_add(1, std::memory_order_relaxed);
            if (cfg.metrics)
                cfg.metrics->counter(cfg.metricsPrefix + "misses").inc();
            while (entries.size() > cfg.capacity) {
                // Evict coldest. Waiters on an evicted in-flight entry
                // are unaffected: they hold the shared state.
                entries.erase(lru.back());
                lru.pop_back();
                evictionCount.fetch_add(1, std::memory_order_relaxed);
                if (cfg.metrics)
                    cfg.metrics
                        ->counter(cfg.metricsPrefix + "evictions")
                        .inc();
            }
        }
    }

    if (compiler) {
        try {
            const auto t0 = std::chrono::steady_clock::now();
            KernelPtr kernel =
                t ? std::make_shared<const core::SkewKernel>(l, *t)
                  : std::make_shared<const core::SkewKernel>(l);
            // Pre-tune the blocked lane width here so the one-shot
            // autotune is part of the (counted) compile cost and every
            // cache hit reuses the choice along with the flat arrays.
            kernel->blockWidth();
            const std::chrono::duration<double, std::milli> dt =
                std::chrono::steady_clock::now() - t0;
            noteCompiled(dt.count());
            promise.set_value(std::move(kernel));
        } catch (...) {
            // Poisoned entries must not persist: drop ours -- and only
            // ours; after an eviction the slot may hold a fresh compile
            // of the same scenario -- so the next get() retries.
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mutex);
            auto it = entries.find(key);
            if (it != entries.end() &&
                it->second.generation == myGeneration) {
                lru.erase(it->second.lruPos);
                entries.erase(it);
            }
        }
    }

    return future.get();
}

void
ScenarioCache::noteCompiled(double ms)
{
    double cur = compileMs.load(std::memory_order_relaxed);
    while (!compileMs.compare_exchange_weak(cur, cur + ms,
                                            std::memory_order_relaxed))
        ;
    if (cfg.metrics)
        cfg.metrics->gauge(cfg.metricsPrefix + "compile_ms").add(ms);
}

} // namespace vsync::serve
