/**
 * @file
 * Batched sweep serving: shard, cache, cancel.
 *
 * A SweepService is the front door for running many Monte-Carlo sweep
 * requests as one unit of work. It owns one ThreadPool and one
 * ScenarioCache; a batch of requests (skew sweeps, resilience points --
 * tree or TRIX grid) is split into fixed-size work units of trials and
 * the units of every request are sharded across the pool together, so
 * a batch of small sweeps saturates the machine the way one big sweep
 * does. Kernels are fetched through the cache: repeated scenarios
 * across requests or batches compile once.
 *
 * Determinism: a request's trials are computed exactly as the
 * corresponding mc:: entry point computes them -- same Rng::forTrial
 * streams, same per-trial code, reduction in trial order -- so a
 * Complete outcome is bit-identical to mc::skewSweep /
 * mc::resilienceAtRate at any pool width.
 *
 * Cancellation and deadlines are cooperative with work-unit
 * granularity. A cancelled or past-deadline batch stops handing out
 * units; whatever finished is returned with status Partial, the done
 * trial ranges identified -- partial results are flagged, never
 * silently passed off as complete.
 */

#ifndef VSYNC_SERVE_SWEEP_SERVICE_HH
#define VSYNC_SERVE_SWEEP_SERVICE_HH

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "common/parallel.hh"
#include "common/types.hh"
#include "core/wire_delay.hh"
#include "mc/montecarlo.hh"
#include "mc/resilience.hh"
#include "serve/scenario_cache.hh"

namespace vsync::obs
{
class PoolMetricsObserver;
} // namespace vsync::obs

namespace vsync::serve
{

/**
 * One skew sweep: mc::skewSweep(*layout, *tree, delay, cfg). The
 * layout and tree are borrowed and must outlive the run() call.
 * cfg.threads and cfg.metrics are ignored -- the service's pool and
 * registry apply; cfg.seed/trials/grain mean what they mean in mc::.
 */
struct SkewRequest
{
    const layout::Layout *layout = nullptr;
    const clocktree::ClockTree *tree = nullptr;
    core::WireDelay delay{0.05, 0.005};
    mc::McConfig cfg;
    /**
     * Global index of the request's first trial: local trial i draws
     * from Rng::forTrial(cfg.seed, trialOffset + i). 0 for ordinary
     * requests; a distributed shard covering trials [b, e) of a
     * parent request runs with trialOffset = b and cfg.trials = e-b,
     * which is what makes the shard's samples bit-identical to the
     * parent's slice no matter which worker computes it.
     */
    std::size_t trialOffset = 0;
};

/**
 * One resilience point: mc::resilienceAtRate(*layout, rows, cols,
 * kind, faultRate, rc, cfg). Borrowing and cfg caveats as above.
 */
struct ResilienceRequest
{
    const layout::Layout *layout = nullptr;
    int rows = 0;
    int cols = 0;
    mc::DistributionKind kind = mc::DistributionKind::HTree;
    double faultRate = 0.0;
    mc::ResilienceConfig rc;
    mc::McConfig cfg;
    /** First-trial global index; see SkewRequest::trialOffset. */
    std::size_t trialOffset = 0;
};

/** A batch element. */
using SweepRequest = std::variant<SkewRequest, ResilienceRequest>;

/** Whether a request's trials all ran. */
enum class RequestStatus
{
    /** Every trial ran; results bit-identical to the mc:: sweep. */
    Complete,
    /**
     * Cancelled or past deadline before every trial ran. Statistics
     * cover exactly the trialsDone completed trials (folded in trial
     * order); samples of missing trials are zero-filled and
     * trialDone marks which indices are real.
     */
    Partial,
};

/** Per-request result. */
struct RequestOutcome
{
    RequestStatus status = RequestStatus::Complete;
    /** Trials that actually ran. */
    std::size_t trialsDone = 0;
    /** Trials the request asked for. */
    std::size_t trialsRequested = 0;
    /** trialDone[i]: trial i ran (empty when Complete -- all did). */
    std::vector<std::uint8_t> trialDone;
    /** Skew requests: the sweep result. */
    mc::McResult skew;
    /** Resilience requests: the degradation point. */
    mc::ResiliencePoint resilience;
    /**
     * Resilience requests: faults injected per trial (indexed like
     * the sample vectors). Kept alongside the reduced meanFaults so a
     * distributed fold can recombine shards exactly -- integer counts
     * sum exactly in doubles, per-shard *means* do not.
     */
    std::vector<double> faultSamples;
};

/** Per-batch execution limits. */
struct BatchOptions
{
    /**
     * Wall-clock budget for the batch; infinity = none. A zero or
     * negative budget is already expired: the batch fails fast --
     * no kernel compiles, no first chunk runs -- and every request
     * comes back as an empty Partial (all-false trial mask) with
     * deadlineExpired set. The net:: front end propagates wire
     * deadlines here, so "expired on arrival" must cost nothing.
     */
    double deadlineSeconds = infinity;
    /**
     * Optional external cancel signal (borrowed), e.g. shared by a
     * caller that multiplexes several services. The service also has
     * its own cancel() for the common case.
     */
    const CancelToken *cancel = nullptr;
};

/** What a batch run produced. */
struct BatchOutcome
{
    /** One outcome per request, in request order. */
    std::vector<RequestOutcome> outcomes;
    /** The batch was cancelled (externally or via cancel()). */
    bool cancelled = false;
    /** The deadline expired mid-batch. */
    bool deadlineExpired = false;
    /** Wall-clock duration of the run() call, milliseconds. */
    double wallMs = 0.0;
};

/** Service-wide knobs. */
struct ServiceConfig
{
    /** Pool width (caller included); 0 = defaultThreadCount(). */
    unsigned threads = 0;
    /** Scenario cache capacity (compiled kernels). */
    std::size_t cacheCapacity = 32;
    /**
     * Optional registry: cache counters under "serve.cache.", batch
     * telemetry under "serve.batch." (requests / trials_done /
     * cancelled / deadline_expired counters, wall_ms gauge), and pool
     * utilization under "serve.pool." (jobs/chunks counters,
     * active_workers, active_workers_hwm and queue_depth_hwm gauges
     * via obs::PoolMetricsObserver) -- so compute saturation is
     * visible next to the front end's "net.*" latency metrics.
     */
    obs::MetricsRegistry *metrics = nullptr;
};

/**
 * A synchronous batched sweep server. One batch runs at a time
 * (run() serialises internally); cancel() is safe from any thread
 * while a batch is in flight.
 */
class SweepService
{
  public:
    explicit SweepService(ServiceConfig cfg = {});
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /** Run @p batch to completion, cancellation or deadline. */
    BatchOutcome run(const std::vector<SweepRequest> &batch,
                     const BatchOptions &opts = {});

    /** Cancel the in-flight batch (no-op when idle). */
    void cancel();

    /** The kernel cache (for stats or pre-warming). */
    ScenarioCache &cache() { return kernels; }

    /** Compute pool width (the net:: info/ping reply reports it). */
    unsigned threads() const { return pool.threadCount(); }

  private:
    ServiceConfig cfg;
    ScenarioCache kernels;
    /** Pool utilization metrics; declared before the pool so the pool
     *  (whose jobs call the observer) is destroyed first. */
    std::unique_ptr<obs::PoolMetricsObserver> poolMetrics;
    ThreadPool pool;
    /** Set by cancel(); distinguishable from a deadline stop. */
    CancelToken userCancel;
    /** Internal aggregate stop signal handed to the pool. */
    CancelToken stopToken;
    std::mutex runMutex;
};

} // namespace vsync::serve

#endif // VSYNC_SERVE_SWEEP_SERVICE_HH
