/**
 * @file
 * The sharding and folding seams of the serving layer, exposed.
 *
 * SweepService splits every request's trials into grain-sized
 * WorkUnits and, after the fan-out, folds the per-trial samples back
 * into statistics in trial order. Both halves are pure functions of
 * the batch, so they live here as free functions rather than inside
 * the service: the distributed coordinator (src/dist/) shards the
 * *same* units across remote workers and folds the returned samples
 * with the *same* fold, which is what makes "a distributed run is
 * bit-identical to a local run" true by construction instead of by
 * test alone. Any component that honours these two seams -- identical
 * unit boundaries, identical trial-order fold -- produces identical
 * bytes for any shard assignment, arrival order or failure pattern.
 */

#ifndef VSYNC_SERVE_WORK_UNIT_HH
#define VSYNC_SERVE_WORK_UNIT_HH

#include <cstdint>
#include <vector>

#include "serve/sweep_service.hh"

namespace vsync::serve
{

/**
 * One schedulable slice of one request's trials: trials
 * [begin, end) of batch[request]. Trial i of the slice draws from
 * Rng::forTrial(seed, trialOffset + i) exactly as the local fan-out
 * does, so a unit means the same thing on any machine.
 */
struct WorkUnit
{
    std::size_t request = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
};

/**
 * Append the grain-sized units covering [0, trials) of request
 * @p request: [0, grain), [grain, 2*grain), ... with a short tail.
 * @pre grain >= 1.
 */
void appendWorkUnits(std::size_t request, std::size_t trials,
                     std::size_t grain, std::vector<WorkUnit> &out);

/**
 * Decompose @p batch into units, request-major then trial-major --
 * the deterministic order SweepService schedules and the distributed
 * coordinator dispatches. Configs are validated as a side effect.
 */
std::vector<WorkUnit>
decomposeWorkUnits(const std::vector<SweepRequest> &batch);

/**
 * Fold @p o's already-filled per-trial samples into its statistics,
 * exactly as SweepService's reduction phase does:
 *
 *  - every trial done (the mask is all ones): status Complete, the
 *    samples reduce in trial order (mc::reduceInTrialOrder) and, for
 *    resilience requests, meanFaults averages o.faultSamples over all
 *    trials;
 *  - otherwise: status Partial, only trials with trialDone[i] != 0
 *    fold (still in trial order), the mask is recorded in o.trialDone
 *    and meanFaults averages over the done trials.
 *
 * @p trialDone must have one entry per requested trial and the
 * samples of done trials must already sit in their slots (skew:
 * o.skew.samples; resilience: o.resilience.*.samples plus
 * o.faultSamples). Statistics of any prior fold are discarded.
 */
void foldOutcomeInTrialOrder(bool is_skew,
                             const std::vector<std::uint8_t> &trialDone,
                             RequestOutcome &o);

} // namespace vsync::serve

#endif // VSYNC_SERVE_WORK_UNIT_HH
