#include "serve/work_unit.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsync::serve
{

void
appendWorkUnits(std::size_t request, std::size_t trials,
                std::size_t grain, std::vector<WorkUnit> &out)
{
    VSYNC_ASSERT(grain >= 1, "work-unit grain must be >= 1");
    for (std::size_t b = 0; b < trials; b += grain)
        out.push_back(WorkUnit{request, b, std::min(b + grain, trials)});
}

std::vector<WorkUnit>
decomposeWorkUnits(const std::vector<SweepRequest> &batch)
{
    std::vector<WorkUnit> units;
    for (std::size_t r = 0; r < batch.size(); ++r) {
        const mc::McConfig &cfg =
            std::holds_alternative<SkewRequest>(batch[r])
                ? std::get<SkewRequest>(batch[r]).cfg
                : std::get<ResilienceRequest>(batch[r]).cfg;
        cfg.validate();
        appendWorkUnits(r, cfg.trials, cfg.grain, units);
    }
    return units;
}

void
foldOutcomeInTrialOrder(bool is_skew,
                        const std::vector<std::uint8_t> &trialDone,
                        RequestOutcome &o)
{
    const std::size_t trials = trialDone.size();
    o.trialsDone = 0;
    for (const std::uint8_t d : trialDone)
        o.trialsDone += d ? 1 : 0;

    o.skew.stat.reset();
    o.resilience.maxCommSkew.stat.reset();
    o.resilience.clockedFraction.stat.reset();
    o.trialDone.clear();

    if (o.trialsDone == trials) {
        o.status = RequestStatus::Complete;
        if (is_skew) {
            mc::reduceInTrialOrder(o.skew);
        } else {
            mc::reduceInTrialOrder(o.resilience.maxCommSkew);
            mc::reduceInTrialOrder(o.resilience.clockedFraction);
            double total = 0.0;
            for (const double f : o.faultSamples)
                total += f;
            o.resilience.meanFaults =
                trials ? total / static_cast<double>(trials) : 0.0;
        }
        return;
    }

    o.status = RequestStatus::Partial;
    o.trialDone = trialDone;
    double total = 0.0;
    for (std::size_t i = 0; i < trials; ++i) {
        if (!trialDone[i])
            continue;
        if (is_skew) {
            o.skew.stat.add(o.skew.samples[i]);
        } else {
            o.resilience.maxCommSkew.stat.add(
                o.resilience.maxCommSkew.samples[i]);
            o.resilience.clockedFraction.stat.add(
                o.resilience.clockedFraction.samples[i]);
            total += o.faultSamples[i];
        }
    }
    if (!is_skew)
        o.resilience.meanFaults =
            o.trialsDone ? total / static_cast<double>(o.trialsDone)
                         : 0.0;
}

} // namespace vsync::serve
