/**
 * @file
 * Systolic FIR filter on a linear array (the paper's canonical 1-D
 * workload; Kung, "Why systolic architectures?" [4]).
 *
 * Design: k cells, one per tap. The x stream moves right through two
 * delays per cell (one edge register, one internal hold register); the
 * accumulating y stream moves right through one delay per cell:
 *
 *   cell j:  y_out = y_in + w_j * x_in;  x_out = hold;  hold = x_in.
 *
 * With x_t injected at cell 0's x input on cycle t, the last cell's
 * y output on cycle t equals y_{t-k+1} = sum_j w_j x_{t-k+1-j}.
 */

#ifndef VSYNC_SYSTOLIC_FIR_HH
#define VSYNC_SYSTOLIC_FIR_HH

#include <vector>

#include "systolic/array.hh"

namespace vsync::systolic
{

/** One FIR tap cell. */
class FirCell : public Cell
{
  public:
    explicit FirCell(Word weight) : weight(weight) {}

    int inPorts() const override { return 2; }  // 0: x, 1: y
    int outPorts() const override { return 2; } // 0: x, 1: y

    std::vector<Word> step(const std::vector<Word> &inputs) override;

    std::vector<Word> peek() const override { return {weight, hold}; }

    std::unique_ptr<Cell>
    clone() const override
    {
        return std::make_unique<FirCell>(*this);
    }

  private:
    Word weight;
    Word hold = 0.0;
};

/** Build a FIR array for the given tap weights. */
SystolicArray buildFir(const std::vector<Word> &weights);

/**
 * External input function feeding @p xs into cell 0's x port starting
 * at cycle 0 (zeros outside the stream); all other external inputs 0.
 */
ExternalInputFn firInputs(std::vector<Word> xs);

/**
 * Reference result: the last cell's y output at cycle t for a k-tap
 * filter is y_{t-k+1}; this computes the full expected series for
 * @p cycles cycles directly.
 */
std::vector<Word> firExpectedOutput(const std::vector<Word> &weights,
                                    const std::vector<Word> &xs,
                                    int cycles);

} // namespace vsync::systolic

#endif // VSYNC_SYSTOLIC_FIR_HH
