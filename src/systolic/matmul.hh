/**
 * @file
 * Systolic matrix multiplication C = A B on an n x n mesh.
 *
 * Cell (i, j) accumulates c_{ij}. A's rows stream in from the west
 * boundary (a_{i,k} enters row i on cycle i + k), B's columns from the
 * north boundary (b_{k,j} enters column j on cycle j + k); values pass
 * east/south one hop per cycle, so a_{i,k} and b_{k,j} meet at cell
 * (i, j) on cycle i + j + k and all n products accumulate by cycle
 * 3n - 3. This is the classic 2-D workload whose clocked implementation
 * Section V-B proves cannot keep constant-period global clocking under
 * the summation model.
 */

#ifndef VSYNC_SYSTOLIC_MATMUL_HH
#define VSYNC_SYSTOLIC_MATMUL_HH

#include <vector>

#include "systolic/array.hh"

namespace vsync::systolic
{

/** One mesh matmul cell. */
class MatMulCell : public Cell
{
  public:
    int inPorts() const override { return 2; }  // 0: a west, 1: b north
    int outPorts() const override { return 2; } // 0: a east, 1: b south

    std::vector<Word>
    step(const std::vector<Word> &inputs) override
    {
        c += inputs[0] * inputs[1];
        return {inputs[0], inputs[1]};
    }

    std::vector<Word> peek() const override { return {c}; }

    std::unique_ptr<Cell>
    clone() const override
    {
        return std::make_unique<MatMulCell>(*this);
    }

  private:
    Word c = 0.0;
};

/** Build an n x n matmul mesh (row-major cell ids). */
SystolicArray buildMatMul(int n);

/**
 * External inputs streaming @p a (west) and @p b (north) with the
 * diagonal stagger. Both must be n x n.
 */
ExternalInputFn matMulInputs(std::vector<std::vector<Word>> a,
                             std::vector<std::vector<Word>> b);

/** Cycles needed for every product to accumulate: 3n - 2. */
int matMulCycles(int n);

/** Plain reference product. */
std::vector<std::vector<Word>> matMulReference(
    const std::vector<std::vector<Word>> &a,
    const std::vector<std::vector<Word>> &b);

} // namespace vsync::systolic

#endif // VSYNC_SYSTOLIC_MATMUL_HH
