/**
 * @file
 * Lock-step execution of systolic arrays (the "ideally synchronized"
 * semantics of A1) and its execution trace.
 *
 * The ideal executor is the golden reference: the paper's clocked,
 * hybrid and self-timed schemes are all means of making real hardware
 * behave like this executor. The clocked executor (clocked_executor.hh)
 * reproduces it exactly when timing constraints hold and diverges when
 * skew violates them.
 */

#ifndef VSYNC_SYSTOLIC_EXECUTOR_HH
#define VSYNC_SYSTOLIC_EXECUTOR_HH

#include <vector>

#include "systolic/array.hh"

namespace vsync::systolic
{

/** Recorded run of a systolic array. */
struct Trace
{
    /** External output ports in (cell, port) order. */
    std::vector<std::pair<CellId, int>> ports;
    /** series[i][t] = word on ports[i] at cycle t. */
    std::vector<std::vector<Word>> series;
    /** peek() of every cell after the last cycle. */
    std::vector<std::vector<Word>> finalStates;
    /** Cycles executed. */
    int cycles = 0;

    /** Time series of external output (cell, port). @pre it exists. */
    const std::vector<Word> &of(CellId cell, int port) const;

    /** True when every series and final state matches @p other within
     *  @p tol. */
    bool matches(const Trace &other, double tol = 1e-9) const;
};

/**
 * Run @p array for @p cycles in perfect lock step.
 *
 * @param ext external input provider (null reads as zero).
 */
Trace runIdeal(const SystolicArray &array, int cycles,
               const ExternalInputFn &ext);

} // namespace vsync::systolic

#endif // VSYNC_SYSTOLIC_EXECUTOR_HH
