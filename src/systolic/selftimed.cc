#include "systolic/selftimed.hh"

#include <algorithm>
#include <cmath>

#include "common/fit.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace vsync::systolic
{

SelfTimedResult
runSelfTimed(const SystolicArray &array, int firings,
             const ServiceFn &service, bool bounded)
{
    VSYNC_ASSERT(firings >= 1, "need at least one firing");
    VSYNC_ASSERT(static_cast<bool>(service), "null service function");
    array.validate();

    const std::size_t n = array.size();
    std::vector<std::vector<CellId>> preds(n), succs(n);
    for (const Connection &c : array.connections()) {
        preds[c.dst].push_back(c.src);
        succs[c.src].push_back(c.dst);
    }

    // t_prev[v] = completion time of firing k-1; t_prev2 of k-2.
    std::vector<Time> t_prev(n, 0.0), t_prev2(n, 0.0), t_cur(n, 0.0);
    std::vector<Time> last_completion; // of the max cell per firing
    last_completion.reserve(static_cast<std::size_t>(firings));

    for (int k = 0; k < firings; ++k) {
        Time round_max = 0.0;
        for (std::size_t v = 0; v < n; ++v) {
            Time ready = 0.0;
            if (k > 0) {
                // Inputs: the k-th token from each predecessor is its
                // (k-1)-th firing's output.
                for (CellId u : preds[v])
                    ready = std::max(ready, t_prev[u]);
                // A cell cannot start its next firing before finishing
                // the previous one.
                ready = std::max(ready, t_prev[v]);
                if (bounded && k > 1) {
                    // Unit-capacity output links: the consumer must
                    // have absorbed the previous token first.
                    for (CellId w : succs[v])
                        ready = std::max(ready, t_prev2[w]);
                }
            }
            t_cur[v] =
                ready + service(static_cast<CellId>(v), k);
            round_max = std::max(round_max, t_cur[v]);
        }
        last_completion.push_back(round_max);
        t_prev2 = t_prev;
        t_prev = t_cur;
    }

    SelfTimedResult result;
    result.firings = firings;
    result.lastFireTime = t_prev;
    result.completionTime = last_completion.back();

    // Steady-state cycle: slope of round completion times over the
    // second half of the run.
    if (firings >= 4) {
        std::vector<double> xs, ys;
        for (int k = firings / 2; k < firings; ++k) {
            xs.push_back(static_cast<double>(k));
            ys.push_back(last_completion[static_cast<std::size_t>(k)]);
        }
        result.steadyCycle = fitLinear(xs, ys).slope;
    } else {
        result.steadyCycle =
            result.completionTime / static_cast<double>(firings);
    }
    return result;
}

double
worstCasePathProbability(double p, int k)
{
    VSYNC_ASSERT(p >= 0.0 && p <= 1.0, "probability %g out of [0,1]", p);
    VSYNC_ASSERT(k >= 0, "negative path length %d", k);
    return 1.0 - std::pow(p, k);
}

std::vector<Time>
bernoulliServiceTimes(std::size_t cells, double p_fast, Time fast,
                      Time slow, Rng &rng)
{
    VSYNC_ASSERT(fast > 0.0 && slow > 0.0,
                 "service times must be positive");
    std::vector<Time> speeds(cells);
    for (Time &s : speeds)
        s = rng.bernoulli(p_fast) ? fast : slow;
    return speeds;
}

ServiceFn
serviceFromSpeeds(std::vector<Time> speeds)
{
    return [speeds = std::move(speeds)](CellId c, int) {
        return speeds.at(static_cast<std::size_t>(c));
    };
}

} // namespace vsync::systolic
