#include "systolic/jacobi.hh"

#include "common/logging.hh"

namespace vsync::systolic
{

SystolicArray
buildJacobi(int rows, int cols, Word initial)
{
    VSYNC_ASSERT(rows >= 1 && cols >= 1, "bad Jacobi mesh %dx%d", rows,
                 cols);
    SystolicArray a(csprintf("jacobi-%dx%d", rows, cols));
    for (int i = 0; i < rows * cols; ++i)
        a.addCell(std::make_unique<JacobiCell>(initial));
    auto id = [cols](int r, int c) {
        return static_cast<CellId>(r * cols + c);
    };
    // Ports: 0 = N, 1 = E, 2 = S, 3 = W.
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols) {
                a.connect(id(r, c), 1, id(r, c + 1), 3); // east
                a.connect(id(r, c + 1), 3, id(r, c), 1); // west
            }
            if (r + 1 < rows) {
                a.connect(id(r, c), 2, id(r + 1, c), 0); // south
                a.connect(id(r + 1, c), 0, id(r, c), 2); // north
            }
        }
    }
    return a;
}

ExternalInputFn
jacobiInputs(Word boundary)
{
    return [boundary](CellId, int, int) { return boundary; };
}

std::vector<std::vector<Word>>
jacobiReference(int rows, int cols, Word initial, Word boundary,
                int cycles)
{
    // Mirror the executor: `sent` holds the value sitting in the edge
    // registers (all four outputs of a cell are identical), starting
    // at the registers' initial zero.
    std::vector<std::vector<Word>> s(
        rows, std::vector<Word>(cols, initial));
    std::vector<std::vector<Word>> sent(
        rows, std::vector<Word>(cols, 0.0));
    for (int t = 0; t < cycles; ++t) {
        std::vector<std::vector<Word>> next = s;
        for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c) {
                const Word north =
                    r > 0 ? sent[r - 1][c] : boundary;
                const Word south =
                    r + 1 < rows ? sent[r + 1][c] : boundary;
                const Word west = c > 0 ? sent[r][c - 1] : boundary;
                const Word east =
                    c + 1 < cols ? sent[r][c + 1] : boundary;
                next[r][c] = 0.25 * (north + east + south + west);
            }
        }
        // Registers pick up the pre-update values.
        sent = s;
        s = next;
    }
    return s;
}

} // namespace vsync::systolic
