#include "systolic/fir.hh"

#include "common/logging.hh"

namespace vsync::systolic
{

std::vector<Word>
FirCell::step(const std::vector<Word> &inputs)
{
    const Word x_in = inputs[0];
    const Word y_in = inputs[1];
    const Word x_out = hold;
    hold = x_in;
    return {x_out, y_in + weight * x_in};
}

SystolicArray
buildFir(const std::vector<Word> &weights)
{
    VSYNC_ASSERT(!weights.empty(), "FIR needs at least one tap");
    SystolicArray a(csprintf("fir-%zu", weights.size()));
    for (Word w : weights)
        a.addCell(std::make_unique<FirCell>(w));
    for (std::size_t j = 0; j + 1 < weights.size(); ++j) {
        const CellId src = static_cast<CellId>(j);
        const CellId dst = static_cast<CellId>(j + 1);
        a.connect(src, 0, dst, 0); // x chain
        a.connect(src, 1, dst, 1); // y chain
    }
    return a;
}

ExternalInputFn
firInputs(std::vector<Word> xs)
{
    return [xs = std::move(xs)](CellId cell, int port, int cycle) -> Word {
        if (cell == 0 && port == 0 && cycle >= 0 &&
            static_cast<std::size_t>(cycle) < xs.size())
            return xs[static_cast<std::size_t>(cycle)];
        return 0.0;
    };
}

std::vector<Word>
firExpectedOutput(const std::vector<Word> &weights,
                  const std::vector<Word> &xs, int cycles)
{
    const int k = static_cast<int>(weights.size());
    std::vector<Word> expected(static_cast<std::size_t>(cycles), 0.0);
    auto x_at = [&xs](int idx) -> Word {
        return idx >= 0 && static_cast<std::size_t>(idx) < xs.size()
                   ? xs[static_cast<std::size_t>(idx)]
                   : 0.0;
    };
    for (int t = 0; t < cycles; ++t) {
        const int out_idx = t - (k - 1);
        Word y = 0.0;
        for (int j = 0; j < k; ++j)
            y += weights[static_cast<std::size_t>(j)] * x_at(out_idx - j);
        expected[static_cast<std::size_t>(t)] = y;
    }
    return expected;
}

} // namespace vsync::systolic
