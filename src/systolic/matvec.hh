/**
 * @file
 * Systolic matrix-vector product y = A x on a linear array.
 *
 * Cell j is preloaded with x_j. Matrix entries stream in from the host
 * along a diagonal wavefront: a_{i,j} enters cell j on cycle i + j.
 * Partial sums move right, gaining a_{i,j} x_j at each cell, and
 * y_i emerges from the last cell on cycle i + n - 1.
 */

#ifndef VSYNC_SYSTOLIC_MATVEC_HH
#define VSYNC_SYSTOLIC_MATVEC_HH

#include <vector>

#include "systolic/array.hh"

namespace vsync::systolic
{

/** One matrix-vector cell holding x_j. */
class MatVecCell : public Cell
{
  public:
    explicit MatVecCell(Word x) : x(x) {}

    int inPorts() const override { return 2; }  // 0: a (host), 1: s
    int outPorts() const override { return 1; } // 0: s

    std::vector<Word>
    step(const std::vector<Word> &inputs) override
    {
        return {inputs[1] + inputs[0] * x};
    }

    std::vector<Word> peek() const override { return {x}; }

    std::unique_ptr<Cell>
    clone() const override
    {
        return std::make_unique<MatVecCell>(*this);
    }

  private:
    Word x;
};

/** Build a matvec array preloaded with @p x. */
SystolicArray buildMatVec(const std::vector<Word> &x);

/**
 * External input function streaming the m x n matrix @p a (row-major,
 * m rows) into the cells' a ports along the diagonal wavefront.
 */
ExternalInputFn matVecInputs(std::vector<std::vector<Word>> a);

/**
 * Expected series on the last cell's s output for @p cycles cycles:
 * y_i appears at cycle i + n - 1.
 */
std::vector<Word> matVecExpectedOutput(
    const std::vector<std::vector<Word>> &a, const std::vector<Word> &x,
    int cycles);

} // namespace vsync::systolic

#endif // VSYNC_SYSTOLIC_MATVEC_HH
