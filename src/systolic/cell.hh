/**
 * @file
 * The systolic cell abstraction (the paper's A1 cells).
 *
 * In an ideally synchronized array every cell, on every cycle, consumes
 * one word from each input port, performs a bounded computation (delay
 * delta, A5) and emits one word on each output port. Ports connect to
 * neighbouring cells through unit-delay links (the communication edges
 * of COMM) or to the host (external streams).
 */

#ifndef VSYNC_SYSTOLIC_CELL_HH
#define VSYNC_SYSTOLIC_CELL_HH

#include <memory>
#include <vector>

namespace vsync::systolic
{

/** The data word systolic cells exchange. */
using Word = double;

/** Abstract lock-step systolic cell. */
class Cell
{
  public:
    virtual ~Cell() = default;

    /** Number of input ports. */
    virtual int inPorts() const = 0;

    /** Number of output ports. */
    virtual int outPorts() const = 0;

    /**
     * Advance one cycle.
     *
     * @param inputs one word per input port (size == inPorts()).
     * @return one word per output port (size == outPorts()).
     */
    virtual std::vector<Word> step(const std::vector<Word> &inputs) = 0;

    /** Observable internal state (for result readout), may be empty. */
    virtual std::vector<Word> peek() const { return {}; }

    /** Deep copy (executors clone the array's prototype cells). */
    virtual std::unique_ptr<Cell> clone() const = 0;
};

} // namespace vsync::systolic

#endif // VSYNC_SYSTOLIC_CELL_HH
