/**
 * @file
 * A systolic array: cells plus port-to-port unit-delay connections.
 */

#ifndef VSYNC_SYSTOLIC_ARRAY_HH
#define VSYNC_SYSTOLIC_ARRAY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "graph/graph.hh"
#include "systolic/cell.hh"

namespace vsync::systolic
{

/** A directed, registered link between two cell ports. */
struct Connection
{
    CellId src = invalidId;
    int srcPort = 0;
    CellId dst = invalidId;
    int dstPort = 0;
};

/**
 * External input provider: value entering (cell, port) at a cycle.
 * Ports not fed by a Connection and not covered by the provider read
 * zero.
 */
using ExternalInputFn = std::function<Word(CellId, int port, int cycle)>;

/** A constructed systolic array. */
class SystolicArray
{
  public:
    SystolicArray() = default;

    explicit SystolicArray(std::string name) : arrayName(std::move(name))
    {
    }

    /** Add a cell; returns its id. */
    CellId addCell(std::unique_ptr<Cell> cell);

    /**
     * Connect (src, src_port) -> (dst, dst_port) through a unit-delay
     * register. Each port may appear in at most one connection.
     */
    void connect(CellId src, int src_port, CellId dst, int dst_port);

    /** Number of cells. */
    std::size_t size() const { return cells.size(); }

    /** Prototype cell @p id. */
    const Cell &cell(CellId id) const { return *cells.at(id); }

    /** All connections. */
    const std::vector<Connection> &connections() const { return conns; }

    /** True when (cell, port) is fed by a connection. */
    bool inputConnected(CellId cell, int port) const;

    /** True when (cell, port) drives a connection. */
    bool outputConnected(CellId cell, int port) const;

    /** Unconnected output ports, in (cell, port) order: the array's
     *  external outputs. */
    std::vector<std::pair<CellId, int>> externalOutputs() const;

    /** Clone all prototype cells (executors call this per run). */
    std::vector<std::unique_ptr<Cell>> cloneCells() const;

    /**
     * The communication graph induced by the connections (one directed
     * edge per connection) -- this is COMM for skew analysis.
     */
    graph::Graph commGraph() const;

    /** Array name. */
    const std::string &name() const { return arrayName; }

    /**
     * Validate port indices and single-driver/single-reader rules;
     * fatal()s on violation when @p die.
     */
    bool validate(bool die = true) const;

  private:
    std::string arrayName;
    std::vector<std::unique_ptr<Cell>> cells;
    std::vector<Connection> conns;
};

} // namespace vsync::systolic

#endif // VSYNC_SYSTOLIC_ARRAY_HH
