/**
 * @file
 * Systolic triangular solve: L y = b for lower-triangular L on a
 * linear array (the Kung-Leiserson linear-system workload).
 *
 * Cell j owns unknown y_j. Matrix entries stream in along the matvec
 * wavefront (l_{i,j} reaches cell j at cycle i + j) and partial sums
 * flow right. When row j's wavefront reaches cell j (cycle 2j) the
 * cell performs the boundary operation y_j = (b_j - s_in) / l_{jj},
 * stores y_j, and thereafter multiplies incoming l_{i,j} by it. After
 * 2n - 1 cycles every cell holds its unknown (read via peek()).
 */

#ifndef VSYNC_SYSTOLIC_TRISOLVE_HH
#define VSYNC_SYSTOLIC_TRISOLVE_HH

#include <vector>

#include "systolic/array.hh"

namespace vsync::systolic
{

/** One triangular-solve cell. */
class TriSolveCell : public Cell
{
  public:
    explicit TriSolveCell(int index) : index(index) {}

    int inPorts() const override { return 3; }  // 0: l, 1: s, 2: b
    int outPorts() const override { return 1; } // 0: s

    std::vector<Word> step(const std::vector<Word> &inputs) override;

    std::vector<Word> peek() const override { return {y}; }

    std::unique_ptr<Cell>
    clone() const override
    {
        return std::make_unique<TriSolveCell>(*this);
    }

  private:
    int index;
    int cycle = 0;
    Word y = 0.0;
    bool solved = false;
};

/** Build an n-cell solver. */
SystolicArray buildTriSolve(int n);

/**
 * Stream the lower-triangular matrix @p l (n x n, row-major) and the
 * right-hand side @p b: l_{i,j} into cell j's l port at cycle i + j,
 * b_i into cell i's b port at cycle 2i.
 */
ExternalInputFn triSolveInputs(std::vector<std::vector<Word>> l,
                               std::vector<Word> b);

/** Cycles to completion: the last boundary operation is at 2n - 2. */
int triSolveCycles(int n);

/** Reference forward substitution. @pre l has a non-zero diagonal. */
std::vector<Word> triSolveReference(
    const std::vector<std::vector<Word>> &l, const std::vector<Word> &b);

} // namespace vsync::systolic

#endif // VSYNC_SYSTOLIC_TRISOLVE_HH
