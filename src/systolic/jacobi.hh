/**
 * @file
 * Jacobi relaxation on a 2-D mesh: the iterative-solver face of the
 * n x n arrays whose clocking Section V-B analyses.
 *
 * Every cell repeatedly replaces its value with the average of its
 * four neighbours (boundary ports read a fixed boundary value from the
 * host). Because array links carry one register of delay, the
 * realised iteration is the two-step synchronous recurrence
 *
 *   s_{t+1}(c) = 1/4 * ( sum of neighbours' s_{t-1} + boundary terms )
 *
 * which jacobiReference() mirrors exactly, so runs can be verified
 * bit-for-bit at any cycle count.
 */

#ifndef VSYNC_SYSTOLIC_JACOBI_HH
#define VSYNC_SYSTOLIC_JACOBI_HH

#include <vector>

#include "systolic/array.hh"

namespace vsync::systolic
{

/** One Jacobi relaxation cell. */
class JacobiCell : public Cell
{
  public:
    explicit JacobiCell(Word initial) : value(initial) {}

    int inPorts() const override { return 4; }  // N, E, S, W
    int outPorts() const override { return 4; } // N, E, S, W

    std::vector<Word>
    step(const std::vector<Word> &inputs) override
    {
        const Word out = value;
        value = 0.25 * (inputs[0] + inputs[1] + inputs[2] + inputs[3]);
        return {out, out, out, out};
    }

    std::vector<Word> peek() const override { return {value}; }

    std::unique_ptr<Cell>
    clone() const override
    {
        return std::make_unique<JacobiCell>(*this);
    }

  private:
    Word value;
};

/**
 * Build a rows x cols Jacobi mesh (row-major cell ids) with all cells
 * initialised to @p initial.
 */
SystolicArray buildJacobi(int rows, int cols, Word initial = 0.0);

/**
 * External inputs: boundary ports read @p boundary every cycle (the
 * Dirichlet condition held by the host).
 */
ExternalInputFn jacobiInputs(Word boundary);

/**
 * Reference iterate: cell states after @p cycles executor steps,
 * mirroring the registered-link recurrence exactly.
 */
std::vector<std::vector<Word>> jacobiReference(int rows, int cols,
                                               Word initial,
                                               Word boundary,
                                               int cycles);

} // namespace vsync::systolic

#endif // VSYNC_SYSTOLIC_JACOBI_HH
