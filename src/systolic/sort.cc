#include "systolic/sort.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsync::systolic
{

std::vector<Word>
OESortCell::step(const std::vector<Word> &inputs)
{
    // Cycle 0 only publishes the key so neighbours' edge registers fill.
    if (cycle > 0) {
        const int s = cycle - 1; // compare step index
        const bool pair_right = ((s + index) % 2) == 0;
        if (pair_right && index + 1 < n) {
            value = std::min(value, inputs[1]);
        } else if (!pair_right && index > 0) {
            value = std::max(value, inputs[0]);
        }
    }
    ++cycle;
    return {value, value};
}

SystolicArray
buildOESort(const std::vector<Word> &keys)
{
    VSYNC_ASSERT(!keys.empty(), "sorting needs at least one key");
    const int n = static_cast<int>(keys.size());
    SystolicArray a(csprintf("oesort-%d", n));
    for (int i = 0; i < n; ++i)
        a.addCell(std::make_unique<OESortCell>(i, n, keys[i]));
    for (int i = 0; i + 1 < n; ++i) {
        const CellId left = i, right = i + 1;
        a.connect(left, 1, right, 0);  // left's value to right's port 0
        a.connect(right, 0, left, 1);  // right's value to left's port 1
    }
    return a;
}

int
oeSortCycles(int n)
{
    return n + 1;
}

} // namespace vsync::systolic
