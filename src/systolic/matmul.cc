#include "systolic/matmul.hh"

#include "common/logging.hh"

namespace vsync::systolic
{

SystolicArray
buildMatMul(int n)
{
    VSYNC_ASSERT(n >= 1, "matmul mesh needs n >= 1, got %d", n);
    SystolicArray arr(csprintf("matmul-%dx%d", n, n));
    for (int i = 0; i < n * n; ++i)
        arr.addCell(std::make_unique<MatMulCell>());
    auto id = [n](int r, int c) { return static_cast<CellId>(r * n + c); };
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
            if (c + 1 < n)
                arr.connect(id(r, c), 0, id(r, c + 1), 0); // a east
            if (r + 1 < n)
                arr.connect(id(r, c), 1, id(r + 1, c), 1); // b south
        }
    }
    return arr;
}

ExternalInputFn
matMulInputs(std::vector<std::vector<Word>> a,
             std::vector<std::vector<Word>> b)
{
    const int n = static_cast<int>(a.size());
    return [a = std::move(a), b = std::move(b), n](
               CellId cell, int port, int cycle) -> Word {
        const int row = cell / n;
        const int col = cell % n;
        if (port == 0 && col == 0) {
            // a_{row,k} enters on cycle row + k.
            const int k = cycle - row;
            if (k >= 0 && k < n)
                return a[static_cast<std::size_t>(row)]
                        [static_cast<std::size_t>(k)];
        } else if (port == 1 && row == 0) {
            // b_{k,col} enters on cycle col + k.
            const int k = cycle - col;
            if (k >= 0 && k < n)
                return b[static_cast<std::size_t>(k)]
                        [static_cast<std::size_t>(col)];
        }
        return 0.0;
    };
}

int
matMulCycles(int n)
{
    return 3 * n - 2;
}

std::vector<std::vector<Word>>
matMulReference(const std::vector<std::vector<Word>> &a,
                const std::vector<std::vector<Word>> &b)
{
    const std::size_t n = a.size();
    VSYNC_ASSERT(b.size() == n, "dimension mismatch");
    std::vector<std::vector<Word>> c(n, std::vector<Word>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        VSYNC_ASSERT(a[i].size() == n && b[i].size() == n,
                     "ragged matrix row %zu", i);
        for (std::size_t k = 0; k < n; ++k)
            for (std::size_t j = 0; j < n; ++j)
                c[i][j] += a[i][k] * b[k][j];
    }
    return c;
}

} // namespace vsync::systolic
