#include "systolic/trisolve.hh"

#include <cmath>

#include "common/logging.hh"

namespace vsync::systolic
{

std::vector<Word>
TriSolveCell::step(const std::vector<Word> &inputs)
{
    const Word l_in = inputs[0];
    const Word s_in = inputs[1];
    const Word b_in = inputs[2];
    const int row = cycle - index; // row whose wavefront is here now
    ++cycle;

    if (row < index) {
        // Wavefront has not reached this cell's first live row yet.
        return {0.0};
    }
    if (row == index) {
        // Boundary operation: solve for this cell's unknown.
        VSYNC_ASSERT(std::fabs(l_in) > 1e-300,
                     "zero diagonal entry at cell %d", index);
        y = (b_in - s_in) / l_in;
        solved = true;
        // Pass b_j along; downstream cells see zero l entries for this
        // row, so the value is inert.
        return {s_in + l_in * y};
    }
    // row > index: accumulate this cell's contribution to a later row.
    VSYNC_ASSERT(solved, "cell %d used before its unknown solved",
                 index);
    return {s_in + l_in * y};
}

SystolicArray
buildTriSolve(int n)
{
    VSYNC_ASSERT(n >= 1, "solver needs n >= 1, got %d", n);
    SystolicArray a(csprintf("trisolve-%d", n));
    for (int j = 0; j < n; ++j)
        a.addCell(std::make_unique<TriSolveCell>(j));
    for (int j = 0; j + 1 < n; ++j)
        a.connect(static_cast<CellId>(j), 0,
                  static_cast<CellId>(j + 1), 1);
    return a;
}

ExternalInputFn
triSolveInputs(std::vector<std::vector<Word>> l, std::vector<Word> b)
{
    const int n = static_cast<int>(b.size());
    return [l = std::move(l), b = std::move(b), n](
               CellId cell, int port, int cycle) -> Word {
        if (port == 0) {
            // l_{i, j} at cycle i + j into cell j.
            const int i = cycle - cell;
            if (i >= 0 && i < n &&
                static_cast<std::size_t>(cell) <
                    l[static_cast<std::size_t>(i)].size())
                return l[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(cell)];
        } else if (port == 2) {
            // b_j at cycle 2j into cell j.
            if (cycle == 2 * cell && cell < n)
                return b[static_cast<std::size_t>(cell)];
        }
        return 0.0;
    };
}

int
triSolveCycles(int n)
{
    return 2 * n - 1;
}

std::vector<Word>
triSolveReference(const std::vector<std::vector<Word>> &l,
                  const std::vector<Word> &b)
{
    const std::size_t n = b.size();
    VSYNC_ASSERT(l.size() == n, "dimension mismatch");
    std::vector<Word> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        VSYNC_ASSERT(std::fabs(l[i][i]) > 1e-300,
                     "zero diagonal at row %zu", i);
        Word s = 0.0;
        for (std::size_t k = 0; k < i; ++k)
            s += l[i][k] * y[k];
        y[i] = (b[i] - s) / l[i][i];
    }
    return y;
}

} // namespace vsync::systolic
