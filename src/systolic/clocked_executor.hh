/**
 * @file
 * Clocked execution of a systolic array under clock skew.
 *
 * Data moves between cells through edge registers. A transfer from cell
 * u to cell v launched at u's clock edge must reach v's register enough
 * before v's next edge (setup) and not so early that it corrupts the
 * capture of the previous word (hold). With per-cell clock arrival
 * offsets t_u, t_v and period T:
 *
 *   setup:  T + (t_v - t_u) >= clkToQ + deltaMax + setup
 *   hold:   clkToQ + deltaMin - hold >= t_v - t_u
 *
 * The executor classifies every connection, then runs the array with
 * the failure semantics applied: a violated capture window -- setup or
 * hold -- leaves the register contents undefined, modelled as
 * metastable garbage (NaN) flowing downstream. When no link is violated
 * the result equals the ideal executor's -- that is Theorem 2/3's
 * "simulated by a corresponding clocked system".
 */

#ifndef VSYNC_SYSTOLIC_CLOCKED_EXECUTOR_HH
#define VSYNC_SYSTOLIC_CLOCKED_EXECUTOR_HH

#include "systolic/executor.hh"

namespace vsync::systolic
{

/** Register and combinational timing of a link. */
struct LinkTiming
{
    /** Register setup window (ns). */
    Time setup = 0.5;
    /** Register hold window (ns). */
    Time hold = 0.25;
    /** Clock-to-Q delay of the launching register (ns). */
    Time clkToQ = 0.5;
    /** Fastest compute+wire path between registers (ns). */
    Time deltaMin = 0.5;
    /** Slowest compute+wire path between registers (ns; A5's delta). */
    Time deltaMax = 2.0;
};

/** Outcome classification of one connection. */
enum class TransferStatus
{
    Ok,
    SetupViolation,
    HoldViolation,
};

/** Result of a clocked run. */
struct ClockedRunReport
{
    /** Status per connection (same order as array.connections()). */
    std::vector<TransferStatus> linkStatus;
    std::size_t setupViolations = 0;
    std::size_t holdViolations = 0;
    /** The (possibly corrupted) execution trace. */
    Trace trace;
    /** True when every link transferred correctly. */
    bool correct = false;
};

/**
 * Run @p array for @p cycles at period @p period with per-cell clock
 * arrival offsets @p clock_offset (ns; one entry per cell).
 */
ClockedRunReport runClocked(const SystolicArray &array, int cycles,
                            const ExternalInputFn &ext,
                            const std::vector<Time> &clock_offset,
                            Time period, const LinkTiming &timing);

/**
 * Smallest period at which every link meets setup:
 * max over links of clkToQ + deltaMax + setup + (t_src - t_dst).
 */
Time minSafePeriod(const SystolicArray &array,
                   const std::vector<Time> &clock_offset,
                   const LinkTiming &timing);

/**
 * True when every link meets hold (period-independent): hold failures
 * cannot be fixed by slowing the clock, only by adding delay or
 * reducing skew -- the paper's "adding delay to circuits" remedy.
 */
bool holdSafe(const SystolicArray &array,
              const std::vector<Time> &clock_offset,
              const LinkTiming &timing);

} // namespace vsync::systolic

#endif // VSYNC_SYSTOLIC_CLOCKED_EXECUTOR_HH
