/**
 * @file
 * Self-timed (asynchronous dataflow) execution of systolic arrays.
 *
 * Each cell fires as soon as its inputs are available (and, with
 * bounded buffering, its previous outputs have been consumed), taking a
 * per-firing service time. This is the paper's Section I model for
 * fully self-timed arrays; it exists to quantify the claim that
 * self-timing seldom pays off in regular arrays: the throughput of a
 * k-cell path is limited by its slowest member, and a worst-case cell
 * appears on the path with probability 1 - p^k.
 */

#ifndef VSYNC_SYSTOLIC_SELFTIMED_HH
#define VSYNC_SYSTOLIC_SELFTIMED_HH

#include <functional>
#include <vector>

#include "systolic/array.hh"

namespace vsync
{
class Rng;
} // namespace vsync

namespace vsync::systolic
{

/** Service time of a cell's @p firing-th firing (ns). */
using ServiceFn = std::function<Time(CellId, int firing)>;

/** Result of a self-timed run. */
struct SelfTimedResult
{
    /** Time the last cell completed its last firing. */
    Time completionTime = 0.0;

    /** Firings per cell executed. */
    int firings = 0;

    /**
     * Steady-state cycle time estimate: the slope of the last cell
     * completion times over the second half of the run.
     */
    Time steadyCycle = 0.0;

    /** Completion time of every cell's final firing. */
    std::vector<Time> lastFireTime;
};

/**
 * Compute the self-timed firing schedule of @p array.
 *
 * @param firings  number of firings per cell.
 * @param service  per-firing service times.
 * @param bounded  true: unit-capacity edges (a producer blocks until
 *                 its consumer has taken the previous token -- the
 *                 realistic handshake semantics); false: unbounded
 *                 FIFOs.
 */
SelfTimedResult runSelfTimed(const SystolicArray &array, int firings,
                             const ServiceFn &service,
                             bool bounded = true);

/**
 * The intro's analysis: probability that a directed path of @p k cells
 * contains at least one worst-case cell when each cell independently
 * avoids the worst case with probability @p p: 1 - p^k.
 */
double worstCasePathProbability(double p, int k);

/**
 * Sample the intro's two-speed fabrication model: each cell is
 * independently "fast" with probability @p p_fast (service time
 * @p fast) and "slow" otherwise (@p slow). One draw per cell, in cell
 * order, so a given rng state maps to one well-defined array.
 */
std::vector<Time> bernoulliServiceTimes(std::size_t cells, double p_fast,
                                        Time fast, Time slow, Rng &rng);

/**
 * Wrap fixed per-cell service times as a (firing-independent)
 * ServiceFn. The vector is captured by value; the function is safe to
 * call from any thread.
 */
ServiceFn serviceFromSpeeds(std::vector<Time> speeds);

} // namespace vsync::systolic

#endif // VSYNC_SYSTOLIC_SELFTIMED_HH
