#include "systolic/horner.hh"

#include "common/logging.hh"

namespace vsync::systolic
{

SystolicArray
buildHorner(const std::vector<Word> &coeffs)
{
    VSYNC_ASSERT(!coeffs.empty(), "need at least one coefficient");
    SystolicArray a(csprintf("horner-%zu", coeffs.size()));
    for (Word c : coeffs)
        a.addCell(std::make_unique<HornerCell>(c));
    for (std::size_t j = 0; j + 1 < coeffs.size(); ++j) {
        a.connect(static_cast<CellId>(j), 0,
                  static_cast<CellId>(j + 1), 0); // x
        a.connect(static_cast<CellId>(j), 1,
                  static_cast<CellId>(j + 1), 1); // r
    }
    return a;
}

ExternalInputFn
hornerInputs(std::vector<Word> xs)
{
    return [xs = std::move(xs)](CellId cell, int port, int cycle) -> Word {
        if (cell == 0 && port == 0 && cycle >= 0 &&
            static_cast<std::size_t>(cycle) < xs.size())
            return xs[static_cast<std::size_t>(cycle)];
        return 0.0;
    };
}

std::vector<Word>
hornerExpectedOutput(const std::vector<Word> &coeffs,
                     const std::vector<Word> &xs, int cycles)
{
    const int k = static_cast<int>(coeffs.size());
    auto x_at = [&xs](int idx) -> Word {
        return idx >= 0 && static_cast<std::size_t>(idx) < xs.size()
                   ? xs[static_cast<std::size_t>(idx)]
                   : 0.0;
    };
    std::vector<Word> expected(static_cast<std::size_t>(cycles), 0.0);
    for (int t = 0; t < cycles; ++t) {
        const Word x = x_at(t - (k - 1));
        Word r = 0.0;
        for (Word c : coeffs)
            r = r * x + c;
        expected[static_cast<std::size_t>(t)] = r;
    }
    return expected;
}

} // namespace vsync::systolic
