#include "systolic/array.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsync::systolic
{

CellId
SystolicArray::addCell(std::unique_ptr<Cell> cell)
{
    VSYNC_ASSERT(cell != nullptr, "null cell");
    cells.push_back(std::move(cell));
    return static_cast<CellId>(cells.size() - 1);
}

void
SystolicArray::connect(CellId src, int src_port, CellId dst, int dst_port)
{
    VSYNC_ASSERT(src >= 0 && static_cast<std::size_t>(src) < cells.size(),
                 "bad connection source %d", src);
    VSYNC_ASSERT(dst >= 0 && static_cast<std::size_t>(dst) < cells.size(),
                 "bad connection target %d", dst);
    VSYNC_ASSERT(src_port >= 0 && src_port < cells[src]->outPorts(),
                 "cell %d has no output port %d", src, src_port);
    VSYNC_ASSERT(dst_port >= 0 && dst_port < cells[dst]->inPorts(),
                 "cell %d has no input port %d", dst, dst_port);
    VSYNC_ASSERT(!outputConnected(src, src_port),
                 "output (%d, %d) already connected", src, src_port);
    VSYNC_ASSERT(!inputConnected(dst, dst_port),
                 "input (%d, %d) already connected", dst, dst_port);
    conns.push_back({src, src_port, dst, dst_port});
}

bool
SystolicArray::inputConnected(CellId cell, int port) const
{
    return std::any_of(conns.begin(), conns.end(),
                       [&](const Connection &c) {
                           return c.dst == cell && c.dstPort == port;
                       });
}

bool
SystolicArray::outputConnected(CellId cell, int port) const
{
    return std::any_of(conns.begin(), conns.end(),
                       [&](const Connection &c) {
                           return c.src == cell && c.srcPort == port;
                       });
}

std::vector<std::pair<CellId, int>>
SystolicArray::externalOutputs() const
{
    std::vector<std::pair<CellId, int>> result;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        for (int p = 0; p < cells[c]->outPorts(); ++p) {
            if (!outputConnected(static_cast<CellId>(c), p))
                result.emplace_back(static_cast<CellId>(c), p);
        }
    }
    return result;
}

std::vector<std::unique_ptr<Cell>>
SystolicArray::cloneCells() const
{
    std::vector<std::unique_ptr<Cell>> copy;
    copy.reserve(cells.size());
    for (const auto &c : cells)
        copy.push_back(c->clone());
    return copy;
}

graph::Graph
SystolicArray::commGraph() const
{
    graph::Graph g(cells.size());
    for (const Connection &c : conns) {
        if (c.src != c.dst)
            g.addEdge(c.src, c.dst);
    }
    return g;
}

bool
SystolicArray::validate(bool die) const
{
    auto fail = [&](const std::string &msg) {
        if (die)
            fatal("array '%s' invalid: %s", arrayName.c_str(),
                  msg.c_str());
        return false;
    };
    for (const Connection &c : conns) {
        if (c.src < 0 || static_cast<std::size_t>(c.src) >= cells.size() ||
            c.dst < 0 || static_cast<std::size_t>(c.dst) >= cells.size())
            return fail("connection endpoint out of range");
        if (c.srcPort < 0 || c.srcPort >= cells[c.src]->outPorts())
            return fail(csprintf("bad source port %d", c.srcPort));
        if (c.dstPort < 0 || c.dstPort >= cells[c.dst]->inPorts())
            return fail(csprintf("bad target port %d", c.dstPort));
    }
    return true;
}

} // namespace vsync::systolic
