/**
 * @file
 * Systolic polynomial evaluation (Horner's rule) on a linear array.
 *
 * Cell j holds coefficient c_j; x values and partial results move
 * right together at one cell per cycle:
 *
 *   r_out = r_in * x_in + c_j;   x_out = x_in.
 *
 * The last cell emits p(x) = sum_j c_j x^(k-1-j) -- one full
 * evaluation per cycle after the pipeline fills. Another classic 1-D
 * workload for the Section V-A clocking scheme.
 */

#ifndef VSYNC_SYSTOLIC_HORNER_HH
#define VSYNC_SYSTOLIC_HORNER_HH

#include <vector>

#include "systolic/array.hh"

namespace vsync::systolic
{

/** One Horner cell. */
class HornerCell : public Cell
{
  public:
    explicit HornerCell(Word coefficient) : coefficient(coefficient) {}

    int inPorts() const override { return 2; }  // 0: x, 1: r
    int outPorts() const override { return 2; } // 0: x, 1: r

    std::vector<Word>
    step(const std::vector<Word> &inputs) override
    {
        return {inputs[0], inputs[1] * inputs[0] + coefficient};
    }

    std::vector<Word> peek() const override { return {coefficient}; }

    std::unique_ptr<Cell>
    clone() const override
    {
        return std::make_unique<HornerCell>(*this);
    }

  private:
    Word coefficient;
};

/**
 * Build the evaluator for coefficients @p coeffs (highest power
 * first: cell 0 holds the leading coefficient).
 */
SystolicArray buildHorner(const std::vector<Word> &coeffs);

/** Stream @p xs into cell 0's x port starting at cycle 0. */
ExternalInputFn hornerInputs(std::vector<Word> xs);

/**
 * Expected r output of the last cell: p(x_{t-k+1}) at cycle t, with x
 * reading 0 outside the stream.
 */
std::vector<Word> hornerExpectedOutput(const std::vector<Word> &coeffs,
                                       const std::vector<Word> &xs,
                                       int cycles);

} // namespace vsync::systolic

#endif // VSYNC_SYSTOLIC_HORNER_HH
