#include "systolic/matvec.hh"

#include "common/logging.hh"

namespace vsync::systolic
{

SystolicArray
buildMatVec(const std::vector<Word> &x)
{
    VSYNC_ASSERT(!x.empty(), "matvec needs at least one element");
    SystolicArray a(csprintf("matvec-%zu", x.size()));
    for (Word xi : x)
        a.addCell(std::make_unique<MatVecCell>(xi));
    for (std::size_t j = 0; j + 1 < x.size(); ++j)
        a.connect(static_cast<CellId>(j), 0,
                  static_cast<CellId>(j + 1), 1);
    return a;
}

ExternalInputFn
matVecInputs(std::vector<std::vector<Word>> a)
{
    return [a = std::move(a)](CellId cell, int port, int cycle) -> Word {
        if (port != 0)
            return 0.0;
        const int i = cycle - cell; // a_{i,j} enters cell j at i + j
        if (i < 0 || static_cast<std::size_t>(i) >= a.size())
            return 0.0;
        const auto &row = a[static_cast<std::size_t>(i)];
        if (static_cast<std::size_t>(cell) >= row.size())
            return 0.0;
        return row[static_cast<std::size_t>(cell)];
    };
}

std::vector<Word>
matVecExpectedOutput(const std::vector<std::vector<Word>> &a,
                     const std::vector<Word> &x, int cycles)
{
    const int n = static_cast<int>(x.size());
    std::vector<Word> expected(static_cast<std::size_t>(cycles), 0.0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        VSYNC_ASSERT(a[i].size() == x.size(),
                     "matrix row %zu has %zu entries, expected %zu", i,
                     a[i].size(), x.size());
        Word y = 0.0;
        for (std::size_t j = 0; j < x.size(); ++j)
            y += a[i][j] * x[j];
        const int t = static_cast<int>(i) + n - 1;
        if (t < cycles)
            expected[static_cast<std::size_t>(t)] = y;
    }
    return expected;
}

} // namespace vsync::systolic
