#include "systolic/clocked_executor.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace vsync::systolic
{

namespace
{

/** Classify one connection under the timing constraints. */
TransferStatus
classify(const Connection &c, const std::vector<Time> &offset, Time period,
         const LinkTiming &t)
{
    const Time skew = offset[c.src] - offset[c.dst]; // src later: positive
    // Hold first: a race-through corrupts regardless of period.
    if (t.clkToQ + t.deltaMin - t.hold < -skew)
        return TransferStatus::HoldViolation;
    if (period + (-skew) < t.clkToQ + t.deltaMax + t.setup)
        return TransferStatus::SetupViolation;
    return TransferStatus::Ok;
}

} // namespace

ClockedRunReport
runClocked(const SystolicArray &array, int cycles,
           const ExternalInputFn &ext,
           const std::vector<Time> &clock_offset, Time period,
           const LinkTiming &timing)
{
    VSYNC_ASSERT(clock_offset.size() == array.size(),
                 "clock offsets (%zu) != cells (%zu)",
                 clock_offset.size(), array.size());
    VSYNC_ASSERT(period > 0.0, "period must be positive");
    array.validate();

    ClockedRunReport report;
    const auto &conns = array.connections();
    report.linkStatus.reserve(conns.size());
    for (const Connection &c : conns) {
        const TransferStatus st =
            classify(c, clock_offset, period, timing);
        report.linkStatus.push_back(st);
        if (st == TransferStatus::SetupViolation)
            ++report.setupViolations;
        else if (st == TransferStatus::HoldViolation)
            ++report.holdViolations;
    }
    report.correct =
        report.setupViolations == 0 && report.holdViolations == 0;

    // Execute with failure semantics.
    auto cells = array.cloneCells();
    std::vector<Word> regs(conns.size(), 0.0);

    report.trace.cycles = cycles;
    report.trace.ports = array.externalOutputs();
    report.trace.series.assign(report.trace.ports.size(), {});

    std::vector<std::vector<std::pair<int, std::size_t>>> in_by_cell(
        array.size());
    std::vector<std::vector<std::pair<int, std::size_t>>> out_by_cell(
        array.size());
    std::vector<std::vector<bool>> in_connected(array.size());
    for (std::size_t c = 0; c < array.size(); ++c)
        in_connected[c].assign(cells[c]->inPorts(), false);
    for (std::size_t k = 0; k < conns.size(); ++k) {
        in_by_cell[conns[k].dst].emplace_back(conns[k].dstPort, k);
        out_by_cell[conns[k].src].emplace_back(conns[k].srcPort, k);
        in_connected[conns[k].dst][conns[k].dstPort] = true;
    }

    const Word metastable = std::numeric_limits<Word>::quiet_NaN();
    std::vector<std::vector<Word>> outputs(array.size());
    for (int t = 0; t < cycles; ++t) {
        for (std::size_t c = 0; c < array.size(); ++c) {
            std::vector<Word> inputs(cells[c]->inPorts(), 0.0);
            for (const auto &[port, k] : in_by_cell[c])
                inputs[port] = regs[k];
            if (ext) {
                for (int p = 0; p < cells[c]->inPorts(); ++p) {
                    if (!in_connected[c][p])
                        inputs[p] = ext(static_cast<CellId>(c), p, t);
                }
            }
            outputs[c] = cells[c]->step(inputs);
        }
        for (std::size_t k = 0; k < conns.size(); ++k) {
            const Word launched = outputs[conns[k].src][conns[k].srcPort];
            // A violated capture window -- setup or hold -- leaves the
            // register's contents undefined; both deliver metastable
            // garbage downstream.
            regs[k] = report.linkStatus[k] == TransferStatus::Ok
                          ? launched
                          : metastable;
        }
        for (std::size_t i = 0; i < report.trace.ports.size(); ++i) {
            const auto &[cell, port] = report.trace.ports[i];
            report.trace.series[i].push_back(outputs[cell][port]);
        }
    }

    report.trace.finalStates.reserve(array.size());
    for (const auto &c : cells)
        report.trace.finalStates.push_back(c->peek());
    return report;
}

Time
minSafePeriod(const SystolicArray &array,
              const std::vector<Time> &clock_offset,
              const LinkTiming &timing)
{
    VSYNC_ASSERT(clock_offset.size() == array.size(),
                 "clock offsets (%zu) != cells (%zu)",
                 clock_offset.size(), array.size());
    Time worst = timing.clkToQ + timing.deltaMax + timing.setup;
    for (const Connection &c : array.connections()) {
        const Time skew = clock_offset[c.src] - clock_offset[c.dst];
        worst = std::max(worst, timing.clkToQ + timing.deltaMax +
                                    timing.setup + skew);
    }
    return worst;
}

bool
holdSafe(const SystolicArray &array, const std::vector<Time> &clock_offset,
         const LinkTiming &timing)
{
    VSYNC_ASSERT(clock_offset.size() == array.size(),
                 "clock offsets (%zu) != cells (%zu)",
                 clock_offset.size(), array.size());
    for (const Connection &c : array.connections()) {
        const Time skew = clock_offset[c.dst] - clock_offset[c.src];
        if (timing.clkToQ + timing.deltaMin - timing.hold < skew)
            return false;
    }
    return true;
}

} // namespace vsync::systolic
