#include "systolic/executor.hh"

#include <cmath>

#include "common/logging.hh"

namespace vsync::systolic
{

const std::vector<Word> &
Trace::of(CellId cell, int port) const
{
    for (std::size_t i = 0; i < ports.size(); ++i)
        if (ports[i].first == cell && ports[i].second == port)
            return series[i];
    panic("no external output (%d, %d) in trace", cell, port);
}

bool
Trace::matches(const Trace &other, double tol) const
{
    if (ports != other.ports || cycles != other.cycles ||
        finalStates.size() != other.finalStates.size())
        return false;
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (series[i].size() != other.series[i].size())
            return false;
        for (std::size_t t = 0; t < series[i].size(); ++t) {
            const double a = series[i][t], b = other.series[i][t];
            if (std::isnan(a) != std::isnan(b))
                return false;
            if (!std::isnan(a) && std::fabs(a - b) > tol)
                return false;
        }
    }
    for (std::size_t c = 0; c < finalStates.size(); ++c) {
        if (finalStates[c].size() != other.finalStates[c].size())
            return false;
        for (std::size_t k = 0; k < finalStates[c].size(); ++k) {
            if (std::fabs(finalStates[c][k] - other.finalStates[c][k]) >
                tol) {
                return false;
            }
        }
    }
    return true;
}

Trace
runIdeal(const SystolicArray &array, int cycles, const ExternalInputFn &ext)
{
    VSYNC_ASSERT(cycles >= 0, "negative cycle count");
    array.validate();

    auto cells = array.cloneCells();
    const auto &conns = array.connections();
    std::vector<Word> regs(conns.size(), 0.0);

    Trace trace;
    trace.cycles = cycles;
    trace.ports = array.externalOutputs();
    trace.series.assign(trace.ports.size(), {});

    // Pre-index connections by destination and source for fast lookup.
    std::vector<std::vector<std::pair<int, std::size_t>>> in_by_cell(
        array.size());
    std::vector<std::vector<std::pair<int, std::size_t>>> out_by_cell(
        array.size());
    std::vector<std::vector<bool>> in_connected(array.size());
    for (std::size_t c = 0; c < array.size(); ++c)
        in_connected[c].assign(cells[c]->inPorts(), false);
    for (std::size_t k = 0; k < conns.size(); ++k) {
        in_by_cell[conns[k].dst].emplace_back(conns[k].dstPort, k);
        out_by_cell[conns[k].src].emplace_back(conns[k].srcPort, k);
        in_connected[conns[k].dst][conns[k].dstPort] = true;
    }

    std::vector<std::vector<Word>> outputs(array.size());
    for (int t = 0; t < cycles; ++t) {
        // Phase 1: every cell reads registered inputs and computes.
        for (std::size_t c = 0; c < array.size(); ++c) {
            std::vector<Word> inputs(cells[c]->inPorts(), 0.0);
            for (const auto &[port, k] : in_by_cell[c])
                inputs[port] = regs[k];
            if (ext) {
                for (int p = 0; p < cells[c]->inPorts(); ++p) {
                    if (!in_connected[c][p])
                        inputs[p] = ext(static_cast<CellId>(c), p, t);
                }
            }
            outputs[c] = cells[c]->step(inputs);
            VSYNC_ASSERT(outputs[c].size() ==
                             static_cast<std::size_t>(
                                 cells[c]->outPorts()),
                         "cell %zu produced %zu outputs, expected %d", c,
                         outputs[c].size(), cells[c]->outPorts());
        }
        // Phase 2: update registers and record external outputs.
        for (std::size_t c = 0; c < array.size(); ++c)
            for (const auto &[port, k] : out_by_cell[c])
                regs[k] = outputs[c][port];
        for (std::size_t i = 0; i < trace.ports.size(); ++i) {
            const auto &[cell, port] = trace.ports[i];
            trace.series[i].push_back(outputs[cell][port]);
        }
    }

    trace.finalStates.reserve(array.size());
    for (const auto &c : cells)
        trace.finalStates.push_back(c->peek());
    return trace;
}

} // namespace vsync::systolic
