/**
 * @file
 * Odd-even transposition sort on a linear array.
 *
 * Every cell holds one key and exchanges it with alternating neighbours
 * each compare step; after n steps the keys are sorted. The first cycle
 * only publishes values (edge registers start empty), so a run takes
 * n + 1 cycles. This exercises the bidirectional communication pattern
 * of 1-D arrays under the Section V-A clocking scheme.
 */

#ifndef VSYNC_SYSTOLIC_SORT_HH
#define VSYNC_SYSTOLIC_SORT_HH

#include <vector>

#include "systolic/array.hh"

namespace vsync::systolic
{

/** One odd-even transposition sort cell. */
class OESortCell : public Cell
{
  public:
    /**
     * @param index position in the array.
     * @param n     array length.
     * @param value initial key.
     */
    OESortCell(int index, int n, Word value)
        : index(index), n(n), value(value)
    {
    }

    int inPorts() const override { return 2; }  // 0: from left, 1: right
    int outPorts() const override { return 2; } // 0: to left, 1: right

    std::vector<Word> step(const std::vector<Word> &inputs) override;

    std::vector<Word> peek() const override { return {value}; }

    std::unique_ptr<Cell>
    clone() const override
    {
        return std::make_unique<OESortCell>(*this);
    }

  private:
    int index;
    int n;
    Word value;
    int cycle = 0;
};

/** Build a sorting array preloaded with @p keys. */
SystolicArray buildOESort(const std::vector<Word> &keys);

/** Cycles to completion: publish + n compare steps. */
int oeSortCycles(int n);

} // namespace vsync::systolic

#endif // VSYNC_SYSTOLIC_SORT_HH
