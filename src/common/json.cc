#include "common/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/logging.hh"

namespace vsync
{

JsonWriter::JsonWriter(std::ostream &stream, Style style)
    : os(stream), style(style)
{
    stack.push_back({Scope::Top});
}

void
JsonWriter::indent()
{
    if (style == Style::Compact)
        return;
    os << '\n';
    for (std::size_t i = 1; i < stack.size(); ++i)
        os << "  ";
}

void
JsonWriter::beforeValue()
{
    Level &top = stack.back();
    VSYNC_ASSERT(top.scope != Scope::Object || top.keyPending,
                 "json: value inside an object needs a key first");
    if (top.scope == Scope::Array) {
        if (top.items > 0)
            os << ',';
        indent();
    } else if (top.scope == Scope::Top) {
        VSYNC_ASSERT(top.items == 0, "json: multiple top-level values");
    }
    top.keyPending = false;
    ++top.items;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    Level &top = stack.back();
    VSYNC_ASSERT(top.scope == Scope::Object,
                 "json: key() outside an object");
    VSYNC_ASSERT(!top.keyPending, "json: two keys in a row");
    if (top.items > 0)
        os << ',';
    indent();
    os << '"' << escape(k)
       << (style == Style::Compact ? "\":" : "\": ");
    top.keyPending = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    os << '{';
    stack.push_back({Scope::Object});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    VSYNC_ASSERT(stack.back().scope == Scope::Object &&
                     !stack.back().keyPending,
                 "json: mismatched endObject");
    const bool empty = stack.back().items == 0;
    stack.pop_back();
    if (!empty)
        indent();
    os << '}';
    if (stack.back().scope == Scope::Top && style == Style::Pretty)
        os << '\n';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    os << '[';
    stack.push_back({Scope::Array});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    VSYNC_ASSERT(stack.back().scope == Scope::Array,
                 "json: mismatched endArray");
    const bool empty = stack.back().items == 0;
    stack.pop_back();
    if (!empty)
        indent();
    os << ']';
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; null is the conventional stand-in.
        os << "null";
        return *this;
    }
    os << formatDouble(v);
    return *this;
}

std::string
JsonWriter::formatDouble(double v)
{
    // std::to_chars is locale-independent (snprintf "%.17g" emitted
    // ',' decimal separators under non-C LC_NUMERIC, producing invalid
    // JSON) and yields the shortest digit string that parses back to
    // exactly the same double.
    char buf[40];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    VSYNC_ASSERT(res.ec == std::errc(), "double does not fit buffer");
    return std::string(buf, res.ptr);
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    os << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    os << '"' << escape(v) << '"';
    return *this;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace vsync
