/**
 * @file
 * Minimal streaming JSON writer for bench result files.
 *
 * Benches emit machine-readable results as BENCH_<name>.json next to
 * their stdout tables so perf trajectories can be tracked across PRs.
 * The writer covers exactly what those files need: nested objects and
 * arrays, string/number/bool values, round-trip-exact doubles.
 */

#ifndef VSYNC_COMMON_JSON_HH
#define VSYNC_COMMON_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace vsync
{

/**
 * Streaming writer producing pretty-printed JSON by default, or --
 * for wire protocols framed by newlines (net::) -- a compact
 * single-line rendering with no inserted whitespace. Calls must form
 * a valid document: values at the top level or inside arrays, key()
 * before every value inside objects. Misuse fatal()s.
 */
class JsonWriter
{
  public:
    /** Rendering style; Compact never emits a newline. */
    enum class Style { Pretty, Compact };

    explicit JsonWriter(std::ostream &os, Style style = Style::Pretty);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Name the next value; only valid inside an object. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(double v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter &value(bool v);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v) { return value(std::string(v)); }

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    keyValue(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

    /** JSON string escaping (quotes not included). */
    static std::string escape(const std::string &s);

    /**
     * Format a finite double exactly as value(double) emits it:
     * locale-independent (always '.' decimals, whatever LC_NUMERIC
     * says) and round-trip exact via the shortest representation.
     */
    static std::string formatDouble(double v);

  private:
    enum class Scope { Top, Object, Array };
    struct Level
    {
        Scope scope;
        std::size_t items = 0;
        bool keyPending = false;
    };

    void beforeValue();
    void indent();

    std::ostream &os;
    Style style;
    std::vector<Level> stack;
};

} // namespace vsync

#endif // VSYNC_COMMON_JSON_HH
