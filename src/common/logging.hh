/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated (a vlsisync bug); aborts.
 * fatal()  - the caller supplied an unusable configuration; exits(1).
 * warn()   - something is suspicious but the computation continues.
 * inform() - a status message with no negative connotation.
 */

#ifndef VSYNC_COMMON_LOGGING_HH
#define VSYNC_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace vsync
{

/** Print "panic: <msg>" to stderr and abort. Use for internal bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print "fatal: <msg>" to stderr and exit(1). Use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print "warn: <msg>" to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print "info: <msg>" to stderr and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Format a printf-style message into a std::string.
 *
 * @param fmt printf format string.
 * @return the formatted message.
 */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Abort with a message if @p cond is false. Active in all build types. */
#define VSYNC_ASSERT(cond, ...)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::vsync::panic("assertion '%s' failed at %s:%d: %s", #cond,   \
                           __FILE__, __LINE__,                            \
                           ::vsync::csprintf(__VA_ARGS__).c_str());       \
        }                                                                 \
    } while (0)

} // namespace vsync

#endif // VSYNC_COMMON_LOGGING_HH
