/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated (a vlsisync bug); aborts.
 * fatal()  - the caller supplied an unusable configuration; exits(1).
 * warn()   - something is suspicious but the computation continues.
 * inform() - a status message with no negative connotation.
 * debugLog() - chatty diagnostics, off by default.
 *
 * Lines below the active level (setLogLevel / the VSYNC_LOG_LEVEL
 * environment variable: debug, info, warn, error or 0-3) are dropped.
 * An installed log sink (setLogSink; see obs::attachLogSink for the
 * observability adapter) receives the surviving lines instead of
 * stderr, which is how tests assert on log output. panic/fatal always
 * print to stderr -- the process is about to die -- and are forwarded
 * to the sink as well.
 */

#ifndef VSYNC_COMMON_LOGGING_HH
#define VSYNC_COMMON_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <string>

namespace vsync
{

/** Severity of a log line, ordered least to most severe. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
};

/** Human-readable level name ("debug", "info", "warn", "error"). */
const char *logLevelName(LogLevel level);

/**
 * Parse @p s as a level: a name (case-insensitive) or a digit 0-3.
 * Returns @p fallback when @p s is null or unrecognised.
 */
LogLevel parseLogLevel(const char *s, LogLevel fallback);

/** Lowest level that is emitted (default: Info, or VSYNC_LOG_LEVEL). */
LogLevel logLevel();

/** Set the emission threshold. Thread-safe. */
void setLogLevel(LogLevel level);

/** Re-read VSYNC_LOG_LEVEL (tests that setenv() call this). */
void initLogLevelFromEnv();

/**
 * Receives every line that passed the level filter, instead of stderr
 * (panic/fatal additionally always print to stderr). The string is the
 * full prefixed line without the trailing newline, e.g. "warn: x".
 */
using LogSinkFn = std::function<void(LogLevel, const std::string &)>;

/** Install @p sink ({} restores plain stderr). Thread-safe. */
void setLogSink(LogSinkFn sink);

/** Print "panic: <msg>" to stderr and abort. Use for internal bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print "fatal: <msg>" to stderr and exit(1). Use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print "warn: <msg>" to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print "info: <msg>" to stderr and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print "debug: <msg>" (suppressed unless the level is Debug). */
void debugLog(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Format a printf-style message into a std::string.
 *
 * @param fmt printf format string.
 * @return the formatted message.
 */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Abort with a message if @p cond is false. Active in all build types. */
#define VSYNC_ASSERT(cond, ...)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::vsync::panic("assertion '%s' failed at %s:%d: %s", #cond,   \
                           __FILE__, __LINE__,                            \
                           ::vsync::csprintf(__VA_ARGS__).c_str());       \
        }                                                                 \
    } while (0)

} // namespace vsync

#endif // VSYNC_COMMON_LOGGING_HH
