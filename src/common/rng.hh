/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in vlsisync (wire delay variation, per-chip
 * process spread, self-timed service times) flows through Rng so that
 * every experiment is reproducible from a single 64-bit seed. The core
 * generator is xoshiro256++ seeded via SplitMix64, which is small, fast
 * and has no measurable bias for the volumes used here.
 */

#ifndef VSYNC_COMMON_RNG_HH
#define VSYNC_COMMON_RNG_HH

#include <array>
#include <cmath>
#include <cstdint>
#include <span>

#include "common/logging.hh"

namespace vsync
{

namespace detail
{

/** Left-rotate, xoshiro's building block (shared by the scalar step in
 *  rng.cc and the inlined bulk fills below). */
inline constexpr std::uint64_t
rotl64(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace detail

/**
 * SplitMix64 generator, used to expand a single seed into a full state
 * vector and as a cheap standalone stream when quality demands are low.
 */
class SplitMix64
{
  public:
    /** Construct from a 64-bit seed. */
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Produce the next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * xoshiro256++ pseudo-random generator with convenience distributions.
 *
 * Not thread safe; create one instance per logical random stream. Streams
 * for sub-experiments should be derived with deriveStream() so that adding
 * draws to one stream never perturbs another.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /**
     * Raw 64-bit values drawn so far (every distribution funnels
     * through next(), so this counts the stream's total consumption --
     * the observability layer's per-sweep "RNG draws" metric).
     */
    std::uint64_t draws() const { return drawCount; }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /**
     * Fill @p out with out.size() consecutive uniform(lo, hi) draws.
     *
     * Produces the exact draw sequence (and draws() accounting) of
     * calling uniform(lo, hi) once per slot, but with the xoshiro
     * state hoisted into registers for the whole span -- the scalar
     * path pays two non-inlined calls and a counter increment per
     * draw, which dominates tight sampling loops. This is the bulk
     * feed of SkewKernel::arrivalsBlock.
     */
    void fillUniform(double lo, double hi, std::span<double> out);

    /**
     * Strided variant: writes count draws to out[0], out[stride],
     * ..., out[(count - 1) * stride]. @pre stride >= 1. Used to fill
     * one lane's column of a lane-major draw matrix; the draw
     * sequence is identical to the contiguous form.
     */
    void fillUniform(double lo, double hi, double *out,
                     std::size_t count, std::size_t stride);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal variate (Box-Muller, cached pair). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Fill @p out with out.size() consecutive normal() draws:
     * bit-identical to calling normal() per slot, including the
     * Box-Muller cached-pair interaction -- a pair cached by an
     * earlier scalar normal() is consumed first, and a trailing
     * unpaired variate is cached for the next call, scalar or bulk.
     */
    void fillNormal(std::span<double> out);

    /** As fillNormal(out) with each draw mapped through
     *  mean + stddev * z, matching normal(mean, stddev) bitwise. */
    void fillNormal(double mean, double stddev, std::span<double> out);

    /** Bernoulli trial: true with probability p. */
    bool bernoulli(double p);

    /** Exponential variate with the given mean. @pre mean > 0. */
    double exponential(double mean);

    /**
     * Derive an independent child stream.
     *
     * @param salt distinguishes sibling streams derived from this one.
     * @return a generator whose sequence is uncorrelated with this one.
     */
    Rng deriveStream(std::uint64_t salt) const;

    /**
     * Counter-based substream derivation: the independent stream for
     * trial @p trial of the experiment seeded with @p seed.
     *
     * This is the Monte-Carlo engine's determinism contract: the stream
     * is a pure function of (seed, trial) — no shared generator state,
     * no dependence on which thread runs the trial or in what order —
     * so a parallel sweep is bit-identical to a serial one.
     */
    static Rng forTrial(std::uint64_t seed, std::uint64_t trial);

  private:
    std::array<std::uint64_t, 4> s;
    double cachedNormal;
    bool hasCachedNormal;
    std::uint64_t seedValue;
    std::uint64_t drawCount = 0;
};

inline void
Rng::fillUniform(double lo, double hi, double *out, std::size_t count,
                 std::size_t stride)
{
    VSYNC_ASSERT(lo <= hi, "bad uniform range [%g, %g)", lo, hi);
    VSYNC_ASSERT(stride >= 1, "fillUniform needs stride >= 1");
    // Local copies keep the generator state in registers across the
    // whole span; the scalar uniform(lo, hi) performs the identical
    // arithmetic (same expression shapes), so the two paths agree bit
    // for bit draw by draw.
    std::uint64_t s0 = s[0], s1 = s[1], s2 = s[2], s3 = s[3];
    const double scale = hi - lo;
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t r = detail::rotl64(s0 + s3, 23) + s0;
        const std::uint64_t t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = detail::rotl64(s3, 45);
        out[i * stride] =
            lo + scale * (static_cast<double>(r >> 11) * 0x1.0p-53);
    }
    s = {s0, s1, s2, s3};
    drawCount += count;
}

inline void
Rng::fillUniform(double lo, double hi, std::span<double> out)
{
    fillUniform(lo, hi, out.data(), out.size(), 1);
}

inline void
Rng::fillNormal(std::span<double> out)
{
    std::size_t i = 0;
    const std::size_t n = out.size();
    if (hasCachedNormal && i < n) {
        hasCachedNormal = false;
        out[i++] = cachedNormal;
    }
    while (i < n) {
        // One Box-Muller round, spelled exactly as normal(): cos first,
        // sin second; an unpaired sin is cached, never dropped.
        double u1;
        do {
            u1 = uniform();
        } while (u1 <= 1e-300);
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        const double first = r * std::cos(theta);
        const double second = r * std::sin(theta);
        out[i++] = first;
        if (i < n) {
            out[i++] = second;
        } else {
            cachedNormal = second;
            hasCachedNormal = true;
        }
    }
}

inline void
Rng::fillNormal(double mean, double stddev, std::span<double> out)
{
    fillNormal(out);
    for (double &z : out)
        z = mean + stddev * z;
}

} // namespace vsync

#endif // VSYNC_COMMON_RNG_HH
