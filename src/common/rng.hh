/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in vlsisync (wire delay variation, per-chip
 * process spread, self-timed service times) flows through Rng so that
 * every experiment is reproducible from a single 64-bit seed. The core
 * generator is xoshiro256++ seeded via SplitMix64, which is small, fast
 * and has no measurable bias for the volumes used here.
 */

#ifndef VSYNC_COMMON_RNG_HH
#define VSYNC_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace vsync
{

/**
 * SplitMix64 generator, used to expand a single seed into a full state
 * vector and as a cheap standalone stream when quality demands are low.
 */
class SplitMix64
{
  public:
    /** Construct from a 64-bit seed. */
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Produce the next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * xoshiro256++ pseudo-random generator with convenience distributions.
 *
 * Not thread safe; create one instance per logical random stream. Streams
 * for sub-experiments should be derived with deriveStream() so that adding
 * draws to one stream never perturbs another.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /**
     * Raw 64-bit values drawn so far (every distribution funnels
     * through next(), so this counts the stream's total consumption --
     * the observability layer's per-sweep "RNG draws" metric).
     */
    std::uint64_t draws() const { return drawCount; }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal variate (Box-Muller, cached pair). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial: true with probability p. */
    bool bernoulli(double p);

    /** Exponential variate with the given mean. @pre mean > 0. */
    double exponential(double mean);

    /**
     * Derive an independent child stream.
     *
     * @param salt distinguishes sibling streams derived from this one.
     * @return a generator whose sequence is uncorrelated with this one.
     */
    Rng deriveStream(std::uint64_t salt) const;

    /**
     * Counter-based substream derivation: the independent stream for
     * trial @p trial of the experiment seeded with @p seed.
     *
     * This is the Monte-Carlo engine's determinism contract: the stream
     * is a pure function of (seed, trial) — no shared generator state,
     * no dependence on which thread runs the trial or in what order —
     * so a parallel sweep is bit-identical to a serial one.
     */
    static Rng forTrial(std::uint64_t seed, std::uint64_t trial);

  private:
    std::array<std::uint64_t, 4> s;
    double cachedNormal;
    bool hasCachedNormal;
    std::uint64_t seedValue;
    std::uint64_t drawCount = 0;
};

} // namespace vsync

#endif // VSYNC_COMMON_RNG_HH
