#include "common/table.hh"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <ostream>

#include "common/logging.hh"

namespace vsync
{

Table::Table(std::string title, std::vector<std::string> columns)
    : title(std::move(title)), columns(std::move(columns))
{
    VSYNC_ASSERT(!this->columns.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(columns.size());
    rows.push_back(std::move(cells));
}

std::string
Table::num(double v)
{
    return csprintf("%.4g", v);
}

std::string
Table::fixed(double v, int decimals)
{
    return csprintf("%.*f", decimals, v);
}

std::string
Table::integer(long long v)
{
    return csprintf("%lld", v);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c)
        width[c] = columns[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < columns.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < columns.size(); ++c) {
            os << " " << cells[c];
            for (std::size_t k = cells[c].size(); k < width[c]; ++k)
                os << ' ';
            os << " |";
        }
        os << "\n";
    };

    os << "\n== " << title << " ==\n";
    emit_row(columns);
    os << "|";
    for (std::size_t c = 0; c < columns.size(); ++c) {
        for (std::size_t k = 0; k < width[c] + 2; ++k)
            os << '-';
        os << "|";
    }
    os << "\n";
    for (const auto &row : rows)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            // Quote cells containing commas or quotes.
            if (cells[c].find_first_of(",\"") != std::string::npos) {
                os << '"';
                for (char ch : cells[c]) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << cells[c];
            }
        }
        os << "\n";
    };
    emit(columns);
    for (const auto &row : rows)
        emit(row);
}

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--csv") == 0) {
            opts.csv = true;
        } else if (std::strncmp(arg, "--seed=", 7) == 0) {
            opts.seed = std::strtoull(arg + 7, nullptr, 0);
            opts.seedSet = true;
        } else {
            fatal("unknown bench flag '%s' (supported: --csv --seed=N)",
                  arg);
        }
    }
    return opts;
}

void
emitTable(const Table &t, const BenchOptions &opts)
{
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
}

} // namespace vsync
