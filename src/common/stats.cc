#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace vsync
{

RunningStat::RunningStat()
{
    reset();
}

void
RunningStat::reset()
{
    n = 0;
    m = 0.0;
    m2 = 0.0;
    minValue = std::numeric_limits<double>::infinity();
    maxValue = -std::numeric_limits<double>::infinity();
    total = 0.0;
}

void
RunningStat::add(double x)
{
    ++n;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
    minValue = std::min(minValue, x);
    maxValue = std::max(maxValue, x);
    total += x;
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.m - m;
    const double combined = na + nb;
    m += delta * nb / combined;
    m2 += other.m2 + delta * delta * na * nb / combined;
    n += other.n;
    minValue = std::min(minValue, other.minValue);
    maxValue = std::max(maxValue, other.maxValue);
    total += other.total;
}

double
RunningStat::variance() const
{
    return n >= 2 ? m2 / static_cast<double>(n) : 0.0;
}

double
RunningStat::sampleVariance() const
{
    return n >= 2 ? m2 / static_cast<double>(n - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
SampleSet::add(double x)
{
    samples.push_back(x);
    sorted = false;
    running.add(x);
}

double
SampleSet::quantile(double q) const
{
    VSYNC_ASSERT(!samples.empty(), "quantile of empty sample set");
    VSYNC_ASSERT(q >= 0.0 && q <= 1.0, "quantile %g out of [0,1]", q);
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo_idx = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi_idx = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo_idx);
    return samples[lo_idx] * (1.0 - frac) + samples[hi_idx] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo(lo), hi(hi), counts(bins, 0)
{
    VSYNC_ASSERT(bins > 0, "histogram needs at least one bin");
    VSYNC_ASSERT(hi > lo, "histogram range [%g, %g) is empty", lo, hi);
}

void
Histogram::add(double x)
{
    ++n;
    if (x < lo) {
        ++under;
        return;
    }
    if (x >= hi) {
        ++over;
        return;
    }
    const double width = (hi - lo) / static_cast<double>(counts.size());
    auto idx = static_cast<std::size_t>((x - lo) / width);
    if (idx >= counts.size())
        idx = counts.size() - 1; // guard against FP edge rounding
    ++counts[idx];
}

double
Histogram::binCenter(std::size_t i) const
{
    const double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + (static_cast<double>(i) + 0.5) * width;
}

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double
inverseNormalCdf(double p)
{
    VSYNC_ASSERT(p > 0.0 && p < 1.0, "quantile prob %g out of (0,1)", p);

    // Acklam's rational approximation.
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};

    const double p_low = 0.02425;
    double x;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                  q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement step.
    const double e = normalCdf(x) - p;
    const double u =
        e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
    x = x - u / (1.0 + x * u / 2.0);
    return x;
}

} // namespace vsync
