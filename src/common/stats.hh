/**
 * @file
 * Streaming statistics, histograms and percentiles.
 */

#ifndef VSYNC_COMMON_STATS_HH
#define VSYNC_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace vsync
{

/**
 * Numerically stable streaming mean/variance/min/max accumulator
 * (Welford's algorithm).
 */
class RunningStat
{
  public:
    RunningStat();

    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void reset();

    /** Number of observations. */
    std::size_t count() const { return n; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n ? m : 0.0; }

    /** Population variance (0 when fewer than two samples). */
    double variance() const;

    /** Sample (n-1) variance (0 when fewer than two samples). */
    double sampleVariance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return minValue; }

    /** Largest observation (-inf when empty). */
    double max() const { return maxValue; }

    /** Sum of all observations. */
    double sum() const { return total; }

  private:
    std::size_t n;
    double m;
    double m2;
    double minValue;
    double maxValue;
    double total;
};

/**
 * A collection of samples with quantile queries. Keeps all samples; fine
 * for the experiment sizes used in this project.
 */
class SampleSet
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples. */
    std::size_t count() const { return samples.size(); }

    /**
     * Quantile by linear interpolation between closest ranks.
     *
     * @param q quantile in [0, 1].
     * @pre at least one sample present.
     */
    double quantile(double q) const;

    /** Median (quantile 0.5). */
    double median() const { return quantile(0.5); }

    /** Streaming statistics over the same samples. */
    const RunningStat &stat() const { return running; }

    /** Read-only access to the raw samples (unsorted). */
    const std::vector<double> &values() const { return samples; }

  private:
    mutable std::vector<double> samples;
    mutable bool sorted = false;
    RunningStat running;
};

/** Fixed-width histogram over [lo, hi) with overflow/underflow bins. */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower edge of the first bin.
     * @param hi exclusive upper edge of the last bin.
     * @param bins number of bins. @pre bins > 0 and hi > lo.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one observation. */
    void add(double x);

    /** Count in bin @p i. */
    std::size_t binCount(std::size_t i) const { return counts.at(i); }

    /** Center value of bin @p i. */
    double binCenter(std::size_t i) const;

    /** Number of bins. */
    std::size_t binCount() const { return counts.size(); }

    /** Observations below the histogram range. */
    std::size_t underflow() const { return under; }

    /** Observations at or above the histogram range. */
    std::size_t overflow() const { return over; }

    /** Total observations including under/overflow. */
    std::size_t total() const { return n; }

  private:
    double lo;
    double hi;
    std::vector<std::size_t> counts;
    std::size_t under = 0;
    std::size_t over = 0;
    std::size_t n = 0;
};

/**
 * Inverse of the standard normal CDF (quantile function), accurate to
 * ~1e-9 over (0, 1) (Acklam's rational approximation plus one Halley
 * refinement step).
 *
 * @pre 0 < p < 1.
 */
double inverseNormalCdf(double p);

/** Standard normal CDF. */
double normalCdf(double x);

} // namespace vsync

#endif // VSYNC_COMMON_STATS_HH
