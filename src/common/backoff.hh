/**
 * @file
 * Deterministic exponential backoff with RNG-driven jitter.
 *
 * Retry loops need two properties that ad-hoc sleeps do not give:
 * bounded growth (the k-th delay follows base * multiplier^k but never
 * exceeds cap, so a long outage cannot push the next probe out by
 * hours) and decorrelation (independent clients retrying the same dead
 * peer must not fire in lock step). Jitter provides the second -- and
 * because it is drawn from an Rng substream the *caller* seeds, the
 * whole delay sequence is a pure function of (config, seed): two runs
 * of the same experiment back off identically, which is what lets the
 * distributed tests assert on shard schedules at all.
 *
 * The jittered delay for attempt k (0-based) is
 *
 *   envelope(k) = min(cap, base * multiplier^k)
 *   delay(k)    = envelope(k) * (1 - jitterFraction * u_k)
 *
 * with u_k ~ U[0, 1) from the instance's private stream, so delay(k)
 * lies in (envelope(k) * (1 - jitterFraction), envelope(k)] -- jitter
 * only ever shortens the wait, keeping the envelope a hard upper
 * bound.
 */

#ifndef VSYNC_COMMON_BACKOFF_HH
#define VSYNC_COMMON_BACKOFF_HH

#include <cstdint>

#include "common/rng.hh"

namespace vsync
{

/** Shape of a backoff schedule. */
struct BackoffConfig
{
    /** First delay, seconds (the k=0 envelope). */
    double baseSeconds = 0.05;
    /** Envelope growth per attempt. */
    double multiplier = 2.0;
    /** Hard ceiling on any delay, seconds. */
    double capSeconds = 5.0;
    /**
     * Fraction of the envelope the jitter may shave off, in [0, 1].
     * 0 disables jitter (fully periodic retries).
     */
    double jitterFraction = 0.5;

    /** Fatal on nonsensical shapes (negative base/cap, multiplier
     *  < 1, jitterFraction outside [0, 1]). */
    void validate() const;
};

/**
 * One retry schedule. Not thread safe; give each retry loop (each
 * worker connection, say) its own instance, seeded so sibling
 * schedules are decorrelated: Backoff(cfg, Rng::forTrial(seed, k))
 * for worker k is the idiom.
 */
class Backoff
{
  public:
    /** @param rng private jitter stream (moved in; the schedule owns
     *  its randomness so callers cannot perturb it between calls). */
    explicit Backoff(const BackoffConfig &cfg = {}, Rng rng = Rng());

    /**
     * The delay to sleep before the next attempt, advancing the
     * schedule. Deterministic: call i returns the same value on every
     * run with the same (config, rng seed).
     */
    double nextSeconds();

    /** Envelope (jitter-free upper bound) of attempt @p attempt. */
    double envelopeSeconds(unsigned attempt) const;

    /** Attempts scheduled so far (calls to nextSeconds). */
    unsigned attempts() const { return attempt; }

    /** Restart the schedule at attempt 0 (e.g. after a success).
     *  The jitter stream is *not* rewound: a reset schedule still
     *  produces fresh, decorrelated jitter. */
    void reset() { attempt = 0; }

  private:
    BackoffConfig cfg;
    Rng rng;
    unsigned attempt = 0;
};

} // namespace vsync

#endif // VSYNC_COMMON_BACKOFF_HH
