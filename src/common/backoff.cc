#include "common/backoff.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsync
{

void
BackoffConfig::validate() const
{
    if (!(baseSeconds >= 0.0))
        fatal("BackoffConfig.baseSeconds must be >= 0, got %g",
              baseSeconds);
    if (!(capSeconds >= baseSeconds))
        fatal("BackoffConfig.capSeconds (%g) must be >= baseSeconds "
              "(%g)",
              capSeconds, baseSeconds);
    if (!(multiplier >= 1.0))
        fatal("BackoffConfig.multiplier must be >= 1, got %g",
              multiplier);
    if (!(jitterFraction >= 0.0 && jitterFraction <= 1.0))
        fatal("BackoffConfig.jitterFraction must be in [0, 1], got %g",
              jitterFraction);
}

Backoff::Backoff(const BackoffConfig &config, Rng jitter)
    : cfg(config), rng(std::move(jitter))
{
    cfg.validate();
}

double
Backoff::envelopeSeconds(unsigned which) const
{
    // Multiply up rather than pow(): once the envelope passes the cap
    // it stays clamped, so the loop runs at most log_mult(cap/base)
    // iterations and can never overflow to inf.
    double env = cfg.baseSeconds;
    for (unsigned k = 0; k < which && env < cfg.capSeconds; ++k)
        env *= cfg.multiplier;
    return std::min(env, cfg.capSeconds);
}

double
Backoff::nextSeconds()
{
    const double env = envelopeSeconds(attempt);
    ++attempt;
    // Jitter shortens, never lengthens: the envelope stays a hard
    // bound. The draw happens even when jitterFraction == 0 so the
    // stream position -- and therefore every later delay -- does not
    // depend on the config, only on the seed.
    const double u = rng.uniform();
    return env * (1.0 - cfg.jitterFraction * u);
}

} // namespace vsync
