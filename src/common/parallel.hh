/**
 * @file
 * A small reusable thread pool with a blocking parallel-for.
 *
 * The pool exists to fan deterministic Monte-Carlo trials across cores:
 * work is identified by index, each index derives its own RNG substream
 * (see Rng::forTrial), and results are written into per-index slots, so
 * the *values* produced are independent of the thread count and of the
 * dynamic chunk schedule. Only wall-clock time changes with threads.
 *
 * A pool of size 1 runs everything inline on the caller; a pool of size
 * k uses the caller plus k-1 workers, so "1 thread" benchmarks measure
 * the true serial cost with no pool overhead.
 */

#ifndef VSYNC_COMMON_PARALLEL_HH
#define VSYNC_COMMON_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vsync
{

/**
 * Default worker count: the VSYNC_THREADS environment variable when set
 * to an integer in [1, maxThreadCount], else
 * std::thread::hardware_concurrency(), never less than 1. Malformed or
 * out-of-range values (trailing garbage, 0, negatives, values past the
 * clamp) are rejected with a warn() and fall back to the hardware
 * count.
 */
unsigned defaultThreadCount();

/** Largest thread count VSYNC_THREADS may request. */
inline constexpr unsigned maxThreadCount = 1024;

/**
 * A cooperative cancellation flag shared between a job's submitter and
 * the pool. Once cancelled, parallelForRange stops handing out chunks:
 * chunks already running finish, chunks not yet started never run, and
 * the call returns normally -- the caller decides what a partially
 * covered index space means (serve::SweepService flags such results as
 * partial). cancel() may be called from any thread, including from
 * inside a running chunk.
 */
class CancelToken
{
  public:
    /** Request cancellation (sticky until reset()). */
    void cancel() { flag.store(true, std::memory_order_relaxed); }

    /** True once cancel() was called. */
    bool cancelled() const
    {
        return flag.load(std::memory_order_relaxed);
    }

    /** Re-arm the token for a new job. Only call while no job that
     *  watches this token is in flight. */
    void reset() { flag.store(false, std::memory_order_relaxed); }

  private:
    std::atomic<bool> flag{false};
};

/**
 * Observer hooks around chunk execution, called on the executing
 * thread itself (worker 0 is the calling thread). The observability
 * layer's obs::TracePoolObserver turns these into per-thread trace
 * tracks; the interface lives here so vs_common never depends on
 * vs_obs.
 */
class PoolObserver
{
  public:
    virtual ~PoolObserver() = default;

    /**
     * A parallelForRange job over [0, n) in chunks of at most
     * @p grain indices is starting; called on the submitting thread
     * before any chunk begins. Default no-op so chunk-only observers
     * (tracing) need not care; obs::PoolMetricsObserver uses it for
     * queue-depth accounting.
     */
    virtual void
    onJobBegin(std::size_t n, std::size_t grain)
    {
        (void)n;
        (void)grain;
    }

    /** The job finished -- every started chunk completed; called on
     *  the submitting thread, even when the job throws or is
     *  cancelled after onJobBegin. */
    virtual void onJobEnd() {}

    /** A chunk [begin, end) is about to run on worker @p worker. */
    virtual void onChunkBegin(unsigned worker, std::size_t begin,
                              std::size_t end) = 0;

    /** The chunk [begin, end) finished on worker @p worker. */
    virtual void onChunkEnd(unsigned worker, std::size_t begin,
                            std::size_t end) = 0;
};

/** A fixed-size thread pool. Not reentrant: parallelFor may not be
 *  called from inside a task running on the same pool. */
class ThreadPool
{
  public:
    /** @param threads total compute threads (caller included);
     *  0 means defaultThreadCount(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total compute threads (the caller counts as one). */
    unsigned threadCount() const { return count; }

    /** Invoked as fn(begin, end) on half-open index ranges. */
    using RangeFn = std::function<void(std::size_t, std::size_t)>;

    /** Invoked as fn(i) on single indices. */
    using IndexFn = std::function<void(std::size_t)>;

    /**
     * Run fn over [0, n) split into chunks of at most @p grain indices,
     * blocking until every started chunk completed. Chunks are
     * scheduled dynamically; callers must make per-index results
     * independent of the schedule (index-derived RNG streams, per-index
     * output slots). The first exception thrown by a chunk is rethrown
     * here, and aborts the job: chunks not yet started are abandoned
     * rather than burning CPU on a doomed job.
     *
     * @param cancel optional cooperative cancellation: once
     *        cancel->cancelled() is observed no further chunks start
     *        and the call returns normally with the index space only
     *        partially covered. The caller is responsible for knowing
     *        which indices ran (nullptr = never cancelled).
     */
    void parallelForRange(std::size_t n, std::size_t grain,
                          const RangeFn &fn,
                          const CancelToken *cancel = nullptr);

    /** Run fn(i) for every i in [0, n) with an automatic grain. */
    void parallelFor(std::size_t n, const IndexFn &fn);

    /**
     * Install a chunk observer (nullptr disables). Must be called
     * while no parallelFor is active; the disabled cost is one branch
     * per chunk.
     */
    void setObserver(PoolObserver *obs);

  private:
    void workerLoop(unsigned worker);
    void runChunks(unsigned worker, PoolObserver *obs,
                   const CancelToken *cancel);
    void recordException();

    unsigned count;
    std::vector<std::thread> workers;
    std::mutex mutex;
    std::condition_variable cvWork;
    std::condition_variable cvDone;
    std::uint64_t generation = 0;
    unsigned workersBusy = 0;
    bool stopping = false;
    PoolObserver *observer = nullptr; // published under `mutex`

    // Current job; valid only while a parallelForRange call is active.
    const RangeFn *jobFn = nullptr;
    std::size_t jobSize = 0;
    std::size_t jobGrain = 1;
    const CancelToken *jobCancel = nullptr; // published under `mutex`
    std::atomic<std::size_t> nextIndex{0};
    // Set by the first failing chunk so the remaining chunks of the
    // job are abandoned instead of executed; the recorded exception is
    // rethrown by parallelForRange.
    std::atomic<bool> jobAbort{false};
    std::exception_ptr firstError;
};

} // namespace vsync

#endif // VSYNC_COMMON_PARALLEL_HH
