/**
 * @file
 * Fundamental scalar types and unit conventions used across vlsisync.
 *
 * Lengths are measured in lambda (the cell pitch): by assumption A2 of the
 * paper a cell occupies a unit (1x1 lambda^2) area, and by A3 a wire has
 * unit width. Times are measured in nanoseconds. Both are plain doubles;
 * the typedefs exist to make interfaces self-documenting.
 */

#ifndef VSYNC_COMMON_TYPES_HH
#define VSYNC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace vsync
{

/** Physical length in lambda units (1 lambda = one cell pitch). */
using Length = double;

/** Time in nanoseconds. */
using Time = double;

/** Identifier of a cell in a communication graph or layout. */
using CellId = std::int32_t;

/** Identifier of a node in a clock tree. */
using NodeId = std::int32_t;

/** Sentinel for "no cell / no node". */
inline constexpr std::int32_t invalidId = -1;

/** One microsecond expressed in the Time unit (ns). */
inline constexpr Time oneMicrosecond = 1e3;

/** One millisecond expressed in the Time unit (ns). */
inline constexpr Time oneMillisecond = 1e6;

/** One second expressed in the Time unit (ns). */
inline constexpr Time oneSecond = 1e9;

/** Positive infinity for times/lengths. */
inline constexpr double infinity = std::numeric_limits<double>::infinity();

} // namespace vsync

#endif // VSYNC_COMMON_TYPES_HH
