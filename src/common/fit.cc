#include "common/fit.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vsync
{

LinearFit
fitLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    VSYNC_ASSERT(xs.size() == ys.size(), "fitLinear size mismatch");
    VSYNC_ASSERT(xs.size() >= 2, "fitLinear needs >= 2 points");

    const double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    LinearFit fit;
    if (std::fabs(denom) < 1e-30) {
        fit.slope = 0.0;
        fit.intercept = sy / n;
        fit.r2 = 0.0;
        return fit;
    }
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    const double mean_y = sy / n;
    double ss_res = 0, ss_tot = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double pred = fit.intercept + fit.slope * xs[i];
        ss_res += (ys[i] - pred) * (ys[i] - pred);
        ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
    }
    fit.r2 = ss_tot > 1e-30 ? std::max(0.0, 1.0 - ss_res / ss_tot) : 1.0;
    return fit;
}

PowerFit
fitPower(const std::vector<double> &xs, const std::vector<double> &ys)
{
    VSYNC_ASSERT(xs.size() == ys.size(), "fitPower size mismatch");
    VSYNC_ASSERT(xs.size() >= 2, "fitPower needs >= 2 points");

    std::vector<double> lx(xs.size()), ly(ys.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        VSYNC_ASSERT(xs[i] > 0 && ys[i] > 0,
                     "fitPower needs positive data (x=%g, y=%g)",
                     xs[i], ys[i]);
        lx[i] = std::log(xs[i]);
        ly[i] = std::log(ys[i]);
    }
    const LinearFit lin = fitLinear(lx, ly);
    PowerFit fit;
    fit.exponent = lin.slope;
    fit.coefficient = std::exp(lin.intercept);
    fit.r2 = lin.r2;
    return fit;
}

std::string
growthLawName(GrowthLaw law)
{
    switch (law) {
      case GrowthLaw::Constant:
        return "O(1)";
      case GrowthLaw::Logarithmic:
        return "O(log n)";
      case GrowthLaw::SquareRoot:
        return "O(sqrt n)";
      case GrowthLaw::Linear:
        return "O(n)";
      case GrowthLaw::Quadratic:
        return "O(n^2)";
    }
    return "?";
}

GrowthLaw
classifyGrowth(const std::vector<double> &ns, const std::vector<double> &ys,
               double flatRatio)
{
    VSYNC_ASSERT(ns.size() == ys.size() && ns.size() >= 2,
                 "classifyGrowth needs matched series of >= 2 points");

    double lo = ys[0], hi = ys[0];
    for (double y : ys) {
        lo = std::min(lo, y);
        hi = std::max(hi, y);
    }
    VSYNC_ASSERT(lo > 0, "classifyGrowth needs positive values");
    if (hi / lo < flatRatio)
        return GrowthLaw::Constant;

    const PowerFit pf = fitPower(ns, ys);
    if (pf.exponent < 0.25) {
        // Growing but sublinearly in every polynomial sense: check whether
        // a log model explains the data better than a flat one.
        std::vector<double> logs(ns.size());
        for (std::size_t i = 0; i < ns.size(); ++i)
            logs[i] = std::log(ns[i]);
        const LinearFit lf = fitLinear(logs, ys);
        return lf.r2 > 0.5 ? GrowthLaw::Logarithmic : GrowthLaw::Constant;
    }
    if (pf.exponent < 0.75)
        return GrowthLaw::SquareRoot;
    if (pf.exponent < 1.5)
        return GrowthLaw::Linear;
    return GrowthLaw::Quadratic;
}

} // namespace vsync
