#include "common/logging.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace vsync
{

namespace
{

/** Render a printf format/arg pair into a std::string. */
std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

std::atomic<int> activeLevel{-1}; // -1: not yet read from env

std::mutex sinkMutex;
LogSinkFn activeSink; // guarded by sinkMutex

int
levelFromEnv()
{
    return static_cast<int>(
        parseLogLevel(std::getenv("VSYNC_LOG_LEVEL"), LogLevel::Info));
}

/**
 * The filter + routing shared by every non-fatal line. @p always_stderr
 * forces stderr output regardless of the sink (panic/fatal).
 */
void
emitLine(LogLevel level, const char *prefix, const std::string &msg,
         bool always_stderr)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    const std::string line = std::string(prefix) + ": " + msg;
    bool sunk = false;
    {
        std::lock_guard<std::mutex> lock(sinkMutex);
        if (activeSink) {
            activeSink(level, line);
            sunk = true;
        }
    }
    if (!sunk || always_stderr)
        std::fprintf(stderr, "%s\n", line.c_str());
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
    }
    return "?";
}

LogLevel
parseLogLevel(const char *s, LogLevel fallback)
{
    if (!s || !*s)
        return fallback;
    std::string lower;
    for (const char *p = s; *p; ++p)
        lower.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
    if (lower == "debug" || lower == "0")
        return LogLevel::Debug;
    if (lower == "info" || lower == "1")
        return LogLevel::Info;
    if (lower == "warn" || lower == "warning" || lower == "2")
        return LogLevel::Warn;
    if (lower == "error" || lower == "3")
        return LogLevel::Error;
    return fallback;
}

LogLevel
logLevel()
{
    int lv = activeLevel.load(std::memory_order_relaxed);
    if (lv < 0) {
        lv = levelFromEnv();
        // Racing first calls compute the same env-derived value.
        activeLevel.store(lv, std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(lv);
}

void
setLogLevel(LogLevel level)
{
    activeLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

void
initLogLevelFromEnv()
{
    activeLevel.store(levelFromEnv(), std::memory_order_relaxed);
}

void
setLogSink(LogSinkFn sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    activeSink = std::move(sink);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(LogLevel::Error, "panic", msg, /*always_stderr=*/true);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(LogLevel::Error, "fatal", msg, /*always_stderr=*/true);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(LogLevel::Warn, "warn", msg, /*always_stderr=*/false);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(LogLevel::Info, "info", msg, /*always_stderr=*/false);
}

void
debugLog(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(LogLevel::Debug, "debug", msg, /*always_stderr=*/false);
}

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace vsync
