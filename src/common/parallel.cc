#include "common/parallel.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace vsync
{

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("VSYNC_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads)
    : count(threads ? threads : defaultThreadCount())
{
    workers.reserve(count - 1);
    for (unsigned i = 0; i + 1 < count; ++i)
        workers.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    cvWork.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::workerLoop(unsigned worker)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        cvWork.wait(lock,
                    [&] { return stopping || generation != seen; });
        if (stopping)
            return;
        seen = generation;
        PoolObserver *obs = observer; // read under the lock
        lock.unlock();
        runChunks(worker, obs);
        lock.lock();
        if (--workersBusy == 0)
            cvDone.notify_all();
    }
}

void
ThreadPool::runChunks(unsigned worker, PoolObserver *obs)
{
    for (;;) {
        const std::size_t begin = nextIndex.fetch_add(jobGrain);
        if (begin >= jobSize)
            return;
        const std::size_t end = std::min(jobSize, begin + jobGrain);
        if (obs)
            obs->onChunkBegin(worker, begin, end);
        try {
            (*jobFn)(begin, end);
        } catch (...) {
            recordException();
        }
        if (obs)
            obs->onChunkEnd(worker, begin, end);
    }
}

void
ThreadPool::recordException()
{
    std::lock_guard<std::mutex> lock(mutex);
    if (!firstError)
        firstError = std::current_exception();
}

void
ThreadPool::parallelForRange(std::size_t n, std::size_t grain,
                             const RangeFn &fn)
{
    VSYNC_ASSERT(grain >= 1, "grain must be positive");
    if (n == 0)
        return;
    if (count == 1 || n <= grain) {
        if (observer)
            observer->onChunkBegin(0, 0, n);
        fn(0, n);
        if (observer)
            observer->onChunkEnd(0, 0, n);
        return;
    }
    PoolObserver *obs;
    {
        std::lock_guard<std::mutex> lock(mutex);
        jobFn = &fn;
        jobSize = n;
        jobGrain = grain;
        nextIndex.store(0, std::memory_order_relaxed);
        firstError = nullptr;
        workersBusy = static_cast<unsigned>(workers.size());
        ++generation;
        obs = observer;
    }
    cvWork.notify_all();
    runChunks(0, obs); // the caller is a compute thread too
    std::unique_lock<std::mutex> lock(mutex);
    cvDone.wait(lock, [&] { return workersBusy == 0; });
    jobFn = nullptr;
    if (firstError)
        std::rethrow_exception(firstError);
}

void
ThreadPool::setObserver(PoolObserver *obs)
{
    std::lock_guard<std::mutex> lock(mutex);
    observer = obs;
}

void
ThreadPool::parallelFor(std::size_t n, const IndexFn &fn)
{
    // Aim for several chunks per thread so dynamic scheduling can
    // balance uneven trial costs.
    const std::size_t grain =
        std::max<std::size_t>(1, n / (8 * static_cast<std::size_t>(count)));
    parallelForRange(n, grain, [&fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            fn(i);
    });
}

} // namespace vsync
