#include "common/parallel.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace vsync
{

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("VSYNC_THREADS")) {
        char *end = nullptr;
        errno = 0;
        const long v = std::strtol(env, &end, 10);
        // Reject anything that is not exactly one in-range integer:
        // trailing garbage ("8abc") used to be silently accepted and
        // values past LONG/unsigned range ("4294967297") used to wrap
        // through the cast below.
        if (end == env || *end != '\0') {
            warn("VSYNC_THREADS='%s' is not an integer; using the "
                 "hardware count", env);
        } else if (errno == ERANGE || v < 1 ||
                   v > static_cast<long>(maxThreadCount)) {
            warn("VSYNC_THREADS='%s' outside [1, %u]; using the "
                 "hardware count", env, maxThreadCount);
        } else {
            return static_cast<unsigned>(v);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads)
    : count(threads ? threads : defaultThreadCount())
{
    workers.reserve(count - 1);
    for (unsigned i = 0; i + 1 < count; ++i)
        workers.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    cvWork.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::workerLoop(unsigned worker)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        cvWork.wait(lock,
                    [&] { return stopping || generation != seen; });
        if (stopping)
            return;
        seen = generation;
        PoolObserver *obs = observer; // read under the lock
        const CancelToken *cancel = jobCancel;
        lock.unlock();
        runChunks(worker, obs, cancel);
        lock.lock();
        if (--workersBusy == 0)
            cvDone.notify_all();
    }
}

void
ThreadPool::runChunks(unsigned worker, PoolObserver *obs,
                      const CancelToken *cancel)
{
    for (;;) {
        // One failed chunk (or an external cancel) abandons the rest
        // of the job; chunks already executing run to completion.
        if (jobAbort.load(std::memory_order_relaxed) ||
            (cancel && cancel->cancelled())) {
            return;
        }
        const std::size_t begin = nextIndex.fetch_add(jobGrain);
        if (begin >= jobSize)
            return;
        const std::size_t end = std::min(jobSize, begin + jobGrain);
        if (obs)
            obs->onChunkBegin(worker, begin, end);
        try {
            (*jobFn)(begin, end);
        } catch (...) {
            recordException();
        }
        if (obs)
            obs->onChunkEnd(worker, begin, end);
    }
}

void
ThreadPool::recordException()
{
    jobAbort.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex);
    if (!firstError)
        firstError = std::current_exception();
}

void
ThreadPool::parallelForRange(std::size_t n, std::size_t grain,
                             const RangeFn &fn,
                             const CancelToken *cancel)
{
    VSYNC_ASSERT(grain >= 1, "grain must be positive");
    if (n == 0)
        return;
    if (count == 1 || n <= grain) {
        PoolObserver *obs;
        {
            // setObserver may race this call from another thread; the
            // observer is published under `mutex` on both paths.
            std::lock_guard<std::mutex> lock(mutex);
            obs = observer;
        }
        if (cancel && cancel->cancelled())
            return;
        if (obs) {
            obs->onJobBegin(n, grain);
            obs->onChunkBegin(0, 0, n);
        }
        try {
            fn(0, n);
        } catch (...) {
            // Keep begin/end paired for the observer even when the
            // chunk throws; the exception still propagates unchanged.
            if (obs) {
                obs->onChunkEnd(0, 0, n);
                obs->onJobEnd();
            }
            throw;
        }
        if (obs) {
            obs->onChunkEnd(0, 0, n);
            obs->onJobEnd();
        }
        return;
    }
    PoolObserver *obs;
    {
        // Publish onJobBegin before ++generation releases the workers,
        // so no chunk hook can precede the job hook. setObserver may
        // not be called while a job is active, so reading the observer
        // here and reusing it below cannot go stale.
        std::lock_guard<std::mutex> lock(mutex);
        obs = observer;
    }
    if (obs)
        obs->onJobBegin(n, grain);
    {
        std::lock_guard<std::mutex> lock(mutex);
        jobFn = &fn;
        jobSize = n;
        jobGrain = grain;
        jobCancel = cancel;
        nextIndex.store(0, std::memory_order_relaxed);
        jobAbort.store(false, std::memory_order_relaxed);
        firstError = nullptr;
        workersBusy = static_cast<unsigned>(workers.size());
        ++generation;
    }
    cvWork.notify_all();
    runChunks(0, obs, cancel); // the caller is a compute thread too
    std::unique_lock<std::mutex> lock(mutex);
    cvDone.wait(lock, [&] { return workersBusy == 0; });
    jobFn = nullptr;
    jobCancel = nullptr;
    lock.unlock();
    if (obs)
        obs->onJobEnd();
    if (firstError)
        std::rethrow_exception(firstError);
}

void
ThreadPool::setObserver(PoolObserver *obs)
{
    std::lock_guard<std::mutex> lock(mutex);
    observer = obs;
}

void
ThreadPool::parallelFor(std::size_t n, const IndexFn &fn)
{
    // Aim for several chunks per thread so dynamic scheduling can
    // balance uneven trial costs.
    const std::size_t grain =
        std::max<std::size_t>(1, n / (8 * static_cast<std::size_t>(count)));
    parallelForRange(n, grain, [&fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            fn(i);
    });
}

} // namespace vsync
