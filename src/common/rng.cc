#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace vsync
{

using detail::rotl64;

Rng::Rng(std::uint64_t seed)
    : cachedNormal(0.0), hasCachedNormal(false), seedValue(seed)
{
    SplitMix64 sm(seed);
    for (auto &word : s)
        word = sm.next();
}

std::uint64_t
Rng::next()
{
    ++drawCount;
    const std::uint64_t result = rotl64(s[0] + s[3], 23) + s[0];
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl64(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    VSYNC_ASSERT(lo <= hi, "bad uniform range [%g, %g)", lo, hi);
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    VSYNC_ASSERT(n > 0, "uniformInt needs n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ULL - (~0ULL % n);
    std::uint64_t x;
    do {
        x = next();
    } while (x >= limit);
    return x % n;
}

double
Rng::normal()
{
    if (hasCachedNormal) {
        hasCachedNormal = false;
        return cachedNormal;
    }
    // Box-Muller transform; u1 is kept away from zero so log is finite.
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal = r * std::sin(theta);
    hasCachedNormal = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    VSYNC_ASSERT(mean > 0, "exponential needs mean > 0, got %g", mean);
    double u;
    do {
        u = uniform();
    } while (u <= 1e-300);
    return -mean * std::log(u);
}

Rng
Rng::forTrial(std::uint64_t seed, std::uint64_t trial)
{
    // Two SplitMix64 passes: the first whitens the user seed, the
    // second folds in the trial counter. Consecutive trial indices end
    // up in unrelated regions of the xoshiro seed space.
    SplitMix64 whiten(seed);
    const std::uint64_t base = whiten.next();
    SplitMix64 mix(base ^
                   (trial * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL));
    return Rng(mix.next());
}

Rng
Rng::deriveStream(std::uint64_t salt) const
{
    // Mix the original seed with the salt through SplitMix64 so that
    // derived streams do not depend on how many draws were consumed.
    SplitMix64 sm(seedValue ^ (salt * 0x9e3779b97f4a7c15ULL + 0x1234567ULL));
    std::uint64_t derived = sm.next() ^ rotl64(sm.next(), 13);
    return Rng(derived);
}

} // namespace vsync
