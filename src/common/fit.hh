/**
 * @file
 * Least-squares fitting and asymptotic growth-law classification.
 *
 * The benches reproduce the paper's *shapes* rather than absolute numbers:
 * Theorem 3 predicts a clock period that is O(1) in array size while the
 * Section V-B lower bound predicts Omega(n) skew growth. These helpers
 * turn a measured series (n_i, y_i) into a named growth class so tests
 * and tables can assert those shapes mechanically.
 */

#ifndef VSYNC_COMMON_FIT_HH
#define VSYNC_COMMON_FIT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace vsync
{

/** Result of an ordinary least-squares line fit y = intercept + slope*x. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination in [0, 1]. */
    double r2 = 0.0;
};

/**
 * Fit y = intercept + slope * x by ordinary least squares.
 *
 * @pre xs.size() == ys.size() and xs.size() >= 2.
 */
LinearFit fitLinear(const std::vector<double> &xs,
                    const std::vector<double> &ys);

/** Result of a power-law fit y = c * x^exponent (log-log regression). */
struct PowerFit
{
    double exponent = 0.0;
    double coefficient = 0.0;
    double r2 = 0.0;
};

/**
 * Fit y = c * x^p via linear regression in log-log space.
 *
 * @pre all xs and ys strictly positive; sizes equal and >= 2.
 */
PowerFit fitPower(const std::vector<double> &xs,
                  const std::vector<double> &ys);

/** Named asymptotic growth classes used by the experiment harness. */
enum class GrowthLaw
{
    Constant,    ///< y = Theta(1)
    Logarithmic, ///< y = Theta(log n)
    SquareRoot,  ///< y = Theta(sqrt(n))
    Linear,      ///< y = Theta(n)
    Quadratic,   ///< y = Theta(n^2)
};

/** Human-readable name of a growth law ("O(1)", "O(n)", ...). */
std::string growthLawName(GrowthLaw law);

/**
 * Classify the growth of y as a function of n.
 *
 * A series whose relative spread (max/min) stays below @p flatRatio is
 * declared Constant; otherwise the power-law exponent decides between
 * Logarithmic (p < 0.25 but clearly growing), SquareRoot
 * (0.25 <= p < 0.75), Linear (0.75 <= p < 1.5) and Quadratic (p >= 1.5).
 *
 * @param ns problem sizes (strictly positive, increasing).
 * @param ys measured values (strictly positive).
 * @param flatRatio spread threshold under which the series is flat.
 */
GrowthLaw classifyGrowth(const std::vector<double> &ns,
                         const std::vector<double> &ys,
                         double flatRatio = 2.0);

} // namespace vsync

#endif // VSYNC_COMMON_FIT_HH
