/**
 * @file
 * Plain-text table emission for the benchmark harness.
 *
 * Every bench binary reproduces one of the paper's figures or tables by
 * printing a series of rows; Table handles alignment, an optional title,
 * and CSV output so results can be replotted.
 */

#ifndef VSYNC_COMMON_TABLE_HH
#define VSYNC_COMMON_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace vsync
{

/** A simple column-aligned text table. */
class Table
{
  public:
    /**
     * @param title table title printed above the header.
     * @param columns column header names.
     */
    Table(std::string title, std::vector<std::string> columns);

    /** Append a row; missing cells are blank, extras are dropped. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with %.4g (benches' default numeric format). */
    static std::string num(double v);

    /** Format a double with fixed decimals. */
    static std::string fixed(double v, int decimals);

    /** Format an integer. */
    static std::string integer(long long v);

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (header row then data rows). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows.size(); }

    /** Title supplied at construction. */
    const std::string &tableTitle() const { return title; }

  private:
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Parse bench-harness command line flags.
 *
 * Supported flags: "--csv" (emit CSV instead of aligned text) and
 * "--seed=<u64>" (override the experiment's default seed).
 */
struct BenchOptions
{
    bool csv = false;
    std::uint64_t seed = 0;
    bool seedSet = false;

    /** Parse argv; unknown flags are fatal(). */
    static BenchOptions parse(int argc, char **argv);
};

/** Print @p t to stdout honouring @p opts (CSV vs aligned). */
void emitTable(const Table &t, const BenchOptions &opts);

} // namespace vsync

#endif // VSYNC_COMMON_TABLE_HH
