#include "desim/elements.hh"

#include "common/logging.hh"

namespace vsync::desim
{

DelayElement::DelayElement(Simulator &sim, Signal &in, Signal &out,
                           EdgeDelays delays, bool invert)
    : sim(sim), out(out), edgeDelays(delays), invert(invert)
{
    VSYNC_ASSERT(delays.rise >= 0.0 && delays.fall >= 0.0,
                 "negative element delay (rise=%g fall=%g)",
                 delays.rise, delays.fall);
    in.onChange([this](Time t, bool v) { onInput(t, v); });
}

void
DelayElement::setDelayScale(double scale)
{
    VSYNC_ASSERT(scale > 0.0, "non-positive delay scale %g", scale);
    driftScale = scale;
}

void
DelayElement::onInput(Time t, bool v)
{
    if (dead)
        return;
    const bool out_value = invert ? !v : v;
    Time delay = (out_value ? edgeDelays.rise : edgeDelays.fall) *
                 driftScale;
    if (jitter)
        delay += jitter();
    if (delay < 0.0)
        delay = 0.0;
    const Time at = t + delay;

    // Inertial filtering: if the previous output event has not fired
    // yet and this one follows it by less than the minimum pulse width
    // with opposite polarity, the pulse between them is unphysical --
    // cancel both (the stage never switches).
    if (minPulse > 0.0 && pending.cancelled && !*pending.cancelled &&
        pending.at >= sim.now() && out_value != pending.value &&
        at - pending.at < minPulse) {
        *pending.cancelled = true;
        pending.cancelled.reset();
        ++swallowed;
        return;
    }

    auto cancelled = std::make_shared<bool>(false);
    pending.at = at;
    pending.value = out_value;
    pending.cancelled = cancelled;

    Signal *target = &out;
    sim.scheduleAt(at, [target, out_value, at, cancelled]() {
        if (!*cancelled)
            target->set(at, out_value);
    });
    if (obs::SimProbe *p = sim.probe())
        p->onElementFired(this, t);
}

} // namespace vsync::desim
