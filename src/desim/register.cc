#include "desim/register.hh"

#include "common/logging.hh"

namespace vsync::desim
{

Register::Register(Simulator &sim, Signal &d, Signal &clk, Signal &q,
                   Time setup, Time hold, Time clk_to_q)
    : sim(sim), d(d), q(q), setup(setup), hold(hold), clkToQ(clk_to_q)
{
    VSYNC_ASSERT(setup >= 0.0 && hold >= 0.0 && clk_to_q >= 0.0,
                 "negative register timing");
    clk.onChange([this](Time t, bool v) { onClock(t, v); });
    d.onChange([this](Time t, bool v) { onData(t, v); });
}

void
Register::onClock(Time t, bool v)
{
    if (!v)
        return; // only rising edges capture
    ++edges;
    edgeTimeList.push_back(t);
    lastEdge = t;

    const Time since_data = t - lastDataChange;
    if (since_data < setup) {
        violationList.push_back({t, true, since_data});
    }

    // Capture and propagate to Q.
    const bool value = d.value();
    captured.push_back(value);
    Signal *out = &q;
    const Time at = t + clkToQ;
    sim.scheduleAt(at, [out, value, at]() { out->set(at, value); });
}

void
Register::onData(Time t, bool v)
{
    (void)v;
    lastDataChange = t;
    const Time since_edge = t - lastEdge;
    if (since_edge >= 0.0 && since_edge < hold) {
        violationList.push_back({t, false, since_edge});
    }
}

} // namespace vsync::desim
