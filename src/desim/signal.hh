/**
 * @file
 * Boolean signals with change notification.
 */

#ifndef VSYNC_DESIM_SIGNAL_HH
#define VSYNC_DESIM_SIGNAL_HH

#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vsync::desim
{

class Simulator;

/**
 * A single-bit signal. Writing a new value notifies listeners
 * immediately (zero-delay); delay elements model their latency by
 * scheduling the write itself.
 */
class Signal
{
  public:
    /** (time, new value) change listener. */
    using Listener = std::function<void(Time, bool)>;

    explicit Signal(std::string name = "", bool initial = false)
        : signalName(std::move(name)), current(initial)
    {
    }

    /** Current logic value. */
    bool value() const { return current; }

    /** Time of the most recent value change (-inf before any). */
    Time lastChange() const { return lastChangeTime; }

    /** Number of value changes so far. */
    std::uint64_t transitions() const { return transitionCount; }

    /** Register a change listener. */
    void onChange(Listener fn) { listeners.push_back(std::move(fn)); }

    /**
     * Drive the signal to @p v at time @p t. No-op when the value is
     * unchanged or the signal is stuck. Listeners run synchronously.
     */
    void set(Time t, bool v);

    /**
     * Freeze the signal at @p v from time @p t on (a stuck-at fault):
     * the value changes to @p v now (listeners notified as usual) and
     * every later set() is ignored until releaseStuck(). This is the
     * fault subsystem's stuck-at-clock-net seam.
     */
    void forceStuck(Time t, bool v);

    /** Undo forceStuck (the next set() takes effect normally). */
    void releaseStuck() { stuck = false; }

    /** True while the signal is frozen by forceStuck. */
    bool isStuck() const { return stuck; }

    /** Signal name (for diagnostics). */
    const std::string &name() const { return signalName; }

  private:
    std::string signalName;
    bool current;
    bool stuck = false;
    Time lastChangeTime = -infinity;
    std::uint64_t transitionCount = 0;
    std::vector<Listener> listeners;
};

} // namespace vsync::desim

#endif // VSYNC_DESIM_SIGNAL_HH
