#include "desim/clock_source.hh"

#include "common/logging.hh"

namespace vsync::desim
{

PeriodicClock::PeriodicClock(Simulator &sim, Signal &out, Time period,
                             int cycles, Time pulse_width, Time start)
    : clockPeriod(period)
{
    VSYNC_ASSERT(period > 0.0, "clock period must be positive, got %g",
                 period);
    VSYNC_ASSERT(cycles >= 0, "negative cycle count %d", cycles);
    if (pulse_width < 0.0)
        pulse_width = period / 2.0;
    VSYNC_ASSERT(pulse_width > 0.0 && pulse_width < period,
                 "pulse width %g outside (0, period)", pulse_width);

    Signal *target = &out;
    for (int k = 0; k < cycles; ++k) {
        const Time rise = start + k * period;
        const Time fall = rise + pulse_width;
        rises.push_back(rise);
        sim.scheduleAt(rise, [target, rise]() { target->set(rise, true); });
        sim.scheduleAt(fall, [target, fall]() {
            target->set(fall, false);
        });
    }
}

} // namespace vsync::desim
