/**
 * @file
 * A minimal discrete-event simulation kernel.
 *
 * Events are (time, callback) pairs processed in time order; ties are
 * broken by insertion order so runs are fully deterministic. The kernel
 * underlies the circuit-level experiments: pipelined clock propagation
 * (several events in flight on a buffered tree, A7/A8), the Section VII
 * inverter-string chip, register setup/hold failure detection, and the
 * Section VI handshake network.
 */

#ifndef VSYNC_DESIM_SIMULATOR_HH
#define VSYNC_DESIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "obs/probe.hh"

namespace vsync::desim
{

/** Discrete-event simulator with a deterministic event order. */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    Simulator() = default;

    /** Current simulation time (ns). */
    Time now() const { return currentTime; }

    /** Schedule @p fn to run @p delay after now. @pre delay >= 0. */
    void schedule(Time delay, Callback fn);

    /**
     * Schedule @p fn at absolute time @p t. @pre t >= now.
     *
     * t == now() is legal: a zero-delay event is queued behind every
     * already-queued event at the current time (insertion order breaks
     * ties) and runs within the same run() call, after the currently
     * executing callback returns.
     */
    void scheduleAt(Time t, Callback fn);

    /**
     * Run until the event queue drains or @p until is reached.
     *
     * Boundary semantics (pinned by test_desim):
     *  - the stop time is *inclusive*: events scheduled exactly at
     *    @p until are processed by this call (the queue condition is
     *    time <= until), and only events strictly later stay queued;
     *  - when the queue drains before a finite @p until, now() advances
     *    to @p until (the horizon is fully consumed); with the default
     *    infinite horizon now() rests at the last processed event.
     *
     * @param until stop time (events after it stay queued); infinity
     *              runs to completion.
     * @return number of events processed by this call.
     */
    std::uint64_t run(Time until = infinity);

    /** True when no events are pending. */
    bool idle() const { return queue.empty(); }

    /** Total events processed since construction. */
    std::uint64_t eventsProcessed() const { return processed; }

    /**
     * Attach an observability probe (nullptr detaches). While
     * attached, run() reports every dispatched event (with the queue
     * depth), measures wall time, and delay elements report their
     * fires; detached, the hot loop pays exactly one branch per event.
     */
    void setProbe(obs::SimProbe *p) { simProbe = p; }

    /** The attached probe (nullptr when observability is off). */
    obs::SimProbe *probe() const { return simProbe; }

  private:
    struct Event
    {
        Time time;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue;
    Time currentTime = 0.0;
    std::uint64_t nextSeq = 0;
    std::uint64_t processed = 0;
    obs::SimProbe *simProbe = nullptr;
};

} // namespace vsync::desim

#endif // VSYNC_DESIM_SIMULATOR_HH
