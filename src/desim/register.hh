/**
 * @file
 * Edge-triggered registers with setup/hold violation detection.
 *
 * Clock skew causes synchronization failure exactly here: a register
 * samples its data input on the clock's rising edge, and if the data
 * changes within the setup window before or the hold window after the
 * edge, the captured value is undefined. The detector records every
 * violation so experiments can count failures as a function of skew and
 * period.
 */

#ifndef VSYNC_DESIM_REGISTER_HH
#define VSYNC_DESIM_REGISTER_HH

#include <cstdint>
#include <vector>

#include "desim/signal.hh"
#include "desim/simulator.hh"

namespace vsync::desim
{

/** A recorded setup or hold violation. */
struct TimingViolation
{
    Time at = 0.0;
    /** True for a setup violation, false for hold. */
    bool setup = true;
    /** Data-change-to-edge (setup) or edge-to-data-change (hold)
     *  separation that violated the window. */
    Time separation = 0.0;
};

/** A rising-edge D flip-flop. */
class Register
{
  public:
    /**
     * @param sim   simulator.
     * @param d     data input.
     * @param clk   clock input (rising edge captures).
     * @param q     output, driven clkToQ after each capturing edge.
     * @param setup minimum data stability before the edge (ns).
     * @param hold  minimum data stability after the edge (ns).
     * @param clkToQ clock-to-output delay (ns).
     */
    Register(Simulator &sim, Signal &d, Signal &clk, Signal &q,
             Time setup, Time hold, Time clk_to_q);

    Register(const Register &) = delete;
    Register &operator=(const Register &) = delete;

    /** Violations recorded so far. */
    const std::vector<TimingViolation> &violations() const
    {
        return violationList;
    }

    /** Number of capturing (rising) clock edges seen. */
    std::uint64_t edgesSeen() const { return edges; }

    /** Times at which rising clock edges arrived. */
    const std::vector<Time> &edgeTimes() const { return edgeTimeList; }

    /** Value captured at each rising edge (same order as
     *  edgeTimes()). */
    const std::vector<bool> &capturedValues() const { return captured; }

  private:
    Simulator &sim;
    Signal &d;
    Signal &q;
    Time setup;
    Time hold;
    Time clkToQ;

    Time lastDataChange = -infinity;
    Time lastEdge = -infinity;
    std::uint64_t edges = 0;
    std::vector<TimingViolation> violationList;
    std::vector<Time> edgeTimeList;
    std::vector<bool> captured;

    void onClock(Time t, bool v);
    void onData(Time t, bool v);
};

} // namespace vsync::desim

#endif // VSYNC_DESIM_REGISTER_HH
