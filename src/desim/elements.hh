/**
 * @file
 * Delay elements: wires, buffers and inverters.
 *
 * All three propagate transitions from an input signal to an output
 * signal after a delay that may differ for rising and falling edges --
 * the asymmetry at the heart of the Section VII analysis. An optional
 * per-transition jitter models a violation of A8 (time-invariant path
 * delay); with jitter, pipelined clocking mis-spaces events, which the
 * ABL3 bench demonstrates.
 */

#ifndef VSYNC_DESIM_ELEMENTS_HH
#define VSYNC_DESIM_ELEMENTS_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "desim/signal.hh"
#include "desim/simulator.hh"

namespace vsync::desim
{

/** Timing of a delay element. */
struct EdgeDelays
{
    /** Output-rising propagation delay (ns). */
    Time rise = 0.0;
    /** Output-falling propagation delay (ns). */
    Time fall = 0.0;

    /** Symmetric delays. */
    static EdgeDelays same(Time d) { return {d, d}; }
};

/**
 * A delay element propagating @p in to @p out, optionally inverting.
 *
 * Transport-delay semantics: every input transition produces an output
 * transition after the corresponding edge delay; events may be in
 * flight simultaneously (that is the point of pipelined clocking).
 */
class DelayElement
{
  public:
    /** Per-transition delay perturbation (models breaking A8). */
    using JitterFn = std::function<Time()>;

    /**
     * @param sim       simulator to schedule on.
     * @param in        input signal (listener attached).
     * @param out       output signal driven by this element.
     * @param delays    rise/fall delays measured at the *output*.
     * @param invert    true for an inverter.
     */
    DelayElement(Simulator &sim, Signal &in, Signal &out,
                 EdgeDelays delays, bool invert = false);

    // The input signal holds a listener bound to `this`; the element
    // must stay at a fixed address (construct in a std::deque or via
    // unique_ptr).
    DelayElement(const DelayElement &) = delete;
    DelayElement &operator=(const DelayElement &) = delete;

    /** Set a jitter source (nullptr restores A8). */
    void setJitter(JitterFn fn) { jitter = std::move(fn); }

    /**
     * Kill or revive the element (a dead-buffer fault): while dead,
     * input transitions are ignored, so nothing downstream of this
     * stage ever switches again. Output events already in flight still
     * fire. Fault-injection seam used by fault::FaultInjector.
     */
    void setDead(bool dead) { this->dead = dead; }

    /** True while the element is killed by setDead. */
    bool isDead() const { return dead; }

    /**
     * Scale both edge delays by @p scale from now on (a delay-drift
     * fault; 1 restores nominal timing). Applied before jitter.
     * Fault-injection seam used by fault::FaultInjector. @pre scale > 0.
     */
    void setDelayScale(double scale);

    /** Current delay-drift factor (1 when nominal). */
    double delayScale() const { return driftScale; }

    /**
     * Enable inertial-delay semantics: an output pulse narrower than
     * @p width is swallowed (the pending opposite transition is
     * cancelled together with the new one), as a real restoring stage
     * would. 0 restores pure transport delay.
     */
    void setMinPulse(Time width) { minPulse = width; }

    /** The element's rise/fall delays. */
    const EdgeDelays &delays() const { return edgeDelays; }

    /** Output transitions swallowed by the inertial filter. */
    std::uint64_t swallowedPulses() const { return swallowed; }

  private:
    Simulator &sim;
    Signal &out;
    EdgeDelays edgeDelays;
    bool invert;
    bool dead = false;
    double driftScale = 1.0;
    JitterFn jitter;
    Time minPulse = 0.0;
    std::uint64_t swallowed = 0;

    /** Pending (not yet fired) output event, for inertial filtering. */
    struct Pending
    {
        Time at = -1.0;
        bool value = false;
        /** Shared cancellation flag read by the scheduled closure. */
        std::shared_ptr<bool> cancelled;
    };
    Pending pending;

    void onInput(Time t, bool v);
};

} // namespace vsync::desim

#endif // VSYNC_DESIM_ELEMENTS_HH
