#include "desim/simulator.hh"

#include "common/logging.hh"

namespace vsync::desim
{

void
Simulator::schedule(Time delay, Callback fn)
{
    VSYNC_ASSERT(delay >= 0.0, "negative event delay %g", delay);
    scheduleAt(currentTime + delay, std::move(fn));
}

void
Simulator::scheduleAt(Time t, Callback fn)
{
    VSYNC_ASSERT(t >= currentTime, "event in the past (%g < %g)",
                 t, currentTime);
    queue.push({t, nextSeq++, std::move(fn)});
}

std::uint64_t
Simulator::run(Time until)
{
    std::uint64_t count = 0;
    while (!queue.empty() && queue.top().time <= until) {
        // Move the callback out before popping so it may schedule more.
        Event ev = queue.top();
        queue.pop();
        currentTime = ev.time;
        ev.fn();
        ++count;
        ++processed;
    }
    if (queue.empty() && until != infinity && currentTime < until)
        currentTime = until;
    return count;
}

} // namespace vsync::desim
