#include "desim/simulator.hh"

#include <chrono>

#include "common/logging.hh"

namespace vsync::desim
{

void
Simulator::schedule(Time delay, Callback fn)
{
    VSYNC_ASSERT(delay >= 0.0, "negative event delay %g", delay);
    scheduleAt(currentTime + delay, std::move(fn));
}

void
Simulator::scheduleAt(Time t, Callback fn)
{
    VSYNC_ASSERT(t >= currentTime, "event in the past (%g < %g)",
                 t, currentTime);
    queue.push({t, nextSeq++, std::move(fn)});
}

std::uint64_t
Simulator::run(Time until)
{
    // Wall-clock accounting exists only while a probe is attached.
    std::chrono::steady_clock::time_point wall0;
    if (simProbe)
        wall0 = std::chrono::steady_clock::now();

    std::uint64_t count = 0;
    while (!queue.empty() && queue.top().time <= until) {
        // Move the callback out before popping so it may schedule more.
        Event ev = queue.top();
        if (simProbe)
            simProbe->onEventDispatched(ev.time, queue.size());
        queue.pop();
        currentTime = ev.time;
        ev.fn();
        ++count;
        ++processed;
    }
    if (queue.empty() && until != infinity && currentTime < until)
        currentTime = until;

    if (simProbe) {
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall0)
                .count();
        simProbe->onRunEnd(currentTime, wall, count);
    }
    return count;
}

} // namespace vsync::desim
