/**
 * @file
 * Periodic clock generation.
 *
 * In pipelined mode the source simply emits edges at the target period
 * regardless of whether earlier events have reached the leaves -- that
 * is what puts several events in flight on the tree (A7). Equipotential
 * operation corresponds to choosing a period no smaller than the full
 * tree settling time (A6), so that at most one event is in flight.
 */

#ifndef VSYNC_DESIM_CLOCK_SOURCE_HH
#define VSYNC_DESIM_CLOCK_SOURCE_HH

#include <vector>

#include "desim/signal.hh"
#include "desim/simulator.hh"

namespace vsync::desim
{

/** Drives a signal with a periodic pulse train. */
class PeriodicClock
{
  public:
    /**
     * Schedule @p cycles full clock cycles on @p out.
     *
     * @param sim    simulator.
     * @param out    signal to drive (must start low).
     * @param period clock period (ns).
     * @param cycles number of rising edges to emit.
     * @param pulse_width high time per cycle; defaults to period / 2.
     * @param start  time of the first rising edge.
     */
    PeriodicClock(Simulator &sim, Signal &out, Time period, int cycles,
                  Time pulse_width = -1.0, Time start = 0.0);

    PeriodicClock(const PeriodicClock &) = delete;
    PeriodicClock &operator=(const PeriodicClock &) = delete;

    /** Times of the emitted rising edges. */
    const std::vector<Time> &risingEdgeTimes() const { return rises; }

    /** The configured period. */
    Time period() const { return clockPeriod; }

  private:
    Time clockPeriod;
    std::vector<Time> rises;
};

} // namespace vsync::desim

#endif // VSYNC_DESIM_CLOCK_SOURCE_HH
