#include "desim/signal.hh"

namespace vsync::desim
{

void
Signal::set(Time t, bool v)
{
    if (stuck || v == current)
        return;
    current = v;
    lastChangeTime = t;
    ++transitionCount;
    for (const Listener &fn : listeners)
        fn(t, v);
}

void
Signal::forceStuck(Time t, bool v)
{
    stuck = false; // a new stuck-at fault overrides an earlier one
    set(t, v);
    stuck = true;
}

} // namespace vsync::desim
