#include "desim/signal.hh"

namespace vsync::desim
{

void
Signal::set(Time t, bool v)
{
    if (v == current)
        return;
    current = v;
    lastChangeTime = t;
    ++transitionCount;
    for (const Listener &fn : listeners)
        fn(t, v);
}

} // namespace vsync::desim
