/**
 * @file
 * Circuit-level model of a buffered clock distribution tree.
 *
 * A ClockNet instantiates one signal per site of a BufferedClockTree
 * and one delay element per segment (wire delay plus, at buffer sites,
 * the buffer's own rise/fall delays). Driving the root with a
 * PeriodicClock then reproduces pipelined clock distribution: with a
 * period shorter than the root-to-leaf latency several clock events
 * travel the tree at once, which the instrumentation exposes as
 * events-in-flight counts, and per-node arrival times give the realised
 * skew between any two cells.
 */

#ifndef VSYNC_DESIM_CLOCK_NET_HH
#define VSYNC_DESIM_CLOCK_NET_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "clocktree/buffering.hh"
#include "desim/clock_source.hh"
#include "desim/elements.hh"
#include "desim/signal.hh"
#include "desim/simulator.hh"

namespace vsync::desim
{

/** A simulated buffered clock tree. */
class ClockNet
{
  public:
    /**
     * Per-site delay assignment: maps a site (and its index) to the
     * rise/fall delay of the segment-plus-buffer stage feeding it.
     * Callers sample process variation here.
     */
    using DelayFn = std::function<EdgeDelays(
        const clocktree::BufferedSite &, std::size_t)>;

    /**
     * Build the circuit for @p tree on @p sim.
     *
     * @param delay_of per-site stage delays.
     */
    ClockNet(Simulator &sim, const clocktree::BufferedClockTree &tree,
             const DelayFn &delay_of);

    ClockNet(const ClockNet &) = delete;
    ClockNet &operator=(const ClockNet &) = delete;

    /** The root signal (drive this with a PeriodicClock). */
    Signal &rootSignal() { return *signals.front(); }

    /** Signal at original clock-tree node @p node. */
    Signal &nodeSignal(NodeId node);

    /** Rising-edge arrival times recorded at tree node @p node. */
    const std::vector<Time> &risingArrivals(NodeId node) const;

    /**
     * Emit @p cycles rising edges at @p period into the root and run
     * the simulation to completion.
     *
     * @param start time of the first rising edge (lets callers stage
     *              data before the clock starts).
     * @return times at which the source emitted rising edges.
     */
    const std::vector<Time> &drive(Time period, int cycles,
                                   Time start = 0.0);

    /**
     * Maximum number of clock events simultaneously in flight between
     * the root and @p node during the last drive() (1 means
     * equipotential-like operation; >1 demonstrates pipelining).
     */
    int maxEventsInFlight(NodeId node) const;

    /**
     * Apply @p jitter to every delay element (breaking A8); pass an
     * empty function to restore invariance.
     */
    void setJitter(const DelayElement::JitterFn &jitter);

    /** Number of sites (signals) in the net. */
    std::size_t siteCount() const { return signals.size(); }

    /** Number of delay elements (one per non-root site). */
    std::size_t elementCount() const { return elements.size(); }

    /**
     * Delay element feeding site @p i + 1 of the buffered tree (element
     * i spans the segment from site i+1's parent). Fault-injection
     * seam: fault::FaultInjector kills (dead buffer) or derates
     * (delay drift) stages through this hook.
     */
    DelayElement &element(std::size_t i) { return *elements.at(i); }

    /**
     * Signal at buffered-tree site @p i (site 0 is the root).
     * Fault-injection seam for stuck-at nets and transient glitches.
     */
    Signal &siteSignal(std::size_t i) { return *signals.at(i); }

  private:
    Simulator &sim;
    const clocktree::BufferedClockTree &tree;
    std::deque<std::unique_ptr<Signal>> signals; // per site
    std::deque<std::unique_ptr<DelayElement>> elements;
    std::vector<std::vector<Time>> arrivals; // per site, rising edges
    std::unique_ptr<PeriodicClock> source;
    std::vector<Time> sourceEdges;
};

} // namespace vsync::desim

#endif // VSYNC_DESIM_CLOCK_NET_HH
