/**
 * @file
 * Level-sensitive latches and two-phase non-overlapping clock
 * generation -- the nMOS design discipline of the paper's era (Mead &
 * Conway [7]; the 1983 chips the paper discusses were built this way).
 *
 * A latch is transparent while its enable is high and holds while it
 * is low. Two latches on alternating non-overlapping phases form the
 * classic phi1/phi2 pipeline stage. Clock skew attacks this scheme by
 * eroding the non-overlap gap: when the phases as *seen by one cell*
 * overlap, data races through two stages in one cycle. The
 * PhaseOverlapDetector reports exactly that condition, tying the
 * paper's skew budget sigma to the discipline's gap requirement
 * (period formula: see core::twoPhasePeriod).
 */

#ifndef VSYNC_DESIM_LATCH_HH
#define VSYNC_DESIM_LATCH_HH

#include <cstdint>
#include <vector>

#include "desim/signal.hh"
#include "desim/simulator.hh"

namespace vsync::desim
{

/** A level-sensitive (transparent-high) latch. */
class Latch
{
  public:
    /**
     * @param sim    simulator.
     * @param d      data input.
     * @param enable transparency control (active high).
     * @param q      output.
     * @param delay  D-to-Q (and enable-to-Q) propagation delay (ns).
     * @param setup  data stability required before enable falls (ns).
     */
    Latch(Simulator &sim, Signal &d, Signal &enable, Signal &q,
          Time delay, Time setup);

    Latch(const Latch &) = delete;
    Latch &operator=(const Latch &) = delete;

    /** Times at which data changed inside the setup window of a
     *  closing edge (latched value undefined). */
    const std::vector<Time> &setupViolations() const
    {
        return violations;
    }

    /** Number of closing (enable falling) edges seen. */
    std::uint64_t closures() const { return closeCount; }

  private:
    Simulator &sim;
    Signal &d;
    Signal &q;
    Time delay;
    Time setup;
    Time lastDataChange = -infinity;
    bool open = false;
    std::uint64_t closeCount = 0;
    std::vector<Time> violations;

    void onData(Time t, bool v);
    void onEnable(Time t, bool v);
    void drive(Time t, bool v);
};

/**
 * A generator for two non-overlapping clock phases:
 * phi1 high during [k*T, k*T + width), phi2 high during
 * [k*T + width + gap, k*T + 2*width + gap); the remaining time to the
 * period is the second gap.
 */
class TwoPhaseClock
{
  public:
    /**
     * @param sim    simulator.
     * @param phi1   first phase output.
     * @param phi2   second phase output.
     * @param period full cycle time (ns).
     * @param width  high time of each phase (ns).
     * @param gap    nominal dead time between phases (ns).
     * @param cycles cycles to emit.
     * @pre 2 * width + 2 * gap <= period.
     */
    TwoPhaseClock(Simulator &sim, Signal &phi1, Signal &phi2,
                  Time period, Time width, Time gap, int cycles);

    TwoPhaseClock(const TwoPhaseClock &) = delete;
    TwoPhaseClock &operator=(const TwoPhaseClock &) = delete;
};

/**
 * Watches two phase signals (as delivered at one cell) and records
 * every interval during which both are simultaneously high -- the
 * race condition skew causes in two-phase systems.
 */
class PhaseOverlapDetector
{
  public:
    PhaseOverlapDetector(Signal &phi1, Signal &phi2);

    PhaseOverlapDetector(const PhaseOverlapDetector &) = delete;
    PhaseOverlapDetector &operator=(const PhaseOverlapDetector &) =
        delete;

    /** Number of distinct overlap episodes observed. */
    std::uint64_t overlaps() const { return count; }

    /** Total simultaneous-high time (ns). */
    Time overlapTime() const { return total; }

  private:
    Signal &phi1;
    Signal &phi2;
    bool both = false;
    Time bothSince = 0.0;
    std::uint64_t count = 0;
    Time total = 0.0;

    void update(Time t);
};

} // namespace vsync::desim

#endif // VSYNC_DESIM_LATCH_HH
