#include "desim/clock_net.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsync::desim
{

ClockNet::ClockNet(Simulator &sim, const clocktree::BufferedClockTree &tree,
                   const DelayFn &delay_of)
    : sim(sim), tree(tree)
{
    const auto &sites = tree.sites();
    VSYNC_ASSERT(!sites.empty(), "empty buffered tree");
    arrivals.resize(sites.size());

    for (std::size_t i = 0; i < sites.size(); ++i) {
        signals.push_back(std::make_unique<Signal>(
            csprintf("site%zu", i)));
        // Record rising-edge arrivals at every site.
        std::vector<Time> *record = &arrivals[i];
        signals.back()->onChange([record](Time t, bool v) {
            if (v)
                record->push_back(t);
        });
    }

    for (std::size_t i = 1; i < sites.size(); ++i) {
        const clocktree::BufferedSite &site = sites[i];
        elements.push_back(std::make_unique<DelayElement>(
            sim, *signals[site.parent], *signals[i], delay_of(site, i),
            false));
    }
}

Signal &
ClockNet::nodeSignal(NodeId node)
{
    return *signals.at(tree.siteOfNode(node));
}

const std::vector<Time> &
ClockNet::risingArrivals(NodeId node) const
{
    return arrivals.at(tree.siteOfNode(node));
}

const std::vector<Time> &
ClockNet::drive(Time period, int cycles, Time start)
{
    source = std::make_unique<PeriodicClock>(sim, rootSignal(), period,
                                             cycles, -1.0, start);
    sourceEdges = source->risingEdgeTimes();
    sim.run();
    return sourceEdges;
}

int
ClockNet::maxEventsInFlight(NodeId node) const
{
    const std::vector<Time> &arr = risingArrivals(node);
    int peak = 0;
    // Just after the k-th emission (1-based), events in flight toward
    // this node = k minus arrivals no later than that emission time.
    for (std::size_t k = 0; k < sourceEdges.size(); ++k) {
        const Time t = sourceEdges[k];
        const auto arrived = static_cast<std::size_t>(
            std::upper_bound(arr.begin(), arr.end(), t) - arr.begin());
        const int in_flight = static_cast<int>(k + 1 - arrived);
        peak = std::max(peak, in_flight);
    }
    return peak;
}

void
ClockNet::setJitter(const DelayElement::JitterFn &jitter)
{
    for (auto &el : elements)
        el->setJitter(jitter);
}

} // namespace vsync::desim
