#include "desim/latch.hh"

#include "common/logging.hh"

namespace vsync::desim
{

Latch::Latch(Simulator &sim, Signal &d, Signal &enable, Signal &q,
             Time delay, Time setup)
    : sim(sim), d(d), q(q), delay(delay), setup(setup),
      open(enable.value())
{
    VSYNC_ASSERT(delay >= 0.0 && setup >= 0.0, "bad latch timing");
    d.onChange([this](Time t, bool v) { onData(t, v); });
    enable.onChange([this](Time t, bool v) { onEnable(t, v); });
}

void
Latch::drive(Time t, bool v)
{
    Signal *out = &q;
    const Time at = t + delay;
    sim.scheduleAt(at, [out, at, v]() { out->set(at, v); });
}

void
Latch::onData(Time t, bool v)
{
    lastDataChange = t;
    if (open)
        drive(t, v); // transparent
}

void
Latch::onEnable(Time t, bool v)
{
    if (v && !open) {
        open = true;
        // Opening passes the current data through.
        drive(t, d.value());
    } else if (!v && open) {
        open = false;
        ++closeCount;
        if (t - lastDataChange < setup)
            violations.push_back(t);
    }
}

TwoPhaseClock::TwoPhaseClock(Simulator &sim, Signal &phi1, Signal &phi2,
                             Time period, Time width, Time gap,
                             int cycles)
{
    VSYNC_ASSERT(period > 0.0 && width > 0.0 && gap >= 0.0,
                 "bad two-phase timing");
    VSYNC_ASSERT(2.0 * width + 2.0 * gap <= period + 1e-12,
                 "phases (2*%g) + gaps (2*%g) exceed the period %g",
                 width, gap, period);
    VSYNC_ASSERT(cycles >= 0, "negative cycle count");

    Signal *p1 = &phi1;
    Signal *p2 = &phi2;
    for (int k = 0; k < cycles; ++k) {
        const Time base = k * period;
        const Time p1_rise = base;
        const Time p1_fall = base + width;
        const Time p2_rise = p1_fall + gap;
        const Time p2_fall = p2_rise + width;
        sim.scheduleAt(p1_rise,
                       [p1, p1_rise]() { p1->set(p1_rise, true); });
        sim.scheduleAt(p1_fall,
                       [p1, p1_fall]() { p1->set(p1_fall, false); });
        sim.scheduleAt(p2_rise,
                       [p2, p2_rise]() { p2->set(p2_rise, true); });
        sim.scheduleAt(p2_fall,
                       [p2, p2_fall]() { p2->set(p2_fall, false); });
    }
}

PhaseOverlapDetector::PhaseOverlapDetector(Signal &phi1, Signal &phi2)
    : phi1(phi1), phi2(phi2)
{
    phi1.onChange([this](Time t, bool) { update(t); });
    phi2.onChange([this](Time t, bool) { update(t); });
}

void
PhaseOverlapDetector::update(Time t)
{
    const bool now_both = phi1.value() && phi2.value();
    if (now_both && !both) {
        both = true;
        bothSince = t;
        ++count;
    } else if (!now_both && both) {
        both = false;
        total += t - bothSince;
    }
}

} // namespace vsync::desim
