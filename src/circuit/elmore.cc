#include "circuit/elmore.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vsync::circuit
{

ElmoreReport
elmoreAnalysis(const clocktree::ClockTree &tree, const WireRC &rc,
               const graph::Graph *comm)
{
    VSYNC_ASSERT(rc.rPerLambda >= 0.0 && rc.cPerLambda >= 0.0 &&
                 rc.cLeaf >= 0.0 && rc.rDriver >= 0.0,
                 "negative RC constants");
    const std::size_t n = tree.size();
    VSYNC_ASSERT(n >= 1, "empty tree");

    // Downstream capacitance per node: own leaf load + children's
    // wires and subtrees. Nodes are created parent-before-child, so a
    // reverse pass sees children first.
    std::vector<double> c_below(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        const NodeId v = static_cast<NodeId>(i);
        if (tree.cellOfNode(v) != invalidId)
            c_below[i] += rc.cLeaf;
        for (NodeId child : tree.structure().children(v)) {
            c_below[i] += rc.cPerLambda * tree.wireLength(child) +
                          c_below[static_cast<std::size_t>(child)];
        }
    }

    ElmoreReport report;
    report.totalCapacitance = c_below[0];
    report.arrival.assign(n, 0.0);
    report.arrival[0] =
        rc.rDriver * c_below[0] * rc.nsPerOhmFarad;
    for (std::size_t i = 1; i < n; ++i) {
        const NodeId v = static_cast<NodeId>(i);
        const NodeId p = tree.structure().parent(v);
        const Length len = tree.wireLength(v);
        const double r_edge = rc.rPerLambda * len;
        const double c_edge = rc.cPerLambda * len;
        report.arrival[i] =
            report.arrival[static_cast<std::size_t>(p)] +
            r_edge * (c_edge / 2.0 + c_below[i]) * rc.nsPerOhmFarad;
    }

    report.minLeafArrival = infinity;
    for (std::size_t i = 0; i < n; ++i) {
        if (tree.cellOfNode(static_cast<NodeId>(i)) == invalidId)
            continue;
        report.maxLeafArrival =
            std::max(report.maxLeafArrival, report.arrival[i]);
        report.minLeafArrival =
            std::min(report.minLeafArrival, report.arrival[i]);
    }
    if (report.minLeafArrival == infinity)
        report.minLeafArrival = 0.0;

    if (comm) {
        for (const graph::Edge &e : comm->undirectedEdges()) {
            const NodeId a = tree.nodeOfCell(e.src);
            const NodeId b = tree.nodeOfCell(e.dst);
            VSYNC_ASSERT(a != invalidId && b != invalidId,
                         "cells %d/%d not clocked", e.src, e.dst);
            report.maxCommSkew = std::max(
                report.maxCommSkew,
                std::fabs(report.arrival[static_cast<std::size_t>(a)] -
                          report.arrival[static_cast<std::size_t>(b)]));
        }
    }
    return report;
}

} // namespace vsync::circuit
