#include "circuit/clocked_chain.hh"

#include <algorithm>
#include <deque>
#include <memory>

#include "common/logging.hh"
#include "common/rng.hh"
#include "desim/clock_net.hh"
#include "desim/register.hh"
#include "desim/signal.hh"
#include "desim/simulator.hh"

namespace vsync::circuit
{

ShiftChainResult
runClockedShiftChain(const layout::Layout &l,
                     const clocktree::ClockTree &tree,
                     const ProcessParams &process,
                     const std::vector<bool> &pattern, Time period,
                     Rng rng)
{
    const int n = static_cast<int>(l.size());
    VSYNC_ASSERT(n >= 1, "empty chain");
    VSYNC_ASSERT(period > 0.0, "bad period %g", period);
    const int cycles = static_cast<int>(pattern.size()) + n + 2;

    desim::Simulator sim;
    const auto buffered = clocktree::BufferedClockTree::insertBuffers(
        tree, process.bufferSpacing);

    // Per-wire unit delays sampled once per site (the chip).
    desim::ClockNet net(
        sim, buffered,
        [&process, &rng](const clocktree::BufferedSite &site,
                         std::size_t) {
            Time d =
                process.sampleUnitWireDelay(rng) * site.wireFromParent;
            if (site.isBuffer)
                d += process.stageDelay;
            return desim::EdgeDelays::same(d);
        });

    // Data path: source register at the host, one register per cell.
    std::deque<desim::Signal> dsigs, qsigs;
    for (int i = -1; i < n; ++i) {
        dsigs.emplace_back(csprintf("d%d", i));
        qsigs.emplace_back(csprintf("q%d", i));
    }
    std::deque<std::unique_ptr<desim::Register>> regs;
    // Source register (index 0 in the deques) is clocked by the root.
    regs.push_back(std::make_unique<desim::Register>(
        sim, dsigs[0], net.rootSignal(), qsigs[0], process.setupTime,
        process.holdTime, process.clkToQ));
    for (int i = 0; i < n; ++i) {
        const NodeId node = tree.nodeOfCell(static_cast<CellId>(i));
        VSYNC_ASSERT(node != invalidId, "cell %d unclocked", i);
        regs.push_back(std::make_unique<desim::Register>(
            sim, dsigs[i + 1], net.nodeSignal(node), qsigs[i + 1],
            process.setupTime, process.holdTime, process.clkToQ));
    }

    // Data wires: q_j -> d_{j+1} with length = distance between the
    // stages (host one pitch left of cell 0).
    std::deque<std::unique_ptr<desim::DelayElement>> wires;
    geom::Point prev{l.position(0).x - 1.0, l.position(0).y};
    for (int i = 0; i < n; ++i) {
        const Length dist = geom::manhattan(prev, l.position(i));
        const Time d = process.sampleUnitWireDelay(rng) * dist;
        wires.push_back(std::make_unique<desim::DelayElement>(
            sim, qsigs[i], dsigs[i + 1], desim::EdgeDelays::same(d)));
        prev = l.position(i);
    }

    // Stage the pattern half a period before each root edge; the
    // clock starts one full period in so the first bit is stable.
    const Time start = period;
    for (std::size_t k = 0; k <= pattern.size(); ++k) {
        const Time at = start + static_cast<double>(k) * period -
                        period / 2.0;
        desim::Signal *src = &dsigs[0];
        // Park the source at zero once the pattern is exhausted.
        const bool bit = k < pattern.size() && pattern[k];
        sim.scheduleAt(at, [src, at, bit]() { src->set(at, bit); });
    }

    net.drive(period, cycles, start);

    ShiftChainResult result;
    const desim::Register &last = *regs.back();
    result.received.assign(last.capturedValues().begin(),
                           last.capturedValues().end());
    for (int k = 0; k < static_cast<int>(result.received.size()); ++k) {
        const int idx = k - n;
        result.expected.push_back(
            idx >= 0 && static_cast<std::size_t>(idx) < pattern.size()
                ? pattern[static_cast<std::size_t>(idx)]
                : false);
    }
    for (const auto &reg : regs) {
        for (const desim::TimingViolation &v : reg->violations()) {
            if (v.setup)
                ++result.setupViolations;
            else
                ++result.holdViolations;
        }
    }
    result.correct = result.setupViolations == 0 &&
                     result.holdViolations == 0 &&
                     result.received == result.expected;
    if (n >= 1) {
        result.clockEventsInFlight = net.maxEventsInFlight(
            tree.nodeOfCell(static_cast<CellId>(n - 1)));
    }
    return result;
}

Time
minShiftChainPeriod(const layout::Layout &l,
                    const clocktree::ClockTree &tree,
                    const ProcessParams &process, Rng &rng,
                    Time tolerance)
{
    VSYNC_ASSERT(tolerance > 0.0, "bad tolerance");
    const Rng chip = rng.deriveStream(0x51f7);
    const std::vector<bool> pattern{true, false, true,  true,
                                    false, false, true, false};

    Time lo = process.clkToQ;
    Time hi = process.clkToQ + process.setupTime + process.holdTime +
              (process.m + process.eps) *
                  (tree.maxRootPathLength() + 2.0) +
              10.0 * process.stageDelay;
    for (int guard = 0;
         !runClockedShiftChain(l, tree, process, pattern, hi, chip)
              .correct;
         ++guard) {
        hi *= 2.0;
        VSYNC_ASSERT(guard < 10, "no workable period up to %g ns", hi);
    }
    while (hi - lo > tolerance) {
        const Time mid = (lo + hi) / 2.0;
        if (runClockedShiftChain(l, tree, process, pattern, mid, chip)
                .correct)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace vsync::circuit
