/**
 * @file
 * Yield analysis of pipelined inverter-string clocking (Section VII).
 *
 * With balanced stages the rise/fall discrepancy of an n-stage string
 * is a zero-mean random walk over n/2 pairs, so the end-to-end
 * discrepancy is ~ N(n/2 * pairBias, (n/2) * sigma^2). A chip runs at
 * cycle time T iff its discrepancy fits inside the clock phase, so for
 * a *fixed yield* the required cycle time grows like sqrt(n) when the
 * bias is zero -- the paper's probabilistic growth law -- and linearly
 * in n when a systematic bias dominates (the fabricated chips).
 */

#ifndef VSYNC_CIRCUIT_YIELD_HH
#define VSYNC_CIRCUIT_YIELD_HH

#include <cstdint>

#include "circuit/process.hh"
#include "common/stats.hh"

namespace vsync
{
class Rng;
class ThreadPool;
} // namespace vsync

namespace vsync::circuit
{

/**
 * Analytic cycle time at which a fraction @p yield of fabricated
 * n-stage strings run in pipelined mode: T = 2 (minPulse + b) where b
 * is the smallest budget with P(|disc| <= b) >= yield under the
 * normal end-to-end discrepancy model (solved by bisection; exact
 * inverse of yieldAtCycleTime).
 */
Time cycleTimeAtYield(const ProcessParams &process, int n, double yield);

/**
 * Analytic yield at cycle time @p period for n-stage strings: the
 * probability that |discrepancy| <= period/2 - minPulse under the
 * normal model.
 */
double yieldAtCycleTime(const ProcessParams &process, int n, Time period);

/**
 * Monte-Carlo counterpart: fabricate @p chips strings and collect each
 * chip's analytic minimum pipelined cycle (worst prefix discrepancy).
 */
SampleSet sampleChipCycleTimes(const ProcessParams &process, int n,
                               int chips, Rng &rng);

/**
 * Deterministic parallel counterpart: chip i is fabricated from the
 * counter-based substream Rng::forTrial(seed, i) and its cycle written
 * to slot i, so the returned samples are bit-identical for any pool
 * size (including 1). Fans fabrication across @p pool.
 */
SampleSet sampleChipCycleTimes(const ProcessParams &process, int n,
                               int chips, std::uint64_t seed,
                               ThreadPool &pool);

} // namespace vsync::circuit

#endif // VSYNC_CIRCUIT_YIELD_HH
