/**
 * @file
 * Technology/process parameters for the circuit-level experiments.
 *
 * The paper's theory touches physics only through a handful of
 * constants: per-unit wire delay m with variation eps (Section III),
 * buffer delay (A7), equipotential settling (A6), and the rise/fall
 * asymmetry of real stages (Section VII). ProcessParams bundles those
 * with three presets:
 *
 *  - nmos1983: calibrated to the paper's 2048-inverter chip
 *    (equipotential cycle ~34 us, pipelined ~500 ns, 68x);
 *  - cmosGeneric: a low-resistance process where a well-designed
 *    equipotential clock wins at small sizes (the Section VII caveat);
 *  - gaasFast: fast switches over slow interconnect, the regime the
 *    paper names as pipelined clocking's natural home.
 */

#ifndef VSYNC_CIRCUIT_PROCESS_HH
#define VSYNC_CIRCUIT_PROCESS_HH

#include <string>

#include "common/types.hh"
#include "desim/elements.hh"

namespace vsync
{
class Rng;
} // namespace vsync

namespace vsync::circuit
{

/** Process/technology constants. */
struct ProcessParams
{
    std::string name = "generic";

    /** Mean signal delay per unit wire length (ns / lambda). */
    double m = 0.05;

    /** Per-wire delay variation amplitude (ns / lambda); the skew
     *  models' eps. */
    double eps = 0.005;

    /** Mean propagation delay of one inverter/buffer stage (ns). */
    Time stageDelay = 0.2;

    /** Std deviation of a stage's mean delay across instances (ns). */
    double stageDelaySigma = 0.01;

    /**
     * Systematic rise/fall discrepancy accumulated per *pair* of
     * inverter stages (ns). A perfectly balanced string has 0; the
     * paper's chip had a bias toward falling edges that dominated the
     * random effects.
     */
    Time pairBias = 0.0;

    /**
     * Std deviation of the random rise/fall discrepancy contributed by
     * one stage pair (the Section VII normal model, ns).
     */
    double pairDiscrepancySigma = 0.0;

    /** Minimum usable pulse width at a stage output (ns). */
    Time minPulseWidth = 1.0;

    /**
     * Equipotential settling: linear term alpha (ns / lambda, A6's
     * lower-bound constant) ...
     */
    double alpha = 0.1;

    /** ... plus a distributed-RC quadratic term (ns / lambda^2). */
    double rcQuadratic = 0.0;

    /** Buffer spacing for pipelined distribution (lambda). */
    Length bufferSpacing = 4.0;

    /** Register setup time (ns). */
    Time setupTime = 0.5;

    /** Register hold time (ns). */
    Time holdTime = 0.25;

    /** Register clock-to-Q delay (ns). */
    Time clkToQ = 0.5;

    /** Cell compute + propagate bound delta (ns, A5). */
    Time delta = 2.0;

    /** Equipotential settling time of an unbuffered run of length l. */
    Time settlingTime(Length l) const;

    /** Sample a per-wire unit delay in [m - eps, m + eps]. */
    double sampleUnitWireDelay(Rng &rng) const;

    /**
     * Sample one stage's rise/fall delays: a normal perturbation of
     * stageDelay plus half the pair bias/discrepancy split between the
     * edges with the sign given by @p odd_stage (so consecutive stages
     * realise the configured per-pair totals).
     */
    desim::EdgeDelays sampleStageDelays(Rng &rng, bool odd_stage) const;

    /** The paper's 1983 nMOS chip (Section VII calibration). */
    static ProcessParams nmos1983();

    /** A generic low-resistance CMOS-like process. */
    static ProcessParams cmosGeneric();

    /** Fast switches, slow high-impedance interconnect (GaAs-like). */
    static ProcessParams gaasFast();
};

} // namespace vsync::circuit

#endif // VSYNC_CIRCUIT_PROCESS_HH
