/**
 * @file
 * A register-level shift chain clocked by a simulated clock tree.
 *
 * This closes the loop between the analytic clocked executor
 * (systolic::runClocked, which classifies links by skew arithmetic)
 * and the circuit level: real desim registers, clocked by the actual
 * buffered-tree arrival waveforms, shifting a bit pattern down the
 * array. With the Section V-A spine clock the chain works at a
 * size-independent period and the captured pattern matches; shrink the
 * period below the skew-aware minimum and the registers log genuine
 * setup violations and capture garbage.
 *
 * The chain is the paper's synchronization problem in miniature: cell
 * i's output register launches data that cell i+1's register must
 * capture one clock later, with both clocks delivered by CLK.
 */

#ifndef VSYNC_CIRCUIT_CLOCKED_CHAIN_HH
#define VSYNC_CIRCUIT_CLOCKED_CHAIN_HH

#include <vector>

#include "clocktree/buffering.hh"
#include "circuit/process.hh"
#include "layout/layout.hh"

namespace vsync
{
class Rng;
} // namespace vsync

namespace vsync::circuit
{

/** Result of driving a clocked shift chain. */
struct ShiftChainResult
{
    /** Bits captured by the last register at each of its edges. */
    std::vector<bool> received;
    /** Expected bits (the pattern delayed by the chain depth). */
    std::vector<bool> expected;
    /** Setup violations summed over all registers. */
    std::size_t setupViolations = 0;
    /** Hold violations summed over all registers. */
    std::size_t holdViolations = 0;
    /** True when received == expected and no violations occurred. */
    bool correct = false;
    /** Max events concurrently in flight on the clock tree. */
    int clockEventsInFlight = 0;
};

/**
 * Build and run an n-stage shift chain over @p layout (a linear
 * layout), clocked through @p tree buffered at the process's spacing.
 *
 * @param l        linear layout supplying cell positions (cell i =
 *                 stage i).
 * @param tree     clock tree binding every cell (e.g. buildSpine).
 * @param process  stage/wire timing (registers use setup/hold/clkToQ;
 *                 data wires use m per lambda).
 * @param pattern  bits launched by the source register, one per cycle.
 * @param period   clock period to drive (ns).
 * @param rng      per-wire delay variation sampling; passed by value
 *                 so the same generator state reproduces the same
 *                 "chip" across runs (bisection probes one chip).
 */
ShiftChainResult runClockedShiftChain(const layout::Layout &l,
                                      const clocktree::ClockTree &tree,
                                      const ProcessParams &process,
                                      const std::vector<bool> &pattern,
                                      Time period, Rng rng);

/**
 * Smallest period (by bisection) at which the chain is correct, i.e.
 * the circuit-level counterpart of systolic::minSafePeriod.
 */
Time minShiftChainPeriod(const layout::Layout &l,
                         const clocktree::ClockTree &tree,
                         const ProcessParams &process, Rng &rng,
                         Time tolerance = 0.1);

} // namespace vsync::circuit

#endif // VSYNC_CIRCUIT_CLOCKED_CHAIN_HH
