#include "circuit/process.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace vsync::circuit
{

Time
ProcessParams::settlingTime(Length l) const
{
    VSYNC_ASSERT(l >= 0.0, "negative wire length %g", l);
    return alpha * l + rcQuadratic * l * l;
}

double
ProcessParams::sampleUnitWireDelay(Rng &rng) const
{
    return rng.uniform(m - eps, m + eps);
}

desim::EdgeDelays
ProcessParams::sampleStageDelays(Rng &rng, bool odd_stage) const
{
    const Time mean = rng.normal(stageDelay, stageDelaySigma);
    // Per-stage rise/fall discrepancy, signed so that each consecutive
    // odd/even stage pair contributes pairBias (systematic) plus a
    // zero-mean normal term with std pairDiscrepancySigma to the
    // string's accumulated edge discrepancy.
    const double sign = odd_stage ? 1.0 : -1.0;
    const Time disc =
        sign * (pairBias / 2.0 +
                rng.normal(0.0, pairDiscrepancySigma / std::sqrt(2.0)));
    desim::EdgeDelays d;
    d.fall = std::max(0.0, mean + disc / 2.0);
    d.rise = std::max(0.0, mean - disc / 2.0);
    return d;
}

ProcessParams
ProcessParams::nmos1983()
{
    ProcessParams p;
    p.name = "nmos-1983";
    // Calibration (Section VII): 2048 minimum inverters traversed in
    // ~34 us equipotentially -> 16.6 ns per stage; pipelined cycle
    // 500 ns -> half period 250 ns = minPulse + 1024 * pairBias.
    p.stageDelay = 16.6;
    p.stageDelaySigma = 0.3;
    p.minPulseWidth = 16.6;
    p.pairBias = (250.0 - 16.6) / 1024.0; // ~0.228 ns per stage pair
    p.pairDiscrepancySigma = 0.05;        // bias dominates randomness
    p.m = 0.5;   // slow nMOS interconnect, ns per lambda
    p.eps = 0.05;
    p.alpha = 0.5;
    p.rcQuadratic = 2e-3;
    p.bufferSpacing = 8.0;
    p.setupTime = 4.0;
    p.holdTime = 2.0;
    p.clkToQ = 8.0;
    p.delta = 50.0;
    return p;
}

ProcessParams
ProcessParams::cmosGeneric()
{
    ProcessParams p;
    p.name = "cmos-generic";
    p.stageDelay = 0.2;
    p.stageDelaySigma = 0.004;
    p.minPulseWidth = 0.2;
    p.pairBias = 0.002;
    p.pairDiscrepancySigma = 0.001;
    p.m = 0.02;  // low-resistance metal: fast wires
    p.eps = 0.002;
    p.alpha = 0.02;
    p.rcQuadratic = 1e-5;
    p.bufferSpacing = 32.0;
    p.setupTime = 0.05;
    p.holdTime = 0.03;
    p.clkToQ = 0.1;
    p.delta = 1.0;
    return p;
}

ProcessParams
ProcessParams::gaasFast()
{
    ProcessParams p;
    p.name = "gaas-fast";
    // Very fast switching over long, high-impedance interconnect: the
    // regime where pipelined clocking shines (Section VII).
    p.stageDelay = 0.02;
    p.stageDelaySigma = 0.0005;
    p.minPulseWidth = 0.02;
    p.pairBias = 0.0002;
    p.pairDiscrepancySigma = 0.0002;
    p.m = 0.1;   // wire delay dwarfs stage delay
    p.eps = 0.01;
    p.alpha = 0.1;
    p.rcQuadratic = 5e-4;
    p.bufferSpacing = 2.0;
    p.setupTime = 0.01;
    p.holdTime = 0.005;
    p.clkToQ = 0.02;
    p.delta = 0.2;
    return p;
}

} // namespace vsync::circuit
