/**
 * @file
 * The Section VII experiment: a string of minimum inverters used as a
 * clock distribution line.
 *
 * The paper fabricated a 2048-inverter nMOS string and measured
 *  - equipotential single-phase clocking: ~34 us cycle (the whole
 *    string settles per event),
 *  - pipelined clocking: ~500 ns cycle, a 68x speedup, repeatable
 *    across five chips because a systematic rise/fall bias dominated
 *    the random per-stage discrepancies.
 *
 * The model: each stage has distinct rise/fall delays (systematic bias
 * + random part). An edge entering the string alternates rise/fall
 * delays stage by stage, so the high and low phases of a clock pulse
 * change width as they travel; the pulse dies when a phase shrinks
 * below the minimum usable width. The minimum pipelined period is set
 * by the worst accumulated discrepancy over all prefixes of the string;
 * with zero bias the discrepancy is a random walk, giving the paper's
 * sqrt(n) fixed-yield growth law.
 */

#ifndef VSYNC_CIRCUIT_INVERTER_STRING_HH
#define VSYNC_CIRCUIT_INVERTER_STRING_HH

#include <vector>

#include "circuit/process.hh"
#include "common/rng.hh"
#include "desim/elements.hh"

namespace vsync::circuit
{

/** One fabricated instance ("chip") of an inverter string. */
class InverterString
{
  public:
    /**
     * Fabricate a string of @p n inverters with per-stage delays drawn
     * from @p process using @p rng (one chip = one rng stream).
     */
    InverterString(int n, const ProcessParams &process, Rng rng);

    /** Number of stages. */
    int length() const { return static_cast<int>(stages.size()); }

    /** Per-stage rise/fall delays. */
    const std::vector<desim::EdgeDelays> &stageDelays() const
    {
        return stages;
    }

    /**
     * Propagation delay of a rising input edge through the whole
     * string (alternating fall/rise stage delays).
     */
    Time traversalDelayRiseIn() const;

    /** Propagation delay of a falling input edge. */
    Time traversalDelayFallIn() const;

    /**
     * Accumulated edge discrepancy after @p k stages: (falling-input
     * traversal) - (rising-input traversal) over the prefix. The pulse
     * width change of a high phase after k stages.
     */
    Time prefixDiscrepancy(int k) const;

    /** Largest |prefixDiscrepancy| over all prefixes. */
    Time worstPrefixDiscrepancy() const;

    /**
     * Equipotential cycle time: the string must settle end to end per
     * clock event (A6 applied to this line).
     */
    Time equipotentialCycle() const;

    /**
     * Minimum pipelined cycle time (analytic): both clock phases must
     * stay at least minPulseWidth wide at every stage, so
     * T = 2 * (minPulseWidth + worstPrefixDiscrepancy).
     */
    Time pipelinedCycleAnalytic() const;

    /**
     * Check by discrete-event simulation that the string transmits an
     * intact pulse train at period @p period: drives @p cycles cycles
     * into stage 0 and verifies the far end sees every edge with both
     * phases no narrower than the process minimum.
     */
    bool runsAtPeriod(Time period, int cycles = 8) const;

    /**
     * Minimum workable pipelined period found by bisection over
     * runsAtPeriod (desim-backed counterpart of
     * pipelinedCycleAnalytic).
     *
     * @param cycles    pulse train length per trial.
     * @param tolerance bisection stopping width (ns).
     */
    Time minPipelinedPeriod(int cycles = 8, Time tolerance = 1.0) const;

  private:
    std::vector<desim::EdgeDelays> stages;
    Time minPulse;
};

} // namespace vsync::circuit

#endif // VSYNC_CIRCUIT_INVERTER_STRING_HH
