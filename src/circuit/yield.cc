#include "circuit/yield.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "circuit/inverter_string.hh"

namespace vsync::circuit
{

namespace
{

/** Mean and std of the end-to-end discrepancy of an n-stage string. */
void
discrepancyMoments(const ProcessParams &p, int n, double &mean,
                   double &std_dev)
{
    const double pairs = static_cast<double>(n) / 2.0;
    mean = pairs * p.pairBias;
    std_dev = std::sqrt(pairs) * p.pairDiscrepancySigma;
}

} // namespace

Time
cycleTimeAtYield(const ProcessParams &process, int n, double yield)
{
    VSYNC_ASSERT(n >= 2, "need n >= 2, got %d", n);
    VSYNC_ASSERT(yield > 0.0 && yield < 1.0, "yield %g out of (0,1)",
                 yield);
    double mean, sd;
    discrepancyMoments(process, n, mean, sd);
    // Find the smallest discrepancy budget b with
    // P(-b <= disc <= b) >= yield, by bisection (the CDF difference is
    // monotone in b). An upper bracket of |mean| + 40 sd always
    // suffices.
    double lo = 0.0;
    double hi = std::fabs(mean) + std::max(sd, 1e-12) * 40.0;
    for (int iter = 0; iter < 80; ++iter) {
        const double b = (lo + hi) / 2.0;
        double p;
        if (sd <= 0.0) {
            p = std::fabs(mean) <= b ? 1.0 : 0.0;
        } else {
            p = normalCdf((b - mean) / sd) - normalCdf((-b - mean) / sd);
        }
        if (p >= yield)
            hi = b;
        else
            lo = b;
    }
    return 2.0 * (process.minPulseWidth + hi);
}

double
yieldAtCycleTime(const ProcessParams &process, int n, Time period)
{
    VSYNC_ASSERT(n >= 2, "need n >= 2, got %d", n);
    double mean, sd;
    discrepancyMoments(process, n, mean, sd);
    const double budget = period / 2.0 - process.minPulseWidth;
    if (budget <= 0.0)
        return 0.0;
    if (sd <= 0.0)
        return std::fabs(mean) <= budget ? 1.0 : 0.0;
    // P(-budget <= disc <= budget), disc ~ N(mean, sd^2).
    const double hi = (budget - mean) / sd;
    const double lo = (-budget - mean) / sd;
    return std::max(0.0, normalCdf(hi) - normalCdf(lo));
}

SampleSet
sampleChipCycleTimes(const ProcessParams &process, int n, int chips,
                     Rng &rng)
{
    VSYNC_ASSERT(chips >= 1, "need at least one chip");
    SampleSet cycles;
    for (int chip = 0; chip < chips; ++chip) {
        InverterString s(n, process,
                         rng.deriveStream(static_cast<std::uint64_t>(chip)));
        cycles.add(s.pipelinedCycleAnalytic());
    }
    return cycles;
}

SampleSet
sampleChipCycleTimes(const ProcessParams &process, int n, int chips,
                     std::uint64_t seed, ThreadPool &pool)
{
    VSYNC_ASSERT(chips >= 1, "need at least one chip");
    std::vector<double> perChip(static_cast<std::size_t>(chips), 0.0);
    pool.parallelForRange(
        perChip.size(), 8,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t chip = begin; chip < end; ++chip) {
                InverterString s(n, process, Rng::forTrial(seed, chip));
                perChip[chip] = s.pipelinedCycleAnalytic();
            }
        });
    SampleSet cycles;
    for (const double c : perChip)
        cycles.add(c);
    return cycles;
}

} // namespace vsync::circuit
