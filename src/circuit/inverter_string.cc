#include "circuit/inverter_string.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "common/logging.hh"
#include "desim/clock_source.hh"
#include "desim/signal.hh"
#include "desim/simulator.hh"

namespace vsync::circuit
{

InverterString::InverterString(int n, const ProcessParams &process,
                               Rng rng)
    : minPulse(process.minPulseWidth)
{
    VSYNC_ASSERT(n >= 1, "inverter string needs n >= 1, got %d", n);
    stages.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        stages.push_back(process.sampleStageDelays(rng, i % 2 == 0));
}

Time
InverterString::traversalDelayRiseIn() const
{
    // A rising edge into an inverter makes its output fall; the edge
    // type alternates down the string.
    Time total = 0.0;
    bool rising = true;
    for (const desim::EdgeDelays &st : stages) {
        total += rising ? st.fall : st.rise;
        rising = !rising;
    }
    return total;
}

Time
InverterString::traversalDelayFallIn() const
{
    Time total = 0.0;
    bool rising = false;
    for (const desim::EdgeDelays &st : stages) {
        total += rising ? st.fall : st.rise;
        rising = !rising;
    }
    return total;
}

Time
InverterString::prefixDiscrepancy(int k) const
{
    VSYNC_ASSERT(k >= 0 && k <= length(), "bad prefix %d", k);
    Time fall_in = 0.0, rise_in = 0.0;
    bool rising_for_rise_in = true;
    for (int i = 0; i < k; ++i) {
        const desim::EdgeDelays &st = stages[i];
        rise_in += rising_for_rise_in ? st.fall : st.rise;
        fall_in += rising_for_rise_in ? st.rise : st.fall;
        rising_for_rise_in = !rising_for_rise_in;
    }
    return fall_in - rise_in;
}

Time
InverterString::worstPrefixDiscrepancy() const
{
    // Incremental version of prefixDiscrepancy over all prefixes.
    Time fall_in = 0.0, rise_in = 0.0, worst = 0.0;
    bool rising = true;
    for (const desim::EdgeDelays &st : stages) {
        rise_in += rising ? st.fall : st.rise;
        fall_in += rising ? st.rise : st.fall;
        rising = !rising;
        worst = std::max(worst, std::fabs(fall_in - rise_in));
    }
    return worst;
}

Time
InverterString::equipotentialCycle() const
{
    return std::max(traversalDelayRiseIn(), traversalDelayFallIn());
}

Time
InverterString::pipelinedCycleAnalytic() const
{
    return 2.0 * (minPulse + worstPrefixDiscrepancy());
}

bool
InverterString::runsAtPeriod(Time period, int cycles) const
{
    VSYNC_ASSERT(period > 0.0 && cycles >= 2, "bad drive parameters");

    desim::Simulator sim;
    std::deque<desim::Signal> nets;
    // Consistent DC initial conditions: each inverter's output is the
    // complement of its input, so the idle string alternates 0/1.
    nets.emplace_back("in", false);
    for (int i = 0; i < length(); ++i)
        nets.emplace_back(csprintf("n%d", i), i % 2 == 0);

    std::deque<std::unique_ptr<desim::DelayElement>> inverters;
    for (int i = 0; i < length(); ++i) {
        inverters.push_back(std::make_unique<desim::DelayElement>(
            sim, nets[i], nets[i + 1], stages[i], true));
        // Restoring stages swallow pulses narrower than the process
        // minimum -- this is what kills an over-clocked string at the
        // first stage whose phase collapses (the analytic model's
        // per-prefix policing).
        inverters.back()->setMinPulse(minPulse);
    }

    // Record output transitions.
    std::vector<std::pair<Time, bool>> out_events;
    nets.back().onChange([&out_events](Time t, bool v) {
        out_events.emplace_back(t, v);
    });

    desim::PeriodicClock clock(sim, nets.front(), period, cycles);
    sim.run();

    // Every input edge must arrive: 2 transitions per cycle.
    if (out_events.size() != static_cast<std::size_t>(2 * cycles))
        return false;
    // Phases (gaps between consecutive output transitions) must stay
    // at least the minimum pulse width; the final gap has no successor.
    for (std::size_t i = 1; i < out_events.size(); ++i) {
        if (out_events[i].first - out_events[i - 1].first <
            minPulse - 1e-9) {
            return false;
        }
        // Transition polarity must alternate (no swallowed edges).
        if (out_events[i].second == out_events[i - 1].second)
            return false;
    }
    return true;
}

Time
InverterString::minPipelinedPeriod(int cycles, Time tolerance) const
{
    VSYNC_ASSERT(tolerance > 0.0, "bad tolerance %g", tolerance);
    Time lo = 2.0 * minPulse;         // certainly too fast
    Time hi = 2.0 * equipotentialCycle() + 4.0 * minPulse; // works
    VSYNC_ASSERT(runsAtPeriod(hi, cycles),
                 "upper bracket %g ns does not run", hi);
    while (hi - lo > tolerance) {
        const Time mid = (lo + hi) / 2.0;
        if (runsAtPeriod(mid, cycles))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace vsync::circuit
