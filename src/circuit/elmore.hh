/**
 * @file
 * Elmore delay analysis of unbuffered (equipotential) clock trees.
 *
 * A6 gives only the speed-of-light floor tau >= alpha * P. A real
 * unbuffered tree is a distributed RC network: the driver must charge
 * every wire segment and leaf load through the resistance of the path,
 * and the classic first-order estimate of the delay to node v is the
 * Elmore sum
 *
 *   t(v) = sum over path edges e (root -> v) of R(e) * C_downstream(e)
 *
 * where C_downstream(e) counts half of e's own wire capacitance plus
 * everything hanging below it. For a balanced H-tree over area A the
 * Elmore delay grows like Theta(A) -- quadratically in the side length
 * -- which is exactly why the paper turns to buffered, pipelined
 * distribution as arrays grow. The per-node figures also expose the
 * *skew* of unbalanced trees (e.g. a spine driven from one end), which
 * the flat alpha*P model cannot.
 */

#ifndef VSYNC_CIRCUIT_ELMORE_HH
#define VSYNC_CIRCUIT_ELMORE_HH

#include <vector>

#include "clocktree/clock_tree.hh"
#include "graph/graph.hh"

namespace vsync::circuit
{

/** Electrical constants of the distribution wiring. */
struct WireRC
{
    /** Resistance per unit length (ohm / lambda). */
    double rPerLambda = 1.0;
    /** Capacitance per unit length (fF / lambda). */
    double cPerLambda = 0.1;
    /** Lumped load at every bound cell tap (fF). */
    double cLeaf = 5.0;
    /** Driver output resistance at the root (ohm). */
    double rDriver = 10.0;
    /**
     * Conversion of R*C products to nanoseconds (an RC of
     * ohm * fF = 1e-6 ns; the 0.69 ln2 factor for 50% swing is folded
     * in here).
     */
    double nsPerOhmFarad = 0.69e-6;
};

/** Result of an Elmore analysis. */
struct ElmoreReport
{
    /** 50%-swing delay from the driver to each tree node (ns). */
    std::vector<Time> arrival;
    /** Max arrival over nodes bound to cells (the settle time). */
    Time maxLeafArrival = 0.0;
    /** Min arrival over bound nodes. */
    Time minLeafArrival = 0.0;
    /** Max |arrival difference| over communicating-cell pairs, when a
     *  comm graph was supplied (0 otherwise). */
    Time maxCommSkew = 0.0;
    /** Total capacitance the driver sees (fF). */
    double totalCapacitance = 0.0;
};

/**
 * Elmore delays of every node of @p tree under @p rc.
 *
 * @param comm optional communication graph (same cell ids as the
 *             tree's bound cells) for skew-between-neighbours
 *             reporting; pass nullptr to skip.
 */
ElmoreReport elmoreAnalysis(const clocktree::ClockTree &tree,
                            const WireRC &rc,
                            const graph::Graph *comm = nullptr);

} // namespace vsync::circuit

#endif // VSYNC_CIRCUIT_ELMORE_HH
