/**
 * @file
 * Deterministic parallel Monte-Carlo engine.
 *
 * The engine runs N independent trials of a stochastic experiment and
 * reduces them to summary statistics. Determinism contract:
 *
 *  - trial i draws randomness only from Rng::forTrial(cfg.seed, i),
 *  - trial i writes its observable only to samples[i],
 *  - the reduction folds samples in trial order after all trials done,
 *
 * so the full result — every sample bit, every statistic — is a pure
 * function of (seed, trials, the trial function) and is identical for
 * any thread count and any dynamic schedule. Thread count changes only
 * wall-clock time.
 */

#ifndef VSYNC_MC_MONTECARLO_HH
#define VSYNC_MC_MONTECARLO_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace vsync::obs
{
class MetricsRegistry;
} // namespace vsync::obs

namespace vsync::mc
{

/** Parameters shared by every Monte-Carlo sweep. */
struct McConfig
{
    /** Experiment seed; trial i uses Rng::forTrial(seed, i). */
    std::uint64_t seed = 0x5eed5eed5eed5eedULL;

    /** Number of independent trials. */
    std::size_t trials = 1024;

    /** Compute threads (caller included); 0 = defaultThreadCount(). */
    unsigned threads = 0;

    /** Trials per scheduling chunk (amortises per-chunk scratch). */
    std::size_t grain = 16;

    /**
     * Optional metrics registry. When set, the sweep records under
     * "mc.<metricsName>.": trials and rng_draws counters plus wall_ms
     * and trials_per_s gauges. The per-trial hot path pays one branch;
     * rng_draws is exact because every distribution funnels through
     * Rng::next().
     */
    obs::MetricsRegistry *metrics = nullptr;

    /** Metric name component identifying this sweep. */
    std::string metricsName = "sweep";

    /**
     * Fatal on configurations that would silently degenerate: zero
     * trials (empty samples, NaN statistics downstream) or zero grain
     * (divides the schedule into nothing; parallelForRange would spin
     * forever handing out empty chunks). Called by runTrials and the
     * custom sweep loops before any work is scheduled.
     */
    void validate() const;
};

/** One trial: map (trial index, its private rng) to one observable. */
using TrialFn = std::function<double(std::uint64_t trial, Rng &rng)>;

/** Reduced result of a sweep. */
struct McResult
{
    /** Per-trial observables, indexed by trial. */
    std::vector<double> samples;

    /** Mean/stddev/min/max over samples, folded in trial order. */
    RunningStat stat;

    /** Quantile by linear interpolation (sorts a copy). @pre samples
     *  non-empty and 0 <= q <= 1. */
    double quantile(double q) const;

    double mean() const { return stat.mean(); }
    double stddev() const { return stat.stddev(); }
    double min() const { return stat.min(); }
    double max() const { return stat.max(); }

    /** True when every sample is bitwise equal to @p other's. */
    bool bitIdentical(const McResult &other) const;
};

/** Fold a filled samples vector into @p r.stat (trial order). */
void reduceInTrialOrder(McResult &r);

/**
 * Record one sweep's throughput metrics into @p reg under
 * "mc.<name>.": trials / rng_draws counters, wall_ms / trials_per_s
 * gauges. Shared by runTrials and the custom sweep loops in sweeps.cc.
 */
void recordSweepMetrics(obs::MetricsRegistry &reg, const std::string &name,
                        std::size_t trials, double wall_seconds,
                        std::uint64_t rng_draws);

/** Run cfg.trials trials of @p fn on @p pool. */
[[nodiscard]] McResult runTrials(ThreadPool &pool, const McConfig &cfg,
                                 const TrialFn &fn);

/** Convenience overload owning a pool of cfg.threads threads. */
[[nodiscard]] McResult runTrials(const McConfig &cfg, const TrialFn &fn);

} // namespace vsync::mc

#endif // VSYNC_MC_MONTECARLO_HH
