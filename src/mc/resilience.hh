/**
 * @file
 * Resilience sweeps: yield and graceful degradation under faults.
 *
 * Where sweeps.hh asks "how fast is a healthy chip", these sweeps ask
 * "how much survives a broken one". Each trial draws a FaultPlan from
 * its private substream (fault::FaultPlan, so plans are bit-identical
 * at any thread count), arms it on a simulated clock distribution --
 * a buffered H-tree or spine (ClockNet) or the redundant TRIX grid --
 * and measures the realised per-cell arrival surface: the fraction of
 * cells still correctly clocked and the maximum skew between
 * communicating cells that both got a clock. Sweeping the fault rate
 * yields the graceful-degradation curves BENCH_fault_tolerance plots;
 * hybridSurvivalSweep does the same for the Section VI handshake
 * network under severed wires.
 *
 * All sweeps obey the Monte-Carlo determinism contract: results are
 * bit-identical for any cfg.threads.
 */

#ifndef VSYNC_MC_RESILIENCE_HH
#define VSYNC_MC_RESILIENCE_HH

#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "clocktree/buffering.hh"
#include "clocktree/clock_tree.hh"
#include "core/skew_kernel.hh"
#include "core/wire_delay.hh"
#include "fault/fault_plan.hh"
#include "fault/injector.hh"
#include "hybrid/network.hh"
#include "layout/layout.hh"
#include "mc/montecarlo.hh"

namespace vsync::obs
{
class Counter;
} // namespace vsync::obs

namespace vsync::mc
{

/** The clock distribution schemes the resilience sweeps compare. */
enum class DistributionKind
{
    /** Buffered equidistant H-tree (Theorem 2's scheme). */
    HTree,
    /** Buffered spine along the array (Theorem 3's scheme). */
    Spine,
    /** Redundant median-voting grid (fault::TrixGrid). */
    TrixGrid,
};

/** Human-readable distribution name. */
std::string distributionKindName(DistributionKind kind);

/** Physical constants of the simulated distributions. */
struct ResilienceConfig
{
    /** Per-unit wire-delay spread (the Section III m and eps). */
    core::WireDelay delay{0.05, 0.005};
    /** Buffer insertion delay per stage (ns). */
    Time bufferDelay = 0.2;
    /** Buffer spacing along tree wires (lambda, A7). */
    Length bufferSpacing = 4.0;
};

/** One point of a graceful-degradation curve. */
struct ResiliencePoint
{
    /** Per-site fault rate this point was measured at. */
    double faultRate = 0.0;
    /** Max skew over fully clocked comm pairs, per trial. */
    McResult maxCommSkew;
    /** Fraction of cells still clocked, per trial. */
    McResult clockedFraction;
    /** Mean number of faults injected per trial. */
    double meanFaults = 0.0;
};

/**
 * The shared read-only state of one resilience experiment, built once
 * before the trial fan-out: the distribution under test (tree + its
 * buffered form, or the grid dimensions), its fault universe and
 * rates, and the compiled kernel. Immutable after compile; safe to
 * share across threads. serve::SweepService compiles one of these per
 * resilience request (kernel via the scenario cache) and runs its
 * trials on the shared pool.
 */
struct ResilienceScenario
{
    DistributionKind kind = DistributionKind::HTree;
    int rows = 0;
    int cols = 0;
    /** Tree distributions only; empty for TrixGrid. */
    clocktree::ClockTree tree;
    clocktree::BufferedClockTree btree;
    fault::FaultUniverse universe;
    fault::FaultRates rates;
    ResilienceConfig rc;
    /** Tree-compiled, or pairs-only for TrixGrid. */
    std::shared_ptr<const core::SkewKernel> kernel;

    /**
     * One trial, bit-identical for any thread count: draws the fault
     * plan and the wire delays from disjoint substreams of
     * Rng::forTrial(seed, trial), arms the plan and drives one clock
     * pulse. @p kind_counters, when set, receives one inc() per
     * planned fault on the counter of its kind.
     */
    fault::DistributionOutcome
    runTrial(std::uint64_t seed, std::uint64_t trial,
             const std::array<obs::Counter *, fault::faultKindCount>
                 *kind_counters = nullptr) const;

    /**
     * Trials [first_trial, first_trial + count) in one blocked pass:
     * each trial's faulty pulse still runs individually (a discrete
     * event simulation cannot be lane-blocked), but the per-cell
     * arrival surfaces are scattered into a lane-major matrix and
     * reduced by a single core::SkewKernel::arrivalSkewBlock call --
     * trial j's slots are bitwise what runTrial would have produced.
     * @p count <= core::SkewKernel::maxLanes; callers drive this with
     * kernel->blockWidth() and a narrower remainder block.
     * @p lane_scratch is resized once and reusable across calls on the
     * same thread.
     */
    void runTrialBlock(std::uint64_t seed, std::uint64_t first_trial,
                       std::size_t count, std::span<double> out_skew,
                       std::span<double> out_clocked,
                       std::span<double> out_faults,
                       const std::array<obs::Counter *,
                                        fault::faultKindCount>
                           *kind_counters,
                       std::vector<Time> &lane_scratch) const;
};

/**
 * Build the shared state resilienceAtRate fans trials over: the
 * distribution for @p kind over a rows x cols mesh layout @p l (cells
 * row-major), fault::FaultRates::mixed(fault_rate), and the kernel
 * fetched from @p kernels (tree-compiled, or pairs-only for TrixGrid).
 */
ResilienceScenario
compileResilienceScenario(const layout::Layout &l, int rows, int cols,
                          DistributionKind kind, double fault_rate,
                          const ResilienceConfig &rc,
                          const core::KernelProvider &kernels);

/**
 * Measure one distribution at one fault rate over a rows x cols mesh
 * layout @p l (cells row-major). Each trial arms
 * fault::FaultRates::mixed(fault_rate) on the distribution and drives
 * one clock pulse; trial i draws its plan and its wire delays from
 * disjoint substreams of Rng::forTrial(cfg.seed, i).
 */
ResiliencePoint resilienceAtRate(const layout::Layout &l, int rows,
                                 int cols, DistributionKind kind,
                                 double fault_rate,
                                 const ResilienceConfig &rc,
                                 const McConfig &cfg);

/**
 * As above with the kernel fetched from @p kernels (pass
 * serve::ScenarioCache::provider() to amortise the compile across
 * sweeps). Bit-identical to the direct-compile overload.
 */
ResiliencePoint resilienceAtRate(const layout::Layout &l, int rows,
                                 int cols, DistributionKind kind,
                                 double fault_rate,
                                 const ResilienceConfig &rc,
                                 const McConfig &cfg,
                                 const core::KernelProvider &kernels);

/**
 * The graceful-degradation curve: resilienceAtRate at every rate of
 * @p rates (typically including 0 as the healthy baseline).
 */
std::vector<ResiliencePoint>
degradationCurve(const layout::Layout &l, int rows, int cols,
                 DistributionKind kind, const std::vector<double> &rates,
                 const ResilienceConfig &rc, const McConfig &cfg);

/**
 * Fraction of hybrid elements still completing cycles when each
 * handshake wire (2 per adjacent element pair) is severed independently
 * with probability @p fault_rate. An element adjacent to a severed wire
 * stalls, and the stall propagates to elements waiting on it -- the
 * observable is the surviving fraction after @p rounds rounds, showing
 * the locality of the damage (unlike a clock tree, a severed wire never
 * silences cells that do not wait on it).
 */
McResult hybridSurvivalSweep(const hybrid::HybridNetwork &net,
                             double fault_rate, int rounds,
                             const McConfig &cfg);

} // namespace vsync::mc

#endif // VSYNC_MC_RESILIENCE_HH
