#include "mc/sweeps.hh"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "circuit/inverter_string.hh"
#include "circuit/yield.hh"
#include "common/logging.hh"
#include "core/skew_kernel.hh"
#include "obs/metrics.hh"
#include "systolic/selftimed.hh"

namespace vsync::mc
{

McResult
skewSweep(const layout::Layout &l, const clocktree::ClockTree &t,
          const core::WireDelay &delay, const McConfig &cfg)
{
    return skewSweep(l, t, delay, cfg, core::directCompile());
}

McResult
skewSweep(const layout::Layout &l, const clocktree::ClockTree &t,
          const core::WireDelay &delay, const McConfig &cfg,
          const core::KernelProvider &kernels)
{
    cfg.validate();
    // One kernel fetch for the scenario, shared read-only by every
    // worker; a kernel is immutable after construction, so no warm-up
    // or locking is needed before the threads start. A caching
    // provider amortises the compile across sweeps as well.
    const std::shared_ptr<const core::SkewKernel> kptr = kernels(l, &t);
    const core::SkewKernel &kernel = *kptr;

    ThreadPool pool(cfg.threads);
    McResult r;
    r.samples.assign(cfg.trials, 0.0);

    // Same observability contract as runTrials (this sweep has its own
    // loop for the per-chunk scratch vector).
    std::atomic<std::uint64_t> draws{0};
    std::chrono::steady_clock::time_point wall0;
    if (cfg.metrics)
        wall0 = std::chrono::steady_clock::now();

    // Lane-blocked trial loop: W trials share one pass over the flat
    // arrays (autotuned once per kernel; any W is bit-identical, and a
    // chunk end just runs a narrower remainder block, so results do
    // not depend on grain or thread count).
    const std::size_t blockW = kernel.blockWidth();
    pool.parallelForRange(
        cfg.trials, cfg.grain,
        [&](std::size_t begin, std::size_t end) {
            std::vector<Time> arrival; // scratch, reused per chunk
            std::vector<Rng> lanes;
            lanes.reserve(blockW);
            std::uint64_t chunk_draws = 0;
            for (std::size_t i = begin; i < end; i += blockW) {
                const std::size_t w = std::min(blockW, end - i);
                lanes.clear();
                for (std::size_t j = 0; j < w; ++j)
                    lanes.push_back(Rng::forTrial(cfg.seed, i + j));
                kernel.sampleMaxCommSkewBlock(
                    delay, {lanes.data(), w},
                    {r.samples.data() + i, w}, arrival);
                if (cfg.metrics)
                    for (std::size_t j = 0; j < w; ++j)
                        chunk_draws += lanes[j].draws();
            }
            if (cfg.metrics)
                draws.fetch_add(chunk_draws, std::memory_order_relaxed);
        });
    reduceInTrialOrder(r);

    if (cfg.metrics) {
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall0)
                .count();
        recordSweepMetrics(*cfg.metrics, cfg.metricsName, cfg.trials,
                           wall, draws.load(std::memory_order_relaxed));
        kernel.exportMetrics(*cfg.metrics,
                             "mc." + cfg.metricsName + ".kernel.");
    }
    return r;
}

McResult
chipCycleSweep(const circuit::ProcessParams &process, int n,
               const McConfig &cfg)
{
    ThreadPool pool(cfg.threads);
    return runTrials(pool, cfg, [&](std::uint64_t, Rng &rng) {
        circuit::InverterString s(n, process, rng);
        return s.pipelinedCycleAnalytic();
    });
}

double
yieldAtCycleTimeMc(const circuit::ProcessParams &process, int n,
                   Time period, const McConfig &cfg)
{
    VSYNC_ASSERT(cfg.trials >= 1, "need at least one chip");
    const McResult cycles = chipCycleSweep(process, n, cfg);
    const std::size_t good = static_cast<std::size_t>(std::count_if(
        cycles.samples.begin(), cycles.samples.end(),
        [period](double c) { return c <= period; }));
    return static_cast<double>(good) /
           static_cast<double>(cycles.samples.size());
}

McResult
selfTimedCycleSweep(const systolic::SystolicArray &array, int firings,
                    double p_fast, Time fast, Time slow,
                    const McConfig &cfg)
{
    array.validate(); // validate once, not per trial per thread
    ThreadPool pool(cfg.threads);
    return runTrials(pool, cfg, [&](std::uint64_t, Rng &rng) {
        const auto speeds = systolic::bernoulliServiceTimes(
            array.size(), p_fast, fast, slow, rng);
        const auto res = systolic::runSelfTimed(
            array, firings, systolic::serviceFromSpeeds(speeds), true);
        return res.steadyCycle;
    });
}

McResult
hybridCycleSweep(const hybrid::HybridNetwork &net, int rounds,
                 const McConfig &cfg)
{
    VSYNC_ASSERT(net.params().jitterAmplitude > 0.0,
                 "jitter-free hybrid runs are deterministic; call "
                 "simulate() once instead");
    ThreadPool pool(cfg.threads);
    return runTrials(pool, cfg, [&](std::uint64_t, Rng &rng) {
        return net.simulate(rounds, &rng).steadyCycle;
    });
}

} // namespace vsync::mc
