#include "mc/sweeps.hh"

#include <algorithm>

#include "circuit/inverter_string.hh"
#include "circuit/yield.hh"
#include "common/logging.hh"
#include "core/skew_analysis.hh"
#include "systolic/selftimed.hh"

namespace vsync::mc
{

McResult
skewSweep(const layout::Layout &l, const clocktree::ClockTree &t,
          double m, double eps, const McConfig &cfg)
{
    // Shared read-only state: warm the lazy geometry cache and resolve
    // the communicating pairs before any worker touches the tree.
    t.warmCaches();
    const auto pairs = core::commNodePairs(l, t);

    ThreadPool pool(cfg.threads);
    McResult r;
    r.samples.assign(cfg.trials, 0.0);
    pool.parallelForRange(
        cfg.trials, cfg.grain,
        [&](std::size_t begin, std::size_t end) {
            std::vector<Time> arrival; // scratch, reused per chunk
            for (std::size_t i = begin; i < end; ++i) {
                Rng rng = Rng::forTrial(cfg.seed, i);
                r.samples[i] = core::sampleMaxCommSkew(t, pairs, m, eps,
                                                       rng, arrival);
            }
        });
    reduceInTrialOrder(r);
    return r;
}

McResult
chipCycleSweep(const circuit::ProcessParams &process, int n,
               const McConfig &cfg)
{
    ThreadPool pool(cfg.threads);
    return runTrials(pool, cfg, [&](std::uint64_t, Rng &rng) {
        circuit::InverterString s(n, process, rng);
        return s.pipelinedCycleAnalytic();
    });
}

double
yieldAtCycleTimeMc(const circuit::ProcessParams &process, int n,
                   Time period, const McConfig &cfg)
{
    VSYNC_ASSERT(cfg.trials >= 1, "need at least one chip");
    const McResult cycles = chipCycleSweep(process, n, cfg);
    const std::size_t good = static_cast<std::size_t>(std::count_if(
        cycles.samples.begin(), cycles.samples.end(),
        [period](double c) { return c <= period; }));
    return static_cast<double>(good) /
           static_cast<double>(cycles.samples.size());
}

McResult
selfTimedCycleSweep(const systolic::SystolicArray &array, int firings,
                    double p_fast, Time fast, Time slow,
                    const McConfig &cfg)
{
    array.validate(); // validate once, not per trial per thread
    ThreadPool pool(cfg.threads);
    return runTrials(pool, cfg, [&](std::uint64_t, Rng &rng) {
        const auto speeds = systolic::bernoulliServiceTimes(
            array.size(), p_fast, fast, slow, rng);
        const auto res = systolic::runSelfTimed(
            array, firings, systolic::serviceFromSpeeds(speeds), true);
        return res.steadyCycle;
    });
}

McResult
hybridCycleSweep(const hybrid::HybridNetwork &net, int rounds,
                 const McConfig &cfg)
{
    VSYNC_ASSERT(net.params().jitterAmplitude > 0.0,
                 "jitter-free hybrid runs are deterministic; call "
                 "simulate() once instead");
    ThreadPool pool(cfg.threads);
    return runTrials(pool, cfg, [&](std::uint64_t, Rng &rng) {
        return net.simulate(rounds, &rng).steadyCycle;
    });
}

} // namespace vsync::mc
