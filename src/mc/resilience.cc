#include "mc/resilience.hh"

#include <array>
#include <unordered_set>

#include "clocktree/buffering.hh"
#include "clocktree/builders.hh"
#include "common/logging.hh"
#include "core/skew_kernel.hh"
#include "fault/injector.hh"
#include "obs/metrics.hh"

namespace vsync::mc
{

std::string
distributionKindName(DistributionKind kind)
{
    switch (kind) {
      case DistributionKind::HTree:
        return "htree";
      case DistributionKind::Spine:
        return "spine";
      case DistributionKind::TrixGrid:
        return "trix-grid";
    }
    return "?";
}

namespace
{

// Substream salts within a trial's Rng::forTrial stream: the fault plan
// and the wire-delay realisation never perturb each other, so the same
// chip (delays) can be compared across fault rates.
constexpr std::uint64_t planSalt = 1;
constexpr std::uint64_t delaySalt = 2;

/** The per-chip tree stage-delay model, shared by the scalar and
 *  blocked trial paths. Captures by reference; consume immediately. */
desim::ClockNet::DelayFn
treeDelayFn(const ResilienceConfig &rc, Rng &delay_rng)
{
    return [&rc, &delay_rng](const clocktree::BufferedSite &site,
                             std::size_t) {
        const double unit =
            delay_rng.uniform(rc.delay.lo(), rc.delay.hi());
        const Time stage = site.wireFromParent * unit +
                           (site.isBuffer ? rc.bufferDelay : 0.0);
        return desim::EdgeDelays::same(stage);
    };
}

/** Per-link grid delays from the same model: one buffered unit-pitch
 *  link per stage -- buffer delay plus one lambda of varied wire. */
fault::TrixGrid::LinkDelayFn
gridDelayFn(const ResilienceConfig &rc, Rng &delay_rng)
{
    return [&rc, &delay_rng](int, int, int) {
        return rc.bufferDelay +
               delay_rng.uniform(rc.delay.lo(), rc.delay.hi());
    };
}

/** One faulty-tree trial: build the per-chip DelayFn and simulate. */
fault::DistributionOutcome
treeTrial(const core::SkewKernel &kernel,
          const clocktree::BufferedClockTree &btree,
          const fault::FaultPlan &plan, const ResilienceConfig &rc,
          Rng &delay_rng)
{
    return fault::simulateTreeUnderFaults(
        kernel, btree, treeDelayFn(rc, delay_rng), plan);
}

/** One faulty-grid trial: per-link delays from the same delay model. */
fault::DistributionOutcome
gridTrial(const core::SkewKernel &kernel, int rows, int cols,
          const fault::FaultPlan &plan, const ResilienceConfig &rc,
          Rng &delay_rng)
{
    return fault::simulateGridUnderFaults(
        kernel, rows, cols, gridDelayFn(rc, delay_rng), plan);
}

} // namespace

fault::DistributionOutcome
ResilienceScenario::runTrial(
    std::uint64_t seed, std::uint64_t trial,
    const std::array<obs::Counter *, fault::faultKindCount>
        *kind_counters) const
{
    Rng trial_rng = Rng::forTrial(seed, trial);
    Rng plan_rng = trial_rng.deriveStream(planSalt);
    Rng delay_rng = trial_rng.deriveStream(delaySalt);
    const fault::FaultPlan plan =
        fault::FaultPlan::generate(universe, rates, plan_rng);
    if (kind_counters)
        for (const fault::Fault &f : plan.faults())
            (*kind_counters)[static_cast<std::size_t>(f.kind)]->inc();
    return kind == DistributionKind::TrixGrid
               ? gridTrial(*kernel, rows, cols, plan, rc, delay_rng)
               : treeTrial(*kernel, btree, plan, rc, delay_rng);
}

void
ResilienceScenario::runTrialBlock(
    std::uint64_t seed, std::uint64_t first_trial, std::size_t count,
    std::span<double> out_skew, std::span<double> out_clocked,
    std::span<double> out_faults,
    const std::array<obs::Counter *, fault::faultKindCount>
        *kind_counters,
    std::vector<Time> &lane_scratch) const
{
    VSYNC_ASSERT(count >= 1 && count <= core::SkewKernel::maxLanes,
                 "%zu trials per block (1..%zu supported)", count,
                 core::SkewKernel::maxLanes);
    VSYNC_ASSERT(out_skew.size() == count &&
                     out_clocked.size() == count &&
                     out_faults.size() == count,
                 "output spans must cover the %zu block trials", count);
    const std::size_t stride = core::SkewKernel::laneStride(count);
    const std::size_t cells = kernel->cellCount();
    lane_scratch.resize(cells * stride);
    // The desim pulses stay per-trial (event-driven simulation has no
    // lanes); only their arrival surfaces are batched, scattered
    // lane-major and reduced in one blocked pair fold.
    std::vector<Time> arrival;
    for (std::size_t j = 0; j < count; ++j) {
        Rng trial_rng = Rng::forTrial(seed, first_trial + j);
        Rng plan_rng = trial_rng.deriveStream(planSalt);
        Rng delay_rng = trial_rng.deriveStream(delaySalt);
        const fault::FaultPlan plan =
            fault::FaultPlan::generate(universe, rates, plan_rng);
        if (kind_counters)
            for (const fault::Fault &f : plan.faults())
                (*kind_counters)[static_cast<std::size_t>(f.kind)]
                    ->inc();
        if (kind == DistributionKind::TrixGrid) {
            fault::simulateGridArrivalsUnderFaults(
                *kernel, rows, cols, gridDelayFn(rc, delay_rng), plan,
                arrival);
        } else {
            fault::simulateTreeArrivalsUnderFaults(
                *kernel, btree, treeDelayFn(rc, delay_rng), plan,
                arrival);
        }
        for (std::size_t c = 0; c < cells; ++c)
            lane_scratch[c * stride + j] = arrival[c];
        out_faults[j] = static_cast<double>(plan.size());
    }
    std::array<core::ArrivalSkew, core::SkewKernel::maxLanes> reduced;
    kernel->arrivalSkewBlock(
        std::span<const Time>(lane_scratch.data(), cells * stride),
        std::span<core::ArrivalSkew>(reduced.data(), count));
    for (std::size_t j = 0; j < count; ++j) {
        out_skew[j] = reduced[j].maxCommSkew;
        out_clocked[j] = reduced[j].clockedFraction;
    }
}

ResilienceScenario
compileResilienceScenario(const layout::Layout &l, int rows, int cols,
                          DistributionKind kind, double fault_rate,
                          const ResilienceConfig &rc,
                          const core::KernelProvider &kernels)
{
    VSYNC_ASSERT(static_cast<std::size_t>(rows) *
                         static_cast<std::size_t>(cols) ==
                     l.size(),
                 "grid %dx%d does not cover %zu cells", rows, cols,
                 l.size());
    ResilienceScenario s;
    s.kind = kind;
    s.rows = rows;
    s.cols = cols;
    s.rc = rc;
    s.rates = fault::FaultRates::mixed(fault_rate);
    if (kind == DistributionKind::TrixGrid) {
        s.universe = fault::TrixGrid::universe(rows, cols);
        s.kernel = kernels(l, nullptr);
    } else {
        s.tree = kind == DistributionKind::HTree
                     ? clocktree::buildHTreeGrid(l, rows, cols)
                     : clocktree::buildSpine(l);
        s.btree = clocktree::BufferedClockTree::insertBuffers(
            s.tree, rc.bufferSpacing);
        s.universe = fault::universeOf(s.btree);
        s.kernel = kernels(l, &s.tree);
    }
    return s;
}

ResiliencePoint
resilienceAtRate(const layout::Layout &l, int rows, int cols,
                 DistributionKind kind, double fault_rate,
                 const ResilienceConfig &rc, const McConfig &cfg)
{
    return resilienceAtRate(l, rows, cols, kind, fault_rate, rc, cfg,
                            core::directCompile());
}

ResiliencePoint
resilienceAtRate(const layout::Layout &l, int rows, int cols,
                 DistributionKind kind, double fault_rate,
                 const ResilienceConfig &rc, const McConfig &cfg,
                 const core::KernelProvider &kernels)
{
    cfg.validate();
    // Shared read-only state, built once before the fan-out: the
    // distribution, its fault universe, and one compiled SkewKernel
    // (pairs-only for the grid, which has no clock tree).
    const ResilienceScenario scenario = compileResilienceScenario(
        l, rows, cols, kind, fault_rate, rc, kernels);

    ResiliencePoint point;
    point.faultRate = fault_rate;
    point.maxCommSkew.samples.assign(cfg.trials, 0.0);
    point.clockedFraction.samples.assign(cfg.trials, 0.0);
    std::vector<double> faults(cfg.trials, 0.0);

    // Observability: per-kind injected-fault counters, resolved before
    // the fan-out (registration locks; Counter::inc is lock-free).
    std::array<obs::Counter *, fault::faultKindCount> kindCounters{};
    if (cfg.metrics) {
        for (int k = 0; k < fault::faultKindCount; ++k)
            kindCounters[static_cast<std::size_t>(k)] =
                &cfg.metrics->counter(
                    "mc.resilience.faults." +
                    fault::faultKindName(static_cast<fault::FaultKind>(k)));
    }

    // Blocked trial loop: runTrialBlock batches blockW arrival
    // surfaces per pair-fold pass (bit-identical to per-trial
    // runTrial at any width, grain or thread count).
    const std::size_t blockW = scenario.kernel->blockWidth();
    ThreadPool pool(cfg.threads);
    pool.parallelForRange(
        cfg.trials, cfg.grain,
        [&](std::size_t begin, std::size_t end) {
            std::vector<Time> laneScratch; // reused per chunk
            for (std::size_t i = begin; i < end; i += blockW) {
                const std::size_t w = std::min(blockW, end - i);
                scenario.runTrialBlock(
                    cfg.seed, i, w,
                    {point.maxCommSkew.samples.data() + i, w},
                    {point.clockedFraction.samples.data() + i, w},
                    {faults.data() + i, w},
                    cfg.metrics ? &kindCounters : nullptr,
                    laneScratch);
            }
        });
    reduceInTrialOrder(point.maxCommSkew);
    reduceInTrialOrder(point.clockedFraction);
    double total = 0.0;
    for (const double f : faults)
        total += f;
    point.meanFaults = cfg.trials ? total / cfg.trials : 0.0;
    return point;
}

std::vector<ResiliencePoint>
degradationCurve(const layout::Layout &l, int rows, int cols,
                 DistributionKind kind, const std::vector<double> &rates,
                 const ResilienceConfig &rc, const McConfig &cfg)
{
    std::vector<ResiliencePoint> curve;
    curve.reserve(rates.size());
    for (const double rate : rates)
        curve.push_back(
            resilienceAtRate(l, rows, cols, kind, rate, rc, cfg));
    return curve;
}

McResult
hybridSurvivalSweep(const hybrid::HybridNetwork &net, double fault_rate,
                    int rounds, const McConfig &cfg)
{
    const auto edges = net.partition().elementGraph.undirectedEdges();
    const int elements = net.partition().elementCount;
    VSYNC_ASSERT(elements > 0, "empty partition");
    fault::FaultUniverse universe;
    universe.handshakeWires = 2 * edges.size(); // req + ack per pair
    fault::FaultRates rates;
    rates.severedHandshakeWire = fault_rate;

    ThreadPool pool(cfg.threads);
    return runTrials(pool, cfg, [&](std::uint64_t, Rng &rng) {
        Rng plan_rng = rng.deriveStream(planSalt);
        Rng jitter_rng = rng.deriveStream(delaySalt);
        const fault::FaultPlan plan =
            fault::FaultPlan::generate(universe, rates, plan_rng);

        // Map severed wires back to their element pairs; either wire of
        // a pair down means the handshake never completes.
        std::unordered_set<std::uint64_t> cut;
        for (const fault::Fault &f : plan.faults()) {
            const graph::Edge &e = edges[f.site / 2];
            const std::uint64_t lo = std::min(e.src, e.dst);
            const std::uint64_t hi = std::max(e.src, e.dst);
            cut.insert(lo << 32 | hi);
        }
        const hybrid::HybridNetwork::SeveredFn severed =
            [&cut](int a, int b) {
                const std::uint64_t lo =
                    static_cast<std::uint64_t>(std::min(a, b));
                const std::uint64_t hi =
                    static_cast<std::uint64_t>(std::max(a, b));
                return cut.count(lo << 32 | hi) != 0;
            };

        const hybrid::HybridRunResult res =
            net.simulate(rounds, &jitter_rng, severed);
        std::size_t alive = 0;
        for (const Time t : res.lastCompletion)
            alive += t < infinity;
        return static_cast<double>(alive) /
               static_cast<double>(elements);
    });
}

} // namespace vsync::mc
