#include "mc/montecarlo.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"

namespace vsync::mc
{

double
McResult::quantile(double q) const
{
    VSYNC_ASSERT(!samples.empty(), "quantile of an empty result");
    VSYNC_ASSERT(q >= 0.0 && q <= 1.0, "quantile %g out of [0,1]", q);
    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

bool
McResult::bitIdentical(const McResult &other) const
{
    if (samples.size() != other.samples.size())
        return false;
    return samples.empty() ||
           std::memcmp(samples.data(), other.samples.data(),
                       samples.size() * sizeof(double)) == 0;
}

void
reduceInTrialOrder(McResult &r)
{
    r.stat.reset();
    for (const double x : r.samples)
        r.stat.add(x);
}

McResult
runTrials(ThreadPool &pool, const McConfig &cfg, const TrialFn &fn)
{
    VSYNC_ASSERT(static_cast<bool>(fn), "null trial function");
    McResult r;
    r.samples.assign(cfg.trials, 0.0);
    pool.parallelForRange(
        cfg.trials, cfg.grain,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                Rng rng = Rng::forTrial(cfg.seed, i);
                r.samples[i] = fn(i, rng);
            }
        });
    reduceInTrialOrder(r);
    return r;
}

McResult
runTrials(const McConfig &cfg, const TrialFn &fn)
{
    ThreadPool pool(cfg.threads);
    return runTrials(pool, cfg, fn);
}

} // namespace vsync::mc
