#include "mc/montecarlo.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace vsync::mc
{

void
McConfig::validate() const
{
    VSYNC_ASSERT(trials > 0, "McConfig: trials must be positive");
    VSYNC_ASSERT(grain > 0,
                 "McConfig: grain must be positive (a zero grain "
                 "divides the schedule into nothing)");
}

double
McResult::quantile(double q) const
{
    VSYNC_ASSERT(!samples.empty(), "quantile of an empty result");
    VSYNC_ASSERT(q >= 0.0 && q <= 1.0, "quantile %g out of [0,1]", q);
    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

bool
McResult::bitIdentical(const McResult &other) const
{
    if (samples.size() != other.samples.size())
        return false;
    return samples.empty() ||
           std::memcmp(samples.data(), other.samples.data(),
                       samples.size() * sizeof(double)) == 0;
}

void
reduceInTrialOrder(McResult &r)
{
    r.stat.reset();
    for (const double x : r.samples)
        r.stat.add(x);
}

void
recordSweepMetrics(obs::MetricsRegistry &reg, const std::string &name,
                   std::size_t trials, double wall_seconds,
                   std::uint64_t rng_draws)
{
    const std::string base = "mc." + name + ".";
    reg.counter(base + "trials").inc(trials);
    reg.counter(base + "rng_draws").inc(rng_draws);
    reg.gauge(base + "wall_ms").set(wall_seconds * 1e3);
    reg.gauge(base + "trials_per_s")
        .set(wall_seconds > 0.0
                 ? static_cast<double>(trials) / wall_seconds
                 : 0.0);
}

McResult
runTrials(ThreadPool &pool, const McConfig &cfg, const TrialFn &fn)
{
    VSYNC_ASSERT(static_cast<bool>(fn), "null trial function");
    cfg.validate();
    McResult r;
    r.samples.assign(cfg.trials, 0.0);

    // Observability: RNG consumption is summed with a relaxed atomic
    // (integer adds commute, so the total is schedule-independent) and
    // the sweep is wall-clock timed only when a registry is attached.
    std::atomic<std::uint64_t> draws{0};
    std::chrono::steady_clock::time_point wall0;
    if (cfg.metrics)
        wall0 = std::chrono::steady_clock::now();

    pool.parallelForRange(
        cfg.trials, cfg.grain,
        [&](std::size_t begin, std::size_t end) {
            std::uint64_t chunk_draws = 0;
            for (std::size_t i = begin; i < end; ++i) {
                Rng rng = Rng::forTrial(cfg.seed, i);
                r.samples[i] = fn(i, rng);
                if (cfg.metrics)
                    chunk_draws += rng.draws();
            }
            if (cfg.metrics)
                draws.fetch_add(chunk_draws, std::memory_order_relaxed);
        });
    reduceInTrialOrder(r);

    if (cfg.metrics) {
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall0)
                .count();
        recordSweepMetrics(*cfg.metrics, cfg.metricsName, cfg.trials,
                           wall, draws.load(std::memory_order_relaxed));
    }
    return r;
}

McResult
runTrials(const McConfig &cfg, const TrialFn &fn)
{
    ThreadPool pool(cfg.threads);
    return runTrials(pool, cfg, fn);
}

} // namespace vsync::mc
