/**
 * @file
 * Domain Monte-Carlo sweeps built on the deterministic engine.
 *
 * Each sweep parallelises one of the repo's stochastic experiments:
 *
 *  - skewSweep: per-chip realised clock skew over a clock tree
 *    (Section III wire-delay model, core::sampleSkewInstance's hot
 *    path),
 *  - chipCycleSweep / yieldAtCycleTimeMc: fabricated inverter-string
 *    cycle times and the Table 7 yield experiment (Section VII),
 *  - selfTimedCycleSweep: steady cycle of self-timed arrays whose
 *    cells have randomly fabricated service times (Section I),
 *  - hybridCycleSweep: steady cycle of the hybrid network under
 *    per-round jitter (Section VI).
 *
 * All sweeps obey the engine's determinism contract: results are
 * bit-identical for any cfg.threads.
 */

#ifndef VSYNC_MC_SWEEPS_HH
#define VSYNC_MC_SWEEPS_HH

#include "circuit/process.hh"
#include "clocktree/clock_tree.hh"
#include "core/skew_kernel.hh"
#include "core/wire_delay.hh"
#include "hybrid/network.hh"
#include "layout/layout.hh"
#include "mc/montecarlo.hh"
#include "systolic/array.hh"

namespace vsync::mc
{

/**
 * Maximum realised communicating skew per sampled chip: cfg.trials
 * chips, each with per-wire unit delays drawn from
 * [delay.lo(), delay.hi()]. Compiles one core::SkewKernel for the
 * scenario, shares it read-only across the worker threads, and runs
 * trials kernel.blockWidth() lanes at a time through the blocked
 * entry points; results are bit-identical to the pre-kernel per-chip
 * sampler for the same cfg.seed at any width. When cfg.metrics
 * is set, the kernel's stats are exported under
 * "mc.<metricsName>.kernel." alongside the sweep counters.
 */
McResult skewSweep(const layout::Layout &l, const clocktree::ClockTree &t,
                   const core::WireDelay &delay, const McConfig &cfg);

/**
 * As above, but the scenario's kernel is fetched from @p kernels
 * instead of compiled directly -- pass
 * serve::ScenarioCache::provider() so repeated sweeps over the same
 * (layout, tree) reuse one compile. Results are bit-identical to the
 * direct-compile overload for the same cfg.
 */
McResult skewSweep(const layout::Layout &l, const clocktree::ClockTree &t,
                   const core::WireDelay &delay, const McConfig &cfg,
                   const core::KernelProvider &kernels);

/**
 * Minimum pipelined cycle time per fabricated n-stage inverter string
 * (one trial = one chip).
 */
McResult chipCycleSweep(const circuit::ProcessParams &process, int n,
                        const McConfig &cfg);

/**
 * Monte-Carlo yield: fraction of fabricated chips whose minimum
 * pipelined cycle fits within @p period. The estimator shares
 * chipCycleSweep's per-chip substreams, so it converges to
 * circuit::yieldAtCycleTime as cfg.trials grows.
 */
double yieldAtCycleTimeMc(const circuit::ProcessParams &process, int n,
                          Time period, const McConfig &cfg);

/**
 * Steady self-timed cycle per sampled array: each trial fabricates the
 * cells' service times with systolic::bernoulliServiceTimes(p_fast,
 * fast, slow) and runs the bounded-buffer self-timed schedule for
 * @p firings firings.
 */
McResult selfTimedCycleSweep(const systolic::SystolicArray &array,
                             int firings, double p_fast, Time fast,
                             Time slow, const McConfig &cfg);

/**
 * Steady hybrid cycle per trial under per-round jitter: each trial
 * simulates @p rounds rounds of @p net's max-plus recurrence with its
 * own jitter stream. @pre net.params().jitterAmplitude > 0 (otherwise
 * the result is deterministic and one simulate() call suffices).
 */
McResult hybridCycleSweep(const hybrid::HybridNetwork &net, int rounds,
                          const McConfig &cfg);

} // namespace vsync::mc

#endif // VSYNC_MC_SWEEPS_HH
