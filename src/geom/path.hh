/**
 * @file
 * Rectilinear polylines used for wire routes.
 */

#ifndef VSYNC_GEOM_PATH_HH
#define VSYNC_GEOM_PATH_HH

#include <vector>

#include "geom/point.hh"

namespace vsync::geom
{

/**
 * A polyline through a sequence of points. Wire routes in layouts and
 * clock trees are stored as Paths; their length (sum of segment
 * Manhattan lengths) is the "physical length" the paper's delay and skew
 * assumptions refer to.
 */
class Path
{
  public:
    Path() = default;

    /** Construct from an explicit point sequence. */
    explicit Path(std::vector<Point> pts) : points(std::move(pts)) {}

    /** Append a point to the end of the path. */
    void append(const Point &p) { points.push_back(p); }

    /** Number of points (segments = points - 1). */
    std::size_t size() const { return points.size(); }

    /** True when the path has no segments. */
    bool empty() const { return points.size() < 2; }

    /** Access the i-th point. */
    const Point &operator[](std::size_t i) const { return points[i]; }

    /** First point. @pre not empty of points. */
    const Point &front() const { return points.front(); }

    /** Last point. @pre not empty of points. */
    const Point &back() const { return points.back(); }

    /** Total Manhattan length of all segments. */
    Length length() const;

    /** Underlying point sequence. */
    const std::vector<Point> &pts() const { return points; }

    /**
     * The point reached after travelling @p dist along the path from its
     * start (clamped to the endpoints). Used to place clock buffers at
     * regular intervals along a route.
     */
    Point pointAt(Length dist) const;

    /** Concatenate another path (its first point should equal back()). */
    void extend(const Path &tail);

  private:
    std::vector<Point> points;
};

/**
 * An L-shaped (horizontal-then-vertical) Manhattan route from @p a
 * to @p b. Degenerates to a straight segment when aligned.
 */
Path lRoute(const Point &a, const Point &b);

/** A Z route: horizontal to mid-x, vertical, then horizontal to @p b. */
Path zRoute(const Point &a, const Point &b);

} // namespace vsync::geom

#endif // VSYNC_GEOM_PATH_HH
