#include "geom/path.hh"

#include "common/logging.hh"

namespace vsync::geom
{

Length
Path::length() const
{
    Length total = 0.0;
    for (std::size_t i = 1; i < points.size(); ++i)
        total += manhattan(points[i - 1], points[i]);
    return total;
}

Point
Path::pointAt(Length dist) const
{
    VSYNC_ASSERT(!points.empty(), "pointAt on empty path");
    if (dist <= 0.0)
        return points.front();
    for (std::size_t i = 1; i < points.size(); ++i) {
        const Length seg = manhattan(points[i - 1], points[i]);
        if (dist <= seg && seg > 0.0) {
            const double t = dist / seg;
            const Point &a = points[i - 1];
            const Point &b = points[i];
            return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
        }
        dist -= seg;
    }
    return points.back();
}

void
Path::extend(const Path &tail)
{
    if (tail.points.empty())
        return;
    std::size_t start = 0;
    if (!points.empty() && points.back() == tail.points.front())
        start = 1; // avoid duplicating the shared joint
    for (std::size_t i = start; i < tail.points.size(); ++i)
        points.push_back(tail.points[i]);
}

Path
lRoute(const Point &a, const Point &b)
{
    Path p;
    p.append(a);
    if (a.x != b.x && a.y != b.y)
        p.append({b.x, a.y});
    p.append(b);
    return p;
}

Path
zRoute(const Point &a, const Point &b)
{
    Path p;
    p.append(a);
    if (a.x != b.x && a.y != b.y) {
        const Length mid_x = (a.x + b.x) / 2.0;
        p.append({mid_x, a.y});
        p.append({mid_x, b.y});
    }
    p.append(b);
    return p;
}

} // namespace vsync::geom
