/**
 * @file
 * Axis-aligned rectangles: bounding boxes, area and aspect ratio.
 */

#ifndef VSYNC_GEOM_RECT_HH
#define VSYNC_GEOM_RECT_HH

#include <algorithm>

#include "geom/point.hh"

namespace vsync::geom
{

/** An axis-aligned rectangle described by two corners. */
struct Rect
{
    Length x0 = 0.0;
    Length y0 = 0.0;
    Length x1 = 0.0;
    Length y1 = 0.0;

    /** Width along x. */
    Length width() const { return x1 - x0; }

    /** Height along y. */
    Length height() const { return y1 - y0; }

    /** Area (width * height). */
    double area() const { return width() * height(); }

    /**
     * Aspect ratio >= 1 (long side over short side); infinity for a
     * degenerate rectangle.
     */
    double
    aspectRatio() const
    {
        const Length w = width(), h = height();
        const Length lo = std::min(w, h), hi = std::max(w, h);
        return lo > 0.0 ? hi / lo : infinity;
    }

    /** Grow to include @p p. */
    void
    include(const Point &p)
    {
        x0 = std::min(x0, p.x);
        y0 = std::min(y0, p.y);
        x1 = std::max(x1, p.x);
        y1 = std::max(y1, p.y);
    }

    /** True when @p p lies inside (inclusive). */
    bool
    contains(const Point &p) const
    {
        return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
    }

    /** The smallest rectangle containing a point set. */
    template <typename It>
    static Rect
    boundingBox(It first, It last)
    {
        Rect r{infinity, infinity, -infinity, -infinity};
        for (It it = first; it != last; ++it)
            r.include(*it);
        return r;
    }
};

} // namespace vsync::geom

#endif // VSYNC_GEOM_RECT_HH
