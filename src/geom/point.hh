/**
 * @file
 * 2-D points and distance metrics.
 *
 * Layouts live in the plane (assumption A1); all coordinates are in
 * lambda units. Wire lengths use the Manhattan (rectilinear) metric, the
 * natural one for VLSI routing; the Euclidean metric is available for the
 * circle argument in the Section V-B lower bound.
 */

#ifndef VSYNC_GEOM_POINT_HH
#define VSYNC_GEOM_POINT_HH

#include <cmath>

#include "common/types.hh"

namespace vsync::geom
{

/** A point in the layout plane (lambda units). */
struct Point
{
    Length x = 0.0;
    Length y = 0.0;

    constexpr Point() = default;
    constexpr Point(Length x, Length y) : x(x), y(y) {}

    constexpr bool
    operator==(const Point &o) const
    {
        return x == o.x && y == o.y;
    }

    constexpr Point
    operator+(const Point &o) const
    {
        return {x + o.x, y + o.y};
    }

    constexpr Point
    operator-(const Point &o) const
    {
        return {x - o.x, y - o.y};
    }

    constexpr Point
    operator*(double k) const
    {
        return {x * k, y * k};
    }
};

/** Manhattan (L1) distance between two points. */
inline Length
manhattan(const Point &a, const Point &b)
{
    return std::fabs(a.x - b.x) + std::fabs(a.y - b.y);
}

/** Euclidean (L2) distance between two points. */
inline Length
euclidean(const Point &a, const Point &b)
{
    const Length dx = a.x - b.x;
    const Length dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

} // namespace vsync::geom

#endif // VSYNC_GEOM_POINT_HH
