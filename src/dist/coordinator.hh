/**
 * @file
 * Distributed sweep execution: shard a batch across remote workers.
 *
 * The Coordinator takes the same kind of batch a local
 * serve::SweepService takes -- expressed as net::WireRequests, since
 * only wire-nameable scenarios can run remotely -- splits every
 * request's trials into the *same* grain-sized work units the local
 * service schedules (serve::appendWorkUnits), and dispatches each unit
 * as one wire request carrying trial_offset = the unit's first global
 * trial. Workers draw from Rng::forTrial(seed, trial_offset + i), so a
 * shard computes exactly the bytes the parent request's slice would;
 * the returned per-trial samples land in their global slots and reduce
 * through serve::foldOutcomeInTrialOrder. Determinism therefore does
 * not depend on which worker ran a shard, the order replies arrived,
 * how often a shard was retried or hedged, or how the fleet was sized:
 * a distributed run is bit-identical to a local SweepService run by
 * construction.
 *
 * Failure model. Every dispatch is an *attempt*; a shard survives its
 * attempts. Transient failures (connection loss, response timeout,
 * shed/overloaded, a draining worker, a malformed reply) fail the
 * attempt and requeue the shard for any worker, with the failing
 * worker's deterministic exponential backoff (common/backoff) pacing
 * its own retries; permanent failures (bad_request) lose the shard
 * immediately -- resending an invalid request cannot help. A worker
 * that fails cfg.pool.failureBudget consecutive times is Dead and
 * takes no further shards; when every worker is dead, remaining shards
 * are Lost rather than waited for. A shard that exhausts
 * maxShardAttempts is Lost. Lost shards surface as Partial outcomes
 * with per-trial masks -- the same contract as a local deadline expiry,
 * never silently dropped trials.
 *
 * Straggler hedging (optional): a worker with a free slot and no
 * pending work duplicates the oldest single-in-flight shard owned by
 * another worker once it has been outstanding hedgeAfterSeconds. The
 * first complete reply wins; the loser is counted superseded. Hedging
 * cannot perturb results -- both attempts compute identical bytes --
 * it only moves completion earlier.
 *
 * The ShardLedger accounts for every attempt and shard exactly:
 * dispatched == completed + superseded + failed and shards ==
 * completed + lost always hold (balanced() checks; the scaling bench
 * gates on it).
 */

#ifndef VSYNC_DIST_COORDINATOR_HH
#define VSYNC_DIST_COORDINATOR_HH

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.hh"
#include "dist/worker_pool.hh"
#include "net/protocol.hh"
#include "serve/sweep_service.hh"

namespace vsync::dist
{

/** Coordinator knobs. */
struct DistConfig
{
    /** The fleet. At least one endpoint. */
    std::vector<WorkerEndpoint> workers;
    /** Outstanding shards per worker (its pipelining depth). */
    std::size_t maxInFlightPerWorker = 2;
    /**
     * Patience for one dispatched shard's reply. When a worker's
     * oldest outstanding shard exceeds it the session is failed and
     * every shard it carried is requeued -- the recovery path a
     * silently dead worker takes.
     */
    double shardDeadlineSeconds = 60.0;
    /** Dispatches per shard (first try + retries + hedges) before the
     *  shard is Lost. */
    unsigned maxShardAttempts = 5;
    /** Duplicate slow shards onto idle workers. */
    bool hedge = true;
    /** Outstanding age before a shard is eligible for hedging. */
    double hedgeAfterSeconds = 0.25;
    /** Fleet health knobs (backoff, failure budget, ping timeout). */
    WorkerPoolConfig pool;
    /**
     * Optional registry: shard accounting under "dist.shards.*",
     * fleet gauges under "dist.fleet.*", per-worker latency under
     * "dist.worker.<i>.latency_ms". Also handed to the WorkerPool.
     */
    obs::MetricsRegistry *metrics = nullptr;
};

/** Per-run limits. */
struct DistOptions
{
    /**
     * Wall-clock budget for the whole batch; infinity = none. On
     * expiry dispatch stops, outstanding attempts are abandoned and
     * unfinished shards are Lost: their requests come back Partial.
     */
    double deadlineSeconds = infinity;
};

/**
 * Exact attempt/shard accounting of one run. Attempts partition into
 * completed (the winning reply of a shard), superseded (a correct
 * reply that arrived after its shard was already won -- hedge losers)
 * and failed (errors, timeouts, abandonment); shards partition into
 * completed and lost.
 */
struct ShardLedger
{
    /** Work units in the batch. */
    std::uint64_t shards = 0;
    /** Wire dispatches: first tries + retries + hedges. */
    std::uint64_t dispatched = 0;
    /** Attempts whose reply won their shard (== shards won). */
    std::uint64_t completed = 0;
    /** Correct replies that lost the race to a twin attempt. */
    std::uint64_t superseded = 0;
    /** Attempts that died: error reply, timeout, connection loss,
     *  malformed response, or abandoned at stop. */
    std::uint64_t failed = 0;
    /** Requeues after a transient attempt failure. */
    std::uint64_t retried = 0;
    /** Speculative duplicate dispatches. */
    std::uint64_t hedged = 0;
    /** Shards that never completed (Partial trials upstream). */
    std::uint64_t lost = 0;

    /** The two partition identities the bench gates on. */
    bool
    balanced() const
    {
        return dispatched == completed + superseded + failed &&
               shards == completed + lost;
    }
};

/** What a distributed run produced. */
struct DistOutcome
{
    /** One outcome per request, in request order -- the same type a
     *  local SweepService returns, folded by the same seam. */
    std::vector<serve::RequestOutcome> outcomes;
    /** The batch deadline expired before every shard completed. */
    bool deadlineExpired = false;
    /** Exact attempt/shard accounting. */
    ShardLedger ledger;
    /** Wall-clock duration of the run() call, milliseconds. */
    double wallMs = 0.0;
};

/**
 * The coordinator. One run() at a time (serialised internally); the
 * fleet's connections and health survive across runs, so consecutive
 * batches reuse warm connections and remembered Dead workers.
 */
class Coordinator
{
  public:
    explicit Coordinator(DistConfig cfg);

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /**
     * Run @p batch to completion or deadline. Requests must be sweep
     * requests (kind skew or resilience; an info request fatal()s)
     * with parameters inside the wire bounds.
     */
    DistOutcome run(const std::vector<net::WireRequest> &batch,
                    const DistOptions &opts = {});

    /** The fleet (health introspection for tests and CLIs). */
    WorkerPool &workers() { return pool; }

  private:
    struct RunState;
    enum class SessionEnd;

    void workerLoop(unsigned w, RunState &st);
    SessionEnd sessionLoop(unsigned w, RunState &st);
    void onWorkerGone(RunState &st);

    DistConfig cfg;
    WorkerPool pool;
    std::mutex runMutex;
};

} // namespace vsync::dist

#endif // VSYNC_DIST_COORDINATOR_HH
