/**
 * @file
 * A fleet of remote scenario workers, with health tracking.
 *
 * The WorkerPool owns one TCP connection per remote ScenarioServer
 * and the bookkeeping the Coordinator needs to trust them: liveness
 * (an info/ping handshake on every connect), per-worker reconnect
 * backoff (deterministic exponential with Rng jitter, each worker on
 * its own substream so a fleet never retries in lock step), a
 * consecutive-failure budget after which a worker is declared Dead,
 * and per-worker latency histograms under "dist.worker.<i>.".
 *
 * Threading contract: each worker slot is driven by exactly one
 * coordinator thread at a time (connect/send/recv/fail for worker w
 * all happen on w's thread), so per-worker state is unlocked; only
 * the cross-worker aggregates (alive count, stop signal) are atomic.
 * requestStop() may be called from any thread: it wakes blocked
 * recv() polls through a never-drained self-pipe and aborts backoff
 * sleeps, so a deadline can always interrupt the fleet.
 */

#ifndef VSYNC_DIST_WORKER_POOL_HH
#define VSYNC_DIST_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/backoff.hh"
#include "net/protocol.hh"

namespace vsync::obs
{
class MetricsRegistry;
class Histogram;
} // namespace vsync::obs

namespace vsync::dist
{

/** Address of one remote ScenarioServer. */
struct WorkerEndpoint
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
};

/** Where a worker stands in its lifecycle. */
enum class WorkerState
{
    /** Not yet connected (initial, or after a session failure). */
    Disconnected,
    /** Connected and info-handshaken. */
    Alive,
    /** Failure budget exhausted; the worker takes no more shards. */
    Dead,
};

/** Human-readable state name. */
const char *workerStateName(WorkerState s);

/** Pool-wide knobs. */
struct WorkerPoolConfig
{
    /** Reconnect schedule per worker (jittered; see common/backoff). */
    BackoffConfig backoff;
    /**
     * Consecutive session failures (failed connects or mid-session
     * errors) before a worker is declared Dead. A success resets the
     * count, so a flaky-but-working worker is never written off.
     */
    unsigned failureBudget = 3;
    /** Patience for the info handshake reply on connect. */
    double pingTimeoutSeconds = 5.0;
    /**
     * Response line-length cap. Responses legitimately dwarf request
     * lines (per-trial sample arrays), so this is bounded paranoia
     * against a corrupt peer, not the 1 MiB request-side default.
     */
    std::size_t maxResponseLineBytes = std::size_t{256} << 20;
    /**
     * Seed of the backoff jitter substreams: worker w jitters with
     * Rng::forTrial(seed, w), decorrelating the fleet's retries while
     * keeping every schedule reproducible.
     */
    std::uint64_t seed = 0xd157'5eedULL;
    /** Optional registry for "dist.worker.<i>.latency_ms" etc. */
    obs::MetricsRegistry *metrics = nullptr;
};

/** The fleet. See the file comment for the threading contract. */
class WorkerPool
{
  public:
    WorkerPool(std::vector<WorkerEndpoint> endpoints,
               WorkerPoolConfig cfg = {});
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Fleet size (fixed at construction). */
    std::size_t size() const;

    /** The address of worker @p w. */
    const WorkerEndpoint &endpoint(unsigned w) const;

    /**
     * Ensure worker @p w has a live, info-handshaken connection,
     * sleeping its backoff between attempts. Returns false when the
     * worker is (or just became) Dead or the pool was stopped --
     * the caller should give up on this worker.
     */
    bool ensureConnected(unsigned w);

    /**
     * Record a mid-session failure (send/recv error, response
     * timeout): closes the connection, charges the failure budget.
     * Returns false when the budget is exhausted (worker now Dead).
     */
    bool noteSessionFailure(unsigned w);

    /** Record a successful exchange: resets failures and backoff. */
    void noteSuccess(unsigned w);

    /**
     * Sleep worker @p w's next backoff delay (advancing its
     * deterministic schedule). False when requestStop() interrupted
     * the sleep -- the caller should unwind, not retry.
     */
    bool backoffSleep(unsigned w);

    /** Send one line (newline appended). False on a dead socket. */
    bool send(unsigned w, const std::string &line);

    /** What recv() observed. */
    enum class RecvStatus
    {
        /** A response line was parsed into @p out. */
        Ok,
        /** No complete line within the timeout. */
        Timeout,
        /** Connection closed/failed, the pool was stopped, or the
         *  peer sent garbage (unparseable or oversized line). */
        Closed,
    };

    /**
     * Receive the next response line from worker @p w, waiting up to
     * @p timeout_seconds.
     */
    RecvStatus recv(unsigned w, double timeout_seconds,
                    net::WireResponse &out);

    /** Record one request-to-response latency observation. */
    void observeLatency(unsigned w, double ms);

    /** Current state of worker @p w. */
    WorkerState state(unsigned w) const;

    /** The info reply from worker @p w's latest handshake. */
    const net::InfoReply &lastInfo(unsigned w) const;

    /** Workers not Dead. */
    std::size_t aliveCount() const
    {
        return alive.load(std::memory_order_relaxed);
    }

    /**
     * Abort blocking operations fleet-wide: backoff sleeps wake and
     * fail, recv() returns Closed, ensureConnected() returns false.
     * Sticky until resetStop().
     */
    void requestStop();

    /** Re-arm after requestStop() (between batches). */
    void resetStop();

  private:
    struct Worker;

    bool connectOnce(unsigned w);
    void closeWorker(Worker &wk);
    /** Sleep @p seconds unless requestStop() interrupts; true when
     *  the sleep completed undisturbed. */
    bool interruptibleSleep(double seconds);
    void markDead(Worker &wk);

    WorkerPoolConfig cfg;
    std::deque<Worker> workers;
    std::atomic<std::size_t> alive{0};
    std::atomic<bool> stopping{false};
    /** Written once per stop, never drained: wakes every recv poll. */
    int wakePipe[2] = {-1, -1};
    std::mutex sleepMutex;
    std::condition_variable sleepCv;
};

} // namespace vsync::dist

#endif // VSYNC_DIST_WORKER_POOL_HH
