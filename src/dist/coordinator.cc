#include "dist/coordinator.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "serve/work_unit.hh"

namespace vsync::dist
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Where a shard stands. Terminal states: Won, Lost. */
enum class ShardState
{
    /** Waiting in the dispatch queue. */
    Pending,
    /** At least one attempt outstanding. */
    InFlight,
    /** A complete reply was accepted; result holds it. */
    Won,
    /** Permanently failed or abandoned; its trials stay undone. */
    Lost,
};

struct ShardInfo
{
    /** The trial slice this shard covers. */
    serve::WorkUnit unit;
    ShardState state = ShardState::Pending;
    /** Dispatches so far (bounded by maxShardAttempts). */
    unsigned attempts = 0;
    /** Attempts currently outstanding (0, 1, or 2 when hedged). */
    unsigned inFlight = 0;
    /** Worker of the sole outstanding attempt (inFlight == 1): the
     *  hedging scan skips shards it already owns. */
    unsigned ownerWorker = 0;
    /** When the oldest outstanding attempt was sent (hedge age). */
    Clock::time_point firstSent{};
    /** The winning reply (state Won). */
    net::WireResponse result;
};

} // namespace

/** Shared state of one run(), guarded by mx except where noted. */
struct Coordinator::RunState
{
    const std::vector<net::WireRequest> *batch = nullptr;

    std::mutex mx;
    /** Signalled on requeues, wins and losses; workers idle on it and
     *  the main thread waits for completion on it. */
    std::condition_variable cv;

    std::vector<ShardInfo> shards;
    /** Indices of Pending shards, dispatch order. */
    std::deque<std::size_t> pending;
    /** Shards not yet Won or Lost. */
    std::size_t unresolved = 0;
    /** Next attempt id (the wire correlation id; globally unique so a
     *  late reply can never be mistaken for another attempt's). */
    std::uint64_t nextId = 1;
    ShardLedger ledger;
    /** Stop dispatching: deadline hit, or the batch completed. */
    bool stop = false;
    bool deadlineHit = false;
    Clock::time_point deadline = Clock::time_point::max();
};

/** Why a worker's session ended. */
enum class Coordinator::SessionEnd
{
    /** The batch is complete or stopped; do not reconnect. */
    Finished,
    /** Transport or worker trouble; back off and reconnect. */
    Failed,
};

namespace
{

/**
 * A shard as one wire request: the parent request's parameters with
 * the slice's trial window. The id is the attempt id, not the parent's,
 * so replies resolve attempts unambiguously. No wire deadline rides
 * along -- the coordinator's own patience (shardDeadlineSeconds)
 * governs, and a worker-side deadline would turn retryable slowness
 * into Partial replies.
 */
std::string
encodeShardRequest(std::uint64_t id, const net::WireRequest &parent,
                   const serve::WorkUnit &u)
{
    net::WireRequest rq = parent;
    rq.id = id;
    rq.trialOffset = parent.trialOffset + u.begin;
    rq.trials = u.end - u.begin;
    rq.deadlineMs = infinity;
    return net::encodeRequest(rq);
}

/** A winning reply must carry exactly the shard's trial window. */
bool
replyShapeOk(const net::WireResponse &rsp, const net::WireRequest &parent,
             const serve::WorkUnit &u)
{
    const std::size_t len = u.end - u.begin;
    if (rsp.samples.size() != len)
        return false;
    if (parent.kind == net::QueryKind::Resilience &&
        (rsp.clockedSamples.size() != len ||
         rsp.faultSamples.size() != len))
        return false;
    return true;
}

double
secondsUntil(Clock::time_point tp)
{
    return std::chrono::duration<double>(tp - Clock::now()).count();
}

} // namespace

Coordinator::Coordinator(DistConfig config)
    : cfg(std::move(config)),
      pool(cfg.workers,
           [&] {
               WorkerPoolConfig pc = cfg.pool;
               if (!pc.metrics)
                   pc.metrics = cfg.metrics;
               return pc;
           }())
{
    VSYNC_ASSERT(!cfg.workers.empty(),
                 "DistConfig needs at least one worker");
    VSYNC_ASSERT(cfg.maxInFlightPerWorker >= 1,
                 "maxInFlightPerWorker must be >= 1");
    VSYNC_ASSERT(cfg.maxShardAttempts >= 1,
                 "maxShardAttempts must be >= 1");
    VSYNC_ASSERT(cfg.shardDeadlineSeconds > 0.0,
                 "shardDeadlineSeconds must be > 0");
    VSYNC_ASSERT(cfg.hedgeAfterSeconds >= 0.0,
                 "hedgeAfterSeconds must be >= 0");
}

void
Coordinator::onWorkerGone(RunState &st)
{
    if (pool.aliveCount() > 0)
        return;
    // The whole fleet is dead: nobody will ever take the pending
    // shards, so waiting for them would hang the run. Lose them now;
    // their requests surface as Partial. (Each dying session failed
    // its own outstanding attempts before reaching here, so no shard
    // still has an attempt out.)
    std::lock_guard<std::mutex> lk(st.mx);
    for (ShardInfo &s : st.shards) {
        if (s.state == ShardState::Pending ||
            s.state == ShardState::InFlight) {
            s.state = ShardState::Lost;
            ++st.ledger.lost;
            --st.unresolved;
        }
    }
    st.pending.clear();
    st.stop = true;
    st.cv.notify_all();
}

Coordinator::SessionEnd
Coordinator::sessionLoop(unsigned w, RunState &st)
{
    struct OwnedAttempt
    {
        std::size_t shard;
        Clock::time_point sent;
    };
    std::unordered_map<std::uint64_t, OwnedAttempt> owned;

    // Fail one outstanding attempt of shards[sh] (lock held).
    // Transient failures requeue the shard until its attempt budget
    // runs out; permanent ones lose it immediately. A shard a twin
    // attempt already settled only pays the failed-attempt count.
    const auto failAttemptLocked = [&](std::size_t sh, bool permanent) {
        ShardInfo &s = st.shards[sh];
        VSYNC_ASSERT(s.inFlight > 0,
                     "failing an attempt that is not out");
        --s.inFlight;
        ++st.ledger.failed;
        if (s.state == ShardState::Won || s.state == ShardState::Lost)
            return;
        if (!permanent && s.inFlight > 0)
            return; // a hedge twin is still trying
        if (permanent || s.attempts >= cfg.maxShardAttempts ||
            st.stop) {
            s.state = ShardState::Lost;
            ++st.ledger.lost;
            --st.unresolved;
            st.cv.notify_all();
            return;
        }
        s.state = ShardState::Pending;
        st.pending.push_back(sh);
        ++st.ledger.retried;
        st.cv.notify_all();
    };

    // Requeue everything this session still has outstanding; the
    // shards go back in the pool for any worker (including this one,
    // after its backoff).
    const auto failOwned = [&] {
        std::lock_guard<std::mutex> lk(st.mx);
        for (const auto &[id, a] : owned)
            failAttemptLocked(a.shard, false);
        owned.clear();
    };

    // Take the next attempt under the lock: a pending shard first,
    // else (when hedging) the oldest single-in-flight shard of
    // another worker that has been out longer than hedgeAfterSeconds.
    const auto acquire =
        [&]() -> std::optional<std::pair<std::uint64_t, std::size_t>> {
        const Clock::time_point now = Clock::now();
        std::lock_guard<std::mutex> lk(st.mx);
        if (st.stop)
            return std::nullopt;
        if (now >= st.deadline) {
            st.stop = true;
            st.deadlineHit = true;
            st.cv.notify_all();
            return std::nullopt;
        }
        std::size_t sh;
        bool isHedge = false;
        if (!st.pending.empty()) {
            sh = st.pending.front();
            st.pending.pop_front();
        } else if (cfg.hedge) {
            std::optional<std::size_t> best;
            for (std::size_t i = 0; i < st.shards.size(); ++i) {
                const ShardInfo &s = st.shards[i];
                if (s.state != ShardState::InFlight || s.inFlight != 1 ||
                    s.ownerWorker == w ||
                    s.attempts >= cfg.maxShardAttempts)
                    continue;
                const double age =
                    std::chrono::duration<double>(now - s.firstSent)
                        .count();
                if (age < cfg.hedgeAfterSeconds)
                    continue; // not outstanding long enough yet
                if (!best || s.firstSent < st.shards[*best].firstSent)
                    best = i;
            }
            if (!best)
                return std::nullopt;
            sh = *best;
            isHedge = true;
        } else {
            return std::nullopt;
        }
        ShardInfo &s = st.shards[sh];
        s.state = ShardState::InFlight;
        if (s.inFlight == 0)
            s.firstSent = now;
        ++s.inFlight;
        ++s.attempts;
        s.ownerWorker = w;
        ++st.ledger.dispatched;
        if (isHedge)
            ++st.ledger.hedged;
        return std::make_pair(st.nextId++, sh);
    };

    for (;;) {
        // Top the pipeline up to the per-worker bound.
        while (owned.size() < cfg.maxInFlightPerWorker) {
            const auto acq = acquire();
            if (!acq)
                break;
            const auto [id, sh] = *acq;
            const std::string line = encodeShardRequest(
                id, (*st.batch)[st.shards[sh].unit.request],
                st.shards[sh].unit);
            if (!pool.send(w, line)) {
                {
                    std::lock_guard<std::mutex> lk(st.mx);
                    failAttemptLocked(sh, false);
                }
                failOwned();
                return SessionEnd::Failed;
            }
            owned.emplace(id, OwnedAttempt{sh, Clock::now()});
        }

        if (owned.empty()) {
            // Idle: no pending work and nothing hedgeable. Wait for a
            // requeue or for the batch to finish.
            std::unique_lock<std::mutex> lk(st.mx);
            if (st.unresolved == 0 || st.stop)
                return SessionEnd::Finished;
            st.cv.wait_for(lk, std::chrono::milliseconds(10));
            continue;
        }

        // Wait for a reply, bounded by the oldest attempt's patience
        // and the batch deadline.
        Clock::time_point oldest = Clock::time_point::max();
        for (const auto &[id, a] : owned)
            oldest = std::min(oldest, a.sent);
        Clock::time_point waitUntil =
            oldest +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(cfg.shardDeadlineSeconds));
        {
            std::lock_guard<std::mutex> lk(st.mx);
            waitUntil = std::min(waitUntil, st.deadline);
        }

        net::WireResponse rsp;
        const WorkerPool::RecvStatus got =
            pool.recv(w, secondsUntil(waitUntil), rsp);

        if (got == WorkerPool::RecvStatus::Closed) {
            const bool stopped = [&] {
                std::lock_guard<std::mutex> lk(st.mx);
                return st.stop || st.unresolved == 0;
            }();
            failOwned();
            return stopped ? SessionEnd::Finished : SessionEnd::Failed;
        }
        if (got == WorkerPool::RecvStatus::Timeout) {
            bool expired = false;
            {
                std::lock_guard<std::mutex> lk(st.mx);
                if (Clock::now() >= st.deadline) {
                    st.stop = true;
                    st.deadlineHit = true;
                    st.cv.notify_all();
                    expired = true;
                }
            }
            failOwned();
            // Batch deadline: orderly stop. Shard deadline: the worker
            // sat on a shard too long -- fail the session so its
            // shards move to healthier workers.
            if (expired)
                return SessionEnd::Finished;
            inform("dist: worker %s:%u timed out, requeueing its "
                   "shards",
                   pool.endpoint(w).host.c_str(),
                   unsigned(pool.endpoint(w).port));
            return SessionEnd::Failed;
        }

        const auto it = owned.find(rsp.id);
        if (it == owned.end())
            continue; // reply to an attempt this session never made
        const OwnedAttempt att = it->second;
        owned.erase(it);
        pool.observeLatency(
            w, std::chrono::duration<double, std::milli>(Clock::now() -
                                                         att.sent)
                   .count());

        // Classify the reply under the lock.
        bool sessionFailure = false;
        {
            std::lock_guard<std::mutex> lk(st.mx);
            ShardInfo &s = st.shards[att.shard];
            const net::WireRequest &parent =
                (*st.batch)[s.unit.request];
            if (rsp.ok && rsp.complete &&
                replyShapeOk(rsp, parent, s.unit)) {
                --s.inFlight;
                if (s.state == ShardState::Won ||
                    s.state == ShardState::Lost) {
                    // A twin already settled it; this correct reply
                    // merely arrived late.
                    ++st.ledger.superseded;
                } else {
                    s.state = ShardState::Won;
                    s.result = std::move(rsp);
                    ++st.ledger.completed;
                    --st.unresolved;
                    st.cv.notify_all();
                }
            } else if (!rsp.ok &&
                       rsp.error == net::errBadRequest) {
                // Deterministically rejected: retrying cannot help.
                warn("dist: worker rejected shard as bad_request: %s",
                     rsp.detail.c_str());
                failAttemptLocked(att.shard, true);
            } else {
                // Shed, draining, partial, or malformed: transient.
                // Requeue and fail the session so this worker backs
                // off before taking more work.
                failAttemptLocked(att.shard, false);
                sessionFailure = true;
            }
        }
        if (sessionFailure) {
            failOwned();
            return SessionEnd::Failed;
        }
        pool.noteSuccess(w);
    }
}

void
Coordinator::workerLoop(unsigned w, RunState &st)
{
    for (;;) {
        {
            std::lock_guard<std::mutex> lk(st.mx);
            if (st.unresolved == 0 || st.stop)
                return;
        }
        if (!pool.ensureConnected(w)) {
            // Dead (budget exhausted) or the run is stopping.
            if (pool.state(w) == WorkerState::Dead)
                onWorkerGone(st);
            return;
        }
        if (sessionLoop(w, st) == SessionEnd::Finished)
            return;
        if (!pool.noteSessionFailure(w)) {
            onWorkerGone(st);
            return;
        }
        if (!pool.backoffSleep(w))
            return; // stop requested during the backoff
    }
}

DistOutcome
Coordinator::run(const std::vector<net::WireRequest> &batch,
                 const DistOptions &opts)
{
    std::lock_guard<std::mutex> runLock(runMutex);
    pool.resetStop();
    const Clock::time_point t0 = Clock::now();

    RunState st;
    st.batch = &batch;
    for (std::size_t r = 0; r < batch.size(); ++r) {
        const net::WireRequest &rq = batch[r];
        VSYNC_ASSERT(rq.kind != net::QueryKind::Info,
                     "request %zu: info is not a sweep", r);
        VSYNC_ASSERT(rq.trials >= 1, "request %zu: zero trials", r);
        VSYNC_ASSERT(rq.grain >= 1, "request %zu: zero grain", r);
        std::vector<serve::WorkUnit> units;
        serve::appendWorkUnits(r, rq.trials, rq.grain, units);
        for (const serve::WorkUnit &u : units) {
            ShardInfo si;
            si.unit = u;
            st.shards.push_back(std::move(si));
        }
    }
    st.unresolved = st.shards.size();
    st.ledger.shards = st.shards.size();
    for (std::size_t i = 0; i < st.shards.size(); ++i)
        st.pending.push_back(i);
    if (opts.deadlineSeconds < infinity)
        st.deadline =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(
                         std::max(0.0, opts.deadlineSeconds)));

    std::vector<std::thread> threads;
    threads.reserve(pool.size());
    for (unsigned w = 0; w < pool.size(); ++w)
        threads.emplace_back([this, w, &st] { workerLoop(w, st); });

    {
        std::unique_lock<std::mutex> lk(st.mx);
        const auto done = [&] {
            return st.unresolved == 0 || st.stop;
        };
        if (st.deadline == Clock::time_point::max())
            st.cv.wait(lk, done);
        else
            st.cv.wait_until(lk, st.deadline, done);
        if (st.unresolved > 0 && !st.stop)
            st.deadlineHit = true;
        st.stop = true;
        st.cv.notify_all();
    }
    // Break any blocked recv/backoff so the fleet unwinds promptly;
    // abandoned attempts are failed by their own sessions.
    pool.requestStop();
    for (std::thread &t : threads)
        t.join();

    DistOutcome out;
    out.outcomes.resize(batch.size());

    // Final sweep: anything not Won is Lost (attempts were already
    // failed by the sessions that owned them).
    for (ShardInfo &s : st.shards) {
        if (s.state == ShardState::Pending ||
            s.state == ShardState::InFlight) {
            s.state = ShardState::Lost;
            ++st.ledger.lost;
            --st.unresolved;
        }
    }

    // Fold: identical preallocation and reduction to SweepService's
    // phase 2/4, with remotely computed samples in the slots.
    std::vector<std::uint8_t> trialDone;
    for (std::size_t r = 0; r < batch.size(); ++r) {
        const net::WireRequest &rq = batch[r];
        const bool isSkew = rq.kind == net::QueryKind::Skew;
        serve::RequestOutcome &o = out.outcomes[r];
        o.trialsRequested = rq.trials;
        if (isSkew) {
            o.skew.samples.assign(rq.trials, 0.0);
        } else {
            o.resilience.faultRate = rq.faultRate;
            o.resilience.maxCommSkew.samples.assign(rq.trials, 0.0);
            o.resilience.clockedFraction.samples.assign(rq.trials, 0.0);
            o.faultSamples.assign(rq.trials, 0.0);
        }
        trialDone.assign(rq.trials, 0);
        for (const ShardInfo &s : st.shards) {
            if (s.unit.request != r || s.state != ShardState::Won)
                continue;
            const std::size_t len = s.unit.end - s.unit.begin;
            for (std::size_t i = 0; i < len; ++i) {
                const std::size_t slot = s.unit.begin + i;
                if (isSkew) {
                    o.skew.samples[slot] = s.result.samples[i];
                } else {
                    o.resilience.maxCommSkew.samples[slot] =
                        s.result.samples[i];
                    o.resilience.clockedFraction.samples[slot] =
                        s.result.clockedSamples[i];
                    o.faultSamples[slot] = s.result.faultSamples[i];
                }
                trialDone[slot] = 1;
            }
        }
        serve::foldOutcomeInTrialOrder(isSkew, trialDone, o);
    }

    out.deadlineExpired = st.deadlineHit;
    out.ledger = st.ledger;
    out.wallMs =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();

    VSYNC_ASSERT(out.ledger.balanced(),
                 "shard ledger out of balance: %llu dispatched, %llu "
                 "completed, %llu superseded, %llu failed; %llu shards, "
                 "%llu lost",
                 static_cast<unsigned long long>(out.ledger.dispatched),
                 static_cast<unsigned long long>(out.ledger.completed),
                 static_cast<unsigned long long>(out.ledger.superseded),
                 static_cast<unsigned long long>(out.ledger.failed),
                 static_cast<unsigned long long>(out.ledger.shards),
                 static_cast<unsigned long long>(out.ledger.lost));

    if (cfg.metrics) {
        obs::MetricsRegistry &m = *cfg.metrics;
        m.counter("dist.shards.dispatched").inc(out.ledger.dispatched);
        m.counter("dist.shards.completed").inc(out.ledger.completed);
        m.counter("dist.shards.superseded").inc(out.ledger.superseded);
        m.counter("dist.shards.failed").inc(out.ledger.failed);
        m.counter("dist.shards.retried").inc(out.ledger.retried);
        m.counter("dist.shards.hedged").inc(out.ledger.hedged);
        m.counter("dist.shards.lost").inc(out.ledger.lost);
        m.gauge("dist.fleet.alive")
            .set(static_cast<double>(pool.aliveCount()));
        m.gauge("dist.run.wall_ms").set(out.wallMs);
        if (out.deadlineExpired)
            m.counter("dist.run.deadline_expired").inc();
    }
    return out;
}

} // namespace vsync::dist
