#include "dist/worker_pool.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"

namespace vsync::dist
{

namespace
{

using Clock = std::chrono::steady_clock;

int
connectTo(const std::string &host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

bool
sendAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Latency bucket bounds for dist.worker.<i>.latency_ms. */
std::vector<double>
latencyBoundsMs()
{
    return {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000};
}

} // namespace

const char *
workerStateName(WorkerState s)
{
    switch (s) {
    case WorkerState::Disconnected:
        return "disconnected";
    case WorkerState::Alive:
        return "alive";
    case WorkerState::Dead:
        return "dead";
    }
    panic("unreachable WorkerState");
}

struct WorkerPool::Worker
{
    WorkerEndpoint ep;
    int fd = -1;
    /** Recreated on every connect so stale bytes never leak over. */
    net::LineReader reader{net::defaultMaxLineBytes};
    Backoff backoff;
    unsigned consecutiveFailures = 0;
    std::atomic<WorkerState> state{WorkerState::Disconnected};
    net::InfoReply info;
    obs::Histogram *latency = nullptr;
};

WorkerPool::WorkerPool(std::vector<WorkerEndpoint> endpoints,
                       WorkerPoolConfig config)
    : cfg(config)
{
    cfg.backoff.validate();
    VSYNC_ASSERT(!endpoints.empty(), "WorkerPool needs >= 1 endpoint");
    if (::pipe(wakePipe) != 0)
        fatal("WorkerPool: pipe() failed: %s", std::strerror(errno));
    ::fcntl(wakePipe[0], F_SETFL, O_NONBLOCK);
    ::fcntl(wakePipe[1], F_SETFL, O_NONBLOCK);

    unsigned w = 0;
    for (WorkerEndpoint &ep : endpoints) {
        Worker &wk = workers.emplace_back();
        wk.ep = std::move(ep);
        // Each worker jitters on its own counter-based substream, so
        // backoff schedules are decorrelated yet fully reproducible.
        wk.backoff = Backoff(cfg.backoff, Rng::forTrial(cfg.seed, w));
        wk.reader = net::LineReader(cfg.maxResponseLineBytes);
        if (cfg.metrics) {
            wk.latency = &cfg.metrics->histogram(
                "dist.worker." + std::to_string(w) + ".latency_ms",
                latencyBoundsMs());
        }
        ++w;
    }
    alive.store(workers.size(), std::memory_order_relaxed);
    if (cfg.metrics)
        cfg.metrics->gauge("dist.fleet.size")
            .set(static_cast<double>(workers.size()));
}

WorkerPool::~WorkerPool()
{
    requestStop();
    for (Worker &wk : workers)
        closeWorker(wk);
    if (wakePipe[0] >= 0)
        ::close(wakePipe[0]);
    if (wakePipe[1] >= 0)
        ::close(wakePipe[1]);
}

std::size_t
WorkerPool::size() const
{
    return workers.size();
}

const WorkerEndpoint &
WorkerPool::endpoint(unsigned w) const
{
    VSYNC_ASSERT(w < workers.size(), "worker index out of range");
    return workers[w].ep;
}

WorkerState
WorkerPool::state(unsigned w) const
{
    VSYNC_ASSERT(w < workers.size(), "worker index out of range");
    return workers[w].state.load(std::memory_order_relaxed);
}

const net::InfoReply &
WorkerPool::lastInfo(unsigned w) const
{
    VSYNC_ASSERT(w < workers.size(), "worker index out of range");
    return workers[w].info;
}

void
WorkerPool::closeWorker(Worker &wk)
{
    if (wk.fd >= 0) {
        ::close(wk.fd);
        wk.fd = -1;
    }
}

void
WorkerPool::markDead(Worker &wk)
{
    if (wk.state.exchange(WorkerState::Dead,
                          std::memory_order_relaxed) !=
        WorkerState::Dead) {
        alive.fetch_sub(1, std::memory_order_relaxed);
        if (cfg.metrics)
            cfg.metrics->gauge("dist.fleet.alive")
                .set(static_cast<double>(aliveCount()));
    }
    closeWorker(wk);
}

bool
WorkerPool::interruptibleSleep(double seconds)
{
    std::unique_lock<std::mutex> lock(sleepMutex);
    return !sleepCv.wait_for(
        lock, std::chrono::duration<double>(seconds),
        [&] { return stopping.load(std::memory_order_relaxed); });
}

void
WorkerPool::requestStop()
{
    stopping.store(true, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(sleepMutex);
    }
    sleepCv.notify_all();
    // One byte, never drained: every poll on the read end wakes, now
    // and for all future polls until resetStop() drains it.
    const char b = 'x';
    [[maybe_unused]] ssize_t n = ::write(wakePipe[1], &b, 1);
}

void
WorkerPool::resetStop()
{
    stopping.store(false, std::memory_order_relaxed);
    char sink[16];
    while (::read(wakePipe[0], sink, sizeof(sink)) > 0) {
    }
}

bool
WorkerPool::connectOnce(unsigned w)
{
    Worker &wk = workers[w];
    closeWorker(wk);
    wk.reader = net::LineReader(cfg.maxResponseLineBytes);
    wk.fd = connectTo(wk.ep.host, wk.ep.port);
    if (wk.fd < 0)
        return false;

    // Info handshake: the connection only counts once the worker
    // proves it answers, and the reply pins the protocol version.
    std::string line = net::encodeRequest(
        [] {
            net::WireRequest rq;
            rq.kind = net::QueryKind::Info;
            return rq;
        }());
    line.push_back('\n');
    if (!sendAll(wk.fd, line.data(), line.size())) {
        closeWorker(wk);
        return false;
    }
    net::WireResponse rsp;
    if (recv(w, cfg.pingTimeoutSeconds, rsp) != RecvStatus::Ok ||
        !rsp.ok) {
        closeWorker(wk);
        return false;
    }
    if (rsp.proto != net::protocolVersion) {
        warn("dist: worker %s:%u speaks protocol %llu, want %llu",
             wk.ep.host.c_str(), unsigned(wk.ep.port),
             static_cast<unsigned long long>(rsp.proto),
             static_cast<unsigned long long>(net::protocolVersion));
        closeWorker(wk);
        return false;
    }
    wk.info.proto = rsp.proto;
    wk.info.threads = rsp.threads;
    wk.info.queueDepth = rsp.queueDepth;
    wk.info.queueCapacity = rsp.queueCapacity;
    wk.info.draining = rsp.draining;
    return true;
}

bool
WorkerPool::ensureConnected(unsigned w)
{
    VSYNC_ASSERT(w < workers.size(), "worker index out of range");
    Worker &wk = workers[w];
    for (;;) {
        if (stopping.load(std::memory_order_relaxed) ||
            wk.state.load(std::memory_order_relaxed) ==
                WorkerState::Dead)
            return false;
        if (wk.fd >= 0)
            return true;
        if (connectOnce(w)) {
            wk.state.store(WorkerState::Alive,
                           std::memory_order_relaxed);
            wk.consecutiveFailures = 0;
            wk.backoff.reset();
            return true;
        }
        if (++wk.consecutiveFailures >= cfg.failureBudget) {
            inform("dist: worker %s:%u dead after %u failed connects",
                   wk.ep.host.c_str(), unsigned(wk.ep.port),
                   wk.consecutiveFailures);
            markDead(wk);
            return false;
        }
        if (!interruptibleSleep(wk.backoff.nextSeconds()))
            return false;
    }
}

bool
WorkerPool::noteSessionFailure(unsigned w)
{
    VSYNC_ASSERT(w < workers.size(), "worker index out of range");
    Worker &wk = workers[w];
    closeWorker(wk);
    wk.state.store(WorkerState::Disconnected,
                   std::memory_order_relaxed);
    if (++wk.consecutiveFailures >= cfg.failureBudget) {
        inform("dist: worker %s:%u dead after %u session failures",
               wk.ep.host.c_str(), unsigned(wk.ep.port),
               wk.consecutiveFailures);
        markDead(wk);
        return false;
    }
    return true;
}

bool
WorkerPool::backoffSleep(unsigned w)
{
    VSYNC_ASSERT(w < workers.size(), "worker index out of range");
    return interruptibleSleep(workers[w].backoff.nextSeconds());
}

void
WorkerPool::noteSuccess(unsigned w)
{
    VSYNC_ASSERT(w < workers.size(), "worker index out of range");
    Worker &wk = workers[w];
    wk.consecutiveFailures = 0;
    wk.backoff.reset();
}

bool
WorkerPool::send(unsigned w, const std::string &line)
{
    VSYNC_ASSERT(w < workers.size(), "worker index out of range");
    Worker &wk = workers[w];
    if (wk.fd < 0)
        return false;
    std::string framed = line;
    framed.push_back('\n');
    return sendAll(wk.fd, framed.data(), framed.size());
}

WorkerPool::RecvStatus
WorkerPool::recv(unsigned w, double timeout_seconds,
                 net::WireResponse &out)
{
    VSYNC_ASSERT(w < workers.size(), "worker index out of range");
    Worker &wk = workers[w];
    if (wk.fd < 0)
        return RecvStatus::Closed;

    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               std::max(0.0, timeout_seconds)));
    char chunk[1 << 16];
    std::string line;
    for (;;) {
        // Drain already-buffered lines before touching the socket.
        for (;;) {
            const net::LineReader::Next ev = wk.reader.next(line);
            if (ev == net::LineReader::Next::NeedMore)
                break;
            if (ev == net::LineReader::Next::TooLarge) {
                warn("dist: worker %s:%u sent an oversized line",
                     wk.ep.host.c_str(), unsigned(wk.ep.port));
                return RecvStatus::Closed;
            }
            std::string error;
            if (!net::parseResponse(line, out, error)) {
                warn("dist: worker %s:%u sent a bad response: %s",
                     wk.ep.host.c_str(), unsigned(wk.ep.port),
                     error.c_str());
                return RecvStatus::Closed;
            }
            return RecvStatus::Ok;
        }

        if (stopping.load(std::memory_order_relaxed))
            return RecvStatus::Closed;
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now())
                .count();
        if (remaining <= 0)
            return RecvStatus::Timeout;
        pollfd pfds[2] = {{wk.fd, POLLIN, 0},
                          {wakePipe[0], POLLIN, 0}};
        const int pr = ::poll(
            pfds, 2,
            static_cast<int>(std::min<long long>(remaining, 60'000)));
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return RecvStatus::Closed;
        }
        if (pfds[1].revents & POLLIN)
            return RecvStatus::Closed; // stop requested
        if (pr == 0 || !(pfds[0].revents & (POLLIN | POLLHUP)))
            continue;
        const ssize_t n = ::recv(wk.fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return RecvStatus::Closed;
        wk.reader.feed(chunk, static_cast<std::size_t>(n));
    }
}

void
WorkerPool::observeLatency(unsigned w, double ms)
{
    VSYNC_ASSERT(w < workers.size(), "worker index out of range");
    if (workers[w].latency)
        workers[w].latency->observe(ms);
}

} // namespace vsync::dist
