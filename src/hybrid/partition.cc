#include "hybrid/partition.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"
#include "geom/rect.hh"

namespace vsync::hybrid
{

Partition
partitionGrid(const layout::Layout &l, Length element_size)
{
    VSYNC_ASSERT(element_size > 0.0, "element size must be positive");
    VSYNC_ASSERT(l.size() > 0, "empty layout");

    const geom::Rect bb = l.boundingBox();
    Partition part;
    part.elementOf.assign(l.size(), -1);

    // Bin cells by grid square; map (bx, by) -> element index.
    std::map<std::pair<long, long>, int> bins;
    for (CellId c = 0; static_cast<std::size_t>(c) < l.size(); ++c) {
        const geom::Point &p = l.position(c);
        const long bx =
            static_cast<long>(std::floor((p.x - bb.x0) / element_size));
        const long by =
            static_cast<long>(std::floor((p.y - bb.y0) / element_size));
        auto [it, inserted] =
            bins.try_emplace({bx, by}, part.elementCount);
        if (inserted) {
            ++part.elementCount;
            part.elementCells.emplace_back();
        }
        part.elementOf[c] = it->second;
        part.elementCells[it->second].push_back(c);
    }

    // Element centroids and diameters.
    part.elementCenter.resize(part.elementCount);
    for (int e = 0; e < part.elementCount; ++e) {
        double sx = 0.0, sy = 0.0;
        for (CellId c : part.elementCells[e]) {
            sx += l.position(c).x;
            sy += l.position(c).y;
        }
        const double n = static_cast<double>(part.elementCells[e].size());
        part.elementCenter[e] = {sx / n, sy / n};
        for (CellId a : part.elementCells[e])
            for (CellId b : part.elementCells[e])
                part.maxElementDiameter =
                    std::max(part.maxElementDiameter,
                             geom::manhattan(l.position(a),
                                             l.position(b)));
    }

    // Element adjacency from communication edges.
    part.elementGraph = graph::Graph(
        static_cast<std::size_t>(part.elementCount));
    std::vector<std::pair<int, int>> seen;
    for (const graph::Edge &e : l.comm().undirectedEdges()) {
        const int ea = part.elementOf[e.src];
        const int eb = part.elementOf[e.dst];
        if (ea == eb)
            continue;
        const auto key = std::minmax(ea, eb);
        if (std::find(seen.begin(), seen.end(),
                      std::pair<int, int>(key.first, key.second)) !=
            seen.end())
            continue;
        seen.emplace_back(key.first, key.second);
        part.elementGraph.addBidirectional(key.first, key.second);
        part.maxControllerDistance =
            std::max(part.maxControllerDistance,
                     geom::manhattan(part.elementCenter[ea],
                                     part.elementCenter[eb]));
    }
    return part;
}

} // namespace vsync::hybrid
