#include "hybrid/handshake.hh"

#include "common/logging.hh"

namespace vsync::hybrid
{

HandshakePair::HandshakePair(desim::Simulator &sim, Time wire_delay,
                             Time logic_delay)
    : sim(sim), wireDelay(wire_delay), logicDelay(logic_delay),
      reqAtInitiator("req@i"), reqAtResponder("req@r"),
      ackAtResponder("ack@r"), ackAtInitiator("ack@i")
{
    VSYNC_ASSERT(wire_delay >= 0.0 && logic_delay >= 0.0,
                 "negative handshake delays");
    reqWire = std::make_unique<desim::DelayElement>(
        sim, reqAtInitiator, reqAtResponder,
        desim::EdgeDelays::same(wireDelay));
    ackWire = std::make_unique<desim::DelayElement>(
        sim, ackAtResponder, ackAtInitiator,
        desim::EdgeDelays::same(wireDelay));

    // Responder: mirror req onto ack after the logic delay.
    reqAtResponder.onChange([this](Time t, bool v) {
        desim::Signal *ack = &ackAtResponder;
        const Time at = t + logicDelay;
        this->sim.scheduleAt(at, [ack, at, v]() { ack->set(at, v); });
    });

    // Initiator: drop req when ack rises; complete a round and start
    // the next when ack falls.
    ackAtInitiator.onChange([this](Time t, bool v) {
        desim::Signal *req = &reqAtInitiator;
        const Time at = t + logicDelay;
        if (v) {
            this->sim.scheduleAt(at, [req, at]() { req->set(at, false); });
        } else {
            completions.push_back(t);
            if (--roundsLeft > 0) {
                this->sim.scheduleAt(at,
                                     [req, at]() { req->set(at, true); });
            }
        }
    });
}

std::vector<Time>
HandshakePair::run(int rounds)
{
    runBounded(rounds, infinity);
    VSYNC_ASSERT(completions.size() == static_cast<std::size_t>(rounds),
                 "handshake stalled: %zu of %d rounds",
                 completions.size(), rounds);
    return completions;
}

std::vector<Time>
HandshakePair::runBounded(int rounds, Time deadline)
{
    VSYNC_ASSERT(rounds >= 1, "need at least one round");
    completions.clear();
    roundsLeft = rounds;
    desim::Signal *req = &reqAtInitiator;
    sim.schedule(0.0, [req, &sim = sim]() { req->set(sim.now(), true); });
    sim.run(deadline);
    return completions;
}

Time
HandshakePair::roundLatency() const
{
    // req out + back ack (x2 for the return-to-zero half), plus the
    // responder's two reactions and the initiator's one mid-round.
    return 4.0 * wireDelay + 3.0 * logicDelay;
}

StoppableClock::StoppableClock(desim::Simulator &sim, desim::Signal &out,
                               Time high, Time low, Time start_delay)
    : sim(sim), out(out), high(high), low(low), startDelay(start_delay)
{
    VSYNC_ASSERT(high > 0.0 && low >= 0.0 && start_delay >= 0.0,
                 "bad stoppable clock timing");
}

void
StoppableClock::enable()
{
    if (gate)
        return;
    gate = true;
    if (!running) {
        running = true;
        sim.schedule(startDelay, [this]() { startPulse(); });
    }
}

void
StoppableClock::disable()
{
    gate = false;
}

void
StoppableClock::startPulse()
{
    // The gate is sampled only here, between pulses: stopping is
    // synchronous and can never truncate a pulse.
    if (!gate) {
        running = false;
        return;
    }
    const Time rise = sim.now();
    const Time fall = rise + high;
    out.set(rise, true);
    sim.scheduleAt(fall, [this, rise, fall]() {
        out.set(fall, false);
        pulseLog.emplace_back(rise, fall);
        sim.schedule(low, [this]() { startPulse(); });
    });
}

} // namespace vsync::hybrid
