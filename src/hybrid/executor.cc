#include "hybrid/executor.hh"

#include "common/logging.hh"

namespace vsync::hybrid
{

HybridExecution
runHybrid(const systolic::SystolicArray &array, const layout::Layout &l,
          Length element_size, const HybridParams &params, int cycles,
          const systolic::ExternalInputFn &ext, obs::ExecProbe *probe)
{
    VSYNC_ASSERT(array.size() == l.size(),
                 "array (%zu cells) does not match layout (%zu)",
                 array.size(), l.size());

    HybridExecution exec;
    HybridNetwork network(partitionGrid(l, element_size), params);
    exec.timing = network.simulate(cycles, nullptr, nullptr, probe);
    exec.cycleTime = exec.timing.steadyCycle;
    exec.trace = systolic::runIdeal(array, cycles, ext);
    return exec;
}

} // namespace vsync::hybrid
