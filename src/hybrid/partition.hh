/**
 * @file
 * Partitioning a layout into bounded-size elements (Section VI).
 *
 * The hybrid scheme breaks the layout into segments of bounded physical
 * extent, each with a local clock distribution node; only the bounded
 * element interior is clocked synchronously, so per-element clocking
 * cost is constant regardless of array size.
 */

#ifndef VSYNC_HYBRID_PARTITION_HH
#define VSYNC_HYBRID_PARTITION_HH

#include <vector>

#include "geom/point.hh"
#include "graph/graph.hh"
#include "layout/layout.hh"

namespace vsync::hybrid
{

/** The result of partitioning a layout into elements. */
struct Partition
{
    /** Element index per cell. */
    std::vector<int> elementOf;
    /** Number of elements. */
    int elementCount = 0;
    /** Centroid of each element (local clock node position). */
    std::vector<geom::Point> elementCenter;
    /** Cells per element. */
    std::vector<std::vector<CellId>> elementCells;
    /**
     * Element adjacency (one undirected edge per pair of elements
     * connected by at least one communication edge).
     */
    graph::Graph elementGraph;
    /** Largest physical diameter (Manhattan) of any element. */
    Length maxElementDiameter = 0.0;
    /** Longest controller-to-controller distance over adjacent
     *  elements. */
    Length maxControllerDistance = 0.0;
};

/**
 * Grid-bin the layout into square elements of side @p element_size
 * (lambda). Cells fall into bins by position; empty bins are skipped.
 */
Partition partitionGrid(const layout::Layout &l, Length element_size);

} // namespace vsync::hybrid

#endif // VSYNC_HYBRID_PARTITION_HH
