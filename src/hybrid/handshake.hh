/**
 * @file
 * Four-phase request/acknowledge handshake controllers (Section VI's
 * self-timed synchronization network), modelled at the signal level.
 *
 * A HandshakePair connects an initiator and a responder through two
 * wires with configurable delays. One synchronization round is
 *   req+ -> ack+ -> req- -> ack-
 * and its latency is twice the round-trip wire delay plus controller
 * logic delays -- a constant determined by the physical distance
 * between adjacent elements, never by array size. The StoppableClock
 * shows the metastability-safety property: the local clock is stopped
 * synchronously (the gate is sampled between pulses) and restarted
 * asynchronously, so no pulse is ever truncated.
 */

#ifndef VSYNC_HYBRID_HANDSHAKE_HH
#define VSYNC_HYBRID_HANDSHAKE_HH

#include <memory>
#include <vector>

#include "desim/elements.hh"
#include "desim/signal.hh"
#include "desim/simulator.hh"

namespace vsync::hybrid
{

/** A 4-phase handshake between two controllers over real wires. */
class HandshakePair
{
  public:
    /**
     * @param sim        simulator.
     * @param wire_delay one-way wire delay between controllers (ns).
     * @param logic_delay controller reaction time per phase (ns).
     */
    HandshakePair(desim::Simulator &sim, Time wire_delay,
                  Time logic_delay);

    HandshakePair(const HandshakePair &) = delete;
    HandshakePair &operator=(const HandshakePair &) = delete;

    /**
     * Run @p rounds full 4-phase rounds.
     *
     * fatal()s unless every round completes; with a fault armed (e.g. a
     * severed wire) use runBounded instead.
     *
     * @return times at which each round completed (ack observed low by
     *         the initiator).
     */
    std::vector<Time> run(int rounds);

    /**
     * Stall-tolerant run: simulate until @p deadline and return however
     * many rounds completed by then (possibly none). A severed req or
     * ack wire stalls the pair forever, which run() would treat as a
     * fatal protocol violation; this entry point lets the fault
     * subsystem measure the stall instead.
     */
    std::vector<Time> runBounded(int rounds, Time deadline);

    /** Rounds completed by the last run()/runBounded(). */
    std::size_t roundsCompleted() const { return completions.size(); }

    /** The request wire initiator->responder (fault-injection seam). */
    desim::DelayElement &requestWire() { return *reqWire; }

    /** The acknowledge wire responder->initiator (fault seam). */
    desim::DelayElement &acknowledgeWire() { return *ackWire; }

    /** Latency of one round once started (4 wire + 2 logic legs). */
    Time roundLatency() const;

  private:
    desim::Simulator &sim;
    Time wireDelay;
    Time logicDelay;

    desim::Signal reqAtInitiator;
    desim::Signal reqAtResponder;
    desim::Signal ackAtResponder;
    desim::Signal ackAtInitiator;
    std::unique_ptr<desim::DelayElement> reqWire;
    std::unique_ptr<desim::DelayElement> ackWire;

    int roundsLeft = 0;
    std::vector<Time> completions;
};

/**
 * A locally generated clock that can be stopped between pulses.
 *
 * The enable input is sampled only at pulse boundaries: if the gate
 * goes low mid-pulse the pulse still completes (synchronous stop), and
 * a rising gate starts the next pulse after a fixed start delay
 * (asynchronous start). The pulse widths therefore never vary -- the
 * property that avoids metastability in the Section VI scheme.
 */
class StoppableClock
{
  public:
    /**
     * @param sim    simulator.
     * @param out    clock output signal.
     * @param high   pulse high time (ns).
     * @param low    minimum low time between pulses (ns).
     * @param start_delay gate-to-first-pulse delay (ns).
     */
    StoppableClock(desim::Simulator &sim, desim::Signal &out, Time high,
                   Time low, Time start_delay);

    StoppableClock(const StoppableClock &) = delete;
    StoppableClock &operator=(const StoppableClock &) = delete;

    /** Open the gate at simulation time (pulses begin). */
    void enable();

    /** Close the gate (takes effect at the next pulse boundary). */
    void disable();

    /** Completed (rise, fall) pulse intervals. */
    const std::vector<std::pair<Time, Time>> &pulses() const
    {
        return pulseLog;
    }

  private:
    desim::Simulator &sim;
    desim::Signal &out;
    Time high;
    Time low;
    Time startDelay;
    bool gate = false;
    bool running = false;
    std::vector<std::pair<Time, Time>> pulseLog;

    void startPulse();
};

} // namespace vsync::hybrid

#endif // VSYNC_HYBRID_HANDSHAKE_HH
