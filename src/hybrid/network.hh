/**
 * @file
 * The full hybrid synchronization network (Section VI, Fig 8).
 *
 * Each element runs a local clock; before starting cycle k+1 an
 * element's clock node must have completed its own cycle k and
 * exchanged a handshake with every neighbouring element that has
 * completed cycle k. Cycle completion times therefore obey a max-plus
 * recurrence over the element graph whose steady rate is the largest
 * local cost -- a constant set by element size and neighbour distance,
 * not by array size. The simulate() routine iterates the recurrence
 * (optionally with per-round jitter, which the scheme tolerates because
 * synchronization is local, unlike pipelined global clocking which
 * needs A8).
 */

#ifndef VSYNC_HYBRID_NETWORK_HH
#define VSYNC_HYBRID_NETWORK_HH

#include <functional>
#include <vector>

#include "hybrid/partition.hh"
#include "obs/probe.hh"

namespace vsync
{
class Rng;
} // namespace vsync

namespace vsync::hybrid
{

/** Timing constants of the hybrid scheme. */
struct HybridParams
{
    /**
     * Local clock distribution time per cycle within an element
     * (covers the bounded element's internal skew + settle; ns per
     * lambda of element diameter).
     */
    double localClockPerLambda = 0.1;

    /** Cell compute time per cycle (A5's delta, ns). */
    Time delta = 2.0;

    /** Handshake wire delay per lambda of controller distance (ns). */
    double handshakeWirePerLambda = 0.05;

    /** Controller logic delay per handshake phase (ns). */
    Time handshakeLogic = 0.5;

    /** Per-round random perturbation amplitude (ns); 0 disables. */
    Time jitterAmplitude = 0.0;
};

/** Result of simulating the hybrid network. */
struct HybridRunResult
{
    /** Completion time of every element's last cycle. */
    std::vector<Time> lastCompletion;
    /** Time the whole array finished the run. */
    Time completionTime = 0.0;
    /** Steady-state cycle time (slope over the run's second half). */
    Time steadyCycle = 0.0;
    /** Rounds simulated. */
    int rounds = 0;
};

/** The hybrid network over a partitioned layout. */
class HybridNetwork
{
  public:
    HybridNetwork(Partition partition, HybridParams params);

    /** Per-element cost of one local cycle (clocking + compute). */
    Time localCycleCost(int element) const;

    /** Handshake round latency between adjacent elements @p a, @p b. */
    Time handshakeCost(int a, int b) const;

    /**
     * Analytic steady cycle bound: max over elements of local cost
     * plus the worst adjacent handshake. The measured steady cycle
     * never exceeds this.
     */
    Time analyticCycleBound() const;

    /**
     * Severed-handshake predicate: true when the wire pair between
     * adjacent elements @p a and @p b is broken (the handshake never
     * completes). Fault-injection seam used by mc's resilience sweeps.
     */
    using SeveredFn = std::function<bool(int a, int b)>;

    /**
     * Iterate the max-plus recurrence for @p rounds cycles.
     *
     * @param rng randomness for jitter (may be null when
     *            jitterAmplitude is 0).
     * @param severed optional severed-handshake predicate; an element
     *                adjacent to a severed wire never completes another
     *                cycle (its completion time becomes infinity, which
     *                the recurrence propagates to every element waiting
     *                on it). With severed wires steadyCycle is
     *                meaningless; read lastCompletion (finite entries
     *                are the survivors).
     * @param probe optional observability probe; when attached it sees
     *              every positive handshake wait (how long an element
     *              stalled past its own completion for a neighbour) and
     *              each round's completion time. One branch per
     *              neighbour edge when detached.
     */
    HybridRunResult simulate(int rounds, Rng *rng = nullptr,
                             const SeveredFn &severed = nullptr,
                             obs::ExecProbe *probe = nullptr) const;

    /** The partition driving this network. */
    const Partition &partition() const { return part; }

    /** The parameters driving this network. */
    const HybridParams &params() const { return p; }

  private:
    Partition part;
    HybridParams p;
};

} // namespace vsync::hybrid

#endif // VSYNC_HYBRID_NETWORK_HH
