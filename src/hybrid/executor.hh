/**
 * @file
 * Hybrid execution of systolic arrays: lock-step correctness at the
 * hybrid network's cycle time.
 *
 * Because the Section VI scheme makes every element's cycle k start
 * only after all neighbours finished cycle k-1, data produced in cycle
 * k-1 is always stable when consumed in cycle k: the computation is
 * exactly the ideal lock-step computation, merely paced by the
 * handshake network. runHybrid therefore returns the ideal trace plus
 * the network-derived wall-clock timing.
 */

#ifndef VSYNC_HYBRID_EXECUTOR_HH
#define VSYNC_HYBRID_EXECUTOR_HH

#include "hybrid/network.hh"
#include "systolic/executor.hh"

namespace vsync::hybrid
{

/** Result of a hybrid run. */
struct HybridExecution
{
    /** The computation's trace (identical to the ideal executor's). */
    systolic::Trace trace;
    /** Timing of the synchronization network. */
    HybridRunResult timing;
    /** Steady cycle time (ns per systolic cycle). */
    Time cycleTime = 0.0;
};

/**
 * Execute @p array for @p cycles under hybrid synchronization.
 *
 * @param l       physical layout of the array's cells (for the
 *                partition).
 * @param element_size element side length (lambda).
 * @param params  hybrid timing constants.
 * @param ext     external inputs.
 * @param probe   optional observability probe forwarded to the
 *                network simulation (handshake waits, round ends).
 */
HybridExecution runHybrid(const systolic::SystolicArray &array,
                          const layout::Layout &l, Length element_size,
                          const HybridParams &params, int cycles,
                          const systolic::ExternalInputFn &ext,
                          obs::ExecProbe *probe = nullptr);

} // namespace vsync::hybrid

#endif // VSYNC_HYBRID_EXECUTOR_HH
