#include "hybrid/network.hh"

#include <algorithm>

#include "common/fit.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace vsync::hybrid
{

HybridNetwork::HybridNetwork(Partition partition, HybridParams params)
    : part(std::move(partition)), p(params)
{
    VSYNC_ASSERT(part.elementCount > 0, "empty partition");
}

Time
HybridNetwork::localCycleCost(int element) const
{
    VSYNC_ASSERT(element >= 0 && element < part.elementCount,
                 "bad element %d", element);
    // The local tree spans at most the element diameter; its clocking
    // cost is bounded by that physical extent (a constant, by
    // construction of the partition).
    return p.localClockPerLambda * part.maxElementDiameter + p.delta;
}

Time
HybridNetwork::handshakeCost(int a, int b) const
{
    const Length dist = geom::manhattan(part.elementCenter.at(a),
                                        part.elementCenter.at(b));
    // One 4-phase round: 4 wire legs + 3 logic reactions.
    return 4.0 * p.handshakeWirePerLambda * dist +
           3.0 * p.handshakeLogic;
}

Time
HybridNetwork::analyticCycleBound() const
{
    Time worst = 0.0;
    for (int e = 0; e < part.elementCount; ++e) {
        Time local = localCycleCost(e);
        Time hs = 0.0;
        for (CellId nbr : part.elementGraph.neighbors(e))
            hs = std::max(hs, handshakeCost(e, static_cast<int>(nbr)));
        worst = std::max(worst, local + hs);
    }
    return worst;
}

HybridRunResult
HybridNetwork::simulate(int rounds, Rng *rng,
                        const SeveredFn &severed,
                        obs::ExecProbe *probe) const
{
    VSYNC_ASSERT(rounds >= 1, "need at least one round");
    VSYNC_ASSERT(p.jitterAmplitude == 0.0 || rng != nullptr,
                 "jitter requires an rng");

    const int n = part.elementCount;
    std::vector<Time> prev(n, 0.0), cur(n, 0.0);
    std::vector<Time> round_completion;
    round_completion.reserve(static_cast<std::size_t>(rounds));

    for (int k = 0; k < rounds; ++k) {
        Time round_max = 0.0;
        obs::ExecRoundStats stats;
        for (int e = 0; e < n; ++e) {
            // Wait for own previous cycle and for each neighbour's
            // previous cycle plus the handshake with it.
            Time ready = prev[e];
            for (CellId nbr : part.elementGraph.neighbors(e)) {
                const int f = static_cast<int>(nbr);
                if (severed && severed(e, f)) {
                    ready = infinity; // the handshake never completes
                    continue;
                }
                ready = std::max(ready, prev[f] + handshakeCost(e, f));
            }
            if (probe && ready > prev[e] && ready < infinity) {
                const Time wait = ready - prev[e];
                ++stats.waits;
                stats.totalWait += wait;
                stats.maxWait = std::max(stats.maxWait, wait);
            }
            Time cost = localCycleCost(e);
            if (p.jitterAmplitude > 0.0)
                cost += rng->uniform(0.0, p.jitterAmplitude);
            cur[e] = ready + cost;
            round_max = std::max(round_max, cur[e]);
        }
        round_completion.push_back(round_max);
        if (probe) {
            stats.round = k;
            stats.completion = round_max;
            probe->onRound(stats);
        }
        std::swap(prev, cur);
    }

    HybridRunResult result;
    result.rounds = rounds;
    result.lastCompletion = prev;
    result.completionTime = round_completion.back();
    if (rounds >= 4) {
        std::vector<double> xs, ys;
        for (int k = rounds / 2; k < rounds; ++k) {
            xs.push_back(static_cast<double>(k));
            ys.push_back(round_completion[static_cast<std::size_t>(k)]);
        }
        result.steadyCycle = fitLinear(xs, ys).slope;
    } else {
        result.steadyCycle =
            result.completionTime / static_cast<double>(rounds);
    }
    return result;
}

} // namespace vsync::hybrid
